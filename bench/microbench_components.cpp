//===- bench/microbench_components.cpp - Component microbenchmarks ------------===//
//
// Part of the WARDen reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Google-benchmark microbenchmarks of the simulator's hot components:
/// cache array lookups, region table lookups at several occupancies, the
/// coherence controller's hit and miss paths, and phase-1 recording
/// throughput. These guard the simulator's own performance (a full figure
/// harness replays tens of millions of accesses).
///
//===----------------------------------------------------------------------===//

#include "src/coherence/CoherenceController.h"
#include "src/coherence/RegionTable.h"
#include "src/mem/CacheArray.h"
#include "src/rt/Stdlib.h"
#include "src/support/Rng.h"

#include <benchmark/benchmark.h>

using namespace warden;

static void BM_CacheArrayLookupHit(benchmark::State &State) {
  CacheArray Cache(CacheGeometry(32 * 1024, 8, 64));
  for (Addr Block = 0; Block < 16 * 1024; Block += 64)
    Cache.insert(Block, LineState::Shared);
  Rng Random(1);
  for (auto _ : State) {
    Addr Block = (Random.nextBelow(256)) * 64;
    benchmark::DoNotOptimize(Cache.lookup(Block));
  }
}
BENCHMARK(BM_CacheArrayLookupHit);

static void BM_CacheArrayInsertEvict(benchmark::State &State) {
  CacheArray Cache(CacheGeometry(32 * 1024, 8, 64));
  Addr Next = 0;
  for (auto _ : State) {
    benchmark::DoNotOptimize(Cache.insert(Next, LineState::Modified));
    Next += 64;
  }
}
BENCHMARK(BM_CacheArrayInsertEvict);

static void BM_RegionTableLookup(benchmark::State &State) {
  unsigned Regions = static_cast<unsigned>(State.range(0));
  RegionTable Regions_(Regions);
  for (unsigned I = 0; I < Regions; ++I)
    Regions_.add(I, Addr(I) * 8192, Addr(I) * 8192 + 4096);
  Rng Random(2);
  for (auto _ : State) {
    Addr Address = Random.nextBelow(Regions * 8192);
    benchmark::DoNotOptimize(Regions_.lookup(Address));
  }
}
BENCHMARK(BM_RegionTableLookup)->Arg(16)->Arg(128)->Arg(1024);

static void BM_ControllerL1Hit(benchmark::State &State) {
  CoherenceController Controller(MachineConfig::dualSocket());
  Controller.access(0, 0x1000, 8, AccessType::Store);
  for (auto _ : State)
    benchmark::DoNotOptimize(
        Controller.access(0, 0x1000, 8, AccessType::Load));
}
BENCHMARK(BM_ControllerL1Hit);

static void BM_ControllerColdMiss(benchmark::State &State) {
  CoherenceController Controller(MachineConfig::dualSocket());
  Addr Next = 0x100000;
  for (auto _ : State) {
    benchmark::DoNotOptimize(Controller.access(0, Next, 8, AccessType::Load));
    Next += 64;
  }
}
BENCHMARK(BM_ControllerColdMiss);

static void BM_ControllerPingPong(benchmark::State &State) {
  CoherenceController Controller(MachineConfig::dualSocket());
  unsigned I = 0;
  for (auto _ : State) {
    CoreId Core = (I++ % 2) ? 0 : 13;
    benchmark::DoNotOptimize(
        Controller.access(Core, 0x2000, 8, AccessType::Rmw));
  }
}
BENCHMARK(BM_ControllerPingPong);

static void BM_Phase1Recording(benchmark::State &State) {
  for (auto _ : State) {
    Runtime Rt;
    SimArray<int> Out = stdlib::tabulate<int>(
        Rt, 4096, [](std::size_t I) { return static_cast<int>(I); }, 64);
    benchmark::DoNotOptimize(Out.peek(1));
    TaskGraph Graph = Rt.finish();
    benchmark::DoNotOptimize(Graph.size());
  }
}
BENCHMARK(BM_Phase1Recording);
