//===- bench/fig13_multinode.cpp - Multi-node CXL-pool comparison -----------===//
//
// Part of the WARDen reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The multi-node experiment the paper's disaggregated study (Figure 12)
/// points toward: the full PBBS suite on a machine whose sockets sit on
/// separate, non-coherent nodes (the CXL-pool deployment shape), compared
/// across all four backends — MESI and WARDen paying the node-interconnect
/// latency for every cross-node coherence action, SISD shooting down every
/// resident line at acquires, and racoh publishing per-node write logs so
/// acquires invalidate only the lines actually written since the last
/// sync. The racoh-only table shows the log traffic behind the comparison:
/// publishes, records, back-pressure stalls, and the pre-invalidate
/// avoidance rate (the fraction of resident lines an acquire kept that
/// SISD would have discarded).
///
/// --nodes=N picks the node count (default 2, one socket per node);
/// --protocol= narrows the default mesi,warden,sisd,racoh comparison.
///
//===----------------------------------------------------------------------===//

#include "Harness.h"

using namespace warden;
using namespace warden::bench;

namespace {

/// Racoh log-coherence forensics, one row per benchmark.
void printRacohLogStats(const std::vector<SuiteRow> &Rows) {
  bool Any = false;
  for (const SuiteRow &Row : Rows)
    Any |= Row.Cmp.find(ProtocolKind::Racoh) != nullptr;
  if (!Any)
    return;
  Table T;
  T.setHeader({"Benchmark", "Publishes", "Records", "Consumed", "Stalls",
               "Log inv", "Avoided", "Avoid rate", "Node hops", "Peak queue"});
  for (const SuiteRow &Row : Rows) {
    const RunResult *R = Row.Cmp.find(ProtocolKind::Racoh);
    if (!R)
      continue;
    const CoherenceStats &S = R->Coherence;
    T.addRow({Row.Name, Table::fmt(S.LogPublishes),
              Table::fmt(S.LogRecordsPublished),
              Table::fmt(S.LogRecordsConsumed),
              Table::fmt(S.LogBackpressureStalls),
              Table::fmt(S.LogInvalidations),
              Table::fmt(S.PreInvalidateAvoided),
              Table::pct(S.preInvalidateAvoidanceRate()),
              Table::fmt(S.CrossNodeHops),
              Table::fmt(S.LogQueuePeakOccupancy)});
  }
  std::printf("Figure 13(c). RACoh log coherence (avoid rate = resident "
              "lines kept at acquires).\n%s\n",
              T.render().c_str());
}

} // namespace

int main(int argc, char **argv) {
  BenchOptions B = parseBenchArgs(argc, argv);
  if (!B.ProtocolsExplicit)
    B.Protocols = {ProtocolKind::Mesi, ProtocolKind::Warden,
                   ProtocolKind::Sisd, ProtocolKind::Racoh};
  unsigned Nodes = B.Nodes == 0 ? 2 : B.Nodes;
  MachineConfig Machine = MachineConfig::multiNode(Nodes);
  std::printf("=== Figure 13: multi-node CXL pool (%u nodes, %u cores) ===\n\n",
              Machine.NumNodes, Machine.totalCores());
  std::vector<SuiteRow> Rows = runSuite(Machine, B);
  printPerformance("Figure 13(a). Performance (speedup).", Rows);
  printEnergy("Figure 13(b). Energy savings.", Rows);
  printRacohLogStats(Rows);
  printAuditSummary(Rows);
  printProfiles(Rows);
  maybeWriteJsonReport("fig13_multinode", Machine, B, Rows);
  return 0;
}
