//===- bench/fig7_single_socket.cpp - Figure 7: single socket ---------------===//
//
// Part of the WARDen reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Reproduces Figure 7: performance and energy gains of WARDen over MESI on
/// the single-socket, 12-core machine. The paper reports speedups of 1-1.8x
/// with a 1.24x mean and ~17% mean energy savings on both series; gains are
/// smaller than the dual-socket case because coherence events stay on-chip.
///
//===----------------------------------------------------------------------===//

#include "Harness.h"

using namespace warden;
using namespace warden::bench;

int main(int argc, char **argv) {
  BenchOptions B = parseBenchArgs(argc, argv);
  MachineConfig Machine = MachineConfig::singleSocket();
  std::printf("=== Figure 7: single socket (12 cores) ===\n\n");
  std::vector<SuiteRow> Rows = runSuite(Machine, B);
  printPerformance("Figure 7(a). Performance (speedup).", Rows);
  printEnergy("Figure 7(b). Energy savings.", Rows);
  printAuditSummary(Rows);
  printProfiles(Rows);
  maybeWriteJsonReport("fig7_single_socket", Machine, B, Rows);
  return 0;
}
