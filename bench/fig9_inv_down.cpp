//===- bench/fig9_inv_down.cpp - Figure 9: events avoided vs speedup --------===//
//
// Part of the WARDen reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Reproduces Figure 9: dual-socket speedup next to the number of
/// invalidations and downgrades WARDen avoids per thousand executed
/// instructions. The paper's claim is a positive correlation: benchmarks
/// with large event reductions speed up, benchmarks with small reductions
/// do not.
///
//===----------------------------------------------------------------------===//

#include "Harness.h"

#include <cmath>

using namespace warden;
using namespace warden::bench;

int main(int argc, char **argv) {
  BenchOptions B = parseBenchArgs(argc, argv);
  MachineConfig Machine = MachineConfig::dualSocket();
  std::printf("=== Figure 9: dual socket speedup vs avoided events ===\n\n");
  std::vector<SuiteRow> Rows = runSuite(Machine, B);

  // One table + correlation per non-baseline protocol (the default run
  // shows exactly the paper's WARDen-vs-MESI figure).
  const ComparisonResult &First = Rows.front().Cmp;
  const char *BaseName = protocolName(First.Baseline);
  for (const RunResult *P : nonBaseline(First)) {
    ProtocolKind Kind = P->Protocol;
    Table T;
    T.setHeader({"Benchmark", "Inv+Down avoided/kilo-instr", "Speedup",
                 std::string(BaseName) + " inv+down",
                 std::string(protocolName(Kind)) + " inv+down"});
    for (const SuiteRow &Row : Rows)
      T.addRow(
          {Row.Name, Table::fmt(Row.Cmp.invDownReducedPerKiloInstr(Kind), 2),
           Table::fmt(Row.Cmp.speedup(Kind), 2) + "x",
           Table::fmt(Row.Cmp.baseline().Coherence.invPlusDown()),
           Table::fmt(Row.Cmp.run(Kind).Coherence.invPlusDown())});
    std::printf("Figure 9. Dual-socket %s speedup with the reduction in "
                "invalidations and downgrades.\n%s",
                protocolName(Kind), T.render().c_str());

    // Simple rank correlation summary so the "positive correlation" claim
    // is checkable from the output.
    double N = static_cast<double>(Rows.size());
    double MeanX = 0;
    double MeanY = 0;
    for (const SuiteRow &Row : Rows) {
      MeanX += Row.Cmp.invDownReducedPerKiloInstr(Kind) / N;
      MeanY += Row.Cmp.speedup(Kind) / N;
    }
    double Cov = 0;
    double VarX = 0;
    double VarY = 0;
    for (const SuiteRow &Row : Rows) {
      double DX = Row.Cmp.invDownReducedPerKiloInstr(Kind) - MeanX;
      double DY = Row.Cmp.speedup(Kind) - MeanY;
      Cov += DX * DY;
      VarX += DX * DX;
      VarY += DY * DY;
    }
    double Corr = (VarX > 0 && VarY > 0) ? Cov / std::sqrt(VarX * VarY) : 0.0;
    std::printf("\nPearson correlation(avoided events, speedup) = %.2f "
                "(paper: positive)\n\n",
                Corr);
  }
  printProfiles(Rows);
  maybeWriteJsonReport("fig9_inv_down", Machine, B, Rows);
  return 0;
}
