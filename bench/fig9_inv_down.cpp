//===- bench/fig9_inv_down.cpp - Figure 9: events avoided vs speedup --------===//
//
// Part of the WARDen reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Reproduces Figure 9: dual-socket speedup next to the number of
/// invalidations and downgrades WARDen avoids per thousand executed
/// instructions. The paper's claim is a positive correlation: benchmarks
/// with large event reductions speed up, benchmarks with small reductions
/// do not.
///
//===----------------------------------------------------------------------===//

#include "Harness.h"

#include <cmath>

using namespace warden;
using namespace warden::bench;

int main(int argc, char **argv) {
  BenchOptions B = parseBenchArgs(argc, argv);
  MachineConfig Machine = MachineConfig::dualSocket();
  std::printf("=== Figure 9: dual socket speedup vs avoided events ===\n\n");
  std::vector<SuiteRow> Rows = runSuite(Machine, B);

  Table T;
  T.setHeader({"Benchmark", "Inv+Down avoided/kilo-instr", "Speedup",
               "MESI inv+down", "WARDen inv+down"});
  for (const SuiteRow &Row : Rows)
    T.addRow({Row.Name, Table::fmt(Row.Cmp.invDownReducedPerKiloInstr(), 2),
              Table::fmt(Row.Cmp.speedup(), 2) + "x",
              Table::fmt(Row.Cmp.Mesi.Coherence.invPlusDown()),
              Table::fmt(Row.Cmp.Warden.Coherence.invPlusDown())});
  std::printf("Figure 9. Dual-socket speedup with the reduction in "
              "invalidations and downgrades.\n%s",
              T.render().c_str());

  // Simple rank correlation summary so the "positive correlation" claim is
  // checkable from the output.
  double N = static_cast<double>(Rows.size());
  double MeanX = 0;
  double MeanY = 0;
  for (const SuiteRow &Row : Rows) {
    MeanX += Row.Cmp.invDownReducedPerKiloInstr() / N;
    MeanY += Row.Cmp.speedup() / N;
  }
  double Cov = 0;
  double VarX = 0;
  double VarY = 0;
  for (const SuiteRow &Row : Rows) {
    double DX = Row.Cmp.invDownReducedPerKiloInstr() - MeanX;
    double DY = Row.Cmp.speedup() - MeanY;
    Cov += DX * DY;
    VarX += DX * DX;
    VarY += DY * DY;
  }
  double Corr = (VarX > 0 && VarY > 0) ? Cov / std::sqrt(VarX * VarY) : 0.0;
  std::printf("\nPearson correlation(avoided events, speedup) = %.2f "
              "(paper: positive)\n",
              Corr);
  printProfiles(Rows);
  maybeWriteJsonReport("fig9_inv_down", Machine, B, Rows);
  return 0;
}
