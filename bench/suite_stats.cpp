//===- bench/suite_stats.cpp - Detailed per-benchmark statistics -----------===//
//
// Part of the WARDen reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Diagnostic companion to the figure harnesses: detailed coherence and
/// energy statistics for every benchmark under both protocols on the
/// dual-socket machine. Not a paper figure, but the raw numbers behind
/// Figures 8-11; useful when validating the reproduction's behaviour.
///
//===----------------------------------------------------------------------===//

#include "Harness.h"

using namespace warden;
using namespace warden::bench;

static void printRun(const char *Name, const RunResult &R) {
  const CoherenceStats &C = R.Coherence;
  std::printf(
      "  %-7s cyc=%-9llu instr=%-9llu ipc=%.2f L1=%llu L2=%llu LLC=%llu "
      "dram=%llu\n"
      "          inv=%-7llu down=%-7llu c2c=%-6llu wb=%-6llu "
      "msgs(i/x)=%llu/%llu data(i/x)=%llu/%llu\n"
      "          wardAcc=%.1f%% grants=%llu recBlocks=%llu recWb=%llu "
      "steals=%llu regionsPeak=%u energy(net)=%.0fnJ energy(tot)=%.0fnJ\n",
      Name, (unsigned long long)R.Makespan, (unsigned long long)R.Instructions,
      R.ipc(), (unsigned long long)C.L1Hits, (unsigned long long)C.L2Hits,
      (unsigned long long)C.LlcServes, (unsigned long long)C.DramAccesses,
      (unsigned long long)C.Invalidations, (unsigned long long)C.Downgrades,
      (unsigned long long)C.CacheToCache, (unsigned long long)C.Writebacks,
      (unsigned long long)C.MsgsIntraSocket,
      (unsigned long long)(C.MsgsInterSocket + C.MsgsRemote),
      (unsigned long long)C.DataIntraSocket,
      (unsigned long long)(C.DataInterSocket + C.DataRemote),
      100.0 * R.wardCoverage(), (unsigned long long)C.WardGrants,
      (unsigned long long)C.ReconciledBlocks,
      (unsigned long long)C.ReconcileWritebacks,
      (unsigned long long)R.Sched.Steals, R.PeakRegions,
      R.Energy.interconnectNJ(), R.Energy.totalProcessorNJ());
}

int main(int argc, char **argv) {
  BenchOptions B = parseBenchArgs(argc, argv);
  MachineConfig Machine = MachineConfig::dualSocket();
  std::printf("=== Detailed suite statistics (dual socket) ===\n");
  std::vector<SuiteRow> Rows = runSuite(Machine, B);
  for (const SuiteRow &Row : Rows) {
    std::printf("%s  (verified=%s", Row.Name.c_str(),
                Row.Verified ? "yes" : "NO");
    for (const RunResult *P : nonBaseline(Row.Cmp))
      std::printf(", %s speedup %.2fx", protocolName(P->Protocol),
                  Row.Cmp.speedup(P->Protocol));
    std::printf(")\n");
    for (const RunResult &R : Row.Cmp.Runs)
      printRun(protocolName(R.Protocol), R);
  }
  printAuditSummary(Rows);
  printProfiles(Rows);
  maybeWriteJsonReport("suite_stats", Machine, B, Rows);
  return 0;
}
