//===- bench/Harness.h - Shared experiment harness -------------*- C++ -*-===//
//
// Part of the WARDen reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Shared plumbing for the figure harnesses: record every PBBS benchmark
/// once, simulate it under MESI and WARDen on a given machine, and print
/// paper-style rows. Each figure binary selects which columns to show.
///
//===----------------------------------------------------------------------===//

#ifndef WARDEN_BENCH_HARNESS_H
#define WARDEN_BENCH_HARNESS_H

#include "src/core/WardenSystem.h"
#include "src/pbbs/Pbbs.h"
#include "src/support/Summary.h"
#include "src/support/Table.h"

#include <cstdio>
#include <string>
#include <vector>

namespace warden {
namespace bench {

/// One benchmark's results under a machine configuration.
struct SuiteRow {
  std::string Name;
  bool Verified = false;
  ProtocolComparison Cmp;
};

/// Records and simulates the whole suite (or \p Only if non-empty).
inline std::vector<SuiteRow>
runSuite(const MachineConfig &Machine,
         const std::vector<std::string> &Only = {},
         const RtOptions &Options = RtOptions(), double ScaleFactor = 1.0) {
  std::vector<SuiteRow> Rows;
  for (const pbbs::Benchmark &B : pbbs::allBenchmarks()) {
    if (!Only.empty()) {
      bool Selected = false;
      for (const std::string &Name : Only)
        Selected |= (Name == B.Name);
      if (!Selected)
        continue;
    }
    auto Scale = static_cast<std::size_t>(
        static_cast<double>(B.DefaultScale) * ScaleFactor);
    pbbs::Recorded R = B.Record(std::max<std::size_t>(Scale, 4), Options);
    SuiteRow Row;
    Row.Name = B.Name;
    Row.Verified = R.Verified;
    Row.Cmp = WardenSystem::compare(R.Graph, Machine);
    Rows.push_back(std::move(Row));
    std::fflush(stdout);
  }
  return Rows;
}

/// Figure 7a/8a/12a style: normalized speedup per benchmark plus MEAN.
inline void printPerformance(const char *Caption,
                             const std::vector<SuiteRow> &Rows) {
  Table T;
  T.setHeader({"Benchmark", "MESI cycles", "WARDen cycles", "Speedup",
               "Verified"});
  Summary Speedups;
  for (const SuiteRow &Row : Rows) {
    double S = Row.Cmp.speedup();
    Speedups.add(S);
    T.addRow({Row.Name, Table::fmt(Row.Cmp.Mesi.Makespan),
              Table::fmt(Row.Cmp.Warden.Makespan),
              Table::fmt(S, 2) + "x", Row.Verified ? "yes" : "NO"});
  }
  T.addRow({"MEAN", "-", "-", Table::fmt(Speedups.mean(), 2) + "x", "-"});
  std::printf("%s\n%s\n", Caption, T.render().c_str());
}

/// Figure 7b/8b/12b style: percent energy savings per benchmark plus MEAN.
inline void printEnergy(const char *Caption,
                        const std::vector<SuiteRow> &Rows) {
  Table T;
  T.setHeader({"Benchmark", "Interconnect savings", "Total processor savings"});
  Summary Net;
  Summary TotalEnergy;
  for (const SuiteRow &Row : Rows) {
    double N = Row.Cmp.interconnectEnergySavings();
    double P = Row.Cmp.totalEnergySavings();
    Net.add(N);
    TotalEnergy.add(P);
    T.addRow({Row.Name, Table::pct(N), Table::pct(P)});
  }
  T.addRow({"MEAN", Table::pct(Net.mean()), Table::pct(TotalEnergy.mean())});
  std::printf("%s\n%s\n", Caption, T.render().c_str());
}

} // namespace bench
} // namespace warden

#endif // WARDEN_BENCH_HARNESS_H
