//===- bench/Harness.h - Shared experiment harness -------------*- C++ -*-===//
//
// Part of the WARDen reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Shared plumbing for the figure harnesses: record every PBBS benchmark
/// once, simulate it under every requested protocol backend (--protocol=,
/// default MESI + WARDen) on a given machine, and print paper-style rows.
/// Each figure binary selects which columns to show. All relative metrics
/// (speedups, savings) are computed against the comparison's baseline
/// protocol — MESI whenever it was requested.
///
//===----------------------------------------------------------------------===//

#ifndef WARDEN_BENCH_HARNESS_H
#define WARDEN_BENCH_HARNESS_H

#include "src/core/WardenSystem.h"
#include "src/mem/ReplacementPolicy.h"
#include "src/obs/EventLog.h"
#include "src/obs/Observability.h"
#include "src/pbbs/Pbbs.h"
#include "src/support/JobPool.h"
#include "src/support/Json.h"
#include "src/support/Summary.h"
#include "src/support/Table.h"

#include <chrono>
#include <cmath>
#include <cstddef>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <map>
#include <string>
#include <vector>

namespace warden {
namespace bench {

/// One benchmark's results under a machine configuration (and, for a
/// --replacement matrix run, one replacement policy).
struct SuiteRow {
  /// Display name: the benchmark name, suffixed " (<replacement>)" when
  /// the suite ran more than one replacement policy.
  std::string Name;
  /// Plain benchmark name (what the JSON report's "name" member carries,
  /// so lru rows keep diffing against pre-matrix baselines).
  std::string Bench;
  /// Replacement-policy id this row simulated under.
  std::string Replacement = std::string(DefaultReplacementId);
  bool Verified = false;
  ComparisonResult Cmp;
  /// Host wall-clock seconds the protocol comparison took (simulation
  /// only; recording is excluded). Host-side measurement — varies run to
  /// run while every simulated metric stays deterministic.
  double HostSeconds = 0.0;
  /// Simulated demand accesses retired per host second across the whole
  /// comparison (all protocols, all repeats). The engine's throughput.
  double SimAccessesPerSec = 0.0;
};

/// Everything the shared command line controls: the simulation options
/// plus the harness-level selection, scaling, and report knobs.
struct BenchOptions {
  RunOptions Run;
  /// Protocol backends to simulate, in request order (--protocol=).
  std::vector<ProtocolKind> Protocols = {ProtocolKind::Mesi,
                                         ProtocolKind::Warden};
  /// True when --protocol= was given: figure harnesses with their own
  /// default protocol set (e.g. fig13's four-way comparison) only apply it
  /// when the user did not choose explicitly.
  bool ProtocolsExplicit = false;
  /// Replacement policies to simulate (--replacement=, registry ids). The
  /// suite runs the full benchmark x replacement matrix,
  /// replacement-major; the default single "lru" reproduces the
  /// pre-matrix suite byte-identically.
  std::vector<std::string> Replacements = {std::string(DefaultReplacementId)};
  /// Node-tier override for multi-node harnesses (--nodes=N); 0 keeps the
  /// figure's default machine shape. Figures on single-node machines
  /// ignore it.
  unsigned Nodes = 0;
  /// Benchmarks to run; empty means the harness's own default selection.
  std::vector<std::string> Only;
  /// Multiplier applied to every benchmark's default problem size.
  double Scale = 1.0;
  /// When non-empty, write the machine-readable report here.
  std::string JsonPath;
  /// When non-empty (--evlog=BASE), every simulated run streams a binary
  /// event log to "BASE.<benchmark>.<protocol>.evlog" (warden-evlog-v1;
  /// query with warden-stat). Cycle-identical to an unlogged run.
  std::string EvlogBase;
  /// Attach the sharing profiler + CPI stack to every run (--profile):
  /// per-line/per-site coherence attribution and cycle accounting, printed
  /// after the figure tables and embedded in the JSON report.
  bool Profile = false;
  /// Host threads simulating concurrently (--jobs). 1 = the serial path.
  /// Parallel runs produce byte-identical reports modulo the host-timing
  /// fields: every job owns its simulated machine and result slot.
  unsigned Jobs = 1;
  /// Host threads sharding a single run's timing simulation (--intra-jobs;
  /// the replayer's epoch-barriered engine). Orthogonal to --jobs and the
  /// same contract: byte-identical reports at any value, wall time only.
  unsigned IntraJobs = 1;
};

/// Parses the command-line flags shared by the figure harnesses:
///   --audit          attach the ProtocolAuditor to every simulated run
///                    (invariant + shadow-value checking; slower, same
///                    cycles) and print a violation summary at the end
///   --faults[=seed]  enable the standard fault-injection plan (randomized
///                    evictions and adversarial mid-region reconciles,
///                    SplitMix64-seeded so failures replay)
///   --protocol=IDS   simulate the named protocol backends (comma-
///                    separated registry ids; default mesi,warden).
///                    Unknown ids fail fast listing the registered ids
///   --replacement=IDS simulate under the named replacement policies
///                    (comma-separated registry ids; default lru). More
///                    than one id runs the full benchmark x replacement
///                    matrix and labels rows "name (policy)". Unknown,
///                    duplicate, or empty ids fail fast
///   --only=NAMES     run only the named benchmarks (comma-separated,
///                    repeatable); names that match nothing fail fast
///   --scale=X        multiply every benchmark's problem size by X
///   --json=FILE      also write the warden-bench-v3 JSON report to FILE
///   --evlog=BASE     stream a binary coherence event log per run to
///                    BASE.<benchmark>.<protocol>.evlog (warden-evlog-v1;
///                    query offline with warden-stat). Simulated cycles
///                    are identical with or without the log
///   --profile        attach the per-line sharing profiler and CPI stacks
///                    (same cycles; prints attribution tables, adds a
///                    "profile" section to the JSON report)
///   --jobs=N         simulate on N host threads (protocol x benchmark x
///                    repeat fan-out; default 1). Changes wall time only:
///                    reports are byte-identical to --jobs=1 modulo the
///                    host_seconds / sim_accesses_per_sec fields
///   --intra-jobs=N   shard each single run's timing simulation across N
///                    host threads (epoch-barriered engine; default 1).
///                    Same contract as --jobs: byte-identical reports at
///                    any N, host wall time only. Composes with --jobs
///   --nodes=N        multi-node harnesses: simulate N non-coherent nodes
///                    (one socket each); figures on single-node machines
///                    ignore it
/// Unknown arguments print usage and exit, so a typo cannot silently run
/// the wrong experiment.
inline BenchOptions parseBenchArgs(int argc, char **argv) {
  BenchOptions B;
  for (int I = 1; I < argc; ++I) {
    const char *Arg = argv[I];
    if (std::strcmp(Arg, "--audit") == 0) {
      B.Run.Audit = true;
      // Benchmarks touch far more blocks than the unit tests; keep the
      // periodic full sweeps affordable and rely on per-access checks.
      B.Run.AuditConfig.SweepInterval = 1u << 20;
    } else if (std::strncmp(Arg, "--faults", 8) == 0 &&
               (Arg[8] == '\0' || Arg[8] == '=')) {
      B.Run.Faults.EvictionRate = 1e-3;
      B.Run.Faults.ReconcileRate = 1e-3;
      if (Arg[8] == '=')
        B.Run.Faults.Seed = std::strtoull(Arg + 9, nullptr, 0);
    } else if (std::strncmp(Arg, "--protocol=", 11) == 0) {
      // Same comma semantics as --only: empty segments are skipped,
      // duplicates are kept (the comparison collapses them).
      B.Protocols.clear();
      const char *Cursor = Arg + 11;
      while (*Cursor) {
        const char *Comma = std::strchr(Cursor, ',');
        std::size_t Len = Comma ? static_cast<std::size_t>(Comma - Cursor)
                                : std::strlen(Cursor);
        if (Len > 0) {
          std::string Id(Cursor, Len);
          if (std::optional<ProtocolKind> Kind = parseProtocolId(Id)) {
            B.Protocols.push_back(*Kind);
          } else {
            std::fprintf(stderr,
                         "%s: --protocol: unknown protocol '%s'; valid ids"
                         " are:",
                         argv[0], Id.c_str());
            for (const std::string &Valid : registeredProtocolIds())
              std::fprintf(stderr, " %s", Valid.c_str());
            std::fprintf(stderr, "\n");
            std::exit(2);
          }
        }
        Cursor += Len + (Comma ? 1 : 0);
      }
      if (B.Protocols.empty()) {
        std::fprintf(stderr, "%s: --protocol wants at least one protocol id\n",
                     argv[0]);
        std::exit(2);
      }
      B.ProtocolsExplicit = true;
    } else if (std::strncmp(Arg, "--replacement=", 14) == 0) {
      std::string Error;
      std::optional<std::vector<std::string>> Ids =
          parseReplacementList(Arg + 14, Error);
      if (!Ids) {
        std::fprintf(stderr, "%s: --replacement: %s\n", argv[0],
                     Error.c_str());
        std::exit(2);
      }
      B.Replacements = std::move(*Ids);
    } else if (std::strncmp(Arg, "--only=", 7) == 0) {
      const char *Cursor = Arg + 7;
      while (*Cursor) {
        const char *Comma = std::strchr(Cursor, ',');
        std::size_t Len = Comma ? static_cast<std::size_t>(Comma - Cursor)
                                : std::strlen(Cursor);
        if (Len > 0)
          B.Only.emplace_back(Cursor, Len);
        Cursor += Len + (Comma ? 1 : 0);
      }
    } else if (std::strncmp(Arg, "--scale=", 8) == 0) {
      char *End = nullptr;
      B.Scale = std::strtod(Arg + 8, &End);
      if (End == Arg + 8 || *End != '\0' || B.Scale <= 0) {
        std::fprintf(stderr, "%s: --scale wants a positive number, got %s\n",
                     argv[0], Arg + 8);
        std::exit(2);
      }
    } else if (std::strncmp(Arg, "--json=", 7) == 0) {
      B.JsonPath = Arg + 7;
    } else if (std::strncmp(Arg, "--evlog=", 8) == 0) {
      if (Arg[8] == '\0') {
        std::fprintf(stderr, "%s: --evlog wants a base path\n", argv[0]);
        std::exit(2);
      }
      B.EvlogBase = Arg + 8;
    } else if (std::strcmp(Arg, "--profile") == 0) {
      B.Profile = true;
    } else if (std::strncmp(Arg, "--jobs=", 7) == 0) {
      char *End = nullptr;
      unsigned long Jobs = std::strtoul(Arg + 7, &End, 10);
      if (End == Arg + 7 || *End != '\0' || Jobs == 0) {
        std::fprintf(stderr,
                     "%s: --jobs wants a positive integer, got %s\n",
                     argv[0], Arg + 7);
        std::exit(2);
      }
      B.Jobs = static_cast<unsigned>(Jobs);
    } else if (std::strncmp(Arg, "--intra-jobs=", 13) == 0) {
      char *End = nullptr;
      unsigned long Jobs = std::strtoul(Arg + 13, &End, 10);
      if (End == Arg + 13 || *End != '\0' || Jobs == 0) {
        std::fprintf(stderr,
                     "%s: --intra-jobs wants a positive integer, got %s\n",
                     argv[0], Arg + 13);
        std::exit(2);
      }
      B.IntraJobs = static_cast<unsigned>(Jobs);
    } else if (std::strncmp(Arg, "--nodes=", 8) == 0) {
      char *End = nullptr;
      unsigned long Nodes = std::strtoul(Arg + 8, &End, 10);
      if (End == Arg + 8 || *End != '\0' || Nodes == 0) {
        std::fprintf(stderr,
                     "%s: --nodes wants a positive integer, got %s\n",
                     argv[0], Arg + 8);
        std::exit(2);
      }
      B.Nodes = static_cast<unsigned>(Nodes);
    } else {
      std::fprintf(stderr,
                   "usage: %s [--audit] [--faults[=seed]] "
                   "[--protocol=ID[,ID...]] [--replacement=ID[,ID...]] "
                   "[--only=NAME[,NAME...]] "
                   "[--scale=X] [--json=FILE] [--evlog=BASE] [--profile] "
                   "[--jobs=N] [--intra-jobs=N] [--nodes=N]\n",
                   argv[0]);
      std::exit(2);
    }
  }
  return B;
}

/// The non-baseline runs of a comparison, in request order — the columns
/// of every "vs baseline" table.
inline std::vector<const RunResult *> nonBaseline(const ComparisonResult &C) {
  std::vector<const RunResult *> Out;
  for (const RunResult &R : C.Runs)
    if (R.Protocol != C.Baseline)
      Out.push_back(&R);
  return Out;
}

/// BenchOptions-driven suite run. A --only list from the command line
/// overrides the harness's own \p DefaultOnly selection; selecting nothing
/// (e.g. a misspelled --only) is an error, not an empty report.
///
/// Execution engine: every benchmark is recorded serially first (recording
/// runs the program itself and stays ordered and deterministic), then the
/// protocol comparisons fan out over a JobPool of B.Jobs host threads —
/// and each comparison further splits into protocol and repeat jobs on the
/// same pool. Each simulation task owns its machine, auditor, and
/// (--profile) profiler/CPI bundle, and writes only its own pre-allocated
/// row, so a parallel suite is byte-identical to a serial one except for
/// the host-timing fields.
///
/// With more than one --replacement id the suite becomes the full
/// benchmark x replacement matrix: each benchmark is still recorded once,
/// then one row per (replacement, benchmark) pair simulates on the shared
/// recording, ordered replacement-major (all benchmarks under the first
/// policy, then the next). Rows carry the policy in SuiteRow::Replacement
/// and display as "name (policy)".
inline std::vector<SuiteRow>
runSuite(const MachineConfig &Machine, const BenchOptions &B,
         const std::vector<std::string> &DefaultOnly = {},
         const RtOptions &Options = RtOptions()) {
  const std::vector<std::string> &Only = B.Only.empty() ? DefaultOnly : B.Only;

  // Phase 1 (serial): select and record.
  struct PendingRun {
    const pbbs::Benchmark *Bench = nullptr;
    pbbs::Recorded Recorded;
  };
  std::vector<PendingRun> Work;
  for (const pbbs::Benchmark &Bm : pbbs::allBenchmarks()) {
    if (!Only.empty()) {
      bool Selected = false;
      for (const std::string &Name : Only)
        Selected |= (Name == Bm.Name);
      if (!Selected)
        continue;
    }
    auto Scale = static_cast<std::size_t>(
        static_cast<double>(Bm.DefaultScale) * B.Scale);
    PendingRun P;
    P.Bench = &Bm;
    P.Recorded = Bm.Record(std::max<std::size_t>(Scale, 4), Options);
    Work.push_back(std::move(P));
  }
  if (Work.empty()) {
    std::fprintf(stderr, "error: no benchmarks selected; valid names are:");
    for (const pbbs::Benchmark &Bm : pbbs::allBenchmarks())
      std::fprintf(stderr, " %s", Bm.Name);
    std::fprintf(stderr, "\n");
    std::exit(1);
  }

  // Phase 2: simulate, fanned out over the pool. Row J of the
  // replacement-major matrix pairs benchmark J % Work.size() with
  // replacement J / Work.size(); a single-policy run degenerates to the
  // historical one-row-per-benchmark suite.
  JobPool Pool(B.Jobs);
  std::vector<SuiteRow> Rows(Work.size() * B.Replacements.size());
  auto SimulateOne = [&](std::size_t J) {
    const std::size_t I = J % Work.size();
    const std::string &Replacement = B.Replacements[J / Work.size()];
    RunOptions Run = B.Run;
    Run.Pool = B.Jobs > 1 ? &Pool : nullptr;
    Run.IntraJobs = B.IntraJobs;
    Run.Replacement = Replacement;
    // --profile: a task-local profiler/CPI pair serves this benchmark's
    // runs — the simulator's beginRun() resets them per run, and the
    // per-run reports are value snapshots inside each RunResult, so the
    // bundle dies with this task. Task-local (rather than suite-wide)
    // state is what lets benchmarks profile concurrently.
    SharingProfiler Prof;
    CpiStack Cpi;
    Observability ProfBundle;
    if (B.Profile) {
      if (!Run.Obs)
        Run.Obs = &ProfBundle;
      Run.Obs->Profiler = &Prof;
      Run.Obs->Cpi = &Cpi;
    }
    // --evlog: same task-local pattern. The base path carries the
    // benchmark name, so concurrent benchmarks write disjoint files and
    // the comparison's serial per-protocol runs reuse one writer
    // (beginRun derives "<base>.<protocol>.evlog" per run).
    EventLog Evl;
    if (!B.EvlogBase.empty()) {
      Evl.configure(B.EvlogBase + "." + Work[I].Bench->Name);
      Evl.setRunLabel(Work[I].Bench->Name);
      if (!Run.Obs)
        Run.Obs = &ProfBundle;
      Run.Obs->Log = &Evl;
    }
    SuiteRow &Row = Rows[J];
    Row.Bench = Work[I].Bench->Name;
    Row.Replacement = Replacement;
    Row.Name = B.Replacements.size() > 1
                   ? Row.Bench + " (" + Replacement + ")"
                   : Row.Bench;
    Row.Verified = Work[I].Recorded.Verified;
    auto Start = std::chrono::steady_clock::now();
    Row.Cmp = WardenSystem::compareProtocols(Work[I].Recorded.Graph, Machine,
                                             B.Protocols, Run);
    Row.HostSeconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      Start)
            .count();
    // Work performed by the comparison: every protocol's median simulates
    // the access stream Repeats times (the reported stats are one median
    // run's worth).
    double Accesses = 0.0;
    for (const RunResult &R : Row.Cmp.Runs)
      Accesses += static_cast<double>(R.Coherence.accesses());
    Accesses *= static_cast<double>(Run.Repeats);
    Row.SimAccessesPerSec =
        Row.HostSeconds > 0.0 ? Accesses / Row.HostSeconds : 0.0;
  };
  if (B.Jobs > 1 && !B.Run.Obs) {
    std::vector<std::function<void()>> Tasks;
    Tasks.reserve(Rows.size());
    for (std::size_t J = 0; J < Rows.size(); ++J)
      Tasks.push_back([&SimulateOne, J] { SimulateOne(J); });
    Pool.runAll(std::move(Tasks));
  } else {
    // An externally supplied observability bundle (B.Run.Obs) is one
    // object: benchmarks must then take turns with it. The nested
    // protocol/repeat fan-out still uses the pool.
    for (std::size_t J = 0; J < Rows.size(); ++J)
      SimulateOne(J);
  }
  return Rows;
}

/// Prints the auditor verdict for an audited suite run (no-op otherwise):
/// per-benchmark violation counts for every protocol, then the first
/// recorded messages of any benchmark that failed.
inline void printAuditSummary(const std::vector<SuiteRow> &Rows) {
  bool Enabled = false;
  for (const SuiteRow &Row : Rows)
    for (const RunResult &R : Row.Cmp.Runs)
      Enabled |= R.Audit.Enabled;
  if (!Enabled || Rows.empty())
    return;
  Table T;
  std::vector<std::string> Header = {"Benchmark"};
  for (const RunResult &R : Rows.front().Cmp.Runs)
    Header.push_back(std::string(protocolName(R.Protocol)) + " violations");
  Header.push_back("Loads verified");
  Header.push_back("WAW overlaps");
  T.setHeader(Header);
  std::uint64_t Total = 0;
  for (const SuiteRow &Row : Rows) {
    std::vector<std::string> Cells = {Row.Name};
    std::uint64_t Loads = 0;
    std::uint64_t Waw = 0;
    for (const RunResult &R : Row.Cmp.Runs) {
      Total += R.Audit.Violations;
      Loads += R.Audit.LoadsVerified;
      Waw += R.Audit.WawOverlaps;
      Cells.push_back(Table::fmt(R.Audit.Violations));
    }
    Cells.push_back(Table::fmt(Loads));
    Cells.push_back(Table::fmt(Waw));
    T.addRow(Cells);
  }
  std::printf("Protocol audit (%s).\n%s\n",
              Total == 0 ? "clean" : "VIOLATIONS DETECTED",
              T.render().c_str());
  for (const SuiteRow &Row : Rows)
    for (const RunResult &R : Row.Cmp.Runs)
      for (const std::string &Message : R.Audit.Messages)
        std::printf("  %s [%s]: %s\n", Row.Name.c_str(),
                    protocolName(R.Protocol), Message.c_str());
}

/// Prints the per-benchmark coherence-forensics report for a --profile run
/// (no-op otherwise). Three views per benchmark:
///   1. allocation-site attribution — which data structures paid
///      invalidations/downgrades under the baseline and what every other
///      protocol did to them;
///   2. the hottest individual cache lines under the baseline with their
///      sharing classification (true/false sharing, migratory, ...);
///   3. the CPI stack — where each protocol's cycles went, summed over
///      cores, with the off-critical-path store-buffered latency shown
///      separately.
inline void printProfiles(const std::vector<SuiteRow> &Rows,
                          std::size_t TopLines = 8) {
  bool Enabled = false;
  for (const SuiteRow &Row : Rows)
    for (const RunResult &R : Row.Cmp.Runs)
      Enabled |= R.Profile.Enabled;
  if (!Enabled)
    return;

  for (const SuiteRow &Row : Rows) {
    bool RowEnabled = false;
    for (const RunResult &R : Row.Cmp.Runs)
      RowEnabled |= R.Profile.Enabled;
    if (!RowEnabled)
      continue;
    const RunResult &Base = Row.Cmp.baseline();
    std::vector<const RunResult *> Others = nonBaseline(Row.Cmp);
    std::printf("Coherence forensics: %s\n", Row.Name.c_str());

    // View 1: site attribution, the baseline's cost next to every other
    // protocol's cost (and its reconciliation work, if it has any).
    struct SiteSides {
      std::uint64_t BaseInvDown = 0;
      std::uint64_t BaseLines = 0;
      /// Parallel to Others: inv+down and reconciles per other protocol.
      std::vector<std::uint64_t> InvDown;
      std::vector<std::uint64_t> Reconciles;
    };
    std::map<std::string, SiteSides> Sites;
    auto SidesOf = [&Sites, &Others](const std::string &Name) -> SiteSides & {
      SiteSides &E = Sites[Name];
      if (E.InvDown.empty()) {
        E.InvDown.resize(Others.size(), 0);
        E.Reconciles.resize(Others.size(), 0);
      }
      return E;
    };
    for (const SiteProfile &S : Base.Profile.Sites) {
      SiteSides &E = SidesOf(S.SiteName);
      E.BaseInvDown = S.Invalidations + S.Downgrades;
      E.BaseLines = S.Lines;
    }
    for (std::size_t O = 0; O < Others.size(); ++O) {
      for (const SiteProfile &S : Others[O]->Profile.Sites) {
        SiteSides &E = SidesOf(S.SiteName);
        E.InvDown[O] = S.Invalidations + S.Downgrades;
        E.Reconciles[O] = S.Reconciles;
      }
    }
    double BaseTotal = static_cast<double>(Base.Profile.TotalInvalidations +
                                           Base.Profile.TotalDowngrades);
    Table ST;
    std::vector<std::string> SiteHeader = {
        "Site", "Lines",
        std::string(protocolName(Base.Protocol)) + " inv+down", "Share"};
    for (const RunResult *R : Others) {
      SiteHeader.push_back(std::string(protocolName(R->Protocol)) +
                           " inv+down");
      SiteHeader.push_back(std::string(protocolName(R->Protocol)) +
                           " reconciles");
    }
    ST.setHeader(SiteHeader);
    for (const auto &[Name, E] : Sites) {
      std::uint64_t Any = E.BaseInvDown;
      for (std::size_t O = 0; O < Others.size(); ++O)
        Any += E.InvDown[O] + E.Reconciles[O];
      if (Any == 0)
        continue;
      double Share = BaseTotal == 0
                         ? 0.0
                         : static_cast<double>(E.BaseInvDown) / BaseTotal;
      std::vector<std::string> Cells = {Name, Table::fmt(E.BaseLines),
                                        Table::fmt(E.BaseInvDown),
                                        Table::pct(Share)};
      for (std::size_t O = 0; O < Others.size(); ++O) {
        Cells.push_back(Table::fmt(E.InvDown[O]));
        Cells.push_back(Table::fmt(E.Reconciles[O]));
      }
      ST.addRow(Cells);
    }
    std::printf("%s\n", ST.render().c_str());

    // View 2: the hottest individual lines under the baseline protocol.
    if (!Base.Profile.Lines.empty()) {
      Table LT;
      LT.setHeader({"Line", "Site", "Class", "Inv", "Down", "Misses",
                    "Avg miss", "Ping-pong"});
      std::size_t Shown = 0;
      for (const LineProfile &P : Base.Profile.Lines) {
        if (Shown == TopLines)
          break;
        ++Shown;
        char Hex[32];
        std::snprintf(Hex, sizeof(Hex), "0x%llx",
                      static_cast<unsigned long long>(P.Block));
        double AvgMiss = P.DemandMisses == 0
                             ? 0.0
                             : static_cast<double>(P.DemandMissCycles) /
                                   static_cast<double>(P.DemandMisses);
        LT.addRow({Hex, P.SiteName, sharingClassName(P.Class),
                   Table::fmt(P.Invalidations), Table::fmt(P.Downgrades),
                   Table::fmt(P.DemandMisses), Table::fmt(AvgMiss, 1),
                   Table::fmt(P.PingPongs)});
      }
      std::printf("Hot lines under %s (top %zu of %llu tracked; %llu "
                  "events on untracked lines).\n%s\n",
                  protocolName(Base.Protocol), Shown,
                  static_cast<unsigned long long>(Base.Profile.TrackedLines),
                  static_cast<unsigned long long>(Base.Profile.DroppedEvents),
                  LT.render().c_str());
    }

    // View 3: the CPI stack, one cycles/% column pair per protocol.
    bool AnyCpi = false;
    for (const RunResult &R : Row.Cmp.Runs)
      AnyCpi |= R.Cpi.Enabled;
    if (AnyCpi) {
      auto CoreSum = [](const CpiReport &R) {
        Cycles Sum = 0;
        for (Cycles T : R.CoreTime)
          Sum += T;
        return Sum;
      };
      auto Pct = [](Cycles Part, Cycles Whole) {
        return Whole == 0 ? 0.0
                          : static_cast<double>(Part) /
                                static_cast<double>(Whole);
      };
      std::vector<Cycles> Time;
      std::vector<std::string> CpiHeader = {"Category"};
      for (const RunResult &R : Row.Cmp.Runs) {
        Time.push_back(CoreSum(R.Cpi));
        CpiHeader.push_back(std::string(protocolName(R.Protocol)) +
                            " cycles");
        CpiHeader.push_back(std::string(protocolName(R.Protocol)) + " %");
      }
      Table CT;
      CT.setHeader(CpiHeader);
      std::vector<Cycles> Acc(Row.Cmp.Runs.size(), 0);
      for (unsigned C = 0; C < static_cast<unsigned>(CpiCat::Count); ++C) {
        auto Cat = static_cast<CpiCat>(C);
        // Percentages for the off-critical-path row would double count.
        bool OffPath = Cat == CpiCat::StoreBuffered;
        std::vector<std::string> Cells = {cpiCategoryName(Cat)};
        Cycles Any = 0;
        for (std::size_t P = 0; P < Row.Cmp.Runs.size(); ++P) {
          const CpiReport &R = Row.Cmp.Runs[P].Cpi;
          Cycles T = R.Enabled ? R.total(Cat) : 0;
          if (!OffPath)
            Acc[P] += T;
          Any += T;
          Cells.push_back(Table::fmt(T));
          Cells.push_back(OffPath ? "-" : Table::pct(Pct(T, Time[P])));
        }
        if (Any == 0)
          continue;
        CT.addRow(Cells);
      }
      std::vector<std::string> OtherCells = {"other"};
      for (std::size_t P = 0; P < Row.Cmp.Runs.size(); ++P) {
        Cycles Other = Time[P] > Acc[P] ? Time[P] - Acc[P] : 0;
        OtherCells.push_back(Table::fmt(Other));
        OtherCells.push_back(Table::pct(Pct(Other, Time[P])));
      }
      CT.addRow(OtherCells);
      std::printf("CPI stack (cycles summed over cores; %% of core time).\n"
                  "%s\n",
                  CT.render().c_str());
    }
  }
}

/// Figure 7a/8a/12a style: per benchmark, every protocol's cycles plus its
/// speedup over the baseline, then MEAN and (when every speedup is
/// positive) GEOMEAN — the conventional aggregate for ratios, reported
/// alongside the paper's arithmetic mean.
inline void printPerformance(const char *Caption,
                             const std::vector<SuiteRow> &Rows) {
  if (Rows.empty()) {
    std::fprintf(stderr, "%s: no benchmarks selected\n", Caption);
    return;
  }
  const ComparisonResult &First = Rows.front().Cmp;
  std::vector<const RunResult *> Others = nonBaseline(First);
  Table T;
  std::vector<std::string> Header = {"Benchmark"};
  for (const RunResult &R : First.Runs)
    Header.push_back(std::string(protocolName(R.Protocol)) + " cycles");
  for (const RunResult *R : Others)
    Header.push_back(std::string(protocolName(R->Protocol)) + " speedup");
  Header.push_back("Verified");
  T.setHeader(Header);
  std::vector<Summary> Speedups(Others.size());
  for (const SuiteRow &Row : Rows) {
    std::vector<std::string> Cells = {Row.Name};
    for (const RunResult &R : Row.Cmp.Runs)
      Cells.push_back(Table::fmt(R.Makespan));
    for (std::size_t O = 0; O < Others.size(); ++O) {
      double S = Row.Cmp.speedup(Others[O]->Protocol);
      Speedups[O].add(S);
      Cells.push_back(Table::fmt(S, 2) + "x");
    }
    Cells.push_back(Row.Verified ? "yes" : "NO");
    T.addRow(Cells);
  }
  if (!Others.empty()) {
    std::vector<std::string> MeanCells = {"MEAN"};
    for (std::size_t P = 0; P < First.Runs.size(); ++P)
      MeanCells.push_back("-");
    for (const Summary &S : Speedups)
      MeanCells.push_back(Table::fmt(S.mean(), 2) + "x");
    MeanCells.push_back("-");
    T.addRow(MeanCells);
    bool AllPositive = true;
    for (const Summary &S : Speedups)
      AllPositive &= S.allPositive();
    if (AllPositive) {
      std::vector<std::string> GeoCells = {"GEOMEAN"};
      for (std::size_t P = 0; P < First.Runs.size(); ++P)
        GeoCells.push_back("-");
      for (const Summary &S : Speedups)
        GeoCells.push_back(Table::fmt(S.geomean(), 2) + "x");
      GeoCells.push_back("-");
      T.addRow(GeoCells);
    }
  }
  std::printf("%s\n%s\n", Caption, T.render().c_str());
}

/// Figure 7b/8b/12b style: percent energy savings of every non-baseline
/// protocol over the baseline, per benchmark plus MEAN.
inline void printEnergy(const char *Caption,
                        const std::vector<SuiteRow> &Rows) {
  if (Rows.empty()) {
    std::fprintf(stderr, "%s: no benchmarks selected\n", Caption);
    return;
  }
  std::vector<const RunResult *> Others = nonBaseline(Rows.front().Cmp);
  if (Others.empty()) {
    std::printf("%s\n(only the baseline protocol was simulated; no relative "
                "savings to report)\n\n",
                Caption);
    return;
  }
  Table T;
  std::vector<std::string> Header = {"Benchmark"};
  for (const RunResult *R : Others) {
    Header.push_back(std::string(protocolName(R->Protocol)) +
                     " interconnect savings");
    Header.push_back(std::string(protocolName(R->Protocol)) +
                     " total savings");
  }
  T.setHeader(Header);
  std::vector<Summary> Net(Others.size());
  std::vector<Summary> TotalEnergy(Others.size());
  for (const SuiteRow &Row : Rows) {
    std::vector<std::string> Cells = {Row.Name};
    for (std::size_t O = 0; O < Others.size(); ++O) {
      double N = Row.Cmp.interconnectEnergySavings(Others[O]->Protocol);
      double P = Row.Cmp.totalEnergySavings(Others[O]->Protocol);
      Net[O].add(N);
      TotalEnergy[O].add(P);
      Cells.push_back(Table::pct(N));
      Cells.push_back(Table::pct(P));
    }
    T.addRow(Cells);
  }
  std::vector<std::string> MeanCells = {"MEAN"};
  for (std::size_t O = 0; O < Others.size(); ++O) {
    MeanCells.push_back(Table::pct(Net[O].mean()));
    MeanCells.push_back(Table::pct(TotalEnergy[O].mean()));
  }
  T.addRow(MeanCells);
  std::printf("%s\n%s\n", Caption, T.render().c_str());
}

/// Emits one protocol's run record for the JSON report.
inline void writeRunJson(JsonWriter &W, const RunResult &R) {
  W.beginObject();
  W.member("makespan_cycles", R.Makespan);
  W.member("instructions", R.Instructions);
  W.member("ipc", R.ipc());
  W.member("ward_coverage", R.wardCoverage());
  W.member("invalidations", R.Coherence.Invalidations);
  W.member("downgrades", R.Coherence.Downgrades);
  W.member("interconnect_energy_nj", R.Energy.interconnectNJ());
  W.member("total_energy_nj", R.Energy.totalProcessorNJ());
  W.member("peak_regions", R.PeakRegions);
  if (R.Protocol == ProtocolKind::Racoh) {
    // Log-coherence metrics only racoh produces; gating on the protocol
    // keeps every pre-racoh record byte-identical.
    const CoherenceStats &S = R.Coherence;
    W.member("log_publishes", S.LogPublishes);
    W.member("log_records_published", S.LogRecordsPublished);
    W.member("log_records_consumed", S.LogRecordsConsumed);
    W.member("log_backpressure_stalls", S.LogBackpressureStalls);
    W.member("log_invalidations", S.LogInvalidations);
    W.member("pre_invalidate_avoided", S.PreInvalidateAvoided);
    W.member("pre_invalidate_avoidance_rate", S.preInvalidateAvoidanceRate());
    W.member("cross_node_hops", S.CrossNodeHops);
    W.member("log_queue_peak_occupancy", S.LogQueuePeakOccupancy);
    W.member("msgs_inter_node", S.MsgsInterNode);
    W.member("data_inter_node", S.DataInterNode);
  }
  W.endObject();
}

/// Writes the machine-readable report (schema "warden-bench-v3",
/// documented in README.md): one record per benchmark x replacement row
/// with every protocol's raw results in a "protocols" map keyed by
/// registry id, the relative metrics against the named baseline in a
/// "comparisons" map (one entry per non-baseline protocol), plus a "mean"
/// record matching the printed tables. v3 over v2: a top-level
/// "replacements" array and a per-record "replacement" member ("name"
/// stays the plain benchmark name so lru rows diff cleanly against v1/v2
/// baselines — scripts/bench_diff.py keys non-lru rows "name@policy").
/// Returns false (with a message on stderr) if the file cannot be
/// written.
inline bool writeJsonReport(const std::string &Path, const char *Experiment,
                            const MachineConfig &Machine,
                            const BenchOptions &B,
                            const std::vector<SuiteRow> &Rows) {
  JsonWriter W;
  W.beginObject();
  W.member("schema", "warden-bench-v3");
  W.member("experiment", Experiment);
  W.member("scale", B.Scale);
  const ComparisonResult *First = Rows.empty() ? nullptr : &Rows.front().Cmp;
  W.member("baseline",
           protocolId(First ? First->Baseline : ProtocolKind::Mesi));
  W.key("protocols").beginArray();
  if (First)
    for (const RunResult &R : First->Runs)
      W.value(protocolId(R.Protocol));
  W.endArray();
  W.key("replacements").beginArray();
  for (const std::string &Id : B.Replacements)
    W.value(Id);
  W.endArray();
  W.key("machine").beginObject();
  W.member("description", Machine.describe());
  W.member("sockets", Machine.NumSockets);
  W.member("cores_per_socket", Machine.CoresPerSocket);
  W.member("total_cores", Machine.totalCores());
  W.member("disaggregated", Machine.Disaggregated);
  W.member("nodes", Machine.NumNodes);
  W.endObject();

  // Host-side engine throughput. Everything under "host" (and the
  // host_seconds / sim_accesses_per_sec members below) describes the
  // simulator, not the simulated machine: it varies run to run and is
  // ignored by baseline comparison unless explicitly requested
  // (scripts/bench_diff.py --check-perf).
  double TotalHostSeconds = 0.0;
  double LogThroughputSum = 0.0;
  std::size_t ThroughputRows = 0;
  for (const SuiteRow &Row : Rows) {
    TotalHostSeconds += Row.HostSeconds;
    if (Row.SimAccessesPerSec > 0.0) {
      LogThroughputSum += std::log(Row.SimAccessesPerSec);
      ++ThroughputRows;
    }
  }
  W.key("host").beginObject();
  W.member("jobs", static_cast<std::uint64_t>(B.Jobs));
  W.member("intra_jobs", static_cast<std::uint64_t>(B.IntraJobs));
  W.member("total_seconds", TotalHostSeconds);
  W.member("sim_accesses_per_sec_geomean",
           ThroughputRows > 0
               ? std::exp(LogThroughputSum /
                          static_cast<double>(ThroughputRows))
               : 0.0);
  W.endObject();

  std::vector<const RunResult *> Others =
      First ? nonBaseline(*First) : std::vector<const RunResult *>();
  // Per non-baseline protocol: the summaries behind the "mean" record.
  std::vector<Summary> Speedups(Others.size()), Interconnect(Others.size()),
      TotalEnergy(Others.size()), IpcImprovement(Others.size()),
      Coverage(Others.size());
  std::uint64_t Violations = 0;
  bool Audited = false;
  W.key("benchmarks").beginArray();
  for (const SuiteRow &Row : Rows) {
    const ComparisonResult &Cmp = Row.Cmp;
    std::uint64_t RowViolations = 0;
    bool RowAudited = false;
    for (const RunResult &R : Cmp.Runs) {
      RowViolations += R.Audit.Violations;
      RowAudited |= R.Audit.Enabled;
    }
    Violations += RowViolations;
    Audited |= RowAudited;

    W.beginObject();
    W.member("name", Row.Bench.empty() ? Row.Name : Row.Bench);
    W.member("replacement", Row.Replacement);
    W.member("verified", Row.Verified);
    W.member("host_seconds", Row.HostSeconds);
    W.member("sim_accesses_per_sec", Row.SimAccessesPerSec);
    W.key("protocols").beginObject();
    for (const RunResult &R : Cmp.Runs) {
      W.key(protocolId(R.Protocol));
      writeRunJson(W, R);
    }
    W.endObject();
    W.key("comparisons").beginObject();
    for (std::size_t O = 0; O < Others.size(); ++O) {
      ProtocolKind Kind = Others[O]->Protocol;
      Speedups[O].add(Cmp.speedup(Kind));
      Interconnect[O].add(Cmp.interconnectEnergySavings(Kind));
      TotalEnergy[O].add(Cmp.totalEnergySavings(Kind));
      IpcImprovement[O].add(Cmp.ipcImprovementPct(Kind));
      Coverage[O].add(Cmp.run(Kind).wardCoverage());
      W.key(protocolId(Kind)).beginObject();
      W.member("speedup", Cmp.speedup(Kind));
      W.member("energy_ratio", Cmp.energyRatio(Kind));
      W.member("interconnect_energy_savings",
               Cmp.interconnectEnergySavings(Kind));
      W.member("total_energy_savings", Cmp.totalEnergySavings(Kind));
      W.member("ipc_improvement_pct", Cmp.ipcImprovementPct(Kind));
      W.member("inv_down_avoided_per_kilo_instr",
               Cmp.invDownReducedPerKiloInstr(Kind));
      W.member("downgrade_share_of_reduction",
               Cmp.downgradeShareOfReduction(Kind));
      W.endObject();
    }
    W.endObject();
    bool AnyProfile = false;
    for (const RunResult &R : Cmp.Runs)
      AnyProfile |= R.Profile.Enabled;
    if (AnyProfile) {
      W.key("profile").beginObject();
      for (const RunResult &R : Cmp.Runs) {
        W.key(protocolId(R.Protocol)).beginObject();
        W.key("sharing");
        R.Profile.writeJson(W);
        W.key("cpi");
        R.Cpi.writeJson(W);
        W.endObject();
      }
      W.endObject();
    }
    W.key("audit").beginObject();
    W.member("enabled", RowAudited);
    W.member("violations", RowViolations);
    W.member("clean", RowViolations == 0);
    W.endObject();
    W.endObject();
  }
  W.endArray();

  W.key("mean").beginObject();
  W.member("n", static_cast<std::uint64_t>(Rows.size()));
  if (!Rows.empty()) {
    W.key("comparisons").beginObject();
    for (std::size_t O = 0; O < Others.size(); ++O) {
      W.key(protocolId(Others[O]->Protocol)).beginObject();
      W.member("speedup", Speedups[O].mean());
      W.key("speedup_geomean");
      if (Speedups[O].allPositive())
        W.value(Speedups[O].geomean());
      else
        W.null();
      W.member("interconnect_energy_savings", Interconnect[O].mean());
      W.member("total_energy_savings", TotalEnergy[O].mean());
      W.member("ipc_improvement_pct", IpcImprovement[O].mean());
      W.member("ward_coverage", Coverage[O].mean());
      W.endObject();
    }
    W.endObject();
    W.member("audit_verdict", !Audited        ? "not-audited"
                              : Violations == 0 ? "clean"
                                                : "violations");
  }
  W.endObject();
  W.endObject();

  std::FILE *F = std::fopen(Path.c_str(), "wb");
  if (!F) {
    std::fprintf(stderr, "error: cannot write JSON report to %s\n",
                 Path.c_str());
    return false;
  }
  const std::string &Doc = W.str();
  std::fwrite(Doc.data(), 1, Doc.size(), F);
  std::fputc('\n', F);
  std::fclose(F);
  std::printf("wrote JSON report: %s\n", Path.c_str());
  return true;
}

/// Writes the JSON report when --json=FILE was given; exits non-zero on an
/// unwritable path so CI catches it.
inline void maybeWriteJsonReport(const char *Experiment,
                                 const MachineConfig &Machine,
                                 const BenchOptions &B,
                                 const std::vector<SuiteRow> &Rows) {
  if (B.JsonPath.empty())
    return;
  if (!writeJsonReport(B.JsonPath, Experiment, Machine, B, Rows))
    std::exit(1);
}

} // namespace bench
} // namespace warden

#endif // WARDEN_BENCH_HARNESS_H
