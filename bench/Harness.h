//===- bench/Harness.h - Shared experiment harness -------------*- C++ -*-===//
//
// Part of the WARDen reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Shared plumbing for the figure harnesses: record every PBBS benchmark
/// once, simulate it under MESI and WARDen on a given machine, and print
/// paper-style rows. Each figure binary selects which columns to show.
///
//===----------------------------------------------------------------------===//

#ifndef WARDEN_BENCH_HARNESS_H
#define WARDEN_BENCH_HARNESS_H

#include "src/core/WardenSystem.h"
#include "src/pbbs/Pbbs.h"
#include "src/support/Summary.h"
#include "src/support/Table.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

namespace warden {
namespace bench {

/// One benchmark's results under a machine configuration.
struct SuiteRow {
  std::string Name;
  bool Verified = false;
  ProtocolComparison Cmp;
};

/// Parses the command-line flags shared by the figure harnesses into
/// RunOptions:
///   --audit          attach the ProtocolAuditor to every simulated run
///                    (invariant + shadow-value checking; slower, same
///                    cycles) and print a violation summary at the end
///   --faults[=seed]  enable the standard fault-injection plan (randomized
///                    evictions and adversarial mid-region reconciles,
///                    SplitMix64-seeded so failures replay)
/// Unknown arguments print usage and exit, so a typo cannot silently run
/// the wrong experiment.
inline RunOptions parseBenchArgs(int argc, char **argv) {
  RunOptions Run;
  for (int I = 1; I < argc; ++I) {
    const char *Arg = argv[I];
    if (std::strcmp(Arg, "--audit") == 0) {
      Run.Audit = true;
      // Benchmarks touch far more blocks than the unit tests; keep the
      // periodic full sweeps affordable and rely on per-access checks.
      Run.AuditConfig.SweepInterval = 1u << 20;
    } else if (std::strncmp(Arg, "--faults", 8) == 0 &&
               (Arg[8] == '\0' || Arg[8] == '=')) {
      Run.Faults.EvictionRate = 1e-3;
      Run.Faults.ReconcileRate = 1e-3;
      if (Arg[8] == '=')
        Run.Faults.Seed = std::strtoull(Arg + 9, nullptr, 0);
    } else {
      std::fprintf(stderr, "usage: %s [--audit] [--faults[=seed]]\n",
                   argv[0]);
      std::exit(2);
    }
  }
  return Run;
}

/// Records and simulates the whole suite (or \p Only if non-empty).
inline std::vector<SuiteRow>
runSuite(const MachineConfig &Machine,
         const std::vector<std::string> &Only = {},
         const RtOptions &Options = RtOptions(), double ScaleFactor = 1.0,
         const RunOptions &Run = RunOptions()) {
  std::vector<SuiteRow> Rows;
  for (const pbbs::Benchmark &B : pbbs::allBenchmarks()) {
    if (!Only.empty()) {
      bool Selected = false;
      for (const std::string &Name : Only)
        Selected |= (Name == B.Name);
      if (!Selected)
        continue;
    }
    auto Scale = static_cast<std::size_t>(
        static_cast<double>(B.DefaultScale) * ScaleFactor);
    pbbs::Recorded R = B.Record(std::max<std::size_t>(Scale, 4), Options);
    SuiteRow Row;
    Row.Name = B.Name;
    Row.Verified = R.Verified;
    Row.Cmp = WardenSystem::compare(R.Graph, Machine, Run);
    Rows.push_back(std::move(Row));
    std::fflush(stdout);
  }
  return Rows;
}

/// Prints the auditor verdict for an audited suite run (no-op otherwise):
/// per-benchmark violation counts for both protocols, then the first
/// recorded messages of any benchmark that failed.
inline void printAuditSummary(const std::vector<SuiteRow> &Rows) {
  bool Enabled = false;
  for (const SuiteRow &Row : Rows)
    Enabled |= Row.Cmp.Mesi.Audit.Enabled || Row.Cmp.Warden.Audit.Enabled;
  if (!Enabled)
    return;
  Table T;
  T.setHeader({"Benchmark", "MESI violations", "WARDen violations",
               "Loads verified", "WAW overlaps"});
  std::uint64_t Total = 0;
  for (const SuiteRow &Row : Rows) {
    const AuditReport &M = Row.Cmp.Mesi.Audit;
    const AuditReport &W = Row.Cmp.Warden.Audit;
    Total += M.Violations + W.Violations;
    T.addRow({Row.Name, Table::fmt(M.Violations), Table::fmt(W.Violations),
              Table::fmt(M.LoadsVerified + W.LoadsVerified),
              Table::fmt(W.WawOverlaps)});
  }
  std::printf("Protocol audit (%s).\n%s\n",
              Total == 0 ? "clean" : "VIOLATIONS DETECTED",
              T.render().c_str());
  for (const SuiteRow &Row : Rows)
    for (const AuditReport *R : {&Row.Cmp.Mesi.Audit, &Row.Cmp.Warden.Audit})
      for (const std::string &Message : R->Messages)
        std::printf("  %s: %s\n", Row.Name.c_str(), Message.c_str());
}

/// Figure 7a/8a/12a style: normalized speedup per benchmark plus MEAN.
inline void printPerformance(const char *Caption,
                             const std::vector<SuiteRow> &Rows) {
  Table T;
  T.setHeader({"Benchmark", "MESI cycles", "WARDen cycles", "Speedup",
               "Verified"});
  Summary Speedups;
  for (const SuiteRow &Row : Rows) {
    double S = Row.Cmp.speedup();
    Speedups.add(S);
    T.addRow({Row.Name, Table::fmt(Row.Cmp.Mesi.Makespan),
              Table::fmt(Row.Cmp.Warden.Makespan),
              Table::fmt(S, 2) + "x", Row.Verified ? "yes" : "NO"});
  }
  T.addRow({"MEAN", "-", "-", Table::fmt(Speedups.mean(), 2) + "x", "-"});
  std::printf("%s\n%s\n", Caption, T.render().c_str());
}

/// Figure 7b/8b/12b style: percent energy savings per benchmark plus MEAN.
inline void printEnergy(const char *Caption,
                        const std::vector<SuiteRow> &Rows) {
  Table T;
  T.setHeader({"Benchmark", "Interconnect savings", "Total processor savings"});
  Summary Net;
  Summary TotalEnergy;
  for (const SuiteRow &Row : Rows) {
    double N = Row.Cmp.interconnectEnergySavings();
    double P = Row.Cmp.totalEnergySavings();
    Net.add(N);
    TotalEnergy.add(P);
    T.addRow({Row.Name, Table::pct(N), Table::pct(P)});
  }
  T.addRow({"MEAN", Table::pct(Net.mean()), Table::pct(TotalEnergy.mean())});
  std::printf("%s\n%s\n", Caption, T.render().c_str());
}

} // namespace bench
} // namespace warden

#endif // WARDEN_BENCH_HARNESS_H
