//===- bench/Harness.h - Shared experiment harness -------------*- C++ -*-===//
//
// Part of the WARDen reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Shared plumbing for the figure harnesses: record every PBBS benchmark
/// once, simulate it under MESI and WARDen on a given machine, and print
/// paper-style rows. Each figure binary selects which columns to show.
///
//===----------------------------------------------------------------------===//

#ifndef WARDEN_BENCH_HARNESS_H
#define WARDEN_BENCH_HARNESS_H

#include "src/core/WardenSystem.h"
#include "src/obs/Observability.h"
#include "src/pbbs/Pbbs.h"
#include "src/support/JobPool.h"
#include "src/support/Json.h"
#include "src/support/Summary.h"
#include "src/support/Table.h"

#include <chrono>
#include <cstddef>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <map>
#include <string>
#include <vector>

namespace warden {
namespace bench {

/// One benchmark's results under a machine configuration.
struct SuiteRow {
  std::string Name;
  bool Verified = false;
  ProtocolComparison Cmp;
  /// Host wall-clock seconds the protocol comparison took (simulation
  /// only; recording is excluded). Host-side measurement — varies run to
  /// run while every simulated metric stays deterministic.
  double HostSeconds = 0.0;
  /// Simulated demand accesses retired per host second across the whole
  /// comparison (both protocols, all repeats). The engine's throughput.
  double SimAccessesPerSec = 0.0;
};

/// Everything the shared command line controls: the simulation options
/// plus the harness-level selection, scaling, and report knobs.
struct BenchOptions {
  RunOptions Run;
  /// Benchmarks to run; empty means the harness's own default selection.
  std::vector<std::string> Only;
  /// Multiplier applied to every benchmark's default problem size.
  double Scale = 1.0;
  /// When non-empty, write the machine-readable report here.
  std::string JsonPath;
  /// Attach the sharing profiler + CPI stack to every run (--profile):
  /// per-line/per-site coherence attribution and cycle accounting, printed
  /// after the figure tables and embedded in the JSON report.
  bool Profile = false;
  /// Host threads simulating concurrently (--jobs). 1 = the serial path.
  /// Parallel runs produce byte-identical reports modulo the host-timing
  /// fields: every job owns its simulated machine and result slot.
  unsigned Jobs = 1;
};

/// Parses the command-line flags shared by the figure harnesses:
///   --audit          attach the ProtocolAuditor to every simulated run
///                    (invariant + shadow-value checking; slower, same
///                    cycles) and print a violation summary at the end
///   --faults[=seed]  enable the standard fault-injection plan (randomized
///                    evictions and adversarial mid-region reconciles,
///                    SplitMix64-seeded so failures replay)
///   --only=NAMES     run only the named benchmarks (comma-separated,
///                    repeatable); names that match nothing fail fast
///   --scale=X        multiply every benchmark's problem size by X
///   --json=FILE      also write the warden-bench-v1 JSON report to FILE
///   --profile        attach the per-line sharing profiler and CPI stacks
///                    (same cycles; prints attribution tables, adds a
///                    "profile" section to the JSON report)
///   --jobs=N         simulate on N host threads (protocol x benchmark x
///                    repeat fan-out; default 1). Changes wall time only:
///                    reports are byte-identical to --jobs=1 modulo the
///                    host_seconds / sim_accesses_per_sec fields
/// Unknown arguments print usage and exit, so a typo cannot silently run
/// the wrong experiment.
inline BenchOptions parseBenchArgs(int argc, char **argv) {
  BenchOptions B;
  for (int I = 1; I < argc; ++I) {
    const char *Arg = argv[I];
    if (std::strcmp(Arg, "--audit") == 0) {
      B.Run.Audit = true;
      // Benchmarks touch far more blocks than the unit tests; keep the
      // periodic full sweeps affordable and rely on per-access checks.
      B.Run.AuditConfig.SweepInterval = 1u << 20;
    } else if (std::strncmp(Arg, "--faults", 8) == 0 &&
               (Arg[8] == '\0' || Arg[8] == '=')) {
      B.Run.Faults.EvictionRate = 1e-3;
      B.Run.Faults.ReconcileRate = 1e-3;
      if (Arg[8] == '=')
        B.Run.Faults.Seed = std::strtoull(Arg + 9, nullptr, 0);
    } else if (std::strncmp(Arg, "--only=", 7) == 0) {
      const char *Cursor = Arg + 7;
      while (*Cursor) {
        const char *Comma = std::strchr(Cursor, ',');
        std::size_t Len = Comma ? static_cast<std::size_t>(Comma - Cursor)
                                : std::strlen(Cursor);
        if (Len > 0)
          B.Only.emplace_back(Cursor, Len);
        Cursor += Len + (Comma ? 1 : 0);
      }
    } else if (std::strncmp(Arg, "--scale=", 8) == 0) {
      char *End = nullptr;
      B.Scale = std::strtod(Arg + 8, &End);
      if (End == Arg + 8 || *End != '\0' || B.Scale <= 0) {
        std::fprintf(stderr, "%s: --scale wants a positive number, got %s\n",
                     argv[0], Arg + 8);
        std::exit(2);
      }
    } else if (std::strncmp(Arg, "--json=", 7) == 0) {
      B.JsonPath = Arg + 7;
    } else if (std::strcmp(Arg, "--profile") == 0) {
      B.Profile = true;
    } else if (std::strncmp(Arg, "--jobs=", 7) == 0) {
      char *End = nullptr;
      unsigned long Jobs = std::strtoul(Arg + 7, &End, 10);
      if (End == Arg + 7 || *End != '\0' || Jobs == 0) {
        std::fprintf(stderr,
                     "%s: --jobs wants a positive integer, got %s\n",
                     argv[0], Arg + 7);
        std::exit(2);
      }
      B.Jobs = static_cast<unsigned>(Jobs);
    } else {
      std::fprintf(stderr,
                   "usage: %s [--audit] [--faults[=seed]] "
                   "[--only=NAME[,NAME...]] [--scale=X] [--json=FILE] "
                   "[--profile] [--jobs=N]\n",
                   argv[0]);
      std::exit(2);
    }
  }
  return B;
}

/// BenchOptions-driven suite run. A --only list from the command line
/// overrides the harness's own \p DefaultOnly selection; selecting nothing
/// (e.g. a misspelled --only) is an error, not an empty report.
///
/// Execution engine: every benchmark is recorded serially first (recording
/// runs the program itself and stays ordered and deterministic), then the
/// protocol comparisons fan out over a JobPool of B.Jobs host threads —
/// and each comparison further splits into protocol and repeat jobs on the
/// same pool. Each simulation task owns its machine, auditor, and
/// (--profile) profiler/CPI bundle, and writes only its own pre-allocated
/// row, so a parallel suite is byte-identical to a serial one except for
/// the host-timing fields.
inline std::vector<SuiteRow>
runSuite(const MachineConfig &Machine, const BenchOptions &B,
         const std::vector<std::string> &DefaultOnly = {},
         const RtOptions &Options = RtOptions()) {
  const std::vector<std::string> &Only = B.Only.empty() ? DefaultOnly : B.Only;

  // Phase 1 (serial): select and record.
  struct PendingRun {
    const pbbs::Benchmark *Bench = nullptr;
    pbbs::Recorded Recorded;
  };
  std::vector<PendingRun> Work;
  for (const pbbs::Benchmark &Bm : pbbs::allBenchmarks()) {
    if (!Only.empty()) {
      bool Selected = false;
      for (const std::string &Name : Only)
        Selected |= (Name == Bm.Name);
      if (!Selected)
        continue;
    }
    auto Scale = static_cast<std::size_t>(
        static_cast<double>(Bm.DefaultScale) * B.Scale);
    PendingRun P;
    P.Bench = &Bm;
    P.Recorded = Bm.Record(std::max<std::size_t>(Scale, 4), Options);
    Work.push_back(std::move(P));
  }
  if (Work.empty()) {
    std::fprintf(stderr, "error: no benchmarks selected; valid names are:");
    for (const pbbs::Benchmark &Bm : pbbs::allBenchmarks())
      std::fprintf(stderr, " %s", Bm.Name);
    std::fprintf(stderr, "\n");
    std::exit(1);
  }

  // Phase 2: simulate, fanned out over the pool.
  JobPool Pool(B.Jobs);
  std::vector<SuiteRow> Rows(Work.size());
  auto SimulateOne = [&](std::size_t I) {
    RunOptions Run = B.Run;
    Run.Pool = B.Jobs > 1 ? &Pool : nullptr;
    // --profile: a task-local profiler/CPI pair serves this benchmark's
    // runs — the simulator's beginRun() resets them per run, and the
    // per-run reports are value snapshots inside each RunResult, so the
    // bundle dies with this task. Task-local (rather than suite-wide)
    // state is what lets benchmarks profile concurrently.
    SharingProfiler Prof;
    CpiStack Cpi;
    Observability ProfBundle;
    if (B.Profile) {
      if (!Run.Obs)
        Run.Obs = &ProfBundle;
      Run.Obs->Profiler = &Prof;
      Run.Obs->Cpi = &Cpi;
    }
    SuiteRow &Row = Rows[I];
    Row.Name = Work[I].Bench->Name;
    Row.Verified = Work[I].Recorded.Verified;
    auto Start = std::chrono::steady_clock::now();
    Row.Cmp = WardenSystem::compare(Work[I].Recorded.Graph, Machine, Run);
    Row.HostSeconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      Start)
            .count();
    // Work performed by the comparison: both protocols' medians simulate
    // the access stream Repeats times each (the reported stats are one
    // median run's worth).
    double Accesses =
        static_cast<double>(Row.Cmp.Mesi.Coherence.accesses() +
                            Row.Cmp.Warden.Coherence.accesses()) *
        static_cast<double>(Run.Repeats);
    Row.SimAccessesPerSec =
        Row.HostSeconds > 0.0 ? Accesses / Row.HostSeconds : 0.0;
  };
  if (B.Jobs > 1 && !B.Run.Obs) {
    std::vector<std::function<void()>> Tasks;
    Tasks.reserve(Work.size());
    for (std::size_t I = 0; I < Work.size(); ++I)
      Tasks.push_back([&SimulateOne, I] { SimulateOne(I); });
    Pool.runAll(std::move(Tasks));
  } else {
    // An externally supplied observability bundle (B.Run.Obs) is one
    // object: benchmarks must then take turns with it. The nested
    // protocol/repeat fan-out still uses the pool.
    for (std::size_t I = 0; I < Work.size(); ++I)
      SimulateOne(I);
  }
  return Rows;
}

/// Prints the auditor verdict for an audited suite run (no-op otherwise):
/// per-benchmark violation counts for both protocols, then the first
/// recorded messages of any benchmark that failed.
inline void printAuditSummary(const std::vector<SuiteRow> &Rows) {
  bool Enabled = false;
  for (const SuiteRow &Row : Rows)
    Enabled |= Row.Cmp.Mesi.Audit.Enabled || Row.Cmp.Warden.Audit.Enabled;
  if (!Enabled)
    return;
  Table T;
  T.setHeader({"Benchmark", "MESI violations", "WARDen violations",
               "Loads verified", "WAW overlaps"});
  std::uint64_t Total = 0;
  for (const SuiteRow &Row : Rows) {
    const AuditReport &M = Row.Cmp.Mesi.Audit;
    const AuditReport &W = Row.Cmp.Warden.Audit;
    Total += M.Violations + W.Violations;
    T.addRow({Row.Name, Table::fmt(M.Violations), Table::fmt(W.Violations),
              Table::fmt(M.LoadsVerified + W.LoadsVerified),
              Table::fmt(W.WawOverlaps)});
  }
  std::printf("Protocol audit (%s).\n%s\n",
              Total == 0 ? "clean" : "VIOLATIONS DETECTED",
              T.render().c_str());
  for (const SuiteRow &Row : Rows)
    for (const AuditReport *R : {&Row.Cmp.Mesi.Audit, &Row.Cmp.Warden.Audit})
      for (const std::string &Message : R->Messages)
        std::printf("  %s: %s\n", Row.Name.c_str(), Message.c_str());
}

/// Prints the per-benchmark coherence-forensics report for a --profile run
/// (no-op otherwise). Three views per benchmark:
///   1. allocation-site attribution — which data structures paid
///      invalidations/downgrades under MESI and what WARDen did to them;
///   2. the hottest individual cache lines under MESI with their sharing
///      classification (true/false sharing, migratory, ...);
///   3. the CPI stack — where each protocol's cycles went, summed over
///      cores, with the off-critical-path store-buffered latency shown
///      separately.
inline void printProfiles(const std::vector<SuiteRow> &Rows,
                          std::size_t TopLines = 8) {
  bool Enabled = false;
  for (const SuiteRow &Row : Rows)
    Enabled |= Row.Cmp.Mesi.Profile.Enabled || Row.Cmp.Warden.Profile.Enabled;
  if (!Enabled)
    return;

  for (const SuiteRow &Row : Rows) {
    const ProfileReport &M = Row.Cmp.Mesi.Profile;
    const ProfileReport &W = Row.Cmp.Warden.Profile;
    if (!M.Enabled && !W.Enabled)
      continue;
    std::printf("Coherence forensics: %s\n", Row.Name.c_str());

    // View 1: site attribution, MESI cost vs. WARDen cost side by side.
    struct SiteSides {
      std::uint64_t MesiInvDown = 0;
      std::uint64_t WardInvDown = 0;
      std::uint64_t WardReconciles = 0;
      std::uint64_t MesiLines = 0;
    };
    std::map<std::string, SiteSides> Sites;
    for (const SiteProfile &S : M.Sites) {
      SiteSides &E = Sites[S.SiteName];
      E.MesiInvDown = S.Invalidations + S.Downgrades;
      E.MesiLines = S.Lines;
    }
    for (const SiteProfile &S : W.Sites) {
      SiteSides &E = Sites[S.SiteName];
      E.WardInvDown = S.Invalidations + S.Downgrades;
      E.WardReconciles = S.Reconciles;
    }
    double MesiTotal =
        static_cast<double>(M.TotalInvalidations + M.TotalDowngrades);
    Table ST;
    ST.setHeader({"Site", "Lines", "MESI inv+down", "Share", "WARDen inv+down",
                  "WARDen reconciles"});
    for (const auto &[Name, E] : Sites) {
      if (E.MesiInvDown + E.WardInvDown + E.WardReconciles == 0)
        continue;
      double Share = MesiTotal == 0
                         ? 0.0
                         : static_cast<double>(E.MesiInvDown) / MesiTotal;
      ST.addRow({Name, Table::fmt(E.MesiLines), Table::fmt(E.MesiInvDown),
                 Table::pct(Share), Table::fmt(E.WardInvDown),
                 Table::fmt(E.WardReconciles)});
    }
    std::printf("%s\n", ST.render().c_str());

    // View 2: the hottest individual lines under MESI.
    if (!M.Lines.empty()) {
      Table LT;
      LT.setHeader({"Line", "Site", "Class", "Inv", "Down", "Misses",
                    "Avg miss", "Ping-pong"});
      std::size_t Shown = 0;
      for (const LineProfile &P : M.Lines) {
        if (Shown == TopLines)
          break;
        ++Shown;
        char Hex[32];
        std::snprintf(Hex, sizeof(Hex), "0x%llx",
                      static_cast<unsigned long long>(P.Block));
        double AvgMiss = P.DemandMisses == 0
                             ? 0.0
                             : static_cast<double>(P.DemandMissCycles) /
                                   static_cast<double>(P.DemandMisses);
        LT.addRow({Hex, P.SiteName, sharingClassName(P.Class),
                   Table::fmt(P.Invalidations), Table::fmt(P.Downgrades),
                   Table::fmt(P.DemandMisses), Table::fmt(AvgMiss, 1),
                   Table::fmt(P.PingPongs)});
      }
      std::printf("Hot lines under MESI (top %zu of %llu tracked; %llu "
                  "events on untracked lines).\n%s\n",
                  Shown, static_cast<unsigned long long>(M.TrackedLines),
                  static_cast<unsigned long long>(M.DroppedEvents),
                  LT.render().c_str());
    }

    // View 3: the CPI stack, MESI vs. WARDen.
    const CpiReport &CM = Row.Cmp.Mesi.Cpi;
    const CpiReport &CW = Row.Cmp.Warden.Cpi;
    if (CM.Enabled || CW.Enabled) {
      auto CoreSum = [](const CpiReport &R) {
        Cycles Sum = 0;
        for (Cycles T : R.CoreTime)
          Sum += T;
        return Sum;
      };
      auto Pct = [](Cycles Part, Cycles Whole) {
        return Whole == 0 ? 0.0
                          : static_cast<double>(Part) /
                                static_cast<double>(Whole);
      };
      Cycles MesiTime = CoreSum(CM);
      Cycles WardTime = CoreSum(CW);
      Table CT;
      CT.setHeader({"Category", "MESI cycles", "MESI %", "WARDen cycles",
                    "WARDen %"});
      Cycles MesiAcc = 0, WardAcc = 0;
      for (unsigned C = 0; C < static_cast<unsigned>(CpiCat::Count); ++C) {
        auto Cat = static_cast<CpiCat>(C);
        Cycles MT = CM.Enabled ? CM.total(Cat) : 0;
        Cycles WT = CW.Enabled ? CW.total(Cat) : 0;
        if (Cat != CpiCat::StoreBuffered) {
          MesiAcc += MT;
          WardAcc += WT;
        }
        if (MT + WT == 0)
          continue;
        // Percentages for the off-critical-path row would double count.
        bool OffPath = Cat == CpiCat::StoreBuffered;
        CT.addRow({cpiCategoryName(Cat), Table::fmt(MT),
                   OffPath ? "-" : Table::pct(Pct(MT, MesiTime)),
                   Table::fmt(WT),
                   OffPath ? "-" : Table::pct(Pct(WT, WardTime))});
      }
      Cycles MesiOther = MesiTime > MesiAcc ? MesiTime - MesiAcc : 0;
      Cycles WardOther = WardTime > WardAcc ? WardTime - WardAcc : 0;
      CT.addRow({"other", Table::fmt(MesiOther),
                 Table::pct(Pct(MesiOther, MesiTime)), Table::fmt(WardOther),
                 Table::pct(Pct(WardOther, WardTime))});
      std::printf("CPI stack (cycles summed over cores; %% of core time).\n"
                  "%s\n",
                  CT.render().c_str());
    }
  }
}

/// Figure 7a/8a/12a style: normalized speedup per benchmark plus MEAN and
/// (when every speedup is positive) GEOMEAN — the conventional aggregate
/// for ratios, reported alongside the paper's arithmetic mean.
inline void printPerformance(const char *Caption,
                             const std::vector<SuiteRow> &Rows) {
  if (Rows.empty()) {
    std::fprintf(stderr, "%s: no benchmarks selected\n", Caption);
    return;
  }
  Table T;
  T.setHeader({"Benchmark", "MESI cycles", "WARDen cycles", "Speedup",
               "Verified"});
  Summary Speedups;
  for (const SuiteRow &Row : Rows) {
    double S = Row.Cmp.speedup();
    Speedups.add(S);
    T.addRow({Row.Name, Table::fmt(Row.Cmp.Mesi.Makespan),
              Table::fmt(Row.Cmp.Warden.Makespan),
              Table::fmt(S, 2) + "x", Row.Verified ? "yes" : "NO"});
  }
  T.addRow({"MEAN", "-", "-", Table::fmt(Speedups.mean(), 2) + "x", "-"});
  if (Speedups.allPositive())
    T.addRow({"GEOMEAN", "-", "-", Table::fmt(Speedups.geomean(), 2) + "x",
              "-"});
  std::printf("%s\n%s\n", Caption, T.render().c_str());
}

/// Figure 7b/8b/12b style: percent energy savings per benchmark plus MEAN.
inline void printEnergy(const char *Caption,
                        const std::vector<SuiteRow> &Rows) {
  if (Rows.empty()) {
    std::fprintf(stderr, "%s: no benchmarks selected\n", Caption);
    return;
  }
  Table T;
  T.setHeader({"Benchmark", "Interconnect savings", "Total processor savings"});
  Summary Net;
  Summary TotalEnergy;
  for (const SuiteRow &Row : Rows) {
    double N = Row.Cmp.interconnectEnergySavings();
    double P = Row.Cmp.totalEnergySavings();
    Net.add(N);
    TotalEnergy.add(P);
    T.addRow({Row.Name, Table::pct(N), Table::pct(P)});
  }
  T.addRow({"MEAN", Table::pct(Net.mean()), Table::pct(TotalEnergy.mean())});
  std::printf("%s\n%s\n", Caption, T.render().c_str());
}

/// Emits one protocol's run record for the JSON report.
inline void writeRunJson(JsonWriter &W, const RunResult &R) {
  W.beginObject();
  W.member("makespan_cycles", R.Makespan);
  W.member("instructions", R.Instructions);
  W.member("ipc", R.ipc());
  W.member("ward_coverage", R.wardCoverage());
  W.member("invalidations", R.Coherence.Invalidations);
  W.member("downgrades", R.Coherence.Downgrades);
  W.member("interconnect_energy_nj", R.Energy.interconnectNJ());
  W.member("total_energy_nj", R.Energy.totalProcessorNJ());
  W.member("peak_regions", R.PeakRegions);
  W.endObject();
}

/// Writes the machine-readable report (schema "warden-bench-v1", documented
/// in README.md): one record per benchmark with the comparison metrics and
/// both protocols' raw results, plus a MEAN record matching the printed
/// tables. Returns false (with a message on stderr) if the file cannot be
/// written.
inline bool writeJsonReport(const std::string &Path, const char *Experiment,
                            const MachineConfig &Machine,
                            const BenchOptions &B,
                            const std::vector<SuiteRow> &Rows) {
  JsonWriter W;
  W.beginObject();
  W.member("schema", "warden-bench-v1");
  W.member("experiment", Experiment);
  W.member("scale", B.Scale);
  W.key("machine").beginObject();
  W.member("description", Machine.describe());
  W.member("sockets", Machine.NumSockets);
  W.member("cores_per_socket", Machine.CoresPerSocket);
  W.member("total_cores", Machine.totalCores());
  W.member("disaggregated", Machine.Disaggregated);
  W.endObject();

  // Host-side engine throughput. Everything under "host" (and the
  // host_seconds / sim_accesses_per_sec members below) describes the
  // simulator, not the simulated machine: it varies run to run and is
  // ignored by baseline comparison unless explicitly requested
  // (scripts/bench_diff.py --check-perf).
  double TotalHostSeconds = 0.0;
  for (const SuiteRow &Row : Rows)
    TotalHostSeconds += Row.HostSeconds;
  W.key("host").beginObject();
  W.member("jobs", static_cast<std::uint64_t>(B.Jobs));
  W.member("total_seconds", TotalHostSeconds);
  W.endObject();

  Summary Speedups, Interconnect, TotalEnergy, IpcImprovement, Coverage;
  std::uint64_t Violations = 0;
  bool Audited = false;
  W.key("benchmarks").beginArray();
  for (const SuiteRow &Row : Rows) {
    const ProtocolComparison &Cmp = Row.Cmp;
    Speedups.add(Cmp.speedup());
    Interconnect.add(Cmp.interconnectEnergySavings());
    TotalEnergy.add(Cmp.totalEnergySavings());
    IpcImprovement.add(Cmp.ipcImprovementPct());
    Coverage.add(Cmp.Warden.wardCoverage());
    std::uint64_t RowViolations =
        Cmp.Mesi.Audit.Violations + Cmp.Warden.Audit.Violations;
    bool RowAudited = Cmp.Mesi.Audit.Enabled || Cmp.Warden.Audit.Enabled;
    Violations += RowViolations;
    Audited |= RowAudited;

    W.beginObject();
    W.member("name", Row.Name);
    W.member("verified", Row.Verified);
    W.member("speedup", Cmp.speedup());
    W.member("interconnect_energy_savings", Cmp.interconnectEnergySavings());
    W.member("total_energy_savings", Cmp.totalEnergySavings());
    W.member("ipc_improvement_pct", Cmp.ipcImprovementPct());
    W.member("inv_down_avoided_per_kilo_instr",
             Cmp.invDownReducedPerKiloInstr());
    W.member("downgrade_share_of_reduction",
             Cmp.downgradeShareOfReduction());
    W.member("ward_coverage", Cmp.Warden.wardCoverage());
    W.member("host_seconds", Row.HostSeconds);
    W.member("sim_accesses_per_sec", Row.SimAccessesPerSec);
    W.key("mesi");
    writeRunJson(W, Cmp.Mesi);
    W.key("warden");
    writeRunJson(W, Cmp.Warden);
    if (Cmp.Mesi.Profile.Enabled || Cmp.Warden.Profile.Enabled) {
      W.key("profile").beginObject();
      W.key("mesi").beginObject();
      W.key("sharing");
      Cmp.Mesi.Profile.writeJson(W);
      W.key("cpi");
      Cmp.Mesi.Cpi.writeJson(W);
      W.endObject();
      W.key("warden").beginObject();
      W.key("sharing");
      Cmp.Warden.Profile.writeJson(W);
      W.key("cpi");
      Cmp.Warden.Cpi.writeJson(W);
      W.endObject();
      W.endObject();
    }
    W.key("audit").beginObject();
    W.member("enabled", RowAudited);
    W.member("violations", RowViolations);
    W.member("clean", RowViolations == 0);
    W.endObject();
    W.endObject();
  }
  W.endArray();

  W.key("mean").beginObject();
  W.member("n", static_cast<std::uint64_t>(Rows.size()));
  if (Rows.empty()) {
    W.endObject();
  } else {
    W.member("speedup", Speedups.mean());
    W.key("speedup_geomean");
    if (Speedups.allPositive())
      W.value(Speedups.geomean());
    else
      W.null();
    W.member("interconnect_energy_savings", Interconnect.mean());
    W.member("total_energy_savings", TotalEnergy.mean());
    W.member("ipc_improvement_pct", IpcImprovement.mean());
    W.member("ward_coverage", Coverage.mean());
    W.member("audit_verdict", !Audited        ? "not-audited"
                              : Violations == 0 ? "clean"
                                                : "violations");
    W.endObject();
  }
  W.endObject();

  std::FILE *F = std::fopen(Path.c_str(), "wb");
  if (!F) {
    std::fprintf(stderr, "error: cannot write JSON report to %s\n",
                 Path.c_str());
    return false;
  }
  const std::string &Doc = W.str();
  std::fwrite(Doc.data(), 1, Doc.size(), F);
  std::fputc('\n', F);
  std::fclose(F);
  std::printf("wrote JSON report: %s\n", Path.c_str());
  return true;
}

/// Writes the JSON report when --json=FILE was given; exits non-zero on an
/// unwritable path so CI catches it.
inline void maybeWriteJsonReport(const char *Experiment,
                                 const MachineConfig &Machine,
                                 const BenchOptions &B,
                                 const std::vector<SuiteRow> &Rows) {
  if (B.JsonPath.empty())
    return;
  if (!writeJsonReport(B.JsonPath, Experiment, Machine, B, Rows))
    std::exit(1);
}

} // namespace bench
} // namespace warden

#endif // WARDEN_BENCH_HARNESS_H
