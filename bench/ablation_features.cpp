//===- bench/ablation_features.cpp - Protocol feature ablations ---------------===//
//
// Part of the WARDen reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Ablates the WARDen design choices Section 5 calls out, on a
/// representative subset of the suite (dual socket):
///
///  * GetS-returns-Exclusive (Section 5.1): without it, a read copy inside
///    a region needs a later upgrade request before it can be written.
///  * Proactive fork flush (Section 5.3): without it, single-holder
///    reconciles keep the private copy, so freshly spawned tasks downgrade
///    the parent's cache exactly like MESI.
///  * Reconciliation cost sensitivity: the synchronous per-merged-block
///    charge swept over 0..32 cycles.
///  * The write-destination discipline (DESIGN.md): with it off, the
///    runtime is strictly page-conservative as in the paper's Section 4.2.
///
//===----------------------------------------------------------------------===//

#include "Harness.h"

using namespace warden;
using namespace warden::bench;

namespace {

const std::vector<std::string> Subset = {"primes", "msort", "tokens",
                                         "palindrome"};

double meanSpeedup(const std::vector<SuiteRow> &Rows) {
  // Mean over every non-baseline protocol (just WARDen by default).
  Summary S;
  for (const SuiteRow &Row : Rows)
    for (const RunResult *P : nonBaseline(Row.Cmp))
      S.add(Row.Cmp.speedup(P->Protocol));
  return S.mean();
}

} // namespace

int main(int argc, char **argv) {
  BenchOptions B = parseBenchArgs(argc, argv);
  std::printf("=== Ablation: WARDen design choices (dual socket; "
              "primes/msort/tokens/palindrome mean speedup) ===\n\n");

  Table T;
  T.setHeader({"Configuration", "Mean speedup"});

  {
    MachineConfig Config = MachineConfig::dualSocket();
    T.addRow({"full WARDen (defaults)",
              Table::fmt(meanSpeedup(runSuite(Config, B, Subset)), 3) + "x"});
  }
  {
    MachineConfig Config = MachineConfig::dualSocket();
    Config.Features.GetSReturnsExclusive = false;
    T.addRow({"no GetS-returns-Exclusive",
              Table::fmt(meanSpeedup(runSuite(Config, B, Subset)), 3) + "x"});
  }
  {
    MachineConfig Config = MachineConfig::dualSocket();
    Config.Features.ProactiveForkFlush = false;
    T.addRow({"no proactive fork flush",
              Table::fmt(meanSpeedup(runSuite(Config, B, Subset)), 3) + "x"});
  }
  for (Cycles Cost : {Cycles(0), Cycles(8), Cycles(32)}) {
    MachineConfig Config = MachineConfig::dualSocket();
    Config.Features.ReconcileCostPerBlock = Cost;
    T.addRow({"reconcile cost " + std::to_string(Cost) + " cyc/block",
              Table::fmt(meanSpeedup(runSuite(Config, B, Subset)), 3) + "x"});
  }
  {
    MachineConfig Config = MachineConfig::dualSocket();
    RtOptions Options;
    Options.KeepWriteDestinations = false;
    T.addRow({"page-conservative runtime (no write-destination regions)",
              Table::fmt(meanSpeedup(runSuite(Config, B, Subset, Options)), 3) +
                  "x"});
  }
  {
    MachineConfig Config = MachineConfig::dualSocket();
    RtOptions Options;
    Options.InjectSchedulerTraffic = false;
    T.addRow({"no injected scheduler traffic",
              Table::fmt(meanSpeedup(runSuite(Config, B, Subset, Options)), 3) +
                  "x"});
  }

  std::printf("%s", T.render().c_str());
  return 0;
}
