//===- bench/table2_config.cpp - Table 2: simulated system specs -----------===//
//
// Part of the WARDen reproduction project.
//
//===----------------------------------------------------------------------===//

#include "src/machine/AreaModel.h"
#include "src/machine/MachineConfig.h"
#include "src/support/Table.h"

#include <cstdio>

using namespace warden;

int main() {
  MachineConfig C = MachineConfig::dualSocket();
  Table T;
  T.setHeader({"Parameter", "Value"});
  T.addRow({"L1 Size", "32 KB"});
  T.addRow({"L2 Size", "256 KB"});
  T.addRow({"L3 Size (per core)", "2.5 MB"});
  T.addRow({"Cache Block Size", "64 B"});
  T.addRow({"L1/L2 Associativity", std::to_string(C.L1Assoc)});
  T.addRow({"L3 Associativity", std::to_string(C.L3Assoc)});
  T.addRow({"L1/L2/L3 latencies",
            std::to_string(C.L1Latency) + "-" + std::to_string(C.L2Latency) +
                "-" + std::to_string(C.L3Latency) + " cycles"});
  T.addRow({"Frequency", "3.3 GHz"});
  T.addRow({"Cores per Socket", std::to_string(C.CoresPerSocket)});
  T.addRow({"Intersocket latency",
            std::to_string(C.IntersocketLatency) + " cycles (one way)"});
  std::printf("Table 2. Simulated system specifications.\n%s",
              T.render().c_str());

  // Section 6.1's feasibility estimates for the WARDen hardware additions.
  AreaModel Model(C);
  AreaEstimate E = Model.estimate();
  std::printf("\nSection 6.1 hardware-cost estimates (paper values: 7.9%% "
              "and <0.05%%):\n");
  std::printf("  byte-sectoring cache area overhead : %.1f%%\n",
              100.0 * E.SectoringOverhead);
  std::printf("  1024-entry region CAM area overhead: %.4f%% (%llu bytes "
              "of storage)\n",
              100.0 * E.RegionCamOverhead,
              (unsigned long long)E.RegionCamBytes);
  return 0;
}
