//===- bench/fig8_dual_socket.cpp - Figure 8: dual socket -------------------===//
//
// Part of the WARDen reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Reproduces Figure 8: performance and energy gains of WARDen over MESI on
/// the two-socket, 24-core machine of Table 2. The paper reports speedups
/// of 1-2.1x with a 1.46x mean, interconnect energy savings with a 52.9%
/// mean, and total processor savings with a 23.1% mean.
///
//===----------------------------------------------------------------------===//

#include "Harness.h"

using namespace warden;
using namespace warden::bench;

int main(int argc, char **argv) {
  BenchOptions B = parseBenchArgs(argc, argv);
  MachineConfig Machine = MachineConfig::dualSocket();
  std::printf("=== Figure 8: dual socket (2 x 12 cores) ===\n\n");
  std::vector<SuiteRow> Rows = runSuite(Machine, B);
  printPerformance("Figure 8(a). Performance (speedup).", Rows);
  printEnergy("Figure 8(b). Energy savings.", Rows);
  printAuditSummary(Rows);
  printProfiles(Rows);
  maybeWriteJsonReport("fig8_dual_socket", Machine, B, Rows);
  return 0;
}
