//===- bench/ablation_region_table.cpp - Region table sizing -----------------===//
//
// Part of the WARDen reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Section 6.1 sizes the CAM-like region storage for 1024 simultaneous
/// regions (<0.05% area). This ablation sweeps the capacity: overflowing
/// regions safely fall back to MESI, so undersized tables degrade speedup
/// gracefully rather than breaking correctness. Reports the peak number of
/// simultaneously live regions as well, justifying the paper's choice.
///
//===----------------------------------------------------------------------===//

#include "Harness.h"

using namespace warden;
using namespace warden::bench;

int main(int argc, char **argv) {
  BenchOptions B = parseBenchArgs(argc, argv);
  std::printf("=== Ablation: WARD region table capacity (dual socket) ===\n\n");

  const std::vector<std::string> Subset = {"primes", "msort", "tokens"};
  Table T;
  T.setHeader({"Capacity", "Mean speedup", "Peak live regions",
               "Overflows (sum)"});
  for (unsigned Capacity : {8u, 32u, 128u, 512u, 1024u, 4096u}) {
    MachineConfig Config = MachineConfig::dualSocket();
    Config.Features.RegionTableCapacity = Capacity;
    std::vector<SuiteRow> Rows = runSuite(Config, B, Subset);
    Summary S;
    unsigned Peak = 0;
    std::uint64_t Overflows = 0;
    for (const SuiteRow &Row : Rows) {
      for (const RunResult *P : nonBaseline(Row.Cmp))
        S.add(Row.Cmp.speedup(P->Protocol));
      // Region-table pressure is a WARDen phenomenon; read its run when
      // present (other protocols never track regions).
      if (const RunResult *W = Row.Cmp.find(ProtocolKind::Warden)) {
        Peak = std::max(Peak, W->PeakRegions);
        Overflows += W->Coherence.RegionOverflows;
      }
    }
    T.addRow({std::to_string(Capacity), Table::fmt(S.mean(), 3) + "x",
              std::to_string(Peak), Table::fmt(Overflows)});
  }
  std::printf("%s", T.render().c_str());
  return 0;
}
