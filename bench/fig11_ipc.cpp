//===- bench/fig11_ipc.cpp - Figure 11: IPC improvement ----------------------===//
//
// Part of the WARDen reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Reproduces Figure 11: the percentage IPC improvement WARDen produces on
/// the dual-socket machine. Benchmarks whose speedup comes from executing
/// fewer busy-wait instructions (the paper's ray analysis) can show an IPC
/// *decrease* despite a speedup, because instructions shrink along with
/// cycles.
///
//===----------------------------------------------------------------------===//

#include "Harness.h"

using namespace warden;
using namespace warden::bench;

int main(int argc, char **argv) {
  BenchOptions B = parseBenchArgs(argc, argv);
  MachineConfig Machine = MachineConfig::dualSocket();
  std::printf("=== Figure 11: percentage IPC improvement (dual socket) ===\n\n");
  std::vector<SuiteRow> Rows = runSuite(Machine, B);

  // One table per non-baseline protocol (the default run shows exactly
  // the paper's WARDen-vs-MESI figure).
  const char *BaseName = protocolName(Rows.front().Cmp.Baseline);
  for (const RunResult *P : nonBaseline(Rows.front().Cmp)) {
    ProtocolKind Kind = P->Protocol;
    Table T;
    T.setHeader({"Benchmark", std::string(BaseName) + " IPC",
                 std::string(protocolName(Kind)) + " IPC", "IPC improvement",
                 "Speedup", "Instr ratio"});
    for (const SuiteRow &Row : Rows) {
      const RunResult &Base = Row.Cmp.baseline();
      const RunResult &R = Row.Cmp.run(Kind);
      double InstrRatio = static_cast<double>(R.Instructions) /
                          static_cast<double>(Base.Instructions);
      T.addRow({Row.Name, Table::fmt(Base.ipc(), 2), Table::fmt(R.ipc(), 2),
                Table::fmt(Row.Cmp.ipcImprovementPct(Kind), 1) + "%",
                Table::fmt(Row.Cmp.speedup(Kind), 2) + "x",
                Table::fmt(InstrRatio, 3)});
    }
    std::printf("Figure 11. Percentage IPC improvement (%s vs %s).\n%s",
                protocolName(Kind), BaseName, T.render().c_str());
  }
  printProfiles(Rows);
  maybeWriteJsonReport("fig11_ipc", Machine, B, Rows);
  return 0;
}
