//===- bench/fig11_ipc.cpp - Figure 11: IPC improvement ----------------------===//
//
// Part of the WARDen reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Reproduces Figure 11: the percentage IPC improvement WARDen produces on
/// the dual-socket machine. Benchmarks whose speedup comes from executing
/// fewer busy-wait instructions (the paper's ray analysis) can show an IPC
/// *decrease* despite a speedup, because instructions shrink along with
/// cycles.
///
//===----------------------------------------------------------------------===//

#include "Harness.h"

using namespace warden;
using namespace warden::bench;

int main(int argc, char **argv) {
  BenchOptions B = parseBenchArgs(argc, argv);
  MachineConfig Machine = MachineConfig::dualSocket();
  std::printf("=== Figure 11: percentage IPC improvement (dual socket) ===\n\n");
  std::vector<SuiteRow> Rows = runSuite(Machine, B);

  Table T;
  T.setHeader({"Benchmark", "MESI IPC", "WARDen IPC", "IPC improvement",
               "Speedup", "Instr ratio"});
  for (const SuiteRow &Row : Rows) {
    double InstrRatio = static_cast<double>(Row.Cmp.Warden.Instructions) /
                        static_cast<double>(Row.Cmp.Mesi.Instructions);
    T.addRow({Row.Name, Table::fmt(Row.Cmp.Mesi.ipc(), 2),
              Table::fmt(Row.Cmp.Warden.ipc(), 2),
              Table::fmt(Row.Cmp.ipcImprovementPct(), 1) + "%",
              Table::fmt(Row.Cmp.speedup(), 2) + "x",
              Table::fmt(InstrRatio, 3)});
  }
  std::printf("Figure 11. Percentage IPC improvement.\n%s",
              T.render().c_str());
  printProfiles(Rows);
  maybeWriteJsonReport("fig11_ipc", Machine, B, Rows);
  return 0;
}
