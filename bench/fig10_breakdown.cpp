//===- bench/fig10_breakdown.cpp - Figure 10: inv vs downgrade split ---------===//
//
// Part of the WARDen reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Reproduces Figure 10: for each benchmark, what percentage of the events
/// WARDen avoids are downgrades versus invalidations. Downgrades matter
/// more for performance because they sit on blocking loads, while
/// invalidations hide behind the store buffer (Section 7.2).
///
//===----------------------------------------------------------------------===//

#include "Harness.h"

using namespace warden;
using namespace warden::bench;

int main(int argc, char **argv) {
  BenchOptions B = parseBenchArgs(argc, argv);
  MachineConfig Machine = MachineConfig::dualSocket();
  std::printf("=== Figure 10: breakdown of avoided events ===\n\n");
  std::vector<SuiteRow> Rows = runSuite(Machine, B);

  // One table per non-baseline protocol (the default run shows exactly
  // the paper's WARDen-vs-MESI figure).
  for (const RunResult *P : nonBaseline(Rows.front().Cmp)) {
    ProtocolKind Kind = P->Protocol;
    Table T;
    T.setHeader({"Benchmark", "Downgrade reduction %",
                 "Invalidation reduction %", "Speedup"});
    for (const SuiteRow &Row : Rows) {
      double Down = Row.Cmp.downgradeShareOfReduction(Kind);
      T.addRow({Row.Name, Table::pct(Down), Table::pct(1.0 - Down),
                Table::fmt(Row.Cmp.speedup(Kind), 2) + "x"});
    }
    std::printf("Figure 10. Percent of the events %s avoids that are "
                "invalidations vs downgrades.\n%s",
                protocolName(Kind), T.render().c_str());
  }
  printProfiles(Rows);
  maybeWriteJsonReport("fig10_breakdown", Machine, B, Rows);
  return 0;
}
