//===- bench/table1_validation.cpp - Table 1: latency validation -------------===//
//
// Part of the WARDen reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Reproduces Table 1: the Figure 6 true-sharing microbenchmark. Two
/// hardware threads bounce one cache line: each iteration the waiting
/// thread reads the line (observing its partner's write — a downgrade of
/// the partner's Modified copy) and then writes its own id (invalidating
/// the partner). We report cycles per iteration for the three placements
/// the paper measures, next to the paper's values for reference. The point
/// of the validation is ordering and magnitude: same-core << same-socket <<
/// cross-socket.
///
//===----------------------------------------------------------------------===//

#include "src/coherence/CoherenceController.h"
#include "src/support/Table.h"

#include <cstdio>

using namespace warden;

namespace {

/// Runs the Figure 6 ping-pong kernel between \p CoreA and \p CoreB and
/// returns average cycles per iteration.
double pingPong(const MachineConfig &Config, CoreId CoreA, CoreId CoreB,
                unsigned Iterations) {
  CoherenceController Controller(Config);
  const Addr Buf = 0x4000;
  Cycles Total = 0;
  CoreId Cores[2] = {CoreA, CoreB};
  for (unsigned I = 0; I < Iterations; ++I) {
    CoreId Me = Cores[I % 2];
    // while (buf != partnerID); -- the final, successful read.
    Total += Controller.access(Me, Buf, 4, AccessType::Load);
    // buf = myID;
    Total += Controller.access(Me, Buf, 4, AccessType::Store);
  }
  return static_cast<double>(Total) / Iterations;
}

} // namespace

int main() {
  const unsigned Iterations = 100000;
  MachineConfig Dual = MachineConfig::dualSocket();

  double SameCore = pingPong(Dual, 0, 0, Iterations);
  double SameSocket = pingPong(Dual, 0, 1, Iterations);
  double CrossSocket = pingPong(Dual, 0, 12, Iterations);

  Table T;
  T.setHeader({"Scenario", "Paper real HW", "Paper simulated",
               "This simulator"});
  T.addRow({"Same core", "8.738", "11.21", Table::fmt(SameCore, 2)});
  T.addRow({"Diff. core, same socket", "479.68", "286.01",
            Table::fmt(SameSocket, 2)});
  T.addRow({"Diff. core, diff. socket", "1163.23", "1213.59",
            Table::fmt(CrossSocket, 2)});
  std::printf("Table 1. Validation of the timing model against the paper's "
              "ping-pong microbenchmark\n(latencies in cycles per "
              "iteration).\n%s",
              T.render().c_str());

  bool OrderingHolds = SameCore < SameSocket && SameSocket < CrossSocket;
  std::printf("\nOrdering same-core < same-socket < cross-socket: %s\n",
              OrderingHolds ? "holds" : "VIOLATED");
  return OrderingHolds ? 0 : 1;
}
