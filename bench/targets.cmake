# Benchmark / experiment harness binaries. Each paper table or figure has
# one binary; all land directly in <build>/bench so that
#   for b in build/bench/*; do $b; done
# runs the full evaluation.
set(WARDEN_BENCH_DIR ${CMAKE_BINARY_DIR}/bench)

function(warden_bench NAME)
  add_executable(${NAME} ${CMAKE_CURRENT_SOURCE_DIR}/bench/${NAME}.cpp)
  target_link_libraries(${NAME} PRIVATE warden)
  set_target_properties(${NAME} PROPERTIES RUNTIME_OUTPUT_DIRECTORY ${WARDEN_BENCH_DIR})
endfunction()

function(warden_gbench NAME)
  add_executable(${NAME} ${CMAKE_CURRENT_SOURCE_DIR}/bench/${NAME}.cpp)
  target_link_libraries(${NAME} PRIVATE warden benchmark::benchmark benchmark::benchmark_main)
  set_target_properties(${NAME} PROPERTIES RUNTIME_OUTPUT_DIRECTORY ${WARDEN_BENCH_DIR})
endfunction()

warden_bench(table1_validation)
warden_bench(table2_config)
warden_bench(fig7_single_socket)
warden_bench(fig8_dual_socket)
warden_bench(fig9_inv_down)
warden_bench(fig10_breakdown)
warden_bench(fig11_ipc)
warden_bench(fig12_disaggregated)
warden_bench(fig13_multinode)
warden_bench(ablation_features)
warden_bench(ablation_region_table)
warden_bench(manysocket_scaling)
warden_bench(suite_stats)
warden_gbench(microbench_components)
warden_gbench(hostperf)
