//===- bench/manysocket_scaling.cpp - Section 7.3: many sockets ---------------===//
//
// Part of the WARDen reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Section 7.3's "many sockets" projection: WARDen's advantage should grow
/// with socket count as interconnect latencies climb. Sweeps 1, 2, and 4
/// sockets over a subset of the suite and reports the mean speedup per
/// machine — the quantitative form of Figure 1's "acceleration increases
/// with hardware scale" arrow.
///
//===----------------------------------------------------------------------===//

#include "Harness.h"

using namespace warden;
using namespace warden::bench;

int main(int argc, char **argv) {
  BenchOptions B = parseBenchArgs(argc, argv);
  std::printf("=== Section 7.3: speedup growth with socket count ===\n\n");

  const std::vector<std::string> Subset = {"dedup", "msort", "primes",
                                           "tokens"};
  Table T;
  T.setHeader({"Machine", "Mean speedup", "Mean interconnect savings"});
  for (unsigned Sockets : {1u, 2u, 4u}) {
    MachineConfig Config = MachineConfig::manySocket(Sockets);
    std::vector<SuiteRow> Rows = runSuite(Config, B, Subset);
    // Mean over every non-baseline protocol (just WARDen by default).
    Summary Speed;
    Summary Net;
    for (const SuiteRow &Row : Rows) {
      for (const RunResult *P : nonBaseline(Row.Cmp)) {
        Speed.add(Row.Cmp.speedup(P->Protocol));
        Net.add(Row.Cmp.interconnectEnergySavings(P->Protocol));
      }
    }
    T.addRow({Config.describe(), Table::fmt(Speed.mean(), 3) + "x",
              Table::pct(Net.mean())});
  }
  std::printf("%s", T.render().c_str());
  return 0;
}
