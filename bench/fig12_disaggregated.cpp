//===- bench/fig12_disaggregated.cpp - Figure 12: disaggregated --------------===//
//
// Part of the WARDen reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Reproduces Figure 12: the four most promising benchmarks (dmm, grep, nn,
/// palindrome) on a two-node disaggregated machine with a 1 us remote
/// access time. The paper reports a mean speedup of ~3.8x, ~77% network
/// energy savings and ~49.5% processor energy savings: coherence
/// downgrades and flushes now cross the network, so avoiding them is worth
/// far more than on glued sockets.
///
//===----------------------------------------------------------------------===//

#include "Harness.h"

using namespace warden;
using namespace warden::bench;

int main(int argc, char **argv) {
  BenchOptions B = parseBenchArgs(argc, argv);
  MachineConfig Machine = MachineConfig::disaggregated();
  std::printf("=== Figure 12: disaggregated (2 nodes, 1 us remote) ===\n\n");
  std::vector<SuiteRow> Rows =
      runSuite(Machine, B, {"dmm", "grep", "nn", "palindrome"});
  printPerformance("Figure 12(a). Performance (speedup).", Rows);
  printEnergy("Figure 12(b). Energy savings.", Rows);
  printProfiles(Rows);
  maybeWriteJsonReport("fig12_disaggregated", Machine, B, Rows);
  return 0;
}
