//===- bench/hostperf.cpp - Host-side engine microbenchmarks ------------------===//
//
// Part of the WARDen reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Google-benchmark coverage of the simulator's *host-side* machinery —
/// the parts that determine how many simulated accesses per second the
/// engine retires, as opposed to what the simulated machine does:
///
///  * FlatMap (the directory / page-home container) against the
///    std::unordered_map it replaced, on the directory's access pattern;
///  * the RegionTable's MRU interval cache, hit and (gap-cached) miss;
///  * CacheArray construction, which lazy set initialization makes
///    independent of the nominal array capacity;
///  * JobPool batch dispatch overhead, flat and nested;
///  * whole replays of a synthetic fork-join access trace: the batched
///    engine against the per-access reference loop, and the epoch-
///    barriered harvester across conflict rates and worker counts.
///
/// Companions to the figure harnesses' host_seconds / sim_accesses_per_sec
/// JSON fields: when those regress, these isolate which layer did it.
///
//===----------------------------------------------------------------------===//

#include "src/coherence/CoherenceController.h"
#include "src/coherence/Directory.h"
#include "src/coherence/RegionTable.h"
#include "src/mem/CacheArray.h"
#include "src/obs/Observability.h"
#include "src/sched/Replay.h"
#include "src/support/FlatMap.h"
#include "src/support/JobPool.h"
#include "src/support/Rng.h"

#include <benchmark/benchmark.h>

#include <atomic>
#include <functional>
#include <unordered_map>
#include <vector>

using namespace warden;

namespace {

/// The directory's key pattern: block addresses of a few hot allocations.
constexpr std::size_t MapEntries = 1 << 16;

Addr keyAt(std::uint64_t I) { return (I * 64) ^ ((I & 0xff) << 24); }

} // namespace

static void BM_FlatMapFindHit(benchmark::State &State) {
  FlatMap<Addr, DirEntry> Map;
  Map.reserve(MapEntries);
  for (std::uint64_t I = 0; I < MapEntries; ++I)
    Map[keyAt(I)].Region = static_cast<RegionId>(I);
  Rng Random(7);
  for (auto _ : State) {
    Addr Key = keyAt(Random.nextBelow(MapEntries));
    benchmark::DoNotOptimize(Map.find(Key));
  }
}
BENCHMARK(BM_FlatMapFindHit);

static void BM_UnorderedMapFindHit(benchmark::State &State) {
  std::unordered_map<Addr, DirEntry> Map;
  Map.reserve(MapEntries);
  for (std::uint64_t I = 0; I < MapEntries; ++I)
    Map[keyAt(I)].Region = static_cast<RegionId>(I);
  Rng Random(7);
  for (auto _ : State) {
    Addr Key = keyAt(Random.nextBelow(MapEntries));
    benchmark::DoNotOptimize(Map.find(Key));
  }
}
BENCHMARK(BM_UnorderedMapFindHit);

static void BM_FlatMapFindMiss(benchmark::State &State) {
  FlatMap<Addr, DirEntry> Map;
  Map.reserve(MapEntries);
  for (std::uint64_t I = 0; I < MapEntries; ++I)
    Map[keyAt(I)].Region = static_cast<RegionId>(I);
  Rng Random(8);
  for (auto _ : State) {
    Addr Key = keyAt(Random.nextBelow(MapEntries)) + 1; // Never a key.
    benchmark::DoNotOptimize(Map.find(Key));
  }
}
BENCHMARK(BM_FlatMapFindMiss);

static void BM_FlatMapGrowInsert(benchmark::State &State) {
  for (auto _ : State) {
    FlatMap<Addr, SocketId> Map;
    for (std::uint64_t I = 0; I < 4096; ++I)
      Map[keyAt(I)] = static_cast<SocketId>(I & 3);
    benchmark::DoNotOptimize(Map.size());
  }
}
BENCHMARK(BM_FlatMapGrowInsert);

static void BM_FlatMapEraseReinsert(benchmark::State &State) {
  FlatMap<Addr, DirEntry> Map;
  Map.reserve(MapEntries);
  for (std::uint64_t I = 0; I < MapEntries; ++I)
    Map[keyAt(I)].Region = static_cast<RegionId>(I);
  Rng Random(9);
  for (auto _ : State) {
    Addr Key = keyAt(Random.nextBelow(MapEntries));
    Map.erase(Key);
    Map[Key].Region = 1; // Backward-shift erase then re-probe.
  }
}
BENCHMARK(BM_FlatMapEraseReinsert);

static void BM_RegionTableMruHit(benchmark::State &State) {
  RegionTable Table(1024);
  for (unsigned I = 0; I < 512; ++I)
    Table.add(I, Addr(I) * 8192, Addr(I) * 8192 + 4096);
  // Repeated lookups inside one region: after the first, pure MRU hits.
  for (auto _ : State)
    benchmark::DoNotOptimize(Table.lookup(100 * 8192 + 64));
}
BENCHMARK(BM_RegionTableMruHit);

static void BM_RegionTableMruGapMiss(benchmark::State &State) {
  RegionTable Table(1024);
  for (unsigned I = 0; I < 512; ++I)
    Table.add(I, Addr(I) * 8192, Addr(I) * 8192 + 4096);
  // Repeated lookups in one gap between regions: the miss interval is
  // MRU-cached too, the common case for non-WARD data under MESI.
  for (auto _ : State)
    benchmark::DoNotOptimize(Table.lookup(100 * 8192 + 6000));
}
BENCHMARK(BM_RegionTableMruGapMiss);

static void BM_CacheArrayConstructLlc(benchmark::State &State) {
  // A full LLC slice (tens of MB nominal). Lazy set initialization makes
  // this O(sets) bookkeeping, not O(bytes) memset.
  for (auto _ : State) {
    CacheArray Llc(CacheGeometry(30 * 1024 * 1024, 20, 64));
    benchmark::DoNotOptimize(Llc.validLineCount());
  }
}
BENCHMARK(BM_CacheArrayConstructLlc);

static void BM_CacheArrayVictimChurn(benchmark::State &State) {
  // The replacement hot path: a lookup-then-insert churn over a footprint
  // 4x the array, so three of four accesses miss and every miss selects a
  // victim from a full set. Arg selects the registered policy — the lru
  // row is the devirtualized inline fast path the miss loop had before
  // the registry; the perceptron rows price the feature hashing, table
  // lookups, and victim-scan scoring the learned policies add per miss.
  static const char *Policies[] = {"lru", "rrip", "perceptron",
                                   "perceptron-ward"};
  const char *Policy = Policies[State.range(0)];
  CacheArray Cache(CacheGeometry(64 * 1024, 8, 64), Policy);
  constexpr std::uint64_t Footprint = 4 * 1024; // Blocks; 4x capacity.
  Rng Random(11);
  for (auto _ : State) {
    Addr Block = (Random.nextBelow(Footprint)) * 64;
    if (!Cache.lookup(Block))
      benchmark::DoNotOptimize(Cache.insert(Block, LineState::Shared));
  }
  State.SetLabel(Policy);
}
BENCHMARK(BM_CacheArrayVictimChurn)->DenseRange(0, 3);

static void BM_CacheArrayProbeHit(benchmark::State &State) {
  // Steady-state probes against a resident block: the MRU-way hint makes
  // this O(1) for every policy; the benchmark would regress if a policy
  // bypassed the hint bookkeeping.
  static const char *Policies[] = {"lru", "perceptron"};
  const char *Policy = Policies[State.range(0)];
  CacheArray Cache(CacheGeometry(64 * 1024, 8, 64), Policy);
  for (unsigned I = 0; I < 8; ++I)
    Cache.insert(Addr(I) * 64, LineState::Shared);
  for (auto _ : State)
    benchmark::DoNotOptimize(Cache.probe(3 * 64));
  State.SetLabel(Policy);
}
BENCHMARK(BM_CacheArrayProbeHit)->DenseRange(0, 1);

static void BM_JobPoolFanOut(benchmark::State &State) {
  JobPool Pool(static_cast<unsigned>(State.range(0)));
  for (auto _ : State) {
    std::vector<std::function<void()>> Tasks;
    std::atomic<unsigned> Done{0};
    for (unsigned I = 0; I < 64; ++I)
      Tasks.push_back([&Done] { Done.fetch_add(1, std::memory_order_relaxed); });
    Pool.runAll(std::move(Tasks));
    benchmark::DoNotOptimize(Done.load());
  }
}
BENCHMARK(BM_JobPoolFanOut)->Arg(1)->Arg(2)->Arg(4);

static void BM_JobPoolNestedFanOut(benchmark::State &State) {
  // The harness shape: an outer batch whose tasks each run a nested batch
  // on the same pool (suite -> compare -> repeats). Exercises help-first
  // waiting; must not deadlock at any pool width.
  JobPool Pool(static_cast<unsigned>(State.range(0)));
  for (auto _ : State) {
    std::atomic<unsigned> Done{0};
    std::vector<std::function<void()>> Outer;
    for (unsigned I = 0; I < 8; ++I)
      Outer.push_back([&Pool, &Done] {
        std::vector<std::function<void()>> Inner;
        for (unsigned J = 0; J < 8; ++J)
          Inner.push_back(
              [&Done] { Done.fetch_add(1, std::memory_order_relaxed); });
        Pool.runAll(std::move(Inner));
      });
    Pool.runAll(std::move(Outer));
    benchmark::DoNotOptimize(Done.load());
  }
}
BENCHMARK(BM_JobPoolNestedFanOut)->Arg(1)->Arg(4);

namespace {

/// Leaves per access graph and accesses per leaf — sized so one replay is
/// a few hundred microseconds: long enough to swamp Replayer setup, short
/// enough that the benchmark converges quickly.
constexpr unsigned GraphLeaves = 16;
constexpr unsigned GraphAccessesPerLeaf = 2048;

/// A fork-join access trace shaped like the recorded PBBS programs: a root
/// forks GraphLeaves leaf strands that join into a continuation. Each leaf
/// interleaves short work bursts with loads and stores striding its own
/// 256-block arena; when \p SharedEvery is nonzero, every SharedEvery-th
/// access is redirected to one arena all leaves share, injecting cross-core
/// block conflicts — the thing that cuts epoch harvests short — at a
/// controlled rate.
TaskGraph makeAccessGraph(unsigned SharedEvery) {
  TaskGraph Graph;
  StrandId Root = Graph.addStrand();
  StrandId Cont = Graph.addStrand();
  Graph.setRoot(Root);
  Graph.strand(Root).Events.push_back(TraceEvent::work(10));
  Graph.strand(Cont).PendingJoin = GraphLeaves;
  Graph.strand(Cont).JoinCounterAddr = 0x7000;
  constexpr Addr SharedBase = 0x100000;
  for (unsigned L = 0; L < GraphLeaves; ++L) {
    StrandId Leaf = Graph.addStrand();
    Graph.strand(Root).Children.push_back(Leaf);
    Strand &S = Graph.strand(Leaf);
    S.JoinTarget = Cont;
    const Addr PrivateBase = 0x200000 + Addr(L) * 0x40000;
    S.Events.reserve(std::size_t(GraphAccessesPerLeaf) * 2);
    for (unsigned I = 0; I < GraphAccessesPerLeaf; ++I) {
      bool Shared = SharedEvery != 0 && I % SharedEvery == SharedEvery - 1;
      Addr Arena = Shared ? SharedBase : PrivateBase;
      Addr Address = Arena + Addr(I % 256) * 64;
      S.Events.push_back(TraceEvent::work(2));
      if (I % 3 == 2)
        S.Events.push_back(TraceEvent::store(Address, 8));
      else
        S.Events.push_back(TraceEvent::load(Address, 8));
    }
  }
  return Graph;
}

} // namespace

static void BM_ReplayEngineBatched(benchmark::State &State) {
  // One full phase-2 replay per iteration through the batched engine (no
  // observability sinks attached): sorted pick queue, fused inner loop,
  // runner-up-bounded runs. Pairs with BM_ReplayPerAccessReference — the
  // gap is what the batched hot path buys over the reference loop on an
  // identical trace, machine, and result.
  const TaskGraph Graph = makeAccessGraph(0);
  const MachineConfig Config = MachineConfig::singleSocket();
  for (auto _ : State) {
    CoherenceController Controller(Config);
    Replayer Replay(Graph, Controller);
    benchmark::DoNotOptimize(Replay.run().Makespan);
  }
  State.SetItemsProcessed(State.iterations() * GraphLeaves *
                          GraphAccessesPerLeaf);
}
BENCHMARK(BM_ReplayEngineBatched)->Unit(benchmark::kMicrosecond);

static void BM_ReplayPerAccessReference(benchmark::State &State) {
  // Same replay through the reference serial loop: attaching an (empty)
  // observability bundle forces the one-event-at-a-time interleaving that
  // samplers and event timestamps require. All sinks are null, so the
  // difference from BM_ReplayEngineBatched is pure engine structure.
  const TaskGraph Graph = makeAccessGraph(0);
  const MachineConfig Config = MachineConfig::singleSocket();
  for (auto _ : State) {
    CoherenceController Controller(Config);
    Replayer Replay(Graph, Controller);
    Observability Obs;
    Replay.attachObs(&Obs);
    benchmark::DoNotOptimize(Replay.run().Makespan);
  }
  State.SetItemsProcessed(State.iterations() * GraphLeaves *
                          GraphAccessesPerLeaf);
}
BENCHMARK(BM_ReplayPerAccessReference)->Unit(benchmark::kMicrosecond);

static void BM_EpochBarrierConflictRate(benchmark::State &State) {
  // The epoch-barriered harvester across conflict rates and worker
  // counts. Arg0: every Arg0-th leaf access hits the shared arena (0 =
  // fully disjoint footprints, the best case for harvesting; smaller
  // values mean more contended blocks cutting harvests short). Arg1: the
  // --intra-jobs worker count (1 = epochs gated off, the fused serial
  // loop). Simulated results are byte-identical across Arg1 by
  // construction; only host time moves, and this measures by how much.
  const unsigned SharedEvery = static_cast<unsigned>(State.range(0));
  const unsigned IntraJobs = static_cast<unsigned>(State.range(1));
  const TaskGraph Graph = makeAccessGraph(SharedEvery);
  const MachineConfig Config = MachineConfig::singleSocket();
  for (auto _ : State) {
    CoherenceController Controller(Config);
    Replayer Replay(Graph, Controller);
    Replay.setIntraJobs(IntraJobs);
    benchmark::DoNotOptimize(Replay.run().Makespan);
  }
  State.SetItemsProcessed(State.iterations() * GraphLeaves *
                          GraphAccessesPerLeaf);
}
BENCHMARK(BM_EpochBarrierConflictRate)
    ->Unit(benchmark::kMicrosecond)
    ->ArgNames({"shared_every", "intra_jobs"})
    ->Args({0, 1})
    ->Args({0, 2})
    ->Args({0, 4})
    ->Args({16, 4})
    ->Args({4, 4});
