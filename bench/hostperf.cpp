//===- bench/hostperf.cpp - Host-side engine microbenchmarks ------------------===//
//
// Part of the WARDen reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Google-benchmark coverage of the simulator's *host-side* machinery —
/// the parts that determine how many simulated accesses per second the
/// engine retires, as opposed to what the simulated machine does:
///
///  * FlatMap (the directory / page-home container) against the
///    std::unordered_map it replaced, on the directory's access pattern;
///  * the RegionTable's MRU interval cache, hit and (gap-cached) miss;
///  * CacheArray construction, which lazy set initialization makes
///    independent of the nominal array capacity;
///  * JobPool batch dispatch overhead, flat and nested.
///
/// Companions to the figure harnesses' host_seconds / sim_accesses_per_sec
/// JSON fields: when those regress, these isolate which layer did it.
///
//===----------------------------------------------------------------------===//

#include "src/coherence/Directory.h"
#include "src/coherence/RegionTable.h"
#include "src/mem/CacheArray.h"
#include "src/support/FlatMap.h"
#include "src/support/JobPool.h"
#include "src/support/Rng.h"

#include <benchmark/benchmark.h>

#include <atomic>
#include <functional>
#include <unordered_map>
#include <vector>

using namespace warden;

namespace {

/// The directory's key pattern: block addresses of a few hot allocations.
constexpr std::size_t MapEntries = 1 << 16;

Addr keyAt(std::uint64_t I) { return (I * 64) ^ ((I & 0xff) << 24); }

} // namespace

static void BM_FlatMapFindHit(benchmark::State &State) {
  FlatMap<Addr, DirEntry> Map;
  Map.reserve(MapEntries);
  for (std::uint64_t I = 0; I < MapEntries; ++I)
    Map[keyAt(I)].Region = static_cast<RegionId>(I);
  Rng Random(7);
  for (auto _ : State) {
    Addr Key = keyAt(Random.nextBelow(MapEntries));
    benchmark::DoNotOptimize(Map.find(Key));
  }
}
BENCHMARK(BM_FlatMapFindHit);

static void BM_UnorderedMapFindHit(benchmark::State &State) {
  std::unordered_map<Addr, DirEntry> Map;
  Map.reserve(MapEntries);
  for (std::uint64_t I = 0; I < MapEntries; ++I)
    Map[keyAt(I)].Region = static_cast<RegionId>(I);
  Rng Random(7);
  for (auto _ : State) {
    Addr Key = keyAt(Random.nextBelow(MapEntries));
    benchmark::DoNotOptimize(Map.find(Key));
  }
}
BENCHMARK(BM_UnorderedMapFindHit);

static void BM_FlatMapFindMiss(benchmark::State &State) {
  FlatMap<Addr, DirEntry> Map;
  Map.reserve(MapEntries);
  for (std::uint64_t I = 0; I < MapEntries; ++I)
    Map[keyAt(I)].Region = static_cast<RegionId>(I);
  Rng Random(8);
  for (auto _ : State) {
    Addr Key = keyAt(Random.nextBelow(MapEntries)) + 1; // Never a key.
    benchmark::DoNotOptimize(Map.find(Key));
  }
}
BENCHMARK(BM_FlatMapFindMiss);

static void BM_FlatMapGrowInsert(benchmark::State &State) {
  for (auto _ : State) {
    FlatMap<Addr, SocketId> Map;
    for (std::uint64_t I = 0; I < 4096; ++I)
      Map[keyAt(I)] = static_cast<SocketId>(I & 3);
    benchmark::DoNotOptimize(Map.size());
  }
}
BENCHMARK(BM_FlatMapGrowInsert);

static void BM_FlatMapEraseReinsert(benchmark::State &State) {
  FlatMap<Addr, DirEntry> Map;
  Map.reserve(MapEntries);
  for (std::uint64_t I = 0; I < MapEntries; ++I)
    Map[keyAt(I)].Region = static_cast<RegionId>(I);
  Rng Random(9);
  for (auto _ : State) {
    Addr Key = keyAt(Random.nextBelow(MapEntries));
    Map.erase(Key);
    Map[Key].Region = 1; // Backward-shift erase then re-probe.
  }
}
BENCHMARK(BM_FlatMapEraseReinsert);

static void BM_RegionTableMruHit(benchmark::State &State) {
  RegionTable Table(1024);
  for (unsigned I = 0; I < 512; ++I)
    Table.add(I, Addr(I) * 8192, Addr(I) * 8192 + 4096);
  // Repeated lookups inside one region: after the first, pure MRU hits.
  for (auto _ : State)
    benchmark::DoNotOptimize(Table.lookup(100 * 8192 + 64));
}
BENCHMARK(BM_RegionTableMruHit);

static void BM_RegionTableMruGapMiss(benchmark::State &State) {
  RegionTable Table(1024);
  for (unsigned I = 0; I < 512; ++I)
    Table.add(I, Addr(I) * 8192, Addr(I) * 8192 + 4096);
  // Repeated lookups in one gap between regions: the miss interval is
  // MRU-cached too, the common case for non-WARD data under MESI.
  for (auto _ : State)
    benchmark::DoNotOptimize(Table.lookup(100 * 8192 + 6000));
}
BENCHMARK(BM_RegionTableMruGapMiss);

static void BM_CacheArrayConstructLlc(benchmark::State &State) {
  // A full LLC slice (tens of MB nominal). Lazy set initialization makes
  // this O(sets) bookkeeping, not O(bytes) memset.
  for (auto _ : State) {
    CacheArray Llc(CacheGeometry(30 * 1024 * 1024, 20, 64));
    benchmark::DoNotOptimize(Llc.validLineCount());
  }
}
BENCHMARK(BM_CacheArrayConstructLlc);

static void BM_JobPoolFanOut(benchmark::State &State) {
  JobPool Pool(static_cast<unsigned>(State.range(0)));
  for (auto _ : State) {
    std::vector<std::function<void()>> Tasks;
    std::atomic<unsigned> Done{0};
    for (unsigned I = 0; I < 64; ++I)
      Tasks.push_back([&Done] { Done.fetch_add(1, std::memory_order_relaxed); });
    Pool.runAll(std::move(Tasks));
    benchmark::DoNotOptimize(Done.load());
  }
}
BENCHMARK(BM_JobPoolFanOut)->Arg(1)->Arg(2)->Arg(4);

static void BM_JobPoolNestedFanOut(benchmark::State &State) {
  // The harness shape: an outer batch whose tasks each run a nested batch
  // on the same pool (suite -> compare -> repeats). Exercises help-first
  // waiting; must not deadlock at any pool width.
  JobPool Pool(static_cast<unsigned>(State.range(0)));
  for (auto _ : State) {
    std::atomic<unsigned> Done{0};
    std::vector<std::function<void()>> Outer;
    for (unsigned I = 0; I < 8; ++I)
      Outer.push_back([&Pool, &Done] {
        std::vector<std::function<void()>> Inner;
        for (unsigned J = 0; J < 8; ++J)
          Inner.push_back(
              [&Done] { Done.fetch_add(1, std::memory_order_relaxed); });
        Pool.runAll(std::move(Inner));
      });
    Pool.runAll(std::move(Outer));
    benchmark::DoNotOptimize(Done.load());
  }
}
BENCHMARK(BM_JobPoolNestedFanOut)->Arg(1)->Arg(4);
