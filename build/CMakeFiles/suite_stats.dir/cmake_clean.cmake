file(REMOVE_RECURSE
  "CMakeFiles/suite_stats.dir/bench/suite_stats.cpp.o"
  "CMakeFiles/suite_stats.dir/bench/suite_stats.cpp.o.d"
  "bench/suite_stats"
  "bench/suite_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/suite_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
