# Empty compiler generated dependencies file for suite_stats.
# This may be replaced when dependencies are built.
