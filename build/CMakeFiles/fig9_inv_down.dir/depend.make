# Empty dependencies file for fig9_inv_down.
# This may be replaced when dependencies are built.
