file(REMOVE_RECURSE
  "CMakeFiles/fig9_inv_down.dir/bench/fig9_inv_down.cpp.o"
  "CMakeFiles/fig9_inv_down.dir/bench/fig9_inv_down.cpp.o.d"
  "bench/fig9_inv_down"
  "bench/fig9_inv_down.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig9_inv_down.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
