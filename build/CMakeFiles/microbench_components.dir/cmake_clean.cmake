file(REMOVE_RECURSE
  "CMakeFiles/microbench_components.dir/bench/microbench_components.cpp.o"
  "CMakeFiles/microbench_components.dir/bench/microbench_components.cpp.o.d"
  "bench/microbench_components"
  "bench/microbench_components.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/microbench_components.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
