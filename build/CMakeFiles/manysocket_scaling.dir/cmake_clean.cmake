file(REMOVE_RECURSE
  "CMakeFiles/manysocket_scaling.dir/bench/manysocket_scaling.cpp.o"
  "CMakeFiles/manysocket_scaling.dir/bench/manysocket_scaling.cpp.o.d"
  "bench/manysocket_scaling"
  "bench/manysocket_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/manysocket_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
