# Empty dependencies file for manysocket_scaling.
# This may be replaced when dependencies are built.
