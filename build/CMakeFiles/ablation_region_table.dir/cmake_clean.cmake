file(REMOVE_RECURSE
  "CMakeFiles/ablation_region_table.dir/bench/ablation_region_table.cpp.o"
  "CMakeFiles/ablation_region_table.dir/bench/ablation_region_table.cpp.o.d"
  "bench/ablation_region_table"
  "bench/ablation_region_table.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_region_table.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
