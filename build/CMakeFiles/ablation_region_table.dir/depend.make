# Empty dependencies file for ablation_region_table.
# This may be replaced when dependencies are built.
