# Empty compiler generated dependencies file for fig12_disaggregated.
# This may be replaced when dependencies are built.
