file(REMOVE_RECURSE
  "CMakeFiles/fig12_disaggregated.dir/bench/fig12_disaggregated.cpp.o"
  "CMakeFiles/fig12_disaggregated.dir/bench/fig12_disaggregated.cpp.o.d"
  "bench/fig12_disaggregated"
  "bench/fig12_disaggregated.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_disaggregated.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
