# Empty compiler generated dependencies file for fig7_single_socket.
# This may be replaced when dependencies are built.
