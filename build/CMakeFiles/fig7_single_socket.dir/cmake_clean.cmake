file(REMOVE_RECURSE
  "CMakeFiles/fig7_single_socket.dir/bench/fig7_single_socket.cpp.o"
  "CMakeFiles/fig7_single_socket.dir/bench/fig7_single_socket.cpp.o.d"
  "bench/fig7_single_socket"
  "bench/fig7_single_socket.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_single_socket.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
