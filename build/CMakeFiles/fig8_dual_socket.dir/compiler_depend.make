# Empty compiler generated dependencies file for fig8_dual_socket.
# This may be replaced when dependencies are built.
