file(REMOVE_RECURSE
  "CMakeFiles/fig8_dual_socket.dir/bench/fig8_dual_socket.cpp.o"
  "CMakeFiles/fig8_dual_socket.dir/bench/fig8_dual_socket.cpp.o.d"
  "bench/fig8_dual_socket"
  "bench/fig8_dual_socket.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_dual_socket.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
