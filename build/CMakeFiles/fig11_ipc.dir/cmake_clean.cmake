file(REMOVE_RECURSE
  "CMakeFiles/fig11_ipc.dir/bench/fig11_ipc.cpp.o"
  "CMakeFiles/fig11_ipc.dir/bench/fig11_ipc.cpp.o.d"
  "bench/fig11_ipc"
  "bench/fig11_ipc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_ipc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
