file(REMOVE_RECURSE
  "CMakeFiles/table1_validation.dir/bench/table1_validation.cpp.o"
  "CMakeFiles/table1_validation.dir/bench/table1_validation.cpp.o.d"
  "bench/table1_validation"
  "bench/table1_validation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_validation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
