# Empty compiler generated dependencies file for warden_sim.
# This may be replaced when dependencies are built.
