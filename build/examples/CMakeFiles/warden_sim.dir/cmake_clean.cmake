file(REMOVE_RECURSE
  "CMakeFiles/warden_sim.dir/warden_sim.cpp.o"
  "CMakeFiles/warden_sim.dir/warden_sim.cpp.o.d"
  "warden_sim"
  "warden_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/warden_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
