
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/AreaTraceIOTest.cpp" "tests/CMakeFiles/warden_tests.dir/AreaTraceIOTest.cpp.o" "gcc" "tests/CMakeFiles/warden_tests.dir/AreaTraceIOTest.cpp.o.d"
  "/root/repo/tests/CoherenceTest.cpp" "tests/CMakeFiles/warden_tests.dir/CoherenceTest.cpp.o" "gcc" "tests/CMakeFiles/warden_tests.dir/CoherenceTest.cpp.o.d"
  "/root/repo/tests/MachineTest.cpp" "tests/CMakeFiles/warden_tests.dir/MachineTest.cpp.o" "gcc" "tests/CMakeFiles/warden_tests.dir/MachineTest.cpp.o.d"
  "/root/repo/tests/MemTest.cpp" "tests/CMakeFiles/warden_tests.dir/MemTest.cpp.o" "gcc" "tests/CMakeFiles/warden_tests.dir/MemTest.cpp.o.d"
  "/root/repo/tests/PbbsTest.cpp" "tests/CMakeFiles/warden_tests.dir/PbbsTest.cpp.o" "gcc" "tests/CMakeFiles/warden_tests.dir/PbbsTest.cpp.o.d"
  "/root/repo/tests/ProtocolFuzzTest.cpp" "tests/CMakeFiles/warden_tests.dir/ProtocolFuzzTest.cpp.o" "gcc" "tests/CMakeFiles/warden_tests.dir/ProtocolFuzzTest.cpp.o.d"
  "/root/repo/tests/RaceTest.cpp" "tests/CMakeFiles/warden_tests.dir/RaceTest.cpp.o" "gcc" "tests/CMakeFiles/warden_tests.dir/RaceTest.cpp.o.d"
  "/root/repo/tests/RegionTableTest.cpp" "tests/CMakeFiles/warden_tests.dir/RegionTableTest.cpp.o" "gcc" "tests/CMakeFiles/warden_tests.dir/RegionTableTest.cpp.o.d"
  "/root/repo/tests/RuntimeTest.cpp" "tests/CMakeFiles/warden_tests.dir/RuntimeTest.cpp.o" "gcc" "tests/CMakeFiles/warden_tests.dir/RuntimeTest.cpp.o.d"
  "/root/repo/tests/SchedTest.cpp" "tests/CMakeFiles/warden_tests.dir/SchedTest.cpp.o" "gcc" "tests/CMakeFiles/warden_tests.dir/SchedTest.cpp.o.d"
  "/root/repo/tests/SmokeTest.cpp" "tests/CMakeFiles/warden_tests.dir/SmokeTest.cpp.o" "gcc" "tests/CMakeFiles/warden_tests.dir/SmokeTest.cpp.o.d"
  "/root/repo/tests/StdlibTest.cpp" "tests/CMakeFiles/warden_tests.dir/StdlibTest.cpp.o" "gcc" "tests/CMakeFiles/warden_tests.dir/StdlibTest.cpp.o.d"
  "/root/repo/tests/SupportTest.cpp" "tests/CMakeFiles/warden_tests.dir/SupportTest.cpp.o" "gcc" "tests/CMakeFiles/warden_tests.dir/SupportTest.cpp.o.d"
  "/root/repo/tests/SystemTest.cpp" "tests/CMakeFiles/warden_tests.dir/SystemTest.cpp.o" "gcc" "tests/CMakeFiles/warden_tests.dir/SystemTest.cpp.o.d"
  "/root/repo/tests/TraceTest.cpp" "tests/CMakeFiles/warden_tests.dir/TraceTest.cpp.o" "gcc" "tests/CMakeFiles/warden_tests.dir/TraceTest.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/warden.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
