# Empty dependencies file for warden_tests.
# This may be replaced when dependencies are built.
