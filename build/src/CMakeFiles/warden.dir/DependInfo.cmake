
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/coherence/CoherenceController.cpp" "src/CMakeFiles/warden.dir/coherence/CoherenceController.cpp.o" "gcc" "src/CMakeFiles/warden.dir/coherence/CoherenceController.cpp.o.d"
  "/root/repo/src/coherence/PrivateCache.cpp" "src/CMakeFiles/warden.dir/coherence/PrivateCache.cpp.o" "gcc" "src/CMakeFiles/warden.dir/coherence/PrivateCache.cpp.o.d"
  "/root/repo/src/coherence/RegionTable.cpp" "src/CMakeFiles/warden.dir/coherence/RegionTable.cpp.o" "gcc" "src/CMakeFiles/warden.dir/coherence/RegionTable.cpp.o.d"
  "/root/repo/src/core/WardenSystem.cpp" "src/CMakeFiles/warden.dir/core/WardenSystem.cpp.o" "gcc" "src/CMakeFiles/warden.dir/core/WardenSystem.cpp.o.d"
  "/root/repo/src/machine/AreaModel.cpp" "src/CMakeFiles/warden.dir/machine/AreaModel.cpp.o" "gcc" "src/CMakeFiles/warden.dir/machine/AreaModel.cpp.o.d"
  "/root/repo/src/machine/EnergyModel.cpp" "src/CMakeFiles/warden.dir/machine/EnergyModel.cpp.o" "gcc" "src/CMakeFiles/warden.dir/machine/EnergyModel.cpp.o.d"
  "/root/repo/src/machine/MachineConfig.cpp" "src/CMakeFiles/warden.dir/machine/MachineConfig.cpp.o" "gcc" "src/CMakeFiles/warden.dir/machine/MachineConfig.cpp.o.d"
  "/root/repo/src/mem/CacheArray.cpp" "src/CMakeFiles/warden.dir/mem/CacheArray.cpp.o" "gcc" "src/CMakeFiles/warden.dir/mem/CacheArray.cpp.o.d"
  "/root/repo/src/pbbs/Dedup.cpp" "src/CMakeFiles/warden.dir/pbbs/Dedup.cpp.o" "gcc" "src/CMakeFiles/warden.dir/pbbs/Dedup.cpp.o.d"
  "/root/repo/src/pbbs/Dmm.cpp" "src/CMakeFiles/warden.dir/pbbs/Dmm.cpp.o" "gcc" "src/CMakeFiles/warden.dir/pbbs/Dmm.cpp.o.d"
  "/root/repo/src/pbbs/Fib.cpp" "src/CMakeFiles/warden.dir/pbbs/Fib.cpp.o" "gcc" "src/CMakeFiles/warden.dir/pbbs/Fib.cpp.o.d"
  "/root/repo/src/pbbs/Grep.cpp" "src/CMakeFiles/warden.dir/pbbs/Grep.cpp.o" "gcc" "src/CMakeFiles/warden.dir/pbbs/Grep.cpp.o.d"
  "/root/repo/src/pbbs/Inputs.cpp" "src/CMakeFiles/warden.dir/pbbs/Inputs.cpp.o" "gcc" "src/CMakeFiles/warden.dir/pbbs/Inputs.cpp.o.d"
  "/root/repo/src/pbbs/MakeArray.cpp" "src/CMakeFiles/warden.dir/pbbs/MakeArray.cpp.o" "gcc" "src/CMakeFiles/warden.dir/pbbs/MakeArray.cpp.o.d"
  "/root/repo/src/pbbs/Msort.cpp" "src/CMakeFiles/warden.dir/pbbs/Msort.cpp.o" "gcc" "src/CMakeFiles/warden.dir/pbbs/Msort.cpp.o.d"
  "/root/repo/src/pbbs/Nn.cpp" "src/CMakeFiles/warden.dir/pbbs/Nn.cpp.o" "gcc" "src/CMakeFiles/warden.dir/pbbs/Nn.cpp.o.d"
  "/root/repo/src/pbbs/Nqueens.cpp" "src/CMakeFiles/warden.dir/pbbs/Nqueens.cpp.o" "gcc" "src/CMakeFiles/warden.dir/pbbs/Nqueens.cpp.o.d"
  "/root/repo/src/pbbs/Palindrome.cpp" "src/CMakeFiles/warden.dir/pbbs/Palindrome.cpp.o" "gcc" "src/CMakeFiles/warden.dir/pbbs/Palindrome.cpp.o.d"
  "/root/repo/src/pbbs/Pbbs.cpp" "src/CMakeFiles/warden.dir/pbbs/Pbbs.cpp.o" "gcc" "src/CMakeFiles/warden.dir/pbbs/Pbbs.cpp.o.d"
  "/root/repo/src/pbbs/Primes.cpp" "src/CMakeFiles/warden.dir/pbbs/Primes.cpp.o" "gcc" "src/CMakeFiles/warden.dir/pbbs/Primes.cpp.o.d"
  "/root/repo/src/pbbs/Quickhull.cpp" "src/CMakeFiles/warden.dir/pbbs/Quickhull.cpp.o" "gcc" "src/CMakeFiles/warden.dir/pbbs/Quickhull.cpp.o.d"
  "/root/repo/src/pbbs/Ray.cpp" "src/CMakeFiles/warden.dir/pbbs/Ray.cpp.o" "gcc" "src/CMakeFiles/warden.dir/pbbs/Ray.cpp.o.d"
  "/root/repo/src/pbbs/SuffixArray.cpp" "src/CMakeFiles/warden.dir/pbbs/SuffixArray.cpp.o" "gcc" "src/CMakeFiles/warden.dir/pbbs/SuffixArray.cpp.o.d"
  "/root/repo/src/pbbs/Tokens.cpp" "src/CMakeFiles/warden.dir/pbbs/Tokens.cpp.o" "gcc" "src/CMakeFiles/warden.dir/pbbs/Tokens.cpp.o.d"
  "/root/repo/src/race/SpBags.cpp" "src/CMakeFiles/warden.dir/race/SpBags.cpp.o" "gcc" "src/CMakeFiles/warden.dir/race/SpBags.cpp.o.d"
  "/root/repo/src/rt/Runtime.cpp" "src/CMakeFiles/warden.dir/rt/Runtime.cpp.o" "gcc" "src/CMakeFiles/warden.dir/rt/Runtime.cpp.o.d"
  "/root/repo/src/rt/SimMemory.cpp" "src/CMakeFiles/warden.dir/rt/SimMemory.cpp.o" "gcc" "src/CMakeFiles/warden.dir/rt/SimMemory.cpp.o.d"
  "/root/repo/src/sched/Replay.cpp" "src/CMakeFiles/warden.dir/sched/Replay.cpp.o" "gcc" "src/CMakeFiles/warden.dir/sched/Replay.cpp.o.d"
  "/root/repo/src/support/Table.cpp" "src/CMakeFiles/warden.dir/support/Table.cpp.o" "gcc" "src/CMakeFiles/warden.dir/support/Table.cpp.o.d"
  "/root/repo/src/trace/TaskGraph.cpp" "src/CMakeFiles/warden.dir/trace/TaskGraph.cpp.o" "gcc" "src/CMakeFiles/warden.dir/trace/TaskGraph.cpp.o.d"
  "/root/repo/src/trace/TraceIO.cpp" "src/CMakeFiles/warden.dir/trace/TraceIO.cpp.o" "gcc" "src/CMakeFiles/warden.dir/trace/TraceIO.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
