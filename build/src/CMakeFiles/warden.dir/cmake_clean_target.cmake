file(REMOVE_RECURSE
  "libwarden.a"
)
