# Empty compiler generated dependencies file for warden.
# This may be replaced when dependencies are built.
