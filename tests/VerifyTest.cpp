//===- tests/VerifyTest.cpp - protocol auditor and fault injection ------------===//
//
// Part of the WARDen reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Tests for the verification subsystem itself: the ProtocolAuditor stays
/// silent on correct executions (both protocols, end to end), catches
/// deliberately broken protocol variants, never perturbs simulated cycles,
/// and the fault-injection plans are deterministic and survivable.
///
//===----------------------------------------------------------------------===//

#include "src/coherence/CoherenceController.h"
#include "src/core/WardenSystem.h"
#include "src/rt/Stdlib.h"
#include "src/verify/ProtocolAuditor.h"

#include <gtest/gtest.h>

#include <stdexcept>

using namespace warden;

namespace {

constexpr Addr BlockA = 0x20000;

TaskGraph recordWorkload() {
  Runtime Rt{RtOptions()};
  auto In = stdlib::tabulate<std::uint32_t>(
      Rt, 4096, [](std::size_t I) { return std::uint32_t(I * 2654435761u); },
      128);
  auto Out = stdlib::mapArray<std::uint64_t>(
      Rt, In, [](std::uint32_t V) { return std::uint64_t(V) % 977; }, 128);
  std::uint64_t Total = stdlib::sum(Rt, Out, 128);
  EXPECT_GT(Total, 0u);
  return Rt.finish();
}

MachineConfig configFor(ProtocolKind Protocol) {
  MachineConfig Config = MachineConfig::dualSocket();
  Config.Protocol = Protocol;
  return Config;
}

} // namespace

// --- Clean executions stay clean ------------------------------------------------

class AuditAcrossProtocols : public ::testing::TestWithParam<ProtocolKind> {};

TEST_P(AuditAcrossProtocols, EndToEndRunReportsNoViolations) {
  TaskGraph Graph = recordWorkload();
  RunOptions Options;
  Options.Audit = true;
  RunResult R = WardenSystem::simulate(Graph, configFor(GetParam()), Options);
  EXPECT_TRUE(R.Audit.Enabled);
  EXPECT_TRUE(R.Audit.clean()) << (R.Audit.Messages.empty()
                                       ? std::string("(no messages)")
                                       : R.Audit.Messages.front());
  EXPECT_GT(R.Audit.LoadsVerified, 0u);
  EXPECT_GT(R.Audit.BlocksChecked, 0u);
}

TEST_P(AuditAcrossProtocols, AuditingDoesNotChangeTiming) {
  TaskGraph Graph = recordWorkload();
  RunOptions Plain;
  RunOptions Audited;
  Audited.Audit = true;
  RunResult Off = WardenSystem::simulate(Graph, configFor(GetParam()), Plain);
  RunResult On = WardenSystem::simulate(Graph, configFor(GetParam()), Audited);
  EXPECT_EQ(Off.Makespan, On.Makespan);
  EXPECT_EQ(Off.Coherence.accesses(), On.Coherence.accesses());
  EXPECT_EQ(Off.Coherence.Invalidations, On.Coherence.Invalidations);
  EXPECT_EQ(Off.Coherence.Writebacks, On.Coherence.Writebacks);
  EXPECT_FALSE(Off.Audit.Enabled);
}

INSTANTIATE_TEST_SUITE_P(Protocols, AuditAcrossProtocols,
                         ::testing::Values(ProtocolKind::Mesi,
                                           ProtocolKind::Warden),
                         [](const ::testing::TestParamInfo<ProtocolKind> &I) {
                           return std::string(protocolName(I.param));
                         });

// --- Broken protocols are caught ------------------------------------------------

namespace {

/// Runs the canonical read-share-then-write sequence that any correct
/// invalidation-based protocol must resolve with a single writer.
AuditReport runSharingSequence(ProtocolMutation Mutation) {
  FaultPlan Faults;
  Faults.Mutation = Mutation;
  CoherenceController Ctrl(configFor(ProtocolKind::Mesi), Faults);
  ProtocolAuditor Auditor(Ctrl);
  Ctrl.attachAuditor(&Auditor);
  Ctrl.access(0, BlockA, 8, AccessType::Store); // Core 0 owns dirty.
  Ctrl.access(1, BlockA, 8, AccessType::Load);  // Fwd-GetS: downgrade.
  Ctrl.access(2, BlockA, 8, AccessType::Load);  // Share wider.
  Ctrl.access(0, BlockA, 8, AccessType::Store); // GetM: invalidate 1,2.
  Ctrl.access(1, BlockA, 8, AccessType::Load);  // Re-read after write.
  Auditor.checkAll("end of sequence");
  return Auditor.report();
}

} // namespace

TEST(AuditMutation, CorrectProtocolPassesTheSequence) {
  AuditReport R = runSharingSequence(ProtocolMutation::None);
  EXPECT_TRUE(R.clean()) << R.Messages.front();
  EXPECT_GT(R.LoadsVerified, 0u);
}

TEST(AuditMutation, SkipInvalidationOnGetMIsCaught) {
  AuditReport R = runSharingSequence(ProtocolMutation::SkipInvalidationOnGetM);
  EXPECT_GT(R.Violations, 0u);
  ASSERT_FALSE(R.Messages.empty());
}

TEST(AuditMutation, SkipDowngradeOnFwdGetSIsCaught) {
  AuditReport R = runSharingSequence(ProtocolMutation::SkipDowngradeOnFwdGetS);
  EXPECT_GT(R.Violations, 0u);
  ASSERT_FALSE(R.Messages.empty());
}

// --- Fault injection ------------------------------------------------------------

TEST(FaultInjection, SameSeedGivesIdenticalRuns) {
  TaskGraph Graph = recordWorkload();
  RunOptions Options;
  Options.Audit = true;
  Options.Faults.EvictionRate = 5e-3;
  Options.Faults.ReconcileRate = 5e-3;
  Options.Faults.Seed = 0xc0ffee;
  MachineConfig Config = configFor(ProtocolKind::Warden);
  RunResult A = WardenSystem::simulate(Graph, Config, Options);
  RunResult B = WardenSystem::simulate(Graph, Config, Options);
  EXPECT_EQ(A.Makespan, B.Makespan);
  EXPECT_EQ(A.Coherence.InjectedEvictions, B.Coherence.InjectedEvictions);
  EXPECT_EQ(A.Coherence.ForcedReconciles, B.Coherence.ForcedReconciles);
  EXPECT_GT(A.Coherence.InjectedEvictions, 0u);
  // The protocol must absorb the adversarial schedule without violations.
  EXPECT_TRUE(A.Audit.clean()) << (A.Audit.Messages.empty()
                                       ? std::string("(no messages)")
                                       : A.Audit.Messages.front());
}

TEST(FaultInjection, ExhaustedRegionTableDegradesGracefully) {
  TaskGraph Graph = recordWorkload();
  RunOptions Options;
  Options.Audit = true;
  Options.Faults.RegionTableCapacity = 1; // Nearly everything overflows.
  RunResult R =
      WardenSystem::simulate(Graph, configFor(ProtocolKind::Warden), Options);
  EXPECT_GT(R.Coherence.RegionFallbacks, 0u);
  EXPECT_GT(R.Coherence.RegionOverflows, 0u);
  EXPECT_TRUE(R.Audit.clean()) << (R.Audit.Messages.empty()
                                       ? std::string("(no messages)")
                                       : R.Audit.Messages.front());
}

// --- Configuration validation gate ----------------------------------------------

TEST(ValidationGate, SimulateRefusesBrokenConfigs) {
  TaskGraph Graph = recordWorkload();
  MachineConfig Bad = MachineConfig::dualSocket();
  Bad.BlockSize = 48;
  RunOptions Options;
  EXPECT_THROW(WardenSystem::simulate(Graph, Bad, Options),
               std::invalid_argument);
  Bad = MachineConfig::dualSocket();
  Bad.CoresPerSocket = 0;
  EXPECT_THROW(WardenSystem::simulate(Graph, Bad, Options),
               std::invalid_argument);
}
