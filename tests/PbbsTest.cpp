//===- tests/PbbsTest.cpp - Benchmark kernel verification -------------------===//
//
// Part of the WARDen reproduction project.
//
//===----------------------------------------------------------------------===//

#include "src/core/WardenSystem.h"
#include "src/pbbs/Pbbs.h"

#include <gtest/gtest.h>

using namespace warden;
using namespace warden::pbbs;

class PbbsKernel : public ::testing::TestWithParam<Benchmark> {};

TEST_P(PbbsKernel, VerifiesAtTestScale) {
  const Benchmark &B = GetParam();
  Recorded R = B.Record(B.TestScale, RtOptions());
  EXPECT_TRUE(R.Verified) << B.Name << " failed verification";
  EXPECT_GT(R.Graph.size(), 1u) << B.Name << " recorded no parallelism";
}

TEST_P(PbbsKernel, SpeedupAtLeastNeutralOnDualSocket) {
  const Benchmark &B = GetParam();
  Recorded R = B.Record(B.TestScale, RtOptions());
  ASSERT_TRUE(R.Verified);
  ComparisonResult Cmp = WardenSystem::compareProtocols(
      R.Graph, MachineConfig::dualSocket(),
      {ProtocolKind::Mesi, ProtocolKind::Warden});
  // WARDen should never lose badly. Test-scale inputs are tiny, so fixed
  // region-instruction overheads and scheduling noise can cost a few
  // percent; the DefaultScale harness results are the real check.
  EXPECT_GT(Cmp.speedup(ProtocolKind::Warden), 0.75) << B.Name;
  EXPECT_LE(Cmp.run(ProtocolKind::Warden).Coherence.invPlusDown(),
            Cmp.run(ProtocolKind::Mesi).Coherence.invPlusDown() * 11 / 10 + 64)
      << B.Name;
}

INSTANTIATE_TEST_SUITE_P(
    AllKernels, PbbsKernel, ::testing::ValuesIn(allBenchmarks()),
    [](const ::testing::TestParamInfo<Benchmark> &Info) {
      return std::string(Info.param.Name);
    });
