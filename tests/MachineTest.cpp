//===- tests/MachineTest.cpp - machine model unit tests -----------------------===//
//
// Part of the WARDen reproduction project.
//
//===----------------------------------------------------------------------===//

#include "src/machine/EnergyModel.h"
#include "src/machine/LatencyModel.h"
#include "src/machine/MachineConfig.h"

#include <gtest/gtest.h>

using namespace warden;

// --- MachineConfig --------------------------------------------------------------

TEST(MachineConfig, Table2Defaults) {
  MachineConfig C = MachineConfig::dualSocket();
  EXPECT_EQ(C.L1SizeKB, 32u);
  EXPECT_EQ(C.L2SizeKB, 256u);
  EXPECT_EQ(C.L3SizePerCoreKB, 2560u);
  EXPECT_EQ(C.L1Latency, 6u);
  EXPECT_EQ(C.L2Latency, 16u);
  EXPECT_EQ(C.L3Latency, 71u);
  EXPECT_EQ(C.BlockSize, 64u);
  EXPECT_EQ(C.CoresPerSocket, 12u);
  EXPECT_DOUBLE_EQ(C.FrequencyGHz, 3.3);
}

TEST(MachineConfig, Presets) {
  EXPECT_EQ(MachineConfig::singleSocket().totalCores(), 12u);
  EXPECT_EQ(MachineConfig::dualSocket().totalCores(), 24u);
  EXPECT_TRUE(MachineConfig::disaggregated().Disaggregated);
  EXPECT_EQ(MachineConfig::manySocket(4).totalCores(), 48u);
}

TEST(MachineConfig, SocketOfPartitionsCores) {
  MachineConfig C = MachineConfig::dualSocket();
  EXPECT_EQ(C.socketOf(0), 0u);
  EXPECT_EQ(C.socketOf(11), 0u);
  EXPECT_EQ(C.socketOf(12), 1u);
  EXPECT_EQ(C.socketOf(23), 1u);
}

TEST(MachineConfig, RemoteLatencyIsOneMicrosecond) {
  MachineConfig C = MachineConfig::disaggregated();
  EXPECT_NEAR(C.cyclesToNs(C.RemoteLatency), 1000.0, 1.0);
}

TEST(MachineConfig, DescribeMentionsShape) {
  EXPECT_NE(MachineConfig::disaggregated().describe().find("disaggregated"),
            std::string::npos);
  EXPECT_NE(MachineConfig::dualSocket().describe().find("24 cores"),
            std::string::npos);
}

TEST(MachineConfig, ProtocolNames) {
  EXPECT_STREQ(protocolName(ProtocolKind::Mesi), "MESI");
  EXPECT_STREQ(protocolName(ProtocolKind::Warden), "WARDen");
}

// --- MachineConfig::validate ----------------------------------------------------

namespace {

/// True when any validation error mentions \p Needle.
bool mentions(const std::vector<std::string> &Errors, const char *Needle) {
  for (const std::string &E : Errors)
    if (E.find(Needle) != std::string::npos)
      return true;
  return false;
}

} // namespace

TEST(MachineValidate, AllPresetsAreClean) {
  EXPECT_TRUE(MachineConfig::singleSocket().validate().empty());
  EXPECT_TRUE(MachineConfig::dualSocket().validate().empty());
  EXPECT_TRUE(MachineConfig::disaggregated().validate().empty());
  EXPECT_TRUE(MachineConfig::manySocket(4).validate().empty());
}

TEST(MachineValidate, ZeroCoreGeometryIsReported) {
  MachineConfig C = MachineConfig::singleSocket();
  C.NumSockets = 0;
  EXPECT_TRUE(mentions(C.validate(), "zero sockets"));
  C = MachineConfig::singleSocket();
  C.CoresPerSocket = 0;
  EXPECT_TRUE(mentions(C.validate(), "zero cores"));
}

TEST(MachineValidate, TooManyCoresForSharerMasks) {
  MachineConfig C = MachineConfig::manySocket(8); // 96 cores > 64-bit mask.
  std::vector<std::string> Errors = C.validate();
  EXPECT_TRUE(mentions(Errors, "sharer masks"));
}

TEST(MachineValidate, NonPowerOfTwoBlockSizeIsReported) {
  MachineConfig C = MachineConfig::dualSocket();
  C.BlockSize = 48;
  EXPECT_TRUE(mentions(C.validate(), "power of two"));
  C.BlockSize = 0;
  EXPECT_TRUE(mentions(C.validate(), "power of two"));
  C.BlockSize = 128; // Pow2 but beyond the 64-byte sector masks.
  EXPECT_TRUE(mentions(C.validate(), "sector-mask"));
}

TEST(MachineValidate, BrokenCacheGeometryIsReported) {
  MachineConfig C = MachineConfig::dualSocket();
  C.L1Assoc = 0;
  EXPECT_TRUE(mentions(C.validate(), "L1 associativity"));
  C = MachineConfig::dualSocket();
  C.L2SizeKB = 0;
  EXPECT_TRUE(mentions(C.validate(), "L2 size is zero"));
  C = MachineConfig::dualSocket();
  C.L2Assoc = 12; // 256 KB does not divide into 12-way, 64-byte sets.
  EXPECT_TRUE(mentions(C.validate(), "not divisible"));
}

TEST(MachineValidate, BadFrequencyAndTopologyAreReported) {
  MachineConfig C = MachineConfig::dualSocket();
  C.FrequencyGHz = 0.0;
  EXPECT_TRUE(mentions(C.validate(), "frequency"));
  C = MachineConfig::disaggregated();
  C.NumSockets = 1;
  EXPECT_TRUE(mentions(C.validate(), "at least two compute nodes"));
  C = MachineConfig::disaggregated();
  C.RemoteLatency = 0;
  EXPECT_TRUE(mentions(C.validate(), "remote latency"));
}

// --- Node tier (CXL-pool shape) -------------------------------------------------

TEST(MachineConfig, MultiNodePresetShape) {
  MachineConfig C = MachineConfig::multiNode(2);
  EXPECT_EQ(C.NumNodes, 2u);
  EXPECT_EQ(C.NumSockets, 2u);
  EXPECT_EQ(C.totalCores(), 24u);
  EXPECT_EQ(C.socketsPerNode(), 1u);
  EXPECT_EQ(C.nodeOfCore(0), 0u);
  EXPECT_EQ(C.nodeOfCore(11), 0u);
  EXPECT_EQ(C.nodeOfCore(12), 1u);
  EXPECT_EQ(C.nodeOfCore(23), 1u);
  EXPECT_TRUE(C.validate().empty());
  EXPECT_TRUE(MachineConfig::multiNode(4).validate().empty());
  EXPECT_NE(C.describe().find("non-coherent"), std::string::npos);
}

TEST(MachineConfig, SingleNodeDefaultCollapsesTheTier) {
  // Every pre-node-tier configuration has NumNodes = 1 and must behave as
  // if the tier did not exist: one node holding every socket.
  MachineConfig C = MachineConfig::dualSocket();
  EXPECT_EQ(C.NumNodes, 1u);
  EXPECT_EQ(C.socketsPerNode(), 2u);
  EXPECT_EQ(C.nodeOfCore(0), 0u);
  EXPECT_EQ(C.nodeOfCore(23), 0u);
  // Multiple sockets per node group contiguously.
  MachineConfig M = MachineConfig::manySocket(4);
  M.NumNodes = 2;
  EXPECT_EQ(M.socketsPerNode(), 2u);
  EXPECT_EQ(M.nodeOf(0), 0u);
  EXPECT_EQ(M.nodeOf(1), 0u);
  EXPECT_EQ(M.nodeOf(2), 1u);
  EXPECT_EQ(M.nodeOf(3), 1u);
  EXPECT_TRUE(M.validate().empty());
}

TEST(MachineValidate, NodeTierEdgeCases) {
  MachineConfig C = MachineConfig::dualSocket();
  C.NumNodes = 0;
  EXPECT_TRUE(mentions(C.validate(), "zero nodes"));

  C = MachineConfig::dualSocket();
  C.NumNodes = 3; // More nodes than sockets.
  EXPECT_TRUE(mentions(C.validate(), "nodes group whole"));

  C = MachineConfig::manySocket(3);
  C.NumNodes = 2; // 3 sockets cannot split across 2 nodes.
  EXPECT_TRUE(mentions(C.validate(), "divide evenly"));

  C = MachineConfig::multiNode(2);
  C.NodeLogQueueCapacity = 0;
  EXPECT_TRUE(mentions(C.validate(), "zero-capacity"));

  C = MachineConfig::multiNode(2);
  C.NodeInterconnectLatency = 0;
  EXPECT_TRUE(mentions(C.validate(), "node-interconnect latency"));

  C = MachineConfig::multiNode(2);
  C.Disaggregated = true;
  EXPECT_TRUE(mentions(C.validate(), "mutually exclusive"));
}

TEST(MachineValidate, CollapsedTierSkipsMultiNodeOnlyRules) {
  // The queue-capacity and interconnect-latency rules only bind when the
  // tier actually exists; a single-node machine may leave them at zero.
  MachineConfig C = MachineConfig::dualSocket();
  C.NodeLogQueueCapacity = 0;
  C.NodeInterconnectLatency = 0;
  EXPECT_TRUE(C.validate().empty());
}

TEST(LatencyModel, CrossNodeCrossingUsesTheNodeInterconnect) {
  MachineConfig C = MachineConfig::multiNode(2);
  LatencyModel L(C);
  EXPECT_EQ(L.nodeHop(), C.NodeInterconnectLatency);
  // Sockets 0 and 1 sit on different nodes: the non-coherent interconnect,
  // not the QPI-like inter-socket link, prices the crossing.
  EXPECT_EQ(L.crossing(0, 1), C.NodeInterconnectLatency);
  EXPECT_EQ(L.crossing(0, 0), 0u);
  // Two sockets on the same node still pay the inter-socket link.
  MachineConfig M = MachineConfig::manySocket(4);
  M.NumNodes = 2;
  LatencyModel ML(M);
  EXPECT_EQ(ML.crossing(0, 1), M.IntersocketLatency);
  EXPECT_EQ(ML.crossing(1, 2), M.NodeInterconnectLatency);
}

TEST(MachineValidate, MultipleFaultsAreAllCollected) {
  MachineConfig C = MachineConfig::dualSocket();
  C.CoresPerSocket = 0;
  C.BlockSize = 3;
  C.FrequencyGHz = -1.0;
  EXPECT_GE(C.validate().size(), 3u);
}

// --- LatencyModel ------------------------------------------------------------------

TEST(LatencyModel, HitLatenciesMatchConfig) {
  MachineConfig C = MachineConfig::dualSocket();
  LatencyModel L(C);
  EXPECT_EQ(L.l1Hit(), 6u);
  EXPECT_EQ(L.l2Hit(), 16u);
  EXPECT_EQ(L.dram(), C.DramLatency);
}

TEST(LatencyModel, CrossingIsZeroWithinSocket) {
  MachineConfig C = MachineConfig::dualSocket();
  LatencyModel L(C);
  EXPECT_EQ(L.crossing(0, 0), 0u);
  EXPECT_EQ(L.crossing(0, 1), C.IntersocketLatency);
}

TEST(LatencyModel, DisaggregatedCrossingUsesRemoteLatency) {
  MachineConfig C = MachineConfig::disaggregated();
  LatencyModel L(C);
  EXPECT_EQ(L.crossing(0, 1), C.RemoteLatency);
}

TEST(LatencyModel, ToHomeAddsLlcLatency) {
  MachineConfig C = MachineConfig::dualSocket();
  LatencyModel L(C);
  EXPECT_EQ(L.toHome(/*Requester=*/0, /*Home=*/0), C.L3Latency);
  EXPECT_EQ(L.toHome(/*Requester=*/0, /*Home=*/1),
            C.IntersocketLatency + C.L3Latency);
}

TEST(LatencyModel, ForwardCostsMoreAcrossSockets) {
  MachineConfig C = MachineConfig::dualSocket();
  LatencyModel L(C);
  Cycles Local = L.forwardAndSupply(/*Home=*/0, /*Owner=*/1, /*Requester=*/0);
  Cycles Remote =
      L.forwardAndSupply(/*Home=*/0, /*Owner=*/13, /*Requester=*/0);
  EXPECT_GT(Remote, Local + C.IntersocketLatency);
}

TEST(LatencyModel, InvalidationRoundTrip) {
  MachineConfig C = MachineConfig::dualSocket();
  LatencyModel L(C);
  EXPECT_EQ(L.invalidate(/*Home=*/0, /*Sharer=*/1), C.L2Latency);
  EXPECT_EQ(L.invalidate(/*Home=*/0, /*Sharer=*/12),
            2 * C.IntersocketLatency + C.L2Latency);
}

// --- EnergyModel --------------------------------------------------------------------

TEST(EnergyModel, ZeroEventsStillBurnStaticPower) {
  MachineConfig C = MachineConfig::dualSocket();
  EnergyModel Model(C);
  EnergyBreakdown E = Model.compute(EnergyEvents{}, /*Elapsed=*/33000);
  EXPECT_GT(E.StaticNJ, 0.0);
  EXPECT_GT(E.InterconnectNJ, 0.0); // Network static power.
  EXPECT_DOUBLE_EQ(E.CoreDynamicNJ, 0.0);
}

TEST(EnergyModel, StaticEnergyScalesWithTime) {
  MachineConfig C = MachineConfig::dualSocket();
  EnergyModel Model(C);
  EnergyBreakdown E1 = Model.compute(EnergyEvents{}, 1000);
  EnergyBreakdown E2 = Model.compute(EnergyEvents{}, 2000);
  EXPECT_NEAR(E2.StaticNJ, 2 * E1.StaticNJ, 1e-9);
  EXPECT_NEAR(E2.InterconnectNJ, 2 * E1.InterconnectNJ, 1e-9);
}

TEST(EnergyModel, DynamicComponentsAccumulate) {
  MachineConfig C = MachineConfig::singleSocket();
  EnergyModel Model(C);
  EnergyEvents Events;
  Events.Instructions = 1000;
  Events.L1Accesses = 500;
  Events.DramAccesses = 10;
  Events.MsgsIntraSocket = 100;
  Events.DataIntraSocket = 50;
  EnergyBreakdown E = Model.compute(Events, 1);
  EXPECT_NEAR(E.CoreDynamicNJ, 1000 * EnergyModel::InstructionNJ, 1e-9);
  EXPECT_NEAR(E.CacheDynamicNJ, 500 * EnergyModel::L1AccessNJ, 1e-9);
  EXPECT_NEAR(E.DramNJ, 10 * EnergyModel::DramAccessNJ, 1e-9);
  EXPECT_GT(E.totalProcessorNJ(), E.interconnectNJ());
}

TEST(EnergyModel, RemoteTrafficCostsMost) {
  EXPECT_GT(EnergyModel::MsgRemoteNJ, EnergyModel::MsgInterNJ);
  EXPECT_GT(EnergyModel::MsgInterNJ, EnergyModel::MsgIntraNJ);
  EXPECT_GT(EnergyModel::DataRemoteNJ, EnergyModel::DataInterNJ);
  EXPECT_GT(EnergyModel::DataInterNJ, EnergyModel::DataIntraNJ);
}
