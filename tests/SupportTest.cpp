//===- tests/SupportTest.cpp - support library unit tests -------------------===//
//
// Part of the WARDen reproduction project.
//
//===----------------------------------------------------------------------===//

#include "src/support/CoreMask.h"
#include "src/support/Rng.h"
#include "src/support/Summary.h"
#include "src/support/Table.h"
#include "src/support/Types.h"

#include <gtest/gtest.h>

#include <set>
#include <vector>

using namespace warden;

// --- Types ------------------------------------------------------------------

TEST(Types, Log2ExactOnPowersOfTwo) {
  for (unsigned Shift = 0; Shift < 63; ++Shift)
    EXPECT_EQ(log2Exact(1ULL << Shift), Shift) << Shift;
}

TEST(Types, IsPowerOf2) {
  EXPECT_FALSE(isPowerOf2(0));
  std::set<std::uint64_t> Powers;
  for (unsigned Shift = 0; Shift < 63; ++Shift)
    Powers.insert(1ULL << Shift);
  for (std::uint64_t Value = 1; Value < 4096; ++Value)
    EXPECT_EQ(isPowerOf2(Value), Powers.count(Value) > 0) << Value;
}

class AlignToTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(AlignToTest, RoundsUpToMultiple) {
  std::uint64_t Align = GetParam();
  for (std::uint64_t Value : {std::uint64_t(0), std::uint64_t(1),
                              Align - 1, Align, Align + 1, 3 * Align - 1}) {
    std::uint64_t Rounded = alignTo(Value, Align);
    EXPECT_EQ(Rounded % Align, 0u);
    EXPECT_GE(Rounded, Value);
    EXPECT_LT(Rounded - Value, Align);
  }
}

INSTANTIATE_TEST_SUITE_P(Alignments, AlignToTest,
                         ::testing::Values(1, 2, 8, 64, 4096, 1 << 20));

// --- Rng --------------------------------------------------------------------

TEST(Rng, DeterministicForSameSeed) {
  Rng A(42);
  Rng B(42);
  for (int I = 0; I < 1000; ++I)
    EXPECT_EQ(A.next(), B.next());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng A(1);
  Rng B(2);
  unsigned Matches = 0;
  for (int I = 0; I < 100; ++I)
    Matches += (A.next() == B.next());
  EXPECT_LT(Matches, 3u);
}

class RngBoundTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RngBoundTest, NextBelowStaysInRange) {
  std::uint64_t Bound = GetParam();
  Rng Random(7);
  for (int I = 0; I < 2000; ++I)
    EXPECT_LT(Random.nextBelow(Bound), Bound);
}

INSTANTIATE_TEST_SUITE_P(Bounds, RngBoundTest,
                         ::testing::Values(1, 2, 3, 10, 63, 64, 1000,
                                           std::uint64_t(1) << 40));

TEST(Rng, NextInRangeCoversBothEnds) {
  Rng Random(11);
  bool SawLo = false;
  bool SawHiMinus1 = false;
  for (int I = 0; I < 10000; ++I) {
    std::int64_t V = Random.nextInRange(-3, 4);
    EXPECT_GE(V, -3);
    EXPECT_LT(V, 4);
    SawLo |= (V == -3);
    SawHiMinus1 |= (V == 3);
  }
  EXPECT_TRUE(SawLo);
  EXPECT_TRUE(SawHiMinus1);
}

TEST(Rng, NextDoubleInUnitInterval) {
  Rng Random(13);
  for (int I = 0; I < 1000; ++I) {
    double V = Random.nextDouble();
    EXPECT_GE(V, 0.0);
    EXPECT_LT(V, 1.0);
  }
}

// --- CoreMask ----------------------------------------------------------------

TEST(CoreMask, StartsEmpty) {
  CoreMask Mask;
  EXPECT_TRUE(Mask.empty());
  EXPECT_EQ(Mask.count(), 0u);
}

class CoreMaskBitTest : public ::testing::TestWithParam<CoreId> {};

TEST_P(CoreMaskBitTest, SetTestClearRoundTrip) {
  CoreId Core = GetParam();
  CoreMask Mask;
  Mask.set(Core);
  EXPECT_TRUE(Mask.test(Core));
  EXPECT_TRUE(Mask.isSingleton(Core));
  EXPECT_EQ(Mask.first(), Core);
  EXPECT_EQ(Mask.count(), 1u);
  Mask.clear(Core);
  EXPECT_TRUE(Mask.empty());
}

INSTANTIATE_TEST_SUITE_P(Bits, CoreMaskBitTest,
                         ::testing::Values(0, 1, 11, 12, 23, 31, 32, 63));

TEST(CoreMask, ForEachVisitsAscending) {
  CoreMask Mask;
  std::vector<CoreId> Expected = {1, 5, 23, 63};
  for (CoreId Core : Expected)
    Mask.set(Core);
  std::vector<CoreId> Seen;
  Mask.forEach([&](CoreId Core) { Seen.push_back(Core); });
  EXPECT_EQ(Seen, Expected);
}

TEST(CoreMask, SingleFactory) {
  CoreMask Mask = CoreMask::single(17);
  EXPECT_TRUE(Mask.isSingleton(17));
  EXPECT_FALSE(Mask.isSingleton(16));
}

TEST(CoreMask, ClearAllEmpties) {
  CoreMask Mask;
  for (CoreId Core = 0; Core < 24; ++Core)
    Mask.set(Core);
  EXPECT_EQ(Mask.count(), 24u);
  Mask.clearAll();
  EXPECT_TRUE(Mask.empty());
}

// --- Summary ------------------------------------------------------------------

TEST(Summary, MeanMinMax) {
  Summary S;
  S.add(1.0);
  S.add(2.0);
  S.add(6.0);
  EXPECT_EQ(S.count(), 3u);
  EXPECT_DOUBLE_EQ(S.mean(), 3.0);
  EXPECT_DOUBLE_EQ(S.min(), 1.0);
  EXPECT_DOUBLE_EQ(S.max(), 6.0);
  EXPECT_DOUBLE_EQ(S.sum(), 9.0);
}

TEST(Summary, GeomeanOfPowers) {
  Summary S;
  S.add(2.0);
  S.add(8.0);
  EXPECT_NEAR(S.geomean(), 4.0, 1e-12);
}

TEST(Summary, HandlesNegativeValuesForMean) {
  Summary S;
  S.add(-2.0);
  S.add(4.0);
  EXPECT_DOUBLE_EQ(S.mean(), 1.0);
  EXPECT_DOUBLE_EQ(S.min(), -2.0);
}

TEST(Summary, AllPositiveGuardsGeomean) {
  // Empty: no samples means no positive samples — geomean would assert, so
  // allPositive() must answer false (the harnesses use it as the guard).
  Summary Empty;
  EXPECT_FALSE(Empty.allPositive());

  Summary Zero;
  Zero.add(0.0);
  EXPECT_FALSE(Zero.allPositive());

  Summary Negative;
  Negative.add(2.0);
  Negative.add(-1.0);
  EXPECT_FALSE(Negative.allPositive());

  Summary Positive;
  Positive.add(0.5);
  Positive.add(2.0);
  EXPECT_TRUE(Positive.allPositive());
  EXPECT_NEAR(Positive.geomean(), 1.0, 1e-12);
}

// --- Table ---------------------------------------------------------------------

TEST(Table, RendersAlignedColumns) {
  Table T;
  T.setHeader({"Name", "Value"});
  T.addRow({"alpha", "1.00"});
  T.addRow({"b", "10.50"});
  std::string Out = T.render();
  EXPECT_NE(Out.find("Name"), std::string::npos);
  EXPECT_NE(Out.find("alpha"), std::string::npos);
  // Numeric cells right-align: "10.50" and " 1.00" end at the same column.
  std::size_t Line1 = Out.find("1.00");
  std::size_t Line2 = Out.find("10.50");
  ASSERT_NE(Line1, std::string::npos);
  ASSERT_NE(Line2, std::string::npos);
}

TEST(Table, FormatHelpers) {
  EXPECT_EQ(Table::fmt(1.2345, 2), "1.23");
  EXPECT_EQ(Table::fmt(std::uint64_t(42)), "42");
  EXPECT_EQ(Table::pct(0.5), "50.0%");
  EXPECT_EQ(Table::pct(-0.031, 1), "-3.1%");
}
