//===- tests/ObsTest.cpp - Observability subsystem tests ------------------===//
//
// Part of the WARDen reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Tests for the observability layer: the JSON writer/validator, the
/// log2-bucketed histograms, the metric registry, the Chrome-trace
/// exporter, the timeline sampler, and — most importantly — the
/// zero-perturbation contract: a run with the full Observability bundle
/// attached is cycle-identical to a detached run.
///
//===----------------------------------------------------------------------===//

#include "src/core/WardenSystem.h"
#include "src/obs/ChromeTraceExporter.h"
#include "src/obs/EventLog.h"
#include "src/obs/MetricRegistry.h"
#include "src/obs/Observability.h"
#include "src/obs/TimelineSampler.h"
#include "src/rt/Stdlib.h"
#include "src/support/Json.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <limits>
#include <string>
#include <vector>

using namespace warden;

namespace {

// --- JsonWriter ------------------------------------------------------------

TEST(JsonWriterTest, NestingAndCommas) {
  JsonWriter W;
  W.beginObject();
  W.member("a", 1);
  W.key("b").beginArray().value(1).value(2).endArray();
  W.key("c").beginObject().endObject();
  W.endObject();
  EXPECT_EQ(W.str(), "{\"a\":1,\"b\":[1,2],\"c\":{}}");
}

TEST(JsonWriterTest, EscapesStrings) {
  EXPECT_EQ(JsonWriter::escape("plain"), "plain");
  EXPECT_EQ(JsonWriter::escape("a\"b\\c"), "a\\\"b\\\\c");
  EXPECT_EQ(JsonWriter::escape("\n\t\r\b\f"), "\\n\\t\\r\\b\\f");
  EXPECT_EQ(JsonWriter::escape(std::string("\x01", 1)), "\\u0001");
  // UTF-8 passes through untouched.
  EXPECT_EQ(JsonWriter::escape("caf\xc3\xa9"), "caf\xc3\xa9");

  JsonWriter W;
  W.beginObject().member("k\"ey", "v\nal").endObject();
  EXPECT_EQ(W.str(), "{\"k\\\"ey\":\"v\\nal\"}");
  EXPECT_TRUE(jsonValidate(W.str()));
}

TEST(JsonWriterTest, NumberFormatting) {
  EXPECT_EQ(JsonWriter::formatDouble(1.5), "1.5");
  EXPECT_EQ(JsonWriter::formatDouble(0.0), "0");
  // Shortest round-trip: 0.1 stays "0.1".
  EXPECT_EQ(JsonWriter::formatDouble(0.1), "0.1");
  // JSON cannot represent non-finite numbers; they degrade to null.
  EXPECT_EQ(JsonWriter::formatDouble(std::nan("")), "null");
  EXPECT_EQ(JsonWriter::formatDouble(
                std::numeric_limits<double>::infinity()),
            "null");

  JsonWriter W;
  W.beginArray();
  W.value(std::uint64_t(18446744073709551615ull));
  W.value(std::int64_t(-42));
  W.value(true);
  W.null();
  W.endArray();
  EXPECT_EQ(W.str(), "[18446744073709551615,-42,true,null]");
  EXPECT_TRUE(jsonValidate(W.str()));
}

TEST(JsonValidateTest, AcceptsValidDocuments) {
  for (const char *Doc :
       {"{}", "[]", "null", "true", "-1.5e10", "\"x\"",
        "{\"a\":[1,2,{\"b\":null}],\"c\":\"\\u00e9\\\\\"}", "[[[[]]]]",
        "0.5", "  [ 1 , 2 ]  "}) {
    std::string Error;
    EXPECT_TRUE(jsonValidate(Doc, &Error)) << Doc << ": " << Error;
  }
}

TEST(JsonValidateTest, RejectsInvalidDocuments) {
  for (const char *Doc :
       {"", "{", "}", "[1,]", "{\"a\":}", "{\"a\" 1}", "{a:1}", "01",
        "1.", "+1", "\"unterminated", "\"bad\\escape\"", "[1] trailing",
        "nul", "truefalse", "\"\\u12\"", "{\"a\":1,}"}) {
    EXPECT_FALSE(jsonValidate(Doc)) << "accepted: " << Doc;
  }
}

// --- Histogram ---------------------------------------------------------------

TEST(HistogramTest, BucketBoundaries) {
  EXPECT_EQ(Histogram::bucketFor(0), 0u);
  EXPECT_EQ(Histogram::bucketFor(1), 1u);
  EXPECT_EQ(Histogram::bucketFor(2), 2u);
  EXPECT_EQ(Histogram::bucketFor(3), 2u);
  EXPECT_EQ(Histogram::bucketFor(4), 3u);
  EXPECT_EQ(Histogram::bucketFor(7), 3u);
  EXPECT_EQ(Histogram::bucketFor(8), 4u);
  EXPECT_EQ(Histogram::bucketFor(~std::uint64_t(0)), 64u);

  for (unsigned I = 0; I < Histogram::BucketCount; ++I) {
    EXPECT_EQ(Histogram::bucketFor(Histogram::bucketLow(I)), I);
    EXPECT_EQ(Histogram::bucketFor(Histogram::bucketHigh(I)), I);
    EXPECT_LE(Histogram::bucketLow(I), Histogram::bucketHigh(I));
  }
}

TEST(HistogramTest, RecordsBasicStatistics) {
  Histogram H;
  EXPECT_EQ(H.count(), 0u);
  EXPECT_EQ(H.percentile(50), 0u);
  H.record(0);
  H.record(5);
  H.record(100);
  EXPECT_EQ(H.count(), 3u);
  EXPECT_EQ(H.sum(), 105u);
  EXPECT_EQ(H.min(), 0u);
  EXPECT_EQ(H.max(), 100u);
  EXPECT_DOUBLE_EQ(H.mean(), 35.0);
  EXPECT_EQ(H.bucket(0), 1u); // 0
  EXPECT_EQ(H.bucket(3), 1u); // 5 in [4,7]
  EXPECT_EQ(H.bucket(7), 1u); // 100 in [64,127]
}

TEST(HistogramTest, PercentilesAreBucketUpperEdges) {
  Histogram H;
  for (std::uint64_t V = 1; V <= 100; ++V)
    H.record(V);
  // Rank 50 lands in bucket [32,63] (cumulative 63 samples through it).
  EXPECT_EQ(H.percentile(50), 63u);
  // Rank 90 lands in bucket [64,127], whose upper edge clamps to max=100.
  EXPECT_EQ(H.percentile(90), 100u);
  EXPECT_EQ(H.percentile(100), 100u);
  // Rank clamps up to 1: the first sample's bucket.
  EXPECT_EQ(H.percentile(0), 1u);
}

// --- MetricRegistry ----------------------------------------------------------

TEST(MetricRegistryTest, InstrumentsAreStableAndReported) {
  MetricRegistry R;
  Counter &C = R.counter("a.count");
  C.add();
  C.add(2);
  EXPECT_EQ(&R.counter("a.count"), &C);
  R.gauge("b.gauge").set(2.5);
  R.histogram("c.hist").record(9);

  MetricsReport Report = R.report();
  EXPECT_TRUE(Report.Enabled);
  ASSERT_EQ(Report.Counters.size(), 1u);
  EXPECT_EQ(Report.Counters[0].first, "a.count");
  EXPECT_EQ(Report.Counters[0].second, 3u);
  ASSERT_EQ(Report.Gauges.size(), 1u);
  EXPECT_DOUBLE_EQ(Report.Gauges[0].second, 2.5);
  ASSERT_EQ(Report.Histograms.size(), 1u);
  EXPECT_EQ(Report.Histograms[0].Name, "c.hist");
  EXPECT_EQ(Report.Histograms[0].Count, 1u);

  JsonWriter W;
  Report.writeJson(W);
  std::string Error;
  EXPECT_TRUE(jsonValidate(W.str(), &Error)) << Error;
}

// --- ChromeTraceExporter -----------------------------------------------------

/// Extracts every "ts" value of \p Doc in document order.
std::vector<double> extractTimestamps(const std::string &Doc) {
  std::vector<double> Ts;
  const std::string Key = "\"ts\":";
  for (std::size_t Pos = Doc.find(Key); Pos != std::string::npos;
       Pos = Doc.find(Key, Pos + 1))
    Ts.push_back(std::strtod(Doc.c_str() + Pos + Key.size(), nullptr));
  return Ts;
}

TEST(ChromeTraceTest, RendersValidSortedTrace) {
  ChromeTraceExporter T;
  T.setCoreCount(2);
  // Deliberately out of order.
  T.taskSpan(1, 7, 500, 900);
  T.taskSpan(0, 3, 0, 400);
  T.instant("reconcile", 1, 450);
  T.instant("region overflow", T.directoryTid(), 100);
  EXPECT_EQ(T.spanCount(), 2u);
  EXPECT_EQ(T.instantCount(), 2u);

  std::string Doc = T.render();
  std::string Error;
  ASSERT_TRUE(jsonValidate(Doc, &Error)) << Error;
  EXPECT_NE(Doc.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(Doc.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(Doc.find("\"ph\":\"i\""), std::string::npos);
  EXPECT_NE(Doc.find("directory"), std::string::npos);

  std::vector<double> Ts = extractTimestamps(Doc);
  ASSERT_GE(Ts.size(), 4u);
  for (std::size_t I = 1; I < Ts.size(); ++I)
    EXPECT_LE(Ts[I - 1], Ts[I]) << "ts out of order at event " << I;
}

// --- End-to-end: a recorded workload with the full bundle --------------------

TaskGraph recordWorkload(const RtOptions &Options = RtOptions()) {
  Runtime Rt(Options);
  auto In = stdlib::tabulate<std::uint32_t>(
      Rt, 8192, [](std::size_t I) { return std::uint32_t(I * 2654435761u); },
      128);
  auto Out = stdlib::mapArray<std::uint64_t>(
      Rt, In, [](std::uint32_t V) { return std::uint64_t(V) % 977; }, 128);
  std::uint64_t Total = stdlib::sum(Rt, Out, 128);
  EXPECT_GT(Total, 0u);
  return Rt.finish();
}

/// Runs \p Graph with a freshly attached full bundle and returns the result
/// plus the bundle contents via out-parameters.
RunResult runObserved(const TaskGraph &Graph, const MachineConfig &Config,
                      MetricRegistry &Metrics, TimelineSampler &Sampler,
                      ChromeTraceExporter &Trace, EventLog *Log = nullptr) {
  Observability Obs;
  Obs.Metrics = &Metrics;
  Obs.Sampler = &Sampler;
  Obs.Trace = &Trace;
  Obs.Log = Log;
  RunOptions Options;
  Options.Obs = &Obs;
  return WardenSystem::simulate(Graph, Config, Options);
}

TEST(ObservabilityTest, AttachedRunIsCycleIdentical) {
  TaskGraph Graph = recordWorkload();
  for (ProtocolKind Protocol : {ProtocolKind::Mesi, ProtocolKind::Warden}) {
    MachineConfig Config = MachineConfig::dualSocket();
    Config.Protocol = Protocol;

    RunResult Plain = WardenSystem::simulate(Graph, Config);
    MetricRegistry Metrics;
    TimelineSampler Sampler;
    ChromeTraceExporter Trace;
    EventLog Log;
    Log.configure(::testing::TempDir() + "warden_obs_identity");
    RunResult Observed =
        runObserved(Graph, Config, Metrics, Sampler, Trace, &Log);

    // The whole contract: attaching the bundle — streaming event log
    // included — changes no simulated cycle and no simulated event.
    EXPECT_EQ(Plain.Makespan, Observed.Makespan);
    EXPECT_EQ(Plain.Instructions, Observed.Instructions);
    EXPECT_EQ(Plain.Coherence.Invalidations,
              Observed.Coherence.Invalidations);
    EXPECT_EQ(Plain.Coherence.Downgrades, Observed.Coherence.Downgrades);
    EXPECT_EQ(Plain.Coherence.accesses(), Observed.Coherence.accesses());
    EXPECT_EQ(Plain.Sched.Steals, Observed.Sched.Steals);
    EXPECT_FALSE(Plain.Metrics.Enabled);
    EXPECT_TRUE(Observed.Metrics.Enabled);
    EXPECT_GT(Log.recordsEmitted(), 0u);
    std::remove(Log.lastPath().c_str());
  }
}

TEST(ObservabilityTest, InstrumentsObserveTheRun) {
  TaskGraph Graph = recordWorkload();
  MachineConfig Config = MachineConfig::dualSocket();
  Config.Protocol = ProtocolKind::Warden;

  MetricRegistry Metrics;
  TimelineSampler Sampler(5000);
  ChromeTraceExporter Trace;
  RunResult R = runObserved(Graph, Config, Metrics, Sampler, Trace);

  EXPECT_GT(Metrics.counter("cache.private_fills").value(), 0u);
  EXPECT_GT(Metrics.histogram("coherence.load_latency_cycles").count(), 0u);
  EXPECT_GT(Metrics.histogram("sched.steal_wait_cycles").count(), 0u);
  // The workload marks and unmarks WARD regions, so lifetimes exist.
  EXPECT_GT(Metrics.histogram("ward.region_lifetime_cycles").count(), 0u);

  // Every executed strand became exactly one span ending by the makespan.
  EXPECT_EQ(Trace.spanCount(), R.Sched.StrandsExecuted);
  std::string Doc = Trace.render();
  std::string Error;
  EXPECT_TRUE(jsonValidate(Doc, &Error)) << Error;

  ASSERT_FALSE(Sampler.samples().empty());
  Cycles Prev = 0;
  for (const TimelineSample &S : Sampler.samples()) {
    EXPECT_GT(S.Cycle, Prev);
    Prev = S.Cycle;
    EXPECT_GE(S.BusyFraction, 0.0);
    EXPECT_LE(S.BusyFraction, 1.0);
    EXPECT_GE(S.Ipc, 0.0);
  }
  EXPECT_EQ(Sampler.samples().back().Cycle, R.Makespan);

  // The RunResult snapshot matches the live registry.
  bool FoundLoadHist = false;
  for (const HistogramSnapshot &H : R.Metrics.Histograms)
    if (H.Name == "coherence.load_latency_cycles") {
      FoundLoadHist = true;
      EXPECT_EQ(H.Count,
                Metrics.histogram("coherence.load_latency_cycles").count());
    }
  EXPECT_TRUE(FoundLoadHist);
}

TEST(ObservabilityTest, SamplerIsDeterministicAcrossIdenticalRuns) {
  TaskGraph Graph = recordWorkload();
  MachineConfig Config = MachineConfig::dualSocket();
  Config.Protocol = ProtocolKind::Warden;

  std::vector<TimelineSample> Series[2];
  for (int Round = 0; Round < 2; ++Round) {
    MetricRegistry Metrics;
    TimelineSampler Sampler;
    ChromeTraceExporter Trace;
    runObserved(Graph, Config, Metrics, Sampler, Trace);
    Series[Round] = Sampler.samples();
  }
  EXPECT_EQ(Series[0], Series[1]);
}

TEST(ObservabilityTest, MedianRunCarriesFirstRepeatMetrics) {
  TaskGraph Graph = recordWorkload();
  MachineConfig Config = MachineConfig::singleSocket();
  Config.Protocol = ProtocolKind::Warden;

  Observability Obs;
  MetricRegistry Metrics;
  Obs.Metrics = &Metrics;
  RunOptions Options;
  Options.Obs = &Obs;
  Options.Repeats = 3;
  RunResult Median = WardenSystem::simulateMedian(Graph, Config, Options);
  EXPECT_TRUE(Median.Metrics.Enabled);
  EXPECT_FALSE(Median.Metrics.Histograms.empty());
}

} // namespace
