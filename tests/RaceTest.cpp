//===- tests/RaceTest.cpp - SP-bags checker unit tests -----------------------===//
//
// Part of the WARDen reproduction project.
//
//===----------------------------------------------------------------------===//

#include "src/race/SpBags.h"

#include <gtest/gtest.h>

using namespace warden;

namespace {

/// Simulates: Root forks {A, B}, each accessing per the callbacks, then
/// joins. Returns the number of violations.
template <typename FnA, typename FnB>
std::size_t runForkJoin(FnA AccessA, FnB AccessB) {
  SpBags Checker;
  TaskId Root = Checker.start();
  TaskId A = Checker.spawn(Root);
  AccessA(Checker, A);
  Checker.childReturned(Root, A);
  TaskId B = Checker.spawn(Root);
  AccessB(Checker, B);
  Checker.childReturned(Root, B);
  Checker.sync(Root);
  return Checker.violations().size();
}

} // namespace

TEST(SpBags, ParallelWriteThenReadIsRaw) {
  std::size_t Violations = runForkJoin(
      [](SpBags &C, TaskId A) { C.onStore(A, 0x100, 8); },
      [](SpBags &C, TaskId B) { C.onLoad(B, 0x100, 8); });
  EXPECT_EQ(Violations, 1u);
}

TEST(SpBags, ParallelReadThenWriteIsRaw) {
  // A RAW exists in *some* execution order (Section 3.1 condition 1), so
  // the read-before-write interleaving is also a violation.
  std::size_t Violations = runForkJoin(
      [](SpBags &C, TaskId A) { C.onLoad(A, 0x200, 8); },
      [](SpBags &C, TaskId B) { C.onStore(B, 0x200, 8); });
  EXPECT_EQ(Violations, 1u);
}

TEST(SpBags, ParallelWawIsPermitted) {
  std::size_t Violations = runForkJoin(
      [](SpBags &C, TaskId A) { C.onStore(A, 0x300, 8); },
      [](SpBags &C, TaskId B) { C.onStore(B, 0x300, 8); });
  EXPECT_EQ(Violations, 0u);
}

TEST(SpBags, DisjointAddressesNoViolation) {
  std::size_t Violations = runForkJoin(
      [](SpBags &C, TaskId A) { C.onStore(A, 0x400, 8); },
      [](SpBags &C, TaskId B) { C.onLoad(B, 0x408, 8); });
  EXPECT_EQ(Violations, 0u);
}

TEST(SpBags, SerialWriteThenReadIsFine) {
  SpBags Checker;
  TaskId Root = Checker.start();
  TaskId A = Checker.spawn(Root);
  Checker.onStore(A, 0x500, 8);
  Checker.childReturned(Root, A);
  Checker.sync(Root); // Join: A is now serial history.
  Checker.onLoad(Root, 0x500, 8);
  EXPECT_TRUE(Checker.violations().empty());
}

TEST(SpBags, WriteBeforeForkReadInChildIsFine) {
  SpBags Checker;
  TaskId Root = Checker.start();
  Checker.onStore(Root, 0x600, 8);
  TaskId A = Checker.spawn(Root);
  Checker.onLoad(A, 0x600, 8); // Parent is an ancestor: serial.
  Checker.childReturned(Root, A);
  Checker.sync(Root);
  EXPECT_TRUE(Checker.violations().empty());
}

TEST(SpBags, NestedParallelGrandchildrenConflict) {
  SpBags Checker;
  TaskId Root = Checker.start();
  TaskId A = Checker.spawn(Root);
  TaskId A1 = Checker.spawn(A);
  Checker.onStore(A1, 0x700, 8);
  Checker.childReturned(A, A1);
  Checker.sync(A);
  Checker.childReturned(Root, A);
  TaskId B = Checker.spawn(Root);
  Checker.onLoad(B, 0x700, 8); // A1 and B are cousins: parallel.
  Checker.childReturned(Root, B);
  Checker.sync(Root);
  EXPECT_EQ(Checker.violations().size(), 1u);
}

TEST(SpBags, ClearRangeForgetsHistory) {
  SpBags Checker;
  TaskId Root = Checker.start();
  TaskId A = Checker.spawn(Root);
  Checker.onStore(A, 0x800, 8);
  Checker.childReturned(Root, A);
  // Region reconciled: history cleared before the (parallel-looking)
  // sibling read.
  Checker.clearRange(0x800, 8);
  TaskId B = Checker.spawn(Root);
  Checker.onLoad(B, 0x800, 8);
  Checker.childReturned(Root, B);
  Checker.sync(Root);
  EXPECT_TRUE(Checker.violations().empty());
}

TEST(SpBags, MultiWordAccessChecksEveryWord) {
  std::size_t Violations = runForkJoin(
      [](SpBags &C, TaskId A) { C.onStore(A, 0x900, 16); },
      [](SpBags &C, TaskId B) { C.onLoad(B, 0x908, 4); });
  EXPECT_EQ(Violations, 1u);
}

TEST(SpBags, TwoReadersOneParallelWriterCaught) {
  SpBags Checker;
  TaskId Root = Checker.start();
  TaskId A = Checker.spawn(Root);
  Checker.onLoad(A, 0xa00, 8);
  Checker.childReturned(Root, A);
  TaskId B = Checker.spawn(Root);
  Checker.onLoad(B, 0xa00, 8);
  Checker.childReturned(Root, B);
  TaskId C = Checker.spawn(Root);
  Checker.onStore(C, 0xa00, 8);
  Checker.childReturned(Root, C);
  Checker.sync(Root);
  EXPECT_GE(Checker.violations().size(), 1u);
}
