//===- tests/SchedTest.cpp - timing replay unit tests ------------------------===//
//
// Part of the WARDen reproduction project.
//
//===----------------------------------------------------------------------===//

#include "src/coherence/CoherenceController.h"
#include "src/rt/Stdlib.h"
#include "src/sched/Replay.h"

#include <gtest/gtest.h>

using namespace warden;

namespace {

/// Hand-builds a graph: root forks two children, each Work(N) long.
TaskGraph makeForkJoinGraph(std::uint64_t LeafWork) {
  TaskGraph Graph;
  StrandId Root = Graph.addStrand();
  StrandId Cont = Graph.addStrand();
  StrandId A = Graph.addStrand();
  StrandId B = Graph.addStrand();
  Graph.setRoot(Root);
  Graph.strand(Root).Events.push_back(TraceEvent::work(10));
  Graph.strand(Root).Children = {A, B};
  Graph.strand(A).Events.push_back(TraceEvent::work(LeafWork));
  Graph.strand(A).JoinTarget = Cont;
  Graph.strand(B).Events.push_back(TraceEvent::work(LeafWork));
  Graph.strand(B).JoinTarget = Cont;
  Graph.strand(Cont).PendingJoin = 2;
  Graph.strand(Cont).JoinCounterAddr = 0x7000;
  Graph.strand(Cont).Events.push_back(TraceEvent::work(5));
  return Graph;
}

TaskGraph recordTabulate(std::size_t N, std::int64_t Grain) {
  Runtime Rt;
  auto Out = stdlib::tabulate<int>(
      Rt, N, [](std::size_t I) { return int(I); }, Grain);
  (void)Out;
  return Rt.finish();
}

} // namespace

TEST(Replay, ExecutesAllStrands) {
  TaskGraph Graph = makeForkJoinGraph(1000);
  MachineConfig Config = MachineConfig::singleSocket();
  CoherenceController Controller(Config);
  Replayer R(Graph, Controller, 1);
  ReplayResult Result = R.run();
  EXPECT_EQ(Result.Sched.StrandsExecuted, 4u);
  EXPECT_GT(Result.Makespan, 1000u);
}

TEST(Replay, ParallelLeavesOverlapInTime) {
  TaskGraph Graph = makeForkJoinGraph(100000);
  MachineConfig Config = MachineConfig::singleSocket();
  CoherenceController Controller(Config);
  Replayer R(Graph, Controller, 1);
  ReplayResult Result = R.run();
  // Two 100k-cycle leaves on 12 cores: the makespan must be well below the
  // serial 200k (one leaf is stolen), but at least one leaf long.
  EXPECT_LT(Result.Makespan, 150000u);
  EXPECT_GE(Result.Makespan, 100000u);
  EXPECT_GE(Result.Sched.Steals, 1u);
}

TEST(Replay, SingleCoreRunsSerially) {
  TaskGraph Graph = makeForkJoinGraph(10000);
  MachineConfig Config = MachineConfig::singleSocket();
  Config.CoresPerSocket = 1;
  CoherenceController Controller(Config);
  Replayer R(Graph, Controller, 1);
  ReplayResult Result = R.run();
  EXPECT_EQ(Result.Sched.Steals, 0u);
  EXPECT_GE(Result.Makespan, 20000u);
}

TEST(Replay, DeterministicForSameSeed) {
  TaskGraph Graph = recordTabulate(4096, 64);
  MachineConfig Config = MachineConfig::dualSocket();
  Cycles First = 0;
  for (int Trial = 0; Trial < 3; ++Trial) {
    CoherenceController Controller(Config);
    Replayer R(Graph, Controller, 42);
    Cycles Makespan = R.run().Makespan;
    if (Trial == 0)
      First = Makespan;
    else
      EXPECT_EQ(Makespan, First);
  }
}

TEST(Replay, SeedChangesSchedule) {
  TaskGraph Graph = recordTabulate(4096, 64);
  MachineConfig Config = MachineConfig::dualSocket();
  CoherenceController C1(Config);
  CoherenceController C2(Config);
  Cycles A = Replayer(Graph, C1, 1).run().Makespan;
  Cycles B = Replayer(Graph, C2, 2).run().Makespan;
  // Not guaranteed different in principle, but over 60+ steals the victim
  // sequences diverge in practice.
  EXPECT_NE(A, B);
}

TEST(Replay, InstructionsMatchGraphPlusSchedulerWork) {
  TaskGraph Graph = makeForkJoinGraph(500);
  MachineConfig Config = MachineConfig::singleSocket();
  CoherenceController Controller(Config);
  Replayer R(Graph, Controller, 1);
  ReplayResult Result = R.run();
  // Graph instructions are a lower bound; deque pushes/pops/probes add a
  // bounded amount on top.
  EXPECT_GE(Result.Sched.Instructions, Graph.totalInstructions());
}

TEST(Replay, MakespanAtLeastCriticalPath) {
  TaskGraph Graph = recordTabulate(2048, 64);
  MachineConfig Config = MachineConfig::dualSocket();
  CoherenceController Controller(Config);
  ReplayResult Result = Replayer(Graph, Controller, 7).run();
  EXPECT_GE(Result.Makespan, Graph.spanInstructions());
}

class CoreCountSweep : public ::testing::TestWithParam<unsigned> {};

TEST_P(CoreCountSweep, MoreCoresNeverHurtMuch) {
  unsigned Cores = GetParam();
  TaskGraph Graph = recordTabulate(8192, 64);
  MachineConfig Config = MachineConfig::singleSocket();
  Config.CoresPerSocket = Cores;
  CoherenceController Controller(Config);
  ReplayResult Result = Replayer(Graph, Controller, 3).run();
  EXPECT_EQ(Result.Sched.StrandsExecuted, Graph.size());
  EXPECT_GT(Result.Makespan, 0u);
}

INSTANTIATE_TEST_SUITE_P(Cores, CoreCountSweep,
                         ::testing::Values(1, 2, 4, 12, 24, 48));

TEST(Replay, ScalesDownMakespanWithCores) {
  TaskGraph Graph = recordTabulate(16384, 64);
  MachineConfig One = MachineConfig::singleSocket();
  One.CoresPerSocket = 1;
  MachineConfig Twelve = MachineConfig::singleSocket();
  CoherenceController C1(One);
  CoherenceController C12(Twelve);
  Cycles Serial = Replayer(Graph, C1, 5).run().Makespan;
  Cycles Parallel = Replayer(Graph, C12, 5).run().Makespan;
  EXPECT_GT(Serial, 3 * Parallel); // Should be near 12x minus overheads.
}

TEST(Replay, StoreBufferAbsorbsStores) {
  // A strand of pure stores: the core should advance ~1 cycle per store
  // (plus misses resolved in the background), not the full miss latency.
  TaskGraph Graph;
  StrandId Root = Graph.addStrand();
  Graph.setRoot(Root);
  for (unsigned I = 0; I < 16; ++I)
    Graph.strand(Root).Events.push_back(
        TraceEvent::store(0x100000 + I * 4096, 8));
  MachineConfig Config = MachineConfig::singleSocket();
  CoherenceController Controller(Config);
  ReplayResult Result = Replayer(Graph, Controller, 1).run();
  // 16 cold store misses would cost > 3000 cycles if blocking; buffered
  // they cost ~16 issue cycles.
  EXPECT_LT(Result.Makespan, 200u);
}

TEST(Replay, FullStoreBufferStalls) {
  TaskGraph Graph;
  StrandId Root = Graph.addStrand();
  Graph.setRoot(Root);
  for (unsigned I = 0; I < 512; ++I)
    Graph.strand(Root).Events.push_back(
        TraceEvent::store(0x100000 + Addr(I) * 4096, 8));
  MachineConfig Config = MachineConfig::singleSocket();
  Config.StoreBufferEntries = 4;
  CoherenceController Controller(Config);
  ReplayResult Result = Replayer(Graph, Controller, 1).run();
  EXPECT_GT(Result.Sched.StoreStallCycles, 0u);
}

TEST(Replay, LoadsBlock) {
  TaskGraph Graph;
  StrandId Root = Graph.addStrand();
  Graph.setRoot(Root);
  for (unsigned I = 0; I < 16; ++I)
    Graph.strand(Root).Events.push_back(
        TraceEvent::load(0x100000 + Addr(I) * 4096, 8));
  MachineConfig Config = MachineConfig::singleSocket();
  CoherenceController Controller(Config);
  ReplayResult Result = Replayer(Graph, Controller, 1).run();
  // 16 cold loads at ~211 cycles each.
  EXPECT_GT(Result.Makespan, 16 * Config.L3Latency);
}
