//===- tests/CoherenceTest.cpp - MESI + WARDen protocol unit tests -----------===//
//
// Part of the WARDen reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Scenario tests for the directory protocol: the MESI transitions of
/// Figure 5, the WARD state behaviour of Section 5.1, and the
/// reconciliation taxonomy of Section 5.2 (no sharing / false sharing /
/// true sharing).
///
//===----------------------------------------------------------------------===//

#include "src/coherence/CoherenceController.h"

#include <gtest/gtest.h>

using namespace warden;

namespace {

MachineConfig testConfig(ProtocolKind Protocol, unsigned Sockets = 1) {
  MachineConfig Config =
      Sockets == 1 ? MachineConfig::singleSocket() : MachineConfig::dualSocket();
  Config.Protocol = Protocol;
  return Config;
}

constexpr Addr BlockA = 0x10000;

} // namespace

// --- MESI transitions ---------------------------------------------------------

TEST(Mesi, ColdLoadFillsExclusive) {
  CoherenceController C(testConfig(ProtocolKind::Mesi));
  Cycles Lat = C.access(0, BlockA, 8, AccessType::Load);
  EXPECT_GT(Lat, C.config().L3Latency); // Miss to DRAM.
  const DirEntry *Entry = C.directoryEntry(BlockA);
  ASSERT_NE(Entry, nullptr);
  EXPECT_EQ(Entry->State, DirState::Exclusive);
  EXPECT_EQ(Entry->Owner, 0u);
  EXPECT_EQ(C.privateLine(0, BlockA)->State, LineState::Exclusive);
  EXPECT_EQ(C.stats().DramAccesses, 1u);
}

TEST(Mesi, SecondLoadHitsL1) {
  CoherenceController C(testConfig(ProtocolKind::Mesi));
  C.access(0, BlockA, 8, AccessType::Load);
  Cycles Lat = C.access(0, BlockA, 8, AccessType::Load);
  EXPECT_EQ(Lat, C.config().L1Latency);
  EXPECT_EQ(C.stats().L1Hits, 1u);
}

TEST(Mesi, SecondReaderDowngradesExclusiveOwner) {
  CoherenceController C(testConfig(ProtocolKind::Mesi));
  C.access(0, BlockA, 8, AccessType::Load);
  C.access(1, BlockA, 8, AccessType::Load);
  EXPECT_EQ(C.stats().Downgrades, 1u);
  const DirEntry *Entry = C.directoryEntry(BlockA);
  EXPECT_EQ(Entry->State, DirState::Shared);
  EXPECT_TRUE(Entry->Sharers.test(0));
  EXPECT_TRUE(Entry->Sharers.test(1));
  EXPECT_EQ(C.privateLine(0, BlockA)->State, LineState::Shared);
  EXPECT_EQ(C.privateLine(1, BlockA)->State, LineState::Shared);
}

TEST(Mesi, ColdStoreFillsModified) {
  CoherenceController C(testConfig(ProtocolKind::Mesi));
  C.access(0, BlockA, 8, AccessType::Store);
  EXPECT_EQ(C.directoryEntry(BlockA)->State, DirState::Modified);
  EXPECT_EQ(C.privateLine(0, BlockA)->State, LineState::Modified);
  EXPECT_TRUE(C.privateLine(0, BlockA)->Dirty.anyWritten(0, 8));
}

TEST(Mesi, StoreToSharedInvalidatesOtherReaders) {
  CoherenceController C(testConfig(ProtocolKind::Mesi));
  C.access(0, BlockA, 8, AccessType::Load);
  C.access(1, BlockA, 8, AccessType::Load);
  C.access(2, BlockA, 8, AccessType::Load);
  C.access(0, BlockA, 8, AccessType::Store); // Upgrade.
  EXPECT_EQ(C.stats().Invalidations, 2u);
  EXPECT_EQ(C.privateLine(1, BlockA), nullptr);
  EXPECT_EQ(C.privateLine(2, BlockA), nullptr);
  EXPECT_EQ(C.privateLine(0, BlockA)->State, LineState::Modified);
  EXPECT_EQ(C.directoryEntry(BlockA)->State, DirState::Modified);
}

TEST(Mesi, StoreStealsModifiedBlockCacheToCache) {
  CoherenceController C(testConfig(ProtocolKind::Mesi));
  C.access(0, BlockA, 8, AccessType::Store);
  C.access(1, BlockA, 8, AccessType::Store);
  EXPECT_EQ(C.stats().Invalidations, 1u);
  EXPECT_EQ(C.stats().CacheToCache, 1u);
  EXPECT_EQ(C.privateLine(0, BlockA), nullptr);
  EXPECT_EQ(C.directoryEntry(BlockA)->Owner, 1u);
}

TEST(Mesi, LoadOfDirtyBlockWritesBackAndShares) {
  CoherenceController C(testConfig(ProtocolKind::Mesi));
  C.access(0, BlockA, 8, AccessType::Store);
  Cycles Lat = C.access(1, BlockA, 8, AccessType::Load);
  EXPECT_EQ(C.stats().Downgrades, 1u);
  EXPECT_EQ(C.stats().Writebacks, 1u);
  EXPECT_GT(Lat, C.config().L3Latency);
  EXPECT_EQ(C.privateLine(0, BlockA)->State, LineState::Shared);
  EXPECT_EQ(C.directoryEntry(BlockA)->State, DirState::Shared);
}

TEST(Mesi, SilentEToMUpgradeThenForwardSeesDirtyData) {
  CoherenceController C(testConfig(ProtocolKind::Mesi));
  C.access(0, BlockA, 8, AccessType::Load);  // E at core 0.
  C.access(0, BlockA, 8, AccessType::Store); // Silent E->M.
  EXPECT_EQ(C.privateLine(0, BlockA)->State, LineState::Modified);
  C.access(1, BlockA, 8, AccessType::Load);
  // The writeback must have happened even though the directory thought E.
  EXPECT_EQ(C.stats().Writebacks, 1u);
}

TEST(Mesi, RmwBehavesLikeStore) {
  CoherenceController C(testConfig(ProtocolKind::Mesi));
  C.access(0, BlockA, 8, AccessType::Load);
  C.access(1, BlockA, 8, AccessType::Rmw);
  EXPECT_EQ(C.stats().Rmws, 1u);
  EXPECT_EQ(C.stats().Invalidations, 1u);
  EXPECT_EQ(C.directoryEntry(BlockA)->Owner, 1u);
}

TEST(Mesi, AccessSpanningTwoBlocksTouchesBoth) {
  CoherenceController C(testConfig(ProtocolKind::Mesi));
  C.access(0, BlockA + 60, 8, AccessType::Store);
  EXPECT_NE(C.privateLine(0, BlockA), nullptr);
  EXPECT_NE(C.privateLine(0, BlockA + 64), nullptr);
  EXPECT_TRUE(C.privateLine(0, BlockA)->Dirty.anyWritten(60, 4));
  EXPECT_TRUE(C.privateLine(0, BlockA + 64)->Dirty.anyWritten(0, 4));
}

TEST(Mesi, ZeroSizeAccessIsRejectedWithoutSideEffects) {
  CoherenceController C(testConfig(ProtocolKind::Mesi));
  EXPECT_EQ(C.access(0, BlockA, 0, AccessType::Store), 0u);
  EXPECT_EQ(C.stats().RejectedAccesses, 1u);
  EXPECT_EQ(C.privateLine(0, BlockA), nullptr);
  EXPECT_EQ(C.directoryEntry(BlockA), nullptr);
  EXPECT_EQ(C.stats().Loads + C.stats().Stores, 0u);
}

TEST(Mesi, OutOfRangeCoreIsRejectedWithoutSideEffects) {
  CoherenceController C(testConfig(ProtocolKind::Mesi));
  CoreId Bad = C.config().totalCores();
  EXPECT_EQ(C.access(Bad, BlockA, 8, AccessType::Load), 0u);
  EXPECT_EQ(C.access(Bad + 100, BlockA, 8, AccessType::Store), 0u);
  EXPECT_EQ(C.stats().RejectedAccesses, 2u);
  EXPECT_EQ(C.directoryEntry(BlockA), nullptr);
}

TEST(Mesi, AccessLargerThanBlockSplitsAcrossAllBlocks) {
  CoherenceController C(testConfig(ProtocolKind::Mesi));
  // 200 bytes starting mid-block covers four 64-byte blocks.
  C.access(0, BlockA + 32, 200, AccessType::Store);
  for (Addr Block = BlockA; Block <= BlockA + 192; Block += 64) {
    ASSERT_NE(C.privateLine(0, Block), nullptr) << "block " << Block;
    EXPECT_EQ(C.privateLine(0, Block)->State, LineState::Modified);
  }
  // First block dirty only from offset 32; last only up to byte 40.
  EXPECT_FALSE(C.privateLine(0, BlockA)->Dirty.anyWritten(0, 32));
  EXPECT_TRUE(C.privateLine(0, BlockA)->Dirty.anyWritten(32, 32));
  EXPECT_TRUE(C.privateLine(0, BlockA + 192)->Dirty.anyWritten(0, 40));
  EXPECT_FALSE(C.privateLine(0, BlockA + 192)->Dirty.anyWritten(40, 24));
  EXPECT_EQ(C.stats().RejectedAccesses, 0u);
}

TEST(Mesi, CapacityEvictionNotifiesDirectory) {
  MachineConfig Config = testConfig(ProtocolKind::Mesi);
  Config.L1SizeKB = 1; // 16 blocks, tiny.
  Config.L2SizeKB = 2; // 32 blocks.
  Config.L1Assoc = 2;
  Config.L2Assoc = 2;
  CoherenceController C(Config);
  // Stream enough dirty blocks through one core to force evictions.
  for (Addr Block = 0; Block < 64 * 128; Block += 64)
    C.access(0, 0x100000 + Block, 8, AccessType::Store);
  EXPECT_GT(C.stats().Evictions, 0u);
  EXPECT_GT(C.stats().Writebacks, 0u);
  // Directory entries for evicted blocks are Invalid again.
  EXPECT_EQ(C.directoryEntry(0x100000)->State, DirState::Invalid);
}

// --- WARD state ------------------------------------------------------------------

TEST(Warden, RegionAccessEntersWardState) {
  CoherenceController C(testConfig(ProtocolKind::Warden));
  C.addRegion(0, BlockA, BlockA + 4096);
  C.access(0, BlockA, 8, AccessType::Store);
  EXPECT_EQ(C.directoryEntry(BlockA)->State, DirState::Ward);
  EXPECT_EQ(C.privateLine(0, BlockA)->State, LineState::Ward);
  EXPECT_EQ(C.stats().WardGrants, 1u);
}

TEST(Warden, GetSReturnsWritableCopy) {
  CoherenceController C(testConfig(ProtocolKind::Warden));
  C.addRegion(0, BlockA, BlockA + 4096);
  C.access(0, BlockA, 8, AccessType::Load);
  // Section 5.1: the read copy is exclusive-like, so a write is silent.
  Cycles StoreLat = C.access(0, BlockA, 8, AccessType::Store);
  EXPECT_EQ(StoreLat, C.config().L1Latency);
}

TEST(Warden, NoInvalidationsOrDowngradesInsideRegion) {
  CoherenceController C(testConfig(ProtocolKind::Warden));
  C.addRegion(0, BlockA, BlockA + 4096);
  for (CoreId Core = 0; Core < 4; ++Core) {
    C.access(Core, BlockA, 8, AccessType::Store);
    C.access(Core, BlockA + 8, 8, AccessType::Load);
  }
  EXPECT_EQ(C.stats().Invalidations, 0u);
  EXPECT_EQ(C.stats().Downgrades, 0u);
  EXPECT_EQ(C.directoryEntry(BlockA)->Sharers.count(), 4u);
}

TEST(Warden, FirstSharingEventConvertsExistingOwner) {
  CoherenceController C(testConfig(ProtocolKind::Warden));
  // Core 0 writes the block while it is NOT in any region (plain MESI M).
  C.access(0, BlockA, 8, AccessType::Store);
  EXPECT_EQ(C.directoryEntry(BlockA)->State, DirState::Modified);
  // Region starts; core 1 touches the block: entry moves to W and core 0's
  // dirty copy becomes a Ward member with its dirty bytes preserved.
  C.addRegion(0, BlockA, BlockA + 4096);
  C.access(1, BlockA, 8, AccessType::Store);
  EXPECT_EQ(C.directoryEntry(BlockA)->State, DirState::Ward);
  EXPECT_EQ(C.privateLine(0, BlockA)->State, LineState::Ward);
  EXPECT_TRUE(C.privateLine(0, BlockA)->Dirty.any());
  EXPECT_EQ(C.stats().Invalidations, 0u);
}

TEST(Warden, MesiProtocolIgnoresRegions) {
  CoherenceController C(testConfig(ProtocolKind::Mesi));
  C.addRegion(0, BlockA, BlockA + 4096);
  C.access(0, BlockA, 8, AccessType::Store);
  C.access(1, BlockA, 8, AccessType::Store);
  EXPECT_EQ(C.directoryEntry(BlockA)->State, DirState::Modified);
  EXPECT_EQ(C.stats().Invalidations, 1u);
  EXPECT_EQ(C.stats().WardGrants, 0u);
}

TEST(Warden, NonRegionBlocksStayMesi) {
  CoherenceController C(testConfig(ProtocolKind::Warden));
  C.addRegion(0, BlockA, BlockA + 4096);
  constexpr Addr Outside = BlockA + 0x100000;
  C.access(0, Outside, 8, AccessType::Load);
  C.access(1, Outside, 8, AccessType::Store);
  EXPECT_EQ(C.stats().Invalidations, 1u);
  EXPECT_EQ(C.directoryEntry(Outside)->State, DirState::Modified);
}

// --- Reconciliation -----------------------------------------------------------------

TEST(Reconcile, SingleHolderKeepsDowngradedCopy) {
  CoherenceController C(testConfig(ProtocolKind::Warden));
  C.addRegion(0, BlockA, BlockA + 4096);
  C.access(0, BlockA, 8, AccessType::Store);
  C.removeRegion(0, 0);
  EXPECT_EQ(C.stats().SingleHolderReconciles, 1u);
  EXPECT_EQ(C.stats().ReconcileWritebacks, 1u);
  ASSERT_NE(C.privateLine(0, BlockA), nullptr);
  EXPECT_EQ(C.privateLine(0, BlockA)->State, LineState::Shared);
  EXPECT_EQ(C.directoryEntry(BlockA)->State, DirState::Shared);
  // A later reader anywhere hits the LLC, not the old owner's cache.
  Cycles Lat = C.access(1, BlockA, 8, AccessType::Load);
  EXPECT_EQ(C.stats().Downgrades, 0u);
  EXPECT_EQ(Lat, C.config().L3Latency);
}

TEST(Reconcile, FalseSharingMergesDistinctSectors) {
  CoherenceController C(testConfig(ProtocolKind::Warden));
  C.addRegion(0, BlockA, BlockA + 4096);
  C.access(0, BlockA + 0, 8, AccessType::Store);
  C.access(1, BlockA + 32, 8, AccessType::Store);
  C.removeRegion(0, 0);
  EXPECT_EQ(C.stats().FalseSharingReconciles, 1u);
  EXPECT_EQ(C.stats().TrueSharingReconciles, 0u);
  EXPECT_EQ(C.stats().ReconcileWritebacks, 2u);
  EXPECT_EQ(C.privateLine(0, BlockA), nullptr);
  EXPECT_EQ(C.privateLine(1, BlockA), nullptr);
  EXPECT_EQ(C.directoryEntry(BlockA)->State, DirState::Invalid);
}

TEST(Reconcile, TrueSharingWawDetected) {
  CoherenceController C(testConfig(ProtocolKind::Warden));
  C.addRegion(0, BlockA, BlockA + 4096);
  C.access(0, BlockA, 8, AccessType::Store);
  C.access(1, BlockA, 8, AccessType::Store); // Same bytes: benign WAW.
  C.removeRegion(0, 0);
  EXPECT_EQ(C.stats().TrueSharingReconciles, 1u);
  EXPECT_EQ(C.stats().FalseSharingReconciles, 0u);
}

TEST(Reconcile, ReadOnlyRegionBlocksReconcileWithoutWritebacks) {
  CoherenceController C(testConfig(ProtocolKind::Warden));
  C.access(0, BlockA, 8, AccessType::Store); // Pre-region dirty data.
  C.access(1, BlockA, 8, AccessType::Load);  // Downgrade + writeback.
  C.addRegion(0, BlockA, BlockA + 4096);
  C.access(2, BlockA, 8, AccessType::Load);
  C.access(3, BlockA, 8, AccessType::Load);
  std::uint64_t WritebacksBefore = C.stats().ReconcileWritebacks;
  C.removeRegion(0, 0);
  EXPECT_EQ(C.stats().ReconcileWritebacks, WritebacksBefore);
  EXPECT_EQ(C.directoryEntry(BlockA)->State, DirState::Invalid);
}

TEST(Reconcile, WardEvictionReconcilesEagerly) {
  MachineConfig Config = testConfig(ProtocolKind::Warden);
  Config.L1SizeKB = 1;
  Config.L2SizeKB = 2;
  Config.L1Assoc = 2;
  Config.L2Assoc = 2;
  CoherenceController C(Config);
  C.addRegion(0, 0x100000, 0x100000 + 64 * 1024);
  for (Addr Offset = 0; Offset < 64 * 256; Offset += 64)
    C.access(0, 0x100000 + Offset, 8, AccessType::Store);
  // Evicted Ward lines wrote their dirty sectors back and left the sharer
  // set, so removing the region later reconciles only the survivors.
  EXPECT_GT(C.stats().ReconcileWritebacks, 0u);
  Cycles Cost = C.removeRegion(0, 0);
  (void)Cost;
  for (Addr Offset = 0; Offset < 64 * 256; Offset += 64) {
    const DirEntry *Entry = C.directoryEntry(0x100000 + Offset);
    ASSERT_NE(Entry, nullptr);
    EXPECT_NE(Entry->State, DirState::Ward) << Offset;
  }
}

TEST(Reconcile, RegionTableOverflowFallsBackToMesi) {
  MachineConfig Config = testConfig(ProtocolKind::Warden);
  Config.Features.RegionTableCapacity = 1;
  CoherenceController C(Config);
  EXPECT_GT(C.addRegion(0, BlockA, BlockA + 4096), 0u);
  // Second region overflows the CAM: its blocks stay MESI (safe).
  C.addRegion(1, BlockA + 0x100000, BlockA + 0x101000);
  EXPECT_EQ(C.stats().RegionOverflows, 1u);
  C.access(0, BlockA + 0x100000, 8, AccessType::Store);
  C.access(1, BlockA + 0x100000, 8, AccessType::Store);
  EXPECT_EQ(C.stats().Invalidations, 1u);
  // Removing the untracked region is a harmless no-op.
  EXPECT_EQ(C.removeRegion(1, 0), 0u);
}

TEST(Reconcile, NoSharersReconcilesToInvalid) {
  CoherenceController C(testConfig(ProtocolKind::Warden));
  C.addRegion(0, BlockA, BlockA + 4096);
  C.removeRegion(0, 0); // Nothing was ever touched.
  EXPECT_EQ(C.stats().ReconciledBlocks, 0u);
}

// --- Feature toggles ------------------------------------------------------------

TEST(Features, NoGetSExclusiveRequiresUpgrade) {
  MachineConfig Config = testConfig(ProtocolKind::Warden);
  Config.Features.GetSReturnsExclusive = false;
  CoherenceController C(Config);
  C.addRegion(0, BlockA, BlockA + 4096);
  C.access(0, BlockA, 8, AccessType::Load);
  EXPECT_EQ(C.privateLine(0, BlockA)->State, LineState::Shared);
  // The write now needs a (cheap, invalidation-free) upgrade request.
  Cycles Lat = C.access(0, BlockA, 8, AccessType::Store);
  EXPECT_GT(Lat, C.config().L1Latency);
  EXPECT_EQ(C.privateLine(0, BlockA)->State, LineState::Ward);
  EXPECT_EQ(C.stats().Invalidations, 0u);
}

TEST(Features, NoProactiveFlushKeepsPrivateCopy) {
  MachineConfig Config = testConfig(ProtocolKind::Warden);
  Config.Features.ProactiveForkFlush = false;
  CoherenceController C(Config);
  C.addRegion(0, BlockA, BlockA + 4096);
  C.access(0, BlockA, 8, AccessType::Store);
  C.removeRegion(0, 0);
  // Section 5.2's "no sharing -> Exclusive/Modified" conversion.
  EXPECT_EQ(C.privateLine(0, BlockA)->State, LineState::Modified);
  EXPECT_EQ(C.directoryEntry(BlockA)->State, DirState::Modified);
  // The next remote reader pays a downgrade, like MESI.
  C.access(1, BlockA, 8, AccessType::Load);
  EXPECT_EQ(C.stats().Downgrades, 1u);
}

// --- Latency/energy accounting ----------------------------------------------------

TEST(Accounting, CrossSocketTrafficClassified) {
  CoherenceController C(testConfig(ProtocolKind::Mesi, /*Sockets=*/2));
  // Core 0 (socket 0) first-touches: home is socket 0.
  C.access(0, BlockA, 8, AccessType::Store);
  std::uint64_t InterBefore = C.stats().MsgsInterSocket;
  C.access(12, BlockA, 8, AccessType::Load); // Socket 1 requester.
  EXPECT_GT(C.stats().MsgsInterSocket, InterBefore);
  EXPECT_GT(C.stats().DataInterSocket, 0u);
}

TEST(Accounting, DrainWritesBackAllDirtyData) {
  CoherenceController C(testConfig(ProtocolKind::Mesi));
  for (Addr Offset = 0; Offset < 64 * 8; Offset += 64)
    C.access(0, BlockA + Offset, 8, AccessType::Store);
  std::uint64_t WritebacksBefore = C.stats().Writebacks;
  C.drainDirtyData();
  EXPECT_EQ(C.stats().Writebacks, WritebacksBefore + 8);
  // A second drain is a no-op.
  C.drainDirtyData();
  EXPECT_EQ(C.stats().Writebacks, WritebacksBefore + 8);
}

TEST(Accounting, WardCoverageCountsRegionAccesses) {
  CoherenceController C(testConfig(ProtocolKind::Warden));
  C.addRegion(0, BlockA, BlockA + 4096);
  C.access(0, BlockA, 8, AccessType::Load);
  C.access(0, BlockA + 0x100000, 8, AccessType::Load);
  EXPECT_EQ(C.stats().WardRegionAccesses, 1u);
  EXPECT_EQ(C.stats().accesses(), 2u);
}
