//===- tests/EpochTest.cpp - epoch-barriered engine unit tests ------------===//
//
// Part of the WARDen reproduction project.
//
//===----------------------------------------------------------------------===//
//
// Epoch-window correctness (DESIGN.md "Execution engine"):
//
//  * staging stops at every cross-core interaction point — region
//    instructions, deque-line (steal-probe) accesses, malformed or
//    block-crossing accesses — so such an op landing mid-epoch forces a
//    barrier and executes in the serial residue;
//  * the staged-footprint intersection flags exactly the blocks two cores
//    both staged, and generation stamping isolates epochs from each other;
//  * each built-in backend's EpochInteractions declaration matches its
//    actual hook behaviour (Protocol.h promises this file asserts it);
//  * end to end, replays are byte-identical at any --intra-jobs count on
//    graphs that force steals, joins, conflicts, and region traffic
//    mid-epoch.
//
//===----------------------------------------------------------------------===//

#include "src/coherence/CoherenceController.h"
#include "src/sched/Epoch.h"
#include "src/sched/Replay.h"
#include "src/verify/ProtocolAuditor.h"

#include <gtest/gtest.h>

#include <cstring>

using namespace warden;

namespace {

/// Limits mirroring the replayer's setup: 64-byte blocks, the scheduler
/// deque lines at their usual simulated addresses.
EpochLimits testLimits() {
  EpochLimits Limits;
  Limits.BlockSize = 64;
  Limits.DequeLo = 0x8000;
  Limits.DequeHi = 0x8000 + 12 * 64;
  return Limits;
}

Strand strandOf(std::initializer_list<TraceEvent> Events) {
  Strand S;
  S.Events = Events;
  return S;
}

EpochBatch stage(const Strand &S, Cycles Now = 100,
                 Cycles Bound = static_cast<Cycles>(-1)) {
  EpochBatch Batch;
  stageEpochPrefix(S, 0, Now, Bound, testLimits(), Batch);
  return Batch;
}

} // namespace

TEST(EpochStage, StagesPlainPrefix) {
  Strand S = strandOf({TraceEvent::work(10), TraceEvent::load(0x1000, 8),
                       TraceEvent::store(0x1040, 8)});
  EpochBatch Batch = stage(S);
  EXPECT_EQ(Batch.Count, 3u);
  EXPECT_EQ(Batch.Ev, S.Events.data());
  // Work advances exactly 10 cycles, each access at least one.
  EXPECT_EQ(Batch.MinExit, 100u + 10 + 1 + 1);
}

TEST(EpochStage, RegionMarkForcesBarrier) {
  // An "add region" instruction mutates the shared region table: it must
  // end the staged prefix so the serial residue arbitrates it.
  Strand S = strandOf({TraceEvent::load(0x1000, 8),
                       TraceEvent::mark(1, 0x2000, 0x3000),
                       TraceEvent::load(0x1000, 8)});
  EXPECT_EQ(stage(S).Count, 1u);
}

TEST(EpochStage, RegionUnmarkForcesBarrier) {
  // "Remove region" reconciles across every core's cache: same rule.
  Strand S = strandOf({TraceEvent::work(4), TraceEvent::unmark(1),
                       TraceEvent::work(4)});
  EXPECT_EQ(stage(S).Count, 1u);
}

TEST(EpochStage, DequeAccessForcesBarrier) {
  // Deque lines carry steal/fork synchronization; an access to one is
  // cross-core by definition and never harvested.
  EpochLimits Limits = testLimits();
  Strand S = strandOf({TraceEvent::load(0x1000, 8),
                       TraceEvent::load(Limits.DequeLo + 64, 8),
                       TraceEvent::load(0x1000, 8)});
  EXPECT_EQ(stage(S).Count, 1u);
}

TEST(EpochStage, BlockCrossingAccessForcesBarrier) {
  // A straddling access touches two blocks; the worker's single-block
  // conflict check cannot cover it, so it goes to the residue.
  Strand S = strandOf({TraceEvent::load(0x1000, 8),
                       TraceEvent::load(0x103c, 8)});
  EXPECT_EQ(stage(S).Count, 1u);
}

TEST(EpochStage, ZeroSizeAccessForcesBarrier) {
  // Malformed accesses take the controller's rejection path (a stats
  // mutation outside the local-hit counters): residue only.
  Strand S = strandOf({TraceEvent::load(0x1000, 0)});
  EXPECT_EQ(stage(S).Count, 0u);
}

TEST(EpochStage, RespectsMaxEvents) {
  Strand S;
  for (int I = 0; I < 100; ++I)
    S.Events.push_back(TraceEvent::load(0x1000, 8));
  EpochLimits Limits = testLimits();
  Limits.MaxEvents = 17;
  EpochBatch Batch;
  stageEpochPrefix(S, 0, 100, static_cast<Cycles>(-1), Limits, Batch);
  EXPECT_EQ(Batch.Count, 17u);
}

TEST(EpochStage, StopsAtBound) {
  // Events whose earliest start is at or past the bound cannot run this
  // epoch; staging them would be pure waste.
  Strand S = strandOf({TraceEvent::work(10), TraceEvent::work(10),
                       TraceEvent::work(10)});
  EpochBatch Batch = stage(S, /*Now=*/100, /*Bound=*/115);
  EXPECT_EQ(Batch.Count, 2u);
  EXPECT_EQ(Batch.MinExit, 120u);
}

TEST(EpochStage, StagesFromMidStrand) {
  Strand S = strandOf({TraceEvent::mark(1, 0x2000, 0x3000),
                       TraceEvent::load(0x1000, 8),
                       TraceEvent::load(0x1040, 8)});
  EpochBatch Batch;
  stageEpochPrefix(S, 1, 50, static_cast<Cycles>(-1), testLimits(), Batch);
  EXPECT_EQ(Batch.Ev, S.Events.data() + 1);
  EXPECT_EQ(Batch.Count, 2u);
  EXPECT_EQ(Batch.MinExit, 52u);
}

namespace {

/// A single-strand batch over the given accesses, for footprint tests.
struct FootprintFixture {
  Strand S;
  EpochBatch Batch;

  explicit FootprintFixture(std::initializer_list<Addr> Addresses) {
    for (Addr A : Addresses)
      S.Events.push_back(TraceEvent::load(A, 8));
    stageEpochPrefix(S, 0, 0, static_cast<Cycles>(-1), testLimits(), Batch);
    EXPECT_EQ(Batch.Count, S.Events.size());
  }
};

constexpr Addr BlockMask = ~Addr(63);

} // namespace

TEST(EpochConflicts, DisjointFootprintsHaveNoContention) {
  FootprintFixture A({0x1000, 0x1040});
  FootprintFixture B({0x2000, 0x2040});
  EpochConflicts Conflicts;
  Conflicts.beginEpoch();
  Conflicts.addFootprint(A.Batch, BlockMask);
  Conflicts.addFootprint(B.Batch, BlockMask);
  EXPECT_FALSE(Conflicts.hasContention());
  EXPECT_FALSE(Conflicts.contended(0x1000));
  EXPECT_FALSE(Conflicts.contended(0x2000));
}

TEST(EpochConflicts, SharedBlockIsContended) {
  FootprintFixture A({0x1000, 0x3000});
  FootprintFixture B({0x2000, 0x3020}); // 0x3020 shares 0x3000's block.
  EpochConflicts Conflicts;
  Conflicts.beginEpoch();
  Conflicts.addFootprint(A.Batch, BlockMask);
  Conflicts.addFootprint(B.Batch, BlockMask);
  EXPECT_TRUE(Conflicts.hasContention());
  EXPECT_TRUE(Conflicts.contended(0x3000));
  EXPECT_FALSE(Conflicts.contended(0x1000));
  EXPECT_FALSE(Conflicts.contended(0x2000));
}

TEST(EpochConflicts, OneCoreRevisitingItsOwnBlockIsNotContention) {
  FootprintFixture A({0x1000, 0x1040, 0x1000, 0x1008});
  EpochConflicts Conflicts;
  Conflicts.beginEpoch();
  Conflicts.addFootprint(A.Batch, BlockMask);
  EXPECT_FALSE(Conflicts.hasContention());
  EXPECT_FALSE(Conflicts.contended(0x1000));
}

TEST(EpochConflicts, GenerationStampIsolatesEpochs) {
  FootprintFixture A({0x3000});
  FootprintFixture B({0x3020});
  EpochConflicts Conflicts;
  Conflicts.beginEpoch();
  Conflicts.addFootprint(A.Batch, BlockMask);
  Conflicts.addFootprint(B.Batch, BlockMask);
  ASSERT_TRUE(Conflicts.contended(0x3000));
  // Next epoch: only one core stages the block. The stale Multi entry
  // must read as absent, not as carried-over contention.
  Conflicts.beginEpoch();
  EXPECT_FALSE(Conflicts.hasContention());
  EXPECT_FALSE(Conflicts.contended(0x3000));
  Conflicts.addFootprint(A.Batch, BlockMask);
  EXPECT_FALSE(Conflicts.hasContention());
  EXPECT_FALSE(Conflicts.contended(0x3000));
}

namespace {

EpochInteractions declarationOf(ProtocolKind Kind) {
  MachineConfig Config = Kind == ProtocolKind::Racoh
                             ? MachineConfig::multiNode(2)
                             : MachineConfig::singleSocket();
  Config.Protocol = Kind;
  CoherenceController Controller(Config);
  return makeProtocol(Kind, Controller)->epochInteractions();
}

/// Root forks one leaf per core; every leaf dirties a private arena with
/// stores (so release hooks have real self-downgrade work under lazy
/// protocols) and the deep fan-in forces steals and joins mid-run.
TaskGraph makeStoreHeavyGraph(unsigned Leaves, unsigned SharedEvery) {
  TaskGraph Graph;
  StrandId Root = Graph.addStrand();
  StrandId Cont = Graph.addStrand();
  Graph.setRoot(Root);
  Graph.strand(Root).Events.push_back(TraceEvent::work(10));
  Graph.strand(Cont).PendingJoin = Leaves;
  Graph.strand(Cont).JoinCounterAddr = 0x7000;
  for (unsigned L = 0; L < Leaves; ++L) {
    StrandId Leaf = Graph.addStrand();
    Graph.strand(Root).Children.push_back(Leaf);
    Strand &S = Graph.strand(Leaf);
    S.JoinTarget = Cont;
    const Addr PrivateBase = 0x200000 + Addr(L) * 0x10000;
    for (unsigned I = 0; I < 256; ++I) {
      bool Shared = SharedEvery != 0 && I % SharedEvery == SharedEvery - 1;
      Addr Arena = Shared ? Addr(0x100000) : PrivateBase;
      S.Events.push_back(TraceEvent::work(2));
      if (I % 2 == 0)
        S.Events.push_back(TraceEvent::store(Arena + Addr(I % 64) * 64, 8));
      else
        S.Events.push_back(TraceEvent::load(Arena + Addr(I % 64) * 64, 8));
    }
  }
  return Graph;
}

/// One full replay; returns (result, final coherence stats).
std::pair<ReplayResult, CoherenceStats>
replayOnce(const TaskGraph &Graph, const MachineConfig &Config,
           unsigned IntraJobs) {
  CoherenceController Controller(Config);
  Replayer Replay(Graph, Controller, /*Seed=*/42);
  Replay.setIntraJobs(IntraJobs);
  ReplayResult Result = Replay.run();
  return {Result, Controller.stats()};
}

} // namespace

TEST(EpochInteractions, EagerBackendsDeclareLocalHitsAndFreeSync) {
  for (ProtocolKind Kind : {ProtocolKind::Mesi, ProtocolKind::Warden}) {
    EpochInteractions Decl = declarationOf(Kind);
    EXPECT_TRUE(Decl.PrivateHitsAreLocal) << protocolName(Kind);
    EXPECT_TRUE(Decl.SyncHooksAreFree) << protocolName(Kind);
  }
}

TEST(EpochInteractions, LazyBackendsDeclareSyncWork) {
  for (ProtocolKind Kind : {ProtocolKind::Sisd, ProtocolKind::Racoh}) {
    EpochInteractions Decl = declarationOf(Kind);
    EXPECT_TRUE(Decl.PrivateHitsAreLocal) << protocolName(Kind);
    EXPECT_FALSE(Decl.SyncHooksAreFree) << protocolName(Kind);
  }
}

TEST(EpochInteractions, SyncDeclarationMatchesHookBehaviour) {
  // A store-heavy replay: backends declaring SyncHooksAreFree must charge
  // zero sync cycles at every task boundary; the lazy backends must do
  // real (nonzero) self-invalidation/downgrade work there.
  for (ProtocolKind Kind :
       {ProtocolKind::Mesi, ProtocolKind::Warden, ProtocolKind::Sisd,
        ProtocolKind::Racoh}) {
    MachineConfig Config = Kind == ProtocolKind::Racoh
                               ? MachineConfig::multiNode(2)
                               : MachineConfig::singleSocket();
    Config.Protocol = Kind;
    TaskGraph Graph = makeStoreHeavyGraph(Config.totalCores(), 0);
    auto [Result, Stats] = replayOnce(Graph, Config, 1);
    if (declarationOf(Kind).SyncHooksAreFree)
      EXPECT_EQ(Result.Sched.SyncCycles, 0u) << protocolName(Kind);
    else
      EXPECT_GT(Result.Sched.SyncCycles, 0u) << protocolName(Kind);
  }
}

TEST(EpochInteractions, ObserversDisableLocalHarvest) {
  MachineConfig Config = MachineConfig::singleSocket();
  CoherenceController Plain(Config);
  EXPECT_TRUE(Plain.epochLocalHitsAllowed());

  CoherenceController Audited(Config);
  ProtocolAuditor Auditor(Audited);
  Audited.attachAuditor(&Auditor);
  // Per-access observers need the serial interleaving; harvesting must
  // switch itself off rather than reorder what the auditor sees.
  EXPECT_FALSE(Audited.epochLocalHitsAllowed());
}

namespace {

/// Asserts replays of \p Graph are identical at --intra-jobs 1, 2, and 4:
/// the whole ReplayResult and every coherence counter, compared as bytes.
void expectIntraJobsInvariant(const TaskGraph &Graph,
                              const MachineConfig &Config) {
  auto [R1, S1] = replayOnce(Graph, Config, 1);
  for (unsigned Jobs : {2u, 4u}) {
    auto [RN, SN] = replayOnce(Graph, Config, Jobs);
    EXPECT_EQ(R1.Makespan, RN.Makespan) << "intra-jobs " << Jobs;
    EXPECT_EQ(0, std::memcmp(&R1.Sched, &RN.Sched, sizeof(R1.Sched)))
        << "scheduler stats diverge at intra-jobs " << Jobs;
    EXPECT_EQ(0, std::memcmp(&S1, &SN, sizeof(S1)))
        << "coherence stats diverge at intra-jobs " << Jobs;
  }
}

} // namespace

TEST(EpochEngine, StealsAndJoinsMidEpochStayDeterministic) {
  // Twice as many leaves as cores: every core steals, completes strands,
  // and decrements join counters while epochs are being harvested.
  MachineConfig Config = MachineConfig::singleSocket();
  expectIntraJobsInvariant(
      makeStoreHeavyGraph(2 * Config.totalCores(), /*SharedEvery=*/0),
      Config);
}

TEST(EpochEngine, ContendedBlocksMidEpochStayDeterministic) {
  // Every fourth access lands in one shared arena: epochs repeatedly find
  // contended blocks and must punt them to the serial residue.
  MachineConfig Config = MachineConfig::singleSocket();
  expectIntraJobsInvariant(
      makeStoreHeavyGraph(2 * Config.totalCores(), /*SharedEvery=*/4),
      Config);
}

TEST(EpochEngine, RegionOpsMidEpochStayDeterministic) {
  // Leaves wrap their private stores in WARD regions: mark/unmark land
  // mid-run on every core and must each force an epoch barrier.
  MachineConfig Config = MachineConfig::singleSocket();
  Config.Protocol = ProtocolKind::Warden;
  TaskGraph Graph = makeStoreHeavyGraph(Config.totalCores(), 8);
  for (unsigned L = 0; L < Config.totalCores(); ++L) {
    Strand &S = Graph.strand(StrandId(2 + L));
    const Addr PrivateBase = 0x200000 + Addr(L) * 0x10000;
    S.Events.insert(S.Events.begin(),
                    TraceEvent::mark(RegionId(L + 1), PrivateBase,
                                     PrivateBase + 64 * 64));
    S.Events.push_back(TraceEvent::unmark(RegionId(L + 1)));
  }
  expectIntraJobsInvariant(Graph, Config);
}

TEST(EpochEngine, LitmusShapesStayDeterministic) {
  // The classic two-thread litmus shapes (message passing: data store
  // then flag store vs flag load then data load; store buffering:
  // cross-stores then cross-loads) as fork-join graphs — the densest
  // possible cross-core conflicts, every block contended. Each backend
  // must replay them identically at any worker count; the semantic
  // verdicts themselves are the litmus harness's job (tests/verify).
  constexpr Addr Data = 0x100000, Flag = 0x100040;
  auto litmus = [](std::initializer_list<TraceEvent> T0,
                   std::initializer_list<TraceEvent> T1) {
    TaskGraph Graph;
    StrandId Root = Graph.addStrand();
    StrandId Cont = Graph.addStrand();
    Graph.setRoot(Root);
    Graph.strand(Root).Events.push_back(TraceEvent::work(1));
    Graph.strand(Cont).PendingJoin = 2;
    Graph.strand(Cont).JoinCounterAddr = 0x7000;
    for (auto &Events : {T0, T1}) {
      StrandId Leaf = Graph.addStrand();
      Graph.strand(Root).Children.push_back(Leaf);
      Graph.strand(Leaf).Events = Events;
      Graph.strand(Leaf).JoinTarget = Cont;
    }
    return Graph;
  };
  TaskGraph Mp = litmus({TraceEvent::store(Data, 8), TraceEvent::work(3),
                         TraceEvent::store(Flag, 8)},
                        {TraceEvent::load(Flag, 8), TraceEvent::work(3),
                         TraceEvent::load(Data, 8)});
  TaskGraph Sb = litmus({TraceEvent::store(Data, 8),
                         TraceEvent::load(Flag, 8)},
                        {TraceEvent::store(Flag, 8),
                         TraceEvent::load(Data, 8)});
  for (ProtocolKind Kind :
       {ProtocolKind::Mesi, ProtocolKind::Warden, ProtocolKind::Sisd,
        ProtocolKind::Racoh}) {
    MachineConfig Config = Kind == ProtocolKind::Racoh
                               ? MachineConfig::multiNode(2)
                               : MachineConfig::singleSocket();
    Config.Protocol = Kind;
    expectIntraJobsInvariant(Mp, Config);
    expectIntraJobsInvariant(Sb, Config);
  }
}

TEST(EpochEngine, LazyBackendsStayDeterministic) {
  // SISD (single socket) and racoh (two nodes): sync hooks do real work
  // at every task boundary, all of it in the serial residue.
  MachineConfig Sisd = MachineConfig::singleSocket();
  Sisd.Protocol = ProtocolKind::Sisd;
  expectIntraJobsInvariant(makeStoreHeavyGraph(Sisd.totalCores(), 8), Sisd);

  MachineConfig Racoh = MachineConfig::multiNode(2);
  Racoh.Protocol = ProtocolKind::Racoh;
  expectIntraJobsInvariant(makeStoreHeavyGraph(Racoh.totalCores(), 8),
                           Racoh);
}
