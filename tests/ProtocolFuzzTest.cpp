//===- tests/ProtocolFuzzTest.cpp - randomized protocol invariants ------------===//
//
// Part of the WARDen reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Property-based protocol checking: drives long random access sequences
/// (loads/stores/atomics from random cores, region add/remove at random
/// times) against the controller and verifies after every step that the
/// directory's view and the private caches' views agree — the single-
/// writer/multiple-reader invariant for MESI states and the membership
/// invariant for the W state. This is the moral equivalent of a model
/// checker's state-reachability sweep for the Figure 5 FSA, run over tens
/// of thousands of transitions.
///
//===----------------------------------------------------------------------===//

#include "src/coherence/CoherenceController.h"
#include "src/support/Rng.h"

#include <gtest/gtest.h>

using namespace warden;

namespace {

struct FuzzCase {
  const char *Name;
  ProtocolKind Protocol;
  unsigned Sockets;
  std::uint64_t Seed;
};

constexpr unsigned NumBlocks = 6;
constexpr Addr BlockBase = 0x40000;

Addr blockAddr(unsigned Index) { return BlockBase + Addr(Index) * 64; }

/// Checks the directory/private-cache agreement for every tracked block.
void checkInvariants(const CoherenceController &C, unsigned Cores,
                     std::uint64_t Step) {
  for (unsigned B = 0; B < NumBlocks; ++B) {
    Addr Block = blockAddr(B);
    const DirEntry *Entry = C.directoryEntry(Block);
    if (!Entry)
      continue;

    unsigned Holders = 0;
    unsigned DirtyHolders = 0;
    for (CoreId Core = 0; Core < Cores; ++Core) {
      const CacheLine *Line = C.privateLine(Core, Block);
      if (!Line)
        continue;
      ++Holders;
      if (Line->State == LineState::Modified)
        ++DirtyHolders;

      switch (Entry->State) {
      case DirState::Invalid:
        FAIL() << "step " << Step << ": core holds a line the directory "
               << "thinks is Invalid";
        break;
      case DirState::Shared:
        EXPECT_EQ(Line->State, LineState::Shared)
            << "step " << Step << " core " << Core;
        EXPECT_TRUE(Entry->Sharers.test(Core))
            << "step " << Step << " core " << Core << " not in sharer set";
        break;
      case DirState::Exclusive:
        EXPECT_EQ(Entry->Owner, Core) << "step " << Step;
        // Silent E->M upgrades are legal.
        EXPECT_TRUE(Line->State == LineState::Exclusive ||
                    Line->State == LineState::Modified)
            << "step " << Step;
        break;
      case DirState::Modified:
        EXPECT_EQ(Entry->Owner, Core) << "step " << Step;
        EXPECT_EQ(Line->State, LineState::Modified) << "step " << Step;
        break;
      case DirState::Ward:
        EXPECT_TRUE(Line->State == LineState::Ward ||
                    Line->State == LineState::Shared)
            << "step " << Step;
        EXPECT_TRUE(Entry->Sharers.test(Core))
            << "step " << Step << " W member missing from tracking";
        break;
      }
    }

    // Single-writer invariant: never two dirty private copies outside W.
    if (Entry->State != DirState::Ward)
      EXPECT_LE(DirtyHolders, 1u) << "step " << Step;
    // E/M imply exactly one holder.
    if (Entry->State == DirState::Exclusive ||
        Entry->State == DirState::Modified)
      EXPECT_EQ(Holders, 1u) << "step " << Step;
    // Precise tracking: the directory never under-counts holders.
    if (Entry->State == DirState::Shared || Entry->State == DirState::Ward)
      EXPECT_EQ(Holders, Entry->Sharers.count()) << "step " << Step;
  }
}

} // namespace

class ProtocolFuzz : public ::testing::TestWithParam<FuzzCase> {};

TEST_P(ProtocolFuzz, InvariantsHoldUnderRandomTraffic) {
  const FuzzCase &Case = GetParam();
  MachineConfig Config = Case.Sockets == 1 ? MachineConfig::singleSocket()
                                           : MachineConfig::dualSocket();
  Config.Protocol = Case.Protocol;
  // Tiny region table so overflow paths get exercised too.
  Config.Features.RegionTableCapacity = 3;
  CoherenceController C(Config);
  Rng Random(Case.Seed);

  const unsigned Cores = Config.totalCores();
  bool RegionActive[NumBlocks] = {};
  RegionId NextRegion = 0;
  RegionId ActiveId[NumBlocks] = {};

  for (std::uint64_t Step = 0; Step < 20000; ++Step) {
    unsigned B = static_cast<unsigned>(Random.nextBelow(NumBlocks));
    CoreId Core = static_cast<CoreId>(Random.nextBelow(Cores));
    std::uint64_t Action = Random.nextBelow(100);

    if (Action < 40) {
      unsigned Offset = static_cast<unsigned>(Random.nextBelow(56));
      C.access(Core, blockAddr(B) + Offset, 8, AccessType::Load);
    } else if (Action < 80) {
      unsigned Offset = static_cast<unsigned>(Random.nextBelow(56));
      C.access(Core, blockAddr(B) + Offset, 8, AccessType::Store);
    } else if (Action < 88) {
      C.access(Core, blockAddr(B), 8, AccessType::Rmw);
    } else if (Action < 94) {
      if (!RegionActive[B]) {
        ActiveId[B] = NextRegion++;
        C.addRegion(ActiveId[B], blockAddr(B), blockAddr(B) + 64);
        RegionActive[B] = true;
      }
    } else {
      if (RegionActive[B]) {
        C.removeRegion(ActiveId[B], Core);
        RegionActive[B] = false;
      }
    }

    if (Step % 16 == 0)
      checkInvariants(C, Cores, Step);
    if (::testing::Test::HasFailure())
      break;
  }

  // Close remaining regions; invariants must hold in the quiesced state.
  for (unsigned B = 0; B < NumBlocks; ++B)
    if (RegionActive[B])
      C.removeRegion(ActiveId[B], 0);
  checkInvariants(C, Cores, ~0ULL);

  // Drain and re-check: nothing dirty may survive.
  C.drainDirtyData();
  for (unsigned B = 0; B < NumBlocks; ++B) {
    for (CoreId Core = 0; Core < Cores; ++Core) {
      const CacheLine *Line = C.privateLine(Core, blockAddr(B));
      if (Line)
        EXPECT_FALSE(Line->dirty()) << "dirty line survived the drain";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Cases, ProtocolFuzz,
    ::testing::Values(FuzzCase{"mesi_single", ProtocolKind::Mesi, 1, 0xf1},
                      FuzzCase{"mesi_dual", ProtocolKind::Mesi, 2, 0xf2},
                      FuzzCase{"warden_single", ProtocolKind::Warden, 1, 0xf3},
                      FuzzCase{"warden_dual", ProtocolKind::Warden, 2, 0xf4},
                      FuzzCase{"warden_dual_b", ProtocolKind::Warden, 2,
                               0xabcdef},
                      FuzzCase{"mesi_dual_b", ProtocolKind::Mesi, 2,
                               0x123456}),
    [](const ::testing::TestParamInfo<FuzzCase> &Info) {
      return Info.param.Name;
    });
