//===- tests/ProtocolFuzzTest.cpp - randomized protocol invariants ------------===//
//
// Part of the WARDen reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Seeded stress fuzzing of the coherence engine with the ProtocolAuditor
/// attached: long random operation sequences (loads/stores/atomics from
/// random cores across a 24-core dual-socket machine, region add/remove —
/// and, for the SISD cases, synchronization acquire/release — at random
/// times, occasional malformed requests) are generated up front as an
/// explicit operation list, then replayed against a fresh controller.
/// The auditor validates SWMR, directory-cache agreement, shadow data
/// values, WARD soundness, and the SISD discipline after every operation.
///
/// Because the operation list is explicit and generation is decoupled from
/// execution, a violating run shrinks automatically: binary search finds
/// the smallest violating prefix, and the failure message prints the seed
/// and prefix length needed to replay it exactly. A deliberate protocol
/// mutation (FaultPlan::Mutation) proves end-to-end that detection and
/// shrinking actually work.
///
//===----------------------------------------------------------------------===//

#include "src/coherence/CoherenceController.h"
#include "src/support/Rng.h"
#include "src/verify/ProtocolAuditor.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <vector>

using namespace warden;

namespace {

constexpr unsigned NumBlocks = 8;
constexpr Addr BlockBase = 0x40000;

Addr blockAddr(unsigned Index) { return BlockBase + Addr(Index) * 64; }

/// One pre-generated operation. Keeping the trace explicit (rather than
/// interleaving generation with execution) is what makes prefix replay —
/// and therefore shrinking — exact.
struct FuzzOp {
  enum class Kind : std::uint8_t {
    Access,
    AddRegion,
    RemoveRegion,
    Acquire,
    Release
  };
  Kind K = Kind::Access;
  AccessType Type = AccessType::Load;
  CoreId Core = 0;
  Addr Address = 0;
  unsigned Size = 8;
  RegionId Region = InvalidRegion;
  Addr Start = 0;
  Addr End = 0;
};

/// Generates \p Count operations over NumBlocks contended blocks. Region
/// adds/removes are balanced in program order, so every prefix of the list
/// is itself a well-formed program. \p WithSync additionally mixes in
/// synchronization acquire/release operations (the SISD backend's whole
/// surface); false keeps the action stream bit-identical to the original
/// generator so the pinned seeds of the eager-protocol cases still replay
/// the exact same traces.
std::vector<FuzzOp> generateOps(std::uint64_t Seed, unsigned Cores,
                                std::size_t Count, bool WithSync = false) {
  Rng Random(Seed);
  std::vector<FuzzOp> Ops;
  Ops.reserve(Count);
  bool RegionActive[NumBlocks] = {};
  RegionId ActiveId[NumBlocks] = {};
  RegionId NextRegion = 0;

  for (std::size_t I = 0; I < Count; ++I) {
    unsigned B = static_cast<unsigned>(Random.nextBelow(NumBlocks));
    FuzzOp Op;
    Op.Core = static_cast<CoreId>(Random.nextBelow(Cores));
    std::uint64_t Action = Random.nextBelow(WithSync ? 110 : 100);
    if (Action >= 100) {
      // Synchronization point: releases outnumber acquires a little so
      // written data usually gets published before it is re-read.
      Op.K = Action < 106 ? FuzzOp::Kind::Release : FuzzOp::Kind::Acquire;
      Ops.push_back(Op);
      continue;
    }
    if (Action < 38) {
      Op.Type = AccessType::Load;
      Op.Address = blockAddr(B) + Random.nextBelow(56);
      Op.Size = 1 + static_cast<unsigned>(Random.nextBelow(8));
    } else if (Action < 76) {
      Op.Type = AccessType::Store;
      Op.Address = blockAddr(B) + Random.nextBelow(56);
      Op.Size = 1 + static_cast<unsigned>(Random.nextBelow(8));
    } else if (Action < 82) {
      Op.Type = AccessType::Rmw;
      Op.Address = blockAddr(B);
      Op.Size = 8;
    } else if (Action < 84) {
      // Boundary-crossing access: split across two (or three) blocks.
      Op.Type = Action % 2 ? AccessType::Store : AccessType::Load;
      Op.Address = blockAddr(B) + 48;
      Op.Size = 32 + static_cast<unsigned>(Random.nextBelow(96));
    } else if (Action < 86) {
      // Malformed request: zero size or an out-of-range core. Must be
      // refused gracefully, never corrupt state.
      Op.Type = AccessType::Store;
      Op.Address = blockAddr(B);
      if (Action % 2) {
        Op.Size = 0;
      } else {
        Op.Core = Cores + static_cast<CoreId>(Random.nextBelow(8));
        Op.Size = 8;
      }
    } else if (Action < 93) {
      if (RegionActive[B]) {
        --I; // Re-roll; keep op count exact.
        continue;
      }
      Op.K = FuzzOp::Kind::AddRegion;
      Op.Region = ActiveId[B] = NextRegion++;
      Op.Start = blockAddr(B);
      Op.End = blockAddr(B) + 64;
      RegionActive[B] = true;
    } else {
      if (!RegionActive[B]) {
        --I;
        continue;
      }
      Op.K = FuzzOp::Kind::RemoveRegion;
      Op.Region = ActiveId[B];
      RegionActive[B] = false;
    }
    Ops.push_back(Op);
  }
  return Ops;
}

/// Replays the first \p Count operations against a fresh controller with a
/// fresh auditor attached and returns the audit verdict of the prefix
/// (including a final full sweep).
AuditReport replayPrefix(const MachineConfig &Config, const FaultPlan &Faults,
                         const std::vector<FuzzOp> &Ops, std::size_t Count) {
  CoherenceController Ctrl(Config, Faults);
  ProtocolAuditor Auditor(Ctrl);
  Ctrl.attachAuditor(&Auditor);
  for (std::size_t I = 0; I < Count; ++I) {
    const FuzzOp &Op = Ops[I];
    switch (Op.K) {
    case FuzzOp::Kind::Access:
      Ctrl.access(Op.Core, Op.Address, Op.Size, Op.Type);
      break;
    case FuzzOp::Kind::AddRegion:
      Ctrl.addRegion(Op.Region, Op.Start, Op.End);
      break;
    case FuzzOp::Kind::RemoveRegion:
      Ctrl.removeRegion(Op.Region, Op.Core);
      break;
    case FuzzOp::Kind::Acquire:
      Ctrl.syncAcquire(Op.Core);
      break;
    case FuzzOp::Kind::Release:
      Ctrl.syncRelease(Op.Core);
      break;
    }
  }
  Auditor.checkAll("end of prefix");
  return Auditor.report();
}

/// Binary-searches the smallest violating prefix of \p Ops (which must
/// violate as a whole). Violations are monotone in practice — corrupted
/// state stays corrupted — which is all the search needs.
std::size_t shrinkToMinimalPrefix(const MachineConfig &Config,
                                  const FaultPlan &Faults,
                                  const std::vector<FuzzOp> &Ops) {
  std::size_t Lo = 1;
  std::size_t Hi = Ops.size();
  while (Lo < Hi) {
    std::size_t Mid = Lo + (Hi - Lo) / 2;
    if (replayPrefix(Config, Faults, Ops, Mid).Violations > 0)
      Hi = Mid;
    else
      Lo = Mid + 1;
  }
  return Lo;
}

/// Shrinks a violating run and formats the replay recipe + first messages.
std::string describeFailure(const MachineConfig &Config,
                            const FaultPlan &Faults,
                            const std::vector<FuzzOp> &Ops,
                            std::uint64_t Seed) {
  std::size_t Minimal = shrinkToMinimalPrefix(Config, Faults, Ops);
  AuditReport Shrunk = replayPrefix(Config, Faults, Ops, Minimal);
  char Header[160];
  std::snprintf(Header, sizeof(Header),
                "replay: seed=0x%llx minimal_prefix=%zu of %zu ops "
                "(violations=%llu)",
                static_cast<unsigned long long>(Seed), Minimal, Ops.size(),
                static_cast<unsigned long long>(Shrunk.Violations));
  std::string Out = Header;
  for (const std::string &Message : Shrunk.Messages) {
    Out += "\n  ";
    Out += Message;
  }
  return Out;
}

struct FuzzCase {
  const char *Name;
  ProtocolKind Protocol;
  bool GetSReturnsExclusive = true;
  bool ProactiveForkFlush = true;
  unsigned RegionTableCapacity = 3; // Tiny: exercise overflow fallback.
  double EvictionRate = 0.0;
  double ReconcileRate = 0.0;
  std::uint64_t Seed = 0;
  /// Mix synchronization acquire/release into the trace (the SISD cases;
  /// false keeps the eager cases' pinned seeds replaying bit-identically).
  bool WithSync = false;
};

MachineConfig configFor(const FuzzCase &Case) {
  MachineConfig Config = MachineConfig::dualSocket(); // 24 cores.
  Config.Protocol = Case.Protocol;
  Config.Features.GetSReturnsExclusive = Case.GetSReturnsExclusive;
  Config.Features.ProactiveForkFlush = Case.ProactiveForkFlush;
  Config.Features.RegionTableCapacity = Case.RegionTableCapacity;
  return Config;
}

} // namespace

class ProtocolFuzz : public ::testing::TestWithParam<FuzzCase> {};

TEST_P(ProtocolFuzz, AuditorStaysCleanUnderRandomTraffic) {
  const FuzzCase &Case = GetParam();
  MachineConfig Config = configFor(Case);
  FaultPlan Faults;
  Faults.Seed = Case.Seed ^ 0xfa017;
  Faults.EvictionRate = Case.EvictionRate;
  Faults.ReconcileRate = Case.ReconcileRate;

  std::vector<FuzzOp> Ops =
      generateOps(Case.Seed, Config.totalCores(), 20000, Case.WithSync);
  AuditReport Report = replayPrefix(Config, Faults, Ops, Ops.size());

  EXPECT_GT(Report.LoadsVerified, 0u);
  EXPECT_GT(Report.BlocksChecked, 0u);
  if (!Report.clean())
    FAIL() << describeFailure(Config, Faults, Ops, Case.Seed);

  // Re-run without the auditor and drain: no dirty private line survives.
  CoherenceController Ctrl(Config, Faults);
  for (const FuzzOp &Op : Ops)
    switch (Op.K) {
    case FuzzOp::Kind::Access:
      Ctrl.access(Op.Core, Op.Address, Op.Size, Op.Type);
      break;
    case FuzzOp::Kind::AddRegion:
      Ctrl.addRegion(Op.Region, Op.Start, Op.End);
      break;
    case FuzzOp::Kind::RemoveRegion:
      Ctrl.removeRegion(Op.Region, Op.Core);
      break;
    case FuzzOp::Kind::Acquire:
      Ctrl.syncAcquire(Op.Core);
      break;
    case FuzzOp::Kind::Release:
      Ctrl.syncRelease(Op.Core);
      break;
    }
  Ctrl.drainDirtyData();
  for (unsigned B = 0; B < NumBlocks; ++B)
    for (CoreId Core = 0; Core < Config.totalCores(); ++Core) {
      if (const CacheLine *Line = Ctrl.privateLine(Core, blockAddr(B))) {
        EXPECT_FALSE(Line->dirty()) << "dirty line survived the drain";
      }
    }
}

INSTANTIATE_TEST_SUITE_P(
    Cases, ProtocolFuzz,
    ::testing::Values(
        FuzzCase{"mesi", ProtocolKind::Mesi, true, true, 3, 0, 0, 0xf1},
        FuzzCase{"warden", ProtocolKind::Warden, true, true, 3, 0, 0, 0xf2},
        FuzzCase{"warden_shared_gets", ProtocolKind::Warden, false, false, 3,
                 0, 0, 0xf3},
        FuzzCase{"warden_big_cam", ProtocolKind::Warden, true, true, 1024, 0,
                 0, 0xf4},
        FuzzCase{"mesi_faults", ProtocolKind::Mesi, true, true, 3, 0.01,
                 0.02, 0xf5},
        FuzzCase{"warden_faults", ProtocolKind::Warden, true, true, 3, 0.01,
                 0.02, 0xf6},
        FuzzCase{"warden_faults_b", ProtocolKind::Warden, false, true, 2,
                 0.02, 0.05, 0xabcdef},
        FuzzCase{"sisd", ProtocolKind::Sisd, true, true, 3, 0, 0, 0xf7},
        FuzzCase{"sisd_sync", ProtocolKind::Sisd, true, true, 3, 0, 0, 0xf8,
                 true},
        FuzzCase{"sisd_faults", ProtocolKind::Sisd, true, true, 3, 0.01, 0,
                 0xf9, true}),
    [](const ::testing::TestParamInfo<FuzzCase> &Info) {
      return Info.param.Name;
    });

//===----------------------------------------------------------------------===//
// The detector detects: a deliberately broken protocol must be caught and
// the failure must shrink to a small replayable prefix.
//===----------------------------------------------------------------------===//

class MutationFuzz : public ::testing::TestWithParam<ProtocolMutation> {};

TEST_P(MutationFuzz, MutationIsCaughtAndShrinks) {
  MachineConfig Config = MachineConfig::dualSocket();
  Config.Protocol = ProtocolKind::Warden;
  Config.Features.RegionTableCapacity = 3;
  FaultPlan Faults;
  Faults.Mutation = GetParam();

  const std::uint64_t Seed = 0xdead;
  std::vector<FuzzOp> Ops = generateOps(Seed, Config.totalCores(), 20000);
  AuditReport Report = replayPrefix(Config, Faults, Ops, Ops.size());
  ASSERT_GT(Report.Violations, 0u)
      << "auditor missed mutation " << mutationName(GetParam());

  std::size_t Minimal = shrinkToMinimalPrefix(Config, Faults, Ops);
  ASSERT_GE(Minimal, 1u);
  ASSERT_LE(Minimal, Ops.size());
  // The minimal prefix violates; one op fewer does not.
  EXPECT_GT(replayPrefix(Config, Faults, Ops, Minimal).Violations, 0u);
  EXPECT_EQ(replayPrefix(Config, Faults, Ops, Minimal - 1).Violations, 0u);
  // Shrinking earns its keep: the repro is a small fraction of the run.
  EXPECT_LT(Minimal, Ops.size() / 4);
  std::printf("[ mutation %s ] %s\n", mutationName(GetParam()),
              describeFailure(Config, Faults, Ops, Seed).c_str());
}

INSTANTIATE_TEST_SUITE_P(
    Mutations, MutationFuzz,
    ::testing::Values(ProtocolMutation::SkipInvalidationOnGetM,
                      ProtocolMutation::SkipDowngradeOnFwdGetS),
    [](const ::testing::TestParamInfo<ProtocolMutation> &Info) {
      return std::string(mutationName(Info.param)) == "skip-invalidation-on-getm"
                 ? "SkipInvalidationOnGetM"
                 : "SkipDowngradeOnFwdGetS";
    });

// The SISD counterpart: a broken acquire (self-invalidation skipped) must
// be caught by the SISD shadow discipline and shrink the same way. Sync
// operations are required in the trace — the bug is *in* the acquire.
TEST(SisdMutationFuzz, SkippedAcquireInvalidationIsCaughtAndShrinks) {
  MachineConfig Config = MachineConfig::dualSocket();
  Config.Protocol = ProtocolKind::Sisd;
  FaultPlan Faults;
  Faults.Mutation = ProtocolMutation::SkipAcquireInvalidation;

  const std::uint64_t Seed = 0xbeef;
  std::vector<FuzzOp> Ops =
      generateOps(Seed, Config.totalCores(), 20000, /*WithSync=*/true);
  AuditReport Report = replayPrefix(Config, Faults, Ops, Ops.size());
  ASSERT_GT(Report.Violations, 0u)
      << "auditor missed the skipped acquire invalidation";

  std::size_t Minimal = shrinkToMinimalPrefix(Config, Faults, Ops);
  EXPECT_GT(replayPrefix(Config, Faults, Ops, Minimal).Violations, 0u);
  EXPECT_EQ(replayPrefix(Config, Faults, Ops, Minimal - 1).Violations, 0u);
  EXPECT_LT(Minimal, Ops.size() / 4);
  std::printf("[ mutation %s ] %s\n",
              mutationName(ProtocolMutation::SkipAcquireInvalidation),
              describeFailure(Config, Faults, Ops, Seed).c_str());
}

// And with the stock protocol the same synchronized traces stay clean —
// the SISD fuzz cases above plus this guard pin both directions.
TEST(SisdMutationFuzz, StockSisdSurvivesTheSameTrace) {
  MachineConfig Config = MachineConfig::dualSocket();
  Config.Protocol = ProtocolKind::Sisd;
  std::vector<FuzzOp> Ops =
      generateOps(0xbeef, Config.totalCores(), 20000, /*WithSync=*/true);
  AuditReport Report =
      replayPrefix(Config, FaultPlan(), Ops, Ops.size());
  EXPECT_TRUE(Report.clean())
      << describeFailure(Config, FaultPlan(), Ops, 0xbeef);
}
