//===- tests/MemTest.cpp - cache structure unit tests -----------------------===//
//
// Part of the WARDen reproduction project.
//
//===----------------------------------------------------------------------===//

#include "src/mem/CacheArray.h"
#include "src/mem/CacheGeometry.h"
#include "src/mem/SectorMask.h"

#include <gtest/gtest.h>

using namespace warden;

// --- CacheGeometry -----------------------------------------------------------

struct GeometryCase {
  std::uint64_t SizeBytes;
  unsigned Assoc;
  unsigned BlockSize;
};

class GeometryTest : public ::testing::TestWithParam<GeometryCase> {};

TEST_P(GeometryTest, SetsTimesWaysTimesBlockEqualsSize) {
  const GeometryCase &C = GetParam();
  CacheGeometry G(C.SizeBytes, C.Assoc, C.BlockSize);
  EXPECT_EQ(G.sizeBytes(), C.SizeBytes);
  EXPECT_EQ(static_cast<std::uint64_t>(G.NumSets) * G.Assoc * G.BlockSize,
            C.SizeBytes);
}

TEST_P(GeometryTest, BlockAddressArithmetic) {
  const GeometryCase &C = GetParam();
  CacheGeometry G(C.SizeBytes, C.Assoc, C.BlockSize);
  Addr Address = 3 * C.BlockSize + 7;
  EXPECT_EQ(G.blockAddr(Address), 3u * C.BlockSize);
  EXPECT_EQ(G.blockOffset(Address), 7u);
  // All blocks of one set stride apart map to the same set.
  Addr BlockA = 0;
  Addr BlockB = static_cast<Addr>(G.NumSets) * C.BlockSize;
  EXPECT_EQ(G.setIndex(BlockA), G.setIndex(BlockB));
  if (G.NumSets > 1)
    EXPECT_NE(G.setIndex(BlockA), G.setIndex(BlockA + C.BlockSize));
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, GeometryTest,
    ::testing::Values(GeometryCase{32 * 1024, 8, 64},
                      GeometryCase{256 * 1024, 8, 64},
                      GeometryCase{30 * 1024 * 1024, 20, 64},
                      GeometryCase{1024, 2, 32}, GeometryCase{4096, 1, 64}));

// --- SectorMask ----------------------------------------------------------------

TEST(SectorMask, StartsClean) {
  SectorMask Mask;
  EXPECT_FALSE(Mask.any());
  EXPECT_EQ(Mask.count(), 0u);
}

TEST(SectorMask, MarkAndProbeRanges) {
  SectorMask Mask;
  Mask.markWritten(8, 16);
  EXPECT_TRUE(Mask.any());
  EXPECT_EQ(Mask.count(), 16u);
  EXPECT_TRUE(Mask.anyWritten(8, 1));
  EXPECT_TRUE(Mask.anyWritten(23, 1));
  EXPECT_FALSE(Mask.anyWritten(0, 8));
  EXPECT_FALSE(Mask.anyWritten(24, 40));
  EXPECT_TRUE(Mask.anyWritten(0, 64));
}

TEST(SectorMask, FullBlockWrite) {
  SectorMask Mask;
  Mask.markWritten(0, 64);
  EXPECT_EQ(Mask.count(), 64u);
  EXPECT_TRUE(Mask.anyWritten(63, 1));
}

class SectorOverlapTest
    : public ::testing::TestWithParam<std::tuple<unsigned, unsigned>> {};

TEST_P(SectorOverlapTest, DisjointRangesDoNotOverlap) {
  auto [OffA, OffB] = GetParam();
  SectorMask A;
  SectorMask B;
  A.markWritten(OffA, 8);
  B.markWritten(OffB, 8);
  bool ShouldOverlap = (OffA < OffB + 8) && (OffB < OffA + 8);
  EXPECT_EQ(A.overlaps(B), ShouldOverlap);
  EXPECT_EQ(B.overlaps(A), ShouldOverlap);
}

INSTANTIATE_TEST_SUITE_P(
    Ranges, SectorOverlapTest,
    ::testing::Combine(::testing::Values(0u, 4u, 8u, 16u, 56u),
                       ::testing::Values(0u, 8u, 12u, 24u, 56u)));

TEST(SectorMask, MergeUnionsBits) {
  SectorMask A;
  SectorMask B;
  A.markWritten(0, 8);
  B.markWritten(32, 8);
  A.merge(B);
  EXPECT_EQ(A.count(), 16u);
  EXPECT_TRUE(A.anyWritten(32, 8));
}

TEST(SectorMask, ClearResets) {
  SectorMask Mask;
  Mask.markWritten(0, 64);
  Mask.clear();
  EXPECT_FALSE(Mask.any());
}

// --- CacheArray -----------------------------------------------------------------

namespace {

CacheArray makeSmallCache() {
  // 4 sets x 2 ways x 64 B blocks = 512 B.
  return CacheArray(CacheGeometry(512, 2, 64));
}

} // namespace

TEST(CacheArray, MissOnEmpty) {
  CacheArray Cache = makeSmallCache();
  EXPECT_EQ(Cache.lookup(0), nullptr);
  EXPECT_EQ(Cache.validLineCount(), 0u);
}

TEST(CacheArray, InsertThenHit) {
  CacheArray Cache = makeSmallCache();
  EXPECT_FALSE(Cache.insert(0x100, LineState::Exclusive).has_value());
  CacheLine *Line = Cache.lookup(0x100);
  ASSERT_NE(Line, nullptr);
  EXPECT_EQ(Line->State, LineState::Exclusive);
  EXPECT_EQ(Line->Block, 0x100u);
}

TEST(CacheArray, LruEvictsLeastRecentlyUsed) {
  CacheArray Cache = makeSmallCache();
  // Set 0 holds blocks at stride 4*64 = 256.
  Cache.insert(0, LineState::Shared);
  Cache.insert(256, LineState::Shared);
  // Touch block 0 so 256 becomes LRU.
  Cache.lookup(0);
  std::optional<EvictedLine> Victim = Cache.insert(512, LineState::Shared);
  ASSERT_TRUE(Victim.has_value());
  EXPECT_EQ(Victim->Block, 256u);
  EXPECT_NE(Cache.probe(0), nullptr);
  EXPECT_EQ(Cache.probe(256), nullptr);
}

TEST(CacheArray, EvictionReportsDirtyState) {
  CacheArray Cache = makeSmallCache();
  Cache.insert(0, LineState::Modified);
  Cache.probe(0)->Dirty.markWritten(0, 8);
  Cache.insert(256, LineState::Shared);
  std::optional<EvictedLine> Victim = Cache.insert(512, LineState::Shared);
  ASSERT_TRUE(Victim.has_value());
  EXPECT_EQ(Victim->Block, 0u);
  EXPECT_EQ(Victim->State, LineState::Modified);
  EXPECT_TRUE(Victim->Dirty.anyWritten(0, 8));
}

TEST(CacheArray, InvalidateRemovesLine) {
  CacheArray Cache = makeSmallCache();
  Cache.insert(0x40, LineState::Modified);
  std::optional<EvictedLine> Old = Cache.invalidate(0x40);
  ASSERT_TRUE(Old.has_value());
  EXPECT_EQ(Old->State, LineState::Modified);
  EXPECT_EQ(Cache.probe(0x40), nullptr);
  EXPECT_FALSE(Cache.invalidate(0x40).has_value());
}

TEST(CacheArray, ProbeDoesNotChangeRecency) {
  CacheArray Cache = makeSmallCache();
  Cache.insert(0, LineState::Shared);
  Cache.insert(256, LineState::Shared);
  // Probe (not lookup) block 0: 0 stays LRU, so it is the victim.
  Cache.probe(0);
  std::optional<EvictedLine> Victim = Cache.insert(512, LineState::Shared);
  ASSERT_TRUE(Victim.has_value());
  EXPECT_EQ(Victim->Block, 0u);
}

TEST(CacheArray, DifferentSetsDoNotConflict) {
  CacheArray Cache = makeSmallCache();
  for (Addr Block = 0; Block < 512; Block += 64)
    EXPECT_FALSE(Cache.insert(Block, LineState::Shared).has_value())
        << Block;
  EXPECT_EQ(Cache.validLineCount(), 8u);
}

class CacheFillSweep : public ::testing::TestWithParam<unsigned> {};

TEST_P(CacheFillSweep, CapacityNeverExceeded) {
  unsigned Assoc = GetParam();
  CacheArray Cache(CacheGeometry(64 * 8 * Assoc, Assoc, 64));
  for (Addr Block = 0; Block < 64 * 1024; Block += 64)
    Cache.insert(Block, LineState::Shared);
  EXPECT_LE(Cache.validLineCount(),
            static_cast<std::size_t>(8) * Assoc);
  EXPECT_EQ(Cache.validLineCount(), static_cast<std::size_t>(8) * Assoc);
}

INSTANTIATE_TEST_SUITE_P(Assocs, CacheFillSweep,
                         ::testing::Values(1, 2, 4, 8, 16));

TEST(CacheArray, ForEachValidLineVisitsAll) {
  CacheArray Cache = makeSmallCache();
  Cache.insert(0, LineState::Shared);
  Cache.insert(64, LineState::Modified);
  unsigned Count = 0;
  Cache.forEachValidLine([&](CacheLine &) { ++Count; });
  EXPECT_EQ(Count, 2u);
}

TEST(LineState, Names) {
  EXPECT_STREQ(lineStateName(LineState::Invalid), "I");
  EXPECT_STREQ(lineStateName(LineState::Shared), "S");
  EXPECT_STREQ(lineStateName(LineState::Exclusive), "E");
  EXPECT_STREQ(lineStateName(LineState::Modified), "M");
  EXPECT_STREQ(lineStateName(LineState::Ward), "W");
}
