//===- tests/TraceTest.cpp - trace and task-graph unit tests -----------------===//
//
// Part of the WARDen reproduction project.
//
//===----------------------------------------------------------------------===//

#include "src/trace/TaskGraph.h"

#include <gtest/gtest.h>

using namespace warden;

TEST(TraceEvent, FactoriesSetFields) {
  TraceEvent L = TraceEvent::load(0x100, 8);
  EXPECT_EQ(L.Op, TraceOp::Load);
  EXPECT_EQ(L.Address, 0x100u);
  EXPECT_EQ(L.Size, 8u);

  TraceEvent W = TraceEvent::work(123);
  EXPECT_EQ(W.Op, TraceOp::Work);
  EXPECT_EQ(W.Extra, 123u);

  TraceEvent M = TraceEvent::mark(5, 0x1000, 0x2000);
  EXPECT_EQ(M.Op, TraceOp::MarkRegion);
  EXPECT_EQ(M.Region, 5u);
  EXPECT_EQ(M.Address, 0x1000u);
  EXPECT_EQ(M.Extra, 0x2000u);

  TraceEvent U = TraceEvent::unmark(5);
  EXPECT_EQ(U.Op, TraceOp::UnmarkRegion);
  EXPECT_EQ(U.Region, 5u);

  TraceEvent R = TraceEvent::rmw(0x200, 8);
  EXPECT_EQ(R.Op, TraceOp::Rmw);
}

TEST(TraceEvent, InstructionAccounting) {
  EXPECT_EQ(TraceEvent::load(0, 8).instructions(), 1u);
  EXPECT_EQ(TraceEvent::store(0, 8).instructions(), 1u);
  EXPECT_EQ(TraceEvent::work(500).instructions(), 500u);
  EXPECT_EQ(TraceEvent::mark(0, 0, 64).instructions(), 1u);
}

namespace {

/// Builds: Root(10) forks {A(100), B(30)}; continuation K(5).
TaskGraph diamond() {
  TaskGraph Graph;
  StrandId Root = Graph.addStrand();
  StrandId K = Graph.addStrand();
  StrandId A = Graph.addStrand();
  StrandId B = Graph.addStrand();
  Graph.setRoot(Root);
  Graph.strand(Root).Events.push_back(TraceEvent::work(10));
  Graph.strand(Root).Children = {A, B};
  Graph.strand(A).Events.push_back(TraceEvent::work(100));
  Graph.strand(A).JoinTarget = K;
  Graph.strand(B).Events.push_back(TraceEvent::work(30));
  Graph.strand(B).JoinTarget = K;
  Graph.strand(K).PendingJoin = 2;
  Graph.strand(K).Events.push_back(TraceEvent::work(5));
  return Graph;
}

} // namespace

TEST(TaskGraph, TotalInstructionsSumsAllStrands) {
  TaskGraph Graph = diamond();
  EXPECT_EQ(Graph.totalInstructions(), 145u);
  EXPECT_EQ(Graph.totalEvents(), 4u);
}

TEST(TaskGraph, SpanIsLongestPath) {
  TaskGraph Graph = diamond();
  // 10 (root) + 100 (longer child) + 5 (continuation) = 115.
  EXPECT_EQ(Graph.spanInstructions(), 115u);
}

TEST(TaskGraph, SpanOfSingleStrand) {
  TaskGraph Graph;
  StrandId Root = Graph.addStrand();
  Graph.setRoot(Root);
  Graph.strand(Root).Events.push_back(TraceEvent::work(42));
  EXPECT_EQ(Graph.spanInstructions(), 42u);
}

TEST(TaskGraph, SpanOfNestedDiamonds) {
  // Root forks {A, B}; A itself forks {A1(50), A2(60)} with continuation
  // KA(1); B is work(10); final continuation K(2).
  TaskGraph Graph;
  StrandId Root = Graph.addStrand();
  StrandId K = Graph.addStrand();
  StrandId A = Graph.addStrand();
  StrandId B = Graph.addStrand();
  StrandId KA = Graph.addStrand();
  StrandId A1 = Graph.addStrand();
  StrandId A2 = Graph.addStrand();
  Graph.setRoot(Root);
  Graph.strand(Root).Events.push_back(TraceEvent::work(5));
  Graph.strand(Root).Children = {A, B};
  Graph.strand(A).Events.push_back(TraceEvent::work(1));
  Graph.strand(A).Children = {A1, A2};
  Graph.strand(A1).Events.push_back(TraceEvent::work(50));
  Graph.strand(A1).JoinTarget = KA;
  Graph.strand(A2).Events.push_back(TraceEvent::work(60));
  Graph.strand(A2).JoinTarget = KA;
  Graph.strand(KA).PendingJoin = 2;
  Graph.strand(KA).Events.push_back(TraceEvent::work(1));
  Graph.strand(KA).JoinTarget = K;
  Graph.strand(B).Events.push_back(TraceEvent::work(10));
  Graph.strand(B).JoinTarget = K;
  Graph.strand(K).PendingJoin = 2;
  Graph.strand(K).Events.push_back(TraceEvent::work(2));
  // 5 + 1 + 60 + 1 + 2 = 69.
  EXPECT_EQ(Graph.spanInstructions(), 69u);
  EXPECT_EQ(Graph.totalInstructions(), 129u);
}

TEST(TaskGraph, ParallelismRatio) {
  TaskGraph Graph = diamond();
  double Parallelism = static_cast<double>(Graph.totalInstructions()) /
                       static_cast<double>(Graph.spanInstructions());
  EXPECT_GT(Parallelism, 1.0);
  EXPECT_LT(Parallelism, 2.0);
}
