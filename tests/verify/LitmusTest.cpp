//===- tests/verify/LitmusTest.cpp - Litmus harness tests ---------------------===//
//
// Part of the WARDen reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The full litmus suite must pass for every registered backend against
/// its declared consistency model — MESI/WARDen as SC-for-DRF, SISD as
/// release-acquire with its relaxations demonstrably observable — and a
/// deliberately weakened backend must fail the right pattern.
///
//===----------------------------------------------------------------------===//

#include "src/support/JobPool.h"
#include "src/verify/Litmus.h"

#include <gtest/gtest.h>

#include <algorithm>

using namespace warden;

namespace {

std::string failureDigest(const LitmusResult &R) {
  std::string Out = R.Pattern;
  for (const std::string &Why : R.Failures) {
    Out += "\n  ";
    Out += Why;
  }
  return Out;
}

} // namespace

TEST(LitmusSuite, CoversTheClassicPatterns) {
  std::vector<LitmusPattern> Suite = litmusSuite();
  std::vector<std::string> Names;
  for (const LitmusPattern &P : Suite)
    Names.push_back(P.Program.Name);
  for (const char *Required :
       {"mp", "mp_relaxed", "sb", "sb_relaxed", "lb", "corr", "coww"})
    EXPECT_NE(std::find(Names.begin(), Names.end(), Required), Names.end())
        << "missing litmus pattern " << Required;
}

class LitmusEveryProtocol : public ::testing::TestWithParam<ProtocolKind> {};

TEST_P(LitmusEveryProtocol, FullSuitePassesAgainstTheDeclaredModel) {
  for (const LitmusResult &R : runLitmusSuite(GetParam()))
    EXPECT_TRUE(R.Passed) << protocolId(GetParam()) << "/"
                          << failureDigest(R);
}

TEST_P(LitmusEveryProtocol, SuiteIsDeterministicUnderAPool) {
  JobPool Pool(4);
  std::vector<LitmusResult> Serial = runLitmusSuite(GetParam());
  std::vector<LitmusResult> Pooled = runLitmusSuite(GetParam(), &Pool);
  ASSERT_EQ(Serial.size(), Pooled.size());
  for (std::size_t I = 0; I < Serial.size(); ++I) {
    EXPECT_EQ(Serial[I].Passed, Pooled[I].Passed);
    EXPECT_EQ(Serial[I].Exploration.Outcomes, Pooled[I].Exploration.Outcomes);
    EXPECT_EQ(Serial[I].Exploration.Stats.StatesVisited,
              Pooled[I].Exploration.Stats.StatesVisited);
  }
}

INSTANTIATE_TEST_SUITE_P(Protocols, LitmusEveryProtocol,
                         ::testing::Values(ProtocolKind::Mesi,
                                           ProtocolKind::Warden,
                                           ProtocolKind::Sisd,
                                           ProtocolKind::Racoh),
                         [](const auto &Info) {
                           return std::string(protocolId(Info.param));
                         });

TEST(LitmusModels, DeclaredModelsMatchTheBackends) {
  EXPECT_EQ(declaredModel(ProtocolKind::Mesi), ConsistencyModel::ScForDrf);
  EXPECT_EQ(declaredModel(ProtocolKind::Warden), ConsistencyModel::ScForDrf);
  EXPECT_EQ(declaredModel(ProtocolKind::Sisd),
            ConsistencyModel::ReleaseAcquire);
  EXPECT_EQ(declaredModel(ProtocolKind::Racoh),
            ConsistencyModel::ReleaseAcquire);
}

TEST(LitmusOutcomes, LazyBackendsDemonstrateTheirRelaxationsAndMesiDoesNot) {
  // The relaxed patterns exist precisely to distinguish the two model
  // classes: the weak outcome must be reachable under both release-acquire
  // backends (SISD and racoh) and unreachable under MESI/WARDen.
  for (const LitmusPattern &P : litmusSuite()) {
    if (P.RequiredWeakUnderRa.empty())
      continue;
    for (ProtocolKind Lazy : {ProtocolKind::Sisd, ProtocolKind::Racoh}) {
      LitmusResult R = runLitmus(P, Lazy);
      const std::vector<std::string> &Out = R.Exploration.Outcomes;
      EXPECT_NE(std::find(Out.begin(), Out.end(), P.RequiredWeakUnderRa),
                Out.end())
          << P.Program.Name << ": " << protocolId(Lazy) << " did not show "
          << P.RequiredWeakUnderRa;
    }
    for (ProtocolKind Eager : {ProtocolKind::Mesi, ProtocolKind::Warden}) {
      LitmusResult R = runLitmus(P, Eager);
      const std::vector<std::string> &Out = R.Exploration.Outcomes;
      EXPECT_EQ(std::find(Out.begin(), Out.end(), P.RequiredWeakUnderRa),
                Out.end())
          << P.Program.Name << ": " << protocolId(Eager)
          << " showed the weak outcome " << P.RequiredWeakUnderRa;
    }
  }
}

TEST(LitmusDetection, WeakenedAcquireFailsTheMpPattern) {
  // Run MP's exploration with the broken acquire: the explorer must find
  // the invariant violation (the acquire leaves residue), so the pattern
  // cannot pass. This closes the loop: the harness does not just pass
  // correct protocols, it fails broken ones.
  const std::vector<LitmusPattern> Suite = litmusSuite();
  auto Mp = std::find_if(Suite.begin(), Suite.end(), [](const auto &P) {
    return P.Program.Name == "mp";
  });
  ASSERT_NE(Mp, Suite.end());

  ExplorerOptions Options;
  Options.Protocol = ProtocolKind::Sisd;
  Options.Faults.Mutation = ProtocolMutation::SkipAcquireInvalidation;
  ExplorerResult R = Explorer(Options).explore(Mp->Program);
  ASSERT_TRUE(R.Violation.has_value());
  EXPECT_LE(R.Violation->Steps.size(), 12u);
}

TEST(LitmusDetection, DroppedLogPublishFailsTheMpPatternUnderRacoh) {
  // Racoh's characteristic fault: the release writes data back but never
  // publishes the log, so the reader's acquire keeps its stale copy. The
  // auditor's surviving-copy value check must catch it on plain MP.
  const std::vector<LitmusPattern> Suite = litmusSuite();
  auto Mp = std::find_if(Suite.begin(), Suite.end(), [](const auto &P) {
    return P.Program.Name == "mp";
  });
  ASSERT_NE(Mp, Suite.end());

  ExplorerOptions Options;
  Options.Protocol = ProtocolKind::Racoh;
  Options.Faults.Mutation = ProtocolMutation::DropLogPublish;
  ExplorerResult R = Explorer(Options).explore(Mp->Program);
  ASSERT_TRUE(R.Violation.has_value());
  EXPECT_LE(R.Violation->Steps.size(), 12u);
}
