//===- tests/verify/ExplorerTest.cpp - Model-checking explorer tests ----------===//
//
// Part of the WARDen reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Tests for the bounded exhaustive explorer: exhaustive verification of
/// every backend on small programs, canonical-state deduplication, the SC
/// reference outcome sets, counterexample detection + minimality for a
/// deliberately mutated protocol, JobPool determinism, and program
/// validation.
///
//===----------------------------------------------------------------------===//

#include "src/support/JobPool.h"
#include "src/verify/Explorer.h"

#include <gtest/gtest.h>

#include <algorithm>

using namespace warden;

namespace {

constexpr Addr X = 0x40;
constexpr Addr Y = 0x80;

VerifyOp ld(Addr A, bool Observe = false) {
  VerifyOp Op;
  Op.K = VerifyOp::Kind::Load;
  Op.Address = A;
  Op.Observe = Observe;
  return Op;
}
VerifyOp st(Addr A) {
  VerifyOp Op;
  Op.K = VerifyOp::Kind::Store;
  Op.Address = A;
  return Op;
}
VerifyOp acq() {
  VerifyOp Op;
  Op.K = VerifyOp::Kind::Acquire;
  return Op;
}
VerifyOp rel() {
  VerifyOp Op;
  Op.K = VerifyOp::Kind::Release;
  return Op;
}
VerifyOp addRegion(RegionId Id, Addr Start, Addr End) {
  VerifyOp Op;
  Op.K = VerifyOp::Kind::AddRegion;
  Op.Region = Id;
  Op.Address = Start;
  Op.End = End;
  return Op;
}
VerifyOp rmRegion(RegionId Id) {
  VerifyOp Op;
  Op.K = VerifyOp::Kind::RemoveRegion;
  Op.Region = Id;
  return Op;
}

/// A contended 2-core x 2-block program exercising loads, stores, and
/// synchronization on every backend.
VerifyProgram contended2x2() {
  VerifyProgram P;
  P.Name = "contended2x2";
  P.Threads = {{st(X), ld(Y), rel(), ld(X, true)},
               {st(Y), acq(), ld(X, true), st(X)}};
  return P;
}

ExplorerResult explore(ProtocolKind Protocol, const VerifyProgram &Program,
                       ProtocolMutation Mutation = ProtocolMutation::None,
                       JobPool *Pool = nullptr) {
  ExplorerOptions Options;
  Options.Protocol = Protocol;
  Options.Faults.Mutation = Mutation;
  Options.Pool = Pool;
  return Explorer(Options).explore(Program);
}

} // namespace

//===----------------------------------------------------------------------===//
// Exhaustive clean verification
//===----------------------------------------------------------------------===//

class ExplorerEveryProtocol : public ::testing::TestWithParam<ProtocolKind> {};

TEST_P(ExplorerEveryProtocol, ContendedProgramVerifiesClean) {
  ExplorerResult R = explore(GetParam(), contended2x2());
  ASSERT_TRUE(R.clean()) << R.Violation->describe();
  EXPECT_FALSE(R.Stats.Truncated);
  EXPECT_GT(R.Stats.SchedulesCompleted, 0u);
  EXPECT_GT(R.Stats.StatesVisited, 0u);
  EXPECT_FALSE(R.Outcomes.empty());
  EXPECT_FALSE(R.ScOutcomes.empty());
}

TEST_P(ExplorerEveryProtocol, RegionProgramVerifiesClean) {
  VerifyProgram P;
  P.Name = "regions";
  P.Threads = {{addRegion(7, X, X + 0x40), st(X), st(X), rmRegion(7)},
               {ld(X, true), st(Y), ld(Y, true)}};
  ExplorerResult R = explore(GetParam(), P);
  ASSERT_TRUE(R.clean()) << R.Violation->describe();
  EXPECT_FALSE(R.Stats.Truncated);
}

TEST_P(ExplorerEveryProtocol, DedupActuallyMergesStates) {
  // Two threads touching disjoint blocks commute completely: almost every
  // interleaving collapses into an already-seen canonical state.
  VerifyProgram P;
  P.Name = "disjoint";
  P.Threads = {{st(X), ld(X), st(X), ld(X, true)},
               {st(Y), ld(Y), st(Y), ld(Y, true)}};
  ExplorerResult R = explore(GetParam(), P);
  ASSERT_TRUE(R.clean()) << R.Violation->describe();
  EXPECT_GT(R.Stats.StatesDeduped, 0u);
  // Disjoint threads have exactly one outcome, SC agrees.
  EXPECT_EQ(R.Outcomes, R.ScOutcomes);
  ASSERT_EQ(R.Outcomes.size(), 1u);
  EXPECT_EQ(R.Outcomes[0], "t0.2,t1.2");
}

INSTANTIATE_TEST_SUITE_P(Protocols, ExplorerEveryProtocol,
                         ::testing::Values(ProtocolKind::Mesi,
                                           ProtocolKind::Warden,
                                           ProtocolKind::Sisd,
                                           ProtocolKind::Racoh),
                         [](const auto &Info) {
                           return std::string(protocolId(Info.param));
                         });

//===----------------------------------------------------------------------===//
// SC reference + weak outcomes
//===----------------------------------------------------------------------===//

TEST(ExplorerOutcomes, MesiHasNoWeakOutcomesOnRacyPrograms) {
  VerifyProgram Sb;
  Sb.Name = "sb";
  Sb.Threads = {{st(X), ld(Y, true)}, {st(Y), ld(X, true)}};
  ExplorerResult R = explore(ProtocolKind::Mesi, Sb);
  ASSERT_TRUE(R.clean());
  EXPECT_TRUE(R.weakOutcomes().empty());
  // Three of the four SC outcomes of SB are reachable; both-init is not.
  for (const std::string &Outcome : R.Outcomes)
    EXPECT_NE(Outcome, "init,init");
}

TEST(ExplorerOutcomes, SisdShowsTheStoreBufferingWeakOutcome) {
  VerifyProgram Sb;
  Sb.Name = "sb";
  Sb.Threads = {{st(X), ld(Y, true)}, {st(Y), ld(X, true)}};
  ExplorerResult R = explore(ProtocolKind::Sisd, Sb);
  ASSERT_TRUE(R.clean());
  std::vector<std::string> Weak = R.weakOutcomes();
  // Deferred stores leave both loads reading the initial value — a weak
  // outcome no SC interleaving produces.
  EXPECT_NE(std::find(Weak.begin(), Weak.end(), "init,init"), Weak.end());
}

TEST(ExplorerOutcomes, ScReferenceIsExactForMessagePassing) {
  // SC forbids exactly flag-new/data-old; the other three tuples exist.
  VerifyProgram Mp;
  Mp.Name = "mp";
  Mp.Threads = {{st(X), st(Y)}, {ld(Y, true), ld(X, true)}};
  ExplorerResult R = explore(ProtocolKind::Mesi, Mp);
  ASSERT_TRUE(R.clean());
  std::vector<std::string> Expect = {"init,init", "init,t0.0", "t0.1,init",
                                     "t0.1,t0.0"};
  std::sort(Expect.begin(), Expect.end());
  std::vector<std::string> Sc = R.ScOutcomes;
  std::sort(Sc.begin(), Sc.end());
  EXPECT_NE(std::find(Sc.begin(), Sc.end(), "t0.1,t0.0"), Sc.end());
  EXPECT_EQ(std::find(Sc.begin(), Sc.end(), "t0.1,init"), Sc.end())
      << "SC reference admitted the forbidden MP outcome";
}

//===----------------------------------------------------------------------===//
// Counterexamples
//===----------------------------------------------------------------------===//

TEST(ExplorerCounterexample, MutatedSisdAcquireIsCaughtMinimallyAndReplays) {
  VerifyProgram P;
  P.Name = "acquire_bug";
  P.Threads = {{st(X), rel()}, {ld(X), acq(), ld(X, true)}};
  ExplorerResult R = explore(ProtocolKind::Sisd, P,
                             ProtocolMutation::SkipAcquireInvalidation);
  ASSERT_TRUE(R.Violation.has_value())
      << "explorer missed the skipped acquire invalidation";
  const Counterexample &Ce = *R.Violation;
  EXPECT_GT(Ce.Violations, 0u);
  EXPECT_FALSE(Ce.Messages.empty());

  // The issue's acceptance bound, with margin: the shrunk trace is tiny.
  EXPECT_LE(Ce.Steps.size(), 12u);
  // In fact the minimal repro is exactly warm-a-line-then-acquire.
  ASSERT_EQ(Ce.Steps.size(), 2u) << Ce.describe();
  EXPECT_EQ(Ce.Steps[1].Op.K, VerifyOp::Kind::Acquire);

  // Minimality: the trace is 1-minimal — removing any single step makes
  // the violation disappear.
  ExplorerOptions Options;
  Options.Protocol = ProtocolKind::Sisd;
  Options.Faults.Mutation = ProtocolMutation::SkipAcquireInvalidation;
  Explorer E(Options);
  EXPECT_GT(E.replay(Ce.Steps, P.threadCount()).Violations, 0u)
      << "counterexample does not replay";
  for (std::size_t I = 0; I < Ce.Steps.size(); ++I) {
    std::vector<TraceStep> Less = Ce.Steps;
    Less.erase(Less.begin() + I);
    EXPECT_EQ(E.replay(Less, P.threadCount()).Violations, 0u)
        << "dropping step " << I << " still violates — not minimal";
  }

  // Without the mutation the same program is clean.
  EXPECT_TRUE(explore(ProtocolKind::Sisd, P).clean());
}

TEST(ExplorerCounterexample, DroppedLogPublishIsCaughtMinimallyUnderRacoh) {
  // The racoh-specific fault: the release writes the data back but throws
  // the log away, so no remote core ever learns its copy went stale. Only
  // the auditor's value check can see this — the trace is
  // warm-a-stale-copy, publish(dropped), acquire.
  VerifyProgram P;
  P.Name = "dropped_publish";
  P.Threads = {{st(X), rel()}, {ld(X), acq(), ld(X, true)}};
  ExplorerResult R = explore(ProtocolKind::Racoh, P,
                             ProtocolMutation::DropLogPublish);
  ASSERT_TRUE(R.Violation.has_value())
      << "explorer missed the dropped log publish";
  const Counterexample &Ce = *R.Violation;
  EXPECT_GT(Ce.Violations, 0u);

  // The issue's acceptance bound, with margin; in fact the shrunk repro is
  // exactly store, warm-the-stale-copy, release, acquire.
  EXPECT_LE(Ce.Steps.size(), 12u);
  ASSERT_EQ(Ce.Steps.size(), 4u) << Ce.describe();
  EXPECT_EQ(Ce.Steps.back().Op.K, VerifyOp::Kind::Acquire);

  // 1-minimality plus replay, like the SISD counterexample above.
  ExplorerOptions Options;
  Options.Protocol = ProtocolKind::Racoh;
  Options.Faults.Mutation = ProtocolMutation::DropLogPublish;
  Explorer E(Options);
  EXPECT_GT(E.replay(Ce.Steps, P.threadCount()).Violations, 0u)
      << "counterexample does not replay";
  for (std::size_t I = 0; I < Ce.Steps.size(); ++I) {
    std::vector<TraceStep> Less = Ce.Steps;
    Less.erase(Less.begin() + I);
    EXPECT_EQ(E.replay(Less, P.threadCount()).Violations, 0u)
        << "dropping step " << I << " still violates — not minimal";
  }

  // Without the mutation the same program is clean, and the eager
  // backends ignore the racoh-only mutation entirely.
  EXPECT_TRUE(explore(ProtocolKind::Racoh, P).clean());
  EXPECT_TRUE(
      explore(ProtocolKind::Mesi, P, ProtocolMutation::DropLogPublish)
          .clean());
}

TEST(ExplorerCounterexample, MutatedMesiInvalidationIsCaught) {
  VerifyProgram P;
  P.Name = "swmr_bug";
  P.Threads = {{ld(X)}, {ld(X)}, {st(X)}};
  ExplorerResult R = explore(ProtocolKind::Mesi, P,
                             ProtocolMutation::SkipInvalidationOnGetM);
  ASSERT_TRUE(R.Violation.has_value());
  EXPECT_LE(R.Violation->Steps.size(), 12u);
  EXPECT_TRUE(explore(ProtocolKind::Mesi, P).clean());
}

//===----------------------------------------------------------------------===//
// JobPool determinism
//===----------------------------------------------------------------------===//

TEST(ExplorerDeterminism, PooledSearchMatchesSerialExactly) {
  JobPool Pool(4);
  for (ProtocolKind Protocol :
       {ProtocolKind::Mesi, ProtocolKind::Warden, ProtocolKind::Sisd,
        ProtocolKind::Racoh}) {
    ExplorerResult Serial = explore(Protocol, contended2x2());
    ExplorerResult Pooled =
        explore(Protocol, contended2x2(), ProtocolMutation::None, &Pool);
    EXPECT_EQ(Serial.Outcomes, Pooled.Outcomes) << protocolId(Protocol);
    EXPECT_EQ(Serial.ScOutcomes, Pooled.ScOutcomes);
    EXPECT_EQ(Serial.Stats.StatesVisited, Pooled.Stats.StatesVisited);
    EXPECT_EQ(Serial.Stats.StatesDeduped, Pooled.Stats.StatesDeduped);
    EXPECT_EQ(Serial.Stats.SchedulesCompleted,
              Pooled.Stats.SchedulesCompleted);
    EXPECT_EQ(Serial.clean(), Pooled.clean());
  }
}

TEST(ExplorerDeterminism, RepeatedRunsAreIdentical) {
  ExplorerResult A = explore(ProtocolKind::Warden, contended2x2());
  ExplorerResult B = explore(ProtocolKind::Warden, contended2x2());
  EXPECT_EQ(A.Outcomes, B.Outcomes);
  EXPECT_EQ(A.Stats.StatesVisited, B.Stats.StatesVisited);
  EXPECT_EQ(A.Stats.StepsExecuted, B.Stats.StepsExecuted);
}

//===----------------------------------------------------------------------===//
// Validation and bounds
//===----------------------------------------------------------------------===//

TEST(ExplorerValidation, RejectsMalformedPrograms) {
  Explorer E(ExplorerOptions{});
  VerifyProgram Empty;
  EXPECT_THROW(E.explore(Empty), std::invalid_argument);

  VerifyProgram Spanning;
  Spanning.Threads = {{st(X)}};
  Spanning.Threads[0][0].Address = X + 60;
  Spanning.Threads[0][0].Size = 8; // Crosses the 64-byte block boundary.
  EXPECT_THROW(E.explore(Spanning), std::invalid_argument);

  VerifyProgram ZeroSize;
  ZeroSize.Threads = {{st(X)}};
  ZeroSize.Threads[0][0].Size = 0;
  EXPECT_THROW(E.explore(ZeroSize), std::invalid_argument);

  VerifyProgram ObservedStore;
  ObservedStore.Threads = {{st(X)}};
  ObservedStore.Threads[0][0].Observe = true;
  EXPECT_THROW(E.explore(ObservedStore), std::invalid_argument);
}

TEST(ExplorerValidation, StateBudgetTruncatesInsteadOfHanging) {
  ExplorerOptions Options;
  Options.MaxStatesPerRoot = 4;
  VerifyProgram P = contended2x2();
  ExplorerResult R = Explorer(Options).explore(P);
  EXPECT_TRUE(R.Stats.Truncated);
}
