//===- tests/RegionTableTest.cpp - WARD region table unit tests --------------===//
//
// Part of the WARDen reproduction project.
//
//===----------------------------------------------------------------------===//

#include "src/coherence/CoherenceController.h"
#include "src/coherence/RegionTable.h"

#include <gtest/gtest.h>

using namespace warden;

namespace {
using AddResult = RegionTable::AddResult;
} // namespace

TEST(RegionTable, LookupMissOnEmpty) {
  RegionTable Table(16);
  EXPECT_EQ(Table.lookup(0x1000), InvalidRegion);
  EXPECT_EQ(Table.size(), 0u);
}

TEST(RegionTable, AddAndLookupBoundaries) {
  RegionTable Table(16);
  ASSERT_EQ(Table.add(7, 0x1000, 0x2000), AddResult::Added);
  EXPECT_EQ(Table.lookup(0x0fff), InvalidRegion);
  EXPECT_EQ(Table.lookup(0x1000), 7u); // Inclusive start.
  EXPECT_EQ(Table.lookup(0x1fff), 7u);
  EXPECT_EQ(Table.lookup(0x2000), InvalidRegion); // Exclusive end.
}

TEST(RegionTable, RemoveReturnsInterval) {
  RegionTable Table(16);
  Table.add(1, 0x1000, 0x1400);
  std::optional<WardRegion> Removed = Table.remove(1);
  ASSERT_TRUE(Removed.has_value());
  EXPECT_EQ(Removed->Start, 0x1000u);
  EXPECT_EQ(Removed->End, 0x1400u);
  EXPECT_EQ(Table.lookup(0x1200), InvalidRegion);
  EXPECT_FALSE(Table.remove(1).has_value());
}

TEST(RegionTable, RejectsOverlaps) {
  RegionTable Table(16);
  ASSERT_EQ(Table.add(1, 0x1000, 0x2000), AddResult::Added);
  EXPECT_EQ(Table.add(2, 0x1800, 0x2800), AddResult::Overlap); // Tail.
  EXPECT_EQ(Table.add(3, 0x0800, 0x1001), AddResult::Overlap); // Head.
  EXPECT_EQ(Table.add(4, 0x1100, 0x1200), AddResult::Overlap); // Nested.
  EXPECT_EQ(Table.add(5, 0x2000, 0x2800), AddResult::Added);   // Adjacent.
  EXPECT_EQ(Table.add(6, 0x0800, 0x1000), AddResult::Added);
  EXPECT_EQ(Table.size(), 3u);
}

TEST(RegionTable, RejectsMalformedRequests) {
  RegionTable Table(16);
  EXPECT_EQ(Table.add(1, 0x2000, 0x2000), AddResult::BadInterval); // Empty.
  EXPECT_EQ(Table.add(1, 0x2000, 0x1000), AddResult::BadInterval); // Inverted.
  ASSERT_EQ(Table.add(1, 0x1000, 0x2000), AddResult::Added);
  EXPECT_EQ(Table.add(1, 0x8000, 0x9000), AddResult::DuplicateId);
  // The rejected duplicate did not clobber the original interval.
  EXPECT_EQ(Table.lookup(0x1800), 1u);
  EXPECT_EQ(Table.lookup(0x8800), InvalidRegion);
  EXPECT_EQ(Table.size(), 1u);
}

TEST(RegionTable, CapacityOverflowRejected) {
  RegionTable Table(4);
  for (RegionId Id = 0; Id < 4; ++Id)
    ASSERT_EQ(Table.add(Id, Addr(Id) * 0x1000, Addr(Id) * 0x1000 + 0x800),
              AddResult::Added);
  EXPECT_TRUE(Table.full());
  EXPECT_EQ(Table.add(99, 0x100000, 0x101000), AddResult::Full);
  // Removing one frees a slot.
  Table.remove(0);
  EXPECT_EQ(Table.add(99, 0x100000, 0x101000), AddResult::Added);
}

TEST(RegionTable, PeakOccupancyTracksHighWaterMark) {
  RegionTable Table(8);
  Table.add(0, 0x0, 0x100);
  Table.add(1, 0x1000, 0x1100);
  Table.add(2, 0x2000, 0x2100);
  Table.remove(1);
  Table.remove(2);
  EXPECT_EQ(Table.size(), 1u);
  EXPECT_EQ(Table.peakOccupancy(), 3u);
}

TEST(RegionTable, GetReturnsInterval) {
  RegionTable Table(8);
  Table.add(5, 0x4000, 0x5000);
  std::optional<WardRegion> Region = Table.get(5);
  ASSERT_TRUE(Region.has_value());
  EXPECT_EQ(Region->size(), 0x1000u);
  EXPECT_TRUE(Region->contains(0x4800));
  EXPECT_FALSE(Region->contains(0x5000));
  EXPECT_FALSE(Table.get(6).has_value());
}

class RegionSweep : public ::testing::TestWithParam<unsigned> {};

TEST_P(RegionSweep, ManyDisjointRegionsResolveCorrectly) {
  unsigned Count = GetParam();
  RegionTable Table(Count);
  for (RegionId Id = 0; Id < Count; ++Id)
    ASSERT_EQ(Table.add(Id, Addr(Id) * 0x2000, Addr(Id) * 0x2000 + 0x1000),
              AddResult::Added);
  for (RegionId Id = 0; Id < Count; ++Id) {
    EXPECT_EQ(Table.lookup(Addr(Id) * 0x2000 + 0x500), Id);
    EXPECT_EQ(Table.lookup(Addr(Id) * 0x2000 + 0x1800), InvalidRegion);
  }
  // Remove every other region; lookups adjust.
  for (RegionId Id = 0; Id < Count; Id += 2)
    Table.remove(Id);
  for (RegionId Id = 0; Id < Count; ++Id)
    EXPECT_EQ(Table.lookup(Addr(Id) * 0x2000 + 0x500),
              (Id % 2 == 0) ? InvalidRegion : Id);
}

INSTANTIATE_TEST_SUITE_P(Sizes, RegionSweep,
                         ::testing::Values(1, 2, 17, 64, 1024));

//===----------------------------------------------------------------------===//
// Graceful degradation: CAM exhaustion falls back to counted MESI
//===----------------------------------------------------------------------===//

namespace {

/// A small deterministic workload: mark regions, touch their blocks from
/// two cores, unmark. Returns the summed latency of every operation.
Cycles runRegionWorkload(CoherenceController &Ctrl) {
  const MachineConfig &Config = Ctrl.config();
  Cycles Total = 0;
  for (RegionId Id = 0; Id < 8; ++Id) {
    Addr Start = 0x10000 + Addr(Id) * 0x1000;
    Total += Ctrl.addRegion(Id, Start, Start + 0x400);
    for (Addr A = Start; A < Start + 0x400; A += Config.BlockSize) {
      Total += Ctrl.access(0, A, 8, AccessType::Store);
      Total += Ctrl.access(1, A + 8, 8, AccessType::Store);
      Total += Ctrl.access(1, A, 4, AccessType::Load);
    }
    Total += Ctrl.removeRegion(Id, 0);
  }
  return Total;
}

} // namespace

TEST(RegionTableFallback, OverflowDegradesToCountedMesiFallback) {
  MachineConfig Config = MachineConfig::dualSocket();
  Config.Protocol = ProtocolKind::Warden;
  FaultPlan Faults;
  Faults.RegionTableCapacity = 2; // Force exhaustion after two regions.
  CoherenceController Ctrl(Config, Faults);

  runRegionWorkload(Ctrl);
  const CoherenceStats &Stats = Ctrl.stats();
  // Two regions fit at a time and each is removed before the next is
  // added, so the table never actually fills with this workload shape;
  // hold two regions open to exhaust it for real.
  EXPECT_EQ(Stats.RegionOverflows, 0u);

  ASSERT_EQ(Ctrl.addRegion(100, 0x100000, 0x100400), 2u);
  ASSERT_EQ(Ctrl.addRegion(101, 0x200000, 0x200400), 2u);
  std::uint64_t Before = Ctrl.stats().RegionFallbacks;
  // The third concurrent region overflows the CAM: zero cycles, counted,
  // and its accesses run under plain MESI.
  EXPECT_EQ(Ctrl.addRegion(102, 0x300000, 0x300400), 0u);
  EXPECT_EQ(Ctrl.stats().RegionOverflows, 1u);
  EXPECT_EQ(Ctrl.stats().RegionFallbacks, Before + 1);

  std::uint64_t GrantsBefore = Ctrl.stats().WardGrants;
  Ctrl.access(0, 0x300000, 8, AccessType::Store);
  const DirEntry *Entry = Ctrl.directoryEntry(0x300000);
  ASSERT_NE(Entry, nullptr);
  EXPECT_EQ(Entry->State, DirState::Modified); // MESI, not Ward.
  EXPECT_EQ(Ctrl.stats().WardGrants, GrantsBefore);

  // Removing an untracked region is a harmless no-op.
  EXPECT_EQ(Ctrl.removeRegion(102, 0), 0u);
}

TEST(RegionTableFallback, MalformedRegionRequestsAreCountedNotFatal) {
  MachineConfig Config = MachineConfig::singleSocket();
  Config.Protocol = ProtocolKind::Warden;
  CoherenceController Ctrl(Config);

  EXPECT_EQ(Ctrl.addRegion(1, 0x2000, 0x2000), 0u); // Empty interval.
  EXPECT_EQ(Ctrl.addRegion(2, 0x3000, 0x1000), 0u); // Inverted interval.
  ASSERT_EQ(Ctrl.addRegion(3, 0x4000, 0x5000), 2u);
  EXPECT_EQ(Ctrl.addRegion(3, 0x8000, 0x9000), 0u); // Duplicate id.
  EXPECT_EQ(Ctrl.addRegion(4, 0x4800, 0x5800), 0u); // Overlap.
  EXPECT_EQ(Ctrl.stats().RegionFallbacks, 4u);
  EXPECT_EQ(Ctrl.stats().RegionOverflows, 0u);
  EXPECT_EQ(Ctrl.regionTable().size(), 1u);
}

TEST(RegionTableFallback, ExhaustedTableRunsAreCycleDeterministic) {
  MachineConfig Config = MachineConfig::dualSocket();
  Config.Protocol = ProtocolKind::Warden;
  FaultPlan Faults;
  Faults.RegionTableCapacity = 0; // Every region falls back to MESI.

  auto Run = [&]() {
    CoherenceController Ctrl(Config, Faults);
    Cycles Total = runRegionWorkload(Ctrl);
    EXPECT_EQ(Ctrl.stats().RegionOverflows, 8u);
    EXPECT_EQ(Ctrl.stats().RegionFallbacks, 8u);
    EXPECT_EQ(Ctrl.stats().WardGrants, 0u);
    return Total;
  };
  Cycles First = Run();
  Cycles Second = Run();
  EXPECT_EQ(First, Second);

  // And a capacity-0 run costs the same cycles as the same workload under
  // plain MESI: the fallback path charges nothing extra.
  CoherenceController Mesi(
      [&] {
        MachineConfig C = Config;
        C.Protocol = ProtocolKind::Mesi;
        return C;
      }());
  EXPECT_EQ(First, runRegionWorkload(Mesi));
}

TEST(RegionTable, MruCacheSurvivesRepeatedHitsAndMisses) {
  RegionTable Table(16);
  ASSERT_EQ(Table.add(1, 0x1000, 0x2000), RegionTable::AddResult::Added);
  ASSERT_EQ(Table.add(2, 0x4000, 0x5000), RegionTable::AddResult::Added);
  // Repeated hits inside one region (exercises the MRU hit interval).
  for (int I = 0; I < 100; ++I)
    EXPECT_EQ(Table.lookup(0x1000 + static_cast<Addr>(I)), 1u);
  // Repeated misses in the gap between the regions (the cached miss
  // interval): still misses, and boundaries stay exact.
  for (int I = 0; I < 100; ++I)
    EXPECT_EQ(Table.lookup(0x2000 + static_cast<Addr>(I)), InvalidRegion);
  EXPECT_EQ(Table.lookup(0x1fff), 1u);
  EXPECT_EQ(Table.lookup(0x4000), 2u);
  // Misses below the first and above the last region (open-ended gaps).
  EXPECT_EQ(Table.lookup(0x0), InvalidRegion);
  EXPECT_EQ(Table.lookup(0xffffffff), InvalidRegion);
}

TEST(RegionTable, MruCacheInvalidatedByAdd) {
  RegionTable Table(16);
  ASSERT_EQ(Table.add(1, 0x1000, 0x2000), RegionTable::AddResult::Added);
  // Prime the miss cache with the gap above region 1...
  EXPECT_EQ(Table.lookup(0x3000), InvalidRegion);
  // ...then add a region inside that cached gap. The lookup must see it.
  ASSERT_EQ(Table.add(2, 0x2800, 0x3800), RegionTable::AddResult::Added);
  EXPECT_EQ(Table.lookup(0x3000), 2u);
}

TEST(RegionTable, MruCacheInvalidatedByRemove) {
  RegionTable Table(16);
  ASSERT_EQ(Table.add(1, 0x1000, 0x2000), RegionTable::AddResult::Added);
  // Prime the hit cache...
  EXPECT_EQ(Table.lookup(0x1800), 1u);
  // ...then remove the region. The stale interval must not answer.
  ASSERT_TRUE(Table.remove(1).has_value());
  EXPECT_EQ(Table.lookup(0x1800), InvalidRegion);
}

TEST(RegionTable, GetAfterInterleavedAddRemove) {
  RegionTable Table(16);
  for (RegionId Id = 0; Id < 8; ++Id)
    ASSERT_EQ(Table.add(Id, Addr(Id) * 0x1000, Addr(Id) * 0x1000 + 0x800),
              RegionTable::AddResult::Added);
  for (RegionId Id = 0; Id < 8; Id += 2)
    ASSERT_TRUE(Table.remove(Id).has_value());
  for (RegionId Id = 0; Id < 8; ++Id) {
    std::optional<WardRegion> Region = Table.get(Id);
    if (Id % 2 == 0) {
      EXPECT_FALSE(Region.has_value());
    } else {
      ASSERT_TRUE(Region.has_value());
      EXPECT_EQ(Region->Start, Addr(Id) * 0x1000);
      EXPECT_EQ(Table.lookup(Region->Start), Id);
    }
  }
  EXPECT_EQ(Table.size(), 4u);
}
