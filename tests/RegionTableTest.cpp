//===- tests/RegionTableTest.cpp - WARD region table unit tests --------------===//
//
// Part of the WARDen reproduction project.
//
//===----------------------------------------------------------------------===//

#include "src/coherence/RegionTable.h"

#include <gtest/gtest.h>

using namespace warden;

TEST(RegionTable, LookupMissOnEmpty) {
  RegionTable Table(16);
  EXPECT_EQ(Table.lookup(0x1000), InvalidRegion);
  EXPECT_EQ(Table.size(), 0u);
}

TEST(RegionTable, AddAndLookupBoundaries) {
  RegionTable Table(16);
  ASSERT_TRUE(Table.add(7, 0x1000, 0x2000));
  EXPECT_EQ(Table.lookup(0x0fff), InvalidRegion);
  EXPECT_EQ(Table.lookup(0x1000), 7u); // Inclusive start.
  EXPECT_EQ(Table.lookup(0x1fff), 7u);
  EXPECT_EQ(Table.lookup(0x2000), InvalidRegion); // Exclusive end.
}

TEST(RegionTable, RemoveReturnsInterval) {
  RegionTable Table(16);
  Table.add(1, 0x1000, 0x1400);
  std::optional<WardRegion> Removed = Table.remove(1);
  ASSERT_TRUE(Removed.has_value());
  EXPECT_EQ(Removed->Start, 0x1000u);
  EXPECT_EQ(Removed->End, 0x1400u);
  EXPECT_EQ(Table.lookup(0x1200), InvalidRegion);
  EXPECT_FALSE(Table.remove(1).has_value());
}

TEST(RegionTable, RejectsOverlaps) {
  RegionTable Table(16);
  ASSERT_TRUE(Table.add(1, 0x1000, 0x2000));
  EXPECT_FALSE(Table.add(2, 0x1800, 0x2800)); // Overlaps tail.
  EXPECT_FALSE(Table.add(3, 0x0800, 0x1001)); // Overlaps head.
  EXPECT_FALSE(Table.add(4, 0x1100, 0x1200)); // Nested.
  EXPECT_TRUE(Table.add(5, 0x2000, 0x2800));  // Adjacent is fine.
  EXPECT_TRUE(Table.add(6, 0x0800, 0x1000));
  EXPECT_EQ(Table.size(), 3u);
}

TEST(RegionTable, CapacityOverflowRejected) {
  RegionTable Table(4);
  for (RegionId Id = 0; Id < 4; ++Id)
    ASSERT_TRUE(Table.add(Id, Addr(Id) * 0x1000, Addr(Id) * 0x1000 + 0x800));
  EXPECT_TRUE(Table.full());
  EXPECT_FALSE(Table.add(99, 0x100000, 0x101000));
  // Removing one frees a slot.
  Table.remove(0);
  EXPECT_TRUE(Table.add(99, 0x100000, 0x101000));
}

TEST(RegionTable, PeakOccupancyTracksHighWaterMark) {
  RegionTable Table(8);
  Table.add(0, 0x0, 0x100);
  Table.add(1, 0x1000, 0x1100);
  Table.add(2, 0x2000, 0x2100);
  Table.remove(1);
  Table.remove(2);
  EXPECT_EQ(Table.size(), 1u);
  EXPECT_EQ(Table.peakOccupancy(), 3u);
}

TEST(RegionTable, GetReturnsInterval) {
  RegionTable Table(8);
  Table.add(5, 0x4000, 0x5000);
  std::optional<WardRegion> Region = Table.get(5);
  ASSERT_TRUE(Region.has_value());
  EXPECT_EQ(Region->size(), 0x1000u);
  EXPECT_TRUE(Region->contains(0x4800));
  EXPECT_FALSE(Region->contains(0x5000));
  EXPECT_FALSE(Table.get(6).has_value());
}

class RegionSweep : public ::testing::TestWithParam<unsigned> {};

TEST_P(RegionSweep, ManyDisjointRegionsResolveCorrectly) {
  unsigned Count = GetParam();
  RegionTable Table(Count);
  for (RegionId Id = 0; Id < Count; ++Id)
    ASSERT_TRUE(
        Table.add(Id, Addr(Id) * 0x2000, Addr(Id) * 0x2000 + 0x1000));
  for (RegionId Id = 0; Id < Count; ++Id) {
    EXPECT_EQ(Table.lookup(Addr(Id) * 0x2000 + 0x500), Id);
    EXPECT_EQ(Table.lookup(Addr(Id) * 0x2000 + 0x1800), InvalidRegion);
  }
  // Remove every other region; lookups adjust.
  for (RegionId Id = 0; Id < Count; Id += 2)
    Table.remove(Id);
  for (RegionId Id = 0; Id < Count; ++Id)
    EXPECT_EQ(Table.lookup(Addr(Id) * 0x2000 + 0x500),
              (Id % 2 == 0) ? InvalidRegion : Id);
}

INSTANTIATE_TEST_SUITE_P(Sizes, RegionSweep,
                         ::testing::Values(1, 2, 17, 64, 1024));
