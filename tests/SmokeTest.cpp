//===- tests/SmokeTest.cpp - End-to-end smoke test -------------------------===//
//
// Part of the WARDen reproduction project.
//
//===----------------------------------------------------------------------===//

#include "src/core/WardenSystem.h"
#include "src/rt/SimArray.h"
#include "src/rt/Stdlib.h"

#include <gtest/gtest.h>

using namespace warden;

TEST(Smoke, TabulateRunsUnderBothProtocols) {
  TaskGraph Graph = WardenSystem::record([](Runtime &Rt) {
    SimArray<int> Out = stdlib::tabulate<int>(
        Rt, 1024, [](std::size_t I) { return static_cast<int>(I * I); }, 32);
    EXPECT_EQ(Out.peek(10), 100);
  });
  ComparisonResult Cmp = WardenSystem::compareProtocols(
      Graph, MachineConfig::dualSocket(),
      {ProtocolKind::Mesi, ProtocolKind::Warden});
  EXPECT_GT(Cmp.run(ProtocolKind::Mesi).Makespan, 0u);
  EXPECT_GT(Cmp.run(ProtocolKind::Warden).Makespan, 0u);
  EXPECT_EQ(Cmp.Baseline, ProtocolKind::Mesi);
  EXPECT_TRUE(Cmp.has(ProtocolKind::Warden));
  EXPECT_FALSE(Cmp.has(ProtocolKind::Sisd));
}
