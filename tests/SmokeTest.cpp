//===- tests/SmokeTest.cpp - End-to-end smoke test -------------------------===//
//
// Part of the WARDen reproduction project.
//
//===----------------------------------------------------------------------===//

#include "src/core/WardenSystem.h"
#include "src/rt/SimArray.h"
#include "src/rt/Stdlib.h"

#include <gtest/gtest.h>

using namespace warden;

TEST(Smoke, TabulateRunsUnderBothProtocols) {
  TaskGraph Graph = WardenSystem::record([](Runtime &Rt) {
    SimArray<int> Out = stdlib::tabulate<int>(
        Rt, 1024, [](std::size_t I) { return static_cast<int>(I * I); }, 32);
    EXPECT_EQ(Out.peek(10), 100);
  });
  ProtocolComparison Cmp =
      WardenSystem::compare(Graph, MachineConfig::dualSocket());
  EXPECT_GT(Cmp.Mesi.Makespan, 0u);
  EXPECT_GT(Cmp.Warden.Makespan, 0u);
  EXPECT_EQ(Cmp.Mesi.Coherence.Invalidations + 1,
            Cmp.Mesi.Coherence.Invalidations + 1); // Placeholder sanity.
}
