//===- tests/ProtocolTest.cpp - Backend registry + SISD unit tests -----------===//
//
// Part of the WARDen reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Tests for the pluggable-backend layer introduced with Protocol.h: the
/// id <-> kind mapping and the protocol registry, the SISD backend's
/// self-invalidation/self-downgrade transitions (driven directly through a
/// CoherenceController, like CoherenceTest does for MESI/WARDen), the
/// N-protocol ComparisonResult API, the protocol-list parser the verify
/// CLI uses, and the backends' declared consistency models.
///
//===----------------------------------------------------------------------===//

#include "src/coherence/CoherenceController.h"
#include "src/coherence/SisdProtocol.h"
#include "src/core/WardenSystem.h"
#include "src/rt/Stdlib.h"

#include <gtest/gtest.h>

#include <algorithm>

using namespace warden;

namespace {

MachineConfig testConfig(ProtocolKind Protocol, unsigned Sockets = 1) {
  MachineConfig Config =
      Sockets == 1 ? MachineConfig::singleSocket() : MachineConfig::dualSocket();
  Config.Protocol = Protocol;
  return Config;
}

constexpr Addr BlockA = 0x10000;
constexpr Addr BlockB = 0x20000;

TaskGraph tinyProgram() {
  return WardenSystem::record([](Runtime &Rt) {
    SimArray<long> Doubles = stdlib::tabulate<long>(
        Rt, 1 << 10, [](std::size_t I) { return 2 * long(I); }, 64);
    (void)stdlib::sum(Rt, Doubles, 64);
  });
}

} // namespace

// --- Id mapping and registry --------------------------------------------------

TEST(ProtocolRegistry, IdRoundTripsForEveryKind) {
  for (ProtocolKind Kind : allProtocolKinds()) {
    const char *Id = protocolId(Kind);
    ASSERT_NE(Id, nullptr);
    std::optional<ProtocolKind> Parsed = parseProtocolId(Id);
    ASSERT_TRUE(Parsed.has_value()) << Id;
    EXPECT_EQ(*Parsed, Kind) << Id;
    EXPECT_STRNE(protocolName(Kind), "");
  }
}

TEST(ProtocolRegistry, ParseRejectsUnknownIds) {
  EXPECT_FALSE(parseProtocolId("moesi").has_value());
  EXPECT_FALSE(parseProtocolId("").has_value());
  // Ids are the stable lowercase keys; display names do not parse.
  EXPECT_FALSE(parseProtocolId("MESI").has_value());
  EXPECT_FALSE(parseProtocolId("WARDen").has_value());
}

TEST(ProtocolRegistry, BuiltinsAreRegisteredInCanonicalOrder) {
  std::vector<std::string> Ids = registeredProtocolIds();
  ASSERT_GE(Ids.size(), 3u);
  auto IndexOf = [&](const char *Id) {
    return std::find(Ids.begin(), Ids.end(), Id) - Ids.begin();
  };
  EXPECT_LT(IndexOf("mesi"), std::ptrdiff_t(Ids.size()));
  EXPECT_LT(IndexOf("warden"), std::ptrdiff_t(Ids.size()));
  EXPECT_LT(IndexOf("sisd"), std::ptrdiff_t(Ids.size()));
  EXPECT_LT(IndexOf("mesi"), IndexOf("warden"));
  EXPECT_LT(IndexOf("warden"), IndexOf("sisd"));
}

TEST(ProtocolRegistry, ControllerBindsTheConfiguredBackend) {
  for (ProtocolKind Kind : allProtocolKinds()) {
    CoherenceController C(testConfig(Kind));
    EXPECT_EQ(C.protocol().kind(), Kind) << protocolId(Kind);
  }
}

TEST(ProtocolRegistry, RegisterReplacesAnExistingId) {
  // Swap the sisd factory for a counting wrapper, prove the next controller
  // uses it, then restore the stock factory so later tests see the
  // original behaviour (the registry is process-global).
  static int Constructions = 0;
  Constructions = 0;
  bool WasNew = registerProtocol(
      "sisd", ProtocolKind::Sisd, [](CoherenceController &Controller) {
        ++Constructions;
        return std::make_unique<SisdProtocol>(Controller);
      });
  EXPECT_FALSE(WasNew); // Replaced, not added.
  {
    CoherenceController C(testConfig(ProtocolKind::Sisd));
    EXPECT_EQ(Constructions, 1);
    EXPECT_EQ(C.protocol().kind(), ProtocolKind::Sisd);
  }
  WasNew = registerProtocol("sisd", ProtocolKind::Sisd,
                            [](CoherenceController &Controller) {
                              return std::make_unique<SisdProtocol>(Controller);
                            });
  EXPECT_FALSE(WasNew);
}

TEST(ProtocolRegistry, MakeProtocolUnknownKindListsTheRegistry) {
  // A kind value with no registered factory (the enum only has the three
  // built-ins, so any out-of-range value is unknown by construction).
  auto Bogus = static_cast<ProtocolKind>(99);
  CoherenceController C(testConfig(ProtocolKind::Mesi));
  try {
    makeProtocol(Bogus, C);
    FAIL() << "makeProtocol accepted an unregistered kind";
  } catch (const std::invalid_argument &E) {
    std::string Message = E.what();
    EXPECT_NE(Message.find("no protocol backend registered"),
              std::string::npos)
        << Message;
    // The message must list the valid ids so a bad --protocol= value is
    // self-correcting at the command line.
    EXPECT_NE(Message.find("mesi"), std::string::npos) << Message;
    EXPECT_NE(Message.find("warden"), std::string::npos) << Message;
    EXPECT_NE(Message.find("sisd"), std::string::npos) << Message;
  }
}

// --- The protocol-list parser (the verify CLI's --protocol=) ------------------

TEST(ParseProtocolList, AcceptsCommaSeparatedIds) {
  std::string Error;
  std::optional<std::vector<ProtocolKind>> Kinds =
      parseProtocolList("mesi,warden,sisd", Error);
  ASSERT_TRUE(Kinds.has_value()) << Error;
  ASSERT_EQ(Kinds->size(), 3u);
  EXPECT_EQ((*Kinds)[0], ProtocolKind::Mesi);
  EXPECT_EQ((*Kinds)[1], ProtocolKind::Warden);
  EXPECT_EQ((*Kinds)[2], ProtocolKind::Sisd);

  Kinds = parseProtocolList("sisd", Error);
  ASSERT_TRUE(Kinds.has_value()) << Error;
  EXPECT_EQ(Kinds->size(), 1u);
}

TEST(ParseProtocolList, RejectsTrailingComma) {
  std::string Error;
  EXPECT_FALSE(parseProtocolList("mesi,warden,", Error).has_value());
  EXPECT_NE(Error.find("empty protocol id"), std::string::npos) << Error;
  EXPECT_FALSE(parseProtocolList(",mesi", Error).has_value());
  EXPECT_FALSE(parseProtocolList("mesi,,warden", Error).has_value());
}

TEST(ParseProtocolList, RejectsDuplicateIds) {
  std::string Error;
  EXPECT_FALSE(parseProtocolList("mesi,warden,mesi", Error).has_value());
  EXPECT_NE(Error.find("duplicate protocol id 'mesi'"), std::string::npos)
      << Error;
}

TEST(ParseProtocolList, RejectsUnknownIdListingTheRegistry) {
  std::string Error;
  EXPECT_FALSE(parseProtocolList("mesi,moesi", Error).has_value());
  EXPECT_NE(Error.find("unknown protocol id 'moesi'"), std::string::npos)
      << Error;
  EXPECT_NE(Error.find("registered ids"), std::string::npos) << Error;
  EXPECT_NE(Error.find("sisd"), std::string::npos) << Error;
}

TEST(ParseProtocolList, RejectsTheEmptyList) {
  std::string Error;
  EXPECT_FALSE(parseProtocolList("", Error).has_value());
  EXPECT_NE(Error.find("empty protocol list"), std::string::npos) << Error;
}

// --- Declared consistency models ----------------------------------------------

TEST(ConsistencyModelDecl, EagerBackendsDeclareScForDrfLazyDeclareRa) {
  auto ModelOf = [](ProtocolKind Kind) {
    CoherenceController C(testConfig(Kind));
    return C.protocol().consistencyModel();
  };
  EXPECT_EQ(ModelOf(ProtocolKind::Mesi), ConsistencyModel::ScForDrf);
  EXPECT_EQ(ModelOf(ProtocolKind::Warden), ConsistencyModel::ScForDrf);
  EXPECT_EQ(ModelOf(ProtocolKind::Sisd), ConsistencyModel::ReleaseAcquire);
  EXPECT_EQ(ModelOf(ProtocolKind::Racoh), ConsistencyModel::ReleaseAcquire);
  EXPECT_STREQ(consistencyModelName(ConsistencyModel::ScForDrf),
               "sc-for-drf");
  EXPECT_STREQ(consistencyModelName(ConsistencyModel::ReleaseAcquire),
               "release-acquire");
}

// --- SISD transitions ---------------------------------------------------------

TEST(Sisd, LoadFillsSharedAndLeavesDirectoryEmpty) {
  CoherenceController C(testConfig(ProtocolKind::Sisd));
  C.access(0, BlockA, 8, AccessType::Load);
  const CacheLine *Line = C.privateLine(0, BlockA);
  ASSERT_NE(Line, nullptr);
  EXPECT_EQ(Line->State, LineState::Shared);
  EXPECT_EQ(C.directoryEntry(BlockA), nullptr);
}

TEST(Sisd, StoreFillsWriteMarkedWithoutCoherenceTraffic) {
  CoherenceController C(testConfig(ProtocolKind::Sisd));
  C.access(0, BlockA, 8, AccessType::Store);
  const CacheLine *Line = C.privateLine(0, BlockA);
  ASSERT_NE(Line, nullptr);
  EXPECT_EQ(Line->State, LineState::Ward);
  EXPECT_TRUE(Line->Dirty.any());
  EXPECT_EQ(C.directoryEntry(BlockA), nullptr);
  EXPECT_EQ(C.stats().Invalidations, 0u);
  EXPECT_EQ(C.stats().Downgrades, 0u);
}

TEST(Sisd, StoreHitOnOwnReadCopyUpgradesInPlace) {
  CoherenceController C(testConfig(ProtocolKind::Sisd));
  C.access(0, BlockA, 8, AccessType::Load);
  std::uint64_t L3Before = C.stats().L3Accesses;
  C.access(0, BlockA, 8, AccessType::Store);
  // The upgrade is local: same-core write permission without another trip
  // to the home slice.
  EXPECT_EQ(C.stats().L3Accesses, L3Before);
  EXPECT_EQ(C.privateLine(0, BlockA)->State, LineState::Ward);
}

TEST(Sisd, RemoteCoresAreNeverInterrupted) {
  CoherenceController C(testConfig(ProtocolKind::Sisd));
  C.access(0, BlockA, 8, AccessType::Load);
  C.access(1, BlockA, 8, AccessType::Store);
  // The defining property: core 1's write does not invalidate core 0's
  // copy — staleness is resolved by core 0's own next acquire instead.
  const CacheLine *Reader = C.privateLine(0, BlockA);
  ASSERT_NE(Reader, nullptr);
  EXPECT_EQ(Reader->State, LineState::Shared);
  EXPECT_EQ(C.stats().Invalidations, 0u);
  EXPECT_EQ(C.stats().CacheToCache, 0u);
}

TEST(Sisd, ReleaseSelfDowngradesDirtyLines) {
  CoherenceController C(testConfig(ProtocolKind::Sisd));
  C.access(0, BlockA, 8, AccessType::Store);
  C.access(0, BlockB, 8, AccessType::Load);
  Cycles Cost = C.syncRelease(0);
  EXPECT_GT(Cost, 0u);
  // The dirty line was published and kept as a read copy; the clean read
  // copy was left alone.
  const CacheLine *Written = C.privateLine(0, BlockA);
  ASSERT_NE(Written, nullptr);
  EXPECT_EQ(Written->State, LineState::Shared);
  EXPECT_FALSE(Written->Dirty.any());
  EXPECT_EQ(C.privateLine(0, BlockB)->State, LineState::Shared);
  EXPECT_EQ(C.stats().Downgrades, 1u);
  EXPECT_GE(C.stats().Writebacks, 1u);
}

TEST(Sisd, ReleaseWithNothingDirtyIsFree) {
  CoherenceController C(testConfig(ProtocolKind::Sisd));
  C.access(0, BlockA, 8, AccessType::Load);
  EXPECT_EQ(C.syncRelease(0), 0u);
  EXPECT_EQ(C.stats().Downgrades, 0u);
}

TEST(Sisd, AcquireSelfInvalidatesEverythingResident) {
  CoherenceController C(testConfig(ProtocolKind::Sisd));
  C.access(0, BlockA, 8, AccessType::Load);
  C.access(0, BlockB, 8, AccessType::Load);
  C.syncAcquire(0);
  EXPECT_EQ(C.privateLine(0, BlockA), nullptr);
  EXPECT_EQ(C.privateLine(0, BlockB), nullptr);
  EXPECT_EQ(C.stats().Invalidations, 2u);
}

TEST(Sisd, AcquireWithoutInterveningReleaseStillPublishesDirtyData) {
  CoherenceController C(testConfig(ProtocolKind::Sisd));
  C.access(0, BlockA, 8, AccessType::Store);
  C.syncAcquire(0);
  EXPECT_EQ(C.privateLine(0, BlockA), nullptr);
  EXPECT_GE(C.stats().Writebacks, 1u); // Unpublished bytes were pushed first.
  EXPECT_EQ(C.stats().Invalidations, 1u);
}

TEST(Sisd, EagerProtocolsKeepSyncHooksFree) {
  // Byte-identity of MESI/WARDen with the pre-backend engine depends on
  // their sync hooks being strict no-ops.
  for (ProtocolKind Kind : {ProtocolKind::Mesi, ProtocolKind::Warden}) {
    CoherenceController C(testConfig(Kind));
    C.access(0, BlockA, 8, AccessType::Store);
    CoherenceStats Before = C.stats();
    EXPECT_EQ(C.syncAcquire(0), 0u);
    EXPECT_EQ(C.syncRelease(0), 0u);
    EXPECT_EQ(C.stats().Writebacks, Before.Writebacks);
    EXPECT_EQ(C.stats().Invalidations, Before.Invalidations);
    EXPECT_EQ(C.stats().Downgrades, Before.Downgrades);
    EXPECT_EQ(C.privateLine(0, BlockA)->State, LineState::Modified);
  }
}

// --- Racoh transitions --------------------------------------------------------

namespace {

MachineConfig racohTwoNode() {
  MachineConfig Config = MachineConfig::multiNode(2);
  Config.Protocol = ProtocolKind::Racoh;
  return Config;
}

} // namespace

TEST(Racoh, RemoteCoresAreNeverInterruptedAndWritesAreLogged) {
  CoherenceController C(testConfig(ProtocolKind::Racoh));
  C.access(0, BlockA, 8, AccessType::Load);
  C.access(1, BlockA, 8, AccessType::Store);
  // Directory-less like SISD: the write disturbs nobody...
  const CacheLine *Reader = C.privateLine(0, BlockA);
  ASSERT_NE(Reader, nullptr);
  EXPECT_EQ(Reader->State, LineState::Shared);
  EXPECT_EQ(C.directoryEntry(BlockA), nullptr);
  EXPECT_EQ(C.stats().Invalidations, 0u);
  // ...but unlike SISD it is remembered, pending the writer's release.
  EXPECT_TRUE(C.protocol().blockHasUnpublishedWrite(BlockA));
}

TEST(Racoh, ReleaseDowngradesAndPublishesTheLog) {
  CoherenceController C(testConfig(ProtocolKind::Racoh));
  C.access(0, BlockA, 8, AccessType::Store);
  C.access(0, BlockB, 8, AccessType::Load);
  Cycles Cost = C.syncRelease(0);
  EXPECT_GT(Cost, 0u);
  const CacheLine *Written = C.privateLine(0, BlockA);
  ASSERT_NE(Written, nullptr);
  EXPECT_EQ(Written->State, LineState::Shared);
  EXPECT_FALSE(Written->Dirty.any());
  EXPECT_EQ(C.stats().Downgrades, 1u);
  EXPECT_EQ(C.stats().LogPublishes, 1u);
  EXPECT_EQ(C.stats().LogRecordsPublished, 1u);
  // The write is now published: no core holds it pending any more.
  EXPECT_FALSE(C.protocol().blockHasUnpublishedWrite(BlockA));
}

TEST(Racoh, AcquireInvalidatesOnlyLoggedLines) {
  CoherenceController C(testConfig(ProtocolKind::Racoh));
  // Core 1 warms two read copies; core 0 then writes one of them.
  C.access(1, BlockA, 8, AccessType::Load);
  C.access(1, BlockB, 8, AccessType::Load);
  C.access(0, BlockA, 8, AccessType::Store);
  C.syncRelease(0);
  C.syncAcquire(1);
  // The defining difference from SISD: only the logged line dies, the
  // untouched read copy survives.
  EXPECT_EQ(C.privateLine(1, BlockA), nullptr);
  EXPECT_NE(C.privateLine(1, BlockB), nullptr);
  EXPECT_EQ(C.stats().LogInvalidations, 1u);
  EXPECT_GE(C.stats().PreInvalidateAvoided, 1u);
}

TEST(Racoh, OwnLogRecordsAreSkippedAtAcquires) {
  CoherenceController C(testConfig(ProtocolKind::Racoh));
  C.access(0, BlockA, 8, AccessType::Store);
  C.syncRelease(0);
  C.syncAcquire(0);
  // The classic own-log shortcut: a core's acquire consumes its own
  // published record without shooting down its (up-to-date) copy.
  EXPECT_NE(C.privateLine(0, BlockA), nullptr);
  EXPECT_EQ(C.stats().LogInvalidations, 0u);
  EXPECT_GE(C.stats().LogRecordsConsumed, 1u);
}

TEST(Racoh, VectorClockPreventsReconsumption) {
  CoherenceController C(testConfig(ProtocolKind::Racoh));
  C.access(0, BlockA, 8, AccessType::Store);
  C.syncRelease(0);
  C.syncAcquire(1);
  std::uint64_t Consumed = C.stats().LogRecordsConsumed;
  // Nothing new was published: the cursor is at the tail, the second
  // acquire drains nothing.
  C.syncAcquire(1);
  EXPECT_EQ(C.stats().LogRecordsConsumed, Consumed);
}

TEST(Racoh, SingleNodeMachineHasNoCrossNodeTraffic) {
  // The issue's SISD-class degeneration claim: with one node every queue
  // is local, so the whole release/acquire protocol runs without a single
  // node-interconnect hop or inter-node message.
  CoherenceController C(testConfig(ProtocolKind::Racoh));
  C.access(1, BlockA, 8, AccessType::Load);
  C.access(0, BlockA, 8, AccessType::Store);
  C.syncRelease(0);
  C.syncAcquire(1);
  EXPECT_EQ(C.privateLine(1, BlockA), nullptr); // Coherence still works.
  EXPECT_EQ(C.stats().CrossNodeHops, 0u);
  EXPECT_EQ(C.stats().MsgsInterNode, 0u);
  EXPECT_EQ(C.stats().DataInterNode, 0u);
}

TEST(Racoh, CrossNodeAcquirePaysTheInterconnect) {
  CoherenceController C(racohTwoNode());
  CoreId Remote = 12; // First core of socket 1 = node 1.
  C.access(Remote, BlockA, 8, AccessType::Load);
  C.access(0, BlockA, 8, AccessType::Store);
  C.syncRelease(0);
  Cycles Cost = C.syncAcquire(Remote);
  // Fetching node 0's news costs a round trip on the non-coherent
  // interconnect, and the stale copy dies.
  EXPECT_GE(Cost, 2 * MachineConfig().NodeInterconnectLatency);
  EXPECT_EQ(C.stats().CrossNodeHops, 1u);
  EXPECT_GE(C.stats().MsgsInterNode, 1u);
  EXPECT_EQ(C.privateLine(Remote, BlockA), nullptr);
}

TEST(Racoh, FullQueueBackpressuresTheRelease) {
  MachineConfig Config = racohTwoNode();
  Config.NodeLogQueueCapacity = 1;
  CoherenceController C(Config);
  C.access(0, BlockA, 8, AccessType::Store);
  C.access(0, BlockB, 8, AccessType::Store);
  // Two records into a one-slot queue: the second publish must stall and
  // force-drain the head before it fits.
  C.syncRelease(0);
  EXPECT_GE(C.stats().LogBackpressureStalls, 1u);
  EXPECT_EQ(C.stats().LogRecordsPublished, 2u);
  EXPECT_LE(C.stats().LogQueuePeakOccupancy, 1u);
}

// --- The N-protocol comparison API --------------------------------------------

TEST(CompareProtocols, RunsEveryRequestedProtocolOnce) {
  TaskGraph Graph = tinyProgram();
  RunOptions Options;
  Options.Repeats = 1;
  // Request every registered kind so the comparison API is exercised (and
  // this test stays armed) as new backends land.
  std::vector<ProtocolKind> Kinds = allProtocolKinds();
  ComparisonResult Cmp = WardenSystem::compareProtocols(
      Graph, MachineConfig::dualSocket(), Kinds, Options);
  EXPECT_EQ(Cmp.Baseline, ProtocolKind::Mesi);
  ASSERT_EQ(Cmp.Runs.size(), Kinds.size());
  for (ProtocolKind Kind : Kinds) {
    ASSERT_TRUE(Cmp.has(Kind)) << protocolId(Kind);
    EXPECT_EQ(Cmp.run(Kind).Protocol, Kind);
    EXPECT_GT(Cmp.run(Kind).Makespan, 0u);
  }
  EXPECT_DOUBLE_EQ(Cmp.speedup(ProtocolKind::Mesi), 1.0);
  EXPECT_GT(Cmp.speedup(ProtocolKind::Warden), 0.0);
  EXPECT_GT(Cmp.speedup(ProtocolKind::Sisd), 0.0);
  EXPECT_GT(Cmp.speedup(ProtocolKind::Racoh), 0.0);
}

TEST(CompareProtocols, RequestingExtraProtocolsDoesNotPerturbOthers) {
  TaskGraph Graph = tinyProgram();
  RunOptions Options;
  Options.Repeats = 1;
  MachineConfig Machine = MachineConfig::dualSocket();
  ComparisonResult Two = WardenSystem::compareProtocols(
      Graph, Machine, {ProtocolKind::Mesi, ProtocolKind::Warden}, Options);
  ComparisonResult Three = WardenSystem::compareProtocols(
      Graph, Machine,
      {ProtocolKind::Mesi, ProtocolKind::Warden, ProtocolKind::Sisd}, Options);
  for (ProtocolKind Kind : {ProtocolKind::Mesi, ProtocolKind::Warden}) {
    EXPECT_EQ(Two.run(Kind).Makespan, Three.run(Kind).Makespan);
    EXPECT_EQ(Two.run(Kind).Coherence.invPlusDown(),
              Three.run(Kind).Coherence.invPlusDown());
    EXPECT_DOUBLE_EQ(Two.run(Kind).Energy.totalProcessorNJ(),
                     Three.run(Kind).Energy.totalProcessorNJ());
  }
}

TEST(CompareProtocols, DuplicatesAreDeduplicatedAndEmptyThrows) {
  TaskGraph Graph = tinyProgram();
  RunOptions Options;
  Options.Repeats = 1;
  ComparisonResult Cmp = WardenSystem::compareProtocols(
      Graph, MachineConfig::singleSocket(),
      {ProtocolKind::Warden, ProtocolKind::Warden, ProtocolKind::Mesi},
      Options);
  EXPECT_EQ(Cmp.Runs.size(), 2u);
  // MESI is always preferred as the baseline when present, regardless of
  // request order.
  EXPECT_EQ(Cmp.Baseline, ProtocolKind::Mesi);
  EXPECT_THROW(WardenSystem::compareProtocols(
                   Graph, MachineConfig::singleSocket(), {}, Options),
               std::invalid_argument);
  EXPECT_THROW(Cmp.run(ProtocolKind::Sisd), std::out_of_range);
}

TEST(CompareProtocols, BaselineFallsBackToFirstWithoutMesi) {
  TaskGraph Graph = tinyProgram();
  RunOptions Options;
  Options.Repeats = 1;
  ComparisonResult Cmp = WardenSystem::compareProtocols(
      Graph, MachineConfig::singleSocket(),
      {ProtocolKind::Sisd, ProtocolKind::Warden}, Options);
  EXPECT_EQ(Cmp.Baseline, ProtocolKind::Sisd);
  EXPECT_EQ(&Cmp.baseline(), &Cmp.run(ProtocolKind::Sisd));
}
