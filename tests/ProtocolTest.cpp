//===- tests/ProtocolTest.cpp - Backend registry + SISD unit tests -----------===//
//
// Part of the WARDen reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Tests for the pluggable-backend layer introduced with Protocol.h: the
/// id <-> kind mapping and the protocol registry, the SISD backend's
/// self-invalidation/self-downgrade transitions (driven directly through a
/// CoherenceController, like CoherenceTest does for MESI/WARDen), the
/// N-protocol ComparisonResult API, and the deprecated ProtocolComparison
/// shim that must keep producing the same numbers for one more release.
///
//===----------------------------------------------------------------------===//

#include "src/coherence/CoherenceController.h"
#include "src/coherence/SisdProtocol.h"
#include "src/core/WardenSystem.h"
#include "src/rt/Stdlib.h"

#include <gtest/gtest.h>

#include <algorithm>

using namespace warden;

namespace {

MachineConfig testConfig(ProtocolKind Protocol, unsigned Sockets = 1) {
  MachineConfig Config =
      Sockets == 1 ? MachineConfig::singleSocket() : MachineConfig::dualSocket();
  Config.Protocol = Protocol;
  return Config;
}

constexpr Addr BlockA = 0x10000;
constexpr Addr BlockB = 0x20000;

TaskGraph tinyProgram() {
  return WardenSystem::record([](Runtime &Rt) {
    SimArray<long> Doubles = stdlib::tabulate<long>(
        Rt, 1 << 10, [](std::size_t I) { return 2 * long(I); }, 64);
    (void)stdlib::sum(Rt, Doubles, 64);
  });
}

} // namespace

// --- Id mapping and registry --------------------------------------------------

TEST(ProtocolRegistry, IdRoundTripsForEveryKind) {
  for (ProtocolKind Kind : allProtocolKinds()) {
    const char *Id = protocolId(Kind);
    ASSERT_NE(Id, nullptr);
    std::optional<ProtocolKind> Parsed = parseProtocolId(Id);
    ASSERT_TRUE(Parsed.has_value()) << Id;
    EXPECT_EQ(*Parsed, Kind) << Id;
    EXPECT_STRNE(protocolName(Kind), "");
  }
}

TEST(ProtocolRegistry, ParseRejectsUnknownIds) {
  EXPECT_FALSE(parseProtocolId("moesi").has_value());
  EXPECT_FALSE(parseProtocolId("").has_value());
  // Ids are the stable lowercase keys; display names do not parse.
  EXPECT_FALSE(parseProtocolId("MESI").has_value());
  EXPECT_FALSE(parseProtocolId("WARDen").has_value());
}

TEST(ProtocolRegistry, BuiltinsAreRegisteredInCanonicalOrder) {
  std::vector<std::string> Ids = registeredProtocolIds();
  ASSERT_GE(Ids.size(), 3u);
  auto IndexOf = [&](const char *Id) {
    return std::find(Ids.begin(), Ids.end(), Id) - Ids.begin();
  };
  EXPECT_LT(IndexOf("mesi"), std::ptrdiff_t(Ids.size()));
  EXPECT_LT(IndexOf("warden"), std::ptrdiff_t(Ids.size()));
  EXPECT_LT(IndexOf("sisd"), std::ptrdiff_t(Ids.size()));
  EXPECT_LT(IndexOf("mesi"), IndexOf("warden"));
  EXPECT_LT(IndexOf("warden"), IndexOf("sisd"));
}

TEST(ProtocolRegistry, ControllerBindsTheConfiguredBackend) {
  for (ProtocolKind Kind : allProtocolKinds()) {
    CoherenceController C(testConfig(Kind));
    EXPECT_EQ(C.protocol().kind(), Kind) << protocolId(Kind);
  }
}

TEST(ProtocolRegistry, RegisterReplacesAnExistingId) {
  // Swap the sisd factory for a counting wrapper, prove the next controller
  // uses it, then restore the stock factory so later tests see the
  // original behaviour (the registry is process-global).
  static int Constructions = 0;
  Constructions = 0;
  bool WasNew = registerProtocol(
      "sisd", ProtocolKind::Sisd, [](CoherenceController &Controller) {
        ++Constructions;
        return std::make_unique<SisdProtocol>(Controller);
      });
  EXPECT_FALSE(WasNew); // Replaced, not added.
  {
    CoherenceController C(testConfig(ProtocolKind::Sisd));
    EXPECT_EQ(Constructions, 1);
    EXPECT_EQ(C.protocol().kind(), ProtocolKind::Sisd);
  }
  WasNew = registerProtocol("sisd", ProtocolKind::Sisd,
                            [](CoherenceController &Controller) {
                              return std::make_unique<SisdProtocol>(Controller);
                            });
  EXPECT_FALSE(WasNew);
}

// --- SISD transitions ---------------------------------------------------------

TEST(Sisd, LoadFillsSharedAndLeavesDirectoryEmpty) {
  CoherenceController C(testConfig(ProtocolKind::Sisd));
  C.access(0, BlockA, 8, AccessType::Load);
  const CacheLine *Line = C.privateLine(0, BlockA);
  ASSERT_NE(Line, nullptr);
  EXPECT_EQ(Line->State, LineState::Shared);
  EXPECT_EQ(C.directoryEntry(BlockA), nullptr);
}

TEST(Sisd, StoreFillsWriteMarkedWithoutCoherenceTraffic) {
  CoherenceController C(testConfig(ProtocolKind::Sisd));
  C.access(0, BlockA, 8, AccessType::Store);
  const CacheLine *Line = C.privateLine(0, BlockA);
  ASSERT_NE(Line, nullptr);
  EXPECT_EQ(Line->State, LineState::Ward);
  EXPECT_TRUE(Line->Dirty.any());
  EXPECT_EQ(C.directoryEntry(BlockA), nullptr);
  EXPECT_EQ(C.stats().Invalidations, 0u);
  EXPECT_EQ(C.stats().Downgrades, 0u);
}

TEST(Sisd, StoreHitOnOwnReadCopyUpgradesInPlace) {
  CoherenceController C(testConfig(ProtocolKind::Sisd));
  C.access(0, BlockA, 8, AccessType::Load);
  std::uint64_t L3Before = C.stats().L3Accesses;
  C.access(0, BlockA, 8, AccessType::Store);
  // The upgrade is local: same-core write permission without another trip
  // to the home slice.
  EXPECT_EQ(C.stats().L3Accesses, L3Before);
  EXPECT_EQ(C.privateLine(0, BlockA)->State, LineState::Ward);
}

TEST(Sisd, RemoteCoresAreNeverInterrupted) {
  CoherenceController C(testConfig(ProtocolKind::Sisd));
  C.access(0, BlockA, 8, AccessType::Load);
  C.access(1, BlockA, 8, AccessType::Store);
  // The defining property: core 1's write does not invalidate core 0's
  // copy — staleness is resolved by core 0's own next acquire instead.
  const CacheLine *Reader = C.privateLine(0, BlockA);
  ASSERT_NE(Reader, nullptr);
  EXPECT_EQ(Reader->State, LineState::Shared);
  EXPECT_EQ(C.stats().Invalidations, 0u);
  EXPECT_EQ(C.stats().CacheToCache, 0u);
}

TEST(Sisd, ReleaseSelfDowngradesDirtyLines) {
  CoherenceController C(testConfig(ProtocolKind::Sisd));
  C.access(0, BlockA, 8, AccessType::Store);
  C.access(0, BlockB, 8, AccessType::Load);
  Cycles Cost = C.syncRelease(0);
  EXPECT_GT(Cost, 0u);
  // The dirty line was published and kept as a read copy; the clean read
  // copy was left alone.
  const CacheLine *Written = C.privateLine(0, BlockA);
  ASSERT_NE(Written, nullptr);
  EXPECT_EQ(Written->State, LineState::Shared);
  EXPECT_FALSE(Written->Dirty.any());
  EXPECT_EQ(C.privateLine(0, BlockB)->State, LineState::Shared);
  EXPECT_EQ(C.stats().Downgrades, 1u);
  EXPECT_GE(C.stats().Writebacks, 1u);
}

TEST(Sisd, ReleaseWithNothingDirtyIsFree) {
  CoherenceController C(testConfig(ProtocolKind::Sisd));
  C.access(0, BlockA, 8, AccessType::Load);
  EXPECT_EQ(C.syncRelease(0), 0u);
  EXPECT_EQ(C.stats().Downgrades, 0u);
}

TEST(Sisd, AcquireSelfInvalidatesEverythingResident) {
  CoherenceController C(testConfig(ProtocolKind::Sisd));
  C.access(0, BlockA, 8, AccessType::Load);
  C.access(0, BlockB, 8, AccessType::Load);
  C.syncAcquire(0);
  EXPECT_EQ(C.privateLine(0, BlockA), nullptr);
  EXPECT_EQ(C.privateLine(0, BlockB), nullptr);
  EXPECT_EQ(C.stats().Invalidations, 2u);
}

TEST(Sisd, AcquireWithoutInterveningReleaseStillPublishesDirtyData) {
  CoherenceController C(testConfig(ProtocolKind::Sisd));
  C.access(0, BlockA, 8, AccessType::Store);
  C.syncAcquire(0);
  EXPECT_EQ(C.privateLine(0, BlockA), nullptr);
  EXPECT_GE(C.stats().Writebacks, 1u); // Unpublished bytes were pushed first.
  EXPECT_EQ(C.stats().Invalidations, 1u);
}

TEST(Sisd, EagerProtocolsKeepSyncHooksFree) {
  // Byte-identity of MESI/WARDen with the pre-backend engine depends on
  // their sync hooks being strict no-ops.
  for (ProtocolKind Kind : {ProtocolKind::Mesi, ProtocolKind::Warden}) {
    CoherenceController C(testConfig(Kind));
    C.access(0, BlockA, 8, AccessType::Store);
    CoherenceStats Before = C.stats();
    EXPECT_EQ(C.syncAcquire(0), 0u);
    EXPECT_EQ(C.syncRelease(0), 0u);
    EXPECT_EQ(C.stats().Writebacks, Before.Writebacks);
    EXPECT_EQ(C.stats().Invalidations, Before.Invalidations);
    EXPECT_EQ(C.stats().Downgrades, Before.Downgrades);
    EXPECT_EQ(C.privateLine(0, BlockA)->State, LineState::Modified);
  }
}

// --- The N-protocol comparison API --------------------------------------------

TEST(CompareProtocols, RunsEveryRequestedProtocolOnce) {
  TaskGraph Graph = tinyProgram();
  RunOptions Options;
  Options.Repeats = 1;
  ComparisonResult Cmp = WardenSystem::compareProtocols(
      Graph, MachineConfig::dualSocket(),
      {ProtocolKind::Mesi, ProtocolKind::Warden, ProtocolKind::Sisd}, Options);
  EXPECT_EQ(Cmp.Baseline, ProtocolKind::Mesi);
  ASSERT_EQ(Cmp.Runs.size(), 3u);
  for (ProtocolKind Kind : allProtocolKinds()) {
    ASSERT_TRUE(Cmp.has(Kind)) << protocolId(Kind);
    EXPECT_EQ(Cmp.run(Kind).Protocol, Kind);
    EXPECT_GT(Cmp.run(Kind).Makespan, 0u);
  }
  EXPECT_DOUBLE_EQ(Cmp.speedup(ProtocolKind::Mesi), 1.0);
  EXPECT_GT(Cmp.speedup(ProtocolKind::Warden), 0.0);
  EXPECT_GT(Cmp.speedup(ProtocolKind::Sisd), 0.0);
}

TEST(CompareProtocols, RequestingExtraProtocolsDoesNotPerturbOthers) {
  TaskGraph Graph = tinyProgram();
  RunOptions Options;
  Options.Repeats = 1;
  MachineConfig Machine = MachineConfig::dualSocket();
  ComparisonResult Two = WardenSystem::compareProtocols(
      Graph, Machine, {ProtocolKind::Mesi, ProtocolKind::Warden}, Options);
  ComparisonResult Three = WardenSystem::compareProtocols(
      Graph, Machine,
      {ProtocolKind::Mesi, ProtocolKind::Warden, ProtocolKind::Sisd}, Options);
  for (ProtocolKind Kind : {ProtocolKind::Mesi, ProtocolKind::Warden}) {
    EXPECT_EQ(Two.run(Kind).Makespan, Three.run(Kind).Makespan);
    EXPECT_EQ(Two.run(Kind).Coherence.invPlusDown(),
              Three.run(Kind).Coherence.invPlusDown());
    EXPECT_DOUBLE_EQ(Two.run(Kind).Energy.totalProcessorNJ(),
                     Three.run(Kind).Energy.totalProcessorNJ());
  }
}

TEST(CompareProtocols, DuplicatesAreDeduplicatedAndEmptyThrows) {
  TaskGraph Graph = tinyProgram();
  RunOptions Options;
  Options.Repeats = 1;
  ComparisonResult Cmp = WardenSystem::compareProtocols(
      Graph, MachineConfig::singleSocket(),
      {ProtocolKind::Warden, ProtocolKind::Warden, ProtocolKind::Mesi},
      Options);
  EXPECT_EQ(Cmp.Runs.size(), 2u);
  // MESI is always preferred as the baseline when present, regardless of
  // request order.
  EXPECT_EQ(Cmp.Baseline, ProtocolKind::Mesi);
  EXPECT_THROW(WardenSystem::compareProtocols(
                   Graph, MachineConfig::singleSocket(), {}, Options),
               std::invalid_argument);
  EXPECT_THROW(Cmp.run(ProtocolKind::Sisd), std::out_of_range);
}

TEST(CompareProtocols, BaselineFallsBackToFirstWithoutMesi) {
  TaskGraph Graph = tinyProgram();
  RunOptions Options;
  Options.Repeats = 1;
  ComparisonResult Cmp = WardenSystem::compareProtocols(
      Graph, MachineConfig::singleSocket(),
      {ProtocolKind::Sisd, ProtocolKind::Warden}, Options);
  EXPECT_EQ(Cmp.Baseline, ProtocolKind::Sisd);
  EXPECT_EQ(&Cmp.baseline(), &Cmp.run(ProtocolKind::Sisd));
}

// --- The deprecated two-protocol shim -----------------------------------------

#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"

TEST(CompareProtocols, DeprecatedShimMatchesTheNewApi) {
  TaskGraph Graph = tinyProgram();
  RunOptions Options;
  Options.Repeats = 1;
  MachineConfig Machine = MachineConfig::dualSocket();
  ProtocolComparison Old = WardenSystem::compare(Graph, Machine, Options);
  ComparisonResult New = WardenSystem::compareProtocols(
      Graph, Machine, {ProtocolKind::Mesi, ProtocolKind::Warden}, Options);
  EXPECT_EQ(Old.Mesi.Makespan, New.run(ProtocolKind::Mesi).Makespan);
  EXPECT_EQ(Old.Warden.Makespan, New.run(ProtocolKind::Warden).Makespan);
  EXPECT_DOUBLE_EQ(Old.speedup(), New.speedup(ProtocolKind::Warden));
  EXPECT_DOUBLE_EQ(Old.totalEnergySavings(),
                   New.totalEnergySavings(ProtocolKind::Warden));
  EXPECT_DOUBLE_EQ(Old.invDownReducedPerKiloInstr(),
                   New.invDownReducedPerKiloInstr(ProtocolKind::Warden));
}

#pragma GCC diagnostic pop
