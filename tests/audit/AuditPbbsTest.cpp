//===- tests/audit/AuditPbbsTest.cpp - audited PBBS suite runs ----------------===//
//
// Part of the WARDen reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The heavyweight acceptance gate behind `ctest -L audit`: every PBBS
/// kernel runs at test scale under both protocols with the ProtocolAuditor
/// attached, and every run must finish with zero invariant or data-value
/// violations. A second pass drives a few kernels through the standard
/// fault-injection plan (randomized evictions, adversarial mid-region
/// reconciles, a starved region table) and requires the protocol to absorb
/// the abuse cleanly — degraded performance is fine, violations are not.
///
/// These runs are slower than the unit suite, which is why they live in a
/// separate binary labeled `audit` rather than in warden_tests.
///
//===----------------------------------------------------------------------===//

#include "src/core/WardenSystem.h"
#include "src/pbbs/Pbbs.h"

#include <gtest/gtest.h>

using namespace warden;
using pbbs::Benchmark;
using pbbs::Recorded;

namespace {

std::string firstMessage(const AuditReport &Report) {
  return Report.Messages.empty() ? std::string("(no messages)")
                                 : Report.Messages.front();
}

MachineConfig machineFor(ProtocolKind Protocol) {
  MachineConfig Config = MachineConfig::dualSocket();
  Config.Protocol = Protocol;
  return Config;
}

} // namespace

class AuditedKernel : public ::testing::TestWithParam<Benchmark> {};

TEST_P(AuditedKernel, AllProtocolsRunViolationFree) {
  const Benchmark &B = GetParam();
  Recorded R = B.Record(B.TestScale, RtOptions());
  RunOptions Options;
  Options.Audit = true;
  // Every registered backend, including the directory-less SISD protocol
  // (audited under its own invariant discipline: empty directory,
  // read-clean-or-write-marked lines, clean sync boundaries).
  for (ProtocolKind Protocol : allProtocolKinds()) {
    RunResult Result =
        WardenSystem::simulate(R.Graph, machineFor(Protocol), Options);
    EXPECT_TRUE(Result.Audit.Enabled);
    EXPECT_TRUE(Result.Audit.clean())
        << B.Name << " under " << protocolName(Protocol) << ": "
        << firstMessage(Result.Audit);
    EXPECT_GT(Result.Audit.LoadsVerified, 0u)
        << B.Name << " under " << protocolName(Protocol);
  }
}

TEST_P(AuditedKernel, RacohMultiNodeRunsViolationFree) {
  // The racoh backend on its native machine shape: two non-coherent nodes
  // with a deliberately small log queue so the back-pressure force-drain
  // path runs under the auditor's eyes, not just in unit tests.
  const Benchmark &B = GetParam();
  Recorded R = B.Record(B.TestScale, RtOptions());
  RunOptions Options;
  Options.Audit = true;
  MachineConfig Machine = MachineConfig::multiNode(2);
  Machine.Protocol = ProtocolKind::Racoh;
  Machine.NodeLogQueueCapacity = 64;
  RunResult Result = WardenSystem::simulate(R.Graph, Machine, Options);
  EXPECT_TRUE(Result.Audit.Enabled);
  EXPECT_TRUE(Result.Audit.clean())
      << B.Name << " under racoh/multi-node: " << firstMessage(Result.Audit);
  EXPECT_GT(Result.Coherence.LogPublishes, 0u) << B.Name;
}

INSTANTIATE_TEST_SUITE_P(
    Suite, AuditedKernel, ::testing::ValuesIn(pbbs::allBenchmarks()),
    [](const ::testing::TestParamInfo<Benchmark> &Info) {
      std::string Name = Info.param.Name;
      for (char &C : Name)
        if (C == '-' || C == '.')
          C = '_';
      return Name;
    });

// --- Fault-plan endurance on a representative subset ----------------------------

class AuditedFaultKernel : public ::testing::TestWithParam<const char *> {};

TEST_P(AuditedFaultKernel, SurvivesFaultPlanWithoutViolations) {
  const Benchmark *B = pbbs::find(GetParam());
  ASSERT_NE(B, nullptr);
  Recorded R = B->Record(B->TestScale, RtOptions());
  RunOptions Options;
  Options.Audit = true;
  Options.Faults.Seed = 0xfa017;
  Options.Faults.EvictionRate = 2e-3;
  Options.Faults.ReconcileRate = 2e-3;
  Options.Faults.RegionTableCapacity = 4;
  RunResult Result = WardenSystem::simulate(
      R.Graph, machineFor(ProtocolKind::Warden), Options);
  EXPECT_TRUE(Result.Audit.clean())
      << B->Name << ": " << firstMessage(Result.Audit);
  // The starved region table must show up as counted fallbacks, never as
  // an assertion or a violation.
  EXPECT_GT(Result.Coherence.RegionFallbacks +
                Result.Coherence.WardRegionAccesses,
            0u);
}

INSTANTIATE_TEST_SUITE_P(Subset, AuditedFaultKernel,
                         ::testing::Values("fib", "msort", "dedup"),
                         [](const ::testing::TestParamInfo<const char *> &I) {
                           return std::string(I.param);
                         });
