//===- tests/obs/SamplerTest.cpp - Timeline sampler series tests ----------===//
//
// Part of the WARDen reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Tests for the TimelineSampler additions: short runs get a final partial
/// sample instead of an empty series, racoh runs carry the log-coherence
/// series (gated so every other backend's JSON is unchanged), and the
/// jsonParse DOM used to inspect the emitted documents.
///
//===----------------------------------------------------------------------===//

#include "src/core/WardenSystem.h"
#include "src/obs/Observability.h"
#include "src/obs/TimelineSampler.h"
#include "src/rt/Stdlib.h"
#include "src/support/Json.h"

#include <gtest/gtest.h>

#include <string>

using namespace warden;

namespace {

TEST(TimelineSamplerTest, ShortRunStillGetsOneSample) {
  // A run far shorter than the cadence interval never crosses a boundary;
  // finalize() must still capture the single trailing sample.
  TimelineSampler Sampler(10000);
  TimelineInputs In;
  In.Instructions = 500;
  Sampler.tick(400, In); // Below the first boundary: no sample.
  EXPECT_TRUE(Sampler.samples().empty());
  Sampler.finalize(400, In);
  ASSERT_EQ(Sampler.samples().size(), 1u);
  EXPECT_EQ(Sampler.samples().front().Cycle, 400u);
  EXPECT_DOUBLE_EQ(Sampler.samples().front().Ipc, 500.0 / 400.0);
}

TEST(TimelineSamplerTest, ShortRunEndToEndSeriesIsNonEmpty) {
  // End-to-end version: a tiny workload whose makespan is far below the
  // default 10k-cycle cadence.
  Runtime Rt{RtOptions()};
  auto In = stdlib::tabulate<std::uint32_t>(
      Rt, 64, [](std::size_t I) { return std::uint32_t(I); }, 32);
  std::uint64_t Total = stdlib::sum(Rt, In, 32);
  EXPECT_GT(Total, 0u);
  TaskGraph Graph = Rt.finish();

  MachineConfig Config = MachineConfig::singleSocket();
  TimelineSampler Sampler;
  Observability Obs;
  Obs.Sampler = &Sampler;
  RunOptions Options;
  Options.Obs = &Obs;
  RunResult R = WardenSystem::simulate(Graph, Config, Options);
  ASSERT_LT(R.Makespan, Sampler.interval()) << "workload no longer tiny";
  ASSERT_FALSE(Sampler.samples().empty());
  EXPECT_EQ(Sampler.samples().back().Cycle, R.Makespan);
}

TEST(TimelineSamplerTest, RacohSeriesCarriesLogCoherenceRates) {
  Runtime Rt{RtOptions()};
  auto In = stdlib::tabulate<std::uint32_t>(
      Rt, 4096, [](std::size_t I) { return std::uint32_t(I * 31); }, 128);
  auto Out = stdlib::mapArray<std::uint64_t>(
      Rt, In, [](std::uint32_t V) { return std::uint64_t(V) * 3; }, 128);
  std::uint64_t Total = stdlib::sum(Rt, Out, 128);
  EXPECT_GT(Total, 0u);
  TaskGraph Graph = Rt.finish();

  auto Sample = [&](ProtocolKind Protocol, const MachineConfig &Machine) {
    MachineConfig Config = Machine;
    Config.Protocol = Protocol;
    TimelineSampler Sampler(2000);
    Observability Obs;
    Obs.Sampler = &Sampler;
    RunOptions Options;
    Options.Obs = &Obs;
    RunResult R = WardenSystem::simulate(Graph, Config, Options);
    EXPECT_GT(R.Makespan, 0u);
    JsonWriter W;
    Sampler.writeJson(W);
    std::string Error;
    EXPECT_TRUE(jsonValidate(W.str(), &Error)) << Error;
    return std::pair(Sampler.samples(), W.str());
  };

  auto [RacohSamples, RacohJson] =
      Sample(ProtocolKind::Racoh, MachineConfig::multiNode(2));
  ASSERT_FALSE(RacohSamples.empty());
  bool SawLog = false, SawPublishRate = false;
  for (const TimelineSample &S : RacohSamples) {
    EXPECT_TRUE(S.LogCoherence);
    SawLog |= S.LogCoherence;
    SawPublishRate |= S.LogPublishesPerKCycle > 0;
  }
  EXPECT_TRUE(SawLog);
  EXPECT_TRUE(SawPublishRate); // Strand completions publish logs.
  EXPECT_NE(RacohJson.find("log_publishes_per_kcycle"), std::string::npos);
  EXPECT_NE(RacohJson.find("log_queue_peak"), std::string::npos);

  // Eager backends: no log series in the samples and none of the keys in
  // the JSON, so their documents are unchanged by the racoh additions.
  auto [MesiSamples, MesiJson] =
      Sample(ProtocolKind::Mesi, MachineConfig::dualSocket());
  ASSERT_FALSE(MesiSamples.empty());
  for (const TimelineSample &S : MesiSamples)
    EXPECT_FALSE(S.LogCoherence);
  EXPECT_EQ(MesiJson.find("log_"), std::string::npos);
  EXPECT_EQ(MesiJson.find("racoh"), std::string::npos);
}

TEST(JsonParseTest, BuildsTheDomFaithfully) {
  std::string Error;
  std::optional<JsonValue> V = jsonParse(
      "{\"a\":[1,2.5,-3e2],\"b\":{\"nested\":true},\"s\":\"caf\\u00e9\","
      "\"n\":null}",
      &Error);
  ASSERT_TRUE(V.has_value()) << Error;
  ASSERT_TRUE(V->isObject());
  const JsonValue *A = V->get("a");
  ASSERT_TRUE(A && A->isArray());
  ASSERT_EQ(A->Array.size(), 3u);
  EXPECT_DOUBLE_EQ(A->Array[0].Number, 1.0);
  EXPECT_DOUBLE_EQ(A->Array[1].Number, 2.5);
  EXPECT_DOUBLE_EQ(A->Array[2].Number, -300.0);
  const JsonValue *B = V->get("b");
  ASSERT_TRUE(B && B->isObject());
  const JsonValue *Nested = B->get("nested");
  ASSERT_TRUE(Nested && Nested->isBool());
  EXPECT_TRUE(Nested->Bool);
  const JsonValue *S = V->get("s");
  ASSERT_TRUE(S && S->isString());
  EXPECT_EQ(S->String, "caf\xc3\xa9"); // \u00e9 decoded to UTF-8.
  const JsonValue *N = V->get("n");
  ASSERT_TRUE(N && N->isNull());
  EXPECT_EQ(V->get("missing"), nullptr);

  // Object member order is preserved.
  ASSERT_EQ(V->Object.size(), 4u);
  EXPECT_EQ(V->Object[0].first, "a");
  EXPECT_EQ(V->Object[3].first, "n");
}

TEST(JsonParseTest, RejectsWhatTheValidatorRejects) {
  for (const char *Doc :
       {"", "{", "[1,]", "{\"a\":}", "01", "\"\\u12\"", "[1] x",
        "{\"dup\":1,\"dup\":2}"}) {
    std::string Error;
    EXPECT_FALSE(jsonParse(Doc, &Error).has_value()) << Doc;
    EXPECT_FALSE(Error.empty()) << Doc;
  }
  // Surrogate pairs decode; unpaired ones are rejected.
  std::optional<JsonValue> Pair = jsonParse("\"\\ud83d\\ude00\"");
  ASSERT_TRUE(Pair.has_value());
  EXPECT_EQ(Pair->String, "\xf0\x9f\x98\x80");
  EXPECT_FALSE(jsonParse("\"\\ud83dx\\ude00\"").has_value());
}

} // namespace
