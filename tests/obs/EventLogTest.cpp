//===- tests/obs/EventLogTest.cpp - Streaming event-log tests -------------===//
//
// Part of the WARDen reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Tests for the warden-evlog-v1 writer and reader: record round-trips,
/// bounded-memory spilling, deterministic bytes across identical runs, and
/// the zero-perturbation contract — a run with the event log attached is
/// cycle-identical to a detached run, for every protocol backend.
///
//===----------------------------------------------------------------------===//

#include "src/core/WardenSystem.h"
#include "src/obs/EventLog.h"
#include "src/obs/Observability.h"
#include "src/pbbs/Pbbs.h"
#include "src/rt/Stdlib.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

using namespace warden;

namespace {

std::string tempBase(const std::string &Name) {
  return ::testing::TempDir() + "warden_evlog_test_" + Name;
}

std::string slurp(const std::string &Path) {
  std::ifstream In(Path, std::ios::binary);
  std::ostringstream Out;
  Out << In.rdbuf();
  return Out.str();
}

TaskGraph recordWorkload() {
  Runtime Rt{RtOptions()};
  auto In = stdlib::tabulate<std::uint32_t>(
      Rt, 4096, [](std::size_t I) { return std::uint32_t(I * 2654435761u); },
      128);
  auto Out = stdlib::mapArray<std::uint64_t>(
      Rt, In, [](std::uint32_t V) { return std::uint64_t(V) % 977; }, 128);
  std::uint64_t Total = stdlib::sum(Rt, Out, 128);
  EXPECT_GT(Total, 0u);
  return Rt.finish();
}

TEST(EventLogTest, RecordsRoundTripThroughTheFile) {
  EventLog Log;
  Log.configure(tempBase("roundtrip"));
  Log.setRunLabel("unit");
  EXPECT_TRUE(Log.enabled());

  MachineConfig Config = MachineConfig::singleSocket();
  Log.beginRun(Config, nullptr);
  Log.emit(100, EvKind::DemandMiss, 0, 0x1000, 42, 1);
  Log.emit(150, EvKind::Invalidation, 3, 0x1040, 0, 1);
  Log.emit(200, EvKind::RegionAdd, EventLog::DirectorySource, 0x2000, 7);
  ASSERT_TRUE(Log.finish()) << Log.error();
  EXPECT_EQ(Log.recordsEmitted(), 3u);

  EvlogReader Reader;
  ASSERT_TRUE(Reader.open(Log.lastPath())) << Reader.error();
  const EvlogHeader &H = Reader.header();
  EXPECT_EQ(H.Version, 1u);
  EXPECT_EQ(H.RecordSize, 32u);
  EXPECT_EQ(H.CoreCount, Config.totalCores());
  EXPECT_EQ(H.ProtocolId, "mesi");
  EXPECT_EQ(H.Label, "unit");
  EXPECT_EQ(H.RecordCount, 3u);

  EvRecord R;
  ASSERT_TRUE(Reader.next(R));
  EXPECT_EQ(R.Seq, 0u);
  EXPECT_EQ(R.Cycle, 100u);
  EXPECT_EQ(R.Address, 0x1000u);
  EXPECT_EQ(R.Payload, 42u);
  EXPECT_EQ(R.Core, 0u);
  EXPECT_EQ(R.Kind, EvKind::DemandMiss);
  EXPECT_EQ(R.Arg, 1u);
  ASSERT_TRUE(Reader.next(R));
  EXPECT_EQ(R.Seq, 1u);
  EXPECT_EQ(R.Core, 3u);
  ASSERT_TRUE(Reader.next(R));
  EXPECT_EQ(R.Seq, 2u);
  EXPECT_EQ(R.Core, EventLog::DirectorySource);
  EXPECT_EQ(R.Payload, 7u);
  EXPECT_FALSE(Reader.next(R));
  EXPECT_TRUE(Reader.error().empty()) << Reader.error();
  EXPECT_EQ(Reader.recordsRead(), 3u);
  std::remove(Log.lastPath().c_str());
}

TEST(EventLogTest, MemoryStaysBoundedUnderSpill) {
  constexpr std::size_t Cap = 16;
  constexpr std::uint64_t Events = 5000; // Far more than the ring holds.
  EventLog Log;
  Log.configure(tempBase("spill"), Cap);

  MachineConfig Config = MachineConfig::singleSocket();
  Log.beginRun(Config, nullptr);
  // Round-robin over three sources so several rings fill independently.
  for (std::uint64_t I = 0; I < Events; ++I)
    Log.emit(I, EvKind::DemandMiss, static_cast<std::uint16_t>(I % 3),
             0x1000 + (I % 7) * 64, static_cast<std::uint32_t>(I));
  ASSERT_TRUE(Log.finish()) << Log.error();

  EXPECT_EQ(Log.recordsEmitted(), Events);
  EXPECT_GT(Log.spillFlushes(), 0u);
  // The writer never buffers more than one ring's capacity per source.
  EXPECT_LE(Log.peakBufferedRecords(), Cap * (Config.totalCores() + 1));

  // Everything emitted reaches the file, in sequence order.
  EvlogReader Reader;
  ASSERT_TRUE(Reader.open(Log.lastPath())) << Reader.error();
  EXPECT_EQ(Reader.header().RecordCount, Events);
  EvRecord R;
  std::uint64_t Expect = 0;
  while (Reader.next(R)) {
    EXPECT_EQ(R.Seq, Expect);
    EXPECT_EQ(R.Cycle, Expect);
    ++Expect;
  }
  EXPECT_TRUE(Reader.error().empty()) << Reader.error();
  EXPECT_EQ(Expect, Events);
  std::remove(Log.lastPath().c_str());
}

TEST(EventLogTest, AttachedRunIsCycleIdenticalForEveryProtocol) {
  TaskGraph Graph = recordWorkload();
  struct Case {
    ProtocolKind Protocol;
    MachineConfig Config;
  };
  const Case Cases[] = {
      {ProtocolKind::Mesi, MachineConfig::dualSocket()},
      {ProtocolKind::Warden, MachineConfig::dualSocket()},
      {ProtocolKind::Sisd, MachineConfig::dualSocket()},
      {ProtocolKind::Racoh, MachineConfig::multiNode(2)},
  };
  for (Case C : Cases) {
    C.Config.Protocol = C.Protocol;
    RunResult Plain = WardenSystem::simulate(Graph, C.Config);

    EventLog Log;
    Log.configure(tempBase("identity"));
    Observability Obs;
    Obs.Log = &Log;
    RunOptions Options;
    Options.Obs = &Obs;
    RunResult Logged = WardenSystem::simulate(Graph, C.Config, Options);

    EXPECT_EQ(Plain.Makespan, Logged.Makespan)
        << protocolId(C.Protocol);
    EXPECT_EQ(Plain.Instructions, Logged.Instructions)
        << protocolId(C.Protocol);
    EXPECT_EQ(Plain.Coherence.Invalidations, Logged.Coherence.Invalidations)
        << protocolId(C.Protocol);
    EXPECT_EQ(Plain.Coherence.Downgrades, Logged.Coherence.Downgrades)
        << protocolId(C.Protocol);
    EXPECT_EQ(Plain.Coherence.accesses(), Logged.Coherence.accesses())
        << protocolId(C.Protocol);
    EXPECT_EQ(Plain.Sched.Steals, Logged.Sched.Steals)
        << protocolId(C.Protocol);
    EXPECT_GT(Log.recordsEmitted(), 0u) << protocolId(C.Protocol);
    std::remove(Log.lastPath().c_str());
  }
}

TEST(EventLogTest, IdenticalRunsProduceIdenticalBytes) {
  TaskGraph Graph = recordWorkload();
  MachineConfig Config = MachineConfig::dualSocket();
  Config.Protocol = ProtocolKind::Warden;

  std::string Bytes[2];
  for (int Round = 0; Round < 2; ++Round) {
    EventLog Log;
    // Distinct ring capacities: buffering must not leak into the bytes.
    Log.configure(tempBase("bytes" + std::to_string(Round)),
                  Round == 0 ? EventLog::DefaultRingCapacity : 8);
    Log.setRunLabel("bytes");
    Observability Obs;
    Obs.Log = &Log;
    RunOptions Options;
    Options.Obs = &Obs;
    WardenSystem::simulate(Graph, Config, Options);
    Bytes[Round] = slurp(Log.lastPath());
    EXPECT_FALSE(Bytes[Round].empty());
    std::remove(Log.lastPath().c_str());
  }
  EXPECT_EQ(Bytes[0], Bytes[1]);
}

TEST(EventLogTest, DedupRunCarriesSiteTable) {
  pbbs::Recorded Fixture = pbbs::recordDedup(256, RtOptions());
  ASSERT_TRUE(Fixture.Verified);

  EventLog Log;
  Log.configure(tempBase("sites"));
  Observability Obs;
  Obs.Log = &Log;
  MachineConfig Config = MachineConfig::singleSocket();
  Config.Protocol = ProtocolKind::Mesi;
  RunOptions Options;
  Options.Obs = &Obs;
  WardenSystem::simulate(Fixture.Graph, Config, Options);

  EvlogReader Reader;
  ASSERT_TRUE(Reader.open(Log.lastPath())) << Reader.error();
  const EvlogHeader &H = Reader.header();
  EXPECT_FALSE(H.Sites.empty());
  EXPECT_FALSE(H.Spans.empty());
  // Spans arrive sorted and resolve addresses back to interned names.
  for (std::size_t I = 1; I < H.Spans.size(); ++I)
    EXPECT_LE(H.Spans[I - 1].Start, H.Spans[I].Start);
  const auto &Span = H.Spans.front();
  std::uint32_t Site = H.siteOf(Span.Start);
  EXPECT_EQ(Site, Span.Site);
  EXPECT_NE(H.siteName(Site), "<unmapped>");
  EXPECT_EQ(H.siteOf(0), InvalidSite); // Below every span.
  std::remove(Log.lastPath().c_str());
}

} // namespace
