//===- tests/obs/EvlogStatTest.cpp - Offline evlog query tests ------------===//
//
// Part of the WARDen reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Tests for the offline event-log queries behind warden-stat: whole-run
/// summaries, top-N contended lines, windowed rates, Perfetto export, and
/// the acceptance criterion of the forensics pipeline — diffing a MESI and
/// a WARDen log of the dedup fixture attributes the protocol gap to the
/// benchmark's known falsely-shared allocation sites, with MESI paying
/// invalidations that WARDen avoids entirely.
///
//===----------------------------------------------------------------------===//

#include "src/core/WardenSystem.h"
#include "src/obs/ChromeTraceExporter.h"
#include "src/obs/EvlogStat.h"
#include "src/obs/Observability.h"
#include "src/pbbs/Pbbs.h"
#include "src/support/Json.h"

#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdio>
#include <string>

using namespace warden;

namespace {

/// Records the dedup fixture once and simulates it under MESI and WARDen
/// with the event log attached; returns the two log paths.
class DedupLogs : public ::testing::Test {
protected:
  static void SetUpTestSuite() {
    pbbs::Recorded Fixture = pbbs::recordDedup(1024, RtOptions());
    ASSERT_TRUE(Fixture.Verified);
    EventLog Log;
    // Each ctest-discovered test runs this fixture in its own process;
    // the pid keeps parallel ctest invocations out of each other's files.
    Log.configure(::testing::TempDir() + "warden_evlogstat_dedup_" +
                  std::to_string(::getpid()));
    Log.setRunLabel("dedup");
    Observability Obs;
    Obs.Log = &Log;
    for (ProtocolKind Protocol :
         {ProtocolKind::Mesi, ProtocolKind::Warden}) {
      MachineConfig Config = MachineConfig::singleSocket();
      Config.Protocol = Protocol;
      RunOptions Options;
      Options.Obs = &Obs;
      WardenSystem::simulate(Fixture.Graph, Config, Options);
      ASSERT_TRUE(Log.error().empty()) << Log.error();
      (Protocol == ProtocolKind::Mesi ? MesiPath : WardenPath) =
          Log.lastPath();
    }
  }

  static void TearDownTestSuite() {
    std::remove(MesiPath.c_str());
    std::remove(WardenPath.c_str());
  }

  static std::string MesiPath, WardenPath;
};

std::string DedupLogs::MesiPath;
std::string DedupLogs::WardenPath;

TEST_F(DedupLogs, SummaryCountsEveryRecord) {
  EvlogSummary S;
  std::string Error;
  ASSERT_TRUE(evlogSummarize(MesiPath, S, Error)) << Error;
  EXPECT_EQ(S.Header.ProtocolId, "mesi");
  EXPECT_EQ(S.Header.Label, "dedup");
  EXPECT_GT(S.Records, 0u);
  EXPECT_EQ(S.Records, S.Header.RecordCount);
  std::uint64_t Total = 0;
  for (std::uint64_t C : S.ByKind)
    Total += C;
  EXPECT_EQ(Total, S.Records);
  std::uint64_t PerCore = 0;
  for (const auto &[Core, Count] : S.ByCore)
    PerCore += Count;
  EXPECT_EQ(PerCore, S.Records);
  EXPECT_GE(S.LastCycle, S.FirstCycle);
  EXPECT_GT(S.misses(), 0u);
}

TEST_F(DedupLogs, TopLinesRankByContention) {
  std::vector<LineStat> Top;
  std::string Error;
  ASSERT_TRUE(evlogTopLines(MesiPath, 10, "", Top, Error)) << Error;
  ASSERT_FALSE(Top.empty());
  EXPECT_LE(Top.size(), 10u);
  for (std::size_t I = 1; I < Top.size(); ++I)
    EXPECT_GE(Top[I - 1].contention(), Top[I].contention());

  // A kind filter re-ranks by that kind's count alone, but the rows keep
  // their whole-run tallies — the head row of a demand_miss ranking must
  // actually show misses.
  std::vector<LineStat> Misses;
  ASSERT_TRUE(evlogTopLines(MesiPath, 5, "demand_miss", Misses, Error))
      << Error;
  ASSERT_FALSE(Misses.empty());
  EXPECT_GT(Misses.front().Misses, 0u);
  EXPECT_EQ(Misses.front().Events, Misses.front().Misses);
  for (std::size_t I = 1; I < Misses.size(); ++I)
    EXPECT_GE(Misses[I - 1].Events, Misses[I].Events);
  EXPECT_FALSE(
      evlogTopLines(MesiPath, 5, "no_such_kind", Misses, Error));
}

TEST_F(DedupLogs, WindowRatesTileTheRun) {
  std::vector<WindowStat> Windows;
  std::string Error;
  ASSERT_TRUE(evlogWindowRates(MesiPath, 0, Windows, Error)) << Error;
  ASSERT_FALSE(Windows.empty());
  std::uint64_t Total = 0;
  for (const WindowStat &W : Windows)
    Total += W.total();
  EvlogSummary S;
  ASSERT_TRUE(evlogSummarize(MesiPath, S, Error)) << Error;
  EXPECT_EQ(Total, S.Records); // Every event lands in exactly one window.
  for (std::size_t I = 1; I < Windows.size(); ++I)
    EXPECT_LT(Windows[I - 1].Start, Windows[I].Start);
}

TEST_F(DedupLogs, PerfettoExportRendersCounterTracks) {
  ChromeTraceExporter Trace;
  std::string Error;
  ASSERT_TRUE(evlogExportPerfetto(MesiPath, 0, Trace, Error)) << Error;
  EXPECT_GT(Trace.counterCount(), 0u);
  std::string Doc = Trace.render();
  ASSERT_TRUE(jsonValidate(Doc, &Error)) << Error;
  EXPECT_NE(Doc.find("evlog.demand_miss_per_kcycle"), std::string::npos);
}

// The acceptance criterion: the cross-protocol diff names dedup's known
// falsely-shared allocation sites, with MESI paying invalidations on them
// that WARDen avoids entirely.
TEST_F(DedupLogs, DiffAttributesFalseSharingToDedupSites) {
  EvlogDiff Diff;
  std::string Error;
  ASSERT_TRUE(evlogDiff(MesiPath, WardenPath, Diff, Error)) << Error;
  EXPECT_EQ(Diff.A.Header.ProtocolId, "mesi");
  EXPECT_EQ(Diff.B.Header.ProtocolId, "warden");

  // MESI pays more coherence work overall. (WARDen may still see deque
  // invalidations — scheduler lines are never WARD — so the whole-run
  // count is compared, and the zero claim is made per-site below.)
  EXPECT_GT(Diff.A.invalidations(), 0u);
  EXPECT_LE(Diff.B.invalidations(), Diff.A.invalidations());
  EXPECT_GT(Diff.A.invalidations() + Diff.A.downgrades(),
            Diff.B.invalidations() + Diff.B.downgrades());

  // The gap is attributed at site granularity to dedup's own allocations.
  ASSERT_FALSE(Diff.Sites.empty());
  std::uint64_t DedupInvA = 0, DedupInvB = 0;
  std::int64_t DedupDelta = 0;
  for (const DiffEntry &E : Diff.Sites)
    if (E.Name.rfind("dedup:", 0) == 0) {
      DedupInvA += E.InvA;
      DedupInvB += E.InvB;
      DedupDelta += E.contentionDelta();
    }
  EXPECT_GT(DedupInvA, 0u); // MESI invalidates dedup's shared lines...
  EXPECT_EQ(DedupInvB, 0u); // ...WARDen never does.
  EXPECT_GT(DedupDelta, 0); // Net: WARDen avoided that work.

  // Rows are sorted by |contention delta|, ties broken deterministically.
  for (std::size_t I = 1; I < Diff.Sites.size(); ++I) {
    auto Mag = [](const DiffEntry &E) {
      std::int64_t D = E.contentionDelta();
      return D < 0 ? -D : D;
    };
    EXPECT_GE(Mag(Diff.Sites[I - 1]), Mag(Diff.Sites[I]));
  }
  ASSERT_FALSE(Diff.Lines.empty());
  EXPECT_GT(Diff.Lines.front().contentionA() +
                Diff.Lines.front().contentionB(),
            0u);
}

TEST(EvlogStatErrorTest, MissingFileReportsError) {
  EvlogSummary S;
  std::string Error;
  EXPECT_FALSE(evlogSummarize("/nonexistent/file.evlog", S, Error));
  EXPECT_FALSE(Error.empty());
}

} // namespace
