//===- tests/obs/TraceSchemaTest.cpp - Trace Event schema checks ----------===//
//
// Part of the WARDen reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Validates ChromeTraceExporter output against the Trace Event format:
/// the document must strictly parse, and every emitted record must carry
/// the keys Perfetto requires for its phase ("X" complete spans, "M"
/// metadata, "C" counters, "i" instants). Checked for real runs of all
/// four protocol backends, including a multi-node racoh machine whose
/// trace also carries the log-coherence counter tracks.
///
//===----------------------------------------------------------------------===//

#include "src/core/WardenSystem.h"
#include "src/obs/ChromeTraceExporter.h"
#include "src/obs/MetricRegistry.h"
#include "src/obs/Observability.h"
#include "src/obs/TimelineSampler.h"
#include "src/rt/Stdlib.h"
#include "src/support/Json.h"

#include <gtest/gtest.h>

#include <string>

using namespace warden;

namespace {

TaskGraph recordWorkload() {
  Runtime Rt{RtOptions()};
  auto In = stdlib::tabulate<std::uint32_t>(
      Rt, 4096, [](std::size_t I) { return std::uint32_t(I * 2654435761u); },
      128);
  auto Out = stdlib::mapArray<std::uint64_t>(
      Rt, In, [](std::uint32_t V) { return std::uint64_t(V) % 977; }, 128);
  std::uint64_t Total = stdlib::sum(Rt, Out, 128);
  EXPECT_GT(Total, 0u);
  return Rt.finish();
}

/// Asserts \p Doc is a schema-valid Trace Event document and returns the
/// parsed traceEvents array (empty on failure, after recording it).
std::vector<JsonValue> checkTraceSchema(const std::string &Doc) {
  std::string Error;
  EXPECT_TRUE(jsonValidate(Doc, &Error)) << Error;
  std::optional<JsonValue> Root = jsonParse(Doc, &Error);
  EXPECT_TRUE(Root.has_value()) << Error;
  if (!Root)
    return {};
  EXPECT_TRUE(Root->isObject());
  const JsonValue *Unit = Root->get("displayTimeUnit");
  EXPECT_TRUE(Unit && Unit->isString());
  const JsonValue *Events = Root->get("traceEvents");
  EXPECT_TRUE(Events && Events->isArray());
  if (!Events || !Events->isArray())
    return {};

  for (std::size_t I = 0; I < Events->Array.size(); ++I) {
    const JsonValue &E = Events->Array[I];
    EXPECT_TRUE(E.isObject()) << "event " << I;
    if (!E.isObject())
      continue;
    auto RequireString = [&](const char *Key) -> std::string {
      const JsonValue *V = E.get(Key);
      EXPECT_TRUE(V && V->isString())
          << "event " << I << " missing string \"" << Key << '"';
      return V && V->isString() ? V->String : std::string();
    };
    auto RequireNumber = [&](const char *Key) -> double {
      const JsonValue *V = E.get(Key);
      EXPECT_TRUE(V && V->isNumber())
          << "event " << I << " missing number \"" << Key << '"';
      return V && V->isNumber() ? V->Number : -1;
    };
    std::string Name = RequireString("name");
    EXPECT_FALSE(Name.empty()) << "event " << I;
    std::string Ph = RequireString("ph");
    EXPECT_GE(RequireNumber("ts"), 0) << "event " << I;
    EXPECT_GE(RequireNumber("pid"), 0) << "event " << I;
    EXPECT_GE(RequireNumber("tid"), 0) << "event " << I;

    if (Ph == "X") {
      EXPECT_GE(RequireNumber("dur"), 0) << "event " << I;
    } else if (Ph == "M") {
      const JsonValue *Args = E.get("args");
      EXPECT_TRUE(Args && Args->isObject()) << "event " << I;
      const JsonValue *Label = Args ? Args->get("name") : nullptr;
      EXPECT_TRUE(Label && Label->isString()) << "event " << I;
    } else if (Ph == "C") {
      const JsonValue *Args = E.get("args");
      EXPECT_TRUE(Args && Args->isObject()) << "event " << I;
      const JsonValue *Value = Args ? Args->get("value") : nullptr;
      EXPECT_TRUE(Value && Value->isNumber()) << "event " << I;
    } else if (Ph == "i") {
      EXPECT_EQ(RequireString("s"), "t") << "event " << I;
    } else {
      ADD_FAILURE() << "event " << I << " has unknown ph \"" << Ph << '"';
    }
  }
  return Events->Array;
}

TEST(TraceSchemaTest, EveryProtocolRendersSchemaValidTraces) {
  TaskGraph Graph = recordWorkload();
  struct Case {
    ProtocolKind Protocol;
    MachineConfig Config;
  };
  const Case Cases[] = {
      {ProtocolKind::Mesi, MachineConfig::dualSocket()},
      {ProtocolKind::Warden, MachineConfig::dualSocket()},
      {ProtocolKind::Sisd, MachineConfig::dualSocket()},
      {ProtocolKind::Racoh, MachineConfig::multiNode(2)},
  };
  for (Case C : Cases) {
    SCOPED_TRACE(protocolId(C.Protocol));
    C.Config.Protocol = C.Protocol;
    MetricRegistry Metrics;
    TimelineSampler Sampler(2000); // Fine cadence => many counter samples.
    ChromeTraceExporter Trace;
    Observability Obs;
    Obs.Metrics = &Metrics;
    Obs.Sampler = &Sampler;
    Obs.Trace = &Trace;
    RunOptions Options;
    Options.Obs = &Obs;
    RunResult R = WardenSystem::simulate(Graph, C.Config, Options);

    EXPECT_EQ(Trace.spanCount(), R.Sched.StrandsExecuted);
    EXPECT_GT(Trace.counterCount(), 0u); // Sampler mirror fed the trace.
    std::vector<JsonValue> Events = checkTraceSchema(Trace.render());
    ASSERT_FALSE(Events.empty());

    bool SawSpan = false, SawCounter = false, SawTimeline = false,
         SawRacoh = false;
    for (const JsonValue &E : Events) {
      const JsonValue *Ph = E.get("ph");
      const JsonValue *Name = E.get("name");
      if (!Ph || !Name)
        continue;
      SawSpan |= Ph->String == "X";
      SawCounter |= Ph->String == "C";
      SawTimeline |= Name->String.rfind("timeline.", 0) == 0;
      SawRacoh |= Name->String.rfind("racoh.", 0) == 0;
    }
    EXPECT_TRUE(SawSpan);
    EXPECT_TRUE(SawCounter);
    EXPECT_TRUE(SawTimeline);
    // The log-coherence tracks appear exactly for the log-based backend.
    EXPECT_EQ(SawRacoh, C.Protocol == ProtocolKind::Racoh);
  }
}

} // namespace
