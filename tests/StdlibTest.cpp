//===- tests/StdlibTest.cpp - parallel sequence primitive tests ---------------===//
//
// Part of the WARDen reproduction project.
//
//===----------------------------------------------------------------------===//

#include "src/pbbs/Sort.h"
#include "src/rt/Stdlib.h"
#include "src/support/Rng.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <vector>

using namespace warden;

namespace {

struct SizeGrain {
  std::size_t N;
  std::int64_t Grain;
};

} // namespace

class StdlibSweep : public ::testing::TestWithParam<SizeGrain> {};

TEST_P(StdlibSweep, TabulateProducesExpectedValues) {
  auto [N, Grain] = GetParam();
  Runtime Rt;
  auto Out = stdlib::tabulate<std::uint64_t>(
      Rt, N, [](std::size_t I) { return I * I + 1; }, Grain);
  for (std::size_t I = 0; I < N; ++I)
    ASSERT_EQ(Out.peek(I), I * I + 1) << I;
  EXPECT_TRUE(Rt.raceViolations().empty());
}

TEST_P(StdlibSweep, MapAppliesFunction) {
  auto [N, Grain] = GetParam();
  Runtime Rt;
  auto In = stdlib::tabulate<std::uint32_t>(
      Rt, N, [](std::size_t I) { return std::uint32_t(I); }, Grain);
  auto Out = stdlib::mapArray<std::uint64_t>(
      Rt, In, [](std::uint32_t V) { return std::uint64_t(V) * 3; }, Grain);
  for (std::size_t I = 0; I < N; ++I)
    ASSERT_EQ(Out.peek(I), I * 3);
}

TEST_P(StdlibSweep, SumMatchesSequential) {
  auto [N, Grain] = GetParam();
  Runtime Rt;
  auto In = stdlib::tabulate<std::uint64_t>(
      Rt, N, [](std::size_t I) { return (I * 2654435761u) % 1000; }, Grain);
  std::uint64_t Expected = 0;
  for (std::size_t I = 0; I < N; ++I)
    Expected += In.peek(I);
  EXPECT_EQ(stdlib::sum(Rt, In, Grain), Expected);
}

TEST_P(StdlibSweep, ScanExclusiveIsPrefixSum) {
  auto [N, Grain] = GetParam();
  Runtime Rt;
  auto In = stdlib::tabulate<std::uint32_t>(
      Rt, N, [](std::size_t I) { return std::uint32_t(I % 7); }, Grain);
  std::uint32_t Total = 0;
  auto Out = stdlib::scanExclusive(Rt, In, Total, Grain);
  std::uint32_t Running = 0;
  for (std::size_t I = 0; I < N; ++I) {
    ASSERT_EQ(Out.peek(I), Running) << I;
    Running += In.peek(I);
  }
  EXPECT_EQ(Total, Running);
}

TEST_P(StdlibSweep, FilterKeepsMatchingInOrder) {
  auto [N, Grain] = GetParam();
  Runtime Rt;
  auto In = stdlib::tabulate<std::uint32_t>(
      Rt, N, [](std::size_t I) { return std::uint32_t(I); }, Grain);
  std::size_t Kept = 0;
  auto Out = stdlib::filter<std::uint32_t>(
      Rt, In, [](std::uint32_t V) { return V % 3 == 0; }, Kept, Grain);
  std::vector<std::uint32_t> Expected;
  for (std::size_t I = 0; I < N; ++I)
    if (I % 3 == 0)
      Expected.push_back(std::uint32_t(I));
  ASSERT_EQ(Kept, Expected.size());
  for (std::size_t I = 0; I < Kept; ++I)
    ASSERT_EQ(Out.peek(I), Expected[I]) << I;
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, StdlibSweep,
    ::testing::Values(SizeGrain{1, 16}, SizeGrain{5, 2}, SizeGrain{64, 64},
                      SizeGrain{100, 7}, SizeGrain{1000, 64},
                      SizeGrain{4096, 128}));

TEST(Stdlib, FilterNothingKept) {
  Runtime Rt;
  auto In = stdlib::tabulate<int>(
      Rt, 100, [](std::size_t I) { return int(I); }, 16);
  std::size_t Kept = 1;
  auto Out =
      stdlib::filter<int>(Rt, In, [](int) { return false; }, Kept, 16);
  EXPECT_EQ(Kept, 0u);
  EXPECT_GE(Out.size(), 1u); // Placeholder allocation.
}

TEST(Stdlib, ReduceWithNonCommutativeShapeStillCorrect) {
  // Max-reduce: associative, order-insensitive for max.
  Runtime Rt;
  auto In = stdlib::tabulate<std::uint32_t>(
      Rt, 777, [](std::size_t I) { return std::uint32_t((I * 37) % 500); },
      32);
  std::uint32_t Expected = 0;
  for (std::size_t I = 0; I < 777; ++I)
    Expected = std::max(Expected, In.peek(I));
  std::uint32_t Got = stdlib::reduceRange<std::uint32_t>(
      Rt, 0, 777,
      [&](std::int64_t Lo, std::int64_t Hi) {
        std::uint32_t Best = 0;
        for (std::int64_t I = Lo; I < Hi; ++I)
          Best = std::max(Best, In.get(std::size_t(I)));
        return Best;
      },
      [](std::uint32_t A, std::uint32_t B) { return std::max(A, B); }, 32);
  EXPECT_EQ(Got, Expected);
}

// --- Parallel merge sort (pbbs/Sort.h) ------------------------------------------

class SortSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(SortSweep, SortsRandomInput) {
  std::size_t N = GetParam();
  Runtime Rt;
  auto In = Rt.allocArray<std::uint32_t>(std::max<std::size_t>(N, 1));
  Rng Random(N);
  for (std::size_t I = 0; I < N; ++I)
    In.poke(I, std::uint32_t(Random.nextBelow(1u << 30)));
  auto Sorted = pbbs::mergeSort(
      Rt, In, [](std::uint32_t A, std::uint32_t B) { return A < B; }, 16);

  std::vector<std::uint32_t> Expected(N);
  for (std::size_t I = 0; I < N; ++I)
    Expected[I] = In.peek(I);
  std::sort(Expected.begin(), Expected.end());
  ASSERT_EQ(Sorted.size(), std::max<std::size_t>(N, 1));
  for (std::size_t I = 0; I < N; ++I)
    ASSERT_EQ(Sorted.peek(I), Expected[I]) << I;
  EXPECT_TRUE(Rt.raceViolations().empty());
}

INSTANTIATE_TEST_SUITE_P(Sizes, SortSweep,
                         ::testing::Values(1, 2, 3, 16, 17, 100, 1024, 5000));

TEST(Sort, AlreadySortedAndReversedInputs) {
  for (bool Reversed : {false, true}) {
    Runtime Rt;
    auto In = Rt.allocArray<std::uint32_t>(512);
    for (std::size_t I = 0; I < 512; ++I)
      In.poke(I, std::uint32_t(Reversed ? 512 - I : I));
    auto Sorted = pbbs::mergeSort(
        Rt, In, [](std::uint32_t A, std::uint32_t B) { return A < B; }, 32);
    for (std::size_t I = 1; I < 512; ++I)
      ASSERT_LE(Sorted.peek(I - 1), Sorted.peek(I));
  }
}

TEST(Sort, StableForEqualKeysNotRequiredButTotal) {
  // All-equal input: output must be the same multiset.
  Runtime Rt;
  auto In = Rt.allocArray<std::uint32_t>(256);
  for (std::size_t I = 0; I < 256; ++I)
    In.poke(I, 7);
  auto Sorted = pbbs::mergeSort(
      Rt, In, [](std::uint32_t A, std::uint32_t B) { return A < B; }, 16);
  for (std::size_t I = 0; I < 256; ++I)
    ASSERT_EQ(Sorted.peek(I), 7u);
}

TEST(Sort, BinarySearchLowerBound) {
  Runtime Rt;
  auto In = Rt.allocArray<std::uint32_t>(100);
  for (std::size_t I = 0; I < 100; ++I)
    In.poke(I, std::uint32_t(I * 2));
  auto Less = [](std::uint32_t A, std::uint32_t B) { return A < B; };
  EXPECT_EQ(pbbs::lowerBoundRec(In, 0, 100, 50u, Less), 25u);
  EXPECT_EQ(pbbs::lowerBoundRec(In, 0, 100, 51u, Less), 26u);
  EXPECT_EQ(pbbs::lowerBoundRec(In, 0, 100, 0u, Less), 0u);
  EXPECT_EQ(pbbs::lowerBoundRec(In, 0, 100, 999u, Less), 100u);
}
