//===- tests/FlatMapTest.cpp - Open-addressing flat map unit tests -----------===//
//
// Part of the WARDen reproduction project.
//
//===----------------------------------------------------------------------===//

#include "src/support/FlatMap.h"

#include "src/support/Rng.h"
#include "src/support/Types.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <vector>

using namespace warden;

TEST(FlatMap, EmptyBehaviour) {
  FlatMap<Addr, int> Map;
  EXPECT_TRUE(Map.empty());
  EXPECT_EQ(Map.size(), 0u);
  EXPECT_EQ(Map.find(42), Map.end());
  EXPECT_FALSE(Map.contains(42));
  EXPECT_EQ(Map.erase(42), 0u);
  EXPECT_EQ(Map.begin(), Map.end());
}

TEST(FlatMap, InsertFindErase) {
  FlatMap<Addr, int> Map;
  Map[10] = 1;
  Map[20] = 2;
  Map[30] = 3;
  EXPECT_EQ(Map.size(), 3u);
  ASSERT_NE(Map.find(20), Map.end());
  EXPECT_EQ(Map.find(20).value(), 2);
  EXPECT_EQ(Map.erase(20), 1u);
  EXPECT_EQ(Map.find(20), Map.end());
  EXPECT_EQ(Map.size(), 2u);
  EXPECT_EQ(Map.find(10).value(), 1);
  EXPECT_EQ(Map.find(30).value(), 3);
}

TEST(FlatMap, OperatorBracketDefaultConstructs) {
  FlatMap<Addr, int> Map;
  EXPECT_EQ(Map[5], 0); // Value-initialized on first touch.
  Map[5] += 7;
  EXPECT_EQ(Map[5], 7);
  EXPECT_EQ(Map.size(), 1u);
}

TEST(FlatMap, TryEmplaceReportsExisting) {
  FlatMap<Addr, int> Map;
  auto [It1, Inserted1] = Map.try_emplace(9, 1);
  EXPECT_TRUE(Inserted1);
  EXPECT_EQ(It1.value(), 1);
  auto [It2, Inserted2] = Map.try_emplace(9, 2);
  EXPECT_FALSE(Inserted2);
  EXPECT_EQ(It2.value(), 1); // Existing value untouched.
}

TEST(FlatMap, GrowsThroughRehashes) {
  FlatMap<Addr, std::uint64_t> Map;
  constexpr std::uint64_t N = 50'000;
  for (std::uint64_t I = 0; I < N; ++I)
    Map[I * 64] = I;
  EXPECT_EQ(Map.size(), N);
  for (std::uint64_t I = 0; I < N; ++I) {
    auto It = Map.find(I * 64);
    ASSERT_NE(It, Map.end()) << "key " << I * 64;
    EXPECT_EQ(It.value(), I);
  }
  EXPECT_FALSE(Map.contains(N * 64));
}

TEST(FlatMap, ReserveAvoidsIteratorChurn) {
  FlatMap<Addr, int> Map;
  Map.reserve(1000);
  Map[1] = 11;
  auto It = Map.find(1);
  for (int I = 2; I < 1000; ++I)
    Map[static_cast<Addr>(I)] = I;
  // With capacity reserved up front, no rehash happened, so the early
  // iterator still points at its entry.
  EXPECT_EQ(It.key(), 1u);
  EXPECT_EQ(It.value(), 11);
}

TEST(FlatMap, BackwardShiftEraseKeepsProbeChainsIntact) {
  // Erase inside long collision chains and verify every survivor is still
  // reachable — the property tombstone-free deletion must preserve.
  FlatMap<std::uint32_t, std::uint32_t> Map;
  std::map<std::uint32_t, std::uint32_t> Reference;
  Rng Random(0xf1a7);
  for (unsigned Round = 0; Round < 20'000; ++Round) {
    std::uint32_t Key = static_cast<std::uint32_t>(Random.nextBelow(512));
    if (Random.nextBelow(3) == 0) {
      EXPECT_EQ(Map.erase(Key), Reference.erase(Key));
    } else {
      Map[Key] = Round;
      Reference[Key] = Round;
    }
    ASSERT_EQ(Map.size(), Reference.size());
  }
  for (const auto &[Key, Value] : Reference) {
    auto It = Map.find(Key);
    ASSERT_NE(It, Map.end()) << "lost key " << Key;
    EXPECT_EQ(It.value(), Value);
  }
  // And the map's own iteration sees exactly the reference's entries.
  std::size_t Seen = 0;
  for (auto [Key, Value] : Map) {
    auto RefIt = Reference.find(Key);
    ASSERT_NE(RefIt, Reference.end());
    EXPECT_EQ(Value, RefIt->second);
    ++Seen;
  }
  EXPECT_EQ(Seen, Reference.size());
}

TEST(FlatMap, ClearKeepsAllocationAndWorksAfter) {
  FlatMap<Addr, int> Map;
  for (int I = 0; I < 100; ++I)
    Map[static_cast<Addr>(I)] = I;
  Map.clear();
  EXPECT_TRUE(Map.empty());
  EXPECT_EQ(Map.find(5), Map.end());
  Map[5] = 55;
  EXPECT_EQ(Map.find(5).value(), 55);
}

TEST(FlatMap, EraseByIterator) {
  FlatMap<Addr, int> Map;
  Map[1] = 1;
  Map[2] = 2;
  auto It = Map.find(1);
  ASSERT_NE(It, Map.end());
  Map.erase(It);
  EXPECT_FALSE(Map.contains(1));
  EXPECT_TRUE(Map.contains(2));
}
