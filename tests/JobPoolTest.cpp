//===- tests/JobPoolTest.cpp - Host thread pool unit tests --------------------===//
//
// Part of the WARDen reproduction project.
//
//===----------------------------------------------------------------------===//

#include "src/support/JobPool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <functional>
#include <stdexcept>
#include <vector>

using namespace warden;

TEST(JobPool, SerialPoolRunsInline) {
  JobPool Pool(1);
  EXPECT_EQ(Pool.concurrency(), 1u);
  std::vector<int> Out(8, 0);
  std::vector<std::function<void()>> Tasks;
  for (int I = 0; I < 8; ++I)
    Tasks.push_back([&Out, I] { Out[static_cast<std::size_t>(I)] = I + 1; });
  Pool.runAll(std::move(Tasks));
  for (int I = 0; I < 8; ++I)
    EXPECT_EQ(Out[static_cast<std::size_t>(I)], I + 1);
}

TEST(JobPool, EmptyBatchIsANoOp) {
  JobPool Pool(4);
  Pool.runAll({});
}

TEST(JobPool, AllTasksRunExactlyOnce) {
  JobPool Pool(4);
  constexpr unsigned N = 500;
  std::vector<std::atomic<unsigned>> Hits(N);
  std::vector<std::function<void()>> Tasks;
  for (unsigned I = 0; I < N; ++I)
    Tasks.push_back([&Hits, I] { Hits[I].fetch_add(1); });
  Pool.runAll(std::move(Tasks));
  for (unsigned I = 0; I < N; ++I)
    EXPECT_EQ(Hits[I].load(), 1u) << "task " << I;
}

TEST(JobPool, ResultsIndependentOfScheduling) {
  // The determinism contract the simulation fan-out relies on: tasks that
  // write only their own slot produce the same output at any width.
  auto Compute = [](unsigned Width) {
    JobPool Pool(Width);
    std::vector<std::uint64_t> Out(64);
    std::vector<std::function<void()>> Tasks;
    for (std::size_t I = 0; I < Out.size(); ++I)
      Tasks.push_back([&Out, I] {
        std::uint64_t V = 0;
        for (std::uint64_t J = 0; J <= I * 97; ++J)
          V = V * 6364136223846793005ULL + J;
        Out[I] = V;
      });
    Pool.runAll(std::move(Tasks));
    return Out;
  };
  std::vector<std::uint64_t> Serial = Compute(1);
  EXPECT_EQ(Compute(2), Serial);
  EXPECT_EQ(Compute(4), Serial);
}

TEST(JobPool, NestedBatchesDoNotDeadlock) {
  // The harness shape (suite -> compare -> repeats) at every width,
  // including a pool with zero worker threads.
  for (unsigned Width : {1u, 2u, 4u}) {
    JobPool Pool(Width);
    std::atomic<unsigned> Leaves{0};
    std::vector<std::function<void()>> Outer;
    for (unsigned I = 0; I < 6; ++I)
      Outer.push_back([&Pool, &Leaves] {
        std::vector<std::function<void()>> Mid;
        for (unsigned J = 0; J < 2; ++J)
          Mid.push_back([&Pool, &Leaves] {
            std::vector<std::function<void()>> Inner;
            for (unsigned K = 0; K < 3; ++K)
              Inner.push_back([&Leaves] { Leaves.fetch_add(1); });
            Pool.runAll(std::move(Inner));
          });
        Pool.runAll(std::move(Mid));
      });
    Pool.runAll(std::move(Outer));
    EXPECT_EQ(Leaves.load(), 6u * 2u * 3u) << "width " << Width;
  }
}

TEST(JobPool, FirstExceptionPropagatesAfterDrain) {
  JobPool Pool(2);
  std::atomic<unsigned> Ran{0};
  std::vector<std::function<void()>> Tasks;
  for (unsigned I = 0; I < 16; ++I)
    Tasks.push_back([&Ran, I] {
      Ran.fetch_add(1);
      if (I == 3)
        throw std::runtime_error("task 3 failed");
    });
  EXPECT_THROW(Pool.runAll(std::move(Tasks)), std::runtime_error);
  // The batch drains fully even when a task throws.
  EXPECT_EQ(Ran.load(), 16u);
}

TEST(JobPool, ReusableAcrossBatches) {
  JobPool Pool(3);
  std::atomic<unsigned> Total{0};
  for (unsigned Round = 0; Round < 50; ++Round) {
    std::vector<std::function<void()>> Tasks;
    for (unsigned I = 0; I < 10; ++I)
      Tasks.push_back([&Total] { Total.fetch_add(1); });
    Pool.runAll(std::move(Tasks));
  }
  EXPECT_EQ(Total.load(), 500u);
}
