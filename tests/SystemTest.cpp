//===- tests/SystemTest.cpp - end-to-end system invariants --------------------===//
//
// Part of the WARDen reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// End-to-end properties of the whole stack, checked across machine
/// configurations: WARDen never adds invalidations/downgrades, legacy
/// (region-free) binaries behave identically under both protocols
/// (Figure 1), coverage and event statistics are self-consistent, and the
/// paper's correlation claims hold qualitatively.
///
//===----------------------------------------------------------------------===//

#include "src/core/WardenSystem.h"
#include "src/pbbs/Pbbs.h"
#include "src/rt/Stdlib.h"

#include <gtest/gtest.h>

using namespace warden;

namespace {

TaskGraph recordWorkload(const RtOptions &Options = RtOptions()) {
  Runtime Rt(Options);
  auto In = stdlib::tabulate<std::uint32_t>(
      Rt, 8192, [](std::size_t I) { return std::uint32_t((I * 2654435761u)); },
      128);
  auto Out = stdlib::mapArray<std::uint64_t>(
      Rt, In, [](std::uint32_t V) { return std::uint64_t(V) % 977; }, 128);
  std::uint64_t Total = stdlib::sum(Rt, Out, 128);
  EXPECT_GT(Total, 0u);
  return Rt.finish();
}

} // namespace

struct MachineCase {
  const char *Name;
  MachineConfig Config;
};

class SystemAcrossMachines : public ::testing::TestWithParam<MachineCase> {};

TEST_P(SystemAcrossMachines, WardenNeverAddsCoherenceEvents) {
  TaskGraph Graph = recordWorkload();
  ComparisonResult Cmp = WardenSystem::compareProtocols(
      Graph, GetParam().Config, {ProtocolKind::Mesi, ProtocolKind::Warden});
  const RunResult &Mesi = Cmp.run(ProtocolKind::Mesi);
  const RunResult &Warden = Cmp.run(ProtocolKind::Warden);
  // Downgrades come from demand traffic and must strictly shrink; the
  // invalidation count also includes scheduler deque/steal-probe ping-pong
  // whose volume depends on timing, so it gets a small tolerance.
  EXPECT_LE(Warden.Coherence.Downgrades, Mesi.Coherence.Downgrades);
  EXPECT_LE(Warden.Coherence.invPlusDown(),
            Mesi.Coherence.invPlusDown() * 11 / 10 + 64);
}

TEST_P(SystemAcrossMachines, BothProtocolsExecuteSameProgram) {
  TaskGraph Graph = recordWorkload();
  ComparisonResult Cmp = WardenSystem::compareProtocols(
      Graph, GetParam().Config, {ProtocolKind::Mesi, ProtocolKind::Warden});
  // Demand accesses are trace-driven and so protocol-independent up to
  // scheduler probes; loads+stores must match to within the probe noise.
  const CoherenceStats &MesiStats = Cmp.run(ProtocolKind::Mesi).Coherence;
  const CoherenceStats &WardenStats = Cmp.run(ProtocolKind::Warden).Coherence;
  std::uint64_t MesiDemand = MesiStats.Loads + MesiStats.Stores;
  std::uint64_t WardenDemand = WardenStats.Loads + WardenStats.Stores;
  double Ratio =
      static_cast<double>(WardenDemand) / static_cast<double>(MesiDemand);
  EXPECT_GT(Ratio, 0.8);
  EXPECT_LT(Ratio, 1.2);
}

TEST_P(SystemAcrossMachines, CoverageStatisticIsConsistent) {
  TaskGraph Graph = recordWorkload();
  RunResult R =
      WardenSystem::simulate(Graph, GetParam().Config, /*Seed=*/0x5eed);
  EXPECT_GE(R.wardCoverage(), 0.0);
  EXPECT_LE(R.wardCoverage(), 1.0);
  EXPECT_LE(R.Coherence.WardRegionAccesses, R.Coherence.accesses());
}

TEST_P(SystemAcrossMachines, EnergyIsPositiveAndDecomposes) {
  TaskGraph Graph = recordWorkload();
  RunResult R = WardenSystem::simulate(Graph, GetParam().Config);
  EXPECT_GT(R.Energy.totalProcessorNJ(), 0.0);
  EXPECT_GT(R.Energy.interconnectNJ(), 0.0);
  EXPECT_LT(R.Energy.interconnectNJ(), R.Energy.totalProcessorNJ());
}

INSTANTIATE_TEST_SUITE_P(
    Machines, SystemAcrossMachines,
    ::testing::Values(
        MachineCase{"single", MachineConfig::singleSocket()},
        MachineCase{"dual", MachineConfig::dualSocket()},
        MachineCase{"disaggregated", MachineConfig::disaggregated()},
        MachineCase{"quad", MachineConfig::manySocket(4)}),
    [](const ::testing::TestParamInfo<MachineCase> &Info) {
      return Info.param.Name;
    });

// --- Legacy applications (Figure 1) --------------------------------------------

TEST(Legacy, RegionFreeBinaryIdenticalUnderBothProtocols) {
  RtOptions Options;
  Options.EmitWardRegions = false;
  TaskGraph Graph = recordWorkload(Options);
  MachineConfig Config = MachineConfig::dualSocket();
  Config.Protocol = ProtocolKind::Mesi;
  RunResult Mesi = WardenSystem::simulate(Graph, Config, 0x123);
  Config.Protocol = ProtocolKind::Warden;
  RunResult Warden = WardenSystem::simulate(Graph, Config, 0x123);
  // With no region instructions, WARDen *is* MESI: cycle-identical.
  EXPECT_EQ(Mesi.Makespan, Warden.Makespan);
  EXPECT_EQ(Mesi.Coherence.Invalidations, Warden.Coherence.Invalidations);
  EXPECT_EQ(Mesi.Coherence.Downgrades, Warden.Coherence.Downgrades);
  EXPECT_EQ(Mesi.Instructions, Warden.Instructions);
}

// --- Determinism -----------------------------------------------------------------

TEST(Determinism, SameSeedSameResult) {
  TaskGraph Graph = recordWorkload();
  MachineConfig Config = MachineConfig::dualSocket();
  Config.Protocol = ProtocolKind::Warden;
  RunResult A = WardenSystem::simulate(Graph, Config, 99);
  RunResult B = WardenSystem::simulate(Graph, Config, 99);
  EXPECT_EQ(A.Makespan, B.Makespan);
  EXPECT_EQ(A.Instructions, B.Instructions);
  EXPECT_EQ(A.Coherence.Invalidations, B.Coherence.Invalidations);
  EXPECT_EQ(A.Coherence.MsgsInterSocket, B.Coherence.MsgsInterSocket);
}

TEST(Determinism, RecordingIsDeterministic) {
  TaskGraph A = recordWorkload();
  TaskGraph B = recordWorkload();
  ASSERT_EQ(A.size(), B.size());
  EXPECT_EQ(A.totalInstructions(), B.totalInstructions());
  EXPECT_EQ(A.totalEvents(), B.totalEvents());
  EXPECT_EQ(A.spanInstructions(), B.spanInstructions());
}

// --- Qualitative paper claims ----------------------------------------------------

TEST(PaperClaims, BenefitGrowsFromSingleToDualSocket) {
  pbbs::Recorded R = pbbs::recordPrimes(20000, RtOptions());
  ASSERT_TRUE(R.Verified);
  ComparisonResult Single = WardenSystem::compareProtocols(
      R.Graph, MachineConfig::singleSocket(),
      {ProtocolKind::Mesi, ProtocolKind::Warden});
  ComparisonResult Dual = WardenSystem::compareProtocols(
      R.Graph, MachineConfig::dualSocket(),
      {ProtocolKind::Mesi, ProtocolKind::Warden});
  EXPECT_GT(Dual.speedup(ProtocolKind::Warden), 1.0);
  // The dual-socket machine should benefit at least about as much.
  EXPECT_GT(Dual.speedup(ProtocolKind::Warden),
            Single.speedup(ProtocolKind::Warden) - 0.08);
}

TEST(PaperClaims, ReconciliationIsRareRelativeToExecution) {
  pbbs::Recorded R = pbbs::recordMsort(4096, RtOptions());
  ASSERT_TRUE(R.Verified);
  MachineConfig Config = MachineConfig::dualSocket();
  Config.Protocol = ProtocolKind::Warden;
  RunResult Run = WardenSystem::simulate(R.Graph, Config);
  // Section 6.1 observed ~1 block per 50k cycles in their prototype; our
  // fine-grained workloads reconcile more often, but the synchronous cost
  // must stay a small fraction of execution.
  EXPECT_LT(Run.Sched.RegionInstrCycles, Run.Makespan / 5);
}

TEST(PaperClaims, RegionTableSizedGenerously) {
  pbbs::Recorded R = pbbs::recordTokens(16384, RtOptions());
  ASSERT_TRUE(R.Verified);
  MachineConfig Config = MachineConfig::dualSocket();
  Config.Protocol = ProtocolKind::Warden;
  RunResult Run = WardenSystem::simulate(R.Graph, Config);
  // The 1024-entry CAM of Section 6.1 should rarely if ever overflow.
  EXPECT_LT(Run.PeakRegions, 1024u);
  EXPECT_EQ(Run.Coherence.RegionOverflows, 0u);
}
