//===- tests/RuntimeTest.cpp - runtime / heap-hierarchy unit tests -----------===//
//
// Part of the WARDen reproduction project.
//
//===----------------------------------------------------------------------===//

#include "src/rt/SimArray.h"
#include "src/rt/Stdlib.h"

#include <gtest/gtest.h>

#include <algorithm>

using namespace warden;

namespace {

/// Counts events of one kind across the whole graph.
std::uint64_t countEvents(const TaskGraph &Graph, TraceOp Op) {
  std::uint64_t Count = 0;
  for (StrandId Id = 0; Id < Graph.size(); ++Id)
    for (const TraceEvent &E : Graph.strand(Id).Events)
      Count += (E.Op == Op);
  return Count;
}

} // namespace

// --- SimMemory ---------------------------------------------------------------

TEST(SimMemory, SpansAreDisjointAndAligned) {
  SimMemory Memory;
  Addr A = Memory.allocateSpan(100, 64);
  Addr B = Memory.allocateSpan(100, 64);
  EXPECT_EQ(A % 64, 0u);
  EXPECT_EQ(B % 64, 0u);
  EXPECT_GE(B, A + 100);
}

TEST(SimMemory, HostStorageIsZeroedAndWritable) {
  SimMemory Memory;
  Addr A = Memory.allocateSpan(64, 8);
  std::byte *Host = Memory.host(A);
  for (unsigned I = 0; I < 64; ++I)
    EXPECT_EQ(Host[I], std::byte{0});
  Host[10] = std::byte{42};
  EXPECT_EQ(Memory.host(A + 10)[0], std::byte{42});
}

TEST(SimMemory, TracksFootprint) {
  SimMemory Memory;
  Memory.allocateSpan(4096, 4096);
  Memory.allocateSpan(64, 64);
  EXPECT_EQ(Memory.bytesAllocated(), 4160u);
}

// --- Allocation / marking ------------------------------------------------------

TEST(Runtime, SmallAllocationsShareAPage) {
  Runtime Rt;
  Addr A = Rt.allocate(16, 8);
  Addr B = Rt.allocate(16, 8);
  EXPECT_EQ(A >> 12, B >> 12); // Same 4 KB page.
}

TEST(Runtime, LargeAllocationsGetDedicatedSpans) {
  Runtime Rt;
  Addr A = Rt.allocate(8192, 8);
  Addr B = Rt.allocate(16, 8);
  EXPECT_EQ(A % 64, 0u);
  EXPECT_NE(A >> 12, B >> 12);
}

TEST(Runtime, FreshSpansEmitMarkEvents) {
  Runtime Rt;
  Rt.allocate(16, 8);   // One page.
  Rt.allocate(8192, 8); // One dedicated span.
  TaskGraph Graph = Rt.finish();
  EXPECT_EQ(countEvents(Graph, TraceOp::MarkRegion), 2u);
}

TEST(Runtime, LegacyModeEmitsNoRegions) {
  RtOptions Options;
  Options.EmitWardRegions = false;
  Runtime Rt(Options);
  auto Data = Rt.allocArray<int>(4096);
  Rt.parallelFor(0, 4096, 64,
                 [&](std::int64_t I) { Data.set(I, int(I)); });
  TaskGraph Graph = Rt.finish();
  EXPECT_EQ(countEvents(Graph, TraceOp::MarkRegion), 0u);
  EXPECT_EQ(countEvents(Graph, TraceOp::UnmarkRegion), 0u);
}

TEST(Runtime, ForkUnmarksCurrentHeap) {
  Runtime Rt;
  Rt.allocate(16, 8); // Marks the first page.
  Rt.fork2([] {}, [] {});
  TaskGraph Graph = Rt.finish();
  // The page mark must have a matching unmark in the fork strand.
  const Strand &Root = Graph.strand(Graph.root());
  bool SawMark = false;
  bool UnmarkAfterMark = false;
  for (const TraceEvent &E : Root.Events) {
    if (E.Op == TraceOp::MarkRegion && E.Region == 0)
      SawMark = true;
    if (E.Op == TraceOp::UnmarkRegion && E.Region == 0 && SawMark)
      UnmarkAfterMark = true;
  }
  EXPECT_TRUE(SawMark);
  EXPECT_TRUE(UnmarkAfterMark);
}

TEST(Runtime, ChildHeapUnmarkedAtJoin) {
  Runtime Rt;
  Rt.fork2([&] { Rt.allocate(32, 8); }, [] {});
  TaskGraph Graph = Rt.finish();
  // Every region that was marked is eventually unmarked except the root
  // heap's trailing spans (none here beyond scheduler pages).
  std::uint64_t Marks = countEvents(Graph, TraceOp::MarkRegion);
  std::uint64_t Unmarks = countEvents(Graph, TraceOp::UnmarkRegion);
  EXPECT_GT(Marks, 0u);
  EXPECT_EQ(Marks, Unmarks);
}

TEST(Runtime, MarkAndUnmarkRegionsBalanceForKernels) {
  Runtime Rt;
  auto Out = stdlib::tabulate<int>(
      Rt, 2048, [](std::size_t I) { return int(I); }, 64);
  int Total = stdlib::sum(Rt, Out, 64);
  EXPECT_GT(Total, 0);
  TaskGraph Graph = Rt.finish();
  std::uint64_t Marks = countEvents(Graph, TraceOp::MarkRegion);
  std::uint64_t Unmarks = countEvents(Graph, TraceOp::UnmarkRegion);
  EXPECT_GT(Marks, 0u);
  // At most the root task's live pages can remain marked at exit.
  EXPECT_LE(Marks - Unmarks, 4u);
}

// --- Fork/join structure -----------------------------------------------------

TEST(Runtime, Fork2BuildsJoinStructure) {
  Runtime Rt;
  int Ran = 0;
  Rt.fork2([&] { Ran += 1; }, [&] { Ran += 2; });
  EXPECT_EQ(Ran, 3);
  TaskGraph Graph = Rt.finish();
  ASSERT_EQ(Graph.size(), 4u); // Root-fork, continuation, two children.
  const Strand &Root = Graph.strand(Graph.root());
  ASSERT_EQ(Root.Children.size(), 2u);
  StrandId Cont = InvalidStrand;
  for (StrandId Id = 0; Id < Graph.size(); ++Id)
    if (Graph.strand(Id).PendingJoin == 2)
      Cont = Id;
  ASSERT_NE(Cont, InvalidStrand);
  for (StrandId Child : Root.Children)
    EXPECT_EQ(Graph.strand(Child).JoinTarget, Cont);
  EXPECT_NE(Graph.strand(Cont).JoinCounterAddr, 0u);
}

TEST(Runtime, NestedForksNestProperly) {
  Runtime Rt;
  std::vector<int> Order;
  Rt.fork2(
      [&] {
        Rt.fork2([&] { Order.push_back(1); }, [&] { Order.push_back(2); });
        Order.push_back(3);
      },
      [&] { Order.push_back(4); });
  TaskGraph Graph = Rt.finish();
  EXPECT_EQ(Graph.size(), 7u);
  EXPECT_EQ(Order, (std::vector<int>{1, 2, 3, 4}));
}

class ParallelForSweep
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(ParallelForSweep, VisitsEveryIndexExactlyOnce) {
  auto [N, Grain] = GetParam();
  Runtime Rt;
  std::vector<int> Hits(static_cast<std::size_t>(N), 0);
  Rt.parallelFor(0, N, Grain,
                 [&](std::int64_t I) { Hits[static_cast<std::size_t>(I)]++; });
  for (int I = 0; I < N; ++I)
    EXPECT_EQ(Hits[static_cast<std::size_t>(I)], 1) << I;
  TaskGraph Graph = Rt.finish();
  if (N > Grain)
    EXPECT_GT(Graph.size(), 1u);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, ParallelForSweep,
    ::testing::Combine(::testing::Values(0, 1, 7, 64, 1000),
                       ::testing::Values(1, 3, 64, 1024)));

// --- SimArray -------------------------------------------------------------------

TEST(SimArray, GetSetRoundTrip) {
  Runtime Rt;
  auto Data = Rt.allocArray<std::uint64_t>(128);
  for (std::size_t I = 0; I < 128; ++I)
    Data.set(I, I * 3);
  for (std::size_t I = 0; I < 128; ++I)
    EXPECT_EQ(Data.get(I), I * 3);
}

TEST(SimArray, PeekPokeDoNotRecord) {
  Runtime Rt;
  auto Data = Rt.allocArray<int>(16);
  Data.poke(3, 99);
  EXPECT_EQ(Data.peek(3), 99);
  TaskGraph Graph = Rt.finish();
  EXPECT_EQ(countEvents(Graph, TraceOp::Load), 0u);
  EXPECT_EQ(countEvents(Graph, TraceOp::Store), 0u);
}

TEST(SimArray, RecordsOneEventPerAccess) {
  Runtime Rt;
  auto Data = Rt.allocArray<int>(16);
  Data.set(0, 1);
  Data.set(1, 2);
  int V = Data.get(0);
  EXPECT_EQ(V, 1);
  TaskGraph Graph = Rt.finish();
  EXPECT_EQ(countEvents(Graph, TraceOp::Store), 2u);
  EXPECT_EQ(countEvents(Graph, TraceOp::Load), 1u);
}

TEST(SimArray, AddressesAreContiguous) {
  Runtime Rt;
  auto Data = Rt.allocArray<std::uint32_t>(8);
  EXPECT_EQ(Data.addrOf(3), Data.addr() + 12);
  EXPECT_EQ(Data.bytes(), 32u);
}

TEST(SimVar, SingleValueRoundTrip) {
  Runtime Rt;
  SimVar<double> V = allocVar<double>(Rt);
  V.set(2.5);
  EXPECT_DOUBLE_EQ(V.get(), 2.5);
}

// --- Work accounting ---------------------------------------------------------

TEST(Runtime, WorkEventsCoalesce) {
  Runtime Rt;
  Rt.work(5);
  Rt.work(7);
  TaskGraph Graph = Rt.finish();
  const Strand &Root = Graph.strand(Graph.root());
  ASSERT_EQ(Root.Events.size(), 1u);
  EXPECT_EQ(Root.Events[0].Op, TraceOp::Work);
  EXPECT_EQ(Root.Events[0].Extra, 12u);
}

TEST(Runtime, ZeroWorkIsIgnored) {
  Runtime Rt;
  Rt.work(0);
  TaskGraph Graph = Rt.finish();
  EXPECT_TRUE(Graph.strand(Graph.root()).Events.empty());
}

// --- Write-only scopes ---------------------------------------------------------

TEST(WriteOnlyScope, KeepsSpanMarkedAcrossFork) {
  Runtime Rt;
  auto Data = Rt.allocArray<int>(1024); // Dedicated span (4 KB).
  {
    Runtime::WriteOnlyScope Scope(Rt, Data.addr(), Data.bytes());
    ASSERT_TRUE(Scope.active());
    Rt.parallelFor(0, 1024, 128,
                   [&](std::int64_t I) { Data.set(I, int(I)); });
  }
  EXPECT_TRUE(Rt.raceViolations().empty());
  TaskGraph Graph = Rt.finish();
  // Collect mark/unmark for the data span's region: the region marked at
  // allocation must be unmarked exactly once (at scope end), not at the
  // first fork.
  std::uint64_t Marks = countEvents(Graph, TraceOp::MarkRegion);
  std::uint64_t Unmarks = countEvents(Graph, TraceOp::UnmarkRegion);
  EXPECT_EQ(Marks, Unmarks);
}

TEST(WriteOnlyScope, InactiveForSmallAllocations) {
  Runtime Rt;
  auto Data = Rt.allocArray<int>(4); // Bump allocation.
  Runtime::WriteOnlyScope Scope(Rt, Data.addr(), Data.bytes());
  EXPECT_FALSE(Scope.active());
}

TEST(WriteOnlyScope, RemarksSpanWhoseRegionEnded) {
  Runtime Rt;
  auto Data = Rt.allocArray<int>(1024);
  Rt.fork2([] {}, [] {}); // Conservative unmark of the span.
  {
    Runtime::WriteOnlyScope Scope(Rt, Data.addr(), Data.bytes());
    EXPECT_TRUE(Scope.active()); // Re-marked for the new write phase.
  }
  TaskGraph Graph = Rt.finish();
  EXPECT_EQ(countEvents(Graph, TraceOp::MarkRegion),
            countEvents(Graph, TraceOp::UnmarkRegion));
}

TEST(WriteOnlyScope, DetectsRawViolation) {
  Runtime Rt;
  auto Data = Rt.allocArray<int>(1024);
  {
    Runtime::WriteOnlyScope Scope(Rt, Data.addr(), Data.bytes());
    // One child writes Data[0]; its sibling reads it: a cross-thread RAW
    // inside a kept region — exactly what the checker must reject.
    Rt.fork2([&] { Data.set(0, 42); }, [&] { (void)Data.get(0); });
  }
  EXPECT_FALSE(Rt.raceViolations().empty());
}

TEST(WriteOnlyScope, WawAcrossSiblingsIsAccepted) {
  Runtime Rt;
  auto Data = Rt.allocArray<int>(1024);
  {
    Runtime::WriteOnlyScope Scope(Rt, Data.addr(), Data.bytes());
    Rt.fork2([&] { Data.set(0, 1); }, [&] { Data.set(0, 1); });
  }
  EXPECT_TRUE(Rt.raceViolations().empty());
}
