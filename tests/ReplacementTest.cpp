//===- tests/ReplacementTest.cpp - replacement-policy registry tests --------===//
//
// Part of the WARDen reproduction project.
//
//===----------------------------------------------------------------------===//
//
// The pluggable replacement-policy layer: registry round-trips, the strict
// --replacement list parser, behavioural sanity of the shipped policies,
// the learned policy's training determinism, the probe-hint contract for
// line-reordering policies, and the end-to-end configuration plumbing
// (MachineConfig validation, RunOptions override, premature-miss
// attribution).
//
//===----------------------------------------------------------------------===//

#include "src/core/WardenSystem.h"
#include "src/mem/CacheArray.h"
#include "src/mem/ReplacementPolicy.h"
#include "src/obs/Observability.h"
#include "src/rt/SimArray.h"
#include "src/rt/Stdlib.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <utility>

using namespace warden;

// --- Registry ----------------------------------------------------------------

TEST(ReplacementRegistry, BuiltinsRegisteredInOrder) {
  std::vector<std::string> Ids = registeredReplacementIds();
  auto IndexOf = [&Ids](const std::string &Id) {
    return std::find(Ids.begin(), Ids.end(), Id) - Ids.begin();
  };
  ASSERT_NE(IndexOf("lru"), static_cast<std::ptrdiff_t>(Ids.size()));
  ASSERT_NE(IndexOf("rrip"), static_cast<std::ptrdiff_t>(Ids.size()));
  ASSERT_NE(IndexOf("perceptron"), static_cast<std::ptrdiff_t>(Ids.size()));
  ASSERT_NE(IndexOf("perceptron-ward"),
            static_cast<std::ptrdiff_t>(Ids.size()));
  // Registration order is the presentation order everywhere (error
  // messages, warden-verify --list): lru first.
  EXPECT_LT(IndexOf("lru"), IndexOf("rrip"));
  EXPECT_LT(IndexOf("rrip"), IndexOf("perceptron"));
  EXPECT_LT(IndexOf("perceptron"), IndexOf("perceptron-ward"));
  EXPECT_TRUE(isRegisteredReplacementId("lru"));
  EXPECT_FALSE(isRegisteredReplacementId("clock"));
  EXPECT_EQ(DefaultReplacementId, "lru");
}

TEST(ReplacementRegistry, UnknownIdThrowsListingRegisteredIds) {
  CacheGeometry G(512, 2, 64);
  try {
    makeReplacementPolicy("clock", G);
    FAIL() << "unknown id must throw";
  } catch (const std::invalid_argument &E) {
    std::string What = E.what();
    EXPECT_NE(What.find("clock"), std::string::npos) << What;
    EXPECT_NE(What.find("registered ids"), std::string::npos) << What;
    EXPECT_NE(What.find("lru"), std::string::npos) << What;
    EXPECT_NE(What.find("perceptron-ward"), std::string::npos) << What;
  }
}

TEST(ReplacementRegistry, RegisterRoundTripAndReplace) {
  // A fresh id registers as new, is constructible, shows in the id list,
  // and re-registering the same id replaces (returns false).
  EXPECT_TRUE(registerReplacementPolicy(
      "test-roundtrip", [](const CacheGeometry &G) {
        return std::unique_ptr<ReplacementPolicy>(new LruPolicy(G));
      }));
  EXPECT_TRUE(isRegisteredReplacementId("test-roundtrip"));
  std::vector<std::string> Ids = registeredReplacementIds();
  EXPECT_NE(std::find(Ids.begin(), Ids.end(), "test-roundtrip"), Ids.end());

  CacheGeometry G(512, 2, 64);
  std::unique_ptr<ReplacementPolicy> P =
      makeReplacementPolicy("test-roundtrip", G);
  ASSERT_NE(P, nullptr);
  EXPECT_NE(P->asLru(), nullptr); // It is an LruPolicy subclass.

  EXPECT_FALSE(registerReplacementPolicy(
      "test-roundtrip", [](const CacheGeometry &Geo) {
        return std::unique_ptr<ReplacementPolicy>(new LruPolicy(Geo));
      }));
  // Replacing must not duplicate the id.
  std::vector<std::string> After = registeredReplacementIds();
  EXPECT_EQ(std::count(After.begin(), After.end(),
                       std::string("test-roundtrip")),
            1);
}

// --- parseReplacementList ----------------------------------------------------

TEST(ParseReplacementList, AcceptsValidLists) {
  std::string Error;
  std::optional<std::vector<std::string>> One =
      parseReplacementList("lru", Error);
  ASSERT_TRUE(One.has_value()) << Error;
  EXPECT_EQ(*One, std::vector<std::string>{"lru"});

  std::optional<std::vector<std::string>> Many =
      parseReplacementList("perceptron,lru,rrip", Error);
  ASSERT_TRUE(Many.has_value()) << Error;
  EXPECT_EQ(*Many,
            (std::vector<std::string>{"perceptron", "lru", "rrip"}));
}

TEST(ParseReplacementList, RejectsMalformedLists) {
  struct Case {
    const char *List;
    const char *ExpectInError;
  };
  const Case Cases[] = {
      {"", "empty replacement list"},
      {"lru,", "empty replacement id"},
      {",lru", "empty replacement id"},
      {"lru,,rrip", "empty replacement id"},
      {"clock", "unknown replacement id"},
      {"lru,clock", "unknown replacement id"},
      {"lru,lru", "duplicate replacement id"},
  };
  for (const Case &C : Cases) {
    std::string Error;
    EXPECT_FALSE(parseReplacementList(C.List, Error).has_value()) << C.List;
    EXPECT_NE(Error.find(C.ExpectInError), std::string::npos)
        << "list '" << C.List << "' produced error: " << Error;
  }
  // Unknown-id errors list the registered ids.
  std::string Error;
  parseReplacementList("clock", Error);
  EXPECT_NE(Error.find("lru"), std::string::npos) << Error;
}

// --- Policy behaviour --------------------------------------------------------

namespace {

/// Deterministic block-address sequence generator (SplitMix64-shaped, no
/// host randomness) confined to a small footprint so sets conflict.
struct AddrStream {
  std::uint64_t State;
  explicit AddrStream(std::uint64_t Seed) : State(Seed) {}
  Addr next() {
    State += 0x9e3779b97f4a7c15ULL;
    std::uint64_t Z = State;
    Z = (Z ^ (Z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    Z = (Z ^ (Z >> 27)) * 0x94d049bb133111ebULL;
    Z ^= Z >> 31;
    return (Z % 64) * 64; // 64 distinct blocks over a 512 B, 8-set array.
  }
};

/// Drives \p Cache with \p Ops mixed lookups/inserts from \p Seed and
/// returns the exact displaced-block sequence.
std::vector<Addr> driveCache(CacheArray &Cache, std::uint64_t Seed,
                             unsigned Ops) {
  AddrStream Stream(Seed);
  std::vector<Addr> Displaced;
  for (unsigned I = 0; I < Ops; ++I) {
    Addr Block = Stream.next();
    if (Cache.lookup(Block))
      continue;
    if (std::optional<EvictedLine> V =
            Cache.insert(Block, I % 3 ? LineState::Shared
                                      : LineState::Modified))
      Displaced.push_back(V->Block);
  }
  return Displaced;
}

} // namespace

TEST(ReplacementPolicies, ExplicitLruMatchesDefault) {
  CacheGeometry G(512, 2, 64);
  CacheArray Default(G);
  CacheArray Explicit(G, "lru");
  EXPECT_EQ(driveCache(Default, 0x1234, 4096),
            driveCache(Explicit, 0x1234, 4096));
  EXPECT_EQ(Default.validLineCount(), Explicit.validLineCount());
}

TEST(ReplacementPolicies, RripPromotesOnHitAndAgesOnVictim) {
  // 4 sets x 2 ways. Blocks 0 and 256 share set 0; a hit on 0 must
  // protect it, making 256 the victim when 512 conflicts.
  CacheArray Cache(CacheGeometry(512, 2, 64), "rrip");
  Cache.insert(0, LineState::Shared);
  Cache.insert(256, LineState::Shared);
  Cache.lookup(0); // RRPV(0) -> 0; RRPV(256) stays at fill value.
  std::optional<EvictedLine> Victim = Cache.insert(512, LineState::Shared);
  ASSERT_TRUE(Victim.has_value());
  EXPECT_EQ(Victim->Block, 256u);
  EXPECT_NE(Cache.probe(0), nullptr);
}

TEST(ReplacementPolicies, AllBuiltinsSurviveAChurnSweep) {
  for (const std::string &Id : registeredReplacementIds()) {
    CacheArray Cache(CacheGeometry(1024, 4, 64), Id);
    driveCache(Cache, 0xabcd, 8192);
    EXPECT_LE(Cache.validLineCount(), 16u) << Id;
    EXPECT_GT(Cache.validLineCount(), 0u) << Id;
    // Every resident line still answers a probe by address.
    Cache.forEachValidLine([&](CacheLine &Line) {
      CacheLine *Hit = Cache.probe(Line.Block);
      ASSERT_NE(Hit, nullptr) << Id;
      EXPECT_EQ(Hit->Block, Line.Block) << Id;
    });
  }
}

TEST(ReplacementPolicies, PerceptronTrainingIsDeterministic) {
  // Two arrays driven by the identical sequence must make identical
  // victim choices at every step: training is a pure function of the
  // access stream (integer weights, no host state).
  for (const char *Id : {"perceptron", "perceptron-ward"}) {
    CacheGeometry G(512, 2, 64);
    CacheArray A(G, Id);
    CacheArray B(G, Id);
    EXPECT_EQ(driveCache(A, 0x5eed, 16384), driveCache(B, 0x5eed, 16384))
        << Id;
    EXPECT_EQ(A.validLineCount(), B.validLineCount()) << Id;
  }
}

TEST(ReplacementPolicies, PerceptronWardConsultsRegionProbe) {
  // The ward variant's fill-time features read the installed probe; with
  // the probe answering true for one address range the displaced
  // sequences may legitimately differ from the probe-less array, but both
  // must stay internally deterministic.
  CacheGeometry G(512, 2, 64);
  CacheArray WithProbe(G, "perceptron-ward");
  unsigned Consulted = 0;
  WithProbe.replacementPolicy().setRegionProbe([&Consulted](Addr Block) {
    ++Consulted;
    return Block < 2048;
  });
  driveCache(WithProbe, 0x5eed, 4096);
  EXPECT_GT(Consulted, 0u) << "fill-time features never read the probe";
}

// --- Probe-hint contract for line-reordering policies ------------------------

namespace {

/// A deliberately adversarial policy: every fill swaps the filled line to
/// way 0 (stack order) and leaves the per-set probe hint stale. Legal per
/// the fill() contract — the array must re-verify the hint's block
/// address, never trust it unconditionally.
class RotatingPolicy final : public ReplacementPolicy {
public:
  explicit RotatingPolicy(const CacheGeometry &Geometry)
      : ReplacementPolicy(Geometry) {}
  void touch(CacheLine *, unsigned, unsigned) override {}
  unsigned victim(CacheLine *, unsigned) override {
    return Geometry.Assoc - 1; // Stack bottom.
  }
  void fill(CacheLine *Set, unsigned, unsigned Way) override {
    for (unsigned W = Way; W > 0; --W)
      std::swap(Set[W], Set[W - 1]);
  }
};

} // namespace

TEST(ReplacementPolicies, ProbeNeverTrustsAStaleHint) {
  registerReplacementPolicy("test-rotate", [](const CacheGeometry &G) {
    return std::unique_ptr<ReplacementPolicy>(new RotatingPolicy(G));
  });
  CacheArray Cache(CacheGeometry(512, 2, 64), "test-rotate");
  // Both blocks land in set 0; the second fill rotates itself into way 0
  // while the array's hint still points at the way it filled (way 1,
  // which now holds block 0). An unconditionally trusted hint would
  // return block 0 for a probe of 256.
  Cache.insert(0, LineState::Shared);
  Cache.insert(256, LineState::Shared);
  CacheLine *B = Cache.probe(256);
  ASSERT_NE(B, nullptr);
  EXPECT_EQ(B->Block, 256u);
  CacheLine *A = Cache.probe(0);
  ASSERT_NE(A, nullptr);
  EXPECT_EQ(A->Block, 0u);
  // Same for lookup (the recency-updating path) and after an eviction.
  EXPECT_EQ(Cache.lookup(0)->Block, 0u);
  std::optional<EvictedLine> Victim = Cache.insert(512, LineState::Shared);
  ASSERT_TRUE(Victim.has_value());
  EXPECT_EQ(Cache.probe(512)->Block, 512u);
  EXPECT_EQ(Cache.probe(Victim->Block), nullptr);
}

// --- Configuration plumbing --------------------------------------------------

TEST(ReplacementConfig, ValidateRejectsUnknownId) {
  MachineConfig Config = MachineConfig::singleSocket();
  EXPECT_TRUE(Config.validate().empty());
  Config.Replacement = "clock";
  std::vector<std::string> Errors = Config.validate();
  ASSERT_EQ(Errors.size(), 1u);
  EXPECT_NE(Errors[0].find("unknown replacement id 'clock'"),
            std::string::npos)
      << Errors[0];
  EXPECT_NE(Errors[0].find("lru"), std::string::npos) << Errors[0];
}

namespace {

TaskGraph recordTinyWorkload() {
  return WardenSystem::record([](Runtime &Rt) {
    SimArray<int> Out = stdlib::tabulate<int>(
        Rt, 2048, [](std::size_t I) { return static_cast<int>(I); }, 64);
    (void)Out;
  });
}

} // namespace

TEST(ReplacementConfig, EveryPolicySimulatesEndToEnd) {
  TaskGraph Graph = recordTinyWorkload();
  MachineConfig Config = MachineConfig::singleSocket();
  for (const std::string &Id :
       {std::string("lru"), std::string("rrip"), std::string("perceptron"),
        std::string("perceptron-ward")}) {
    Config.Replacement = Id;
    RunResult R = WardenSystem::simulate(Graph, Config);
    EXPECT_GT(R.Makespan, 0u) << Id;
    EXPECT_GT(R.Instructions, 0u) << Id;
  }
}

TEST(ReplacementConfig, RunOptionsOverrideMatchesConfigField) {
  TaskGraph Graph = recordTinyWorkload();
  MachineConfig Lru = MachineConfig::singleSocket();

  MachineConfig Rrip = Lru;
  Rrip.Replacement = "rrip";
  RunResult ViaConfig = WardenSystem::simulate(Graph, Rrip);

  RunOptions Options;
  Options.Replacement = "rrip";
  RunResult ViaOverride = WardenSystem::simulate(Graph, Lru, Options);

  EXPECT_EQ(ViaConfig.Makespan, ViaOverride.Makespan);
  EXPECT_EQ(ViaConfig.Coherence.accesses(),
            ViaOverride.Coherence.accesses());
  EXPECT_EQ(ViaConfig.Coherence.Invalidations,
            ViaOverride.Coherence.Invalidations);

  // An unknown override fails validation like the config field does.
  RunOptions Bad;
  Bad.Replacement = "clock";
  EXPECT_THROW(WardenSystem::simulate(Graph, Lru, Bad),
               std::invalid_argument);
}

// --- Premature-miss attribution ----------------------------------------------

namespace {

/// Machine with deliberately tiny caches so a modest working set churns
/// through capacity evictions and re-fetches.
MachineConfig tinyCacheMachine() {
  MachineConfig Config = MachineConfig::singleSocket();
  Config.L1SizeKB = 1;
  Config.L1Assoc = 2;
  Config.L2SizeKB = 2;
  Config.L2Assoc = 2;
  Config.L3SizePerCoreKB = 1;
  Config.L3Assoc = 4;
  return Config;
}

/// One strand sweeping a >L2 array three times: the second and third
/// passes re-miss blocks the first pass's capacity evictions displaced.
TaskGraph recordThrashWorkload() {
  Runtime Rt;
  constexpr std::size_t Count = 4096; // 16 KB of ints.
  Addr Base = Rt.allocate(Count * sizeof(int), 64, "thrash: big array");
  SimArray<int> Data(&Rt, Base, reinterpret_cast<int *>(Rt.hostPtr(Base)),
                     Count);
  for (unsigned Pass = 0; Pass < 3; ++Pass)
    for (std::size_t I = 0; I < Count; I += 16)
      Data.set(I, static_cast<int>(I + Pass));
  return Rt.finish();
}

} // namespace

TEST(PrematureMiss, AttributedToThrashingLinesAndCycleNeutral) {
  TaskGraph Graph = recordThrashWorkload();
  MachineConfig Config = tinyCacheMachine();
  ASSERT_TRUE(Config.validate().empty());

  RunResult Plain = WardenSystem::simulate(Graph, Config);

  SharingProfiler Prof;
  Observability Obs;
  Obs.Profiler = &Prof;
  RunOptions Options;
  Options.Obs = &Obs;
  RunResult Observed = WardenSystem::simulate(Graph, Config, Options);

  // Recording-only: the attribution table must not perturb a single
  // simulated number.
  EXPECT_EQ(Plain.Makespan, Observed.Makespan);
  EXPECT_EQ(Plain.Coherence.accesses(), Observed.Coherence.accesses());

  ASSERT_TRUE(Observed.Profile.Enabled);
  EXPECT_GT(Observed.Profile.TotalPrematureMisses, 0u)
      << "three passes over a >L2 array must re-miss evicted blocks";
  // The rollup reaches the named site.
  std::uint64_t SitePremature = 0;
  for (const SiteProfile &S : Observed.Profile.Sites)
    if (S.SiteName == "thrash: big array")
      SitePremature += S.PrematureMisses;
  EXPECT_GT(SitePremature, 0u);
}
