//===- tests/AreaTraceIOTest.cpp - area model + trace I/O tests ---------------===//
//
// Part of the WARDen reproduction project.
//
//===----------------------------------------------------------------------===//

#include "src/machine/AreaModel.h"
#include "src/rt/Stdlib.h"
#include "src/sched/Replay.h"
#include "src/trace/TraceIO.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <unistd.h>

using namespace warden;

// --- AreaModel ------------------------------------------------------------------

TEST(AreaModel, SectoringOverheadNearPaperEstimate) {
  MachineConfig Config = MachineConfig::dualSocket();
  AreaModel Model(Config);
  AreaEstimate E = Model.estimate();
  // Section 6.1: byte sectoring on 64-byte blocks adds ~7.9% cache area
  // under CACTI; our simpler metadata inventory lands slightly above (the
  // paper's layout amortises over more per-line metadata). Same magnitude.
  EXPECT_GT(E.SectoringOverhead, 0.05);
  EXPECT_LT(E.SectoringOverhead, 0.13);
}

TEST(AreaModel, RegionCamIsTiny) {
  MachineConfig Config = MachineConfig::dualSocket();
  AreaModel Model(Config);
  AreaEstimate E = Model.estimate();
  // Section 6.1: 1024 regions cost < 0.05% additional area.
  EXPECT_LT(E.RegionCamOverhead, 0.0005);
  EXPECT_EQ(E.RegionCamBytes, 16u * 1024u * 2u);
}

TEST(AreaModel, LineBitsDecompose) {
  MachineConfig Config = MachineConfig::singleSocket();
  AreaModel Model(Config);
  CacheLineBits Bits =
      Model.lineBits(32 * 1024, /*Sectored=*/true, /*IsShared=*/false);
  EXPECT_EQ(Bits.DataBits, 512u);
  EXPECT_EQ(Bits.SectorBits, 64u);
  EXPECT_EQ(Bits.SecdedBits, 64u);
  EXPECT_GT(Bits.TagBits, 30u);
  EXPECT_EQ(Bits.wardenBits(), Bits.baselineBits() + 64);
}

TEST(AreaModel, SharedCacheCarriesSharerMask) {
  MachineConfig Config = MachineConfig::dualSocket();
  AreaModel Model(Config);
  CacheLineBits Llc =
      Model.lineBits(Config.l3SizeBytes(), /*Sectored=*/false, true);
  EXPECT_EQ(Llc.SharerBits, Config.totalCores());
  EXPECT_EQ(Llc.SectorBits, 0u);
}

// --- TraceIO ---------------------------------------------------------------------

namespace {

TaskGraph recordSample() {
  Runtime Rt;
  auto Out = stdlib::tabulate<int>(
      Rt, 512, [](std::size_t I) { return int(I * 7); }, 32);
  (void)stdlib::sum(Rt, Out, 32);
  return Rt.finish();
}

std::string tempPath(const char *Name) {
  return std::string(::testing::TempDir()) + Name;
}

} // namespace

TEST(TraceIO, RoundTripPreservesGraph) {
  TaskGraph Original = recordSample();
  std::string Path = tempPath("roundtrip.trace");
  ASSERT_TRUE(writeTaskGraph(Original, Path));
  std::optional<TaskGraph> Loaded = readTaskGraph(Path);
  ASSERT_TRUE(Loaded.has_value());
  ASSERT_EQ(Loaded->size(), Original.size());
  EXPECT_EQ(Loaded->root(), Original.root());
  EXPECT_EQ(Loaded->totalEvents(), Original.totalEvents());
  EXPECT_EQ(Loaded->totalInstructions(), Original.totalInstructions());
  EXPECT_EQ(Loaded->spanInstructions(), Original.spanInstructions());
  for (StrandId Id = 0; Id < Original.size(); ++Id) {
    const Strand &A = Original.strand(Id);
    const Strand &B = Loaded->strand(Id);
    ASSERT_EQ(A.Events.size(), B.Events.size()) << Id;
    EXPECT_EQ(A.Children, B.Children);
    EXPECT_EQ(A.JoinTarget, B.JoinTarget);
    EXPECT_EQ(A.PendingJoin, B.PendingJoin);
    EXPECT_EQ(A.JoinCounterAddr, B.JoinCounterAddr);
    for (std::size_t E = 0; E < A.Events.size(); ++E) {
      EXPECT_EQ(A.Events[E].Op, B.Events[E].Op);
      EXPECT_EQ(A.Events[E].Address, B.Events[E].Address);
      EXPECT_EQ(A.Events[E].Extra, B.Events[E].Extra);
      EXPECT_EQ(A.Events[E].Region, B.Events[E].Region);
      EXPECT_EQ(A.Events[E].Size, B.Events[E].Size);
    }
  }
}

TEST(TraceIO, RejectsMissingFile) {
  EXPECT_FALSE(readTaskGraph("/nonexistent/definitely/not/here").has_value());
}

TEST(TraceIO, RejectsCorruptMagic) {
  std::string Path = tempPath("corrupt.trace");
  std::FILE *File = std::fopen(Path.c_str(), "wb");
  ASSERT_NE(File, nullptr);
  const char Garbage[] = "this is not a warden trace file at all........";
  std::fwrite(Garbage, 1, sizeof(Garbage), File);
  std::fclose(File);
  EXPECT_FALSE(readTaskGraph(Path).has_value());
}

TEST(TraceIO, RejectsTruncatedFile) {
  TaskGraph Original = recordSample();
  std::string Path = tempPath("truncated.trace");
  ASSERT_TRUE(writeTaskGraph(Original, Path));
  // Truncate to half.
  std::FILE *File = std::fopen(Path.c_str(), "rb");
  ASSERT_NE(File, nullptr);
  std::fseek(File, 0, SEEK_END);
  long Size = std::ftell(File);
  std::fclose(File);
  ASSERT_EQ(truncate(Path.c_str(), Size / 2), 0);
  EXPECT_FALSE(readTaskGraph(Path).has_value());
}

TEST(TraceIO, ReloadedGraphSimulatesIdentically) {
  TaskGraph Original = recordSample();
  std::string Path = tempPath("simulate.trace");
  ASSERT_TRUE(writeTaskGraph(Original, Path));
  std::optional<TaskGraph> Loaded = readTaskGraph(Path);
  ASSERT_TRUE(Loaded.has_value());

  MachineConfig Config = MachineConfig::dualSocket();
  Config.Protocol = ProtocolKind::Warden;
  CoherenceController C1(Config);
  CoherenceController C2(Config);
  Cycles A = Replayer(Original, C1, 9).run().Makespan;
  Cycles B = Replayer(*Loaded, C2, 9).run().Makespan;
  EXPECT_EQ(A, B);
}
