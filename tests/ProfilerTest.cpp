//===- tests/ProfilerTest.cpp - Coherence forensics tests -----------------===//
//
// Part of the WARDen reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Tests for the sharing profiler and CPI stacks: the sharing classifier on
/// hand-driven event sequences, the bounded-table admission policy, the
/// zero-perturbation contract (attaching profiler + CPI stack changes no
/// simulated cycle), a deterministic false-sharing fixture classified
/// end-to-end, allocation-site attribution on a real PBBS benchmark (the
/// paper-style "this data structure paid N invalidations under MESI and
/// none under WARDen" claim), CPI accounting bounds, trace-file
/// round-tripping of the memory map, and the shared bench-flag parser.
///
//===----------------------------------------------------------------------===//

#include "bench/Harness.h"
#include "src/core/WardenSystem.h"
#include "src/obs/ChromeTraceExporter.h"
#include "src/obs/CpiStack.h"
#include "src/obs/MetricRegistry.h"
#include "src/obs/Observability.h"
#include "src/obs/SharingProfiler.h"
#include "src/obs/TimelineSampler.h"
#include "src/pbbs/Pbbs.h"
#include "src/rt/SimArray.h"
#include "src/rt/Stdlib.h"
#include "src/support/Json.h"
#include "src/trace/TraceIO.h"

#include <gtest/gtest.h>

#include <functional>
#include <string>

using namespace warden;

namespace {

// --- Sharing classifier on hand-driven event sequences -----------------------

// Returns by value: callers pass a temporary report, so a reference into
// it would dangle once the full expression ends.
LineProfile onlyLine(const ProfileReport &Rep) {
  if (Rep.Lines.size() != 1u) {
    ADD_FAILURE() << "expected exactly one profiled line, got "
                  << Rep.Lines.size();
    return LineProfile{};
  }
  return Rep.Lines.front();
}

TEST(SharingClassifier, DisjointFootprintsAreFalseSharing) {
  SharingProfiler P;
  P.beginRun(nullptr, nullptr);
  // Core 0 owns bytes [0,8), core 1 owns bytes [32,40): never a common byte.
  for (int Round = 0; Round < 4; ++Round) {
    P.onWrite(0x1000, 0, 0, 8);
    P.onWrite(0x1000, 1, 32, 8);
    P.onInvalidation(0x1000, 0);
  }
  const LineProfile &L = onlyLine(P.report());
  EXPECT_EQ(L.Class, SharingClass::FalseSharing);
  EXPECT_EQ(L.Writers, 2u);
  EXPECT_EQ(L.Invalidations, 4u);
  // A,B,A,B... alternation: every handoff after the first is a ping-pong.
  EXPECT_GT(L.PingPongs, 0u);
}

TEST(SharingClassifier, OverlappingWritersWithoutDowngradesAreMigratory) {
  SharingProfiler P;
  P.beginRun(nullptr, nullptr);
  P.onWrite(0x2000, 0, 0, 8);
  P.onWrite(0x2000, 1, 0, 8); // Same bytes: ownership migrates.
  P.onInvalidation(0x2000, 0);
  const LineProfile &L = onlyLine(P.report());
  EXPECT_EQ(L.Class, SharingClass::Migratory);
}

TEST(SharingClassifier, OverlapWithDowngradesIsTrueSharing) {
  SharingProfiler P;
  P.beginRun(nullptr, nullptr);
  P.onWrite(0x3000, 0, 0, 8);
  P.onWrite(0x3000, 1, 4, 8); // Bytes [4,8) shared with core 0's write.
  P.onDowngrade(0x3000, 1);   // A reader pulled the dirty copy down.
  const LineProfile &L = onlyLine(P.report());
  EXPECT_EQ(L.Class, SharingClass::TrueSharing);
}

TEST(SharingClassifier, WardGrantsWithoutInvDownAreWardElided) {
  SharingProfiler P;
  P.beginRun(nullptr, nullptr);
  P.onWrite(0x4000, 0, 0, 8);
  P.onWrite(0x4000, 1, 32, 8);
  P.onWardGrant(0x4000, 1);
  const LineProfile &L = onlyLine(P.report());
  EXPECT_EQ(L.Class, SharingClass::WardElided);
}

TEST(SharingClassifier, MultipleReadersNoWriterAreReadShared) {
  SharingProfiler P;
  P.beginRun(nullptr, nullptr);
  P.onRead(0x5000, 0);
  P.onRead(0x5000, 1);
  P.onRead(0x5000, 2);
  P.onDemandMiss(0x5000, 1, 100, false); // Some traffic so it reports.
  const LineProfile &L = onlyLine(P.report());
  EXPECT_EQ(L.Class, SharingClass::ReadShared);
  EXPECT_EQ(L.Readers, 3u);
}

TEST(SharingClassifier, SingleCoreIsPrivate) {
  SharingProfiler P;
  P.beginRun(nullptr, nullptr);
  P.onRead(0x6000, 2);
  P.onWrite(0x6000, 2, 0, 8);
  P.onDemandMiss(0x6000, 2, 50, false);
  const LineProfile &L = onlyLine(P.report());
  EXPECT_EQ(L.Class, SharingClass::Private);
}

// --- Bounded table: decayed admission ----------------------------------------

TEST(SharingProfiler, BoundedTableAdmitsByDecayedSampling) {
  // Capacity 2, admit every 2nd candidate once full.
  SharingProfiler P(/*Capacity=*/2, /*AdmitShift=*/1);
  P.beginRun(nullptr, nullptr);
  P.onInvalidation(0x1000, 0); // Admitted (room).
  P.onInvalidation(0x1040, 0); // Admitted (room).
  P.onInvalidation(0x1000, 0); // Existing entry: no admission pressure.
  P.onInvalidation(0x1080, 0); // Candidate 1: declined, dropped.
  EXPECT_EQ(P.trackedLines(), 2u);
  EXPECT_EQ(P.droppedLines(), 1u);
  P.onInvalidation(0x10c0, 0); // Candidate 2: admitted, evicts min traffic.
  EXPECT_EQ(P.trackedLines(), 2u);
  EXPECT_EQ(P.droppedLines(), 1u);
  // The minimum-traffic victim was 0x1040 (one event vs. two on 0x1000).
  ProfileReport Rep = P.report();
  bool SawHot = false, SawVictim = false;
  for (const LineProfile &L : Rep.Lines) {
    SawHot |= L.Block == 0x1000;
    SawVictim |= L.Block == 0x1040;
  }
  EXPECT_TRUE(SawHot);
  EXPECT_FALSE(SawVictim);
}

// --- Zero-perturbation: profiler + CPI stack attached ------------------------

TaskGraph recordWorkload() {
  Runtime Rt;
  auto In = stdlib::tabulate<std::uint32_t>(
      Rt, 8192, [](std::size_t I) { return std::uint32_t(I * 2654435761u); },
      128);
  auto Out = stdlib::mapArray<std::uint64_t>(
      Rt, In, [](std::uint32_t V) { return std::uint64_t(V) % 977; }, 128);
  std::uint64_t Total = stdlib::sum(Rt, Out, 128);
  EXPECT_GT(Total, 0u);
  return Rt.finish();
}

TEST(ProfilerPerturbation, AttachedRunIsCycleIdentical) {
  TaskGraph Graph = recordWorkload();
  for (ProtocolKind Protocol : {ProtocolKind::Mesi, ProtocolKind::Warden}) {
    MachineConfig Config = MachineConfig::dualSocket();
    Config.Protocol = Protocol;

    RunResult Plain = WardenSystem::simulate(Graph, Config);

    // The full bundle including the new profiler and CPI stack (the trace
    // exporter too, so live Perfetto counter emission is exercised).
    MetricRegistry Metrics;
    TimelineSampler Sampler;
    ChromeTraceExporter Trace;
    SharingProfiler Prof;
    CpiStack Cpi;
    Observability Obs;
    Obs.Metrics = &Metrics;
    Obs.Sampler = &Sampler;
    Obs.Trace = &Trace;
    Obs.Profiler = &Prof;
    Obs.Cpi = &Cpi;
    RunOptions Options;
    Options.Obs = &Obs;
    RunResult Observed = WardenSystem::simulate(Graph, Config, Options);

    EXPECT_EQ(Plain.Makespan, Observed.Makespan);
    EXPECT_EQ(Plain.Instructions, Observed.Instructions);
    EXPECT_EQ(Plain.Coherence.Invalidations, Observed.Coherence.Invalidations);
    EXPECT_EQ(Plain.Coherence.Downgrades, Observed.Coherence.Downgrades);
    EXPECT_EQ(Plain.Coherence.accesses(), Observed.Coherence.accesses());
    EXPECT_EQ(Plain.Sched.Steals, Observed.Sched.Steals);
    EXPECT_FALSE(Plain.Profile.Enabled);
    EXPECT_TRUE(Observed.Profile.Enabled);
    EXPECT_TRUE(Observed.Cpi.Enabled);
    EXPECT_GT(Observed.Profile.TrackedLines, 0u);
  }
}

// --- Deterministic false-sharing fixture -------------------------------------

/// Four strands, each hammering its own 4-byte counter inside one 64-byte
/// line: the textbook false-sharing pattern (disjoint byte footprints,
/// heavy invalidation traffic under MESI).
TaskGraph recordFalseSharingFixture() {
  Runtime Rt;
  Addr Base = Rt.allocate(64, 64, "fixture: padded counters");
  SimArray<std::uint32_t> Counters(
      &Rt, Base, reinterpret_cast<std::uint32_t *>(Rt.hostPtr(Base)), 16);
  constexpr unsigned Reps = 64;
  std::function<void(std::size_t, std::size_t)> Go = [&](std::size_t Lo,
                                                         std::size_t Hi) {
    if (Hi - Lo == 1) {
      // Leaf Lo owns element Lo*4 — bytes [Lo*16, Lo*16+4), disjoint from
      // every other leaf's footprint.
      for (unsigned R = 0; R < Reps; ++R) {
        Counters.set(Lo * 4, R);
        Rt.work(32);
      }
      return;
    }
    std::size_t Mid = (Lo + Hi) / 2;
    Rt.fork2([&, Lo, Mid] { Go(Lo, Mid); }, [&, Mid, Hi] { Go(Mid, Hi); });
  };
  Go(0, 4);
  EXPECT_TRUE(Rt.raceViolations().empty());
  return Rt.finish();
}

TEST(FalseSharingFixture, ClassifiedAndAttributedUnderMesi) {
  TaskGraph Graph = recordFalseSharingFixture();
  MachineConfig Config = MachineConfig::singleSocket();
  Config.Protocol = ProtocolKind::Mesi;

  SharingProfiler Prof;
  CpiStack Cpi;
  Observability Obs;
  Obs.Profiler = &Prof;
  Obs.Cpi = &Cpi;
  RunOptions Options;
  Options.Obs = &Obs;
  RunResult R = WardenSystem::simulate(Graph, Config, Options);

  const LineProfile *Hot = nullptr;
  for (const LineProfile &L : R.Profile.Lines)
    if (L.SiteName == "fixture: padded counters")
      Hot = &L;
  ASSERT_NE(Hot, nullptr)
      << "fixture line missing from the profile's top lines";
  EXPECT_EQ(Hot->Class, SharingClass::FalseSharing);
  EXPECT_GE(Hot->Writers, 2u);
  EXPECT_GT(Hot->Invalidations, 0u);
}

// --- Allocation-site attribution on a real benchmark -------------------------

TEST(SiteAttribution, DedupNamesAMesiOnlyInvalidationSite) {
  pbbs::Recorded R = pbbs::recordDedup(1024, RtOptions());
  ASSERT_TRUE(R.Verified);

  MachineConfig Config = MachineConfig::singleSocket();
  SharingProfiler Prof;
  CpiStack Cpi;
  Observability Obs;
  Obs.Profiler = &Prof;
  Obs.Cpi = &Cpi;
  RunOptions Options;
  Options.Obs = &Obs;
  Options.Repeats = 1;
  ComparisonResult Cmp = WardenSystem::compareProtocols(
      R.Graph, Config, {ProtocolKind::Mesi, ProtocolKind::Warden}, Options);
  const RunResult &Mesi = Cmp.run(ProtocolKind::Mesi);
  const RunResult &Warden = Cmp.run(ProtocolKind::Warden);
  ASSERT_TRUE(Mesi.Profile.Enabled);
  ASSERT_TRUE(Warden.Profile.Enabled);

  // The paper-style claim: some named benchmark data structure pays
  // invalidations under MESI and none under WARDen.
  auto InvOf = [](const ProfileReport &Rep, const std::string &Name) {
    for (const SiteProfile &S : Rep.Sites)
      if (S.SiteName == Name)
        return S.Invalidations;
    return std::uint64_t(0);
  };
  bool Found = false;
  for (const SiteProfile &S : Mesi.Profile.Sites) {
    if (S.SiteName.rfind("dedup", 0) != 0 || S.Invalidations == 0)
      continue;
    if (InvOf(Warden.Profile, S.SiteName) == 0)
      Found = true;
  }
  EXPECT_TRUE(Found) << "no dedup-owned site with MESI invalidations > 0 "
                        "and WARDen invalidations == 0";

  // The JSON section parses.
  JsonWriter W;
  Mesi.Profile.writeJson(W);
  std::string Error;
  EXPECT_TRUE(jsonValidate(W.str(), &Error)) << Error;
  EXPECT_NE(W.str().find("\"schema\":\"warden-prof-v1\""), std::string::npos);
}

// --- CPI stack accounting -----------------------------------------------------

TEST(CpiAccounting, ChargesStayWithinCoreTime) {
  TaskGraph Graph = recordWorkload();
  for (ProtocolKind Protocol : {ProtocolKind::Mesi, ProtocolKind::Warden}) {
    MachineConfig Config = MachineConfig::dualSocket();
    Config.Protocol = Protocol;

    CpiStack Cpi;
    Observability Obs;
    Obs.Cpi = &Cpi;
    RunOptions Options;
    Options.Obs = &Obs;
    RunResult R = WardenSystem::simulate(Graph, Config, Options);

    ASSERT_TRUE(R.Cpi.Enabled);
    ASSERT_EQ(R.Cpi.Cores, Config.totalCores());
    // Every critical-path charge corresponds to a real advance of the
    // issuing core's clock, so the accounted sum can never exceed the
    // core's end-of-run time (the remainder is end-of-run idling).
    for (unsigned Core = 0; Core < R.Cpi.Cores; ++Core)
      EXPECT_LE(R.Cpi.accounted(Core), R.Cpi.CoreTime[Core]) << Core;
    EXPECT_GT(R.Cpi.total(CpiCat::Compute), 0u);
    EXPECT_GT(R.Cpi.total(CpiCat::L1Hit), 0u);
    if (Protocol == ProtocolKind::Mesi)
      EXPECT_GT(R.Cpi.total(CpiCat::DowngradeService), 0u);
    else
      EXPECT_GT(R.Cpi.total(CpiCat::Reconcile), 0u);

    JsonWriter W;
    R.Cpi.writeJson(W);
    std::string Error;
    EXPECT_TRUE(jsonValidate(W.str(), &Error)) << Error;
  }
}

// --- TraceIO v3: the memory map round-trips -----------------------------------

TEST(TraceIOv3, MemoryMapRoundTrips) {
  TaskGraph Original = recordFalseSharingFixture();
  const MemoryMap &M = Original.memoryMap();
  ASSERT_GT(M.siteCount(), 0u);
  ASSERT_GT(M.spanCount(), 0u);

  std::string Path = std::string(::testing::TempDir()) + "memmap.trace";
  ASSERT_TRUE(writeTaskGraph(Original, Path));
  std::optional<TaskGraph> Loaded = readTaskGraph(Path);
  ASSERT_TRUE(Loaded.has_value());

  const MemoryMap &L = Loaded->memoryMap();
  EXPECT_EQ(L.siteCount(), M.siteCount());
  ASSERT_EQ(L.spans().size(), M.spans().size());
  for (const auto &[Start, SpanInfo] : M.spans()) {
    auto It = L.spans().find(Start);
    ASSERT_NE(It, L.spans().end()) << "span lost at 0x" << std::hex << Start;
    EXPECT_EQ(It->second.first, SpanInfo.first);
    EXPECT_EQ(L.siteName(It->second.second), M.siteName(SpanInfo.second));
  }
  // Site lookups agree on a known allocation.
  for (const auto &[Start, SpanInfo] : M.spans()) {
    (void)SpanInfo;
    EXPECT_EQ(L.siteName(L.siteOf(Start)), M.siteName(M.siteOf(Start)));
  }
}

// --- Shared bench-flag parsing ------------------------------------------------

TEST(BenchArgs, OnlyListToleratesEmptySegmentsAndTrailingComma) {
  char Prog[] = "prog";
  char Only[] = "--only=fib,,dedup,";
  char *Argv[] = {Prog, Only};
  bench::BenchOptions B = bench::parseBenchArgs(2, Argv);
  ASSERT_EQ(B.Only.size(), 2u);
  EXPECT_EQ(B.Only[0], "fib");
  EXPECT_EQ(B.Only[1], "dedup");
}

TEST(BenchArgs, DuplicateOnlyNamesAreHarmless) {
  char Prog[] = "prog";
  char Only[] = "--only=fib,fib";
  char *Argv[] = {Prog, Only};
  bench::BenchOptions B = bench::parseBenchArgs(2, Argv);
  // Both survive parsing; runSuite's membership test makes selection
  // idempotent, so a duplicated name cannot run a benchmark twice.
  ASSERT_EQ(B.Only.size(), 2u);
  EXPECT_EQ(B.Only[0], "fib");
  EXPECT_EQ(B.Only[1], "fib");
}

TEST(BenchArgs, ProfileFlag) {
  char Prog[] = "prog";
  char Flag[] = "--profile";
  char *Argv1[] = {Prog};
  EXPECT_FALSE(bench::parseBenchArgs(1, Argv1).Profile);
  char *Argv2[] = {Prog, Flag};
  EXPECT_TRUE(bench::parseBenchArgs(2, Argv2).Profile);
}

} // namespace
