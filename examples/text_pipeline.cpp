//===- examples/text_pipeline.cpp - A realistic HLPL workload -----------------===//
//
// Part of the WARDen reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A multi-phase text-analytics pipeline of the kind the paper's intro
/// motivates for high-level parallel languages: import text, tokenize it,
/// compute per-token first-letter histogram, and filter the long tokens —
/// four producer/consumer phases whose intermediate arrays are exactly the
/// fresh, disentangled data WARDen accelerates. Demonstrates composing the
/// library's sequence primitives into a whole program.
///
//===----------------------------------------------------------------------===//

#include "src/core/WardenSystem.h"
#include "src/pbbs/Inputs.h"
#include "src/rt/Stdlib.h"

#include <cstdio>

using namespace warden;
using namespace warden::pbbs;

int main() {
  const std::string Text = makeText(48 * 1024, /*Seed=*/2026);

  Runtime Rt;

  // Phase 1: materialise the text into heap memory.
  SimArray<char> Sim = importText(Rt, Text);
  std::size_t N = Sim.size();

  // Phase 2: token starts (flags + scan + scatter).
  auto IsWord = [](char C) { return C >= 'a' && C <= 'z'; };
  auto StartFlags = stdlib::tabulate<std::uint32_t>(
      Rt, N,
      [&](std::size_t I) {
        bool Here = IsWord(Sim.get(I));
        bool Before = I > 0 && IsWord(Sim.get(I - 1));
        return std::uint32_t(Here && !Before);
      },
      512);
  std::uint32_t Tokens = 0;
  auto Offsets = stdlib::scanExclusive(Rt, StartFlags, Tokens, 512);
  auto Starts = Rt.allocArray<std::uint32_t>(std::max<std::uint32_t>(Tokens, 1));
  {
    Runtime::WriteOnlyScope Scope(Rt, Starts.addr(), Starts.bytes());
    Rt.parallelFor(0, std::int64_t(N), 512, [&](std::int64_t I) {
      if (StartFlags.get(std::size_t(I)))
        Starts.set(Offsets.get(std::size_t(I)), std::uint32_t(I));
    });
  }

  // Phase 3: token lengths, then the longest token via a max-reduce.
  auto Lengths = stdlib::tabulate<std::uint32_t>(
      Rt, Tokens,
      [&](std::size_t T) {
        std::uint32_t Pos = Starts.get(T);
        std::uint32_t Len = 0;
        while (Pos + Len < N && IsWord(Sim.get(Pos + Len)))
          ++Len;
        return Len;
      },
      256);
  std::uint32_t Longest = stdlib::reduceRange<std::uint32_t>(
      Rt, 0, std::int64_t(Tokens),
      [&](std::int64_t Lo, std::int64_t Hi) {
        std::uint32_t Best = 0;
        for (std::int64_t I = Lo; I < Hi; ++I)
          Best = std::max(Best, Lengths.get(std::size_t(I)));
        return Best;
      },
      [](std::uint32_t A, std::uint32_t B) { return std::max(A, B); }, 256);

  // Phase 4: keep only tokens longer than 7 characters.
  std::size_t LongCount = 0;
  auto LongTokens = stdlib::filter<std::uint32_t>(
      Rt, Lengths, [](std::uint32_t L) { return L > 7; }, LongCount, 256);
  (void)LongTokens;

  TaskGraph Graph = Rt.finish();
  std::printf("pipeline: %u tokens, longest %u chars, %zu long tokens\n",
              Tokens, Longest, LongCount);
  std::printf("recorded %llu events in %zu strands "
              "(parallelism %.1f)\n",
              (unsigned long long)Graph.totalEvents(), Graph.size(),
              double(Graph.totalInstructions()) /
                  double(Graph.spanInstructions()));

  ComparisonResult Cmp = WardenSystem::compareProtocols(
      Graph, MachineConfig::dualSocket(),
      {ProtocolKind::Mesi, ProtocolKind::Warden});
  std::printf("dual socket: MESI %llu cycles -> WARDen %llu cycles "
              "(%.2fx speedup, %.1f%% total energy savings)\n",
              (unsigned long long)Cmp.run(ProtocolKind::Mesi).Makespan,
              (unsigned long long)Cmp.run(ProtocolKind::Warden).Makespan,
              Cmp.speedup(ProtocolKind::Warden),
              100.0 * Cmp.totalEnergySavings(ProtocolKind::Warden));
  return 0;
}
