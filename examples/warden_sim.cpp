//===- examples/warden_sim.cpp - Command-line simulation driver ---------------===//
//
// Part of the WARDen reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small command-line driver mirroring the original artifact's
/// `make single_pbbs BENCH=fib` workflow:
///
///   warden_sim [benchmark] [machine] [scale]
///
/// where benchmark is a PBBS name (default: primes), machine is one of
/// single|dual|disaggregated|quad (default: dual), and scale overrides the
/// benchmark's default problem size. Records the benchmark, simulates both
/// protocols, and prints the comparison. Also demonstrates trace
/// save/replay via trace/TraceIO.
///
//===----------------------------------------------------------------------===//

#include "src/core/WardenSystem.h"
#include "src/pbbs/Pbbs.h"
#include "src/trace/TraceIO.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>

using namespace warden;
using namespace warden::pbbs;

namespace {

void usage() {
  std::printf("usage: warden_sim [benchmark] [machine] [scale]\n");
  std::printf("  benchmarks:");
  for (const Benchmark &B : allBenchmarks())
    std::printf(" %s", B.Name);
  std::printf("\n  machines: single dual disaggregated quad\n");
}

} // namespace

int main(int Argc, char **Argv) {
  const char *Name = Argc > 1 ? Argv[1] : "primes";
  const char *MachineName = Argc > 2 ? Argv[2] : "dual";

  const Benchmark *Bench = find(Name);
  if (!Bench) {
    std::printf("error: unknown benchmark '%s'\n", Name);
    usage();
    return 1;
  }

  MachineConfig Machine;
  if (std::strcmp(MachineName, "single") == 0)
    Machine = MachineConfig::singleSocket();
  else if (std::strcmp(MachineName, "dual") == 0)
    Machine = MachineConfig::dualSocket();
  else if (std::strcmp(MachineName, "disaggregated") == 0)
    Machine = MachineConfig::disaggregated();
  else if (std::strcmp(MachineName, "quad") == 0)
    Machine = MachineConfig::manySocket(4);
  else {
    std::printf("error: unknown machine '%s'\n", MachineName);
    usage();
    return 1;
  }

  std::size_t Scale = Bench->DefaultScale;
  if (Argc > 3)
    Scale = static_cast<std::size_t>(std::strtoull(Argv[3], nullptr, 10));

  std::printf("recording %s (scale %zu)...\n", Bench->Name, Scale);
  Recorded R = Bench->Record(Scale, RtOptions());
  if (!R.Verified) {
    std::printf("error: output verification FAILED\n");
    return 1;
  }
  std::printf("  verified; checksum %llu; %zu strands, %llu events\n",
              (unsigned long long)R.Checksum, R.Graph.size(),
              (unsigned long long)R.Graph.totalEvents());

  // Round-trip the trace through the on-disk format, as a replayable
  // artifact would.
  std::string TracePath =
      std::string("/tmp/warden_") + Bench->Name + ".trace";
  if (writeTaskGraph(R.Graph, TracePath)) {
    std::optional<TaskGraph> Reloaded = readTaskGraph(TracePath);
    if (Reloaded)
      std::printf("  trace saved to %s (%llu events reload OK)\n",
                  TracePath.c_str(),
                  (unsigned long long)Reloaded->totalEvents());
  }

  std::printf("simulating on %s...\n", Machine.describe().c_str());
  ComparisonResult Cmp = WardenSystem::compareProtocols(
      R.Graph, Machine, {ProtocolKind::Mesi, ProtocolKind::Warden});
  const RunResult &Mesi = Cmp.run(ProtocolKind::Mesi);
  const RunResult &Warden = Cmp.run(ProtocolKind::Warden);

  std::printf("\n  %-22s %12s %12s\n", "", "MESI", "WARDen");
  std::printf("  %-22s %12llu %12llu\n", "cycles",
              (unsigned long long)Mesi.Makespan,
              (unsigned long long)Warden.Makespan);
  std::printf("  %-22s %12.2f %12.2f\n", "IPC", Mesi.ipc(), Warden.ipc());
  std::printf("  %-22s %12llu %12llu\n", "invalidations",
              (unsigned long long)Mesi.Coherence.Invalidations,
              (unsigned long long)Warden.Coherence.Invalidations);
  std::printf("  %-22s %12llu %12llu\n", "downgrades",
              (unsigned long long)Mesi.Coherence.Downgrades,
              (unsigned long long)Warden.Coherence.Downgrades);
  std::printf("  %-22s %12.0f %12.0f\n", "interconnect energy nJ",
              Mesi.Energy.interconnectNJ(), Warden.Energy.interconnectNJ());
  std::printf("\n  speedup %.3fx | inv+down avoided/kilo-instr %.2f | "
              "IPC improvement %.1f%%\n",
              Cmp.speedup(ProtocolKind::Warden),
              Cmp.invDownReducedPerKiloInstr(ProtocolKind::Warden),
              Cmp.ipcImprovementPct(ProtocolKind::Warden));
  std::printf("  energy savings: interconnect %.1f%%, total processor "
              "%.1f%%\n",
              100.0 * Cmp.interconnectEnergySavings(ProtocolKind::Warden),
              100.0 * Cmp.totalEnergySavings(ProtocolKind::Warden));
  std::printf("  WARD coverage %.1f%% of accesses; peak live regions %u\n",
              100.0 * Warden.wardCoverage(), Warden.PeakRegions);
  return 0;
}
