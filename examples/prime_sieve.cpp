//===- examples/prime_sieve.cpp - Figure 4's sieve, end to end ---------------===//
//
// Part of the WARDen reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's flagship example (Figure 4): a recursive parallel prime
/// sieve whose flags array is one big WARD region — the only races on it
/// are benign same-value write-write races at indices with several prime
/// factors. This example records the sieve, verifies it, and shows how the
/// WARD region shows up in the protocol statistics on each machine.
///
//===----------------------------------------------------------------------===//

#include "src/core/WardenSystem.h"
#include "src/rt/Stdlib.h"

#include <cmath>
#include <cstdio>

using namespace warden;

namespace {

SimArray<std::uint8_t> sieveUpto(Runtime &Rt, std::int64_t N) {
  auto Flags = stdlib::tabulate<std::uint8_t>(
      Rt, static_cast<std::size_t>(N + 1),
      [](std::size_t I) { return static_cast<std::uint8_t>(I >= 2); }, 1024);
  if (N >= 4) {
    auto Sqrt = static_cast<std::int64_t>(std::sqrt(double(N)));
    auto SqrtFlags = sieveUpto(Rt, Sqrt);
    // flags is a WARD region for the whole marking phase.
    Runtime::WriteOnlyScope Scope(Rt, Flags.addr(), Flags.bytes());
    Rt.parallelFor(2, Sqrt + 1, 1, [&](std::int64_t P) {
      if (SqrtFlags.get(std::size_t(P)))
        Rt.parallelFor(2, N / P + 1, 2048,
                       [&](std::int64_t M) { Flags.set(std::size_t(P * M), 0); });
    });
  }
  return Flags;
}

} // namespace

int main() {
  constexpr std::int64_t N = 200000;

  std::printf("Recording prime_sieve_upto(%lld)...\n",
              static_cast<long long>(N));
  std::uint64_t Primes = 0;
  Runtime Rt;
  SimArray<std::uint8_t> Flags = sieveUpto(Rt, N);
  for (std::int64_t I = 0; I <= N; ++I)
    Primes += Flags.peek(std::size_t(I));
  TaskGraph Graph = Rt.finish();
  std::printf("  %llu primes <= %lld; %zu strands, %llu instructions\n",
              (unsigned long long)Primes, (long long)N, Graph.size(),
              (unsigned long long)Graph.totalInstructions());
  if (!Rt.raceViolations().empty()) {
    std::printf("  WARD discipline violated?! (unexpected)\n");
    return 1;
  }

  for (const MachineConfig &Machine :
       {MachineConfig::singleSocket(), MachineConfig::dualSocket(),
        MachineConfig::disaggregated()}) {
    ComparisonResult Cmp = WardenSystem::compareProtocols(
        Graph, Machine, {ProtocolKind::Mesi, ProtocolKind::Warden});
    const RunResult &Mesi = Cmp.run(ProtocolKind::Mesi);
    const RunResult &Warden = Cmp.run(ProtocolKind::Warden);
    std::printf("\n%s:\n", Machine.describe().c_str());
    std::printf("  MESI   : %9llu cycles, %llu invalidations, %llu "
                "downgrades\n",
                (unsigned long long)Mesi.Makespan,
                (unsigned long long)Mesi.Coherence.Invalidations,
                (unsigned long long)Mesi.Coherence.Downgrades);
    std::printf("  WARDen : %9llu cycles, %llu invalidations, %llu "
                "downgrades (%.1f%% of accesses in WARD regions)\n",
                (unsigned long long)Warden.Makespan,
                (unsigned long long)Warden.Coherence.Invalidations,
                (unsigned long long)Warden.Coherence.Downgrades,
                100.0 * Warden.wardCoverage());
    std::printf("  speedup %.2fx, interconnect energy savings %.1f%%\n",
                Cmp.speedup(ProtocolKind::Warden),
                100.0 * Cmp.interconnectEnergySavings(ProtocolKind::Warden));
  }
  return 0;
}
