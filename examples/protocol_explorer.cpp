//===- examples/protocol_explorer.cpp - Watching the directory FSA -----------===//
//
// Part of the WARDen reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A guided tour of the coherence controller at the level of Figure 5:
/// drives single accesses against the directory and prints the state
/// transitions, first under plain MESI and then with a WARD region active.
/// Useful for understanding exactly which events the WARD state removes.
///
//===----------------------------------------------------------------------===//

#include "src/coherence/CoherenceController.h"

#include <cstdio>

using namespace warden;

namespace {

void show(const CoherenceController &C, Addr Block, const char *What) {
  const DirEntry *Entry = C.directoryEntry(Block);
  std::printf("  %-38s dir=%s sharers=%u inv=%llu down=%llu\n", What,
              Entry ? dirStateName(Entry->State) : "-",
              Entry ? Entry->Sharers.count() +
                          (Entry->Owner != InvalidCore ? 1u : 0u)
                    : 0u,
              (unsigned long long)C.stats().Invalidations,
              (unsigned long long)C.stats().Downgrades);
}

} // namespace

int main() {
  constexpr Addr Block = 0x10000;

  std::printf("--- MESI: the classic sharing penalties (Figure 5, red) ---\n");
  {
    MachineConfig Config = MachineConfig::dualSocket();
    Config.Protocol = ProtocolKind::Mesi;
    CoherenceController C(Config);
    C.access(0, Block, 8, AccessType::Load);
    show(C, Block, "core 0 load (cold)        -> E");
    C.access(0, Block, 8, AccessType::Store);
    show(C, Block, "core 0 store (silent E->M)");
    C.access(1, Block, 8, AccessType::Load);
    show(C, Block, "core 1 load: DOWNGRADES core 0");
    C.access(2, Block, 8, AccessType::Store);
    show(C, Block, "core 2 store: INVALIDATES 0 and 1");
    C.access(12, Block, 8, AccessType::Load);
    show(C, Block, "core 12 (other socket) load: downgrade");
  }

  std::printf("\n--- WARDen: the same accesses inside a WARD region ---\n");
  {
    MachineConfig Config = MachineConfig::dualSocket();
    Config.Protocol = ProtocolKind::Warden;
    CoherenceController C(Config);
    C.addRegion(/*Id=*/0, Block, Block + 4096);
    C.access(0, Block, 8, AccessType::Load);
    show(C, Block, "core 0 load  -> W (exclusive-like)");
    C.access(0, Block, 8, AccessType::Store);
    show(C, Block, "core 0 store (local, silent)");
    C.access(1, Block, 8, AccessType::Load);
    show(C, Block, "core 1 load: nobody bothered");
    C.access(2, Block, 8, AccessType::Store);
    show(C, Block, "core 2 store: nobody bothered");
    C.access(12, Block, 8, AccessType::Store);
    show(C, Block, "core 12 store: nobody bothered");
    Cycles Cost = C.removeRegion(0, /*Remover=*/0);
    std::printf("  remove region: reconciliation merged %llu block(s), "
                "%llu write-backs, %llu cycles\n",
                (unsigned long long)C.stats().ReconciledBlocks,
                (unsigned long long)C.stats().ReconcileWritebacks,
                (unsigned long long)Cost);
    show(C, Block, "after reconciliation");
  }

  std::printf("\nWARDen removed every invalidation and downgrade while the "
              "region was active;\nreconciliation merged the concurrent "
              "updates in one pass (Section 5.2).\n");
  return 0;
}
