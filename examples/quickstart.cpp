//===- examples/quickstart.cpp - Minimal WARDen system usage ---------------===//
//
// Part of the WARDen reproduction project.
//
//===----------------------------------------------------------------------===//

#include "src/core/WardenSystem.h"
#include "src/rt/SimArray.h"
#include "src/rt/Stdlib.h"

#include <cstdio>

using namespace warden;

int main() {
  // Phase 1: record a tiny parallel program.
  TaskGraph Graph = WardenSystem::record([](Runtime &Rt) {
    SimArray<long> Squares = stdlib::tabulate<long>(
        Rt, 1 << 14, [](std::size_t I) { return long(I) * long(I); }, 64);
    long Total = stdlib::sum(Rt, Squares, 64);
    std::printf("sum of squares: %ld\n", Total);
  });

  // Phase 2: simulate it under MESI and WARDen on a dual-socket machine.
  // compareProtocols takes any set of registered protocol kinds; metrics
  // are computed against the baseline (MESI when requested).
  ComparisonResult Cmp = WardenSystem::compareProtocols(
      Graph, MachineConfig::dualSocket(),
      {ProtocolKind::Mesi, ProtocolKind::Warden});
  std::printf("MESI   : %llu cycles\n",
              (unsigned long long)Cmp.run(ProtocolKind::Mesi).Makespan);
  std::printf("WARDen : %llu cycles\n",
              (unsigned long long)Cmp.run(ProtocolKind::Warden).Makespan);
  std::printf("speedup: %.3fx\n", Cmp.speedup(ProtocolKind::Warden));
  std::printf("inv+down avoided/kilo-instr: %.2f\n",
              Cmp.invDownReducedPerKiloInstr(ProtocolKind::Warden));
  return 0;
}
