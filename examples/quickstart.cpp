//===- examples/quickstart.cpp - Minimal WARDen system usage ---------------===//
//
// Part of the WARDen reproduction project.
//
//===----------------------------------------------------------------------===//

#include "src/core/WardenSystem.h"
#include "src/rt/SimArray.h"
#include "src/rt/Stdlib.h"

#include <cstdio>

using namespace warden;

int main() {
  // Phase 1: record a tiny parallel program.
  TaskGraph Graph = WardenSystem::record([](Runtime &Rt) {
    SimArray<long> Squares = stdlib::tabulate<long>(
        Rt, 1 << 14, [](std::size_t I) { return long(I) * long(I); }, 64);
    long Total = stdlib::sum(Rt, Squares, 64);
    std::printf("sum of squares: %ld\n", Total);
  });

  // Phase 2: simulate it under MESI and WARDen on a dual-socket machine.
  ProtocolComparison Cmp =
      WardenSystem::compare(Graph, MachineConfig::dualSocket());
  std::printf("MESI   : %llu cycles\n",
              (unsigned long long)Cmp.Mesi.Makespan);
  std::printf("WARDen : %llu cycles\n",
              (unsigned long long)Cmp.Warden.Makespan);
  std::printf("speedup: %.3fx\n", Cmp.speedup());
  std::printf("inv+down avoided/kilo-instr: %.2f\n",
              Cmp.invDownReducedPerKiloInstr());
  return 0;
}
