//===- support/Summary.h - Streaming summary statistics --------*- C++ -*-===//
//
// Part of the WARDen reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Streaming summary statistics (count / mean / min / max / geometric mean)
/// used by the benchmark harnesses when aggregating per-benchmark results
/// into the MEAN columns of the paper's figures. The paper reports
/// arithmetic means of speedups and of percentage savings; geometric mean is
/// provided as well because it is the conventional aggregate for speedups.
///
//===----------------------------------------------------------------------===//

#ifndef WARDEN_SUPPORT_SUMMARY_H
#define WARDEN_SUPPORT_SUMMARY_H

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>

namespace warden {

/// Accumulates doubles and reports summary statistics.
class Summary {
public:
  void add(double Value) {
    ++N;
    Total += Value;
    Min = std::min(Min, Value);
    Max = std::max(Max, Value);
    if (Value > 0)
      LogTotal += std::log(Value);
    else
      HasNonPositive = true;
  }

  std::size_t count() const { return N; }

  double sum() const { return Total; }

  double mean() const {
    assert(N > 0 && "mean of empty summary");
    return Total / static_cast<double>(N);
  }

  /// Geometric mean; only meaningful when every sample was positive.
  double geomean() const {
    assert(N > 0 && "geomean of empty summary");
    assert(!HasNonPositive && "geomean with non-positive sample");
    return std::exp(LogTotal / static_cast<double>(N));
  }

  double min() const {
    assert(N > 0 && "min of empty summary");
    return Min;
  }

  double max() const {
    assert(N > 0 && "max of empty summary");
    return Max;
  }

  /// True when there is at least one sample and every one was positive —
  /// i.e. geomean() is safe to call. An empty summary answers false: it
  /// has no positive samples and its geomean would assert.
  bool allPositive() const { return N > 0 && !HasNonPositive; }

private:
  std::size_t N = 0;
  double Total = 0;
  double LogTotal = 0;
  double Min = std::numeric_limits<double>::infinity();
  double Max = -std::numeric_limits<double>::infinity();
  bool HasNonPositive = false;
};

} // namespace warden

#endif // WARDEN_SUPPORT_SUMMARY_H
