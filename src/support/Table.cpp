//===- support/Table.cpp - Plain-text table formatting --------------------===//
//
// Part of the WARDen reproduction project.
//
//===----------------------------------------------------------------------===//

#include "src/support/Table.h"

#include <cassert>
#include <cctype>
#include <cstdio>

using namespace warden;

void Table::setHeader(std::vector<std::string> Columns) {
  Header = std::move(Columns);
}

void Table::addRow(std::vector<std::string> Columns) {
  assert(Columns.size() == Header.size() && "row/header column mismatch");
  Rows.push_back(std::move(Columns));
}

/// Returns true if \p Cell looks like a number (so it should right-align).
static bool isNumericCell(const std::string &Cell) {
  if (Cell.empty())
    return false;
  for (char C : Cell)
    if (!std::isdigit(static_cast<unsigned char>(C)) && C != '.' &&
        C != '-' && C != '+' && C != '%' && C != 'x' && C != 'e')
      return false;
  return true;
}

std::string Table::render() const {
  std::vector<std::size_t> Widths(Header.size(), 0);
  for (std::size_t I = 0; I < Header.size(); ++I)
    Widths[I] = Header[I].size();
  for (const auto &Row : Rows)
    for (std::size_t I = 0; I < Row.size(); ++I)
      Widths[I] = std::max(Widths[I], Row[I].size());

  auto appendRow = [&](std::string &Out, const std::vector<std::string> &Row,
                       bool AlignHeaderLeft) {
    for (std::size_t I = 0; I < Row.size(); ++I) {
      std::size_t Pad = Widths[I] - Row[I].size();
      bool RightAlign = !AlignHeaderLeft && isNumericCell(Row[I]);
      if (RightAlign)
        Out.append(Pad, ' ');
      Out += Row[I];
      if (!RightAlign)
        Out.append(Pad, ' ');
      if (I + 1 != Row.size())
        Out += "  ";
    }
    // Trim trailing spaces introduced by left-aligned final cells.
    while (!Out.empty() && Out.back() == ' ')
      Out.pop_back();
    Out += '\n';
  };

  std::string Out;
  appendRow(Out, Header, /*AlignHeaderLeft=*/true);
  std::size_t RuleWidth = 0;
  for (std::size_t I = 0; I < Widths.size(); ++I)
    RuleWidth += Widths[I] + (I + 1 != Widths.size() ? 2 : 0);
  Out.append(RuleWidth, '-');
  Out += '\n';
  for (const auto &Row : Rows)
    appendRow(Out, Row, /*AlignHeaderLeft=*/false);
  return Out;
}

std::string Table::fmt(double Value, int Decimals) {
  char Buffer[64];
  std::snprintf(Buffer, sizeof(Buffer), "%.*f", Decimals, Value);
  return Buffer;
}

std::string Table::fmt(std::uint64_t Value) {
  char Buffer[32];
  std::snprintf(Buffer, sizeof(Buffer), "%llu",
                static_cast<unsigned long long>(Value));
  return Buffer;
}

std::string Table::pct(double Fraction, int Decimals) {
  char Buffer[64];
  std::snprintf(Buffer, sizeof(Buffer), "%.*f%%", Decimals, Fraction * 100.0);
  return Buffer;
}
