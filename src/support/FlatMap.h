//===- support/FlatMap.h - Open-addressing flat hash map ------*- C++ -*-===//
//
// Part of the WARDen reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A cache-friendly open-addressing hash map for integral keys, built for
/// the simulator's per-access lookups (directory probes, page-home
/// placement, region bookkeeping). `std::unordered_map` pays a pointer
/// chase per probe and an allocation per insert; this table keeps key/value
/// slots in one contiguous array with linear probing, so the common probe
/// touches a single cache line and inserts amortize to a bump in an array.
///
/// Deletion is tombstone-free: erasing backward-shifts the displaced tail
/// of the probe cluster into the hole, so long-lived tables (the region
/// table survives millions of add/remove pairs per run) never accumulate
/// dead slots that would stretch every later probe.
///
/// Deliberate non-goals, in exchange for speed on the hot path:
///  * Keys must be integral (the simulator keys by Addr/RegionId).
///  * References and iterators are invalidated by rehash (any insert) and
///    by erase. The coherence engine only holds references across
///    non-inserting operations; see CoherenceController.
///  * Iteration order is the probe order, not insertion or key order.
///    Reports that iterate a FlatMap must sort (see ProtocolAuditor).
///
//===----------------------------------------------------------------------===//

#ifndef WARDEN_SUPPORT_FLATMAP_H
#define WARDEN_SUPPORT_FLATMAP_H

#include <algorithm>
#include <cassert>
#include <cstddef>
#include <cstdint>
#include <type_traits>
#include <utility>
#include <vector>

namespace warden {

/// Open-addressing hash map from an integral key to \p ValueT.
template <typename KeyT, typename ValueT> class FlatMap {
  static_assert(std::is_integral_v<KeyT> || std::is_enum_v<KeyT>,
                "FlatMap keys must be integral");

  struct Slot {
    KeyT Key{};
    ValueT Value{};
  };

public:
  FlatMap() = default;

  /// Forward iterator over occupied slots, yielding pair-like references so
  /// structured bindings (`for (const auto &[Key, Value] : Map)`) work.
  template <bool Const> class IteratorImpl {
    using MapT = std::conditional_t<Const, const FlatMap, FlatMap>;
    using ValueRefT = std::conditional_t<Const, const ValueT &, ValueT &>;

  public:
    IteratorImpl() = default;
    IteratorImpl(MapT *Map, std::size_t Index) : Map(Map), Index(Index) {
      skipEmpty();
    }

    std::pair<const KeyT &, ValueRefT> operator*() const {
      return {Map->Slots[Index].Key, Map->Slots[Index].Value};
    }

    const KeyT &key() const { return Map->Slots[Index].Key; }
    ValueRefT value() const { return Map->Slots[Index].Value; }

    IteratorImpl &operator++() {
      ++Index;
      skipEmpty();
      return *this;
    }

    bool operator==(const IteratorImpl &Other) const {
      return Index == Other.Index;
    }
    bool operator!=(const IteratorImpl &Other) const {
      return Index != Other.Index;
    }

  private:
    friend class FlatMap;
    void skipEmpty() {
      while (Map && Index < Map->Used.size() && !Map->Used[Index])
        ++Index;
    }
    MapT *Map = nullptr;
    std::size_t Index = 0;
  };

  using iterator = IteratorImpl<false>;
  using const_iterator = IteratorImpl<true>;

  iterator begin() { return iterator(this, 0); }
  iterator end() { return iterator(this, Used.size()); }
  const_iterator begin() const { return const_iterator(this, 0); }
  const_iterator end() const { return const_iterator(this, Used.size()); }

  std::size_t size() const { return Count; }
  bool empty() const { return Count == 0; }

  /// Drops every entry but keeps the allocation (a per-run reset should not
  /// pay the reserve again).
  void clear() {
    std::fill(Used.begin(), Used.end(), std::uint8_t(0));
    for (Slot &S : Slots)
      S = Slot();
    Count = 0;
  }

  /// Grows the table so that \p Entries fit without rehashing. Call with
  /// the expected footprint before the hot loop; growth during the loop is
  /// correct but pays the rehash mid-flight.
  void reserve(std::size_t Entries) {
    std::size_t Needed = capacityFor(Entries);
    if (Needed > Slots.size())
      rehash(Needed);
  }

  const_iterator find(KeyT Key) const {
    return const_iterator(this, findIndex(Key));
  }
  iterator find(KeyT Key) { return iterator(this, findIndex(Key)); }

  bool contains(KeyT Key) const { return findIndex(Key) != Used.size(); }
  std::size_t count(KeyT Key) const { return contains(Key) ? 1 : 0; }

  /// Returns the value for \p Key, default-constructing it on first use.
  ValueT &operator[](KeyT Key) {
    return Slots[insertIndex(Key)].Value;
  }

  /// Inserts {Key, Value} if absent; returns {iterator, inserted}.
  template <typename... ArgTs>
  std::pair<iterator, bool> try_emplace(KeyT Key, ArgTs &&...Args) {
    std::size_t Existing = findIndex(Key);
    if (Existing != Used.size())
      return {iterator(this, Existing), false};
    std::size_t Index = insertIndex(Key);
    Slots[Index].Value = ValueT(std::forward<ArgTs>(Args)...);
    return {iterator(this, Index), true};
  }

  /// Erases \p Key if present; returns the number of entries removed.
  std::size_t erase(KeyT Key) {
    std::size_t Index = findIndex(Key);
    if (Index == Used.size())
      return 0;
    eraseIndex(Index);
    return 1;
  }

  /// Erases the entry \p It points at.
  void erase(iterator It) {
    assert(It.Map == this && It.Index < Used.size() && Used[It.Index] &&
           "erasing an invalid iterator");
    eraseIndex(It.Index);
  }

private:
  static constexpr std::size_t MinCapacity = 16;

  /// Fibonacci multiplicative mix: block addresses share their low bits
  /// (always block-aligned), so the index must come from the high bits of
  /// the product.
  static std::size_t hashKey(KeyT Key) {
    std::uint64_t H =
        static_cast<std::uint64_t>(Key) * 0x9e3779b97f4a7c15ULL;
    return static_cast<std::size_t>(H ^ (H >> 32));
  }

  /// Smallest power-of-two capacity holding \p Entries under 7/8 load.
  static std::size_t capacityFor(std::size_t Entries) {
    std::size_t Cap = MinCapacity;
    while (Entries * 8 > Cap * 7)
      Cap *= 2;
    return Cap;
  }

  std::size_t mask() const { return Slots.size() - 1; }

  /// Index of \p Key's slot, or Used.size() when absent (== end()).
  std::size_t findIndex(KeyT Key) const {
    if (Count == 0)
      return Used.size();
    std::size_t Index = hashKey(Key) & mask();
    while (Used[Index]) {
      if (Slots[Index].Key == Key)
        return Index;
      Index = (Index + 1) & mask();
    }
    return Used.size();
  }

  /// Index of \p Key's slot, inserting an empty entry if absent.
  std::size_t insertIndex(KeyT Key) {
    if ((Count + 1) * 8 > Slots.size() * 7)
      rehash(Slots.size() ? Slots.size() * 2 : MinCapacity);
    std::size_t Index = hashKey(Key) & mask();
    while (Used[Index]) {
      if (Slots[Index].Key == Key)
        return Index;
      Index = (Index + 1) & mask();
    }
    Used[Index] = 1;
    Slots[Index].Key = Key;
    ++Count;
    return Index;
  }

  void eraseIndex(std::size_t Hole) {
    // Backward-shift deletion: walk the cluster after the hole and pull
    // back every entry whose probe path passes through the hole, so lookups
    // never need tombstones to bridge the gap.
    std::size_t Next = (Hole + 1) & mask();
    while (Used[Next]) {
      std::size_t Home = hashKey(Slots[Next].Key) & mask();
      // The entry at Next may move into the hole iff the hole lies on its
      // probe path, i.e. cyclically between its home slot and Next.
      if (((Hole - Home) & mask()) <= ((Next - Home) & mask())) {
        Slots[Hole] = std::move(Slots[Next]);
        Hole = Next;
      }
      Next = (Next + 1) & mask();
    }
    Used[Hole] = 0;
    Slots[Hole] = Slot();
    --Count;
  }

  void rehash(std::size_t NewCapacity) {
    assert((NewCapacity & (NewCapacity - 1)) == 0 && "capacity not a power "
                                                     "of two");
    std::vector<Slot> OldSlots = std::move(Slots);
    std::vector<std::uint8_t> OldUsed = std::move(Used);
    Slots.assign(NewCapacity, Slot());
    Used.assign(NewCapacity, 0);
    for (std::size_t I = 0; I < OldUsed.size(); ++I) {
      if (!OldUsed[I])
        continue;
      std::size_t Index = hashKey(OldSlots[I].Key) & mask();
      while (Used[Index])
        Index = (Index + 1) & mask();
      Used[Index] = 1;
      Slots[Index] = std::move(OldSlots[I]);
    }
  }

  std::vector<Slot> Slots;
  std::vector<std::uint8_t> Used;
  std::size_t Count = 0;
};

} // namespace warden

#endif // WARDEN_SUPPORT_FLATMAP_H
