//===- support/Types.h - Fundamental scalar types -------------*- C++ -*-===//
//
// Part of the WARDen reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Fundamental scalar type aliases shared by every subsystem: simulated
/// addresses, cycle counts, and core identifiers.
///
//===----------------------------------------------------------------------===//

#ifndef WARDEN_SUPPORT_TYPES_H
#define WARDEN_SUPPORT_TYPES_H

#include <cstddef>
#include <cstdint>

namespace warden {

/// A simulated physical address. The simulated address space is completely
/// disjoint from host memory; translation to host shadow storage happens in
/// rt::SimMemory.
using Addr = std::uint64_t;

/// A count of simulated clock cycles.
using Cycles = std::uint64_t;

/// Identifier of a simulated hardware thread (one per core; no SMT).
using CoreId = unsigned;

/// Identifier of a socket (package) in the simulated machine.
using SocketId = unsigned;

/// Identifier of a strand (a maximal fork/join-free instruction sequence)
/// in the recorded task graph.
using StrandId = std::uint32_t;

/// Identifier of a logical task heap in the heap hierarchy.
using HeapId = std::uint32_t;

/// Identifier of an active WARD region as known to the hardware.
using RegionId = std::uint32_t;

/// Sentinel meaning "no core".
inline constexpr CoreId InvalidCore = static_cast<CoreId>(-1);

/// Sentinel meaning "no strand".
inline constexpr StrandId InvalidStrand = static_cast<StrandId>(-1);

/// Sentinel meaning "no region".
inline constexpr RegionId InvalidRegion = static_cast<RegionId>(-1);

/// Returns the base-2 logarithm of \p Value, which must be a power of two.
constexpr unsigned log2Exact(std::uint64_t Value) {
  unsigned Result = 0;
  while (Value > 1) {
    Value >>= 1;
    ++Result;
  }
  return Result;
}

/// Returns true if \p Value is a (nonzero) power of two.
constexpr bool isPowerOf2(std::uint64_t Value) {
  return Value != 0 && (Value & (Value - 1)) == 0;
}

/// Rounds \p Value up to the next multiple of \p Align (a power of two).
constexpr std::uint64_t alignTo(std::uint64_t Value, std::uint64_t Align) {
  return (Value + Align - 1) & ~(Align - 1);
}

} // namespace warden

#endif // WARDEN_SUPPORT_TYPES_H
