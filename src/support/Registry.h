//===- support/Registry.h - String-keyed factory registry -----*- C++ -*-===//
//
// Part of the WARDen reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small mutex-protected string-keyed table shared by the pluggable
/// registries (coherence protocols in coherence/Protocol.h, replacement
/// policies in mem/ReplacementPolicy.h). Entries keep registration order so
/// id listings in error messages and --list output are stable; insertion
/// replaces in place when the id already exists, mirroring the
/// registerProtocol() contract. Lookups are safe against a concurrent
/// registration from a test: controllers are constructed from JobPool
/// worker threads.
///
/// The registries themselves remain thin domain-specific wrappers (seeding
/// built-ins, canonical-kind resolution, error-message wording); this
/// template only owns the locked table.
///
//===----------------------------------------------------------------------===//

#ifndef WARDEN_SUPPORT_REGISTRY_H
#define WARDEN_SUPPORT_REGISTRY_H

#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace warden {

/// A locked, ordered map from string id to \p ValueT (typically a factory
/// closure plus per-entry metadata).
template <typename ValueT> class Registry {
public:
  struct Entry {
    std::string Id;
    ValueT Value;
  };

  /// Registers \p Value under \p Id, replacing an existing entry in place
  /// (registration order is preserved). Returns true if \p Id was new.
  bool insertOrReplace(std::string Id, ValueT Value) {
    std::lock_guard<std::mutex> Lock(Mutex);
    for (Entry &E : Entries)
      if (E.Id == Id) {
        E.Value = std::move(Value);
        return false;
      }
    Entries.push_back(Entry{std::move(Id), std::move(Value)});
    return true;
  }

  /// Returns a copy of the value registered under \p Id, or std::nullopt.
  std::optional<ValueT> find(std::string_view Id) const {
    std::lock_guard<std::mutex> Lock(Mutex);
    for (const Entry &E : Entries)
      if (E.Id == Id)
        return E.Value;
    return std::nullopt;
  }

  /// Returns a copy of every entry, in registration order. Used by lookups
  /// that need more than an exact-id match (e.g. makeProtocol's
  /// canonical-id-then-kind resolution).
  std::vector<Entry> snapshot() const {
    std::lock_guard<std::mutex> Lock(Mutex);
    return Entries;
  }

  /// The registered ids, in registration order.
  std::vector<std::string> ids() const {
    std::lock_guard<std::mutex> Lock(Mutex);
    std::vector<std::string> Ids;
    Ids.reserve(Entries.size());
    for (const Entry &E : Entries)
      Ids.push_back(E.Id);
    return Ids;
  }

  /// "a, b, c" — the listing quoted by parse and lookup error messages, so
  /// every error names exactly the valid ids.
  std::string joinedIds() const {
    std::lock_guard<std::mutex> Lock(Mutex);
    std::string Out;
    for (const Entry &E : Entries) {
      if (!Out.empty())
        Out += ", ";
      Out += E.Id;
    }
    return Out;
  }

private:
  mutable std::mutex Mutex;
  std::vector<Entry> Entries;
};

} // namespace warden

#endif // WARDEN_SUPPORT_REGISTRY_H
