//===- support/Json.cpp - Minimal JSON emission and validation ------------===//
//
// Part of the WARDen reproduction project.
//
//===----------------------------------------------------------------------===//

#include "src/support/Json.h"

#include <cassert>
#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>

using namespace warden;

//===----------------------------------------------------------------------===//
// JsonWriter
//===----------------------------------------------------------------------===//

void JsonWriter::preValue() {
  if (Stack.empty())
    return;
  Frame &Top = Stack.back();
  if (Top.IsObject) {
    assert(Top.PendingValue && "object member emitted without a key");
    Top.PendingValue = false;
    return;
  }
  if (Top.HasMembers)
    Out += ',';
  Top.HasMembers = true;
}

JsonWriter &JsonWriter::beginObject() {
  preValue();
  Out += '{';
  Stack.push_back({/*IsObject=*/true, false, false});
  return *this;
}

JsonWriter &JsonWriter::endObject() {
  assert(!Stack.empty() && Stack.back().IsObject && "mismatched endObject");
  assert(!Stack.back().PendingValue && "key without a value");
  Stack.pop_back();
  Out += '}';
  return *this;
}

JsonWriter &JsonWriter::beginArray() {
  preValue();
  Out += '[';
  Stack.push_back({/*IsObject=*/false, false, false});
  return *this;
}

JsonWriter &JsonWriter::endArray() {
  assert(!Stack.empty() && !Stack.back().IsObject && "mismatched endArray");
  Stack.pop_back();
  Out += ']';
  return *this;
}

JsonWriter &JsonWriter::key(std::string_view Name) {
  assert(!Stack.empty() && Stack.back().IsObject && "key outside an object");
  assert(!Stack.back().PendingValue && "two keys in a row");
  if (Stack.back().HasMembers)
    Out += ',';
  Stack.back().HasMembers = true;
  Stack.back().PendingValue = true;
  Out += '"';
  Out += escape(Name);
  Out += "\":";
  return *this;
}

JsonWriter &JsonWriter::value(std::string_view V) {
  preValue();
  Out += '"';
  Out += escape(V);
  Out += '"';
  return *this;
}

JsonWriter &JsonWriter::value(double V) {
  preValue();
  Out += formatDouble(V);
  return *this;
}

JsonWriter &JsonWriter::value(std::uint64_t V) {
  preValue();
  Out += std::to_string(V);
  return *this;
}

JsonWriter &JsonWriter::value(std::int64_t V) {
  preValue();
  Out += std::to_string(V);
  return *this;
}

JsonWriter &JsonWriter::value(bool V) {
  preValue();
  Out += V ? "true" : "false";
  return *this;
}

JsonWriter &JsonWriter::null() {
  preValue();
  Out += "null";
  return *this;
}

const std::string &JsonWriter::str() const {
  assert(Stack.empty() && "unterminated container");
  return Out;
}

std::string JsonWriter::escape(std::string_view Text) {
  std::string Result;
  Result.reserve(Text.size());
  for (unsigned char C : Text) {
    switch (C) {
    case '"':
      Result += "\\\"";
      break;
    case '\\':
      Result += "\\\\";
      break;
    case '\b':
      Result += "\\b";
      break;
    case '\f':
      Result += "\\f";
      break;
    case '\n':
      Result += "\\n";
      break;
    case '\r':
      Result += "\\r";
      break;
    case '\t':
      Result += "\\t";
      break;
    default:
      if (C < 0x20) {
        char Buf[8];
        std::snprintf(Buf, sizeof(Buf), "\\u%04x", C);
        Result += Buf;
      } else {
        // UTF-8 sequences pass through byte-for-byte.
        Result += static_cast<char>(C);
      }
    }
  }
  return Result;
}

std::string JsonWriter::formatDouble(double V) {
  if (!std::isfinite(V))
    return "null";
  char Buf[64];
  auto [End, Ec] = std::to_chars(Buf, Buf + sizeof(Buf), V);
  assert(Ec == std::errc() && "double does not fit the buffer");
  return std::string(Buf, End);
}

//===----------------------------------------------------------------------===//
// jsonValidate — strict recursive-descent RFC 8259 parser (values only,
// no document size limits beyond a nesting cap).
//===----------------------------------------------------------------------===//

namespace {

class Validator {
public:
  explicit Validator(std::string_view Text) : Text(Text) {}

  bool run(std::string *Error) {
    skipWs();
    bool Ok = parseValue() && (skipWs(), Pos == Text.size());
    if (!Ok && Error) {
      *Error = "invalid JSON at byte " + std::to_string(Pos);
      if (!Fail.empty())
        *Error += ": " + Fail;
    }
    return Ok;
  }

private:
  static constexpr unsigned MaxDepth = 512;

  bool error(const char *Why) {
    if (Fail.empty())
      Fail = Why;
    return false;
  }

  void skipWs() {
    while (Pos < Text.size() &&
           (Text[Pos] == ' ' || Text[Pos] == '\t' || Text[Pos] == '\n' ||
            Text[Pos] == '\r'))
      ++Pos;
  }

  bool eat(char C) {
    if (Pos < Text.size() && Text[Pos] == C) {
      ++Pos;
      return true;
    }
    return false;
  }

  bool literal(std::string_view Word) {
    if (Text.substr(Pos, Word.size()) != Word)
      return error("bad literal");
    Pos += Word.size();
    return true;
  }

  bool parseValue() {
    if (Depth > MaxDepth)
      return error("nesting too deep");
    if (Pos >= Text.size())
      return error("unexpected end of input");
    switch (Text[Pos]) {
    case '{':
      return parseObject();
    case '[':
      return parseArray();
    case '"':
      return parseString();
    case 't':
      return literal("true");
    case 'f':
      return literal("false");
    case 'n':
      return literal("null");
    default:
      return parseNumber();
    }
  }

  bool parseObject() {
    ++Depth;
    eat('{');
    skipWs();
    if (eat('}')) {
      --Depth;
      return true;
    }
    while (true) {
      skipWs();
      if (Pos >= Text.size() || Text[Pos] != '"')
        return error("expected object key");
      if (!parseString())
        return false;
      skipWs();
      if (!eat(':'))
        return error("expected ':'");
      skipWs();
      if (!parseValue())
        return false;
      skipWs();
      if (eat(','))
        continue;
      if (eat('}')) {
        --Depth;
        return true;
      }
      return error("expected ',' or '}'");
    }
  }

  bool parseArray() {
    ++Depth;
    eat('[');
    skipWs();
    if (eat(']')) {
      --Depth;
      return true;
    }
    while (true) {
      skipWs();
      if (!parseValue())
        return false;
      skipWs();
      if (eat(','))
        continue;
      if (eat(']')) {
        --Depth;
        return true;
      }
      return error("expected ',' or ']'");
    }
  }

  bool parseString() {
    eat('"');
    while (Pos < Text.size()) {
      unsigned char C = static_cast<unsigned char>(Text[Pos]);
      if (C == '"') {
        ++Pos;
        return true;
      }
      if (C < 0x20)
        return error("raw control character in string");
      if (C == '\\') {
        ++Pos;
        if (Pos >= Text.size())
          return error("truncated escape");
        char E = Text[Pos];
        if (E == 'u') {
          for (unsigned I = 1; I <= 4; ++I) {
            if (Pos + I >= Text.size() || !std::isxdigit(static_cast<unsigned char>(Text[Pos + I])))
              return error("bad \\u escape");
          }
          Pos += 4;
        } else if (E != '"' && E != '\\' && E != '/' && E != 'b' &&
                   E != 'f' && E != 'n' && E != 'r' && E != 't') {
          return error("bad escape character");
        }
      }
      ++Pos;
    }
    return error("unterminated string");
  }

  bool digits() {
    if (Pos >= Text.size() || !std::isdigit(static_cast<unsigned char>(Text[Pos])))
      return error("expected digit");
    while (Pos < Text.size() && std::isdigit(static_cast<unsigned char>(Text[Pos])))
      ++Pos;
    return true;
  }

  bool parseNumber() {
    eat('-');
    if (eat('0')) {
      // A leading zero cannot be followed by more digits.
      if (Pos < Text.size() && std::isdigit(static_cast<unsigned char>(Text[Pos])))
        return error("leading zero");
    } else if (!digits()) {
      return false;
    }
    if (eat('.') && !digits())
      return false;
    if (Pos < Text.size() && (Text[Pos] == 'e' || Text[Pos] == 'E')) {
      ++Pos;
      if (Pos < Text.size() && (Text[Pos] == '+' || Text[Pos] == '-'))
        ++Pos;
      if (!digits())
        return false;
    }
    return true;
  }

  std::string_view Text;
  std::size_t Pos = 0;
  unsigned Depth = 0;
  std::string Fail;
};

//===----------------------------------------------------------------------===//
// jsonParse — the same grammar, building a JsonValue DOM. Kept separate
// from the validator so validation stays allocation-free.
//===----------------------------------------------------------------------===//

class Parser {
public:
  explicit Parser(std::string_view Text) : Text(Text) {}

  std::optional<JsonValue> run(std::string *Error) {
    skipWs();
    JsonValue Root;
    bool Ok = parseValue(Root) && (skipWs(), Pos == Text.size());
    if (!Ok) {
      if (Error) {
        *Error = "invalid JSON at byte " + std::to_string(Pos);
        if (!Fail.empty())
          *Error += ": " + Fail;
      }
      return std::nullopt;
    }
    return Root;
  }

private:
  static constexpr unsigned MaxDepth = 512;

  bool error(const char *Why) {
    if (Fail.empty())
      Fail = Why;
    return false;
  }

  void skipWs() {
    while (Pos < Text.size() &&
           (Text[Pos] == ' ' || Text[Pos] == '\t' || Text[Pos] == '\n' ||
            Text[Pos] == '\r'))
      ++Pos;
  }

  bool eat(char C) {
    if (Pos < Text.size() && Text[Pos] == C) {
      ++Pos;
      return true;
    }
    return false;
  }

  bool literal(std::string_view Word) {
    if (Text.substr(Pos, Word.size()) != Word)
      return error("bad literal");
    Pos += Word.size();
    return true;
  }

  bool parseValue(JsonValue &Out) {
    if (Depth > MaxDepth)
      return error("nesting too deep");
    if (Pos >= Text.size())
      return error("unexpected end of input");
    switch (Text[Pos]) {
    case '{':
      return parseObject(Out);
    case '[':
      return parseArray(Out);
    case '"':
      Out.K = JsonValue::Kind::String;
      return parseString(Out.String);
    case 't':
      Out.K = JsonValue::Kind::Bool;
      Out.Bool = true;
      return literal("true");
    case 'f':
      Out.K = JsonValue::Kind::Bool;
      Out.Bool = false;
      return literal("false");
    case 'n':
      Out.K = JsonValue::Kind::Null;
      return literal("null");
    default:
      return parseNumber(Out);
    }
  }

  bool parseObject(JsonValue &Out) {
    Out.K = JsonValue::Kind::Object;
    ++Depth;
    eat('{');
    skipWs();
    if (eat('}')) {
      --Depth;
      return true;
    }
    while (true) {
      skipWs();
      if (Pos >= Text.size() || Text[Pos] != '"')
        return error("expected object key");
      std::string Key;
      if (!parseString(Key))
        return false;
      for (const auto &[Existing, Unused] : Out.Object)
        if (Existing == Key)
          return error("duplicate object key");
      skipWs();
      if (!eat(':'))
        return error("expected ':'");
      skipWs();
      JsonValue Member;
      if (!parseValue(Member))
        return false;
      Out.Object.emplace_back(std::move(Key), std::move(Member));
      skipWs();
      if (eat(','))
        continue;
      if (eat('}')) {
        --Depth;
        return true;
      }
      return error("expected ',' or '}'");
    }
  }

  bool parseArray(JsonValue &Out) {
    Out.K = JsonValue::Kind::Array;
    ++Depth;
    eat('[');
    skipWs();
    if (eat(']')) {
      --Depth;
      return true;
    }
    while (true) {
      skipWs();
      JsonValue Element;
      if (!parseValue(Element))
        return false;
      Out.Array.push_back(std::move(Element));
      skipWs();
      if (eat(','))
        continue;
      if (eat(']')) {
        --Depth;
        return true;
      }
      return error("expected ',' or ']'");
    }
  }

  void appendUtf8(std::string &Out, unsigned Code) {
    if (Code < 0x80) {
      Out += static_cast<char>(Code);
    } else if (Code < 0x800) {
      Out += static_cast<char>(0xc0 | (Code >> 6));
      Out += static_cast<char>(0x80 | (Code & 0x3f));
    } else if (Code < 0x10000) {
      Out += static_cast<char>(0xe0 | (Code >> 12));
      Out += static_cast<char>(0x80 | ((Code >> 6) & 0x3f));
      Out += static_cast<char>(0x80 | (Code & 0x3f));
    } else {
      Out += static_cast<char>(0xf0 | (Code >> 18));
      Out += static_cast<char>(0x80 | ((Code >> 12) & 0x3f));
      Out += static_cast<char>(0x80 | ((Code >> 6) & 0x3f));
      Out += static_cast<char>(0x80 | (Code & 0x3f));
    }
  }

  bool hex4(unsigned &Out) {
    Out = 0;
    for (unsigned I = 0; I < 4; ++I) {
      if (Pos >= Text.size() ||
          !std::isxdigit(static_cast<unsigned char>(Text[Pos])))
        return error("bad \\u escape");
      char C = Text[Pos++];
      Out = Out * 16 + static_cast<unsigned>(
                           C <= '9' ? C - '0' : (C | 0x20) - 'a' + 10);
    }
    return true;
  }

  bool parseString(std::string &Out) {
    eat('"');
    while (Pos < Text.size()) {
      unsigned char C = static_cast<unsigned char>(Text[Pos]);
      if (C == '"') {
        ++Pos;
        return true;
      }
      if (C < 0x20)
        return error("raw control character in string");
      if (C != '\\') {
        Out += static_cast<char>(C);
        ++Pos;
        continue;
      }
      ++Pos;
      if (Pos >= Text.size())
        return error("truncated escape");
      char E = Text[Pos++];
      switch (E) {
      case '"':
      case '\\':
      case '/':
        Out += E;
        break;
      case 'b':
        Out += '\b';
        break;
      case 'f':
        Out += '\f';
        break;
      case 'n':
        Out += '\n';
        break;
      case 'r':
        Out += '\r';
        break;
      case 't':
        Out += '\t';
        break;
      case 'u': {
        unsigned Code;
        if (!hex4(Code))
          return false;
        // Combine a surrogate pair; a lone half cannot become UTF-8.
        if (Code >= 0xd800 && Code < 0xdc00) {
          if (Text.substr(Pos, 2) != "\\u")
            return error("unpaired surrogate");
          Pos += 2;
          unsigned Low;
          if (!hex4(Low))
            return false;
          if (Low < 0xdc00 || Low > 0xdfff)
            return error("unpaired surrogate");
          Code = 0x10000 + ((Code - 0xd800) << 10) + (Low - 0xdc00);
        } else if (Code >= 0xdc00 && Code <= 0xdfff) {
          return error("unpaired surrogate");
        }
        appendUtf8(Out, Code);
        break;
      }
      default:
        return error("bad escape character");
      }
    }
    return error("unterminated string");
  }

  bool parseNumber(JsonValue &Out) {
    std::size_t Start = Pos;
    eat('-');
    if (eat('0')) {
      if (Pos < Text.size() &&
          std::isdigit(static_cast<unsigned char>(Text[Pos])))
        return error("leading zero");
    } else if (!digits()) {
      return false;
    }
    if (eat('.') && !digits())
      return false;
    if (Pos < Text.size() && (Text[Pos] == 'e' || Text[Pos] == 'E')) {
      ++Pos;
      if (Pos < Text.size() && (Text[Pos] == '+' || Text[Pos] == '-'))
        ++Pos;
      if (!digits())
        return false;
    }
    Out.K = JsonValue::Kind::Number;
    auto [Ptr, Ec] = std::from_chars(Text.data() + Start, Text.data() + Pos,
                                     Out.Number);
    if (Ec != std::errc() || Ptr != Text.data() + Pos)
      return error("number out of range");
    return true;
  }

  bool digits() {
    if (Pos >= Text.size() ||
        !std::isdigit(static_cast<unsigned char>(Text[Pos])))
      return error("expected digit");
    while (Pos < Text.size() &&
           std::isdigit(static_cast<unsigned char>(Text[Pos])))
      ++Pos;
    return true;
  }

  std::string_view Text;
  std::size_t Pos = 0;
  unsigned Depth = 0;
  std::string Fail;
};

} // namespace

bool warden::jsonValidate(std::string_view Text, std::string *Error) {
  return Validator(Text).run(Error);
}

const JsonValue *JsonValue::get(std::string_view Key) const {
  if (K != Kind::Object)
    return nullptr;
  for (const auto &[Name, Value] : Object)
    if (Name == Key)
      return &Value;
  return nullptr;
}

std::optional<JsonValue> warden::jsonParse(std::string_view Text,
                                           std::string *Error) {
  return Parser(Text).run(Error);
}

