//===- support/Json.cpp - Minimal JSON emission and validation ------------===//
//
// Part of the WARDen reproduction project.
//
//===----------------------------------------------------------------------===//

#include "src/support/Json.h"

#include <cassert>
#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>

using namespace warden;

//===----------------------------------------------------------------------===//
// JsonWriter
//===----------------------------------------------------------------------===//

void JsonWriter::preValue() {
  if (Stack.empty())
    return;
  Frame &Top = Stack.back();
  if (Top.IsObject) {
    assert(Top.PendingValue && "object member emitted without a key");
    Top.PendingValue = false;
    return;
  }
  if (Top.HasMembers)
    Out += ',';
  Top.HasMembers = true;
}

JsonWriter &JsonWriter::beginObject() {
  preValue();
  Out += '{';
  Stack.push_back({/*IsObject=*/true, false, false});
  return *this;
}

JsonWriter &JsonWriter::endObject() {
  assert(!Stack.empty() && Stack.back().IsObject && "mismatched endObject");
  assert(!Stack.back().PendingValue && "key without a value");
  Stack.pop_back();
  Out += '}';
  return *this;
}

JsonWriter &JsonWriter::beginArray() {
  preValue();
  Out += '[';
  Stack.push_back({/*IsObject=*/false, false, false});
  return *this;
}

JsonWriter &JsonWriter::endArray() {
  assert(!Stack.empty() && !Stack.back().IsObject && "mismatched endArray");
  Stack.pop_back();
  Out += ']';
  return *this;
}

JsonWriter &JsonWriter::key(std::string_view Name) {
  assert(!Stack.empty() && Stack.back().IsObject && "key outside an object");
  assert(!Stack.back().PendingValue && "two keys in a row");
  if (Stack.back().HasMembers)
    Out += ',';
  Stack.back().HasMembers = true;
  Stack.back().PendingValue = true;
  Out += '"';
  Out += escape(Name);
  Out += "\":";
  return *this;
}

JsonWriter &JsonWriter::value(std::string_view V) {
  preValue();
  Out += '"';
  Out += escape(V);
  Out += '"';
  return *this;
}

JsonWriter &JsonWriter::value(double V) {
  preValue();
  Out += formatDouble(V);
  return *this;
}

JsonWriter &JsonWriter::value(std::uint64_t V) {
  preValue();
  Out += std::to_string(V);
  return *this;
}

JsonWriter &JsonWriter::value(std::int64_t V) {
  preValue();
  Out += std::to_string(V);
  return *this;
}

JsonWriter &JsonWriter::value(bool V) {
  preValue();
  Out += V ? "true" : "false";
  return *this;
}

JsonWriter &JsonWriter::null() {
  preValue();
  Out += "null";
  return *this;
}

const std::string &JsonWriter::str() const {
  assert(Stack.empty() && "unterminated container");
  return Out;
}

std::string JsonWriter::escape(std::string_view Text) {
  std::string Result;
  Result.reserve(Text.size());
  for (unsigned char C : Text) {
    switch (C) {
    case '"':
      Result += "\\\"";
      break;
    case '\\':
      Result += "\\\\";
      break;
    case '\b':
      Result += "\\b";
      break;
    case '\f':
      Result += "\\f";
      break;
    case '\n':
      Result += "\\n";
      break;
    case '\r':
      Result += "\\r";
      break;
    case '\t':
      Result += "\\t";
      break;
    default:
      if (C < 0x20) {
        char Buf[8];
        std::snprintf(Buf, sizeof(Buf), "\\u%04x", C);
        Result += Buf;
      } else {
        // UTF-8 sequences pass through byte-for-byte.
        Result += static_cast<char>(C);
      }
    }
  }
  return Result;
}

std::string JsonWriter::formatDouble(double V) {
  if (!std::isfinite(V))
    return "null";
  char Buf[64];
  auto [End, Ec] = std::to_chars(Buf, Buf + sizeof(Buf), V);
  assert(Ec == std::errc() && "double does not fit the buffer");
  return std::string(Buf, End);
}

//===----------------------------------------------------------------------===//
// jsonValidate — strict recursive-descent RFC 8259 parser (values only,
// no document size limits beyond a nesting cap).
//===----------------------------------------------------------------------===//

namespace {

class Validator {
public:
  explicit Validator(std::string_view Text) : Text(Text) {}

  bool run(std::string *Error) {
    skipWs();
    bool Ok = parseValue() && (skipWs(), Pos == Text.size());
    if (!Ok && Error) {
      *Error = "invalid JSON at byte " + std::to_string(Pos);
      if (!Fail.empty())
        *Error += ": " + Fail;
    }
    return Ok;
  }

private:
  static constexpr unsigned MaxDepth = 512;

  bool error(const char *Why) {
    if (Fail.empty())
      Fail = Why;
    return false;
  }

  void skipWs() {
    while (Pos < Text.size() &&
           (Text[Pos] == ' ' || Text[Pos] == '\t' || Text[Pos] == '\n' ||
            Text[Pos] == '\r'))
      ++Pos;
  }

  bool eat(char C) {
    if (Pos < Text.size() && Text[Pos] == C) {
      ++Pos;
      return true;
    }
    return false;
  }

  bool literal(std::string_view Word) {
    if (Text.substr(Pos, Word.size()) != Word)
      return error("bad literal");
    Pos += Word.size();
    return true;
  }

  bool parseValue() {
    if (Depth > MaxDepth)
      return error("nesting too deep");
    if (Pos >= Text.size())
      return error("unexpected end of input");
    switch (Text[Pos]) {
    case '{':
      return parseObject();
    case '[':
      return parseArray();
    case '"':
      return parseString();
    case 't':
      return literal("true");
    case 'f':
      return literal("false");
    case 'n':
      return literal("null");
    default:
      return parseNumber();
    }
  }

  bool parseObject() {
    ++Depth;
    eat('{');
    skipWs();
    if (eat('}')) {
      --Depth;
      return true;
    }
    while (true) {
      skipWs();
      if (Pos >= Text.size() || Text[Pos] != '"')
        return error("expected object key");
      if (!parseString())
        return false;
      skipWs();
      if (!eat(':'))
        return error("expected ':'");
      skipWs();
      if (!parseValue())
        return false;
      skipWs();
      if (eat(','))
        continue;
      if (eat('}')) {
        --Depth;
        return true;
      }
      return error("expected ',' or '}'");
    }
  }

  bool parseArray() {
    ++Depth;
    eat('[');
    skipWs();
    if (eat(']')) {
      --Depth;
      return true;
    }
    while (true) {
      skipWs();
      if (!parseValue())
        return false;
      skipWs();
      if (eat(','))
        continue;
      if (eat(']')) {
        --Depth;
        return true;
      }
      return error("expected ',' or ']'");
    }
  }

  bool parseString() {
    eat('"');
    while (Pos < Text.size()) {
      unsigned char C = static_cast<unsigned char>(Text[Pos]);
      if (C == '"') {
        ++Pos;
        return true;
      }
      if (C < 0x20)
        return error("raw control character in string");
      if (C == '\\') {
        ++Pos;
        if (Pos >= Text.size())
          return error("truncated escape");
        char E = Text[Pos];
        if (E == 'u') {
          for (unsigned I = 1; I <= 4; ++I) {
            if (Pos + I >= Text.size() || !std::isxdigit(static_cast<unsigned char>(Text[Pos + I])))
              return error("bad \\u escape");
          }
          Pos += 4;
        } else if (E != '"' && E != '\\' && E != '/' && E != 'b' &&
                   E != 'f' && E != 'n' && E != 'r' && E != 't') {
          return error("bad escape character");
        }
      }
      ++Pos;
    }
    return error("unterminated string");
  }

  bool digits() {
    if (Pos >= Text.size() || !std::isdigit(static_cast<unsigned char>(Text[Pos])))
      return error("expected digit");
    while (Pos < Text.size() && std::isdigit(static_cast<unsigned char>(Text[Pos])))
      ++Pos;
    return true;
  }

  bool parseNumber() {
    eat('-');
    if (eat('0')) {
      // A leading zero cannot be followed by more digits.
      if (Pos < Text.size() && std::isdigit(static_cast<unsigned char>(Text[Pos])))
        return error("leading zero");
    } else if (!digits()) {
      return false;
    }
    if (eat('.') && !digits())
      return false;
    if (Pos < Text.size() && (Text[Pos] == 'e' || Text[Pos] == 'E')) {
      ++Pos;
      if (Pos < Text.size() && (Text[Pos] == '+' || Text[Pos] == '-'))
        ++Pos;
      if (!digits())
        return false;
    }
    return true;
  }

  std::string_view Text;
  std::size_t Pos = 0;
  unsigned Depth = 0;
  std::string Fail;
};

} // namespace

bool warden::jsonValidate(std::string_view Text, std::string *Error) {
  return Validator(Text).run(Error);
}
