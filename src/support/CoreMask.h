//===- support/CoreMask.h - Fixed-size core bit set ------------*- C++ -*-===//
//
// Part of the WARDen reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A bit set over hardware threads, used for directory sharer lists.
/// The simulated machines in this study never exceed 64 cores, so a single
/// 64-bit word suffices; this mirrors the sharer bitmasks real LLC
/// directories keep per block.
///
//===----------------------------------------------------------------------===//

#ifndef WARDEN_SUPPORT_COREMASK_H
#define WARDEN_SUPPORT_COREMASK_H

#include "src/support/Types.h"

#include <bit>
#include <cassert>
#include <cstdint>

namespace warden {

/// Set of core ids in [0, 64).
class CoreMask {
public:
  static constexpr unsigned MaxCores = 64;

  CoreMask() = default;

  /// Returns a mask containing only \p Core.
  static CoreMask single(CoreId Core) {
    CoreMask M;
    M.set(Core);
    return M;
  }

  void set(CoreId Core) {
    assert(Core < MaxCores && "core id out of range");
    Bits |= (1ULL << Core);
  }

  void clear(CoreId Core) {
    assert(Core < MaxCores && "core id out of range");
    Bits &= ~(1ULL << Core);
  }

  bool test(CoreId Core) const {
    assert(Core < MaxCores && "core id out of range");
    return (Bits >> Core) & 1ULL;
  }

  void clearAll() { Bits = 0; }

  bool empty() const { return Bits == 0; }

  unsigned count() const { return std::popcount(Bits); }

  /// Returns the lowest-numbered core in the mask; the mask must not be
  /// empty.
  CoreId first() const {
    assert(!empty() && "first() on empty mask");
    return static_cast<CoreId>(std::countr_zero(Bits));
  }

  /// Returns true if \p Core is the only member.
  bool isSingleton(CoreId Core) const { return Bits == (1ULL << Core); }

  std::uint64_t raw() const { return Bits; }

  bool operator==(const CoreMask &Other) const = default;

  /// Calls \p Fn for each member core in ascending order.
  template <typename FnT> void forEach(FnT Fn) const {
    std::uint64_t Remaining = Bits;
    while (Remaining != 0) {
      CoreId Core = static_cast<CoreId>(std::countr_zero(Remaining));
      Remaining &= Remaining - 1;
      Fn(Core);
    }
  }

private:
  std::uint64_t Bits = 0;
};

} // namespace warden

#endif // WARDEN_SUPPORT_COREMASK_H
