//===- support/Json.h - Minimal JSON emission and validation --*- C++ -*-===//
//
// Part of the WARDen reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small streaming JSON writer (used by the observability subsystem and
/// the benchmark harnesses for their machine-readable reports) plus a
/// strict validator used by tests and CI to check that emitted documents
/// actually parse. The writer tracks the container stack, so commas and
/// nesting are always correct by construction; strings are escaped per RFC
/// 8259 and doubles are printed shortest-round-trip (NaN/Inf, which JSON
/// cannot represent, become null).
///
//===----------------------------------------------------------------------===//

#ifndef WARDEN_SUPPORT_JSON_H
#define WARDEN_SUPPORT_JSON_H

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace warden {

/// Streaming JSON writer with automatic comma/nesting management.
///
///   JsonWriter W;
///   W.beginObject().key("speedup").value(1.25).endObject();
///   std::string Doc = W.str();
class JsonWriter {
public:
  JsonWriter &beginObject();
  JsonWriter &endObject();
  JsonWriter &beginArray();
  JsonWriter &endArray();

  /// Emits the key of the next object member. Must be inside an object.
  JsonWriter &key(std::string_view Name);

  JsonWriter &value(std::string_view V);
  JsonWriter &value(const char *V) { return value(std::string_view(V)); }
  JsonWriter &value(double V);
  JsonWriter &value(std::uint64_t V);
  JsonWriter &value(std::int64_t V);
  JsonWriter &value(unsigned V) { return value(std::uint64_t(V)); }
  JsonWriter &value(int V) { return value(std::int64_t(V)); }
  JsonWriter &value(bool V);
  JsonWriter &null();

  /// key() + value() in one call.
  template <typename T>
  JsonWriter &member(std::string_view Name, const T &V) {
    key(Name);
    return value(V);
  }

  /// Returns the finished document. Asserts every container was closed.
  const std::string &str() const;

  /// Escapes \p Text as the contents of a JSON string (no quotes added).
  static std::string escape(std::string_view Text);

  /// Formats a double as a JSON number token (shortest round-trip form);
  /// NaN and infinities become "null".
  static std::string formatDouble(double V);

private:
  /// Emits the separating comma (if needed) before a value or key.
  void preValue();

  struct Frame {
    bool IsObject = false;
    bool HasMembers = false;
    bool PendingValue = false; ///< Object key emitted, value outstanding.
  };
  std::string Out;
  std::vector<Frame> Stack;
};

/// Strictly validates that \p Text is one complete JSON document (RFC
/// 8259). On failure returns false and, when \p Error is non-null, stores a
/// short description including the byte offset.
bool jsonValidate(std::string_view Text, std::string *Error = nullptr);

/// A parsed JSON value — a small DOM for tests and offline tools that need
/// to inspect emitted documents (e.g. schema checks over trace events),
/// not just validate them. Object members keep insertion order; duplicate
/// keys are rejected at parse time.
struct JsonValue {
  enum class Kind { Null, Bool, Number, String, Array, Object };
  Kind K = Kind::Null;
  bool Bool = false;
  double Number = 0;
  std::string String;
  std::vector<JsonValue> Array;
  std::vector<std::pair<std::string, JsonValue>> Object;

  bool isNull() const { return K == Kind::Null; }
  bool isBool() const { return K == Kind::Bool; }
  bool isNumber() const { return K == Kind::Number; }
  bool isString() const { return K == Kind::String; }
  bool isArray() const { return K == Kind::Array; }
  bool isObject() const { return K == Kind::Object; }

  /// Object member lookup; null when this is not an object or the key is
  /// absent.
  const JsonValue *get(std::string_view Key) const;
};

/// Strictly parses \p Text (same grammar jsonValidate accepts) into a DOM.
/// std::nullopt on failure, with a description in \p Error when non-null.
std::optional<JsonValue> jsonParse(std::string_view Text,
                                   std::string *Error = nullptr);

} // namespace warden

#endif // WARDEN_SUPPORT_JSON_H
