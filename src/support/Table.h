//===- support/Table.h - Plain-text table formatting -----------*- C++ -*-===//
//
// Part of the WARDen reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small column-aligned plain-text table printer used by the benchmark
/// harnesses to emit the rows of each paper table/figure. Output goes
/// through a std::string so library code stays free of iostream.
///
//===----------------------------------------------------------------------===//

#ifndef WARDEN_SUPPORT_TABLE_H
#define WARDEN_SUPPORT_TABLE_H

#include <string>
#include <vector>

namespace warden {

/// Column-aligned table builder. Add a header row, then data rows; render()
/// produces the final aligned text.
class Table {
public:
  /// Sets the header row and fixes the column count.
  void setHeader(std::vector<std::string> Columns);

  /// Appends a data row; must match the header's column count.
  void addRow(std::vector<std::string> Columns);

  /// Renders the table with two-space column separation. Numeric-looking
  /// cells are right-aligned; everything else is left-aligned.
  std::string render() const;

  /// Formats a double with \p Decimals fraction digits.
  static std::string fmt(double Value, int Decimals = 2);

  /// Formats an unsigned integer.
  static std::string fmt(std::uint64_t Value);

  /// Formats a ratio as a percentage string with \p Decimals digits.
  static std::string pct(double Fraction, int Decimals = 1);

private:
  std::vector<std::string> Header;
  std::vector<std::vector<std::string>> Rows;
};

} // namespace warden

#endif // WARDEN_SUPPORT_TABLE_H
