//===- support/Strings.h - Small string formatting helpers ----*- C++ -*-===//
//
// Part of the WARDen reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// printf-style formatting into std::string, used for diagnostic messages
/// (configuration validation errors, protocol-auditor violation reports).
/// Kept in support so lower layers can produce readable diagnostics without
/// pulling in iostreams.
///
//===----------------------------------------------------------------------===//

#ifndef WARDEN_SUPPORT_STRINGS_H
#define WARDEN_SUPPORT_STRINGS_H

#include <cstdarg>
#include <cstdio>
#include <string>

namespace warden {

/// Formats \p Format printf-style into a std::string.
#if defined(__GNUC__) || defined(__clang__)
__attribute__((format(printf, 1, 2)))
#endif
inline std::string
strformat(const char *Format, ...) {
  va_list Args;
  va_start(Args, Format);
  va_list ArgsCopy;
  va_copy(ArgsCopy, Args);
  int Needed = std::vsnprintf(nullptr, 0, Format, Args);
  va_end(Args);
  if (Needed < 0) {
    va_end(ArgsCopy);
    return Format; // Formatting failed; return the raw format string.
  }
  std::string Result(static_cast<std::size_t>(Needed), '\0');
  std::vsnprintf(Result.data(), Result.size() + 1, Format, ArgsCopy);
  va_end(ArgsCopy);
  return Result;
}

} // namespace warden

#endif // WARDEN_SUPPORT_STRINGS_H
