//===- support/JobPool.h - Deterministic host thread pool -----*- C++ -*-===//
//
// Part of the WARDen reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small help-first thread pool for fanning out independent simulations
/// (protocol x benchmark x repeat) across host cores. Two properties make
/// it safe for the harnesses:
///
///  * Help-first waiting: runAll() callers execute queued tasks while
///    their own batch is outstanding, so nested fan-outs (suite -> compare
///    -> repeats) compose without deadlock even on a one-thread pool.
///  * Determinism by construction: the pool schedules tasks in any order
///    but each task writes only its own pre-allocated result slot, so a
///    parallel run produces byte-identical output to a serial one. The
///    pool itself never reorders observable side effects — callers must
///    not share mutable state between tasks.
///
//===----------------------------------------------------------------------===//

#ifndef WARDEN_SUPPORT_JOBPOOL_H
#define WARDEN_SUPPORT_JOBPOOL_H

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace warden {

/// Fixed-size pool executing batches of independent tasks.
class JobPool {
public:
  /// Creates a pool with \p Concurrency total executors: the calling
  /// thread plus Concurrency - 1 workers. Concurrency <= 1 spawns no
  /// threads, and runAll() then runs every task inline on the caller —
  /// the serial path with identical semantics.
  explicit JobPool(unsigned Concurrency);
  ~JobPool();

  JobPool(const JobPool &) = delete;
  JobPool &operator=(const JobPool &) = delete;

  /// Total executors (workers + the runAll caller).
  unsigned concurrency() const {
    return static_cast<unsigned>(Workers.size()) + 1;
  }

  /// Runs every task, returning when all have finished. The caller
  /// participates (help-first), executing queued tasks — possibly from
  /// other batches — while waiting. If any task throws, the first
  /// exception (in completion order) is rethrown after the whole batch
  /// has drained; the remaining tasks still run.
  void runAll(std::vector<std::function<void()>> Tasks);

  /// Runs Fn(0) .. Fn(Count - 1), in any order, and returns when all have
  /// finished. One task per executor self-schedules indices off a shared
  /// atomic counter, so tiny per-index bodies are not queued individually.
  /// Same determinism contract as runAll(): each index must write only its
  /// own slots. Count <= 1 or a one-executor pool runs inline.
  void parallelFor(std::size_t Count,
                   const std::function<void(std::size_t)> &Fn);

private:
  /// Shared completion state of one runAll() batch.
  struct Batch {
    std::size_t Pending = 0;
    std::exception_ptr FirstError;
  };
  struct Item {
    std::function<void()> Fn;
    std::shared_ptr<Batch> Owner;
  };

  /// Pops and runs the front task. \p Lock must be held; it is released
  /// while the task runs and re-acquired before returning.
  void runOneTask(std::unique_lock<std::mutex> &Lock);
  void workerLoop();

  std::mutex Mu;
  std::condition_variable WorkReady; ///< Signalled when tasks are queued.
  std::condition_variable Progress;  ///< Signalled on task completion/arrival.
  std::deque<Item> Queue;
  std::vector<std::thread> Workers;
  bool Stopping = false;
};

} // namespace warden

#endif // WARDEN_SUPPORT_JOBPOOL_H
