//===- support/Rng.h - Deterministic random number generation -*- C++ -*-===//
//
// Part of the WARDen reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small deterministic PRNG (SplitMix64) used everywhere randomness is
/// needed: input generation, victim selection in the work-stealing
/// scheduler, and property-based test sweeps. Determinism matters because
/// the phase-2 timing replay must be bit-reproducible across runs so that
/// MESI and WARDen are compared on identical schedules.
///
//===----------------------------------------------------------------------===//

#ifndef WARDEN_SUPPORT_RNG_H
#define WARDEN_SUPPORT_RNG_H

#include <cassert>
#include <cstdint>

namespace warden {

/// SplitMix64 generator. Tiny state, excellent statistical quality for
/// simulation purposes, and trivially reproducible.
class Rng {
public:
  explicit Rng(std::uint64_t Seed = 0x9e3779b97f4a7c15ULL) : State(Seed) {}

  /// Returns the next 64 pseudo-random bits.
  std::uint64_t next() {
    State += 0x9e3779b97f4a7c15ULL;
    std::uint64_t Z = State;
    Z = (Z ^ (Z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    Z = (Z ^ (Z >> 27)) * 0x94d049bb133111ebULL;
    return Z ^ (Z >> 31);
  }

  /// Returns a value uniformly distributed in [0, Bound).
  std::uint64_t nextBelow(std::uint64_t Bound) {
    assert(Bound > 0 && "bound must be positive");
    // Modulo bias is negligible for the bounds used in this project and
    // keeps the generator branch-free and fast.
    return next() % Bound;
  }

  /// Returns a value uniformly distributed in [Lo, Hi).
  std::int64_t nextInRange(std::int64_t Lo, std::int64_t Hi) {
    assert(Lo < Hi && "empty range");
    return Lo + static_cast<std::int64_t>(
                    nextBelow(static_cast<std::uint64_t>(Hi - Lo)));
  }

  /// Returns a double uniformly distributed in [0, 1).
  double nextDouble() {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

private:
  std::uint64_t State;
};

} // namespace warden

#endif // WARDEN_SUPPORT_RNG_H
