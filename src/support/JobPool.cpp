//===- support/JobPool.cpp - Deterministic host thread pool ---------------===//
//
// Part of the WARDen reproduction project.
//
//===----------------------------------------------------------------------===//

#include "src/support/JobPool.h"

#include <algorithm>
#include <atomic>

using namespace warden;

JobPool::JobPool(unsigned Concurrency) {
  unsigned WorkerCount = Concurrency > 1 ? Concurrency - 1 : 0;
  Workers.reserve(WorkerCount);
  for (unsigned I = 0; I < WorkerCount; ++I)
    Workers.emplace_back([this] { workerLoop(); });
}

JobPool::~JobPool() {
  {
    std::unique_lock<std::mutex> Lock(Mu);
    Stopping = true;
  }
  WorkReady.notify_all();
  for (std::thread &Worker : Workers)
    Worker.join();
}

void JobPool::runOneTask(std::unique_lock<std::mutex> &Lock) {
  Item Work = std::move(Queue.front());
  Queue.pop_front();
  Lock.unlock();
  std::exception_ptr Error;
  try {
    Work.Fn();
  } catch (...) {
    Error = std::current_exception();
  }
  Lock.lock();
  if (Error && !Work.Owner->FirstError)
    Work.Owner->FirstError = Error;
  if (--Work.Owner->Pending == 0)
    Progress.notify_all();
}

void JobPool::workerLoop() {
  std::unique_lock<std::mutex> Lock(Mu);
  while (true) {
    WorkReady.wait(Lock, [this] { return Stopping || !Queue.empty(); });
    if (Queue.empty())
      return; // Stopping with nothing left to drain.
    runOneTask(Lock);
  }
}

void JobPool::runAll(std::vector<std::function<void()>> Tasks) {
  if (Tasks.empty())
    return;
  auto Owner = std::make_shared<Batch>();
  Owner->Pending = Tasks.size();

  std::unique_lock<std::mutex> Lock(Mu);
  for (std::function<void()> &Task : Tasks)
    Queue.push_back(Item{std::move(Task), Owner});
  WorkReady.notify_all();
  // Wake any helper blocked in another runAll: the new tasks may be the
  // nested work its own batch is waiting on.
  Progress.notify_all();

  while (Owner->Pending > 0) {
    if (!Queue.empty()) {
      runOneTask(Lock);
      continue;
    }
    // Our tasks are all claimed but still running elsewhere. Help-first:
    // wake up either when the batch completes or when new work (possibly
    // spawned by one of our own tasks) arrives.
    Progress.wait(Lock, [&] { return Owner->Pending == 0 || !Queue.empty(); });
  }
  if (Owner->FirstError)
    std::rethrow_exception(Owner->FirstError);
}

void JobPool::parallelFor(std::size_t Count,
                          const std::function<void(std::size_t)> &Fn) {
  if (Count == 0)
    return;
  if (Count == 1 || concurrency() <= 1) {
    for (std::size_t I = 0; I < Count; ++I)
      Fn(I);
    return;
  }
  auto Next = std::make_shared<std::atomic<std::size_t>>(0);
  std::size_t TaskCount = std::min<std::size_t>(concurrency(), Count);
  std::vector<std::function<void()>> Tasks;
  Tasks.reserve(TaskCount);
  for (std::size_t T = 0; T < TaskCount; ++T)
    Tasks.push_back([Next, Count, &Fn] {
      for (std::size_t I = Next->fetch_add(1, std::memory_order_relaxed);
           I < Count;
           I = Next->fetch_add(1, std::memory_order_relaxed))
        Fn(I);
    });
  runAll(std::move(Tasks));
}
