//===- support/JobPool.cpp - Deterministic host thread pool ---------------===//
//
// Part of the WARDen reproduction project.
//
//===----------------------------------------------------------------------===//

#include "src/support/JobPool.h"

using namespace warden;

JobPool::JobPool(unsigned Concurrency) {
  unsigned WorkerCount = Concurrency > 1 ? Concurrency - 1 : 0;
  Workers.reserve(WorkerCount);
  for (unsigned I = 0; I < WorkerCount; ++I)
    Workers.emplace_back([this] { workerLoop(); });
}

JobPool::~JobPool() {
  {
    std::unique_lock<std::mutex> Lock(Mu);
    Stopping = true;
  }
  WorkReady.notify_all();
  for (std::thread &Worker : Workers)
    Worker.join();
}

void JobPool::runOneTask(std::unique_lock<std::mutex> &Lock) {
  Item Work = std::move(Queue.front());
  Queue.pop_front();
  Lock.unlock();
  std::exception_ptr Error;
  try {
    Work.Fn();
  } catch (...) {
    Error = std::current_exception();
  }
  Lock.lock();
  if (Error && !Work.Owner->FirstError)
    Work.Owner->FirstError = Error;
  if (--Work.Owner->Pending == 0)
    Progress.notify_all();
}

void JobPool::workerLoop() {
  std::unique_lock<std::mutex> Lock(Mu);
  while (true) {
    WorkReady.wait(Lock, [this] { return Stopping || !Queue.empty(); });
    if (Queue.empty())
      return; // Stopping with nothing left to drain.
    runOneTask(Lock);
  }
}

void JobPool::runAll(std::vector<std::function<void()>> Tasks) {
  if (Tasks.empty())
    return;
  auto Owner = std::make_shared<Batch>();
  Owner->Pending = Tasks.size();

  std::unique_lock<std::mutex> Lock(Mu);
  for (std::function<void()> &Task : Tasks)
    Queue.push_back(Item{std::move(Task), Owner});
  WorkReady.notify_all();
  // Wake any helper blocked in another runAll: the new tasks may be the
  // nested work its own batch is waiting on.
  Progress.notify_all();

  while (Owner->Pending > 0) {
    if (!Queue.empty()) {
      runOneTask(Lock);
      continue;
    }
    // Our tasks are all claimed but still running elsewhere. Help-first:
    // wake up either when the batch completes or when new work (possibly
    // spawned by one of our own tasks) arrives.
    Progress.wait(Lock, [&] { return Owner->Pending == 0 || !Queue.empty(); });
  }
  if (Owner->FirstError)
    std::rethrow_exception(Owner->FirstError);
}
