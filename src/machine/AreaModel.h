//===- machine/AreaModel.h - Section 6.1 hardware cost model --*- C++ -*-===//
//
// Part of the WARDen reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// An analytical (CACTI-flavoured) area model for WARDen's hardware
/// additions, reproducing Section 6.1's feasibility numbers: byte
/// sectoring adds one write bit per eight data bits (the paper estimates a
/// 7.9% cache area overhead on 64-byte blocks once tags, state, sharer
/// masks, and SECDED overheads are accounted for), and the region CAM
/// (16 bytes per region, 1024 regions) costs under 0.05% additional area.
///
//===----------------------------------------------------------------------===//

#ifndef WARDEN_MACHINE_AREAMODEL_H
#define WARDEN_MACHINE_AREAMODEL_H

#include "src/machine/MachineConfig.h"

#include <cstdint>

namespace warden {

/// Per-line metadata breakdown of a cache, in bits.
struct CacheLineBits {
  unsigned DataBits = 0;
  unsigned TagBits = 0;
  unsigned StateBits = 0;
  unsigned SharerBits = 0;   ///< LLC directory sharer mask (0 for private).
  unsigned SecdedBits = 0;   ///< Error-correction overhead.
  unsigned SectorBits = 0;   ///< WARDen's per-byte write flags.

  unsigned baselineBits() const {
    return DataBits + TagBits + StateBits + SharerBits + SecdedBits;
  }
  unsigned wardenBits() const { return baselineBits() + SectorBits; }
};

/// Aggregate area-cost estimates for the WARDen additions.
struct AreaEstimate {
  /// Fractional cache-area increase from byte sectoring across the whole
  /// cache hierarchy (paper: 7.9%).
  double SectoringOverhead = 0;
  /// Fractional area of the region-tracking CAM relative to total cache
  /// area (paper: < 0.05% for 1024 regions).
  double RegionCamOverhead = 0;
  /// Bytes of CAM storage (16 bytes per region).
  std::uint64_t RegionCamBytes = 0;
};

/// Analytical area model over a machine configuration.
class AreaModel {
public:
  explicit AreaModel(const MachineConfig &Config) : Config(Config) {}

  /// Metadata layout of one line of a cache with \p CacheCapacityBytes of
  /// data, \p Sectored per WARDen, and \p IsShared when it carries the LLC
  /// directory sharer mask.
  CacheLineBits lineBits(std::uint64_t CacheCapacityBytes, bool Sectored,
                         bool IsShared) const;

  /// Full-machine estimate.
  AreaEstimate estimate() const;

private:
  const MachineConfig &Config;
};

} // namespace warden

#endif // WARDEN_MACHINE_AREAMODEL_H
