//===- machine/EnergyModel.h - Event-based energy accounting --*- C++ -*-===//
//
// Part of the WARDen reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// McPAT-style event-based energy accounting. The paper reports two energy
/// quantities per benchmark (Figures 7b/8b/12b): "Total Processor" energy
/// (core dynamic + cache dynamic + static leakage over the execution time)
/// and "Interconnect" energy (coherence messages and data transfers by link
/// class). Per-event energies are of the magnitude produced by CACTI /
/// McPAT for a 14 nm Xeon-class part; only *relative* savings matter for
/// the reproduction.
///
//===----------------------------------------------------------------------===//

#ifndef WARDEN_MACHINE_ENERGYMODEL_H
#define WARDEN_MACHINE_ENERGYMODEL_H

#include "src/machine/MachineConfig.h"
#include "src/support/Types.h"

#include <cstdint>

namespace warden {

/// Raw event counts consumed by the energy model. Populated from
/// CoherenceStats and scheduler statistics at the end of a run.
struct EnergyEvents {
  std::uint64_t Instructions = 0;
  std::uint64_t L1Accesses = 0;
  std::uint64_t L2Accesses = 0;
  std::uint64_t L3Accesses = 0;
  std::uint64_t DramAccesses = 0;
  /// Control messages (requests, acks, invalidations) by link class.
  std::uint64_t MsgsIntraSocket = 0;
  std::uint64_t MsgsInterSocket = 0;
  std::uint64_t MsgsRemote = 0;
  /// Full cache-block data transfers by link class.
  std::uint64_t DataIntraSocket = 0;
  std::uint64_t DataInterSocket = 0;
  std::uint64_t DataRemote = 0;
  /// Traffic over the non-coherent node interconnect (NumNodes > 1 only).
  std::uint64_t MsgsInterNode = 0;
  std::uint64_t DataInterNode = 0;
};

/// Energy totals in nanojoules, split the way the paper plots them.
struct EnergyBreakdown {
  double CoreDynamicNJ = 0;
  double CacheDynamicNJ = 0;
  double StaticNJ = 0;
  double InterconnectNJ = 0;
  double DramNJ = 0;

  /// "Total Processor" series of Figures 7b/8b: everything the package
  /// consumes, including its interconnect.
  double totalProcessorNJ() const {
    return CoreDynamicNJ + CacheDynamicNJ + StaticNJ + InterconnectNJ +
           DramNJ;
  }

  /// "Interconnect" / "Network" series.
  double interconnectNJ() const { return InterconnectNJ; }
};

/// Converts event counts plus execution time into an energy breakdown.
class EnergyModel {
public:
  explicit EnergyModel(const MachineConfig &Config) : Config(Config) {}

  EnergyBreakdown compute(const EnergyEvents &Events, Cycles Elapsed) const;

  // Per-event energies (nanojoules). Public so tests and ablations can
  // reason about them.
  static constexpr double InstructionNJ = 0.15;
  static constexpr double L1AccessNJ = 0.05;
  static constexpr double L2AccessNJ = 0.25;
  static constexpr double L3AccessNJ = 1.1;
  static constexpr double DramAccessNJ = 20.0;
  static constexpr double MsgIntraNJ = 0.12;
  static constexpr double MsgInterNJ = 2.8;
  static constexpr double MsgRemoteNJ = 28.0;
  static constexpr double DataIntraNJ = 0.9;
  static constexpr double DataInterNJ = 16.0;
  static constexpr double DataRemoteNJ = 160.0;
  /// Node-interconnect (CXL-switch-class) events: dearer than glued
  /// sockets, far cheaper than the disaggregated network.
  static constexpr double MsgInterNodeNJ = 9.0;
  static constexpr double DataInterNodeNJ = 52.0;
  /// Static (leakage + uncore idle) power per core, watts.
  static constexpr double StaticWattsPerCore = 1.1;
  /// Static power of the on-chip interconnect (routers, link clocking) per
  /// socket, watts. Burned for the whole execution, so faster runs save it
  /// — a large share of McPAT's NoC energy.
  static constexpr double NetworkStaticWattsPerSocket = 1.6;
  /// Static power per inter-socket (QPI/UPI-style) link, watts.
  static constexpr double InterSocketLinkWatts = 2.2;
  /// Static power per inter-node link of a disaggregated system, watts.
  static constexpr double RemoteLinkWatts = 9.0;
  /// Static power per link of the non-coherent node interconnect, watts.
  static constexpr double NodeLinkWatts = 4.5;

private:
  const MachineConfig &Config;
};

} // namespace warden

#endif // WARDEN_MACHINE_ENERGYMODEL_H
