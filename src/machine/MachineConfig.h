//===- machine/MachineConfig.h - Simulated machine parameters -*- C++ -*-===//
//
// Part of the WARDen reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Configuration of the simulated machine, following Table 2 of the paper:
/// Xeon Gold 6126-like sockets (12 cores, 32 KB L1 / 256 KB L2 private,
/// 2.5 MB-per-core shared L3, 6-16-71 cycle latencies, 64 B blocks,
/// 3.3 GHz), plus the future-hardware variants of Section 7.3 (many-socket
/// and disaggregated with a 1 us remote access time).
///
//===----------------------------------------------------------------------===//

#ifndef WARDEN_MACHINE_MACHINECONFIG_H
#define WARDEN_MACHINE_MACHINECONFIG_H

#include "src/coherence/Protocol.h"
#include "src/support/Types.h"

#include <string>
#include <vector>

namespace warden {

/// Feature toggles for the WARDen protocol, used by the ablation benches
/// (Section 5.3 design choices).
struct WardenFeatures {
  /// Serve GetS on a WARD block with an Exclusive copy so the reader never
  /// needs a later upgrade (Section 5.1).
  bool GetSReturnsExclusive = true;

  /// Proactively flush (reconcile) the forking thread's dirty WARD lines at
  /// forks so freshly spawned tasks read them from the shared cache
  /// (Section 5.3).
  bool ProactiveForkFlush = true;

  /// Cycles charged to the unmarking core per reconciled block that needs
  /// an actual multi-copy merge (single-holder blocks drain in the
  /// background for free). The paper observed roughly one reconciled block
  /// per 50,000 cycles and treats the delay as trivial.
  Cycles ReconcileCostPerBlock = 2;

  /// Maximum simultaneously tracked WARD regions (Section 6.1 sizes the
  /// CAM-like storage for 1024 regions). Additional regions fall back to
  /// plain MESI, which is always safe.
  unsigned RegionTableCapacity = 1024;
};

/// Full description of the simulated machine.
struct MachineConfig {
  // --- Topology -----------------------------------------------------------
  unsigned NumSockets = 1;
  unsigned CoresPerSocket = 12;

  /// When true, the sockets are disaggregated compute nodes whose shared
  /// memory is reached over a network with RemoteLatency (Section 7.3).
  bool Disaggregated = false;

  // --- Node tier (CXL-pool shape) ------------------------------------------
  /// Nodes group whole sockets under a *non-coherent* interconnect: the
  /// hardware keeps caches coherent within a node but never across nodes,
  /// so only a lazy log-based backend ("racoh") can span them. NumNodes = 1
  /// (the default) collapses the tier — every config built before the tier
  /// existed behaves byte-identically. NumSockets must divide evenly into
  /// NumNodes.
  unsigned NumNodes = 1;
  /// One-way latency of a cross-node hop over the non-coherent
  /// interconnect (log publish/consume traffic, remote-homed fills).
  /// Roughly CXL-switch territory: slower than glued sockets, faster than
  /// the 1 us disaggregated network.
  Cycles NodeInterconnectLatency = 2000;
  /// Capacity, in dirty-line records, of each node's bounded coherence log
  /// queue. A release that finds the queue full stalls (back-pressure)
  /// until remote consumers drain the head.
  unsigned NodeLogQueueCapacity = 1024;
  /// Cycles a release pays to publish its pending log to the node queue
  /// (cache-agent doorbell + descriptor write), charged once per publish.
  Cycles LogPublishLatency = 40;
  /// Cycles the consuming core's cache agent spends per log record drained
  /// at an acquire — the deterministic simulated cost of walking the log.
  Cycles LogConsumeCyclesPerRecord = 4;

  // --- Caches (Table 2) ---------------------------------------------------
  unsigned BlockSize = 64;           ///< Bytes per cache block.
  unsigned L1SizeKB = 32;            ///< Private L1 data cache.
  unsigned L1Assoc = 8;
  unsigned L2SizeKB = 256;           ///< Private L2.
  unsigned L2Assoc = 8;
  unsigned L3SizePerCoreKB = 2560;   ///< Shared LLC slice per core (2.5 MB).
  unsigned L3Assoc = 20;

  // --- Latencies (cycles) -------------------------------------------------
  Cycles L1Latency = 6;
  Cycles L2Latency = 16;
  Cycles L3Latency = 71;
  /// One-way latency added when a request or forwarded snoop crosses
  /// sockets. Calibrated so the Figure 6 ping-pong microbenchmark lands in
  /// the neighbourhood of Table 1 (286 cycles same-socket, 1214 cross).
  Cycles IntersocketLatency = 450;
  /// Main-memory access beyond the LLC.
  Cycles DramLatency = 140;
  /// One-way latency to reach memory homed on a remote disaggregated node.
  /// 1 us at 3.3 GHz = 3300 cycles (Section 7.3).
  Cycles RemoteLatency = 3300;

  double FrequencyGHz = 3.3;

  // --- Runtime / scheduler costs (cycles) ----------------------------------
  Cycles ForkOverhead = 60;   ///< Deque push + bookkeeping at a fork.
  Cycles JoinOverhead = 40;   ///< Join-counter maintenance at a join.
  Cycles StealOverhead = 250; ///< Failed/successful steal attempt round.

  /// Size of the per-core store buffer in entries. Stores retire without
  /// blocking unless the buffer is full (Section 7.2's analysis of why
  /// invalidations matter less than downgrades).
  unsigned StoreBufferEntries = 56;
  /// Drain rate: minimum cycles between store-buffer retirements.
  Cycles StoreRetireCycles = 2;

  // --- Protocol ------------------------------------------------------------
  ProtocolKind Protocol = ProtocolKind::Mesi;
  WardenFeatures Features;

  // --- Replacement ---------------------------------------------------------
  /// Registered replacement-policy id applied to every cache array (see
  /// mem/ReplacementPolicy.h). "lru" is byte-identical to the pre-registry
  /// behaviour; validate() rejects unregistered ids.
  std::string Replacement = "lru";

  // --- Derived -------------------------------------------------------------
  unsigned totalCores() const { return NumSockets * CoresPerSocket; }
  SocketId socketOf(CoreId Core) const { return Core / CoresPerSocket; }
  /// Sockets per node (NumNodes = 1 puts every socket on node 0).
  unsigned socketsPerNode() const {
    return NumNodes == 0 ? NumSockets : NumSockets / NumNodes;
  }
  /// The node a socket belongs to: sockets are grouped contiguously, so
  /// sockets [0, socketsPerNode) form node 0, the next group node 1, ...
  unsigned nodeOf(SocketId Socket) const {
    unsigned PerNode = socketsPerNode();
    return PerNode == 0 ? 0 : Socket / PerNode;
  }
  unsigned nodeOfCore(CoreId Core) const { return nodeOf(socketOf(Core)); }
  std::uint64_t l3SizeBytes() const {
    return static_cast<std::uint64_t>(L3SizePerCoreKB) * 1024 *
           CoresPerSocket;
  }

  /// Fallback home of a block when no first-touch information exists:
  /// interleaved across sockets at block granularity. The coherence
  /// controller normally homes pages at the socket that first touches them
  /// (first-touch NUMA placement, the common OS default), which is what
  /// keeps node-local data local on multi-socket and disaggregated
  /// machines.
  SocketId homeSocket(Addr BlockAddr) const {
    return static_cast<SocketId>((BlockAddr / BlockSize) % NumSockets);
  }

  /// Converts \p C cycles to nanoseconds at the configured frequency.
  double cyclesToNs(Cycles C) const {
    return static_cast<double>(C) / FrequencyGHz;
  }

  // --- Presets (the paper's evaluated machines) ----------------------------
  /// Figure 7: one socket, 12 cores.
  static MachineConfig singleSocket();
  /// Figure 8/9/10/11: two sockets, 24 cores.
  static MachineConfig dualSocket();
  /// Figure 12: two disaggregated nodes, 1 us remote access.
  static MachineConfig disaggregated();
  /// Section 7.3 "many sockets": \p Sockets sockets of 12 cores.
  static MachineConfig manySocket(unsigned Sockets);
  /// CXL-pool shape: \p Nodes nodes of one socket each behind the
  /// non-coherent node interconnect — the deployment the racoh backend
  /// models. Other protocols still simulate on it (they simply never emit
  /// cross-node log traffic), which is what the multi-node comparison
  /// harness exploits.
  static MachineConfig multiNode(unsigned Nodes);

  /// Returns a human-readable name like "single-socket (12 cores)".
  std::string describe() const;

  /// Checks the configuration for mistakes that would otherwise surface as
  /// asserts or undefined behaviour deep inside the cache arrays
  /// (non-power-of-two block size, zero cores, impossible cache geometry,
  /// remote-latency settings that contradict the topology). Returns one
  /// descriptive message per problem; an empty vector means the
  /// configuration is simulatable. All presets validate cleanly.
  std::vector<std::string> validate() const;
};

} // namespace warden

#endif // WARDEN_MACHINE_MACHINECONFIG_H
