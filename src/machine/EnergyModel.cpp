//===- machine/EnergyModel.cpp - Event-based energy accounting ------------===//
//
// Part of the WARDen reproduction project.
//
//===----------------------------------------------------------------------===//

#include "src/machine/EnergyModel.h"

using namespace warden;

EnergyBreakdown EnergyModel::compute(const EnergyEvents &Events,
                                     Cycles Elapsed) const {
  EnergyBreakdown Result;
  Result.CoreDynamicNJ =
      static_cast<double>(Events.Instructions) * InstructionNJ;
  Result.CacheDynamicNJ = static_cast<double>(Events.L1Accesses) * L1AccessNJ +
                          static_cast<double>(Events.L2Accesses) * L2AccessNJ +
                          static_cast<double>(Events.L3Accesses) * L3AccessNJ;
  Result.DramNJ = static_cast<double>(Events.DramAccesses) * DramAccessNJ;
  Result.InterconnectNJ =
      static_cast<double>(Events.MsgsIntraSocket) * MsgIntraNJ +
      static_cast<double>(Events.MsgsInterSocket) * MsgInterNJ +
      static_cast<double>(Events.MsgsRemote) * MsgRemoteNJ +
      static_cast<double>(Events.DataIntraSocket) * DataIntraNJ +
      static_cast<double>(Events.DataInterSocket) * DataInterNJ +
      static_cast<double>(Events.DataRemote) * DataRemoteNJ +
      static_cast<double>(Events.MsgsInterNode) * MsgInterNodeNJ +
      static_cast<double>(Events.DataInterNode) * DataInterNodeNJ;

  // Static energy: P * t, with t = cycles / frequency. Frequency in GHz
  // gives nanoseconds; watts * nanoseconds = nanojoules.
  double ElapsedNs = Config.cyclesToNs(Elapsed);
  Result.StaticNJ =
      StaticWattsPerCore * static_cast<double>(Config.totalCores()) *
      ElapsedNs;

  // The interconnect also burns static (router/link clocking) power for
  // the whole execution; on multi-socket and disaggregated machines the
  // cross-links dominate. This is why shorter executions save so much
  // network energy in the paper's Figures 8b/12b.
  unsigned Sockets = Config.NumSockets;
  if (Config.NumNodes > 1) {
    // Multi-node machine: coherent socket links exist only within a node;
    // the node tier adds its own (non-coherent) links on top.
    unsigned PerNode = Config.socketsPerNode();
    unsigned SocketLinks =
        Config.NumNodes * (PerNode > 1 ? PerNode * (PerNode - 1) / 2 : 0);
    unsigned NodeLinks = Config.NumNodes * (Config.NumNodes - 1) / 2;
    Result.InterconnectNJ +=
        (NetworkStaticWattsPerSocket * Sockets +
         InterSocketLinkWatts * SocketLinks + NodeLinkWatts * NodeLinks) *
        ElapsedNs;
    return Result;
  }
  unsigned Links = Sockets > 1 ? Sockets * (Sockets - 1) / 2 : 0;
  double LinkWatts =
      Config.Disaggregated ? RemoteLinkWatts : InterSocketLinkWatts;
  Result.InterconnectNJ +=
      (NetworkStaticWattsPerSocket * Sockets + LinkWatts * Links) *
      ElapsedNs;
  return Result;
}
