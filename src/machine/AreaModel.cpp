//===- machine/AreaModel.cpp - Section 6.1 hardware cost model --------------===//
//
// Part of the WARDen reproduction project.
//
//===----------------------------------------------------------------------===//

#include "src/machine/AreaModel.h"

#include "src/support/Types.h"

#include <cmath>

using namespace warden;

CacheLineBits AreaModel::lineBits(std::uint64_t CacheCapacityBytes,
                                  bool Sectored, bool IsShared) const {
  CacheLineBits Bits;
  Bits.DataBits = Config.BlockSize * 8;

  // Tag: 48-bit physical address minus set-index and block-offset bits.
  std::uint64_t Lines = CacheCapacityBytes / Config.BlockSize;
  unsigned AssocLog = 0; // Sets = lines / assoc; index bits = log2(sets).
  unsigned Assoc = IsShared ? Config.L3Assoc : Config.L1Assoc;
  std::uint64_t Sets = Lines / Assoc;
  unsigned IndexBits = Sets > 1 ? log2Exact(Sets) : 0;
  unsigned OffsetBits = log2Exact(Config.BlockSize);
  Bits.TagBits = 48 - IndexBits - OffsetBits + AssocLog;

  Bits.StateBits = 3; // MESI(+W) needs 3 state bits.
  if (IsShared)
    Bits.SharerBits = Config.totalCores(); // Full-map sharer bitmask.

  // SECDED over each 64-bit data word: 8 check bits per 64 bits.
  Bits.SecdedBits = (Bits.DataBits / 64) * 8;

  if (Sectored)
    Bits.SectorBits = Config.BlockSize; // One write bit per data byte.
  return Bits;
}

AreaEstimate AreaModel::estimate() const {
  AreaEstimate Estimate;

  // Weighted across the hierarchy: per-core L1 + L2, per-socket LLC.
  struct Level {
    std::uint64_t CapacityBytes;
    std::uint64_t Count;
    bool Shared;
  };
  const Level Levels[] = {
      {static_cast<std::uint64_t>(Config.L1SizeKB) * 1024,
       Config.totalCores(), false},
      {static_cast<std::uint64_t>(Config.L2SizeKB) * 1024,
       Config.totalCores(), false},
      {Config.l3SizeBytes(), Config.NumSockets, true},
  };

  double BaselineBits = 0;
  double WardenBits = 0;
  for (const Level &L : Levels) {
    CacheLineBits Bits = lineBits(L.CapacityBytes, /*Sectored=*/true, L.Shared);
    double Lines = static_cast<double>(L.CapacityBytes / Config.BlockSize) *
                   static_cast<double>(L.Count);
    BaselineBits += Lines * Bits.baselineBits();
    WardenBits += Lines * Bits.wardenBits();
  }
  Estimate.SectoringOverhead = WardenBits / BaselineBits - 1.0;

  // Region CAM: two pointers (16 bytes) per region, per socket, plus ~25%
  // for the per-bit comparator logic relative to SRAM of the same size.
  Estimate.RegionCamBytes = std::uint64_t(16) *
                            Config.Features.RegionTableCapacity *
                            Config.NumSockets;
  double CamBits = static_cast<double>(Estimate.RegionCamBytes) * 8 * 1.25;
  Estimate.RegionCamOverhead = CamBits / BaselineBits;
  return Estimate;
}
