//===- machine/MachineConfig.cpp - Simulated machine parameters -----------===//
//
// Part of the WARDen reproduction project.
//
//===----------------------------------------------------------------------===//

#include "src/machine/MachineConfig.h"

#include "src/mem/ReplacementPolicy.h"
#include "src/mem/SectorMask.h"
#include "src/support/CoreMask.h"
#include "src/support/Strings.h"

#include <cstdio>

using namespace warden;

MachineConfig MachineConfig::singleSocket() {
  MachineConfig Config;
  Config.NumSockets = 1;
  return Config;
}

MachineConfig MachineConfig::dualSocket() {
  MachineConfig Config;
  Config.NumSockets = 2;
  return Config;
}

MachineConfig MachineConfig::disaggregated() {
  MachineConfig Config;
  Config.NumSockets = 2;
  Config.Disaggregated = true;
  return Config;
}

MachineConfig MachineConfig::manySocket(unsigned Sockets) {
  MachineConfig Config;
  Config.NumSockets = Sockets;
  return Config;
}

MachineConfig MachineConfig::multiNode(unsigned Nodes) {
  MachineConfig Config;
  Config.NumSockets = Nodes;
  Config.NumNodes = Nodes;
  return Config;
}

std::vector<std::string> MachineConfig::validate() const {
  std::vector<std::string> Errors;

  if (NumSockets == 0)
    Errors.push_back("machine has zero sockets");
  if (CoresPerSocket == 0)
    Errors.push_back("machine has zero cores per socket");
  if (totalCores() > CoreMask::MaxCores)
    Errors.push_back(strformat(
        "machine has %u cores but directory sharer masks track at most %u",
        totalCores(), CoreMask::MaxCores));

  if (BlockSize == 0 || !isPowerOf2(BlockSize))
    Errors.push_back(strformat(
        "block size %u bytes is not a (nonzero) power of two", BlockSize));
  else if (BlockSize > SectorMask::MaxBytes)
    Errors.push_back(strformat(
        "block size %u bytes exceeds the %u-byte sector-mask limit",
        BlockSize, SectorMask::MaxBytes));

  // A cache level is realisable when its ways are nonzero and its size
  // splits evenly into sets of Assoc blocks (CacheArray asserts exactly
  // this; report it up front instead).
  auto CheckCache = [&](const char *Name, std::uint64_t SizeBytes,
                        unsigned Assoc) {
    if (Assoc == 0) {
      Errors.push_back(strformat("%s associativity is zero", Name));
      return;
    }
    if (SizeBytes == 0) {
      Errors.push_back(strformat("%s size is zero", Name));
      return;
    }
    std::uint64_t WaySize = static_cast<std::uint64_t>(Assoc) * BlockSize;
    if (BlockSize != 0 && SizeBytes % WaySize != 0)
      Errors.push_back(strformat(
          "%s size %llu bytes is not divisible by its way size "
          "(%u ways x %u-byte blocks)",
          Name, static_cast<unsigned long long>(SizeBytes), Assoc,
          BlockSize));
  };
  CheckCache("L1", static_cast<std::uint64_t>(L1SizeKB) * 1024, L1Assoc);
  CheckCache("L2", static_cast<std::uint64_t>(L2SizeKB) * 1024, L2Assoc);
  CheckCache("L3", l3SizeBytes(), L3Assoc);

  if (FrequencyGHz <= 0.0)
    Errors.push_back("clock frequency must be positive");

  if (Disaggregated && NumSockets < 2)
    Errors.push_back(
        "disaggregated topology needs at least two compute nodes");
  if (Disaggregated && RemoteLatency == 0)
    Errors.push_back(
        "disaggregated topology with zero remote latency; remote latency "
        "only applies to disaggregated machines and must be nonzero there");

  // Node tier above sockets. The tier only exists when NumNodes > 1, but a
  // nonsensical value is rejected even for single-node machines so a typo
  // cannot silently collapse the tier.
  if (NumNodes == 0)
    Errors.push_back("machine has zero nodes (use 1 to collapse the tier)");
  else if (NumNodes > NumSockets)
    Errors.push_back(strformat(
        "machine has %u nodes but only %u sockets; nodes group whole "
        "sockets",
        NumNodes, NumSockets));
  else if (NumSockets % NumNodes != 0)
    Errors.push_back(strformat(
        "%u sockets do not divide evenly across %u nodes", NumSockets,
        NumNodes));
  if (NumNodes > 1) {
    if (NodeInterconnectLatency == 0)
      Errors.push_back(
          "multi-node topology with zero node-interconnect latency; the "
          "non-coherent cross-node hop must cost something");
    if (NodeLogQueueCapacity == 0)
      Errors.push_back(
          "multi-node topology with a zero-capacity node log queue; a "
          "release could never publish (every publish would stall forever)");
    if (Disaggregated)
      Errors.push_back(
          "disaggregated and multi-node topologies are mutually exclusive: "
          "the node tier models a non-coherent CXL pool, disaggregation a "
          "fully remote memory network");
  }

  if (!isRegisteredReplacementId(Replacement)) {
    std::string Ids;
    for (const std::string &Id : registeredReplacementIds()) {
      if (!Ids.empty())
        Ids += ", ";
      Ids += Id;
    }
    Errors.push_back("unknown replacement id '" + Replacement +
                     "' (registered ids: " + Ids + ")");
  }

  return Errors;
}

std::string MachineConfig::describe() const {
  char Buffer[128];
  if (NumNodes > 1)
    std::snprintf(Buffer, sizeof(Buffer),
                  "%u-node %u-socket (%u cores, non-coherent interconnect)",
                  NumNodes, NumSockets, totalCores());
  else
    std::snprintf(Buffer, sizeof(Buffer), "%s%u-socket (%u cores)",
                  Disaggregated ? "disaggregated " : "", NumSockets,
                  totalCores());
  return Buffer;
}
