//===- machine/MachineConfig.cpp - Simulated machine parameters -----------===//
//
// Part of the WARDen reproduction project.
//
//===----------------------------------------------------------------------===//

#include "src/machine/MachineConfig.h"

#include <cstdio>

using namespace warden;

const char *warden::protocolName(ProtocolKind Protocol) {
  switch (Protocol) {
  case ProtocolKind::Mesi:
    return "MESI";
  case ProtocolKind::Warden:
    return "WARDen";
  }
  return "unknown";
}

MachineConfig MachineConfig::singleSocket() {
  MachineConfig Config;
  Config.NumSockets = 1;
  return Config;
}

MachineConfig MachineConfig::dualSocket() {
  MachineConfig Config;
  Config.NumSockets = 2;
  return Config;
}

MachineConfig MachineConfig::disaggregated() {
  MachineConfig Config;
  Config.NumSockets = 2;
  Config.Disaggregated = true;
  return Config;
}

MachineConfig MachineConfig::manySocket(unsigned Sockets) {
  MachineConfig Config;
  Config.NumSockets = Sockets;
  return Config;
}

std::string MachineConfig::describe() const {
  char Buffer[128];
  std::snprintf(Buffer, sizeof(Buffer), "%s%u-socket (%u cores)",
                Disaggregated ? "disaggregated " : "", NumSockets,
                totalCores());
  return Buffer;
}
