//===- machine/LatencyModel.h - Request latency composition ---*- C++ -*-===//
//
// Part of the WARDen reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Composes end-to-end latencies for memory requests from the per-component
/// latencies of MachineConfig (Table 2). The coherence controller asks this
/// model for the cost of each leg of a request: private-cache hits, the trip
/// to the home LLC slice, forwarded snoops to remote owners, and DRAM.
///
//===----------------------------------------------------------------------===//

#ifndef WARDEN_MACHINE_LATENCYMODEL_H
#define WARDEN_MACHINE_LATENCYMODEL_H

#include "src/machine/MachineConfig.h"
#include "src/support/Types.h"

namespace warden {

/// Stateless latency calculator over a machine configuration.
class LatencyModel {
public:
  explicit LatencyModel(const MachineConfig &Config) : Config(Config) {}

  /// Latency of an L1 data hit.
  Cycles l1Hit() const { return Config.L1Latency; }

  /// Latency of an L2 hit (L1 already checked).
  Cycles l2Hit() const { return Config.L2Latency; }

  /// One-way cost of crossing from \p From to \p To socket: zero within a
  /// socket, the QPI/UPI-like link cost between sockets, the network cost
  /// between disaggregated nodes, or the non-coherent node-interconnect
  /// cost when the sockets live on different nodes of a multi-node (CXL
  /// pool) machine. Single-node machines (the default) never take the
  /// node branch, keeping every pre-node-tier configuration byte-identical.
  Cycles crossing(SocketId From, SocketId To) const {
    if (From == To)
      return 0;
    if (Config.NumNodes > 1 && Config.nodeOf(From) != Config.nodeOf(To))
      return Config.NodeInterconnectLatency;
    return Config.Disaggregated ? Config.RemoteLatency
                                : Config.IntersocketLatency;
  }

  /// One-way cost of a node-interconnect hop (log fetch/publish traffic),
  /// independent of which sockets sit at the endpoints.
  Cycles nodeHop() const { return Config.NodeInterconnectLatency; }

  /// Cost for core \p Requester to consult the home LLC slice/directory of
  /// a block homed on \p Home (after missing in its private caches).
  Cycles toHome(CoreId Requester, SocketId Home) const {
    return crossing(Config.socketOf(Requester), Home) + Config.L3Latency;
  }

  /// Cost of the directory (at \p Home) forwarding a snoop to \p Owner's
  /// private cache and the owner supplying data directly to \p Requester
  /// (cache-to-cache transfer). Includes an extra LLC-magnitude hop for the
  /// probe/response trip through the uncore: calibrated so the Figure 6
  /// ping-pong microbenchmark lands near Table 1's simulated latencies
  /// (~286 cycles same-socket, ~1214 cross-socket per iteration).
  Cycles forwardAndSupply(SocketId Home, CoreId Owner,
                          CoreId Requester) const {
    SocketId OwnerSocket = Config.socketOf(Owner);
    return crossing(Home, OwnerSocket) + Config.L2Latency +
           Config.L3Latency + crossing(OwnerSocket, Config.socketOf(Requester));
  }

  /// Cost of fetching the block from the DRAM attached to the home socket
  /// (the trip to the home was already paid by toHome()).
  Cycles dram() const { return Config.DramLatency; }

  /// Round-trip cost of invalidating \p Sharer's copy from the directory at
  /// \p Home. Invalidation acks are collected by the directory; the
  /// requester's completion waits for the slowest sharer.
  Cycles invalidate(SocketId Home, CoreId Sharer) const {
    return 2 * crossing(Home, Config.socketOf(Sharer)) + Config.L2Latency;
  }

private:
  const MachineConfig &Config;
};

} // namespace warden

#endif // WARDEN_MACHINE_LATENCYMODEL_H
