//===- coherence/CoherenceController.cpp - MESI + WARDen engine -----------===//
//
// Part of the WARDen reproduction project.
//
//===----------------------------------------------------------------------===//

#include "src/coherence/CoherenceController.h"

#include "src/obs/ChromeTraceExporter.h"
#include "src/obs/CpiStack.h"
#include "src/obs/MetricRegistry.h"
#include "src/obs/Observability.h"
#include "src/obs/SharingProfiler.h"
#include "src/verify/ProtocolAuditor.h"

#include <cassert>

using namespace warden;

const char *warden::dirStateName(DirState State) {
  switch (State) {
  case DirState::Invalid:
    return "I";
  case DirState::Shared:
    return "S";
  case DirState::Exclusive:
    return "E";
  case DirState::Modified:
    return "M";
  case DirState::Ward:
    return "W";
  }
  return "?";
}

CoherenceController::CoherenceController(const MachineConfig &Config,
                                         const FaultPlan &Faults)
    : Config(Config), Latency(this->Config),
      Regions(Faults.RegionTableCapacity >= 0
                  ? static_cast<unsigned>(Faults.RegionTableCapacity)
                  : Config.Features.RegionTableCapacity),
      Faults(Faults), FaultRng(Faults.Seed) {
  CacheGeometry L1Geometry(static_cast<std::uint64_t>(Config.L1SizeKB) * 1024,
                           Config.L1Assoc, Config.BlockSize);
  CacheGeometry L2Geometry(static_cast<std::uint64_t>(Config.L2SizeKB) * 1024,
                           Config.L2Assoc, Config.BlockSize);
  Private.reserve(Config.totalCores());
  for (unsigned I = 0; I < Config.totalCores(); ++I)
    Private.emplace_back(L1Geometry, L2Geometry);

  CacheGeometry LlcGeometry(Config.l3SizeBytes(), Config.L3Assoc,
                            Config.BlockSize);
  Llc.reserve(Config.NumSockets);
  for (unsigned I = 0; I < Config.NumSockets; ++I)
    Llc.emplace_back(LlcGeometry);
}

void CoherenceController::attachObs(Observability *NewObs) {
  Obs = NewObs;
  MetricRegistry *Registry = Obs ? Obs->Metrics : nullptr;
  LoadLatencyHist =
      Registry ? &Registry->histogram("coherence.load_latency_cycles")
               : nullptr;
  StoreLatencyHist =
      Registry ? &Registry->histogram("coherence.store_latency_cycles")
               : nullptr;
  RmwLatencyHist =
      Registry ? &Registry->histogram("coherence.rmw_latency_cycles")
               : nullptr;
  RegionLifetimeHist =
      Registry ? &Registry->histogram("ward.region_lifetime_cycles")
               : nullptr;
  Regions.attachMetrics(Registry);
  for (PrivateCache &Cache : Private)
    Cache.attachMetrics(Registry);
  Prof = Obs ? Obs->Profiler : nullptr;
  Cpi = Obs ? Obs->Cpi : nullptr;
  if (Obs && Obs->Trace)
    Obs->Trace->setCoreCount(Config.totalCores());
  RegionAddedAt.clear();
}

SocketId CoherenceController::homeOf(Addr Block, CoreId Requester) {
  if (Config.NumSockets == 1)
    return 0;
  Addr Page = Block >> 12;
  auto [It, Inserted] = PageHome.try_emplace(Page, Config.socketOf(Requester));
  (void)Inserted;
  return It.value();
}

SocketId CoherenceController::homeOfExisting(Addr Block) const {
  if (Config.NumSockets == 1)
    return 0;
  auto It = PageHome.find(Block >> 12);
  assert(It != PageHome.end() && "block was never touched");
  return It.value();
}

void CoherenceController::noteMsg(SocketId From, SocketId To) {
  if (From == To)
    ++Stats.MsgsIntraSocket;
  else if (Config.Disaggregated)
    ++Stats.MsgsRemote;
  else
    ++Stats.MsgsInterSocket;
}

void CoherenceController::noteData(SocketId From, SocketId To) {
  if (From == To)
    ++Stats.DataIntraSocket;
  else if (Config.Disaggregated)
    ++Stats.DataRemote;
  else
    ++Stats.DataInterSocket;
}

Cycles CoherenceController::llcData(Addr Block, SocketId Home) {
  if (Llc[Home].lookup(Block)) {
    ++Stats.LlcServes;
    return 0;
  }
  ++Stats.DramAccesses;
  std::optional<EvictedLine> Victim = Llc[Home].insert(Block, LineState::Shared);
  if (Victim && Victim->State == LineState::Modified)
    ++Stats.DramWritebacks;
  if (Cpi)
    Cpi->charge(CpiCat::Dram, Latency.dram());
  return Latency.dram();
}

void CoherenceController::writebackToLlc(Addr Block, SocketId Home) {
  if (CacheLine *Line = Llc[Home].lookup(Block)) {
    Line->State = LineState::Modified;
    return;
  }
  std::optional<EvictedLine> Victim =
      Llc[Home].insert(Block, LineState::Modified);
  if (Victim && Victim->State == LineState::Modified)
    ++Stats.DramWritebacks;
}

void CoherenceController::fillPrivate(CoreId Core, Addr Block,
                                      LineState State) {
  // Deliberate protocol mutations leave stale resident copies behind (that
  // is their point); drop such a copy so the refill stays legal and the
  // auditor, not PrivateCache's internal assert, reports the incoherence.
  if (Faults.Mutation != ProtocolMutation::None)
    Private[Core].invalidate(Block);
  std::optional<EvictedLine> Victim = Private[Core].fill(Block, State);
  if (Auditor)
    Auditor->onFill(Core, Block);
  if (Victim)
    handleEviction(Core, *Victim);
}

void CoherenceController::handleEviction(CoreId Core,
                                         const EvictedLine &Victim) {
  ++Stats.Evictions;
  SocketId Home = homeOfExisting(Victim.Block);
  SocketId CoreSocket = Config.socketOf(Core);
  auto It = Dir.find(Victim.Block);
  assert(It != Dir.end() && "evicting a block the directory never saw");
  DirEntry &Entry = It.value();

  // Every eviction notifies the home directory so sharer/owner information
  // stays precise (Put messages in the MESI vocabulary).
  noteMsg(CoreSocket, Home);

  switch (Victim.State) {
  case LineState::Shared:
    assert(Entry.State == DirState::Shared || Entry.State == DirState::Ward);
    Entry.Sharers.clear(Core);
    if (Entry.State == DirState::Shared && Entry.Sharers.empty())
      Entry.State = DirState::Invalid;
    break;
  case LineState::Exclusive:
    assert(Entry.Owner == Core && "eviction by non-owner");
    Entry = DirEntry();
    break;
  case LineState::Modified: {
    assert(Entry.Owner == Core && "eviction by non-owner");
    if (Auditor) {
      SectorMask Full;
      Full.markWritten(0, Config.BlockSize);
      Auditor->onWriteback(Core, Victim.Block, Full);
    }
    writebackToLlc(Victim.Block, Home);
    noteData(CoreSocket, Home);
    ++Stats.Writebacks;
    Entry = DirEntry();
    break;
  }
  case LineState::Ward:
    // Eager reconciliation of the evicted copy (Section 5.3: eviction
    // before the region ends overlaps the reconciliation cost).
    assert(Entry.State == DirState::Ward && "Ward line without W entry");
    if (Victim.Dirty.any()) {
      if (Auditor)
        Auditor->onWriteback(Core, Victim.Block, Victim.Dirty);
      writebackToLlc(Victim.Block, Home);
      noteData(CoreSocket, Home);
      ++Stats.Writebacks;
      ++Stats.ReconcileWritebacks;
    }
    Entry.Sharers.clear(Core);
    break;
  case LineState::Invalid:
    assert(false && "invalid line reported as victim");
    break;
  }
  if (Auditor)
    Auditor->onInvalidate(Core, Victim.Block);
}

Cycles CoherenceController::access(CoreId Core, Addr Address, unsigned Size,
                                   AccessType Type) {
  // Malformed requests are refused, not asserted: a zero-size access has no
  // bytes to move and an out-of-range core has no cache, so both return in
  // zero cycles and are counted for diagnosis. Accesses larger than a block
  // (or unaligned ones crossing a boundary) are legal and split below.
  if (Size == 0 || Core >= Config.totalCores()) {
    ++Stats.RejectedAccesses;
    return 0;
  }
  switch (Type) {
  case AccessType::Load:
    ++Stats.Loads;
    break;
  case AccessType::Store:
    ++Stats.Stores;
    break;
  case AccessType::Rmw:
    ++Stats.Rmws;
    break;
  }

  Cycles Total = 0;
  Addr Current = Address;
  unsigned Remaining = Size;
  while (Remaining > 0) {
    Addr Block = Current & ~(Addr(Config.BlockSize) - 1);
    unsigned Offset = static_cast<unsigned>(Current - Block);
    unsigned Chunk = std::min(Remaining, Config.BlockSize - Offset);
    Total += accessBlock(Core, Block, Offset, Chunk, Type);
    Current += Chunk;
    Remaining -= Chunk;
  }
  if (Faults.EvictionRate > 0.0 || Faults.ReconcileRate > 0.0)
    injectFaults(Core, Address & ~(Addr(Config.BlockSize) - 1));
  if (LoadLatencyHist) {
    switch (Type) {
    case AccessType::Load:
      LoadLatencyHist->record(Total);
      break;
    case AccessType::Store:
      StoreLatencyHist->record(Total);
      break;
    case AccessType::Rmw:
      RmwLatencyHist->record(Total);
      break;
    }
  }
  return Total;
}

void CoherenceController::injectFaults(CoreId Core, Addr Block) {
  if (Faults.EvictionRate > 0.0 &&
      FaultRng.nextDouble() < Faults.EvictionRate)
    injectEviction(Core);
  if (Faults.ReconcileRate > 0.0 &&
      FaultRng.nextDouble() < Faults.ReconcileRate) {
    // Adversarial mid-region reconciliation of the just-touched block. The
    // WARD property licenses reconciliation at any point; the next touch
    // simply re-enters the W state.
    auto It = Dir.find(Block);
    if (It != Dir.end() && It.value().State == DirState::Ward) {
      ++Stats.ForcedReconciles;
      if (Obs && Obs->Trace)
        Obs->Trace->instant("fault: forced reconcile",
                            Obs->Trace->directoryTid(), Obs->Now);
      reconcileBlock(Block, It.value());
    }
  }
}

void CoherenceController::injectEviction(CoreId Core) {
  std::vector<Addr> Resident;
  Resident.reserve(Private[Core].residentBlocks());
  const PrivateCache &Cache = Private[Core];
  Cache.forEachValidLine(
      [&](const CacheLine &Line) { Resident.push_back(Line.Block); });
  if (Resident.empty())
    return;
  Addr Victim = Resident[FaultRng.nextBelow(Resident.size())];
  std::optional<EvictedLine> Old = Private[Core].invalidate(Victim);
  assert(Old && "resident line vanished");
  ++Stats.InjectedEvictions;
  if (Obs && Obs->Trace)
    Obs->Trace->instant("fault: injected eviction", Core, Obs->Now);
  handleEviction(Core, *Old);
}

Cycles CoherenceController::accessBlock(CoreId Core, Addr Block,
                                        unsigned Offset, unsigned Size,
                                        AccessType Type) {
  if (Regions.lookup(Block) != InvalidRegion)
    ++Stats.WardRegionAccesses;

  ++Stats.L1Accesses;
  unsigned Level = Private[Core].hitLevel(Block);
  if (Level != 1)
    ++Stats.L2Accesses;

  Cycles Lat = 0;
  bool NeedMiss = (Level == 0);
  if (!NeedMiss) {
    CacheLine *Line = Private[Core].line(Block);
    assert(Line && "hit without a line");
    if (Type == AccessType::Load) {
      Lat = (Level == 1) ? Latency.l1Hit() : Latency.l2Hit();
      ++(Level == 1 ? Stats.L1Hits : Stats.L2Hits);
      if (Cpi)
        Cpi->charge(Level == 1 ? CpiCat::L1Hit : CpiCat::L2Hit, Lat);
    } else {
      switch (Line->State) {
      case LineState::Exclusive:
        Line->State = LineState::Modified; // Silent E->M upgrade.
        [[fallthrough]];
      case LineState::Modified:
      case LineState::Ward:
        Lat = (Level == 1) ? Latency.l1Hit() : Latency.l2Hit();
        ++(Level == 1 ? Stats.L1Hits : Stats.L2Hits);
        if (Cpi)
          Cpi->charge(Level == 1 ? CpiCat::L1Hit : CpiCat::L2Hit, Lat);
        break;
      case LineState::Shared:
        NeedMiss = true; // Write to a read copy requires an upgrade.
        break;
      case LineState::Invalid:
        assert(false && "invalid resident line");
        break;
      }
    }
  }

  if (NeedMiss)
    Lat = missPath(Core, Block, Offset, Size, Type);

  if (Type != AccessType::Load) {
    CacheLine *Line = Private[Core].line(Block);
    assert(Line && "store completed without a resident line");
    assert((Line->State == LineState::Modified ||
            Line->State == LineState::Ward) &&
           "store completed without write permission");
    Line->Dirty.markWritten(Offset, Size);
  }
  if (Auditor) {
    if (Type != AccessType::Store) // Loads and the read half of RMWs.
      Auditor->onLoad(Core, Block, Offset, Size);
    if (Type != AccessType::Load)
      Auditor->onStore(Core, Block, Offset, Size);
    Auditor->onOperationComplete(Block);
  }
  if (Prof) {
    if (Type != AccessType::Store)
      Prof->onRead(Block, Core);
    if (Type != AccessType::Load)
      Prof->onWrite(Block, Core, Offset, Size);
  }
  return Lat;
}

Cycles CoherenceController::missPath(CoreId Core, Addr Block, unsigned Offset,
                                     unsigned Size, AccessType Type) {
  SocketId Home = homeOf(Block, Core);
  Cycles Lat = Latency.toHome(Core, Home);
  noteMsg(Config.socketOf(Core), Home);
  ++Stats.L3Accesses;
  bool Remote = Config.socketOf(Core) != Home;
  if (Cpi) {
    // Split the directory trip into its on-socket and crossing legs.
    Cycles Cross = Latency.crossing(Config.socketOf(Core), Home);
    Cpi->charge(CpiCat::RemoteHop, Cross);
    Cpi->charge(CpiCat::DirectoryWait, Lat - Cross);
  }

  DirEntry &Entry = Dir[Block];
  Cycles Total = 0;

  if (Config.Protocol == ProtocolKind::Warden) {
    RegionId Region = Regions.lookup(Block);
    if (Region != InvalidRegion) {
      Total = Lat + wardPath(Core, Block, Offset, Size, Type, Entry, Region);
      if (Prof)
        Prof->onDemandMiss(Block, Core, Total, Remote);
      return Total;
    }
  }

  assert(Entry.State != DirState::Ward &&
         "W entry outside an active region reached the MESI path");
  if (Type == AccessType::Load)
    Total = Lat + mesiLoadPath(Core, Block, Entry);
  else
    Total = Lat + mesiStorePath(Core, Block, Entry);
  if (Prof)
    Prof->onDemandMiss(Block, Core, Total, Remote);
  return Total;
}

Cycles CoherenceController::wardPath(CoreId Core, Addr Block, unsigned Offset,
                                     unsigned Size, AccessType Type,
                                     DirEntry &Entry, RegionId Region) {
  (void)Offset;
  (void)Size;
  ++Stats.WardGrants;
  if (Prof)
    Prof->onWardGrant(Block, Core);
  if (Entry.State != DirState::Ward)
    enterWardState(Block, Entry, Region);

  SocketId Home = homeOf(Block, Core);
  Cycles Lat = 0;

  if (Private[Core].line(Block)) {
    // In-place upgrade: the core already holds a read copy inside the
    // region (possible when GetS does not return exclusive copies). The
    // directory grants write permission without touching anyone else.
    assert(Type != AccessType::Load && "load missed despite resident line");
    Private[Core].setState(Block, LineState::Ward);
    noteMsg(Home, Config.socketOf(Core)); // Permission ack.
  } else {
    Lat += llcData(Block, Home);
    noteData(Home, Config.socketOf(Core));
    LineState FillState =
        (Type == AccessType::Load && !Config.Features.GetSReturnsExclusive)
            ? LineState::Shared
            : LineState::Ward;
    fillPrivate(Core, Block, FillState);
  }
  Entry.Sharers.set(Core);
  return Lat;
}

void CoherenceController::enterWardState(Addr Block, DirEntry &Entry,
                                         RegionId Region) {
  switch (Entry.State) {
  case DirState::Invalid:
    Entry.Sharers.clearAll();
    break;
  case DirState::Shared:
    // Existing read copies become Ward members; they keep their data.
    Entry.Sharers.forEach([&](CoreId Sharer) {
      Private[Sharer].setState(Block, LineState::Ward);
    });
    break;
  case DirState::Exclusive:
  case DirState::Modified: {
    // The owner's copy (and its dirty bytes) become the first Ward member.
    CoreId Owner = Entry.Owner;
    CacheLine *Line = Private[Owner].line(Block);
    assert(Line && "directory owner without a resident line");
    Line->State = LineState::Ward;
    Entry.Sharers.clearAll();
    Entry.Sharers.set(Owner);
    break;
  }
  case DirState::Ward:
    assert(false && "re-entering Ward state");
    break;
  }
  Entry.State = DirState::Ward;
  Entry.Owner = InvalidCore;
  Entry.Region = Region;
}

Cycles CoherenceController::mesiLoadPath(CoreId Core, Addr Block,
                                         DirEntry &Entry) {
  SocketId Home = homeOf(Block, Core);
  SocketId CoreSocket = Config.socketOf(Core);
  Cycles Lat = 0;

  switch (Entry.State) {
  case DirState::Invalid:
    Lat += llcData(Block, Home);
    noteData(Home, CoreSocket);
    fillPrivate(Core, Block, LineState::Exclusive);
    Entry.State = DirState::Exclusive;
    Entry.Owner = Core;
    break;
  case DirState::Shared:
    Lat += llcData(Block, Home);
    noteData(Home, CoreSocket);
    fillPrivate(Core, Block, LineState::Shared);
    Entry.Sharers.set(Core);
    break;
  case DirState::Exclusive:
  case DirState::Modified: {
    CoreId Owner = Entry.Owner;
    assert(Owner != Core && "owner missed on its own block");
    CacheLine *OwnerLine = Private[Owner].line(Block);
    assert(OwnerLine && "directory owner without a resident line");
    // Fwd-GetS: the owner is downgraded and supplies the data.
    ++Stats.Downgrades;
    ++Stats.CacheToCache;
    if (Prof)
      Prof->onDowngrade(Block, Owner);
    noteMsg(Home, Config.socketOf(Owner));
    if (OwnerLine->State == LineState::Modified) {
      if (Auditor) {
        SectorMask Full;
        Full.markWritten(0, Config.BlockSize);
        Auditor->onWriteback(Owner, Block, Full);
      }
      writebackToLlc(Block, Home);
      noteData(Config.socketOf(Owner), Home);
      ++Stats.Writebacks;
    }
    if (Faults.Mutation != ProtocolMutation::SkipDowngradeOnFwdGetS)
      Private[Owner].setState(Block, LineState::Shared);
    if (Cpi)
      Cpi->charge(CpiCat::DowngradeService,
                  Latency.forwardAndSupply(Home, Owner, Core));
    Lat += Latency.forwardAndSupply(Home, Owner, Core);
    noteData(Config.socketOf(Owner), CoreSocket);
    fillPrivate(Core, Block, LineState::Shared);
    Entry.State = DirState::Shared;
    Entry.Owner = InvalidCore;
    Entry.Sharers.clearAll();
    Entry.Sharers.set(Owner);
    Entry.Sharers.set(Core);
    break;
  }
  case DirState::Ward:
    assert(false && "Ward entry in MESI load path");
    break;
  }
  return Lat;
}

Cycles CoherenceController::mesiStorePath(CoreId Core, Addr Block,
                                          DirEntry &Entry) {
  SocketId Home = homeOf(Block, Core);
  SocketId CoreSocket = Config.socketOf(Core);
  Cycles Lat = 0;

  switch (Entry.State) {
  case DirState::Invalid:
    Lat += llcData(Block, Home);
    noteData(Home, CoreSocket);
    fillPrivate(Core, Block, LineState::Modified);
    Entry.State = DirState::Modified;
    Entry.Owner = Core;
    break;
  case DirState::Shared: {
    bool HadCopy = Entry.Sharers.test(Core);
    Cycles InvLat = 0;
    if (Faults.Mutation != ProtocolMutation::SkipInvalidationOnGetM) {
      Entry.Sharers.forEach([&](CoreId Sharer) {
        if (Sharer == Core)
          return;
        ++Stats.Invalidations;
        Private[Sharer].invalidate(Block);
        if (Auditor)
          Auditor->onInvalidate(Sharer, Block);
        if (Prof)
          Prof->onInvalidation(Block, Sharer);
        noteMsg(Home, Config.socketOf(Sharer));             // Inv
        noteMsg(Config.socketOf(Sharer), Home);             // Inv-Ack
        InvLat = std::max(InvLat, Latency.invalidate(Home, Sharer));
      });
    }
    if (Cpi)
      Cpi->charge(CpiCat::InvalidationService, InvLat);
    Lat += InvLat;
    if (HadCopy) {
      Private[Core].setState(Block, LineState::Modified);
      noteMsg(Home, CoreSocket); // Upgrade ack.
    } else {
      Lat += llcData(Block, Home);
      noteData(Home, CoreSocket);
      fillPrivate(Core, Block, LineState::Modified);
    }
    Entry.State = DirState::Modified;
    Entry.Owner = Core;
    Entry.Sharers.clearAll();
    break;
  }
  case DirState::Exclusive:
  case DirState::Modified: {
    CoreId Owner = Entry.Owner;
    assert(Owner != Core && "owner missed on its own block");
    // Fwd-GetM: the owner's copy is invalidated and the data (if dirty)
    // travels cache-to-cache to the requester. The shadow model treats the
    // supply as writeback-then-fill: the value the requester receives is
    // the same either way.
    ++Stats.Invalidations;
    ++Stats.CacheToCache;
    if (Prof)
      Prof->onInvalidation(Block, Owner);
    noteMsg(Home, Config.socketOf(Owner));
    if (Auditor) {
      SectorMask Full;
      Full.markWritten(0, Config.BlockSize);
      Auditor->onWriteback(Owner, Block, Full);
    }
    [[maybe_unused]] std::optional<EvictedLine> Old =
        Private[Owner].invalidate(Block);
    assert(Old && "directory owner without a resident line");
    if (Auditor)
      Auditor->onInvalidate(Owner, Block);
    if (Cpi)
      Cpi->charge(CpiCat::InvalidationService,
                  Latency.forwardAndSupply(Home, Owner, Core));
    Lat += Latency.forwardAndSupply(Home, Owner, Core);
    noteData(Config.socketOf(Owner), CoreSocket);
    fillPrivate(Core, Block, LineState::Modified);
    Entry.State = DirState::Modified;
    Entry.Owner = Core;
    Entry.Sharers.clearAll();
    break;
  }
  case DirState::Ward:
    assert(false && "Ward entry in MESI store path");
    break;
  }
  return Lat;
}

Cycles CoherenceController::addRegion(RegionId Id, Addr Start, Addr End) {
  ++Stats.RegionsAdded;
  RegionTable::AddResult Result = Regions.add(Id, Start, End);
  if (Result != RegionTable::AddResult::Added) {
    // Graceful degradation: an untracked region's blocks simply stay under
    // plain MESI, which is always correct (just slower). Rejections charge
    // no cycles so a fault-injected run stays comparable to the clean one.
    if (Result == RegionTable::AddResult::Full) {
      ++Stats.RegionOverflows;
      if (Obs && Obs->Trace)
        Obs->Trace->instant("region overflow", Obs->Trace->directoryTid(),
                            Obs->Now);
    }
    ++Stats.RegionFallbacks;
    return 0;
  }
  if (RegionLifetimeHist)
    RegionAddedAt.try_emplace(Id, Obs->Now);
  // The "Add Region" instruction itself (Section 6.1: two new instructions
  // with minimal impact). The baseline MESI binary does not execute it.
  return Config.Protocol == ProtocolKind::Warden ? 2 : 0;
}

Cycles CoherenceController::removeRegion(RegionId Id, CoreId Remover) {
  ++Stats.RegionsRemoved;
  std::optional<WardRegion> Region = Regions.remove(Id);
  if (!Region)
    return 0; // Never tracked (table overflow): nothing to reconcile.
  if (RegionLifetimeHist) {
    auto AddedIt = RegionAddedAt.find(Id);
    if (AddedIt != RegionAddedAt.end()) {
      RegionLifetimeHist->record(Obs->Now - AddedIt.value());
      RegionAddedAt.erase(AddedIt);
    }
  }
  if (Config.Protocol != ProtocolKind::Warden)
    return 0;
  if (Obs && Obs->Trace)
    Obs->Trace->instant("reconcile", Remover, Obs->Now);
  Cycles Cost = 2; // The "Remove Region" instruction.
  for (Addr Block = Region->Start; Block < Region->End;
       Block += Config.BlockSize) {
    auto It = Dir.find(Block);
    if (It == Dir.end() || It.value().State != DirState::Ward)
      continue;
    Cost += reconcileBlock(Block, It.value());
  }
  if (Auditor)
    Auditor->onRegionRemoved(Id, Region->Start, Region->End);
  return Cost;
}

Cycles CoherenceController::reconcileBlock(Addr Block, DirEntry &Entry) {
  SocketId Home = homeOfExisting(Block);
  ++Stats.ReconciledBlocks;
  unsigned Holders = Entry.Sharers.count();
  if (Prof)
    Prof->onReconcile(Block, Holders);

  if (Holders == 0) {
    // All copies were already evicted (and eagerly reconciled).
    Entry = DirEntry();
    if (Auditor)
      Auditor->onReconcileComplete(Block);
    return 0;
  }

  if (Holders == 1) {
    ++Stats.SingleHolderReconciles;
    CoreId Holder = Entry.Sharers.first();
    CacheLine *Line = Private[Holder].line(Block);
    assert(Line && "tracked holder without a resident line");
    bool WasDirty = Line->Dirty.any();
    if (Auditor)
      Auditor->onWriteback(Holder, Block, Line->Dirty);
    if (Config.Features.ProactiveForkFlush) {
      // Write dirty sectors back and downgrade the copy in place: the next
      // reader (often a freshly forked task on another core) hits the
      // shared cache instead of downgrading this private cache.
      if (WasDirty) {
        writebackToLlc(Block, Home);
        noteData(Config.socketOf(Holder), Home);
        ++Stats.ReconcileWritebacks;
      }
      Private[Holder].setState(Block, LineState::Shared);
      Entry.State = DirState::Shared;
      Entry.Owner = InvalidCore;
      Entry.Region = InvalidRegion;
    } else {
      // Paper Section 5.2's "no sharing" conversion: keep the private copy
      // and just restore a MESI state.
      Private[Holder].setState(Block, WasDirty ? LineState::Modified
                                               : LineState::Exclusive);
      Entry.State = WasDirty ? DirState::Modified : DirState::Exclusive;
      Entry.Owner = Holder;
      Entry.Sharers.clearAll();
      Entry.Region = InvalidRegion;
    }
    // A single-holder reconcile is an ordinary background write-back: the
    // directory repoints the state and the data drains off the critical
    // path, so no synchronous cost is charged (Section 6.1 measures the
    // reconciliation delay as trivial).
    if (Auditor)
      Auditor->onReconcileComplete(Block);
    return 0;
  }

  // Multiple holders: merge dirty sectors in directory arrival order (core
  // id order here; the WARD property licenses any order) and flush all
  // copies.
  SectorMask Merged;
  bool TrueSharing = false;
  Entry.Sharers.forEach([&](CoreId Holder) {
    CacheLine *Line = Private[Holder].line(Block);
    assert(Line && "tracked holder without a resident line");
    if (Auditor)
      Auditor->onWriteback(Holder, Block, Line->Dirty);
    if (Line->Dirty.any()) {
      if (Merged.overlaps(Line->Dirty))
        TrueSharing = true;
      Merged.merge(Line->Dirty);
      writebackToLlc(Block, Home);
      noteData(Config.socketOf(Holder), Home);
      ++Stats.ReconcileWritebacks;
    }
    Private[Holder].invalidate(Block);
    noteMsg(Home, Config.socketOf(Holder));
    if (Auditor)
      Auditor->onInvalidate(Holder, Block);
  });
  if (TrueSharing)
    ++Stats.TrueSharingReconciles;
  else
    ++Stats.FalseSharingReconciles;
  Entry = DirEntry();
  if (Auditor)
    Auditor->onReconcileComplete(Block);
  return Config.Features.ReconcileCostPerBlock;
}

void CoherenceController::drainDirtyData() {
  for (CoreId Core = 0; Core < Config.totalCores(); ++Core) {
    SocketId CoreSocket = Config.socketOf(Core);
    Private[Core].forEachValidLine([&](CacheLine &Line) {
      if (!Line.dirty())
        return;
      if (Auditor) {
        SectorMask Mask = Line.Dirty;
        if (Line.State == LineState::Modified)
          Mask.markWritten(0, Config.BlockSize);
        Auditor->onWriteback(Core, Line.Block, Mask);
      }
      SocketId Home = homeOfExisting(Line.Block);
      writebackToLlc(Line.Block, Home);
      noteMsg(CoreSocket, Home);
      noteData(CoreSocket, Home);
      ++Stats.Writebacks;
      Line.Dirty.clear();
      Line.State = LineState::Shared;
    });
  }
  for (CacheArray &Slice : Llc)
    Slice.forEachValidLine([&](CacheLine &Line) {
      if (Line.State != LineState::Modified)
        return;
      ++Stats.DramWritebacks;
      Line.State = LineState::Shared;
    });
}

const DirEntry *CoherenceController::directoryEntry(Addr Block) const {
  auto It = Dir.find(Block);
  return It == Dir.end() ? nullptr : &It.value();
}

void CoherenceController::reserveFootprint(std::uint64_t Bytes) {
  if (Bytes == 0)
    return;
  Dir.reserve(Bytes / Config.BlockSize + 1);
  if (Config.NumSockets > 1)
    PageHome.reserve((Bytes >> 12) + 1);
}

const CacheLine *CoherenceController::privateLine(CoreId Core,
                                                  Addr Block) const {
  return Private[Core].line(Block);
}
