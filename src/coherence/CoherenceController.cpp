//===- coherence/CoherenceController.cpp - Coherence engine ---------------===//
//
// Part of the WARDen reproduction project.
//
//===----------------------------------------------------------------------===//

#include "src/coherence/CoherenceController.h"

#include "src/obs/ChromeTraceExporter.h"
#include "src/obs/CpiStack.h"
#include "src/obs/EventLog.h"
#include "src/obs/MetricRegistry.h"
#include "src/obs/Observability.h"
#include "src/obs/SharingProfiler.h"
#include "src/verify/ProtocolAuditor.h"

#include <algorithm>
#include <cassert>

using namespace warden;

const char *warden::dirStateName(DirState State) {
  switch (State) {
  case DirState::Invalid:
    return "I";
  case DirState::Shared:
    return "S";
  case DirState::Exclusive:
    return "E";
  case DirState::Modified:
    return "M";
  case DirState::Ward:
    return "W";
  }
  return "?";
}

CoherenceController::CoherenceController(const MachineConfig &Config,
                                         const FaultPlan &Faults)
    : Config(Config), Latency(this->Config),
      Regions(Faults.RegionTableCapacity >= 0
                  ? static_cast<unsigned>(Faults.RegionTableCapacity)
                  : Config.Features.RegionTableCapacity),
      Faults(Faults),
      FaultsArmed(Faults.EvictionRate > 0.0 || Faults.ReconcileRate > 0.0),
      FaultRng(Faults.Seed) {
  CacheGeometry L1Geometry(static_cast<std::uint64_t>(Config.L1SizeKB) * 1024,
                           Config.L1Assoc, Config.BlockSize);
  CacheGeometry L2Geometry(static_cast<std::uint64_t>(Config.L2SizeKB) * 1024,
                           Config.L2Assoc, Config.BlockSize);
  Private.reserve(Config.totalCores());
  for (unsigned I = 0; I < Config.totalCores(); ++I)
    Private.emplace_back(L1Geometry, L2Geometry, Config.Replacement);

  CacheGeometry LlcGeometry(Config.l3SizeBytes(), Config.L3Assoc,
                            Config.BlockSize);
  Llc.reserve(Config.NumSockets);
  for (unsigned I = 0; I < Config.NumSockets; ++I)
    Llc.emplace_back(LlcGeometry, Config.Replacement);

  // Region-aware replacement policies ("perceptron-ward") sample region
  // membership at fill time; the probe is only consulted on the serial
  // miss path, never from epoch workers (see mem/ReplacementPolicy.h).
  RegionMembershipProbe Probe = [this](Addr Block) {
    return Regions.lookup(Block) != InvalidRegion;
  };
  for (PrivateCache &Cache : Private)
    Cache.setReplacementRegionProbe(Probe);
  for (CacheArray &Slice : Llc)
    Slice.replacementPolicy().setRegionProbe(Probe);

  // The policy, last: the registry factory may (and the built-ins do) keep
  // a reference back into the fully constructed controller.
  Backend = makeProtocol(this->Config.Protocol, *this);
}

void CoherenceController::attachObs(Observability *NewObs) {
  Obs = NewObs;
  MetricRegistry *Registry = Obs ? Obs->Metrics : nullptr;
  LoadLatencyHist =
      Registry ? &Registry->histogram("coherence.load_latency_cycles")
               : nullptr;
  StoreLatencyHist =
      Registry ? &Registry->histogram("coherence.store_latency_cycles")
               : nullptr;
  RmwLatencyHist =
      Registry ? &Registry->histogram("coherence.rmw_latency_cycles")
               : nullptr;
  RegionLifetimeHist =
      Registry ? &Registry->histogram("ward.region_lifetime_cycles")
               : nullptr;
  Regions.attachMetrics(Registry);
  for (PrivateCache &Cache : Private)
    Cache.attachMetrics(Registry);
  Prof = Obs ? Obs->Profiler : nullptr;
  Cpi = Obs ? Obs->Cpi : nullptr;
  Evl = Obs ? Obs->Log : nullptr;
  if (Obs && Obs->Trace)
    Obs->Trace->setCoreCount(Config.totalCores());
  RegionAddedAt.clear();
  // Premature-eviction attribution needs an attributor attached; start the
  // bookkeeping from a clean slate either way so a detach/re-attach never
  // reports evictions from before the observer existed.
  TrackPremature = Prof != nullptr || Evl != nullptr;
  EvictedBy.clear();
  Backend->attachObs(Obs);
}

SocketId CoherenceController::homeOf(Addr Block, CoreId Requester) {
  if (Config.NumSockets == 1)
    return 0;
  Addr Page = Block >> 12;
  auto [It, Inserted] = PageHome.try_emplace(Page, Config.socketOf(Requester));
  (void)Inserted;
  return It.value();
}

SocketId CoherenceController::homeOfExisting(Addr Block) const {
  if (Config.NumSockets == 1)
    return 0;
  auto It = PageHome.find(Block >> 12);
  assert(It != PageHome.end() && "block was never touched");
  return It.value();
}

void CoherenceController::noteMsg(SocketId From, SocketId To) {
  if (From == To)
    ++Stats.MsgsIntraSocket;
  else if (Config.NumNodes > 1 && Config.nodeOf(From) != Config.nodeOf(To))
    ++Stats.MsgsInterNode;
  else if (Config.Disaggregated)
    ++Stats.MsgsRemote;
  else
    ++Stats.MsgsInterSocket;
}

void CoherenceController::noteData(SocketId From, SocketId To) {
  if (From == To)
    ++Stats.DataIntraSocket;
  else if (Config.NumNodes > 1 && Config.nodeOf(From) != Config.nodeOf(To))
    ++Stats.DataInterNode;
  else if (Config.Disaggregated)
    ++Stats.DataRemote;
  else
    ++Stats.DataInterSocket;
}

Cycles CoherenceController::llcData(Addr Block, SocketId Home) {
  if (Llc[Home].lookup(Block)) {
    ++Stats.LlcServes;
    return 0;
  }
  ++Stats.DramAccesses;
  std::optional<EvictedLine> Victim = Llc[Home].insert(Block, LineState::Shared);
  if (Victim && Victim->State == LineState::Modified)
    ++Stats.DramWritebacks;
  if (Cpi)
    Cpi->charge(CpiCat::Dram, Latency.dram());
  return Latency.dram();
}

void CoherenceController::writebackToLlc(Addr Block, SocketId Home) {
  if (CacheLine *Line = Llc[Home].lookup(Block)) {
    Line->State = LineState::Modified;
    return;
  }
  std::optional<EvictedLine> Victim =
      Llc[Home].insert(Block, LineState::Modified);
  if (Victim && Victim->State == LineState::Modified)
    ++Stats.DramWritebacks;
}

void CoherenceController::fillPrivate(CoreId Core, Addr Block,
                                      LineState State) {
  // Deliberate protocol mutations leave stale resident copies behind (that
  // is their point); drop such a copy so the refill stays legal and the
  // auditor, not PrivateCache's internal assert, reports the incoherence.
  if (Faults.Mutation != ProtocolMutation::None)
    Private[Core].invalidate(Block);
  std::optional<EvictedLine> Victim = Private[Core].fill(Block, State);
  if (Auditor)
    Auditor->onFill(Core, Block);
  if (Victim)
    handleEviction(Core, *Victim);
}

void CoherenceController::handleEviction(CoreId Core,
                                         const EvictedLine &Victim) {
  ++Stats.Evictions;
  if (Evl)
    Evl->emit(Obs->Now, EvKind::Eviction, static_cast<std::uint16_t>(Core),
              Victim.Block, 0,
              Victim.State == LineState::Modified || Victim.Dirty.any() ? 1
                                                                        : 0);
  if (TrackPremature)
    EvictedBy.try_emplace(Victim.Block).first.value().set(Core);
  Backend->evictLine(Core, Victim);
  if (Auditor)
    Auditor->onInvalidate(Core, Victim.Block);
}

Cycles CoherenceController::access(CoreId Core, Addr Address, unsigned Size,
                                   AccessType Type) {
  // Malformed requests are refused, not asserted: a zero-size access has no
  // bytes to move and an out-of-range core has no cache, so both return in
  // zero cycles and are counted for diagnosis. Accesses larger than a block
  // (or unaligned ones crossing a boundary) are legal and split below.
  if (Size == 0 || Core >= Config.totalCores()) {
    ++Stats.RejectedAccesses;
    return 0;
  }
  switch (Type) {
  case AccessType::Load:
    ++Stats.Loads;
    break;
  case AccessType::Store:
    ++Stats.Stores;
    break;
  case AccessType::Rmw:
    ++Stats.Rmws;
    break;
  }

  Cycles Total = 0;
  Addr Block = Address & ~(Addr(Config.BlockSize) - 1);
  unsigned Offset = static_cast<unsigned>(Address - Block);
  if (Offset + Size <= Config.BlockSize) {
    // The overwhelmingly common case: the access fits one block.
    Total = accessBlock(Core, Block, Offset, Size, Type);
  } else {
    Addr Current = Address;
    unsigned Remaining = Size;
    while (Remaining > 0) {
      Block = Current & ~(Addr(Config.BlockSize) - 1);
      Offset = static_cast<unsigned>(Current - Block);
      unsigned Chunk = std::min(Remaining, Config.BlockSize - Offset);
      Total += accessBlock(Core, Block, Offset, Chunk, Type);
      Current += Chunk;
      Remaining -= Chunk;
    }
  }
  if (FaultsArmed)
    injectFaults(Core, Address & ~(Addr(Config.BlockSize) - 1));
  if (LoadLatencyHist) {
    switch (Type) {
    case AccessType::Load:
      LoadLatencyHist->record(Total);
      break;
    case AccessType::Store:
      StoreLatencyHist->record(Total);
      break;
    case AccessType::Rmw:
      RmwLatencyHist->record(Total);
      break;
    }
  }
  return Total;
}

void CoherenceController::injectFaults(CoreId Core, Addr Block) {
  if (Faults.EvictionRate > 0.0 &&
      FaultRng.nextDouble() < Faults.EvictionRate)
    injectEviction(Core);
  if (Faults.ReconcileRate > 0.0 &&
      FaultRng.nextDouble() < Faults.ReconcileRate)
    // The RNG draw is unconditional (above) so the fault stream does not
    // depend on the backend; whether anything happens is the backend's
    // call — only protocols with deferred per-block state react.
    Backend->forceReconcile(Block);
}

void CoherenceController::injectEviction(CoreId Core) {
  std::vector<Addr> Resident;
  Resident.reserve(Private[Core].residentBlocks());
  const PrivateCache &Cache = Private[Core];
  Cache.forEachValidLine(
      [&](const CacheLine &Line) { Resident.push_back(Line.Block); });
  if (Resident.empty())
    return;
  Addr Victim = Resident[FaultRng.nextBelow(Resident.size())];
  std::optional<EvictedLine> Old = Private[Core].invalidate(Victim);
  assert(Old && "resident line vanished");
  ++Stats.InjectedEvictions;
  if (Obs && Obs->Trace)
    Obs->Trace->instant("fault: injected eviction", Core, Obs->Now);
  if (Evl)
    Evl->emit(Obs->Now, EvKind::FaultEviction, static_cast<std::uint16_t>(Core),
              Victim);
  handleEviction(Core, *Old);
}

Cycles CoherenceController::accessBlock(CoreId Core, Addr Block,
                                        unsigned Offset, unsigned Size,
                                        AccessType Type) {
  if (Regions.lookup(Block) != InvalidRegion)
    ++Stats.WardRegionAccesses;

  ++Stats.L1Accesses;
  PrivateCache::AccessHit Hit = Private[Core].probeAccess(Block);
  unsigned Level = Hit.Level;
  if (Level != 1)
    ++Stats.L2Accesses;

  Cycles Lat = 0;
  bool NeedMiss = (Level == 0);
  if (!NeedMiss) {
    CacheLine *Line = Hit.Auth;
    assert(Line && "hit without a line");
    if (Type == AccessType::Load) {
      Lat = (Level == 1) ? Latency.l1Hit() : Latency.l2Hit();
      ++(Level == 1 ? Stats.L1Hits : Stats.L2Hits);
      if (Cpi)
        Cpi->charge(Level == 1 ? CpiCat::L1Hit : CpiCat::L2Hit, Lat);
    } else {
      switch (Line->State) {
      case LineState::Exclusive:
        Line->State = LineState::Modified; // Silent E->M upgrade.
        [[fallthrough]];
      case LineState::Modified:
      case LineState::Ward:
        Lat = (Level == 1) ? Latency.l1Hit() : Latency.l2Hit();
        ++(Level == 1 ? Stats.L1Hits : Stats.L2Hits);
        if (Cpi)
          Cpi->charge(Level == 1 ? CpiCat::L1Hit : CpiCat::L2Hit, Lat);
        break;
      case LineState::Shared:
        if (Backend->upgradeStoreHit(Core, Block)) {
          // The backend granted write permission in place (SISD's local
          // upgrade): an ordinary hit.
          Lat = (Level == 1) ? Latency.l1Hit() : Latency.l2Hit();
          ++(Level == 1 ? Stats.L1Hits : Stats.L2Hits);
          if (Cpi)
            Cpi->charge(Level == 1 ? CpiCat::L1Hit : CpiCat::L2Hit, Lat);
        } else {
          NeedMiss = true; // Write to a read copy requires an upgrade.
        }
        break;
      case LineState::Invalid:
        assert(false && "invalid resident line");
        break;
      }
    }
  }

  if (NeedMiss)
    Lat = missPath(Core, Block, Type);

  if (Type != AccessType::Load) {
    // The hit probe's line stays valid on the pure-hit path; a miss may
    // have filled (and displaced) lines, so re-fetch the pointer then.
    CacheLine *Line = NeedMiss ? Private[Core].line(Block) : Hit.Auth;
    assert(Line && "store completed without a resident line");
    assert((Line->State == LineState::Modified ||
            Line->State == LineState::Ward) &&
           "store completed without write permission");
    Line->Dirty.markWritten(Offset, Size);
  }
  if (Auditor) {
    if (Type != AccessType::Store) // Loads and the read half of RMWs.
      Auditor->onLoad(Core, Block, Offset, Size);
    if (Type != AccessType::Load)
      Auditor->onStore(Core, Block, Offset, Size);
    Auditor->onOperationComplete(Block);
  }
  if (Prof) {
    if (Type != AccessType::Store)
      Prof->onRead(Block, Core);
    if (Type != AccessType::Load)
      Prof->onWrite(Block, Core, Offset, Size);
  }
  return Lat;
}

bool CoherenceController::tryLocalHit(CoreId Core, Addr Block,
                                      unsigned Offset, unsigned Size,
                                      AccessType Type,
                                      LocalHitCounters &Delta,
                                      RegionTable::RegionSpan &Span,
                                      Cycles &Lat) {
  // Mirror of access()+accessBlock()'s hit path, but against the caller's
  // private accumulators. Region lookups go through the caller's span
  // cache (never the table's shared MRU); region ops end epochs, so the
  // table cannot change under a worker.
  if (!Span.covers(Block))
    Regions.lookupSpan(Block, Span);
  bool InRegion = Span.Id != InvalidRegion;

  if (Type != AccessType::Load) {
    // Pre-qualify stores/RMWs with a recency-free probe: a miss or a
    // Shared copy routes through serveMiss()/upgradeStoreHit() — an
    // interaction point, left to the serial residue. Rejecting before the
    // stamping probe below matters: its L1-refill side effect would
    // otherwise turn the replayed access's L2 hit into an L1 hit.
    const CacheLine *Pre = Private[Core].line(Block);
    if (!Pre || Pre->State == LineState::Shared)
      return false;
  }

  PrivateCache::AccessHit Hit = Private[Core].probeAccess(Block);
  if (Hit.Level == 0) {
    // Load miss; the probe mutated nothing (lookups only stamp hits), so
    // the serial replay through access() starts from identical state.
    return false;
  }
  CacheLine *Line = Hit.Auth;
  if (Type != AccessType::Load) {
    assert(Line->State != LineState::Shared && "pre-qualified state changed");
    if (Line->State == LineState::Exclusive)
      Line->State = LineState::Modified; // Silent E->M upgrade.
  }

  if (InRegion)
    ++Delta.WardRegionAccesses;
  ++Delta.L1Accesses;
  if (Hit.Level != 1)
    ++Delta.L2Accesses;
  switch (Type) {
  case AccessType::Load:
    ++Delta.Loads;
    break;
  case AccessType::Store:
    ++Delta.Stores;
    break;
  case AccessType::Rmw:
    ++Delta.Rmws;
    break;
  }
  Lat = (Hit.Level == 1) ? Latency.l1Hit() : Latency.l2Hit();
  ++(Hit.Level == 1 ? Delta.L1Hits : Delta.L2Hits);
  if (Type != AccessType::Load)
    Line->Dirty.markWritten(Offset, Size);
  return true;
}

void CoherenceController::mergeLocalHits(const LocalHitCounters &Delta) {
  Stats.Loads += Delta.Loads;
  Stats.Stores += Delta.Stores;
  Stats.Rmws += Delta.Rmws;
  Stats.L1Hits += Delta.L1Hits;
  Stats.L2Hits += Delta.L2Hits;
  Stats.L1Accesses += Delta.L1Accesses;
  Stats.L2Accesses += Delta.L2Accesses;
  Stats.WardRegionAccesses += Delta.WardRegionAccesses;
}

bool CoherenceController::epochLocalHitsAllowed() const {
  if (!Backend->epochInteractions().PrivateHitsAreLocal)
    return false;
  if (Auditor || Obs || Prof || Cpi || Evl)
    return false; // Per-access observers need the serial interleaving.
  if (FaultsArmed || Faults.Mutation != ProtocolMutation::None)
    return false; // Fault draws are ordered by the serial access stream.
  return true;
}

Cycles CoherenceController::missPath(CoreId Core, Addr Block,
                                     AccessType Type) {
  SocketId Home = homeOf(Block, Core);
  Cycles Lat = Latency.toHome(Core, Home);
  noteMsg(Config.socketOf(Core), Home);
  ++Stats.L3Accesses;
  bool Remote = Config.socketOf(Core) != Home;
  if (Cpi) {
    // Split the directory trip into its on-socket and crossing legs.
    Cycles Cross = Latency.crossing(Config.socketOf(Core), Home);
    Cpi->charge(CpiCat::RemoteHop, Cross);
    Cpi->charge(CpiCat::DirectoryWait, Lat - Cross);
  }

  Cycles Total = Lat + Backend->serveMiss(Core, Block, Type);
  if (Prof)
    Prof->onDemandMiss(Block, Core, Total, Remote);
  if (Evl)
    Evl->emit(Obs->Now, EvKind::DemandMiss, static_cast<std::uint16_t>(Core),
              Block, static_cast<std::uint32_t>(Total),
              static_cast<std::uint8_t>(Type));
  if (TrackPremature) {
    // This core missing a block it lost to a capacity victim means the
    // replacement policy evicted it too early; attribute the re-fetch.
    auto It = EvictedBy.find(Block);
    if (It != EvictedBy.end() && It.value().test(Core)) {
      It.value().clear(Core);
      if (It.value().empty())
        EvictedBy.erase(It);
      if (Prof)
        Prof->onPrematureMiss(Block, Core);
      if (Evl)
        Evl->emit(Obs->Now, EvKind::PrematureMiss,
                  static_cast<std::uint16_t>(Core), Block,
                  static_cast<std::uint32_t>(Total),
                  static_cast<std::uint8_t>(Type));
    }
  }
  return Total;
}

Cycles CoherenceController::addRegion(RegionId Id, Addr Start, Addr End) {
  ++Stats.RegionsAdded;
  RegionTable::AddResult Result = Regions.add(Id, Start, End);
  if (Result != RegionTable::AddResult::Added) {
    // Graceful degradation: an untracked region's blocks simply stay under
    // the backend's plain protocol, which is always correct (just slower).
    // Rejections charge no cycles so a fault-injected run stays comparable
    // to the clean one.
    if (Result == RegionTable::AddResult::Full) {
      ++Stats.RegionOverflows;
      if (Obs && Obs->Trace)
        Obs->Trace->instant("region overflow", Obs->Trace->directoryTid(),
                            Obs->Now);
      if (Evl)
        Evl->emit(Obs->Now, EvKind::RegionOverflow, EventLog::DirectorySource,
                  Start, Id);
    }
    ++Stats.RegionFallbacks;
    return 0;
  }
  if (RegionLifetimeHist)
    RegionAddedAt.try_emplace(Id, Obs->Now);
  if (Evl) {
    // Two companion records carry the region's full geometry: RegionAdd
    // holds the start address, RegionExtent (next Seq) the end.
    Evl->emit(Obs->Now, EvKind::RegionAdd, EventLog::DirectorySource, Start,
              Id);
    Evl->emit(Obs->Now, EvKind::RegionExtent, EventLog::DirectorySource, End,
              Id);
  }
  return Backend->regionAddCost();
}

Cycles CoherenceController::removeRegion(RegionId Id, CoreId Remover) {
  ++Stats.RegionsRemoved;
  std::optional<WardRegion> Region = Regions.remove(Id);
  if (!Region)
    return 0; // Never tracked (table overflow): nothing to reconcile.
  if (RegionLifetimeHist) {
    auto AddedIt = RegionAddedAt.find(Id);
    if (AddedIt != RegionAddedAt.end()) {
      RegionLifetimeHist->record(Obs->Now - AddedIt.value());
      RegionAddedAt.erase(AddedIt);
    }
  }
  if (Evl)
    Evl->emit(Obs->Now, EvKind::RegionRemove,
              static_cast<std::uint16_t>(Remover), Region->Start, Id);
  return Backend->removeRegion(*Region, Id, Remover);
}

void CoherenceController::drainDirtyData() {
  for (CoreId Core = 0; Core < Config.totalCores(); ++Core) {
    SocketId CoreSocket = Config.socketOf(Core);
    Private[Core].forEachValidLine([&](CacheLine &Line) {
      if (!Line.dirty())
        return;
      if (Auditor) {
        SectorMask Mask = Line.Dirty;
        if (Line.State == LineState::Modified)
          Mask.markWritten(0, Config.BlockSize);
        Auditor->onWriteback(Core, Line.Block, Mask);
      }
      SocketId Home = homeOfExisting(Line.Block);
      writebackToLlc(Line.Block, Home);
      noteMsg(CoreSocket, Home);
      noteData(CoreSocket, Home);
      ++Stats.Writebacks;
      Line.Dirty.clear();
      Line.State = LineState::Shared;
    });
  }
  for (CacheArray &Slice : Llc)
    Slice.forEachValidLine([&](CacheLine &Line) {
      if (Line.State != LineState::Modified)
        return;
      ++Stats.DramWritebacks;
      Line.State = LineState::Shared;
    });
}

const DirEntry *CoherenceController::directoryEntry(Addr Block) const {
  auto It = Dir.find(Block);
  return It == Dir.end() ? nullptr : &It.value();
}

void CoherenceController::reserveFootprint(std::uint64_t Bytes) {
  if (Bytes == 0)
    return;
  Dir.reserve(Bytes / Config.BlockSize + 1);
  if (Config.NumSockets > 1)
    PageHome.reserve((Bytes >> 12) + 1);
}

const CacheLine *CoherenceController::privateLine(CoreId Core,
                                                  Addr Block) const {
  return Private[Core].line(Block);
}
