//===- coherence/MesiProtocol.h - Directory MESI backend ------*- C++ -*-===//
//
// Part of the WARDen reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The baseline protocol backend: textbook directory MESI with
/// cache-to-cache transfer, E-on-unshared-fill, silent E->M upgrade, and
/// precise eviction notifications (the Nagarajan et al. message
/// vocabulary). WardenProtocol derives from this backend and reuses its
/// miss service for blocks outside active WARD regions, so the MESI paths
/// here are exercised by both protocols.
///
//===----------------------------------------------------------------------===//

#ifndef WARDEN_COHERENCE_MESIPROTOCOL_H
#define WARDEN_COHERENCE_MESIPROTOCOL_H

#include "src/coherence/Protocol.h"

namespace warden {

/// Directory MESI as a pluggable backend.
class MesiProtocol : public CoherenceProtocol {
public:
  explicit MesiProtocol(CoherenceController &Controller)
      : CoherenceProtocol(ProtocolKind::Mesi, Controller) {}

  Cycles serveMiss(CoreId Core, Addr Block, AccessType Type) override;
  void evictLine(CoreId Core, const EvictedLine &Victim) override;
  /// Eager directory protocol: private hits are core-local and the sync
  /// hooks are strict no-ops. Inherited by WardenProtocol, whose extra
  /// WARD machinery only engages on misses and region instructions.
  EpochInteractions epochInteractions() const override;

protected:
  /// Derived-protocol constructor (WardenProtocol reports its own kind).
  MesiProtocol(ProtocolKind Kind, CoherenceController &Controller)
      : CoherenceProtocol(Kind, Controller) {}

  /// Serves a miss whose directory entry is already in hand, under plain
  /// MESI rules. Shared with WardenProtocol for non-region blocks.
  Cycles serveMesiMiss(CoreId Core, Addr Block, AccessType Type,
                       DirEntry &Entry);

private:
  Cycles loadMiss(CoreId Core, Addr Block, DirEntry &Entry);
  Cycles storeMiss(CoreId Core, Addr Block, DirEntry &Entry);
};

} // namespace warden

#endif // WARDEN_COHERENCE_MESIPROTOCOL_H
