//===- coherence/Protocol.cpp - Pluggable coherence backends --------------===//
//
// Part of the WARDen reproduction project.
//
//===----------------------------------------------------------------------===//

#include "src/coherence/Protocol.h"

#include "src/coherence/MesiProtocol.h"
#include "src/coherence/RacohProtocol.h"
#include "src/coherence/SisdProtocol.h"
#include "src/coherence/WardenProtocol.h"
#include "src/support/Registry.h"

#include <algorithm>
#include <stdexcept>

using namespace warden;

const char *warden::protocolName(ProtocolKind Protocol) {
  switch (Protocol) {
  case ProtocolKind::Mesi:
    return "MESI";
  case ProtocolKind::Warden:
    return "WARDen";
  case ProtocolKind::Sisd:
    return "SISD";
  case ProtocolKind::Racoh:
    return "RACoh";
  }
  return "?";
}

const char *warden::protocolId(ProtocolKind Protocol) {
  switch (Protocol) {
  case ProtocolKind::Mesi:
    return "mesi";
  case ProtocolKind::Warden:
    return "warden";
  case ProtocolKind::Sisd:
    return "sisd";
  case ProtocolKind::Racoh:
    return "racoh";
  }
  return "?";
}

const std::vector<ProtocolKind> &warden::allProtocolKinds() {
  static const std::vector<ProtocolKind> Kinds = {
      ProtocolKind::Mesi, ProtocolKind::Warden, ProtocolKind::Sisd,
      ProtocolKind::Racoh};
  return Kinds;
}

const char *warden::consistencyModelName(ConsistencyModel Model) {
  switch (Model) {
  case ConsistencyModel::ScForDrf:
    return "sc-for-drf";
  case ConsistencyModel::ReleaseAcquire:
    return "release-acquire";
  }
  return "?";
}

CoherenceProtocol::~CoherenceProtocol() = default;

ConsistencyModel CoherenceProtocol::consistencyModel() const {
  return ConsistencyModel::ScForDrf;
}

EpochInteractions CoherenceProtocol::epochInteractions() const {
  return EpochInteractions(); // Conservative: no core-local claims.
}

bool CoherenceProtocol::upgradeStoreHit(CoreId Core, Addr Block) {
  (void)Core;
  (void)Block;
  return false;
}

Cycles CoherenceProtocol::regionAddCost() const { return 0; }

Cycles CoherenceProtocol::removeRegion(const WardRegion &Region, RegionId Id,
                                       CoreId Remover) {
  (void)Region;
  (void)Id;
  (void)Remover;
  return 0;
}

void CoherenceProtocol::forceReconcile(Addr Block) { (void)Block; }

Cycles CoherenceProtocol::syncAcquire(CoreId Core) {
  (void)Core;
  return 0;
}

Cycles CoherenceProtocol::syncRelease(CoreId Core) {
  (void)Core;
  return 0;
}

std::uint64_t CoherenceProtocol::stateFingerprint() const { return 0; }

bool CoherenceProtocol::blockHasUnpublishedWrite(Addr Block) const {
  (void)Block;
  return false;
}

void CoherenceProtocol::attachObs(Observability *Obs) { (void)Obs; }

//===----------------------------------------------------------------------===//
// Registry
//===----------------------------------------------------------------------===//
//
// A support/Registry.h table (string-keyed, mutex-protected, registration-
// ordered): controllers are constructed from JobPool worker threads, so
// lookups must be safe against a concurrent registerProtocol() from a
// test. The built-ins are seeded in the function-local static's
// constructor, which C++ guarantees is run exactly once before first use —
// no static-initialization-order dependence on which translation unit
// touches the registry first.

namespace {

/// Per-id payload: the kind the entry reports plus its factory.
struct ProtocolEntry {
  ProtocolKind Kind;
  ProtocolFactory Factory;
};

struct ProtocolRegistry {
  Registry<ProtocolEntry> Table;

  ProtocolRegistry() {
    Table.insertOrReplace(protocolId(ProtocolKind::Mesi),
                          {ProtocolKind::Mesi, [](CoherenceController &C) {
                             return std::unique_ptr<CoherenceProtocol>(
                                 new MesiProtocol(C));
                           }});
    Table.insertOrReplace(protocolId(ProtocolKind::Warden),
                          {ProtocolKind::Warden, [](CoherenceController &C) {
                             return std::unique_ptr<CoherenceProtocol>(
                                 new WardenProtocol(C));
                           }});
    Table.insertOrReplace(protocolId(ProtocolKind::Sisd),
                          {ProtocolKind::Sisd, [](CoherenceController &C) {
                             return std::unique_ptr<CoherenceProtocol>(
                                 new SisdProtocol(C));
                           }});
    Table.insertOrReplace(protocolId(ProtocolKind::Racoh),
                          {ProtocolKind::Racoh, [](CoherenceController &C) {
                             return std::unique_ptr<CoherenceProtocol>(
                                 new RacohProtocol(C));
                           }});
  }
};

Registry<ProtocolEntry> &registry() {
  static ProtocolRegistry R;
  return R.Table;
}

/// "mesi, warden, sisd" — the registry listing quoted by every parse and
/// lookup error, so the message always names exactly the valid ids.
std::string joinRegisteredIds() { return registry().joinedIds(); }

} // namespace

std::optional<ProtocolKind> warden::parseProtocolId(std::string_view Id) {
  if (std::optional<ProtocolEntry> Entry = registry().find(Id))
    return Entry->Kind;
  return std::nullopt;
}

bool warden::registerProtocol(std::string Id, ProtocolKind Kind,
                              ProtocolFactory Factory) {
  return registry().insertOrReplace(std::move(Id),
                                    {Kind, std::move(Factory)});
}

std::unique_ptr<CoherenceProtocol>
warden::makeProtocol(ProtocolKind Kind, CoherenceController &Controller) {
  ProtocolFactory Factory;
  // Prefer the entry registered under the kind's canonical id (so
  // replacing "mesi" swaps the MESI implementation); fall back to any
  // entry reporting the kind.
  std::string_view CanonicalId = protocolId(Kind);
  for (const Registry<ProtocolEntry>::Entry &Entry : registry().snapshot()) {
    if (Entry.Id == CanonicalId && Entry.Value.Kind == Kind) {
      Factory = Entry.Value.Factory;
      break;
    }
    if (Entry.Value.Kind == Kind)
      Factory = Entry.Value.Factory;
  }
  if (!Factory)
    throw std::invalid_argument(
        std::string("no protocol backend registered for kind '") +
        protocolName(Kind) + "' (registered ids: " + joinRegisteredIds() +
        ")");
  return Factory(Controller);
}

std::optional<std::vector<ProtocolKind>>
warden::parseProtocolList(std::string_view List, std::string &Error) {
  if (List.empty()) {
    Error = "empty protocol list (expected comma-separated ids: " +
            joinRegisteredIds() + ")";
    return std::nullopt;
  }
  std::vector<ProtocolKind> Kinds;
  std::size_t Pos = 0;
  while (Pos <= List.size()) {
    std::size_t Comma = List.find(',', Pos);
    if (Comma == std::string_view::npos)
      Comma = List.size();
    std::string_view Id = List.substr(Pos, Comma - Pos);
    if (Id.empty()) {
      Error = "empty protocol id in list '" + std::string(List) +
              "' (leading, trailing, or doubled comma)";
      return std::nullopt;
    }
    std::optional<ProtocolKind> Kind = parseProtocolId(Id);
    if (!Kind) {
      Error = "unknown protocol id '" + std::string(Id) +
              "' (registered ids: " + joinRegisteredIds() + ")";
      return std::nullopt;
    }
    if (std::find(Kinds.begin(), Kinds.end(), *Kind) != Kinds.end()) {
      Error = "duplicate protocol id '" + std::string(Id) + "' in list '" +
              std::string(List) + "'";
      return std::nullopt;
    }
    Kinds.push_back(*Kind);
    Pos = Comma + 1;
    if (Comma == List.size())
      break;
  }
  return Kinds;
}

std::vector<std::string> warden::registeredProtocolIds() {
  return registry().ids();
}
