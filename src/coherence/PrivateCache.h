//===- coherence/PrivateCache.h - Per-core L1+L2 hierarchy ----*- C++ -*-===//
//
// Part of the WARDen reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The private cache hierarchy of one core: an inclusive L1/L2 pair. The
/// authoritative coherence state of a block lives in the L2 line; the L1
/// array exists to distinguish L1-hit from L2-hit latency. Section 5.1 is
/// explicit that WARDen leaves private caches unmodified — from their
/// perspective a WARD block simply appears private — so this class is
/// protocol-agnostic and manipulated entirely by the coherence controller.
///
//===----------------------------------------------------------------------===//

#ifndef WARDEN_COHERENCE_PRIVATECACHE_H
#define WARDEN_COHERENCE_PRIVATECACHE_H

#include "src/mem/CacheArray.h"
#include "src/mem/ReplacementPolicy.h"

#include <optional>
#include <string_view>
#include <vector>

namespace warden {

class Counter;
class MetricRegistry;

/// One core's private L1+L2.
class PrivateCache {
public:
  /// \p Replacement names a registered replacement policy (see
  /// mem/ReplacementPolicy.h), applied to both levels.
  PrivateCache(const CacheGeometry &L1Geometry,
               const CacheGeometry &L2Geometry,
               std::string_view Replacement = "lru");

  /// Installs the coherence-layer region probe on both levels' replacement
  /// policies (consulted by region-aware policies at fill time; a no-op
  /// for the others).
  void setReplacementRegionProbe(const RegionMembershipProbe &Probe);

  /// Attaches (or with nullptr detaches) a metric registry; fills and
  /// capacity evictions are then counted machine-wide. Recording only —
  /// never changes replacement or state decisions.
  void attachMetrics(MetricRegistry *Registry);

  /// Probes for \p Block, updating recency. Returns 1 for an L1 hit, 2 for
  /// an L2 hit (the L1 is refilled from the L2 as a side effect), or 0 for
  /// a miss.
  unsigned hitLevel(Addr Block);

  /// Result of a combined hit-level/authoritative-line probe.
  struct AccessHit {
    unsigned Level = 0;        ///< 1 = L1 hit, 2 = L2 hit, 0 = miss.
    CacheLine *Auth = nullptr; ///< The authoritative L2 line on a hit.
  };

  /// hitLevel() fused with the authoritative-line fetch: the L2 recency
  /// lookup the probe performs anyway already yields the authoritative
  /// line, so a hit costs one array search fewer than hitLevel() + line().
  /// Identical recency and state side effects to hitLevel().
  AccessHit probeAccess(Addr Block);

  /// Returns the authoritative (L2) line for \p Block, or nullptr.
  CacheLine *line(Addr Block);
  const CacheLine *line(Addr Block) const;

  /// Fills \p Block in state \p State into both levels. Returns the L2
  /// victim, if a valid line was displaced, so the controller can write it
  /// back / notify the directory. The L1 copy of the victim is dropped to
  /// preserve inclusion.
  std::optional<EvictedLine> fill(Addr Block, LineState State);

  /// Removes \p Block from both levels; returns the prior line contents if
  /// it was present.
  std::optional<EvictedLine> invalidate(Addr Block);

  /// Changes the state of a resident block (e.g. downgrade M->S).
  void setState(Addr Block, LineState State);

  std::size_t residentBlocks() const { return L2.validLineCount(); }

  /// Calls \p Fn for every valid (authoritative) line. Used by the
  /// end-of-run drain, the protocol auditor's sweeps, and tests.
  template <typename FnT> void forEachValidLine(FnT Fn) {
    L2.forEachValidLine(Fn);
  }
  template <typename FnT> void forEachValidLine(FnT Fn) const {
    L2.forEachValidLine(Fn);
  }

private:
  CacheArray L1;
  CacheArray L2;
  Counter *FillCounter = nullptr;     ///< Not owned; null when detached.
  Counter *EvictionCounter = nullptr;
};

} // namespace warden

#endif // WARDEN_COHERENCE_PRIVATECACHE_H
