//===- coherence/RacohProtocol.h - Log-based release-acquire --*- C++ -*-===//
//
// Part of the WARDen reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A log-based release-acquire backend for the machine's non-coherent node
/// tier (the CXL-pool deployment shape; see PAPERS.md "Verification of a
/// lazy cache coherence protocol against a weak memory model" for the
/// protocol family). Like SISD it is directory-less — no core ever services
/// a remote invalidation or downgrade — but instead of blindly shooting
/// down every resident line at an acquire, it tracks exactly which lines
/// were written:
///
///  * Every store appends a dirty-line record to the writing core's
///    pending log (deduplicated per release epoch).
///  * `syncRelease` self-downgrades dirty lines (data reaches the home LLC
///    first) and then *publishes* the pending log to the core's node's
///    bounded log queue. A full queue back-pressures the release: the
///    publish stalls while the queue head is force-drained into every
///    core that has not consumed it yet.
///  * `syncAcquire` drains every node's queue from the core's per-node
///    consumption cursor (a vector clock) to the queue tail, invalidating
///    only the resident lines the drained records name. Resident lines no
///    record names survive the acquire — the pre-invalidate avoidance that
///    distinguishes racoh from SISD's invalidate-everything discipline.
///
/// Log consumption is modeled as deterministic simulated work on the
/// controller (LogConsumeCyclesPerRecord per record, one node-interconnect
/// hop per remote node with news); no host threads are involved, so runs
/// are byte-identical at any --jobs. On a single-node machine every queue
/// is local: the protocol degenerates to SISD-class behavior with zero
/// cross-node traffic.
///
/// The ProtocolAuditor runs a matching shadow discipline (directory must
/// stay empty; after an acquire every surviving read copy must agree with
/// shadow memory unless some core still holds an unpublished write to it),
/// and the `--mutate=drop-log-publish` fault makes releases silently
/// discard their log so the verification layer can prove it catches the
/// resulting staleness.
///
//===----------------------------------------------------------------------===//

#ifndef WARDEN_COHERENCE_RACOHPROTOCOL_H
#define WARDEN_COHERENCE_RACOHPROTOCOL_H

#include "src/coherence/Protocol.h"
#include "src/support/FlatMap.h"

#include <cstdint>
#include <deque>
#include <vector>

namespace warden {

class Histogram;
class Counter;

/// Log-based lazy release-acquire coherence as a pluggable backend.
class RacohProtocol : public CoherenceProtocol {
public:
  explicit RacohProtocol(CoherenceController &Controller);

  /// Same contract as SISD: writes become visible at releases, staleness
  /// is shed (selectively) at acquires.
  ConsistencyModel consistencyModel() const override;
  EpochInteractions epochInteractions() const override;

  Cycles serveMiss(CoreId Core, Addr Block, AccessType Type) override;
  bool upgradeStoreHit(CoreId Core, Addr Block) override;
  void evictLine(CoreId Core, const EvictedLine &Victim) override;
  Cycles syncAcquire(CoreId Core) override;
  Cycles syncRelease(CoreId Core) override;

  std::uint64_t stateFingerprint() const override;
  bool blockHasUnpublishedWrite(Addr Block) const override;
  void attachObs(Observability *Obs) override;

private:
  /// One published (or pending) dirty-line record.
  struct LogRecord {
    Addr Block = 0;
    CoreId Writer = 0;
  };

  /// A node's bounded log queue. Records carry absolute sequence numbers:
  /// the front record is BaseSeq, the next publish lands at
  /// BaseSeq + Records.size().
  struct NodeQueue {
    std::uint64_t BaseSeq = 0;
    std::deque<LogRecord> Records;
  };

  /// Records \p Core's write to \p Block in its pending log (once per
  /// release epoch).
  void notePendingWrite(CoreId Core, Addr Block);
  /// Writes \p Line's dirty sectors back and downgrades in place.
  Cycles downgradeDirty(CoreId Core, CacheLine &Line);
  /// Consumes one record at \p Core: invalidates the resident copy the
  /// record names (writing back unpublished dirt first). Returns the
  /// cycles charged. \p Invalidated is bumped when a line actually died.
  Cycles consumeRecord(CoreId Core, const LogRecord &Record,
                       std::uint64_t &Invalidated);
  /// Back-pressure: force every core that has not consumed node \p Node's
  /// queue head to do so now, then retires the head. Returns the cycles
  /// charged to the stalled publisher \p Publisher.
  Cycles forceDrainHead(unsigned Node, CoreId Publisher);

  unsigned numNodes() const;
  unsigned nodeOfCore(CoreId Core) const;
  /// A representative socket on \p Node, for link-class accounting of log
  /// fetch traffic.
  SocketId socketOnNode(unsigned Node) const;

  /// Per-core pending (unpublished) logs, in program order.
  std::vector<std::vector<LogRecord>> Pending;
  /// Per-core membership sets deduplicating Pending per epoch.
  std::vector<FlatMap<Addr, std::uint8_t>> PendingSet;
  /// Machine-wide count of unpublished writes per block (how many cores
  /// hold a pending record naming it); serves blockHasUnpublishedWrite.
  FlatMap<Addr, std::uint32_t> UnpublishedWriters;
  /// One bounded log queue per node.
  std::vector<NodeQueue> Queues;
  /// Consumed[Core][Node]: absolute sequence number up to which Core has
  /// drained Node's queue — the per-core vector clock.
  std::vector<std::vector<std::uint64_t>> Consumed;

  // Observability instruments (null when detached; recording only).
  Histogram *QueueOccupancyHist = nullptr;
  Counter *PublishedCtr = nullptr;
  Counter *ConsumedCtr = nullptr;
  Counter *BackpressureCtr = nullptr;
  Counter *AvoidedCtr = nullptr;
};

} // namespace warden

#endif // WARDEN_COHERENCE_RACOHPROTOCOL_H
