//===- coherence/CoherenceStats.h - Protocol event counters ---*- C++ -*-===//
//
// Part of the WARDen reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Event counters maintained by the coherence controller. These drive every
/// quantitative claim of the paper: invalidations and downgrades (Figures
/// 9/10), message and data-transfer counts by link class (energy, Figures
/// 7b/8b/12b), and WARD coverage (the "90%+ of accesses are in a WARD
/// region" observation of Section 7.2).
///
//===----------------------------------------------------------------------===//

#ifndef WARDEN_COHERENCE_COHERENCESTATS_H
#define WARDEN_COHERENCE_COHERENCESTATS_H

#include <cstdint>

namespace warden {

/// Counters for one simulated run. All counts are machine-wide.
struct CoherenceStats {
  // Demand accesses.
  std::uint64_t Loads = 0;
  std::uint64_t Stores = 0;
  std::uint64_t Rmws = 0;

  // Where demand accesses were satisfied.
  std::uint64_t L1Hits = 0;
  std::uint64_t L2Hits = 0;
  std::uint64_t LlcServes = 0;      ///< Served by the home LLC slice.
  std::uint64_t CacheToCache = 0;   ///< Supplied by another private cache.
  std::uint64_t DramAccesses = 0;   ///< LLC data misses (reads).
  std::uint64_t DramWritebacks = 0; ///< Dirty LLC victims written to DRAM.

  // Structure accesses (for the energy model).
  std::uint64_t L1Accesses = 0;
  std::uint64_t L2Accesses = 0;
  std::uint64_t L3Accesses = 0;

  // The coherence events the paper centres on. Counted per affected private
  // cache copy, matching Section 7.2 ("invalidations and downgrades are
  // counted per cache").
  std::uint64_t Invalidations = 0;
  std::uint64_t Downgrades = 0;

  // Control messages and full-block data transfers by link class.
  std::uint64_t MsgsIntraSocket = 0;
  std::uint64_t MsgsInterSocket = 0;
  std::uint64_t MsgsRemote = 0;
  std::uint64_t DataIntraSocket = 0;
  std::uint64_t DataInterSocket = 0;
  std::uint64_t DataRemote = 0;
  // Traffic over the non-coherent node interconnect (NumNodes > 1 only;
  // zero on every machine without the node tier).
  std::uint64_t MsgsInterNode = 0;
  std::uint64_t DataInterNode = 0;

  // Private-cache evictions and writebacks.
  std::uint64_t Evictions = 0;
  std::uint64_t Writebacks = 0;

  // WARD-specific events.
  std::uint64_t WardRegionAccesses = 0; ///< Accesses inside an active region.
  std::uint64_t WardGrants = 0;         ///< Requests served in the W state.
  std::uint64_t RegionsAdded = 0;
  std::uint64_t RegionsRemoved = 0;
  std::uint64_t RegionOverflows = 0;    ///< Adds rejected by the full CAM.
  /// Regions demoted to pure MESI because the CAM could not track them
  /// (graceful degradation; a superset trigger of RegionOverflows that also
  /// counts malformed or duplicate region requests).
  std::uint64_t RegionFallbacks = 0;
  std::uint64_t ReconciledBlocks = 0;
  std::uint64_t ReconcileWritebacks = 0;
  std::uint64_t SingleHolderReconciles = 0;
  std::uint64_t FalseSharingReconciles = 0;
  std::uint64_t TrueSharingReconciles = 0;

  // Robustness events.
  std::uint64_t RejectedAccesses = 0;  ///< Malformed demand accesses refused.
  std::uint64_t InjectedEvictions = 0; ///< Fault-injected private evictions.
  std::uint64_t ForcedReconciles = 0;  ///< Fault-injected mid-region reconciles.

  // Log-based coherence events (racoh; all zero for other backends).
  std::uint64_t LogRecordsPublished = 0; ///< Dirty-line records released.
  std::uint64_t LogRecordsConsumed = 0;  ///< Records drained at acquires.
  std::uint64_t LogPublishes = 0;        ///< Releases that published a log.
  std::uint64_t LogBackpressureStalls = 0; ///< Publishes that found the
                                           ///< node queue full.
  std::uint64_t LogInvalidations = 0;    ///< Resident lines shot down by a
                                         ///< consumed log record.
  std::uint64_t PreInvalidateAvoided = 0; ///< Resident lines an acquire kept
                                          ///< because no log record named
                                          ///< them (the avoidance win).
  std::uint64_t CrossNodeHops = 0;       ///< Node-interconnect round trips
                                         ///< taken to fetch remote logs.
  std::uint64_t LogQueuePeakOccupancy = 0; ///< High-water mark over every
                                           ///< node queue (records).

  /// Demand accesses of all kinds.
  std::uint64_t accesses() const { return Loads + Stores + Rmws; }

  /// Invalidations + downgrades, the quantity Figure 9 tracks.
  std::uint64_t invPlusDown() const { return Invalidations + Downgrades; }

  std::uint64_t totalMsgs() const {
    return MsgsIntraSocket + MsgsInterSocket + MsgsRemote + MsgsInterNode;
  }

  std::uint64_t totalData() const {
    return DataIntraSocket + DataInterSocket + DataRemote + DataInterNode;
  }

  /// Fraction of acquire-examined resident lines the log filter saved from
  /// a blanket self-invalidation (racoh's headline statistic).
  double preInvalidateAvoidanceRate() const {
    std::uint64_t Examined = LogInvalidations + PreInvalidateAvoided;
    return Examined == 0 ? 0.0
                         : static_cast<double>(PreInvalidateAvoided) /
                               static_cast<double>(Examined);
  }
};

/// The subset of CoherenceStats a private-cache hit increments. Epoch
/// workers accumulate hits into a per-core instance of this struct and the
/// controller merges them at the epoch barrier — every field is a pure sum,
/// so the merged totals are independent of worker interleaving.
struct LocalHitCounters {
  std::uint64_t Loads = 0;
  std::uint64_t Stores = 0;
  std::uint64_t Rmws = 0;
  std::uint64_t L1Hits = 0;
  std::uint64_t L2Hits = 0;
  std::uint64_t L1Accesses = 0;
  std::uint64_t L2Accesses = 0;
  std::uint64_t WardRegionAccesses = 0;

  void clear() { *this = LocalHitCounters(); }
};

} // namespace warden

#endif // WARDEN_COHERENCE_COHERENCESTATS_H
