//===- coherence/WardenProtocol.h - MESI + WARD backend -------*- C++ -*-===//
//
// Part of the WARDen reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's protocol as a backend: directory MESI (inherited from
/// MesiProtocol for every block outside an active WARD region) augmented
/// with the WARD state of Section 5. Requests inside active regions are
/// served from the LLC/DRAM without invalidating or downgrading any other
/// copy; region removal reconciles (Section 5.2/5.3); evicted WARD lines
/// reconcile eagerly.
///
//===----------------------------------------------------------------------===//

#ifndef WARDEN_COHERENCE_WARDENPROTOCOL_H
#define WARDEN_COHERENCE_WARDENPROTOCOL_H

#include "src/coherence/MesiProtocol.h"

namespace warden {

/// MESI plus the WARD state and region reconciliation.
class WardenProtocol : public MesiProtocol {
public:
  explicit WardenProtocol(CoherenceController &Controller)
      : MesiProtocol(ProtocolKind::Warden, Controller) {}

  Cycles serveMiss(CoreId Core, Addr Block, AccessType Type) override;
  void evictLine(CoreId Core, const EvictedLine &Victim) override;
  Cycles regionAddCost() const override;
  Cycles removeRegion(const WardRegion &Region, RegionId Id,
                      CoreId Remover) override;
  void forceReconcile(Addr Block) override;
  /// Same declaration as MESI, restated explicitly: hits on Ward-state
  /// lines are the paper's whole point — reads and writes inside an active
  /// region touch only the owning core's copy, so they are core-local too.
  EpochInteractions epochInteractions() const override;

private:
  /// Serves a request for a block inside an active WARD region.
  Cycles wardMiss(CoreId Core, Addr Block, AccessType Type, DirEntry &Entry,
                  RegionId Region);
  /// Converts a block's existing MESI copies to Ward on region entry.
  void enterWardState(Addr Block, DirEntry &Entry, RegionId Region);
  /// Reconciles one W block; returns the cost charged to the remover.
  Cycles reconcileBlock(Addr Block, DirEntry &Entry);
};

} // namespace warden

#endif // WARDEN_COHERENCE_WARDENPROTOCOL_H
