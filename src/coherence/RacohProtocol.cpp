//===- coherence/RacohProtocol.cpp - Log-based release-acquire ------------===//
//
// Part of the WARDen reproduction project.
//
//===----------------------------------------------------------------------===//

#include "src/coherence/RacohProtocol.h"

#include "src/coherence/CoherenceController.h"
#include "src/obs/EventLog.h"
#include "src/obs/MetricRegistry.h"
#include "src/obs/Observability.h"
#include "src/verify/ProtocolAuditor.h"

#include <algorithm>
#include <cassert>

using namespace warden;

namespace {

/// FNV-1a, the same mixer the verification layer uses for its state keys.
inline std::uint64_t mix(std::uint64_t Hash, std::uint64_t Value) {
  Hash ^= Value;
  return Hash * 0x100000001b3ULL;
}

} // namespace

RacohProtocol::RacohProtocol(CoherenceController &Controller)
    : CoherenceProtocol(ProtocolKind::Racoh, Controller) {
  unsigned Cores = config().totalCores();
  unsigned Nodes = numNodes();
  Pending.resize(Cores);
  PendingSet.resize(Cores);
  Queues.resize(Nodes);
  Consumed.assign(Cores, std::vector<std::uint64_t>(Nodes, 0));
}

ConsistencyModel RacohProtocol::consistencyModel() const {
  return ConsistencyModel::ReleaseAcquire;
}

EpochInteractions RacohProtocol::epochInteractions() const {
  // Store hits on Modified/Ward copies append nothing (records are logged
  // at miss/upgrade time), so private hits stay core-local; releases
  // publish logs and acquires drain them, so the sync hooks are anything
  // but free.
  EpochInteractions Decl;
  Decl.PrivateHitsAreLocal = true;
  Decl.SyncHooksAreFree = false;
  return Decl;
}

unsigned RacohProtocol::numNodes() const {
  return std::max(config().NumNodes, 1u);
}

unsigned RacohProtocol::nodeOfCore(CoreId Core) const {
  return config().nodeOfCore(Core);
}

SocketId RacohProtocol::socketOnNode(unsigned Node) const {
  return static_cast<SocketId>(Node * config().socketsPerNode());
}

void RacohProtocol::attachObs(Observability *Obs) {
  MetricRegistry *Registry = Obs ? Obs->Metrics : nullptr;
  QueueOccupancyHist =
      Registry ? &Registry->histogram("racoh.log_queue_occupancy") : nullptr;
  PublishedCtr =
      Registry ? &Registry->counter("racoh.log_records_published") : nullptr;
  ConsumedCtr =
      Registry ? &Registry->counter("racoh.log_records_consumed") : nullptr;
  BackpressureCtr =
      Registry ? &Registry->counter("racoh.log_backpressure_stalls")
               : nullptr;
  AvoidedCtr =
      Registry ? &Registry->counter("racoh.pre_invalidate_avoided") : nullptr;
}

void RacohProtocol::notePendingWrite(CoreId Core, Addr Block) {
  auto [It, Inserted] = PendingSet[Core].try_emplace(Block, std::uint8_t(1));
  (void)It;
  if (!Inserted)
    return; // Already logged this epoch.
  Pending[Core].push_back({Block, Core});
  ++UnpublishedWriters.try_emplace(Block, 0u).first.value();
}

Cycles RacohProtocol::serveMiss(CoreId Core, Addr Block, AccessType Type) {
  // No directory, like SISD: the home LLC slice (or the DRAM behind it)
  // serves every miss and nobody else's copy is disturbed. The crossing to
  // a remote-homed block already runs over the node interconnect when the
  // home lives on another node (LatencyModel::crossing is node-aware).
  SocketId Home = homeOf(Block, Core);
  Cycles Lat = llcData(Block, Home);
  noteData(Home, config().socketOf(Core));
  bool Write = Type != AccessType::Load;
  fillPrivate(Core, Block, Write ? LineState::Ward : LineState::Shared);
  if (Write)
    notePendingWrite(Core, Block);
  return Lat;
}

bool RacohProtocol::upgradeStoreHit(CoreId Core, Addr Block) {
  // Local write upgrade; the write is logged now and published (made
  // visible to other nodes' acquirers) at the next release.
  priv(Core).setState(Block, LineState::Ward);
  notePendingWrite(Core, Block);
  return true;
}

void RacohProtocol::evictLine(CoreId Core, const EvictedLine &Victim) {
  // Clean copies die silently. Dirty sectors reach the LLC now — the log
  // record stays pending, so the write still becomes visible (and remote
  // stale copies still die) at the next release/acquire pair.
  if (!Victim.Dirty.any())
    return;
  SocketId Home = homeOfExisting(Victim.Block);
  if (ProtocolAuditor *Auditor = auditor())
    Auditor->onWriteback(Core, Victim.Block, Victim.Dirty);
  writebackToLlc(Victim.Block, Home);
  noteData(config().socketOf(Core), Home);
  ++stats().Writebacks;
}

Cycles RacohProtocol::downgradeDirty(CoreId Core, CacheLine &Line) {
  SocketId Home = homeOfExisting(Line.Block);
  SocketId CoreSocket = config().socketOf(Core);
  if (ProtocolAuditor *Auditor = auditor())
    Auditor->onWriteback(Core, Line.Block, Line.Dirty);
  writebackToLlc(Line.Block, Home);
  noteMsg(CoreSocket, Home); // The self-downgrade notice.
  noteData(CoreSocket, Home);
  ++stats().Writebacks;
  ++stats().Downgrades;
  if (EventLog *Evl = eventLog())
    Evl->emit(observability()->Now, EvKind::Downgrade,
              static_cast<std::uint16_t>(Core), Line.Block, Core, /*Arg=*/1);
  Line.Dirty.clear();
  return config().Features.ReconcileCostPerBlock;
}

Cycles RacohProtocol::consumeRecord(CoreId Core, const LogRecord &Record,
                                    std::uint64_t &Invalidated) {
  Cycles Cost = config().LogConsumeCyclesPerRecord;
  ++stats().LogRecordsConsumed;
  if (ConsumedCtr)
    ConsumedCtr->add();
  // A core's own records describe writes its cache already holds (or has
  // written back); skipping them is the classic own-log shortcut.
  if (Record.Writer == Core)
    return Cost;
  PrivateCache &Cache = priv(Core);
  if (!Cache.line(Record.Block))
    return Cost;
  std::optional<EvictedLine> Old = Cache.invalidate(Record.Block);
  assert(Old && "resident line vanished during log consumption");
  if (Old->Dirty.any()) {
    // The consumer holds unpublished writes to the same block (block-level
    // false sharing or an acquire mid-epoch); push them before the copy
    // dies, exactly like a SISD acquire does.
    SocketId Home = homeOfExisting(Record.Block);
    if (ProtocolAuditor *Auditor = auditor())
      Auditor->onWriteback(Core, Record.Block, Old->Dirty);
    writebackToLlc(Record.Block, Home);
    noteData(config().socketOf(Core), Home);
    ++stats().Writebacks;
    Cost += config().Features.ReconcileCostPerBlock;
  }
  ++stats().Invalidations;
  ++stats().LogInvalidations;
  ++Invalidated;
  if (EventLog *Evl = eventLog())
    Evl->emit(observability()->Now, EvKind::LogInvalidation,
              static_cast<std::uint16_t>(Core), Record.Block, Record.Writer);
  if (ProtocolAuditor *Auditor = auditor())
    Auditor->onInvalidate(Core, Record.Block);
  return Cost;
}

Cycles RacohProtocol::forceDrainHead(unsigned Node, CoreId Publisher) {
  NodeQueue &Queue = Queues[Node];
  assert(!Queue.Records.empty() && "draining an empty queue");
  ++stats().LogBackpressureStalls;
  if (BackpressureCtr)
    BackpressureCtr->add();
  if (EventLog *Evl = eventLog())
    Evl->emit(observability()->Now, EvKind::LogBackpressure,
              static_cast<std::uint16_t>(Publisher), 0, Node);
  // The stalled publisher waits for the interconnect round that forces the
  // laggards to step past the head record.
  Cycles Cost = latency().nodeHop();
  const LogRecord Head = Queue.Records.front();
  std::uint64_t IgnoredInvalidations = 0;
  for (CoreId Core = 0; Core < config().totalCores(); ++Core) {
    if (Consumed[Core][Node] > Queue.BaseSeq)
      continue; // Already past the head.
    // The consumption work happens on the laggard's cache agent; the
    // publisher only pays the stall round above.
    consumeRecord(Core, Head, IgnoredInvalidations);
    Consumed[Core][Node] = Queue.BaseSeq + 1;
  }
  Queue.Records.pop_front();
  ++Queue.BaseSeq;
  return Cost;
}

Cycles RacohProtocol::syncRelease(CoreId Core) {
  PrivateCache &Cache = priv(Core);
  Cycles Cost = 0;
  if (Cache.residentBlocks() != 0) {
    // Self-downgrade first: by the time the log is published, every write
    // it names is in the home LLC, so a consumer that invalidates and
    // refetches always sees the released data.
    Cache.forEachValidLine([&](CacheLine &Line) {
      if (Line.State != LineState::Ward)
        return;
      if (Line.Dirty.any())
        Cost += downgradeDirty(Core, Line);
      Line.State = LineState::Shared;
    });
  }
  if (!Pending[Core].empty()) {
    // Deliberate bug for verification regression tests: the release
    // downgrades (the data reaches the LLC) but the log is silently
    // discarded — no remote core will ever invalidate its stale copy. The
    // auditor, not an assert, must report the resulting staleness.
    bool Drop = faults().Mutation == ProtocolMutation::DropLogPublish;
    unsigned Node = nodeOfCore(Core);
    NodeQueue &Queue = Queues[Node];
    if (!Drop) {
      for (const LogRecord &Record : Pending[Core]) {
        while (Queue.Records.size() >= config().NodeLogQueueCapacity)
          Cost += forceDrainHead(Node, Core);
        Queue.Records.push_back(Record);
        ++stats().LogRecordsPublished;
        if (PublishedCtr)
          PublishedCtr->add();
      }
      ++stats().LogPublishes;
      if (EventLog *Evl = eventLog())
        Evl->emit(observability()->Now, EvKind::LogPublish,
                  static_cast<std::uint16_t>(Core), 0,
                  static_cast<std::uint32_t>(Pending[Core].size()));
      Cost += config().LogPublishLatency;
      std::uint64_t Occupancy = Queue.Records.size();
      stats().LogQueuePeakOccupancy =
          std::max(stats().LogQueuePeakOccupancy, Occupancy);
      if (QueueOccupancyHist)
        QueueOccupancyHist->record(Occupancy);
    }
    for (const LogRecord &Record : Pending[Core]) {
      auto It = UnpublishedWriters.find(Record.Block);
      assert(It != UnpublishedWriters.end() && "pending record untracked");
      if (--It.value() == 0)
        UnpublishedWriters.erase(It);
    }
    Pending[Core].clear();
    PendingSet[Core].clear();
  }
  if (ProtocolAuditor *Auditor = auditor())
    Auditor->onSyncRelease(Core);
  return Cost;
}

Cycles RacohProtocol::syncAcquire(CoreId Core) {
  Cycles Cost = 0;
  // Deliberate bug for verification regression tests: skip the whole log
  // drain (cursors stay put, stale lines stay resident). onSyncAcquire
  // still fires so the auditor reports the staleness.
  bool Skip = faults().Mutation == ProtocolMutation::SkipAcquireInvalidation;
  if (!Skip) {
    std::uint64_t ResidentBefore = priv(Core).residentBlocks();
    std::uint64_t Invalidated = 0;
    unsigned OwnNode = nodeOfCore(Core);
    for (unsigned Node = 0; Node < numNodes(); ++Node) {
      NodeQueue &Queue = Queues[Node];
      std::uint64_t Tail = Queue.BaseSeq + Queue.Records.size();
      std::uint64_t Cursor = Consumed[Core][Node];
      assert(Cursor >= Queue.BaseSeq && "cursor fell behind a trimmed head");
      if (Cursor >= Tail)
        continue; // Nothing new from this node since the last acquire.
      if (Node != OwnNode) {
        // One interconnect round trip fetches the remote node's news.
        Cost += 2 * latency().nodeHop();
        ++stats().CrossNodeHops;
        noteMsg(config().socketOf(Core), socketOnNode(Node));
        noteData(socketOnNode(Node), config().socketOf(Core));
      }
      for (std::uint64_t Seq = Cursor; Seq < Tail; ++Seq)
        Cost += consumeRecord(Core, Queue.Records[Seq - Queue.BaseSeq],
                              Invalidated);
      Consumed[Core][Node] = Tail;
      // Retire records every core has consumed; the queue only holds what
      // some vector clock still lags behind.
      std::uint64_t MinCursor = Tail;
      for (CoreId Other = 0; Other < config().totalCores(); ++Other)
        MinCursor = std::min(MinCursor, Consumed[Other][Node]);
      while (Queue.BaseSeq < MinCursor && !Queue.Records.empty()) {
        Queue.Records.pop_front();
        ++Queue.BaseSeq;
      }
    }
    // Everything still resident survived because no consumed record named
    // it — the lines a SISD acquire would have shot down needlessly.
    std::uint64_t Avoided = ResidentBefore - Invalidated;
    stats().PreInvalidateAvoided += Avoided;
    if (AvoidedCtr)
      AvoidedCtr->add(Avoided);
    if (EventLog *Evl = eventLog())
      Evl->emit(observability()->Now, EvKind::PreInvalidateAvoided,
                static_cast<std::uint16_t>(Core), 0,
                static_cast<std::uint32_t>(Avoided));
  }
  if (ProtocolAuditor *Auditor = auditor())
    Auditor->onSyncAcquire(Core);
  return Cost;
}

std::uint64_t RacohProtocol::stateFingerprint() const {
  // Canonical hash of everything protocol-private: pending logs (per core,
  // program order), node queues (absolute sequence + records in order),
  // and the consumption cursor matrix. The explorer mixes this into its
  // state key so hidden log state can never alias two search states.
  std::uint64_t Hash = 0xcbf29ce484222325ULL;
  for (std::size_t Core = 0; Core < Pending.size(); ++Core) {
    Hash = mix(Hash, 0x50454e44ULL); // Section marker.
    Hash = mix(Hash, Core);
    for (const LogRecord &Record : Pending[Core]) {
      Hash = mix(Hash, Record.Block);
      Hash = mix(Hash, Record.Writer);
    }
  }
  for (const NodeQueue &Queue : Queues) {
    Hash = mix(Hash, 0x51554555ULL);
    Hash = mix(Hash, Queue.BaseSeq);
    for (const LogRecord &Record : Queue.Records) {
      Hash = mix(Hash, Record.Block);
      Hash = mix(Hash, Record.Writer);
    }
  }
  for (const std::vector<std::uint64_t> &Row : Consumed)
    for (std::uint64_t Cursor : Row)
      Hash = mix(Hash, Cursor);
  return Hash;
}

bool RacohProtocol::blockHasUnpublishedWrite(Addr Block) const {
  return UnpublishedWriters.contains(Block);
}
