//===- coherence/MesiProtocol.cpp - Directory MESI backend ----------------===//
//
// Part of the WARDen reproduction project.
//
//===----------------------------------------------------------------------===//

#include "src/coherence/MesiProtocol.h"

#include "src/coherence/CoherenceController.h"
#include "src/obs/CpiStack.h"
#include "src/obs/EventLog.h"
#include "src/obs/Observability.h"
#include "src/obs/SharingProfiler.h"
#include "src/verify/ProtocolAuditor.h"

#include <cassert>

using namespace warden;

EpochInteractions MesiProtocol::epochInteractions() const {
  // Eager invalidation: hits never consult the directory, and the sync
  // hooks stay the inherited strict no-ops.
  EpochInteractions Decl;
  Decl.PrivateHitsAreLocal = true;
  Decl.SyncHooksAreFree = true;
  return Decl;
}

Cycles MesiProtocol::serveMiss(CoreId Core, Addr Block, AccessType Type) {
  DirEntry &Entry = dir()[Block];
  return serveMesiMiss(Core, Block, Type, Entry);
}

Cycles MesiProtocol::serveMesiMiss(CoreId Core, Addr Block, AccessType Type,
                                   DirEntry &Entry) {
  assert(Entry.State != DirState::Ward &&
         "W entry outside an active region reached the MESI path");
  if (Type == AccessType::Load)
    return loadMiss(Core, Block, Entry);
  return storeMiss(Core, Block, Entry);
}

Cycles MesiProtocol::loadMiss(CoreId Core, Addr Block, DirEntry &Entry) {
  SocketId Home = homeOf(Block, Core);
  SocketId CoreSocket = config().socketOf(Core);
  Cycles Lat = 0;

  switch (Entry.State) {
  case DirState::Invalid:
    Lat += llcData(Block, Home);
    noteData(Home, CoreSocket);
    fillPrivate(Core, Block, LineState::Exclusive);
    Entry.State = DirState::Exclusive;
    Entry.Owner = Core;
    break;
  case DirState::Shared:
    Lat += llcData(Block, Home);
    noteData(Home, CoreSocket);
    fillPrivate(Core, Block, LineState::Shared);
    Entry.Sharers.set(Core);
    break;
  case DirState::Exclusive:
  case DirState::Modified: {
    CoreId Owner = Entry.Owner;
    assert(Owner != Core && "owner missed on its own block");
    CacheLine *OwnerLine = priv(Owner).line(Block);
    assert(OwnerLine && "directory owner without a resident line");
    // Fwd-GetS: the owner is downgraded and supplies the data.
    ++stats().Downgrades;
    ++stats().CacheToCache;
    if (SharingProfiler *Prof = profiler())
      Prof->onDowngrade(Block, Owner);
    if (EventLog *Evl = eventLog())
      Evl->emit(observability()->Now, EvKind::Downgrade,
                static_cast<std::uint16_t>(Owner), Block, Core);
    noteMsg(Home, config().socketOf(Owner));
    if (OwnerLine->State == LineState::Modified) {
      if (ProtocolAuditor *Auditor = auditor()) {
        SectorMask Full;
        Full.markWritten(0, config().BlockSize);
        Auditor->onWriteback(Owner, Block, Full);
      }
      writebackToLlc(Block, Home);
      noteData(config().socketOf(Owner), Home);
      ++stats().Writebacks;
    }
    if (faults().Mutation != ProtocolMutation::SkipDowngradeOnFwdGetS)
      priv(Owner).setState(Block, LineState::Shared);
    if (CpiStack *Cpi = cpi())
      Cpi->charge(CpiCat::DowngradeService,
                  latency().forwardAndSupply(Home, Owner, Core));
    Lat += latency().forwardAndSupply(Home, Owner, Core);
    noteData(config().socketOf(Owner), CoreSocket);
    fillPrivate(Core, Block, LineState::Shared);
    Entry.State = DirState::Shared;
    Entry.Owner = InvalidCore;
    Entry.Sharers.clearAll();
    Entry.Sharers.set(Owner);
    Entry.Sharers.set(Core);
    break;
  }
  case DirState::Ward:
    assert(false && "Ward entry in MESI load path");
    break;
  }
  return Lat;
}

Cycles MesiProtocol::storeMiss(CoreId Core, Addr Block, DirEntry &Entry) {
  SocketId Home = homeOf(Block, Core);
  SocketId CoreSocket = config().socketOf(Core);
  Cycles Lat = 0;

  switch (Entry.State) {
  case DirState::Invalid:
    Lat += llcData(Block, Home);
    noteData(Home, CoreSocket);
    fillPrivate(Core, Block, LineState::Modified);
    Entry.State = DirState::Modified;
    Entry.Owner = Core;
    break;
  case DirState::Shared: {
    bool HadCopy = Entry.Sharers.test(Core);
    Cycles InvLat = 0;
    if (faults().Mutation != ProtocolMutation::SkipInvalidationOnGetM) {
      Entry.Sharers.forEach([&](CoreId Sharer) {
        if (Sharer == Core)
          return;
        ++stats().Invalidations;
        priv(Sharer).invalidate(Block);
        if (ProtocolAuditor *Auditor = auditor())
          Auditor->onInvalidate(Sharer, Block);
        if (SharingProfiler *Prof = profiler())
          Prof->onInvalidation(Block, Sharer);
        if (EventLog *Evl = eventLog())
          Evl->emit(observability()->Now, EvKind::Invalidation,
                    static_cast<std::uint16_t>(Sharer), Block, Core);
        noteMsg(Home, config().socketOf(Sharer));             // Inv
        noteMsg(config().socketOf(Sharer), Home);             // Inv-Ack
        InvLat = std::max(InvLat, latency().invalidate(Home, Sharer));
      });
    }
    if (CpiStack *Cpi = cpi())
      Cpi->charge(CpiCat::InvalidationService, InvLat);
    Lat += InvLat;
    if (HadCopy) {
      priv(Core).setState(Block, LineState::Modified);
      noteMsg(Home, CoreSocket); // Upgrade ack.
    } else {
      Lat += llcData(Block, Home);
      noteData(Home, CoreSocket);
      fillPrivate(Core, Block, LineState::Modified);
    }
    Entry.State = DirState::Modified;
    Entry.Owner = Core;
    Entry.Sharers.clearAll();
    break;
  }
  case DirState::Exclusive:
  case DirState::Modified: {
    CoreId Owner = Entry.Owner;
    assert(Owner != Core && "owner missed on its own block");
    // Fwd-GetM: the owner's copy is invalidated and the data (if dirty)
    // travels cache-to-cache to the requester. The shadow model treats the
    // supply as writeback-then-fill: the value the requester receives is
    // the same either way.
    ++stats().Invalidations;
    ++stats().CacheToCache;
    if (SharingProfiler *Prof = profiler())
      Prof->onInvalidation(Block, Owner);
    if (EventLog *Evl = eventLog())
      Evl->emit(observability()->Now, EvKind::Invalidation,
                static_cast<std::uint16_t>(Owner), Block, Core);
    noteMsg(Home, config().socketOf(Owner));
    if (ProtocolAuditor *Auditor = auditor()) {
      SectorMask Full;
      Full.markWritten(0, config().BlockSize);
      Auditor->onWriteback(Owner, Block, Full);
    }
    [[maybe_unused]] std::optional<EvictedLine> Old =
        priv(Owner).invalidate(Block);
    assert(Old && "directory owner without a resident line");
    if (ProtocolAuditor *Auditor = auditor())
      Auditor->onInvalidate(Owner, Block);
    if (CpiStack *Cpi = cpi())
      Cpi->charge(CpiCat::InvalidationService,
                  latency().forwardAndSupply(Home, Owner, Core));
    Lat += latency().forwardAndSupply(Home, Owner, Core);
    noteData(config().socketOf(Owner), CoreSocket);
    fillPrivate(Core, Block, LineState::Modified);
    Entry.State = DirState::Modified;
    Entry.Owner = Core;
    Entry.Sharers.clearAll();
    break;
  }
  case DirState::Ward:
    assert(false && "Ward entry in MESI store path");
    break;
  }
  return Lat;
}

void MesiProtocol::evictLine(CoreId Core, const EvictedLine &Victim) {
  SocketId Home = homeOfExisting(Victim.Block);
  SocketId CoreSocket = config().socketOf(Core);
  auto It = dir().find(Victim.Block);
  assert(It != dir().end() && "evicting a block the directory never saw");
  DirEntry &Entry = It.value();

  // Every eviction notifies the home directory so sharer/owner information
  // stays precise (Put messages in the MESI vocabulary).
  noteMsg(CoreSocket, Home);

  switch (Victim.State) {
  case LineState::Shared:
    assert(Entry.State == DirState::Shared || Entry.State == DirState::Ward);
    Entry.Sharers.clear(Core);
    if (Entry.State == DirState::Shared && Entry.Sharers.empty())
      Entry.State = DirState::Invalid;
    break;
  case LineState::Exclusive:
    assert(Entry.Owner == Core && "eviction by non-owner");
    Entry = DirEntry();
    break;
  case LineState::Modified: {
    assert(Entry.Owner == Core && "eviction by non-owner");
    if (ProtocolAuditor *Auditor = auditor()) {
      SectorMask Full;
      Full.markWritten(0, config().BlockSize);
      Auditor->onWriteback(Core, Victim.Block, Full);
    }
    writebackToLlc(Victim.Block, Home);
    noteData(CoreSocket, Home);
    ++stats().Writebacks;
    Entry = DirEntry();
    break;
  }
  case LineState::Ward:
    assert(false && "Ward victim reached the plain MESI backend");
    break;
  case LineState::Invalid:
    assert(false && "invalid line reported as victim");
    break;
  }
}
