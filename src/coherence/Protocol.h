//===- coherence/Protocol.h - Pluggable coherence backends ----*- C++ -*-===//
//
// Part of the WARDen reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The protocol backend interface and registry. The CoherenceController
/// owns everything physical about the simulated memory system — cache
/// arrays, the directory storage, the region table, latency/energy
/// accounting, fault injection, observability — while a CoherenceProtocol
/// backend owns the *policy*: what happens on a miss, on an eviction, at a
/// region boundary, and (for lazy protocols) at synchronization points.
///
/// Four backends ship in-tree, registered under string ids:
///  * "mesi"   — directory MESI (Nagarajan et al. vocabulary).
///  * "warden" — MESI plus the WARD state and region reconciliation
///               (Sections 5-6 of the paper).
///  * "sisd"   — a directory-less self-invalidation/self-downgrade
///               protocol in the style of Abdulla et al.'s "Mending
///               Fences": cores invalidate possibly-stale lines at
///               acquire points (steals, join continuations) and push
///               their own dirty lines at release points (task
///               completion) instead of ever servicing remote
///               invalidations or downgrades.
///  * "racoh"  — log-based release-acquire coherence over the machine's
///               non-coherent node tier (CXL-pool shape): stores append
///               dirty-line records to a bounded per-node log, releases
///               publish the log, acquires drain remote logs gated by
///               per-node vector clocks so only lines actually written
///               since the last synchronization are invalidated.
///
/// The contract, spelled out in DESIGN.md "Protocol backends": a backend
/// must route all traffic through the controller's helpers (llcData,
/// writebackToLlc, fillPrivate, noteMsg/noteData) so statistics, energy
/// events, and the auditor's shadow model stay consistent; it must never
/// own cache or directory storage of its own; and hooks it does not
/// override must remain strict no-ops so protocols that ignore them are
/// cycle-identical to a build without the hook.
///
//===----------------------------------------------------------------------===//

#ifndef WARDEN_COHERENCE_PROTOCOL_H
#define WARDEN_COHERENCE_PROTOCOL_H

#include "src/coherence/Directory.h"
#include "src/coherence/RegionTable.h"
#include "src/mem/CacheArray.h"
#include "src/support/Types.h"

#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace warden {

class CoherenceController;
class LatencyModel;
class ProtocolAuditor;
class SharingProfiler;
class CpiStack;
class EventLog;
class PrivateCache;
struct CoherenceStats;
struct FaultPlan;
struct MachineConfig;
struct Observability;

/// Which coherence protocol the machine runs.
enum class ProtocolKind {
  Mesi,   ///< Baseline directory MESI (Nagarajan et al. vocabulary).
  Warden, ///< MESI augmented with the WARD state and region table.
  Sisd,   ///< Directory-less self-invalidation/self-downgrade.
  Racoh,  ///< Log-based release-acquire coherence across nodes.
};

/// Returns a printable display name for \p Protocol ("MESI", "WARDen",
/// "SISD", "RACoh").
const char *protocolName(ProtocolKind Protocol);

/// Returns the stable lowercase id for \p Protocol ("mesi", "warden",
/// "sisd", "racoh") — the key used by --protocol=, the registry, and the
/// warden-bench-v2 report's "protocols" map.
const char *protocolId(ProtocolKind Protocol);

/// Parses a protocol id (as accepted by --protocol=) back to its kind.
/// Returns std::nullopt for unknown ids; callers list
/// registeredProtocolIds() in their error message.
std::optional<ProtocolKind> parseProtocolId(std::string_view Id);

/// All built-in protocol kinds, in canonical (registration) order.
const std::vector<ProtocolKind> &allProtocolKinds();

/// Strictly parses a comma-separated protocol-id list (the verify CLI's
/// --protocol= syntax). Unlike the lenient benchmark parser, every
/// malformation is rejected with a descriptive message in \p Error: an
/// empty list, an empty segment (leading/trailing/doubled comma), an
/// unknown id (the message lists registeredProtocolIds()), or a duplicate
/// id. Returns std::nullopt on rejection.
std::optional<std::vector<ProtocolKind>>
parseProtocolList(std::string_view List, std::string &Error);

/// The memory-consistency contract a protocol backend declares to the
/// verification layer (verify/Litmus checks each backend against its
/// declared model; see DESIGN.md "Model checking & litmus").
enum class ConsistencyModel {
  /// Sequential consistency for data-race-free programs, enforced eagerly:
  /// every load observes the globally last store (MESI, WARDen outside
  /// WARD regions). At the simulator's operation granularity these
  /// protocols execute sequentially consistently even for racy programs.
  ScForDrf,
  /// Release-acquire: writes become visible at release points and staleness
  /// is shed at acquire points (SISD). Racy accesses between
  /// synchronization operations may observe stale values.
  ReleaseAcquire,
};

/// Returns the stable lowercase id for \p Model ("sc-for-drf",
/// "release-acquire") used in reports and litmus assertions.
const char *consistencyModelName(ConsistencyModel Model);

/// Scheduler-visible interaction points a backend declares to the epoch
/// engine (sched/Epoch.h). The replayer's epoch-barriered parallel mode
/// advances cores independently only between cross-core interaction
/// points; these flags tell it which operations a backend promises are
/// core-local. Declarations are conservative by default so an out-of-tree
/// backend registered through registerProtocol() is never parallelized
/// beyond what it explicitly opts into; tests/EpochTest.cpp asserts each
/// built-in backend's declaration against its actual hook behaviour.
struct EpochInteractions {
  /// Private-cache hits touch no protocol or shared state: loads on any
  /// valid copy, and stores/RMWs on an Exclusive/Modified/Ward copy
  /// (including the silent E->M upgrade), mutate only the acting core's
  /// own cache arrays. Store hits on Shared copies are excluded — they
  /// route through upgradeStoreHit(), an interaction point. All four
  /// built-in backends satisfy this; a backend that observes or logs hit
  /// traffic must leave it false.
  bool PrivateHitsAreLocal = false;
  /// syncAcquire()/syncRelease() are strict no-ops returning 0 (eager
  /// protocols). Lazy protocols (SISD, racoh) do real cross-core work in
  /// these hooks, making every task boundary an interaction point.
  bool SyncHooksAreFree = false;
};

/// Kind of demand access.
enum class AccessType {
  Load,  ///< Blocking read.
  Store, ///< Buffered write.
  Rmw,   ///< Atomic read-modify-write (blocking, write semantics).
};

/// A coherence policy plugged into the CoherenceController. Backends are
/// created by the controller (through the registry) and live exactly as
/// long as it; the protected accessors below are the only way into the
/// controller's internals, which keeps the must-not-own rules above
/// mechanically checkable.
class CoherenceProtocol {
public:
  virtual ~CoherenceProtocol();

  CoherenceProtocol(const CoherenceProtocol &) = delete;
  CoherenceProtocol &operator=(const CoherenceProtocol &) = delete;

  ProtocolKind kind() const { return Kind; }

  /// The consistency contract this backend declares — what the litmus
  /// harness asserts against. Eager directory protocols default to
  /// SC-for-DRF; lazy self-invalidation protocols override.
  virtual ConsistencyModel consistencyModel() const;

  /// The backend's core-local operation declarations, consulted by the
  /// epoch-barriered replay engine. The default claims nothing, which
  /// disables intra-run parallelism for backends that do not opt in.
  virtual EpochInteractions epochInteractions() const;

  /// Serves a demand miss (or write-upgrade miss) by \p Core on \p Block.
  /// The controller has already charged the trip to the home slice and
  /// counted the L3 access; the return value is the additional latency of
  /// the protocol's serving actions. The block must be resident with write
  /// permission afterwards when \p Type is a store/RMW.
  virtual Cycles serveMiss(CoreId Core, Addr Block, AccessType Type) = 0;

  /// A store/RMW by \p Core hit its own Shared copy of \p Block. Returning
  /// true means the backend granted write permission in place (the
  /// controller then charges a plain hit); returning false routes the
  /// access through serveMiss as a write upgrade. Directory protocols must
  /// return false (other sharers need invalidating); SISD upgrades locally.
  virtual bool upgradeStoreHit(CoreId Core, Addr Block);

  /// Handles a private-cache victim: write-back traffic plus whatever
  /// bookkeeping the protocol keeps about resident copies. The controller
  /// has already counted the eviction and notifies the auditor afterwards.
  virtual void evictLine(CoreId Core, const EvictedLine &Victim) = 0;

  /// Cost of the "Add Region" instruction once the region is tracked.
  virtual Cycles regionAddCost() const;

  /// Reconciliation work for a removed region \p Region (id \p Id),
  /// charged to core \p Remover. Called only when the region was actually
  /// tracked; protocols without region semantics return 0 and do nothing.
  virtual Cycles removeRegion(const WardRegion &Region, RegionId Id,
                              CoreId Remover);

  /// Fault injection: force \p Block to reconcile immediately if the
  /// protocol keeps deferred state for it (no-op otherwise). The RNG draw
  /// stays in the controller so fault streams are protocol-independent.
  virtual void forceReconcile(Addr Block);

  /// Synchronization-point hooks, driven by the replay scheduler at task
  /// boundaries (see Replayer): acquire before consuming another task's
  /// data (steal probes, join continuations), release after producing
  /// (task completion). Return the cycles charged to \p Core. Eager
  /// protocols (MESI, WARDen) keep these strict no-ops returning 0 —
  /// byte-identity with the pre-backend engine depends on it.
  virtual Cycles syncAcquire(CoreId Core);
  virtual Cycles syncRelease(CoreId Core);

  /// A deterministic hash of the backend's protocol-private state (pending
  /// logs, vector clocks, ...). The exhaustive explorer mixes this into its
  /// canonical state key so two machine states that differ only in hidden
  /// protocol state are never wrongly deduplicated. Backends without
  /// private state keep the default 0.
  virtual std::uint64_t stateFingerprint() const;

  /// True when the backend holds a not-yet-published (logged but not
  /// released) write to \p Block. The auditor's lazy-protocol disciplines
  /// use this to tell licensed staleness (an unpublished write the
  /// consistency model lets other cores miss) from a protocol bug.
  virtual bool blockHasUnpublishedWrite(Addr Block) const;

  /// Called when the controller attaches (or detaches, \p Obs == nullptr)
  /// an observability bundle: the backend resolves any named instruments it
  /// exports from the bundle's MetricRegistry. Recording only — an attached
  /// run must stay cycle-identical to a detached one.
  virtual void attachObs(Observability *Obs);

protected:
  CoherenceProtocol(ProtocolKind Kind, CoherenceController &Controller)
      : C(Controller), Kind(Kind) {}

  // --- Controller access (defined inline in CoherenceController.h) --------
  const MachineConfig &config() const;
  const LatencyModel &latency() const;
  CoherenceStats &stats();
  const RegionTable &regions() const;
  PrivateCache &priv(CoreId Core);
  Directory &dir();
  ProtocolAuditor *auditor();
  SharingProfiler *profiler();
  CpiStack *cpi();
  EventLog *eventLog();
  Observability *observability();
  const FaultPlan &faults() const;
  Cycles llcData(Addr Block, SocketId Home);
  void writebackToLlc(Addr Block, SocketId Home);
  void fillPrivate(CoreId Core, Addr Block, LineState State);
  SocketId homeOf(Addr Block, CoreId Requester);
  SocketId homeOfExisting(Addr Block) const;
  void noteMsg(SocketId From, SocketId To);
  void noteData(SocketId From, SocketId To);

  CoherenceController &C;

private:
  ProtocolKind Kind;
};

/// Factory signature for the protocol registry.
using ProtocolFactory =
    std::function<std::unique_ptr<CoherenceProtocol>(CoherenceController &)>;

/// Registers (or, for an existing id, replaces) a protocol implementation
/// under \p Id, reported as \p Kind. The three built-ins are pre-registered;
/// replacing one swaps the implementation every subsequent controller
/// construction uses. Thread-safe. Returns true if \p Id was new.
bool registerProtocol(std::string Id, ProtocolKind Kind,
                      ProtocolFactory Factory);

/// Instantiates the registered backend for \p Kind (looked up by its id)
/// bound to \p Controller. Throws std::invalid_argument if no factory is
/// registered — impossible for the built-in kinds.
std::unique_ptr<CoherenceProtocol> makeProtocol(ProtocolKind Kind,
                                                CoherenceController &Controller);

/// The currently registered protocol ids, in registration order — what
/// --protocol= error messages list as valid values.
std::vector<std::string> registeredProtocolIds();

} // namespace warden

#endif // WARDEN_COHERENCE_PROTOCOL_H
