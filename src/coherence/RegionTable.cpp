//===- coherence/RegionTable.cpp - Active WARD region tracking ------------===//
//
// Part of the WARDen reproduction project.
//
//===----------------------------------------------------------------------===//

#include "src/coherence/RegionTable.h"

#include "src/obs/MetricRegistry.h"

#include <algorithm>
#include <cassert>
#include <limits>

using namespace warden;

void RegionTable::attachMetrics(MetricRegistry *Registry) {
  OccupancyGauge =
      Registry ? &Registry->gauge("region_table.occupancy") : nullptr;
  OverflowCounter =
      Registry ? &Registry->counter("region_table.overflows") : nullptr;
  if (OccupancyGauge)
    OccupancyGauge->set(size());
}

std::size_t RegionTable::upperBound(Addr Address) const {
  return static_cast<std::size_t>(
      std::upper_bound(ByStart.begin(), ByStart.end(), Address,
                       [](Addr A, const Interval &I) { return A < I.Start; }) -
      ByStart.begin());
}

RegionTable::AddResult RegionTable::add(RegionId Id, Addr Start, Addr End) {
  if (Start >= End)
    return AddResult::BadInterval;
  if (ById.contains(Id))
    return AddResult::DuplicateId;
  if (full()) {
    if (OverflowCounter)
      OverflowCounter->add();
    return AddResult::Full;
  }

  // Reject overlap with the nearest neighbours.
  std::size_t Next = upperBound(Start);
  if (Next < ByStart.size() && ByStart[Next].Start < End)
    return AddResult::Overlap;
  if (Next > 0 && ByStart[Next - 1].End > Start)
    return AddResult::Overlap;

  ByStart.insert(ByStart.begin() + static_cast<std::ptrdiff_t>(Next),
                 Interval{Start, End, Id});
  ById[Id] = Start;
  invalidateMru();
  Peak = std::max(Peak, size());
  if (OccupancyGauge)
    OccupancyGauge->set(size());
  return AddResult::Added;
}

std::optional<WardRegion> RegionTable::remove(RegionId Id) {
  auto It = ById.find(Id);
  if (It == ById.end())
    return std::nullopt;
  std::size_t Index = upperBound((*It).second);
  assert(Index > 0 && ByStart[Index - 1].Start == (*It).second &&
         "table maps out of sync");
  WardRegion Region{ByStart[Index - 1].Start, ByStart[Index - 1].End};
  ByStart.erase(ByStart.begin() + static_cast<std::ptrdiff_t>(Index - 1));
  ById.erase(It);
  invalidateMru();
  if (OccupancyGauge)
    OccupancyGauge->set(size());
  return Region;
}

RegionId RegionTable::lookup(Addr Address) const {
  if (Mru[0].covers(Address))
    return Mru[0].Id;
  if (Mru[1].covers(Address)) {
    std::swap(Mru[0], Mru[1]); // Promote; the pair keeps alternating hits.
    return Mru[0].Id;
  }
  RegionSpan Span;
  RegionId Id = lookupSpan(Address, Span);
  fillMru(Span.Lo, Span.Hi, Span.Id);
  return Id;
}

RegionId RegionTable::lookupSpan(Addr Address, RegionSpan &Span) const {
  if (ByStart.empty()) {
    Span = {0, std::numeric_limits<Addr>::max(), InvalidRegion};
    return InvalidRegion;
  }
  std::size_t Next = upperBound(Address);
  if (Next > 0 && Address < ByStart[Next - 1].End) {
    const Interval &Hit = ByStart[Next - 1];
    Span = {Hit.Start, Hit.End, Hit.Id};
    return Hit.Id;
  }
  // Miss: report the surrounding gap so repeated non-WARD addresses (the
  // common case under MESI) resolve without another search.
  Addr GapLo = Next > 0 ? ByStart[Next - 1].End : 0;
  Addr GapHi = Next < ByStart.size()
                   ? ByStart[Next].Start
                   : std::numeric_limits<Addr>::max();
  Span = {GapLo, GapHi, InvalidRegion};
  return InvalidRegion;
}

std::optional<WardRegion> RegionTable::get(RegionId Id) const {
  auto It = ById.find(Id);
  if (It == ById.end())
    return std::nullopt;
  std::size_t Index = upperBound((*It).second);
  assert(Index > 0 && ByStart[Index - 1].Start == (*It).second &&
         "table maps out of sync");
  return WardRegion{ByStart[Index - 1].Start, ByStart[Index - 1].End};
}
