//===- coherence/RegionTable.cpp - Active WARD region tracking ------------===//
//
// Part of the WARDen reproduction project.
//
//===----------------------------------------------------------------------===//

#include "src/coherence/RegionTable.h"

#include "src/obs/MetricRegistry.h"

#include <cassert>

using namespace warden;

void RegionTable::attachMetrics(MetricRegistry *Registry) {
  OccupancyGauge =
      Registry ? &Registry->gauge("region_table.occupancy") : nullptr;
  OverflowCounter =
      Registry ? &Registry->counter("region_table.overflows") : nullptr;
  if (OccupancyGauge)
    OccupancyGauge->set(size());
}

RegionTable::AddResult RegionTable::add(RegionId Id, Addr Start, Addr End) {
  if (Start >= End)
    return AddResult::BadInterval;
  if (ById.count(Id))
    return AddResult::DuplicateId;
  if (full()) {
    if (OverflowCounter)
      OverflowCounter->add();
    return AddResult::Full;
  }

  // Reject overlap with the nearest neighbours.
  auto Next = ByStart.lower_bound(Start);
  if (Next != ByStart.end() && Next->first < End)
    return AddResult::Overlap;
  if (Next != ByStart.begin()) {
    auto Prev = std::prev(Next);
    if (Prev->second.first > Start)
      return AddResult::Overlap;
  }

  ByStart.emplace(Start, std::make_pair(End, Id));
  ById.emplace(Id, Start);
  Peak = std::max(Peak, size());
  if (OccupancyGauge)
    OccupancyGauge->set(size());
  return AddResult::Added;
}

std::optional<WardRegion> RegionTable::remove(RegionId Id) {
  auto It = ById.find(Id);
  if (It == ById.end())
    return std::nullopt;
  auto StartIt = ByStart.find(It->second);
  assert(StartIt != ByStart.end() && "table maps out of sync");
  WardRegion Region{StartIt->first, StartIt->second.first};
  ByStart.erase(StartIt);
  ById.erase(It);
  if (OccupancyGauge)
    OccupancyGauge->set(size());
  return Region;
}

RegionId RegionTable::lookup(Addr Address) const {
  auto It = ByStart.upper_bound(Address);
  if (It == ByStart.begin())
    return InvalidRegion;
  --It;
  if (Address < It->second.first)
    return It->second.second;
  return InvalidRegion;
}

std::optional<WardRegion> RegionTable::get(RegionId Id) const {
  auto It = ById.find(Id);
  if (It == ById.end())
    return std::nullopt;
  auto StartIt = ByStart.find(It->second);
  assert(StartIt != ByStart.end() && "table maps out of sync");
  return WardRegion{StartIt->first, StartIt->second.first};
}
