//===- coherence/SisdProtocol.cpp - Self-inv/self-downgrade ---------------===//
//
// Part of the WARDen reproduction project.
//
//===----------------------------------------------------------------------===//

#include "src/coherence/SisdProtocol.h"

#include "src/coherence/CoherenceController.h"
#include "src/obs/EventLog.h"
#include "src/obs/Observability.h"
#include "src/verify/ProtocolAuditor.h"

#include <cassert>
#include <vector>

using namespace warden;

ConsistencyModel SisdProtocol::consistencyModel() const {
  return ConsistencyModel::ReleaseAcquire;
}

EpochInteractions SisdProtocol::epochInteractions() const {
  // Hits are core-local (the local Shared->dirty upgrade notwithstanding,
  // upgradeStoreHit is an interaction point and excluded by definition),
  // but the sync hooks do the protocol's real work: self-invalidation at
  // acquires, self-downgrade at releases. Every task boundary is a
  // cross-core interaction.
  EpochInteractions Decl;
  Decl.PrivateHitsAreLocal = true;
  Decl.SyncHooksAreFree = false;
  return Decl;
}

Cycles SisdProtocol::serveMiss(CoreId Core, Addr Block, AccessType Type) {
  // No directory: every miss is served by the home LLC slice (or the DRAM
  // behind it). Other cores' copies are never consulted or disturbed —
  // whatever they hold, the synchronization discipline below keeps them
  // from reading stale bytes that matter.
  SocketId Home = homeOf(Block, Core);
  Cycles Lat = llcData(Block, Home);
  noteData(Home, config().socketOf(Core));
  fillPrivate(Core, Block,
              Type == AccessType::Load ? LineState::Shared : LineState::Ward);
  return Lat;
}

bool SisdProtocol::upgradeStoreHit(CoreId Core, Addr Block) {
  // Local write upgrade: nobody tracks this copy, so no permission traffic
  // is needed. The write is published at the next release.
  priv(Core).setState(Block, LineState::Ward);
  return true;
}

void SisdProtocol::evictLine(CoreId Core, const EvictedLine &Victim) {
  // Clean copies die silently — there is no directory to notify. Dirty
  // sectors must reach the LLC now, or the eventual release would have
  // nothing left to publish.
  if (!Victim.Dirty.any())
    return;
  SocketId Home = homeOfExisting(Victim.Block);
  if (ProtocolAuditor *Auditor = auditor())
    Auditor->onWriteback(Core, Victim.Block, Victim.Dirty);
  writebackToLlc(Victim.Block, Home);
  noteData(config().socketOf(Core), Home);
  ++stats().Writebacks;
}

Cycles SisdProtocol::downgradeDirty(CoreId Core, CacheLine &Line) {
  SocketId Home = homeOfExisting(Line.Block);
  SocketId CoreSocket = config().socketOf(Core);
  if (ProtocolAuditor *Auditor = auditor())
    Auditor->onWriteback(Core, Line.Block, Line.Dirty);
  writebackToLlc(Line.Block, Home);
  noteMsg(CoreSocket, Home); // The self-downgrade notice.
  noteData(CoreSocket, Home);
  ++stats().Writebacks;
  ++stats().Downgrades;
  if (EventLog *Evl = eventLog())
    Evl->emit(observability()->Now, EvKind::Downgrade,
              static_cast<std::uint16_t>(Core), Line.Block, Core, /*Arg=*/1);
  Line.Dirty.clear();
  return config().Features.ReconcileCostPerBlock;
}

Cycles SisdProtocol::syncRelease(CoreId Core) {
  PrivateCache &Cache = priv(Core);
  Cycles Cost = 0;
  if (Cache.residentBlocks() != 0) {
    // Self-downgrade: push every dirty line's sectors to the LLC and keep
    // the copy as a read copy. The L2 line is authoritative, so mutating it
    // in place is exactly setState minus the redundant probe.
    Cache.forEachValidLine([&](CacheLine &Line) {
      if (Line.State != LineState::Ward)
        return;
      if (Line.Dirty.any())
        Cost += downgradeDirty(Core, Line);
      Line.State = LineState::Shared;
    });
  }
  if (ProtocolAuditor *Auditor = auditor())
    Auditor->onSyncRelease(Core);
  return Cost;
}

Cycles SisdProtocol::syncAcquire(CoreId Core) {
  PrivateCache &Cache = priv(Core);
  Cycles Cost = 0;
  // Deliberate bug for verification regression tests: leave every resident
  // (possibly stale) line in place across the acquire. onSyncAcquire still
  // fires so the auditor — not an assert — reports the residue.
  bool SkipInvalidation =
      faults().Mutation == ProtocolMutation::SkipAcquireInvalidation;
  if (!SkipInvalidation && Cache.residentBlocks() != 0) {
    // Self-invalidation of every possibly-stale line. Two passes: collect,
    // then invalidate — invalidating inside the walk would mutate the
    // arrays being walked.
    std::vector<Addr> Resident;
    Resident.reserve(Cache.residentBlocks());
    Cache.forEachValidLine(
        [&](const CacheLine &Line) { Resident.push_back(Line.Block); });
    for (Addr Block : Resident) {
      std::optional<EvictedLine> Old = Cache.invalidate(Block);
      assert(Old && "resident line vanished during self-invalidation");
      if (Old->Dirty.any()) {
        // An acquire without an intervening release (e.g. a steal probe
        // mid-task) can still hold unpublished writes; push them first.
        SocketId Home = homeOfExisting(Block);
        if (ProtocolAuditor *Auditor = auditor())
          Auditor->onWriteback(Core, Block, Old->Dirty);
        writebackToLlc(Block, Home);
        noteData(config().socketOf(Core), Home);
        ++stats().Writebacks;
        Cost += config().Features.ReconcileCostPerBlock;
      }
      ++stats().Invalidations;
      if (EventLog *Evl = eventLog())
        Evl->emit(observability()->Now, EvKind::Invalidation,
                  static_cast<std::uint16_t>(Core), Block, Core, /*Arg=*/1);
      if (ProtocolAuditor *Auditor = auditor())
        Auditor->onInvalidate(Core, Block);
    }
  }
  if (ProtocolAuditor *Auditor = auditor())
    Auditor->onSyncAcquire(Core);
  return Cost;
}
