//===- coherence/Directory.h - Full-map directory state -------*- C++ -*-===//
//
// Part of the WARDen reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Directory bookkeeping per cache block. The reproduction uses a "perfect"
/// (unbounded, precise) full-map directory: entries are kept for every
/// block that has ever been requested, and private caches notify the
/// directory on every eviction, so owner/sharer information is exact. LLC
/// data-array capacity is modeled separately (it affects DRAM traffic, not
/// directory precision). This is the standard simplification when the
/// study's focus is the protocol, not directory sizing.
///
/// The directory probe sits on the critical path of every demand miss, so
/// the map is an open-addressing FlatMap (one contiguous probe, no node
/// allocation) rather than std::unordered_map. Iteration order is probe
/// order; anything that reports over the directory sorts first.
///
//===----------------------------------------------------------------------===//

#ifndef WARDEN_COHERENCE_DIRECTORY_H
#define WARDEN_COHERENCE_DIRECTORY_H

#include "src/support/CoreMask.h"
#include "src/support/FlatMap.h"
#include "src/support/Types.h"

namespace warden {

/// Directory-visible state of a block (Figure 5's FSA states).
enum class DirState : std::uint8_t {
  Invalid,   ///< No private copies; memory/LLC is authoritative.
  Shared,    ///< One or more clean read copies; LLC has data.
  Exclusive, ///< Single owner, clean (may silently upgrade to Modified).
  Modified,  ///< Single owner, dirty.
  Ward,      ///< Coherence disabled: copies tracked only for reconciliation.
};

/// Returns a printable name for \p State.
const char *dirStateName(DirState State);

/// One block's directory entry.
struct DirEntry {
  DirState State = DirState::Invalid;
  /// Owner core when Exclusive/Modified.
  CoreId Owner = InvalidCore;
  /// Sharer set when Shared; copy-holder set when Ward.
  CoreMask Sharers;
  /// Active region the block belongs to when Ward.
  RegionId Region = InvalidRegion;
};

/// The directory: block-aligned address -> entry.
using Directory = FlatMap<Addr, DirEntry>;

} // namespace warden

#endif // WARDEN_COHERENCE_DIRECTORY_H
