//===- coherence/SisdProtocol.h - Self-inv/self-downgrade -----*- C++ -*-===//
//
// Part of the WARDen reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A directory-less self-invalidation/self-downgrade backend in the style
/// of Abdulla et al.'s "Mending Fences" (see PAPERS.md): the related-work
/// point WARDen's Section 2 contrasts against. No sharer or owner is ever
/// tracked, so no core is ever interrupted by a remote invalidation or
/// downgrade; instead each core mends its own fences at synchronization
/// points. Loads fill read copies, stores fill (or upgrade in place to)
/// write-permitted copies with byte-granular dirty masks, and the replay
/// scheduler's task boundaries drive the two sync hooks:
///
///  * release (task completion): write every dirty line's sectors back to
///    the home LLC slice and downgrade the copy in place — the published
///    data is now visible to whoever acquires next.
///  * acquire (steal probe, join continuation): invalidate every resident
///    line, dirty ones after writing them back — the core can no longer
///    rely on any cached value predating the synchronization.
///
/// The ProtocolAuditor runs a matching shadow discipline (the directory
/// must stay empty, private lines must be read-clean or write-marked,
/// acquiring cores must hold nothing) so `ctest -L audit` checks SISD's
/// soundness the same way it checks MESI and WARDen.
///
//===----------------------------------------------------------------------===//

#ifndef WARDEN_COHERENCE_SISDPROTOCOL_H
#define WARDEN_COHERENCE_SISDPROTOCOL_H

#include "src/coherence/Protocol.h"

namespace warden {

/// Self-invalidation/self-downgrade as a pluggable backend.
class SisdProtocol : public CoherenceProtocol {
public:
  explicit SisdProtocol(CoherenceController &Controller)
      : CoherenceProtocol(ProtocolKind::Sisd, Controller) {}

  /// Writes become visible at releases, staleness is shed at acquires —
  /// the release-acquire contract the litmus harness checks.
  ConsistencyModel consistencyModel() const override;
  EpochInteractions epochInteractions() const override;

  Cycles serveMiss(CoreId Core, Addr Block, AccessType Type) override;
  bool upgradeStoreHit(CoreId Core, Addr Block) override;
  void evictLine(CoreId Core, const EvictedLine &Victim) override;
  Cycles syncAcquire(CoreId Core) override;
  Cycles syncRelease(CoreId Core) override;

private:
  /// Writes \p Line's dirty sectors back to the home LLC slice and clears
  /// the mask. Returns the cycles charged for the downgrade.
  Cycles downgradeDirty(CoreId Core, CacheLine &Line);
};

} // namespace warden

#endif // WARDEN_COHERENCE_SISDPROTOCOL_H
