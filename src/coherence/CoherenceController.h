//===- coherence/CoherenceController.h - MESI + WARDen engine -*- C++ -*-===//
//
// Part of the WARDen reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The coherence engine: a directory-based MESI protocol (Nagarajan et al.
/// message vocabulary) optionally augmented with the WARD state of Section
/// 5. The timing scheduler calls access() for every demand reference and
/// addRegion()/removeRegion() for the runtime's WARD region instructions;
/// the controller returns the end-to-end latency of each operation and
/// accumulates the event statistics the evaluation reports.
///
/// Protocol summary as implemented (see DESIGN.md for rationale):
///  * Non-WARD blocks: textbook MESI with cache-to-cache transfer,
///    E-on-unshared-fill, silent E->M upgrade, precise eviction
///    notifications.
///  * A request for a block inside an active WARD region moves its
///    directory entry to W on first touch or first sharing event. W
///    requests are served from the LLC/DRAM without invalidating or
///    downgrading any other copy; GetS returns an Exclusive-like copy
///    (Section 5.1) so later writes are silent.
///  * removeRegion() reconciles: single-holder blocks write back their
///    dirty sectors and are downgraded in place to Shared (kept cached);
///    multi-holder blocks merge dirty sectors in directory arrival order
///    (core id order — WARD licenses any order) and all copies are flushed.
///  * Evicted WARD lines reconcile eagerly (write back dirty sectors and
///    leave the sharer set), which Section 5.3 notes overlaps the
///    reconciliation cost with computation.
///
//===----------------------------------------------------------------------===//

#ifndef WARDEN_COHERENCE_COHERENCECONTROLLER_H
#define WARDEN_COHERENCE_COHERENCECONTROLLER_H

#include "src/coherence/CoherenceStats.h"
#include "src/coherence/Directory.h"
#include "src/coherence/PrivateCache.h"
#include "src/coherence/RegionTable.h"
#include "src/machine/LatencyModel.h"
#include "src/machine/MachineConfig.h"
#include "src/mem/CacheArray.h"
#include "src/support/Rng.h"
#include "src/verify/FaultPlan.h"

#include <memory>
#include <vector>

namespace warden {

class Histogram;
class ProtocolAuditor;
class SharingProfiler;
class CpiStack;
struct Observability;

/// Kind of demand access.
enum class AccessType {
  Load,  ///< Blocking read.
  Store, ///< Buffered write.
  Rmw,   ///< Atomic read-modify-write (blocking, write semantics).
};

/// The full simulated cache/coherence subsystem.
class CoherenceController {
public:
  /// \p Faults optionally injects deterministic failures (forced CAM
  /// exhaustion, randomized evictions, adversarial reconciliation, or a
  /// deliberate protocol mutation for auditor regression tests). The
  /// default plan injects nothing and leaves every path cycle-identical to
  /// the unfaulted simulator.
  explicit CoherenceController(const MachineConfig &Config,
                               const FaultPlan &Faults = FaultPlan());

  /// Attaches (or detaches, with nullptr) a protocol auditor observing
  /// every state transition. The auditor only reads through const
  /// interfaces, so attaching one never changes timing or statistics.
  void attachAuditor(ProtocolAuditor *NewAuditor) { Auditor = NewAuditor; }

  /// Attaches (or detaches, with nullptr) observability sinks: demand
  /// latency and WARD-region-lifetime histograms into the metric registry,
  /// instant trace events for reconciles, region overflows, and injected
  /// faults. Same contract as the auditor: recording only, cycle-identical
  /// either way. Timestamps come from Observability::Now, which the replay
  /// scheduler keeps at the acting core's clock.
  void attachObs(Observability *NewObs);

  /// Performs a demand access of \p Size bytes at \p Address by \p Core and
  /// returns its latency. Accesses spanning block boundaries are split and
  /// their latencies summed. Malformed requests (zero size, out-of-range
  /// core) are rejected — counted in RejectedAccesses — rather than relied
  /// on caller discipline.
  Cycles access(CoreId Core, Addr Address, unsigned Size, AccessType Type);

  /// Registers a WARD region (the "Add Region" instruction). Safe to call
  /// under MESI, where it is a no-op. Returns the (small, fixed)
  /// instruction cost.
  Cycles addRegion(RegionId Id, Addr Start, Addr End);

  /// Removes a WARD region and reconciles its blocks (the "Remove Region"
  /// instruction). Returns the reconciliation cost charged to the
  /// unmarking core \p Remover.
  Cycles removeRegion(RegionId Id, CoreId Remover);

  /// End-of-run drain: writes every dirty private line back to its home
  /// LLC and every dirty LLC line back to DRAM, counting the traffic (no
  /// latency — this models the write-back work a longer execution would
  /// have paid through natural evictions, and keeps the MESI/WARDen energy
  /// comparison fair: WARDen prepays these write-backs at reconciliation).
  void drainDirtyData();

  /// Pre-sizes the directory and page-home tables for a simulated footprint
  /// of \p Bytes, so the hot loop never pays a mid-run rehash. Purely a
  /// host-side optimization: an unreserved run is cycle-identical.
  void reserveFootprint(std::uint64_t Bytes);

  const CoherenceStats &stats() const { return Stats; }
  const MachineConfig &config() const { return Config; }
  const RegionTable &regionTable() const { return Regions; }
  const FaultPlan &faultPlan() const { return Faults; }

  /// Test/auditor hooks: inspect a block's directory entry, a core's
  /// private line, or iterate the full structures (const-only, so
  /// observers cannot disturb LRU state).
  const DirEntry *directoryEntry(Addr Block) const;
  const CacheLine *privateLine(CoreId Core, Addr Block) const;
  const Directory &directory() const { return Dir; }
  const PrivateCache &privateCache(CoreId Core) const { return Private[Core]; }

private:
  // --- Demand paths -------------------------------------------------------
  Cycles accessBlock(CoreId Core, Addr Block, unsigned Offset, unsigned Size,
                     AccessType Type);
  Cycles privateHitPath(CoreId Core, Addr Block, unsigned Offset,
                        unsigned Size, AccessType Type, unsigned Level);
  Cycles missPath(CoreId Core, Addr Block, unsigned Offset, unsigned Size,
                  AccessType Type);
  Cycles wardPath(CoreId Core, Addr Block, unsigned Offset, unsigned Size,
                  AccessType Type, DirEntry &Entry, RegionId Region);
  Cycles mesiLoadPath(CoreId Core, Addr Block, DirEntry &Entry);
  Cycles mesiStorePath(CoreId Core, Addr Block, DirEntry &Entry);

  // --- Helpers -------------------------------------------------------------
  /// Serves data from the home LLC slice, fetching from DRAM on a data-array
  /// miss. Returns additional latency beyond the already-charged LLC trip.
  Cycles llcData(Addr Block, SocketId Home);
  /// Writes a block's data back into the home LLC data array (dirty).
  void writebackToLlc(Addr Block, SocketId Home);
  /// Fills \p Block into \p Core's private cache, handling the victim's
  /// directory notification.
  void fillPrivate(CoreId Core, Addr Block, LineState State);
  /// Handles a private-cache victim: writeback + directory update.
  void handleEviction(CoreId Core, const EvictedLine &Victim);
  /// Converts a block's existing MESI copies to Ward on region entry.
  void enterWardState(Addr Block, DirEntry &Entry, RegionId Region);
  /// Reconciles one W block; returns the cost charged to the remover.
  Cycles reconcileBlock(Addr Block, DirEntry &Entry);

  /// First-touch page placement: the home of a page is the socket of the
  /// first core to access it; later accesses look the placement up.
  SocketId homeOf(Addr Block, CoreId Requester);
  /// Home of an already-touched block (no placement side effect).
  SocketId homeOfExisting(Addr Block) const;

  void noteMsg(SocketId From, SocketId To);
  void noteData(SocketId From, SocketId To);

  // --- Fault injection ------------------------------------------------------
  /// Applies the fault plan after a demand access by \p Core to \p Block.
  void injectFaults(CoreId Core, Addr Block);
  /// Evicts one random valid line of \p Core through the normal path.
  void injectEviction(CoreId Core);

  MachineConfig Config;
  LatencyModel Latency;
  CoherenceStats Stats;
  RegionTable Regions;
  std::vector<PrivateCache> Private; ///< One per core.
  std::vector<CacheArray> Llc;       ///< One slice per socket.
  Directory Dir;
  /// Page (4 KB) -> home socket, assigned at first touch.
  FlatMap<Addr, SocketId> PageHome;

  FaultPlan Faults;
  Rng FaultRng;             ///< Private stream; replayable from Faults.Seed.
  ProtocolAuditor *Auditor = nullptr; ///< Optional observer; not owned.

  // --- Observability (optional; all null when detached) ---------------------
  Observability *Obs = nullptr; ///< Not owned.
  Histogram *LoadLatencyHist = nullptr;
  Histogram *StoreLatencyHist = nullptr;
  Histogram *RmwLatencyHist = nullptr;
  Histogram *RegionLifetimeHist = nullptr;
  /// Per-line sharing profiler and per-core cycle accounting, cached from
  /// the bundle at attach time (hot-path pointers, one null check each).
  SharingProfiler *Prof = nullptr;
  CpiStack *Cpi = nullptr;
  /// RegionId -> Observability::Now at addRegion, for lifetime histograms.
  FlatMap<RegionId, Cycles> RegionAddedAt;
};

} // namespace warden

#endif // WARDEN_COHERENCE_COHERENCECONTROLLER_H
