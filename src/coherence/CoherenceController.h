//===- coherence/CoherenceController.h - Coherence engine -----*- C++ -*-===//
//
// Part of the WARDen reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The coherence engine, split into mechanism and policy. This class owns
/// everything physical about the simulated memory system — per-core
/// private caches, LLC slices, the directory storage, the region table,
/// first-touch page placement, latency/energy accounting, fault injection,
/// and the observability taps — and charges the protocol-independent parts
/// of every operation (hit latencies, the trip to the home slice, demand
/// histograms). The protocol-dependent parts — what a miss does, what an
/// eviction tells whom, what happens at region and synchronization
/// boundaries — are delegated to a CoherenceProtocol backend selected by
/// MachineConfig::Protocol through the registry in Protocol.h ("mesi",
/// "warden", "sisd"; see that header for the backend contract and
/// DESIGN.md "Protocol backends" for the architecture).
///
/// The timing scheduler calls access() for every demand reference,
/// addRegion()/removeRegion() for the runtime's WARD region instructions,
/// and syncAcquire()/syncRelease() at task synchronization boundaries; the
/// controller returns the end-to-end latency of each operation and
/// accumulates the event statistics the evaluation reports.
///
//===----------------------------------------------------------------------===//

#ifndef WARDEN_COHERENCE_COHERENCECONTROLLER_H
#define WARDEN_COHERENCE_COHERENCECONTROLLER_H

#include "src/coherence/CoherenceStats.h"
#include "src/coherence/Directory.h"
#include "src/coherence/PrivateCache.h"
#include "src/coherence/Protocol.h"
#include "src/coherence/RegionTable.h"
#include "src/machine/LatencyModel.h"
#include "src/machine/MachineConfig.h"
#include "src/mem/CacheArray.h"
#include "src/support/Rng.h"
#include "src/verify/FaultPlan.h"

#include <memory>
#include <vector>

namespace warden {

class Histogram;
class ProtocolAuditor;
class SharingProfiler;
class CpiStack;
class EventLog;
struct Observability;

/// The full simulated cache/coherence subsystem.
class CoherenceController {
public:
  /// \p Faults optionally injects deterministic failures (forced CAM
  /// exhaustion, randomized evictions, adversarial reconciliation, or a
  /// deliberate protocol mutation for auditor regression tests). The
  /// default plan injects nothing and leaves every path cycle-identical to
  /// the unfaulted simulator.
  explicit CoherenceController(const MachineConfig &Config,
                               const FaultPlan &Faults = FaultPlan());

  /// Attaches (or detaches, with nullptr) a protocol auditor observing
  /// every state transition. The auditor only reads through const
  /// interfaces, so attaching one never changes timing or statistics.
  void attachAuditor(ProtocolAuditor *NewAuditor) { Auditor = NewAuditor; }

  /// Attaches (or detaches, with nullptr) observability sinks: demand
  /// latency and WARD-region-lifetime histograms into the metric registry,
  /// instant trace events for reconciles, region overflows, and injected
  /// faults. Same contract as the auditor: recording only, cycle-identical
  /// either way. Timestamps come from Observability::Now, which the replay
  /// scheduler keeps at the acting core's clock.
  void attachObs(Observability *NewObs);

  /// Performs a demand access of \p Size bytes at \p Address by \p Core and
  /// returns its latency. Accesses spanning block boundaries are split and
  /// their latencies summed. Malformed requests (zero size, out-of-range
  /// core) are rejected — counted in RejectedAccesses — rather than relied
  /// on caller discipline.
  Cycles access(CoreId Core, Addr Address, unsigned Size, AccessType Type);

  /// Registers a WARD region (the "Add Region" instruction). Safe to call
  /// under protocols without region semantics, where it is a no-op. Returns
  /// the (small, fixed) instruction cost.
  Cycles addRegion(RegionId Id, Addr Start, Addr End);

  /// Removes a WARD region and reconciles its blocks (the "Remove Region"
  /// instruction). Returns the reconciliation cost charged to the
  /// unmarking core \p Remover.
  Cycles removeRegion(RegionId Id, CoreId Remover);

  /// Synchronization-point hooks (see CoherenceProtocol::syncAcquire):
  /// the replay scheduler calls these at task boundaries; lazy protocols
  /// (SISD) pay their self-invalidation/self-downgrade work here, eager
  /// ones return 0 without touching any state.
  Cycles syncAcquire(CoreId Core) { return Backend->syncAcquire(Core); }
  Cycles syncRelease(CoreId Core) { return Backend->syncRelease(Core); }

  // --- Epoch-engine batched hit path ---------------------------------------
  /// Attempts to serve a single-block access as a private-cache hit,
  /// touching only \p Core's own arrays plus the caller's accumulators —
  /// the thread-safe kernel of the replayer's epoch workers (one worker
  /// per core, no two workers share a core). On success the latency is
  /// stored in \p Lat, counter deltas go to \p Delta, and true is
  /// returned. Returns false — leaving everything except cache recency
  /// unchanged — when the access misses, needs a Shared-store upgrade, or
  /// leaves \p Span's cached region interval; the caller then replays the
  /// access through the serial access() path, whose fresh probe re-stamps
  /// the same line (recency is idempotent: the line is already MRU).
  bool tryLocalHit(CoreId Core, Addr Block, unsigned Offset, unsigned Size,
                   AccessType Type, LocalHitCounters &Delta,
                   RegionTable::RegionSpan &Span, Cycles &Lat);

  /// Folds an epoch worker's hit deltas into the global stats. Called at
  /// the epoch barrier, serially, in fixed core order.
  void mergeLocalHits(const LocalHitCounters &Delta);

  /// True when the configuration lets the epoch engine harvest hit runs
  /// off the serial timeline: the backend declares private hits core-local
  /// and nothing is watching individual accesses (no auditor, no
  /// observability sinks, no armed fault plan).
  bool epochLocalHitsAllowed() const;

  /// End-of-run drain: writes every dirty private line back to its home
  /// LLC and every dirty LLC line back to DRAM, counting the traffic (no
  /// latency — this models the write-back work a longer execution would
  /// have paid through natural evictions, and keeps the cross-protocol
  /// energy comparison fair: WARDen prepays these write-backs at
  /// reconciliation, SISD at release points).
  void drainDirtyData();

  /// Pre-sizes the directory and page-home tables for a simulated footprint
  /// of \p Bytes, so the hot loop never pays a mid-run rehash. Purely a
  /// host-side optimization: an unreserved run is cycle-identical.
  void reserveFootprint(std::uint64_t Bytes);

  const CoherenceStats &stats() const { return Stats; }
  const MachineConfig &config() const { return Config; }
  const RegionTable &regionTable() const { return Regions; }
  const FaultPlan &faultPlan() const { return Faults; }
  /// The protocol backend serving this controller (for introspection; all
  /// mutation goes through the controller's own entry points).
  const CoherenceProtocol &protocol() const { return *Backend; }

  /// Test/auditor hooks: inspect a block's directory entry, a core's
  /// private line, or iterate the full structures (const-only, so
  /// observers cannot disturb LRU state).
  const DirEntry *directoryEntry(Addr Block) const;
  const CacheLine *privateLine(CoreId Core, Addr Block) const;
  const Directory &directory() const { return Dir; }
  const PrivateCache &privateCache(CoreId Core) const { return Private[Core]; }

private:
  /// Backends reach the members below through the protected accessors
  /// declared on CoherenceProtocol (defined inline at the bottom of this
  /// header). Friendship is granted to the base class only; concrete
  /// backends get exactly the surface those accessors expose.
  friend class CoherenceProtocol;

  // --- Demand paths -------------------------------------------------------
  Cycles accessBlock(CoreId Core, Addr Block, unsigned Offset, unsigned Size,
                     AccessType Type);
  /// Charges the trip to the home slice, then delegates the protocol's
  /// serving actions to the backend.
  Cycles missPath(CoreId Core, Addr Block, AccessType Type);

  // --- Helpers -------------------------------------------------------------
  /// Serves data from the home LLC slice, fetching from DRAM on a data-array
  /// miss. Returns additional latency beyond the already-charged LLC trip.
  Cycles llcData(Addr Block, SocketId Home);
  /// Writes a block's data back into the home LLC data array (dirty).
  void writebackToLlc(Addr Block, SocketId Home);
  /// Fills \p Block into \p Core's private cache, routing the victim (if
  /// any) through handleEviction.
  void fillPrivate(CoreId Core, Addr Block, LineState State);
  /// Handles a private-cache victim: counts it, delegates the protocol
  /// work, and notifies the auditor.
  void handleEviction(CoreId Core, const EvictedLine &Victim);

  /// First-touch page placement: the home of a page is the socket of the
  /// first core to access it; later accesses look the placement up.
  SocketId homeOf(Addr Block, CoreId Requester);
  /// Home of an already-touched block (no placement side effect).
  SocketId homeOfExisting(Addr Block) const;

  void noteMsg(SocketId From, SocketId To);
  void noteData(SocketId From, SocketId To);

  // --- Fault injection ------------------------------------------------------
  /// Applies the fault plan after a demand access by \p Core to \p Block.
  /// The RNG draws happen here, protocol-independently, so fault streams
  /// are identical across backends.
  void injectFaults(CoreId Core, Addr Block);
  /// Evicts one random valid line of \p Core through the normal path.
  void injectEviction(CoreId Core);

  MachineConfig Config;
  LatencyModel Latency;
  CoherenceStats Stats;
  RegionTable Regions;
  std::vector<PrivateCache> Private; ///< One per core.
  std::vector<CacheArray> Llc;       ///< One slice per socket.
  Directory Dir;
  /// Page (4 KB) -> home socket, assigned at first touch.
  FlatMap<Addr, SocketId> PageHome;

  FaultPlan Faults;
  /// Cached "any per-access fault draws needed" flag, hoisted out of the
  /// access hot loop (the plan is immutable after construction).
  bool FaultsArmed = false;
  Rng FaultRng;             ///< Private stream; replayable from Faults.Seed.
  ProtocolAuditor *Auditor = nullptr; ///< Optional observer; not owned.

  // --- Observability (optional; all null when detached) ---------------------
  Observability *Obs = nullptr; ///< Not owned.
  Histogram *LoadLatencyHist = nullptr;
  Histogram *StoreLatencyHist = nullptr;
  Histogram *RmwLatencyHist = nullptr;
  Histogram *RegionLifetimeHist = nullptr;
  /// Per-line sharing profiler and per-core cycle accounting, cached from
  /// the bundle at attach time (hot-path pointers, one null check each).
  SharingProfiler *Prof = nullptr;
  CpiStack *Cpi = nullptr;
  /// Streaming binary event log, cached from the bundle like the profiler.
  EventLog *Evl = nullptr;
  /// RegionId -> Observability::Now at addRegion, for lifetime histograms.
  FlatMap<RegionId, Cycles> RegionAddedAt;
  /// Premature-eviction attribution (recording only; maintained only while
  /// a profiler or event log is attached, so detached runs pay nothing):
  /// block -> cores whose copy was displaced by a capacity eviction and
  /// not yet re-demanded. A demand miss by a marked core is a premature
  /// eviction — the replacement policy victimized a line the core still
  /// needed — reported through SharingProfiler::onPrematureMiss and
  /// EvKind::PrematureMiss. Deliberately NOT a CoherenceStats counter:
  /// stats must stay identical between attached and detached runs.
  FlatMap<Addr, CoreMask> EvictedBy;
  bool TrackPremature = false;

  /// The policy. Constructed last (from the registry, keyed by
  /// Config.Protocol) and declared last so it is destroyed before anything
  /// it references.
  std::unique_ptr<CoherenceProtocol> Backend;
};

//===----------------------------------------------------------------------===//
// CoherenceProtocol accessor forwarders
//===----------------------------------------------------------------------===//
//
// Declared in Protocol.h, defined here where CoherenceController is
// complete. Backends include this header, so every forwarder inlines to a
// direct member access.

inline const MachineConfig &CoherenceProtocol::config() const {
  return C.Config;
}
inline const LatencyModel &CoherenceProtocol::latency() const {
  return C.Latency;
}
inline CoherenceStats &CoherenceProtocol::stats() { return C.Stats; }
inline const RegionTable &CoherenceProtocol::regions() const {
  return C.Regions;
}
inline PrivateCache &CoherenceProtocol::priv(CoreId Core) {
  return C.Private[Core];
}
inline Directory &CoherenceProtocol::dir() { return C.Dir; }
inline ProtocolAuditor *CoherenceProtocol::auditor() { return C.Auditor; }
inline SharingProfiler *CoherenceProtocol::profiler() { return C.Prof; }
inline CpiStack *CoherenceProtocol::cpi() { return C.Cpi; }
inline EventLog *CoherenceProtocol::eventLog() { return C.Evl; }
inline Observability *CoherenceProtocol::observability() { return C.Obs; }
inline const FaultPlan &CoherenceProtocol::faults() const { return C.Faults; }
inline Cycles CoherenceProtocol::llcData(Addr Block, SocketId Home) {
  return C.llcData(Block, Home);
}
inline void CoherenceProtocol::writebackToLlc(Addr Block, SocketId Home) {
  C.writebackToLlc(Block, Home);
}
inline void CoherenceProtocol::fillPrivate(CoreId Core, Addr Block,
                                           LineState State) {
  C.fillPrivate(Core, Block, State);
}
inline SocketId CoherenceProtocol::homeOf(Addr Block, CoreId Requester) {
  return C.homeOf(Block, Requester);
}
inline SocketId CoherenceProtocol::homeOfExisting(Addr Block) const {
  return C.homeOfExisting(Block);
}
inline void CoherenceProtocol::noteMsg(SocketId From, SocketId To) {
  C.noteMsg(From, To);
}
inline void CoherenceProtocol::noteData(SocketId From, SocketId To) {
  C.noteData(From, To);
}

} // namespace warden

#endif // WARDEN_COHERENCE_COHERENCECONTROLLER_H
