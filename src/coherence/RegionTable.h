//===- coherence/RegionTable.h - Active WARD region tracking --*- C++ -*-===//
//
// Part of the WARDen reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Tracks the active WARD regions known to the directory. Section 6.1
/// models the hardware as CAM-like storage of (begin, end) pointer pairs —
/// 16 bytes per region, sized for 1024 simultaneous regions at <0.05% area.
/// This software model enforces the same capacity: adds beyond capacity are
/// rejected (the region simply is not tracked, which is always safe — its
/// blocks stay under plain MESI) and counted as overflows.
///
/// Lookups run on the critical path of every simulated access (both
/// protocols consult the table for the coverage statistic), so the table is
/// a sorted interval vector — binary search over contiguous 24-byte entries
/// instead of a node-based std::map walk — fronted by a one-entry MRU
/// interval cache. Fork-join traces repeat-touch the same region (or the
/// same gap between regions) in long runs, so the cache answers most
/// lookups with two comparisons; add/remove invalidate it. The hardware CAM
/// performs the same comparison in parallel across entries.
///
//===----------------------------------------------------------------------===//

#ifndef WARDEN_COHERENCE_REGIONTABLE_H
#define WARDEN_COHERENCE_REGIONTABLE_H

#include "src/support/FlatMap.h"
#include "src/support/Types.h"

#include <optional>
#include <vector>

namespace warden {

class Counter;
class Gauge;
class MetricRegistry;

/// A half-open address interval with the WARD property.
struct WardRegion {
  Addr Start = 0;
  Addr End = 0; ///< Exclusive.

  bool contains(Addr Address) const { return Address >= Start && Address < End; }
  std::uint64_t size() const { return End - Start; }
};

/// Bounded table of active WARD regions.
class RegionTable {
public:
  /// Outcome of an add(). Everything except Added means "not tracked",
  /// which is always safe: the region's blocks simply stay under MESI.
  enum class AddResult {
    Added,       ///< Region is now tracked.
    Full,        ///< CAM capacity exhausted (the Section 6.1 overflow case).
    Overlap,     ///< Interval overlaps an active region.
    BadInterval, ///< Empty or inverted interval.
    DuplicateId, ///< The id is already active.
  };

  explicit RegionTable(unsigned Capacity) : Capacity(Capacity) {}

  /// Attempts to start tracking region \p Id covering [Start, End).
  /// Rejections are reported, never asserted, so a hostile or buggy caller
  /// degrades to MESI instead of corrupting the table (overlaps never arise
  /// from the runtime, which marks disjoint heap pages; Section 6.1 notes
  /// hardware would simply treat the address as WARD, but the runtime
  /// contract here is stricter).
  AddResult add(RegionId Id, Addr Start, Addr End);

  /// Stops tracking region \p Id. Returns its interval, or std::nullopt if
  /// the region was never tracked (e.g. rejected by a full table).
  std::optional<WardRegion> remove(RegionId Id);

  /// Returns the id of the active region containing \p Address, or
  /// InvalidRegion.
  RegionId lookup(Addr Address) const;

  /// A resolved interval (an active region or the gap between two): every
  /// address in [Lo, Hi) maps to Id. Callers that batch lookups keep one of
  /// these as a private cache. Default-constructed spans cover nothing.
  struct RegionSpan {
    Addr Lo = 1;
    Addr Hi = 0; ///< Exclusive; empty when Lo > Hi.
    RegionId Id = InvalidRegion;

    bool covers(Addr Address) const { return Address >= Lo && Address < Hi; }
  };

  /// lookup() without the shared MRU cache: resolves \p Address and fills
  /// \p Span with the whole surrounding interval (region or gap). Touches
  /// no mutable state, so concurrent readers are safe while the table is
  /// not being modified; epoch workers rely on exactly that (region ops
  /// are epoch boundaries, freezing the table within an epoch).
  RegionId lookupSpan(Addr Address, RegionSpan &Span) const;

  /// Returns the interval of active region \p Id, or std::nullopt.
  std::optional<WardRegion> get(RegionId Id) const;

  unsigned size() const { return static_cast<unsigned>(ByStart.size()); }
  unsigned capacity() const { return Capacity; }
  bool full() const { return size() >= Capacity; }

  /// High-water mark of simultaneously active regions, for sizing studies.
  unsigned peakOccupancy() const { return Peak; }

  /// Attaches (or with nullptr detaches) a metric registry; the table then
  /// maintains an occupancy gauge and an overflow counter. Pure recording —
  /// attached and detached tables behave identically.
  void attachMetrics(MetricRegistry *Registry);

private:
  /// One active region; kept sorted by Start in ByStart.
  struct Interval {
    Addr Start;
    Addr End;
    RegionId Id;
  };

  /// Index of the first ByStart entry with Start > Address.
  std::size_t upperBound(Addr Address) const;

  /// Caches the answer for every address in [Lo, Hi): Id when that is an
  /// active region's interval, InvalidRegion when it is the gap between two
  /// regions. Misses are cacheable too because the table is sorted — the
  /// surrounding gap is known the moment the binary search fails. The
  /// previous front entry is demoted to the second slot, so workloads that
  /// alternate between two intervals (a region and its neighbouring gap —
  /// the data/deque pattern of every fork-join trace) stay cached.
  void fillMru(Addr Lo, Addr Hi, RegionId Id) const {
    Mru[1] = Mru[0];
    Mru[0] = {Lo, Hi, Id};
  }
  void invalidateMru() const {
    Mru[0] = RegionSpan();
    Mru[1] = RegionSpan();
  }

  unsigned Capacity;
  unsigned Peak = 0;
  Gauge *OccupancyGauge = nullptr; ///< Not owned; null when detached.
  Counter *OverflowCounter = nullptr;
  /// Active regions sorted by Start; non-overlapping intervals.
  std::vector<Interval> ByStart;
  FlatMap<RegionId, Addr> ById; ///< Id -> start address.
  /// Two-entry MRU cache of the last intervals (regions or gaps) lookups
  /// resolved; Mru[0] is the most recent. Both empty when invalidated.
  mutable RegionSpan Mru[2];
};

} // namespace warden

#endif // WARDEN_COHERENCE_REGIONTABLE_H
