//===- coherence/PrivateCache.cpp - Per-core L1+L2 hierarchy --------------===//
//
// Part of the WARDen reproduction project.
//
//===----------------------------------------------------------------------===//

#include "src/coherence/PrivateCache.h"

#include "src/obs/MetricRegistry.h"

#include <cassert>

using namespace warden;

PrivateCache::PrivateCache(const CacheGeometry &L1Geometry,
                           const CacheGeometry &L2Geometry,
                           std::string_view Replacement)
    : L1(L1Geometry, Replacement), L2(L2Geometry, Replacement) {}

void PrivateCache::setReplacementRegionProbe(
    const RegionMembershipProbe &Probe) {
  L1.replacementPolicy().setRegionProbe(Probe);
  L2.replacementPolicy().setRegionProbe(Probe);
}

void PrivateCache::attachMetrics(MetricRegistry *Registry) {
  FillCounter =
      Registry ? &Registry->counter("cache.private_fills") : nullptr;
  EvictionCounter =
      Registry ? &Registry->counter("cache.private_evictions") : nullptr;
}

unsigned PrivateCache::hitLevel(Addr Block) {
  return probeAccess(Block).Level;
}

PrivateCache::AccessHit PrivateCache::probeAccess(Addr Block) {
  if (L1.lookup(Block)) {
    // Keep the L2 copy's recency in step so inclusion victims are cold.
    // Inclusion guarantees the lookup hits; it is the authoritative line.
    CacheLine *Auth = L2.lookup(Block);
    return {1, Auth};
  }
  if (CacheLine *Auth = L2.lookup(Block)) {
    // Refill the L1; its victim is silently dropped (data remains in L2).
    if (!L1.probe(Block))
      L1.insert(Block, LineState::Shared);
    return {2, Auth};
  }
  return {0, nullptr};
}

CacheLine *PrivateCache::line(Addr Block) { return L2.probe(Block); }

const CacheLine *PrivateCache::line(Addr Block) const {
  return L2.probe(Block);
}

std::optional<EvictedLine> PrivateCache::fill(Addr Block, LineState State) {
  assert(!L2.probe(Block) && "filling an already-resident block");
  std::optional<EvictedLine> Victim = L2.insert(Block, State);
  if (Victim)
    L1.invalidate(Victim->Block); // Preserve inclusion.
  L1.insert(Block, LineState::Shared);
  if (FillCounter)
    FillCounter->add();
  if (Victim && EvictionCounter)
    EvictionCounter->add();
  return Victim;
}

std::optional<EvictedLine> PrivateCache::invalidate(Addr Block) {
  L1.invalidate(Block);
  return L2.invalidate(Block);
}

void PrivateCache::setState(Addr Block, LineState State) {
  CacheLine *Line = L2.probe(Block);
  assert(Line && "setState on absent block");
  Line->State = State;
  if (State != LineState::Modified && State != LineState::Ward)
    Line->Dirty.clear();
}
