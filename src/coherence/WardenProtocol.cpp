//===- coherence/WardenProtocol.cpp - MESI + WARD backend -----------------===//
//
// Part of the WARDen reproduction project.
//
//===----------------------------------------------------------------------===//

#include "src/coherence/WardenProtocol.h"

#include "src/coherence/CoherenceController.h"
#include "src/obs/ChromeTraceExporter.h"
#include "src/obs/EventLog.h"
#include "src/obs/Observability.h"
#include "src/obs/SharingProfiler.h"
#include "src/verify/ProtocolAuditor.h"

#include <cassert>

using namespace warden;

EpochInteractions WardenProtocol::epochInteractions() const {
  // Identical to MESI: WARD machinery engages only on misses, region
  // instructions, and evictions — hits (including Ward-state hits) touch
  // only the acting core's private arrays.
  EpochInteractions Decl;
  Decl.PrivateHitsAreLocal = true;
  Decl.SyncHooksAreFree = true;
  return Decl;
}

Cycles WardenProtocol::serveMiss(CoreId Core, Addr Block, AccessType Type) {
  DirEntry &Entry = dir()[Block];
  RegionId Region = regions().lookup(Block);
  if (Region != InvalidRegion)
    return wardMiss(Core, Block, Type, Entry, Region);
  return serveMesiMiss(Core, Block, Type, Entry);
}

Cycles WardenProtocol::wardMiss(CoreId Core, Addr Block, AccessType Type,
                                DirEntry &Entry, RegionId Region) {
  ++stats().WardGrants;
  if (SharingProfiler *Prof = profiler())
    Prof->onWardGrant(Block, Core);
  if (Entry.State != DirState::Ward)
    enterWardState(Block, Entry, Region);

  SocketId Home = homeOf(Block, Core);
  Cycles Lat = 0;

  if (priv(Core).line(Block)) {
    // In-place upgrade: the core already holds a read copy inside the
    // region (possible when GetS does not return exclusive copies). The
    // directory grants write permission without touching anyone else.
    assert(Type != AccessType::Load && "load missed despite resident line");
    priv(Core).setState(Block, LineState::Ward);
    noteMsg(Home, config().socketOf(Core)); // Permission ack.
  } else {
    Lat += llcData(Block, Home);
    noteData(Home, config().socketOf(Core));
    LineState FillState =
        (Type == AccessType::Load && !config().Features.GetSReturnsExclusive)
            ? LineState::Shared
            : LineState::Ward;
    fillPrivate(Core, Block, FillState);
  }
  Entry.Sharers.set(Core);
  if (EventLog *Evl = eventLog())
    Evl->emit(observability()->Now, EvKind::WardGrant,
              static_cast<std::uint16_t>(Core), Block,
              static_cast<std::uint32_t>(Lat),
              static_cast<std::uint8_t>(Type));
  return Lat;
}

void WardenProtocol::enterWardState(Addr Block, DirEntry &Entry,
                                    RegionId Region) {
  switch (Entry.State) {
  case DirState::Invalid:
    Entry.Sharers.clearAll();
    break;
  case DirState::Shared:
    // Existing read copies become Ward members; they keep their data.
    Entry.Sharers.forEach([&](CoreId Sharer) {
      priv(Sharer).setState(Block, LineState::Ward);
    });
    break;
  case DirState::Exclusive:
  case DirState::Modified: {
    // The owner's copy (and its dirty bytes) become the first Ward member.
    CoreId Owner = Entry.Owner;
    CacheLine *Line = priv(Owner).line(Block);
    assert(Line && "directory owner without a resident line");
    Line->State = LineState::Ward;
    Entry.Sharers.clearAll();
    Entry.Sharers.set(Owner);
    break;
  }
  case DirState::Ward:
    assert(false && "re-entering Ward state");
    break;
  }
  Entry.State = DirState::Ward;
  Entry.Owner = InvalidCore;
  Entry.Region = Region;
}

void WardenProtocol::evictLine(CoreId Core, const EvictedLine &Victim) {
  if (Victim.State != LineState::Ward) {
    MesiProtocol::evictLine(Core, Victim);
    return;
  }
  // Eager reconciliation of the evicted copy (Section 5.3: eviction before
  // the region ends overlaps the reconciliation cost).
  SocketId Home = homeOfExisting(Victim.Block);
  SocketId CoreSocket = config().socketOf(Core);
  auto It = dir().find(Victim.Block);
  assert(It != dir().end() && "evicting a block the directory never saw");
  DirEntry &Entry = It.value();
  noteMsg(CoreSocket, Home);
  assert(Entry.State == DirState::Ward && "Ward line without W entry");
  if (Victim.Dirty.any()) {
    if (ProtocolAuditor *Auditor = auditor())
      Auditor->onWriteback(Core, Victim.Block, Victim.Dirty);
    writebackToLlc(Victim.Block, Home);
    noteData(CoreSocket, Home);
    ++stats().Writebacks;
    ++stats().ReconcileWritebacks;
  }
  Entry.Sharers.clear(Core);
}

Cycles WardenProtocol::regionAddCost() const {
  // The "Add Region" instruction itself (Section 6.1: two new instructions
  // with minimal impact). The baseline MESI binary does not execute it.
  return 2;
}

Cycles WardenProtocol::removeRegion(const WardRegion &Region, RegionId Id,
                                    CoreId Remover) {
  Observability *Obs = observability();
  if (Obs && Obs->Trace)
    Obs->Trace->instant("reconcile", Remover, Obs->Now);
  Cycles Cost = 2; // The "Remove Region" instruction.
  for (Addr Block = Region.Start; Block < Region.End;
       Block += config().BlockSize) {
    auto It = dir().find(Block);
    if (It == dir().end() || It.value().State != DirState::Ward)
      continue;
    Cost += reconcileBlock(Block, It.value());
  }
  if (ProtocolAuditor *Auditor = auditor())
    Auditor->onRegionRemoved(Id, Region.Start, Region.End);
  return Cost;
}

void WardenProtocol::forceReconcile(Addr Block) {
  // Adversarial mid-region reconciliation of the just-touched block. The
  // WARD property licenses reconciliation at any point; the next touch
  // simply re-enters the W state.
  auto It = dir().find(Block);
  if (It == dir().end() || It.value().State != DirState::Ward)
    return;
  ++stats().ForcedReconciles;
  Observability *Obs = observability();
  if (Obs && Obs->Trace)
    Obs->Trace->instant("fault: forced reconcile", Obs->Trace->directoryTid(),
                        Obs->Now);
  if (EventLog *Evl = eventLog())
    Evl->emit(Obs->Now, EvKind::ForcedReconcile, EventLog::DirectorySource,
              Block);
  reconcileBlock(Block, It.value());
}

Cycles WardenProtocol::reconcileBlock(Addr Block, DirEntry &Entry) {
  SocketId Home = homeOfExisting(Block);
  ++stats().ReconciledBlocks;
  unsigned Holders = Entry.Sharers.count();
  if (SharingProfiler *Prof = profiler())
    Prof->onReconcile(Block, Holders);
  if (EventLog *Evl = eventLog())
    Evl->emit(observability()->Now, EvKind::Reconcile,
              EventLog::DirectorySource, Block, Holders);

  if (Holders == 0) {
    // All copies were already evicted (and eagerly reconciled).
    Entry = DirEntry();
    if (ProtocolAuditor *Auditor = auditor())
      Auditor->onReconcileComplete(Block);
    return 0;
  }

  if (Holders == 1) {
    ++stats().SingleHolderReconciles;
    CoreId Holder = Entry.Sharers.first();
    CacheLine *Line = priv(Holder).line(Block);
    assert(Line && "tracked holder without a resident line");
    bool WasDirty = Line->Dirty.any();
    if (ProtocolAuditor *Auditor = auditor())
      Auditor->onWriteback(Holder, Block, Line->Dirty);
    if (config().Features.ProactiveForkFlush) {
      // Write dirty sectors back and downgrade the copy in place: the next
      // reader (often a freshly forked task on another core) hits the
      // shared cache instead of downgrading this private cache.
      if (WasDirty) {
        writebackToLlc(Block, Home);
        noteData(config().socketOf(Holder), Home);
        ++stats().ReconcileWritebacks;
      }
      priv(Holder).setState(Block, LineState::Shared);
      Entry.State = DirState::Shared;
      Entry.Owner = InvalidCore;
      Entry.Region = InvalidRegion;
    } else {
      // Paper Section 5.2's "no sharing" conversion: keep the private copy
      // and just restore a MESI state.
      priv(Holder).setState(Block, WasDirty ? LineState::Modified
                                            : LineState::Exclusive);
      Entry.State = WasDirty ? DirState::Modified : DirState::Exclusive;
      Entry.Owner = Holder;
      Entry.Sharers.clearAll();
      Entry.Region = InvalidRegion;
    }
    // A single-holder reconcile is an ordinary background write-back: the
    // directory repoints the state and the data drains off the critical
    // path, so no synchronous cost is charged (Section 6.1 measures the
    // reconciliation delay as trivial).
    if (ProtocolAuditor *Auditor = auditor())
      Auditor->onReconcileComplete(Block);
    return 0;
  }

  // Multiple holders: merge dirty sectors in directory arrival order (core
  // id order here; the WARD property licenses any order) and flush all
  // copies.
  SectorMask Merged;
  bool TrueSharing = false;
  Entry.Sharers.forEach([&](CoreId Holder) {
    CacheLine *Line = priv(Holder).line(Block);
    assert(Line && "tracked holder without a resident line");
    if (ProtocolAuditor *Auditor = auditor())
      Auditor->onWriteback(Holder, Block, Line->Dirty);
    if (Line->Dirty.any()) {
      if (Merged.overlaps(Line->Dirty))
        TrueSharing = true;
      Merged.merge(Line->Dirty);
      writebackToLlc(Block, Home);
      noteData(config().socketOf(Holder), Home);
      ++stats().ReconcileWritebacks;
    }
    priv(Holder).invalidate(Block);
    noteMsg(Home, config().socketOf(Holder));
    if (ProtocolAuditor *Auditor = auditor())
      Auditor->onInvalidate(Holder, Block);
  });
  if (TrueSharing)
    ++stats().TrueSharingReconciles;
  else
    ++stats().FalseSharingReconciles;
  Entry = DirEntry();
  if (ProtocolAuditor *Auditor = auditor())
    Auditor->onReconcileComplete(Block);
  return config().Features.ReconcileCostPerBlock;
}
