//===- verify/Explorer.h - Exhaustive interleaving explorer ---*- C++ -*-===//
//
// Part of the WARDen reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A bounded exhaustive state-space explorer for protocol backends. A
/// VerifyProgram is a tiny multithreaded program — one straight-line list
/// of loads, stores, synchronization operations, and region instructions
/// per simulated core, over two or three cache blocks. The explorer
/// enumerates *every* interleaving of the threads' operations by DFS,
/// executing each schedule against a fresh CoherenceController with the
/// ProtocolAuditor attached and sweeping the full invariant set (SWMR,
/// directory-cache agreement, shadow data values, ward/SISD soundness)
/// after every step.
///
/// Two schedules that reach the same logical state are explored once:
/// states are memoised under a canonical fingerprint combining the per-
/// thread program counters, the physical cache/directory/region state, the
/// backend's private state (racoh's logs, queues, and cursors), and the
/// auditor's shadow-value state with the path-dependent version counter
/// renamed to path-independent store identities (thread, pc).
/// Without the renaming, value-equal states reached by different store
/// orders would never merge and the search would degenerate to pure
/// schedule enumeration.
///
/// Observed loads (VerifyOp::Observe) are mapped to the identity of the
/// store they saw, and the set of outcome tuples over all interleavings is
/// returned next to the outcome set of a sequentially consistent reference
/// (the same DFS over an uncached atomic memory). Outcomes the protocol
/// exhibits beyond the SC set are exactly its weak behaviours — the litmus
/// harness (verify/Litmus.h) asserts them against each backend's declared
/// ConsistencyModel.
///
/// On an invariant violation the explorer shrinks the violating schedule
/// with the fuzzer's discipline — binary search for the shortest violating
/// prefix, then greedy single-step removal, every candidate replayed from
/// a fresh controller — and returns a minimal, replayable counterexample
/// trace that can be fed back through Explorer::replay() for diagnosis.
///
/// The per-root-step searches are independent, so explore() fans the
/// frontier across a JobPool when one is provided; results are merged in
/// root order and are byte-identical to the serial search.
///
//===----------------------------------------------------------------------===//

#ifndef WARDEN_VERIFY_EXPLORER_H
#define WARDEN_VERIFY_EXPLORER_H

#include "src/machine/MachineConfig.h"
#include "src/verify/FaultPlan.h"
#include "src/verify/ProtocolAuditor.h"

#include <optional>
#include <string>
#include <vector>

namespace warden {

class JobPool;

/// One operation of a verification program. Accesses must stay inside one
/// cache block (the explorer rejects block-spanning accesses up front so
/// every store maps to exactly one shadow version).
struct VerifyOp {
  enum class Kind : std::uint8_t {
    Load,        ///< Demand load of [Address, Address + Size).
    Store,       ///< Demand store to [Address, Address + Size).
    Acquire,     ///< Synchronization acquire (SISD/racoh invalidation).
    Release,     ///< Synchronization release (SISD/racoh self-downgrade).
    AddRegion,   ///< WARD "Add Region" over [Address, End).
    RemoveRegion ///< WARD "Remove Region" (by id, this thread unmarks).
  };

  Kind K = Kind::Load;
  Addr Address = 0;   ///< Load/Store byte address; AddRegion start.
  unsigned Size = 1;  ///< Load/Store size in bytes.
  Addr End = 0;       ///< AddRegion end (exclusive).
  RegionId Region = InvalidRegion; ///< AddRegion/RemoveRegion id.
  /// Loads only: include this load's observation in the outcome tuple.
  bool Observe = false;
};

/// Returns a printable mnemonic for \p Kind ("Ld", "St", "Acq", ...).
const char *verifyOpName(VerifyOp::Kind Kind);

/// A small multithreaded program: one straight-line operation list per
/// simulated core (thread i runs on core i).
struct VerifyProgram {
  std::string Name;
  std::vector<std::vector<VerifyOp>> Threads;

  unsigned threadCount() const {
    return static_cast<unsigned>(Threads.size());
  }
  std::size_t totalOps() const {
    std::size_t N = 0;
    for (const auto &Ops : Threads)
      N += Ops.size();
    return N;
  }
};

/// One concrete executed step of a counterexample trace: which thread ran
/// which of its operations. Keeping the op itself (not just an index)
/// makes the trace replayable standalone, even after shrinking removed
/// earlier operations of the same thread.
struct TraceStep {
  unsigned Thread = 0;
  unsigned Pc = 0; ///< The op's index in its thread's original list.
  VerifyOp Op;
};

/// A minimal replayable violation trace.
struct Counterexample {
  std::vector<TraceStep> Steps;
  /// Auditor verdict of replaying exactly Steps (violations + messages).
  std::uint64_t Violations = 0;
  std::vector<std::string> Messages;

  /// Human-readable multi-line rendering (one step per line + messages).
  std::string describe() const;
};

/// Search statistics, merged deterministically across JobPool workers.
struct ExplorerStats {
  std::uint64_t StatesVisited = 0;      ///< Distinct canonical states.
  std::uint64_t StatesDeduped = 0;      ///< Memo hits (subtrees skipped).
  std::uint64_t SchedulesCompleted = 0; ///< Full interleavings reaching the end.
  std::uint64_t StepsExecuted = 0;      ///< Operations executed, including replays.
  bool Truncated = false;               ///< A search budget was exhausted.

  void merge(const ExplorerStats &Other) {
    StatesVisited += Other.StatesVisited;
    StatesDeduped += Other.StatesDeduped;
    SchedulesCompleted += Other.SchedulesCompleted;
    StepsExecuted += Other.StepsExecuted;
    Truncated = Truncated || Other.Truncated;
  }
};

/// Explorer configuration.
struct ExplorerOptions {
  ProtocolKind Protocol = ProtocolKind::Mesi;
  /// Fault plan applied to every explored controller — this is how a
  /// deliberate ProtocolMutation is model-checked.
  FaultPlan Faults;
  /// Canonical-state budget per root step (first-move partition). The
  /// search marks the result truncated instead of running unbounded.
  std::uint64_t MaxStatesPerRoot = 1 << 18;
  /// Record observed-load outcome tuples (and the SC reference set).
  bool CollectOutcomes = true;
  /// Optional host pool: the root-step partitions fan out as independent
  /// jobs with deterministic merging. nullptr explores serially.
  JobPool *Pool = nullptr;
};

/// Complete outcome of exploring one program.
struct ExplorerResult {
  ExplorerStats Stats;
  /// The minimal counterexample, when any interleaving violated.
  std::optional<Counterexample> Violation;
  /// Sorted set of outcome tuples over all interleavings: the observed
  /// loads' store identities in (thread, pc) order, e.g. "t0.1,init".
  std::vector<std::string> Outcomes;
  /// Sorted outcome set of the sequentially consistent reference.
  std::vector<std::string> ScOutcomes;

  bool clean() const { return !Violation.has_value(); }
  /// Outcomes the protocol exhibits that no SC interleaving can — its
  /// weak behaviours on this program.
  std::vector<std::string> weakOutcomes() const;
};

/// The bounded exhaustive explorer. Construct with options, then explore
/// programs; each call is independent and deterministic.
class Explorer {
public:
  explicit Explorer(ExplorerOptions Options);

  /// Exhaustively explores every interleaving of \p Program. Throws
  /// std::invalid_argument for malformed programs (no threads, an access
  /// spanning blocks, a thread count the machine cannot host).
  ExplorerResult explore(const VerifyProgram &Program) const;

  /// Replays \p Steps exactly against a fresh controller + auditor for
  /// \p Threads simulated cores and returns the audit verdict — the
  /// diagnosis path for counterexample traces.
  AuditReport replay(const std::vector<TraceStep> &Steps,
                     unsigned Threads) const;

  /// The machine the explorer simulates for an \p Threads-thread program:
  /// one socket of exactly that many cores, default cache geometry. The
  /// racoh backend instead gets two sockets on two non-coherent nodes
  /// (threads split across them) with a tiny log queue, so the search
  /// covers cross-node publication and the back-pressure path.
  MachineConfig machineFor(unsigned Threads) const;

  const ExplorerOptions &options() const { return Options; }

private:
  ExplorerOptions Options;
};

} // namespace warden

#endif // WARDEN_VERIFY_EXPLORER_H
