//===- verify/Litmus.cpp - Litmus-test harness for consistency ------------===//
//
// Part of the WARDen reproduction project.
//
//===----------------------------------------------------------------------===//

#include "src/verify/Litmus.h"

#include "src/coherence/CoherenceController.h"
#include "src/support/Strings.h"

#include <algorithm>

using namespace warden;

namespace {

// The patterns run on a tiny two-block footprint. Addresses are block
// bases of the default 64-byte geometry so every access maps to one
// shadow version and the two variables never alias.
constexpr Addr X = 0x40;    ///< "data" / first variable.
constexpr Addr Y = 0x80;    ///< "flag" / second variable.

VerifyOp ld(Addr A, bool Observe = false) {
  VerifyOp Op;
  Op.K = VerifyOp::Kind::Load;
  Op.Address = A;
  Op.Observe = Observe;
  return Op;
}
VerifyOp st(Addr A) {
  VerifyOp Op;
  Op.K = VerifyOp::Kind::Store;
  Op.Address = A;
  return Op;
}
VerifyOp acq() {
  VerifyOp Op;
  Op.K = VerifyOp::Kind::Acquire;
  return Op;
}
VerifyOp rel() {
  VerifyOp Op;
  Op.K = VerifyOp::Kind::Release;
  return Op;
}

LitmusPattern make(std::string Name,
                   std::vector<std::vector<VerifyOp>> Threads) {
  LitmusPattern P;
  P.Program.Name = std::move(Name);
  P.Program.Threads = std::move(Threads);
  return P;
}

} // namespace

std::vector<LitmusPattern> warden::litmusSuite() {
  std::vector<LitmusPattern> Suite;

  // MP: message passing with the acquire edge. T0 publishes data (X) then
  // flag (Y), releasing after each; T1 warms a (potentially stale) copy of
  // X, reads the flag, acquires, and re-reads X. Seeing the new flag but
  // the initial data would mean the acquire failed to order the publish —
  // forbidden under SC *and* release-acquire. The warm load makes the
  // pattern racy, so lazily-invalidating backends genuinely depend on the
  // acquire's self-invalidation here.
  {
    LitmusPattern P = make(
        "mp", {{st(X), rel(), st(Y), rel()},
               {ld(X), ld(Y, true), acq(), ld(X, true)}});
    P.Forbidden = "t0.2,init";
    P.ForbiddenUnderRa = true;
    P.Note = "message passing; acquire must order flag read before data re-read";
    Suite.push_back(std::move(P));
  }

  // MP without the acquire: the stale warm copy of X is licensed to
  // survive, so a release-acquire backend must be able to show the stale
  // outcome — and an SC-for-DRF backend must still never show it.
  {
    LitmusPattern P = make(
        "mp_relaxed", {{st(X), rel(), st(Y), rel()},
                       {ld(X), ld(Y, true), ld(X, true)}});
    P.RequiredWeakUnderRa = "t0.2,init";
    P.Note = "message passing without acquire; stale data read is the "
             "lazy protocols' documented relaxation";
    Suite.push_back(std::move(P));
  }

  // SB fenced: store buffering with a full release+acquire fence between
  // each thread's store and load. Both threads reading the initial value
  // would mean both stores were still private after their releases.
  {
    LitmusPattern P = make(
        "sb", {{st(X), rel(), acq(), ld(Y, true)},
               {st(Y), rel(), acq(), ld(X, true)}});
    P.Forbidden = "init,init";
    P.ForbiddenUnderRa = true;
    P.Note = "store buffering with release+acquire fences; both-initial "
             "is forbidden";
    Suite.push_back(std::move(P));
  }

  // SB plain: no fences. Deferred (ward-style) stores legitimately leave
  // both loads reading the initial value under a release-acquire backend;
  // an SC-for-DRF backend must make each store globally visible at once.
  {
    LitmusPattern P = make(
        "sb_relaxed", {{st(X), ld(Y, true)}, {st(Y), ld(X, true)}});
    P.RequiredWeakUnderRa = "init,init";
    P.Note = "store buffering without fences; both-initial demonstrates "
             "deferred store visibility";
    Suite.push_back(std::move(P));
  }

  // LB: load buffering. Each thread loads one variable then stores the
  // other; both loads observing the *other thread's* store would need
  // values out of thin air. No operational backend can produce it — the
  // pattern guards against outcome-accounting bugs as much as protocol
  // bugs.
  {
    LitmusPattern P = make(
        "lb", {{ld(Y, true), st(X)}, {ld(X, true), st(Y)}});
    P.Forbidden = "t1.1,t0.1";
    P.ForbiddenUnderRa = true;
    P.Note = "load buffering; out-of-thin-air outcome is forbidden "
             "everywhere";
    Suite.push_back(std::move(P));
  }

  // CoRR: coherence read-read. T0 publishes X; T1 reads it twice with an
  // acquire between. Observing the new value then the initial one would
  // run coherence order backwards.
  {
    LitmusPattern P = make(
        "corr", {{st(X), rel()}, {ld(X, true), acq(), ld(X, true)}});
    P.Forbidden = "t0.0,init";
    P.ForbiddenUnderRa = true;
    P.Note = "coherence read-read; a later read may not travel backwards";
    Suite.push_back(std::move(P));
  }

  // CoWW: coherence write-write. T0 writes X twice and releases; T1 reads
  // X twice with an acquire between. Seeing the second write then the
  // first would reorder same-location writes.
  {
    LitmusPattern P = make(
        "coww", {{st(X), st(X), rel()}, {ld(X, true), acq(), ld(X, true)}});
    P.Forbidden = "t0.1,t0.0";
    P.ForbiddenUnderRa = true;
    P.Note = "coherence write-write; same-location writes stay ordered";
    Suite.push_back(std::move(P));
  }

  // DRF control: disjoint working sets, each thread reading its own
  // store back. There is exactly one SC outcome and *every* backend —
  // whatever its model — must produce exactly that.
  {
    LitmusPattern P = make(
        "drf_private", {{st(X), ld(X, true)}, {st(Y), ld(Y, true)}});
    P.Drf = true;
    P.Forbidden = "";
    P.Note = "data-race-free control; no weak outcome is tolerated under "
             "any model";
    Suite.push_back(std::move(P));
  }

  return Suite;
}

ConsistencyModel warden::declaredModel(ProtocolKind Kind) {
  MachineConfig Config = MachineConfig::singleSocket();
  Config.CoresPerSocket = 1;
  Config.Protocol = Kind;
  CoherenceController Throwaway(Config);
  return Throwaway.protocol().consistencyModel();
}

LitmusResult warden::runLitmus(const LitmusPattern &Pattern,
                               ProtocolKind Protocol, JobPool *Pool) {
  LitmusResult R;
  R.Pattern = Pattern.Program.Name;
  R.Protocol = Protocol;
  R.Model = declaredModel(Protocol);

  ExplorerOptions Options;
  Options.Protocol = Protocol;
  Options.Pool = Pool;
  Explorer E(Options);
  R.Exploration = E.explore(Pattern.Program);

  auto Fail = [&R](std::string Why) { R.Failures.push_back(std::move(Why)); };

  if (R.Exploration.Violation)
    Fail(strformat("invariant violation during exploration:\n%s",
                   R.Exploration.Violation->describe().c_str()));
  if (R.Exploration.Stats.Truncated)
    Fail("state budget exhausted; the verdict would not be exhaustive");

  const std::vector<std::string> &Outcomes = R.Exploration.Outcomes;
  auto Observed = [&Outcomes](const std::string &Outcome) {
    return std::find(Outcomes.begin(), Outcomes.end(), Outcome) !=
           Outcomes.end();
  };
  std::vector<std::string> Weak = R.Exploration.weakOutcomes();

  // An SC-for-DRF backend executes SC at operation granularity, so weak
  // outcomes are a contract breach on any program; a release-acquire
  // backend only owes SC on data-race-free programs.
  bool WeakForbidden =
      R.Model == ConsistencyModel::ScForDrf || Pattern.Drf;
  if (WeakForbidden && !Weak.empty())
    for (const std::string &Outcome : Weak)
      Fail(strformat("weak outcome '%s' observed under the %s contract",
                     Outcome.c_str(), consistencyModelName(R.Model)));

  if (!Pattern.Forbidden.empty()) {
    bool Binding =
        R.Model == ConsistencyModel::ScForDrf || Pattern.ForbiddenUnderRa;
    if (Binding && Observed(Pattern.Forbidden))
      Fail(strformat("forbidden outcome '%s' observed",
                     Pattern.Forbidden.c_str()));
  }

  if (R.Model == ConsistencyModel::ReleaseAcquire &&
      !Pattern.RequiredWeakUnderRa.empty() &&
      !Observed(Pattern.RequiredWeakUnderRa))
    Fail(strformat("relaxation not demonstrated: weak outcome '%s' was "
                   "never observed (backend stronger than declared?)",
                   Pattern.RequiredWeakUnderRa.c_str()));

  R.Passed = R.Failures.empty();
  return R;
}

std::vector<LitmusResult> warden::runLitmusSuite(ProtocolKind Protocol,
                                                 JobPool *Pool) {
  std::vector<LitmusResult> Results;
  for (const LitmusPattern &Pattern : litmusSuite())
    Results.push_back(runLitmus(Pattern, Protocol, Pool));
  return Results;
}
