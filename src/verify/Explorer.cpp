//===- verify/Explorer.cpp - Exhaustive interleaving explorer -------------===//
//
// Part of the WARDen reproduction project.
//
//===----------------------------------------------------------------------===//

#include "src/verify/Explorer.h"

#include "src/coherence/CoherenceController.h"
#include "src/support/JobPool.h"
#include "src/support/Strings.h"

#include <algorithm>
#include <cassert>
#include <map>
#include <set>
#include <stdexcept>

using namespace warden;

const char *warden::verifyOpName(VerifyOp::Kind Kind) {
  switch (Kind) {
  case VerifyOp::Kind::Load:
    return "Ld";
  case VerifyOp::Kind::Store:
    return "St";
  case VerifyOp::Kind::Acquire:
    return "Acq";
  case VerifyOp::Kind::Release:
    return "Rel";
  case VerifyOp::Kind::AddRegion:
    return "AddRegion";
  case VerifyOp::Kind::RemoveRegion:
    return "RemoveRegion";
  }
  return "?";
}

namespace {

//===----------------------------------------------------------------------===//
// Store identities and outcome formatting
//===----------------------------------------------------------------------===//
//
// The auditor's shadow versions are assigned in execution order, so the
// same store carries a different version on different schedules. Outcomes
// and canonical state fingerprints therefore rename every version to the
// path-independent identity of the store that produced it: (thread, pc),
// encoded as a nonzero tag. Tag 0 is the initial value.

std::uint64_t storeTag(unsigned Thread, unsigned Pc) {
  return (static_cast<std::uint64_t>(Thread) << 20 | Pc) + 1;
}

std::string tagName(std::uint64_t Tag) {
  if (Tag == 0)
    return "init";
  --Tag;
  return strformat("t%u.%u", static_cast<unsigned>(Tag >> 20),
                   static_cast<unsigned>(Tag & 0xfffff));
}

std::string formatOutcome(const std::vector<std::uint64_t> &Slots) {
  std::string Out;
  for (std::uint64_t Tag : Slots) {
    if (!Out.empty())
      Out += ",";
    Out += tagName(Tag);
  }
  return Out;
}

std::string formatStep(const TraceStep &Step) {
  const VerifyOp &Op = Step.Op;
  switch (Op.K) {
  case VerifyOp::Kind::Load:
  case VerifyOp::Kind::Store:
    return strformat("t%u.%u: %s 0x%llx+%u", Step.Thread, Step.Pc,
                     verifyOpName(Op.K),
                     static_cast<unsigned long long>(Op.Address), Op.Size);
  case VerifyOp::Kind::Acquire:
  case VerifyOp::Kind::Release:
    return strformat("t%u.%u: %s", Step.Thread, Step.Pc, verifyOpName(Op.K));
  case VerifyOp::Kind::AddRegion:
    return strformat("t%u.%u: AddRegion %u [0x%llx, 0x%llx)", Step.Thread,
                     Step.Pc, Op.Region,
                     static_cast<unsigned long long>(Op.Address),
                     static_cast<unsigned long long>(Op.End));
  case VerifyOp::Kind::RemoveRegion:
    return strformat("t%u.%u: RemoveRegion %u", Step.Thread, Step.Pc,
                     Op.Region);
  }
  return "?";
}

//===----------------------------------------------------------------------===//
// Hashing
//===----------------------------------------------------------------------===//

struct Fnv {
  std::uint64_t Hash = 0xcbf29ce484222325ULL;
  void mix(std::uint64_t Value) {
    for (unsigned I = 0; I < 8; ++I) {
      Hash ^= (Value >> (8 * I)) & 0xff;
      Hash *= 0x100000001b3ULL;
    }
  }
};

/// Fingerprint of the physical machine state a backend's decisions depend
/// on: every resident private line, every directory entry, and the
/// activation state of the program's regions. LLC data-array and LRU state
/// are deliberately excluded — at explorer scale (two or three blocks,
/// full-size caches) they influence latency only, never protocol behaviour.
std::uint64_t physicalFingerprint(const CoherenceController &Ctrl,
                                  const std::vector<RegionId> &RegionIds) {
  Fnv H;
  const MachineConfig &Config = Ctrl.config();
  for (CoreId Core = 0; Core < Config.totalCores(); ++Core) {
    std::vector<const CacheLine *> Lines;
    Ctrl.privateCache(Core).forEachValidLine(
        [&](const CacheLine &Line) { Lines.push_back(&Line); });
    std::sort(Lines.begin(), Lines.end(),
              [](const CacheLine *A, const CacheLine *B) {
                return A->Block < B->Block;
              });
    for (const CacheLine *Line : Lines) {
      H.mix(0x10 + Core);
      H.mix(Line->Block);
      H.mix(static_cast<std::uint64_t>(Line->State));
      H.mix(Line->Dirty.raw());
    }
  }
  std::vector<Addr> Blocks;
  Blocks.reserve(Ctrl.directory().size());
  for (const auto &[Block, Entry] : Ctrl.directory()) {
    (void)Entry;
    Blocks.push_back(Block);
  }
  std::sort(Blocks.begin(), Blocks.end());
  for (Addr Block : Blocks) {
    const DirEntry *Entry = Ctrl.directoryEntry(Block);
    H.mix(2);
    H.mix(Block);
    H.mix(static_cast<std::uint64_t>(Entry->State));
    H.mix(Entry->Owner);
    H.mix(Entry->Sharers.raw());
    H.mix(Entry->Region);
  }
  for (RegionId Id : RegionIds) {
    std::optional<WardRegion> Region = Ctrl.regionTable().get(Id);
    H.mix(3);
    H.mix(Id);
    H.mix(Region ? Region->Start : 0);
    H.mix(Region ? Region->End : 0);
    H.mix(Region.has_value());
  }
  return H.Hash;
}

//===----------------------------------------------------------------------===//
// Concrete execution
//===----------------------------------------------------------------------===//

/// A fresh simulated machine with the auditor attached.
struct Machine {
  CoherenceController Ctrl;
  ProtocolAuditor Auditor;

  Machine(const MachineConfig &Config, const FaultPlan &Faults)
      : Ctrl(Config, Faults), Auditor(Ctrl) {
    Ctrl.attachAuditor(&Auditor);
  }
};

/// Executes one operation on \p M as \p Thread. Returns false if the
/// machine reported any invariant violation afterwards (the caller stops).
bool executeOp(Machine &M, unsigned Thread, const VerifyOp &Op) {
  switch (Op.K) {
  case VerifyOp::Kind::Load:
    M.Ctrl.access(Thread, Op.Address, Op.Size, AccessType::Load);
    break;
  case VerifyOp::Kind::Store:
    M.Ctrl.access(Thread, Op.Address, Op.Size, AccessType::Store);
    break;
  case VerifyOp::Kind::Acquire:
    M.Ctrl.syncAcquire(Thread);
    break;
  case VerifyOp::Kind::Release:
    M.Ctrl.syncRelease(Thread);
    break;
  case VerifyOp::Kind::AddRegion:
    M.Ctrl.addRegion(Op.Region, Op.Address, Op.End);
    break;
  case VerifyOp::Kind::RemoveRegion:
    M.Ctrl.removeRegion(Op.Region, Thread);
    break;
  }
  // Full invariant sweep at every step: SWMR, directory-cache agreement,
  // data values (checked by the access itself), ward/SISD soundness.
  M.Auditor.checkAll("explorer step");
  return M.Auditor.report().Violations == 0;
}

/// The outcome of replaying one schedule prefix from a fresh machine.
struct Replay {
  std::unique_ptr<Machine> M;
  std::vector<unsigned> Pc;              ///< Per-thread progress.
  std::vector<std::uint64_t> VersionTag; ///< Shadow version -> store tag.
  std::vector<std::uint64_t> Slots;      ///< Observed-load tags (slot order).
  bool Violated = false;
};

/// Positions of the program's observed loads, in (thread, pc) order — the
/// fixed slot layout of every outcome tuple.
std::vector<std::pair<unsigned, unsigned>>
observedSlots(const VerifyProgram &Program) {
  std::vector<std::pair<unsigned, unsigned>> Slots;
  for (unsigned T = 0; T < Program.threadCount(); ++T)
    for (unsigned P = 0; P < Program.Threads[T].size(); ++P)
      if (Program.Threads[T][P].K == VerifyOp::Kind::Load &&
          Program.Threads[T][P].Observe)
        Slots.emplace_back(T, P);
  return Slots;
}

/// Replays \p Schedule (a sequence of thread choices) against a fresh
/// machine, maintaining the version->store-tag rename and the observed-load
/// slots. Stops at the first violating step (Replay::Violated).
Replay runSchedule(const MachineConfig &Config, const FaultPlan &Faults,
                   const VerifyProgram &Program,
                   const std::vector<std::pair<unsigned, unsigned>> &Slots,
                   const std::vector<unsigned> &Schedule) {
  Replay R;
  R.M = std::make_unique<Machine>(Config, Faults);
  R.Pc.assign(Program.threadCount(), 0);
  R.VersionTag.assign(1, 0);
  R.Slots.assign(Slots.size(), 0);
  for (unsigned Thread : Schedule) {
    unsigned Pc = R.Pc[Thread]++;
    const VerifyOp &Op = Program.Threads[Thread][Pc];
    bool Clean = executeOp(*R.M, Thread, Op);
    if (Op.K == VerifyOp::Kind::Store) {
      // Single-block stores consume exactly one shadow version; record the
      // store's path-independent identity for it.
      assert(R.M->Auditor.storeCount() == R.VersionTag.size() &&
             "store did not map to exactly one shadow version");
      R.VersionTag.push_back(storeTag(Thread, Pc));
    }
    if (Op.K == VerifyOp::Kind::Load && Op.Observe) {
      unsigned BlockSize = Config.BlockSize;
      Addr Block = Op.Address / BlockSize * BlockSize;
      unsigned Offset = static_cast<unsigned>(Op.Address % BlockSize);
      ShadowVersion Version =
          R.M->Auditor.observedVersion(Thread, Block, Offset);
      auto Slot = std::find(Slots.begin(), Slots.end(),
                            std::make_pair(Thread, Pc));
      assert(Slot != Slots.end() && "observed load missing from slot map");
      R.Slots[Slot - Slots.begin()] =
          Version < R.VersionTag.size() ? R.VersionTag[Version] : 0;
    }
    if (!Clean) {
      R.Violated = true;
      break;
    }
  }
  return R;
}

//===----------------------------------------------------------------------===//
// Counterexample shrinking (the fuzzer's discipline)
//===----------------------------------------------------------------------===//

AuditReport replayTrace(const MachineConfig &Config, const FaultPlan &Faults,
                        const std::vector<TraceStep> &Steps,
                        std::size_t Count) {
  Machine M(Config, Faults);
  for (std::size_t I = 0; I < Count; ++I)
    if (!executeOp(M, Steps[I].Thread, Steps[I].Op))
      break;
  return M.Auditor.report();
}

/// Shrinks a violating trace: binary search for the shortest violating
/// prefix, then greedy single-step removal to a local minimum. Every
/// candidate replays from a fresh machine, so the result is an exact,
/// standalone repro.
Counterexample shrinkTrace(const MachineConfig &Config,
                           const FaultPlan &Faults,
                           std::vector<TraceStep> Steps) {
  // Shortest violating prefix (violations are monotone: corrupted state
  // stays corrupted).
  std::size_t Lo = 1, Hi = Steps.size();
  while (Lo < Hi) {
    std::size_t Mid = Lo + (Hi - Lo) / 2;
    if (replayTrace(Config, Faults, Steps, Mid).Violations > 0)
      Hi = Mid;
    else
      Lo = Mid + 1;
  }
  Steps.resize(Lo);

  // Greedy removal until no single step can be dropped.
  bool Removed = true;
  while (Removed) {
    Removed = false;
    for (std::size_t I = 0; I < Steps.size(); ++I) {
      std::vector<TraceStep> Candidate = Steps;
      Candidate.erase(Candidate.begin() + I);
      if (!Candidate.empty() &&
          replayTrace(Config, Faults, Candidate, Candidate.size())
                  .Violations > 0) {
        Steps = std::move(Candidate);
        Removed = true;
        break;
      }
    }
  }

  Counterexample Ce;
  Ce.Steps = std::move(Steps);
  AuditReport Final =
      replayTrace(Config, Faults, Ce.Steps, Ce.Steps.size());
  Ce.Violations = Final.Violations;
  Ce.Messages = Final.Messages;
  return Ce;
}

//===----------------------------------------------------------------------===//
// The DFS over interleavings
//===----------------------------------------------------------------------===//

struct Search {
  const MachineConfig &Config;
  const FaultPlan &Faults;
  const VerifyProgram &Program;
  const std::vector<std::pair<unsigned, unsigned>> &Slots;
  const std::vector<RegionId> &RegionIds;
  std::uint64_t MaxStates;
  bool CollectOutcomes;

  std::set<std::pair<std::uint64_t, std::uint64_t>> Seen;
  ExplorerStats Stats;
  std::set<std::string> Outcomes;
  std::optional<std::vector<unsigned>> ViolatingSchedule;

  void dfs(std::vector<unsigned> &Schedule) {
    if (ViolatingSchedule || Stats.Truncated)
      return;
    // Re-execute the prefix from a fresh machine. The controller has no
    // state snapshot/restore; at explorer scale (a dozen operations) the
    // replay is cheaper than checkpointing would be.
    Replay R = runSchedule(Config, Faults, Program, Slots, Schedule);
    Stats.StepsExecuted += Schedule.size();
    if (R.Violated) {
      ViolatingSchedule = Schedule;
      return;
    }

    // Canonical-state memoisation: program counters, outcome slots so far,
    // physical machine state, the backend's private state (racoh's pending
    // logs, queues, and consumption cursors live outside the caches and
    // directory), and the shadow-value state under the store-identity
    // renaming. Two schedules reaching the same key have identical
    // futures, so the subtree is explored once.
    Fnv Key;
    for (unsigned Pc : R.Pc)
      Key.mix(Pc);
    for (std::uint64_t Tag : R.Slots)
      Key.mix(Tag);
    Key.mix(physicalFingerprint(R.M->Ctrl, RegionIds));
    Key.mix(R.M->Ctrl.protocol().stateFingerprint());
    std::uint64_t Shadow = R.M->Auditor.shadowFingerprint(R.VersionTag);
    if (!Seen.insert({Key.Hash, Shadow}).second) {
      ++Stats.StatesDeduped;
      return;
    }
    ++Stats.StatesVisited;
    if (Stats.StatesVisited > MaxStates) {
      Stats.Truncated = true;
      return;
    }

    bool Done = true;
    for (unsigned T = 0; T < Program.threadCount(); ++T) {
      if (R.Pc[T] >= Program.Threads[T].size())
        continue;
      Done = false;
      Schedule.push_back(T);
      dfs(Schedule);
      Schedule.pop_back();
    }
    if (Done) {
      ++Stats.SchedulesCompleted;
      if (CollectOutcomes)
        Outcomes.insert(formatOutcome(R.Slots));
    }
  }
};

//===----------------------------------------------------------------------===//
// The sequentially consistent reference
//===----------------------------------------------------------------------===//
//
// The same DFS over an uncached atomic memory: every store is immediately
// globally visible, every load reads the last store. Its outcome set is
// exactly the sequentially consistent outcomes of the program at operation
// granularity — the reference the protocol's outcomes are compared against
// (outcomes beyond this set are weak behaviours; a DRF program exhibiting
// one under an SC-for-DRF protocol is a serializability violation).

struct AbstractSearch {
  const VerifyProgram &Program;
  const std::vector<std::pair<unsigned, unsigned>> &Slots;

  std::map<Addr, std::uint64_t> Memory; ///< Byte address -> store tag.
  std::vector<unsigned> Pc;
  std::vector<std::uint64_t> SlotValues;
  std::set<std::uint64_t> Seen;
  std::set<std::string> Outcomes;

  void run() {
    Pc.assign(Program.threadCount(), 0);
    SlotValues.assign(Slots.size(), 0);
    dfs();
  }

  std::uint64_t stateHash() const {
    Fnv H;
    for (unsigned P : Pc)
      H.mix(P);
    for (std::uint64_t Tag : SlotValues)
      H.mix(Tag);
    for (const auto &[Address, Tag] : Memory) {
      H.mix(Address);
      H.mix(Tag);
    }
    return H.Hash;
  }

  void dfs() {
    if (!Seen.insert(stateHash()).second)
      return;
    bool Done = true;
    for (unsigned T = 0; T < Program.threadCount(); ++T) {
      if (Pc[T] >= Program.Threads[T].size())
        continue;
      Done = false;
      const VerifyOp &Op = Program.Threads[T][Pc[T]];
      unsigned MyPc = Pc[T];
      ++Pc[T];
      switch (Op.K) {
      case VerifyOp::Kind::Store: {
        std::vector<std::pair<Addr, std::uint64_t>> Undo;
        for (unsigned I = 0; I < Op.Size; ++I) {
          Addr A = Op.Address + I;
          auto It = Memory.find(A);
          Undo.emplace_back(A, It == Memory.end() ? 0 : It->second);
          Memory[A] = storeTag(T, MyPc);
        }
        dfs();
        for (const auto &[A, Old] : Undo)
          if (Old == 0)
            Memory.erase(A);
          else
            Memory[A] = Old;
        break;
      }
      case VerifyOp::Kind::Load: {
        std::uint64_t OldSlot = 0;
        std::size_t SlotIndex = Slots.size();
        if (Op.Observe) {
          auto Slot = std::find(Slots.begin(), Slots.end(),
                                std::make_pair(T, MyPc));
          SlotIndex = Slot - Slots.begin();
          OldSlot = SlotValues[SlotIndex];
          auto It = Memory.find(Op.Address);
          SlotValues[SlotIndex] = It == Memory.end() ? 0 : It->second;
        }
        dfs();
        if (SlotIndex < Slots.size())
          SlotValues[SlotIndex] = OldSlot;
        break;
      }
      case VerifyOp::Kind::Acquire:
      case VerifyOp::Kind::Release:
      case VerifyOp::Kind::AddRegion:
      case VerifyOp::Kind::RemoveRegion:
        // Synchronization and region instructions carry no data under
        // atomic memory.
        dfs();
        break;
      }
      --Pc[T];
    }
    if (Done)
      Outcomes.insert(formatOutcome(SlotValues));
  }
};

/// The region ids a program uses, sorted — the fixed region slice of every
/// physical fingerprint.
std::vector<RegionId> programRegionIds(const VerifyProgram &Program) {
  std::vector<RegionId> Ids;
  for (const auto &Ops : Program.Threads)
    for (const VerifyOp &Op : Ops)
      if (Op.K == VerifyOp::Kind::AddRegion ||
          Op.K == VerifyOp::Kind::RemoveRegion)
        Ids.push_back(Op.Region);
  std::sort(Ids.begin(), Ids.end());
  Ids.erase(std::unique(Ids.begin(), Ids.end()), Ids.end());
  return Ids;
}

void validateProgram(const VerifyProgram &Program, const MachineConfig &Config) {
  if (Program.Threads.empty())
    throw std::invalid_argument("explorer: program has no threads");
  if (Program.threadCount() > 8)
    throw std::invalid_argument(
        "explorer: more than 8 threads is outside the bounded-search regime");
  for (unsigned T = 0; T < Program.threadCount(); ++T)
    for (unsigned P = 0; P < Program.Threads[T].size(); ++P) {
      const VerifyOp &Op = Program.Threads[T][P];
      if (Op.K == VerifyOp::Kind::Load || Op.K == VerifyOp::Kind::Store) {
        if (Op.Size == 0)
          throw std::invalid_argument(
              strformat("explorer: t%u.%u has a zero-size access", T, P));
        if (Op.Address % Config.BlockSize + Op.Size > Config.BlockSize)
          throw std::invalid_argument(strformat(
              "explorer: t%u.%u spans a block boundary (stores must map to "
              "exactly one shadow version)",
              T, P));
      }
      if (Op.Observe && Op.K != VerifyOp::Kind::Load)
        throw std::invalid_argument(
            strformat("explorer: t%u.%u observes but is not a load", T, P));
      if (Op.K == VerifyOp::Kind::AddRegion && Op.End <= Op.Address)
        throw std::invalid_argument(
            strformat("explorer: t%u.%u adds an empty region", T, P));
    }
}

} // namespace

//===----------------------------------------------------------------------===//
// Public interface
//===----------------------------------------------------------------------===//

std::string Counterexample::describe() const {
  std::string Out = strformat("counterexample (%zu steps, %llu violations):",
                              Steps.size(),
                              static_cast<unsigned long long>(Violations));
  for (const TraceStep &Step : Steps) {
    Out += "\n  ";
    Out += formatStep(Step);
  }
  for (const std::string &Message : Messages) {
    Out += "\n  ! ";
    Out += Message;
  }
  return Out;
}

std::vector<std::string> ExplorerResult::weakOutcomes() const {
  std::vector<std::string> Weak;
  std::set_difference(Outcomes.begin(), Outcomes.end(), ScOutcomes.begin(),
                      ScOutcomes.end(), std::back_inserter(Weak));
  return Weak;
}

Explorer::Explorer(ExplorerOptions Options) : Options(std::move(Options)) {}

MachineConfig Explorer::machineFor(unsigned Threads) const {
  MachineConfig Config = MachineConfig::singleSocket();
  Config.CoresPerSocket = std::max(Threads, 1u);
  Config.Protocol = Options.Protocol;
  if (Options.Protocol == ProtocolKind::Racoh) {
    // Racoh's interesting behaviour is cross-node: split the threads over
    // two sockets on two non-coherent nodes, and shrink the log queue so
    // even explorer-scale programs drive the back-pressure path.
    Config.NumSockets = 2;
    Config.NumNodes = 2;
    Config.CoresPerSocket = std::max((Threads + 1) / 2, 1u);
    Config.NodeLogQueueCapacity = 2;
  }
  return Config;
}

AuditReport Explorer::replay(const std::vector<TraceStep> &Steps,
                             unsigned Threads) const {
  return replayTrace(machineFor(Threads), Options.Faults, Steps,
                     Steps.size());
}

ExplorerResult Explorer::explore(const VerifyProgram &Program) const {
  MachineConfig Config = machineFor(Program.threadCount());
  validateProgram(Program, Config);
  std::vector<std::pair<unsigned, unsigned>> Slots = observedSlots(Program);
  std::vector<RegionId> RegionIds = programRegionIds(Program);

  // The search partitions by first step: each non-empty thread roots an
  // independent subtree with its own machine replays and memo table, so
  // pooled and serial runs produce identical results by construction (the
  // merge below is in fixed root order).
  std::vector<unsigned> Roots;
  for (unsigned T = 0; T < Program.threadCount(); ++T)
    if (!Program.Threads[T].empty())
      Roots.push_back(T);

  ExplorerResult Result;
  if (Roots.empty()) {
    // Only the empty schedule exists.
    Result.Stats.SchedulesCompleted = 1;
    if (Options.CollectOutcomes) {
      Result.Outcomes.push_back(formatOutcome({}));
      Result.ScOutcomes = Result.Outcomes;
    }
    return Result;
  }

  struct RootResult {
    ExplorerStats Stats;
    std::set<std::string> Outcomes;
    std::optional<Counterexample> Violation;
  };
  std::vector<RootResult> Partials(Roots.size());

  auto RunRoot = [&](std::size_t I) {
    Search S{Config,
             Options.Faults,
             Program,
             Slots,
             RegionIds,
             Options.MaxStatesPerRoot,
             Options.CollectOutcomes,
             {},
             {},
             {},
             {}};
    std::vector<unsigned> Schedule{Roots[I]};
    S.dfs(Schedule);
    Partials[I].Stats = S.Stats;
    Partials[I].Outcomes = std::move(S.Outcomes);
    if (S.ViolatingSchedule) {
      // Materialise the violating schedule as a concrete trace, then
      // shrink it to a minimal standalone repro.
      std::vector<TraceStep> Steps;
      std::vector<unsigned> Pc(Program.threadCount(), 0);
      for (unsigned Thread : *S.ViolatingSchedule) {
        unsigned P = Pc[Thread]++;
        Steps.push_back({Thread, P, Program.Threads[Thread][P]});
      }
      Partials[I].Violation = shrinkTrace(Config, Options.Faults, Steps);
    }
  };

  if (Options.Pool && Roots.size() > 1) {
    std::vector<std::function<void()>> Tasks;
    Tasks.reserve(Roots.size());
    for (std::size_t I = 0; I < Roots.size(); ++I)
      Tasks.push_back([&RunRoot, I] { RunRoot(I); });
    Options.Pool->runAll(std::move(Tasks));
  } else {
    for (std::size_t I = 0; I < Roots.size(); ++I)
      RunRoot(I);
  }

  // Deterministic merge in root order.
  std::set<std::string> Outcomes;
  for (RootResult &Partial : Partials) {
    Result.Stats.merge(Partial.Stats);
    Outcomes.insert(Partial.Outcomes.begin(), Partial.Outcomes.end());
    if (!Result.Violation && Partial.Violation)
      Result.Violation = std::move(Partial.Violation);
  }
  Result.Outcomes.assign(Outcomes.begin(), Outcomes.end());

  if (Options.CollectOutcomes) {
    AbstractSearch Reference{Program, Slots, {}, {}, {}, {}, {}};
    Reference.run();
    Result.ScOutcomes.assign(Reference.Outcomes.begin(),
                             Reference.Outcomes.end());
  }
  return Result;
}
