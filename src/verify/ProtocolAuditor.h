//===- verify/ProtocolAuditor.h - Coherence invariant checking -*- C++ -*-===//
//
// Part of the WARDen reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// An always-on (when attached) observer that validates the coherence
/// protocol's global invariants during real runs — the machine-checked
/// counterpart to the example-level tests. The controller invokes the
/// auditor through a nullable pointer, so a disabled auditor costs one
/// branch per hook and a run without one is cycle-identical to a run of the
/// unaudited simulator.
///
/// Invariants checked (DESIGN.md "Verification & fault injection"):
///  1. SWMR: outside the W state, at most one core holds an E/M copy and
///     no read copy coexists with a writer.
///  2. Directory-cache agreement: the directory's owner/sharer view exactly
///     matches the live private-cache lines, state by state.
///  3. Data-value invariant: every load observes the last write the
///     protocol licenses, tracked through per-byte shadow versions that
///     follow data through fills, cache-to-cache transfers, write-backs,
///     and WARD reconciliation merges.
///  4. WARD soundness: W entries exist only under active regions, region
///     removal leaves no W residue, and only W-state copies carry
///     unreconciled dirty sectors.
///
/// Under the self-invalidation backends (SISD and racoh) the auditor
/// switches to the matching discipline (the protocols have no directory,
/// so invariants 1/2/4 are vacuous as stated): the directory must stay
/// untouched, private lines must be read-clean (Shared) or write-marked
/// (Ward), and a core leaving a release must hold only clean read copies.
/// The value invariant still verifies loads of never-written blocks; loads
/// of self-invalidation-managed (written) blocks are licensed to be stale
/// between synchronizations, exactly as W blocks are under WARDen. The two
/// backends differ at acquires: SISD must have invalidated everything,
/// while racoh keeps read copies its drained logs did not name — so every
/// survivor must agree byte-for-byte with the committed image, unless some
/// core still holds an unpublished (unreleased) write to the block. A
/// release that drops its log (--mutate=drop-log-publish) leaves remote
/// stale copies with no unpublished-write license, which this acquire
/// check reports.
///
/// Violations are recorded (bounded message list + count), never asserted:
/// the auditor's job is to *detect* corruption, the caller decides whether
/// to abort, shrink, or report.
///
//===----------------------------------------------------------------------===//

#ifndef WARDEN_VERIFY_PROTOCOLAUDITOR_H
#define WARDEN_VERIFY_PROTOCOLAUDITOR_H

#include "src/mem/SectorMask.h"
#include "src/mem/ShadowMemory.h"
#include "src/support/Types.h"

#include <array>
#include <string>
#include <unordered_map>
#include <vector>

namespace warden {

class CoherenceController;
struct DirEntry;

/// Aggregated outcome of one audited run, carried into RunResult.
struct AuditReport {
  bool Enabled = false;
  std::uint64_t ChecksRun = 0;     ///< Invariant check passes executed.
  std::uint64_t BlocksChecked = 0; ///< Block-level checks executed.
  std::uint64_t LoadsVerified = 0; ///< Loads checked for the value invariant.
  std::uint64_t Violations = 0;    ///< Total invariant violations.
  std::uint64_t WawOverlaps = 0;   ///< True-WAW sector overlaps observed (licensed).
  /// First violations, capped so a broken protocol cannot OOM the report.
  std::vector<std::string> Messages;

  bool clean() const { return Violations == 0; }
};

/// Auditor configuration.
struct AuditOptions {
  /// Check the touched block's invariants after every access/region op.
  bool CheckEveryAccess = true;
  /// Track per-byte shadow versions and verify every load's value.
  bool CheckValues = true;
  /// Run a full directory+cache sweep every N operations (0 disables the
  /// periodic sweep; targeted checks still run).
  std::uint64_t SweepInterval = 4096;
  /// Maximum violation messages retained.
  std::size_t MaxMessages = 16;
};

/// The protocol observer. Construct with the controller to watch, attach
/// via CoherenceController::attachAuditor(), and read report() at the end.
/// Only const controller interfaces are used, so an attached auditor never
/// perturbs LRU state, statistics, or timing.
class ProtocolAuditor {
public:
  explicit ProtocolAuditor(const CoherenceController &Controller,
                           AuditOptions Options = AuditOptions());

  // --- Event hooks (called by the controller) -----------------------------
  /// A private cache filled \p Block for \p Core; the shadow copy is taken
  /// from (shadow) memory, which the caller has brought up to date.
  void onFill(CoreId Core, Addr Block);
  /// \p Core's copy of \p Block left its private cache.
  void onInvalidate(CoreId Core, Addr Block);
  /// The bytes of \p Core's copy selected by \p Mask became visible in the
  /// shared LLC/DRAM image (write-back, reconcile merge, or the modelled
  /// equivalent of a cache-to-cache supply).
  void onWriteback(CoreId Core, Addr Block, const SectorMask &Mask);
  /// A store by \p Core to [Offset, Offset+Size) of \p Block completed.
  void onStore(CoreId Core, Addr Block, unsigned Offset, unsigned Size);
  /// A load by \p Core from [Offset, Offset+Size) of \p Block completed.
  void onLoad(CoreId Core, Addr Block, unsigned Offset, unsigned Size);
  /// A W block finished reconciling (region removal, eager eviction of the
  /// last copy, or forced reconciliation); its post-reconcile MESI state is
  /// now authoritative.
  void onReconcileComplete(Addr Block);
  /// A demand access / region operation touching \p Block completed.
  void onOperationComplete(Addr Block);
  /// Region \p Id over [Start, End) was removed; verifies no W residue.
  void onRegionRemoved(RegionId Id, Addr Start, Addr End);
  /// \p Core finished a synchronization acquire. SISD: verifies the
  /// self-invalidation left nothing resident. Racoh: verifies every
  /// surviving read copy is clean and agrees with the committed image
  /// (unless a core still holds an unpublished write to the block).
  void onSyncAcquire(CoreId Core);
  /// \p Core finished a synchronization release (SISD/racoh: verifies the
  /// self-downgrade left only clean read copies).
  void onSyncRelease(CoreId Core);

  // --- Checks -------------------------------------------------------------
  /// Checks invariants 1/2/4 for one block.
  void checkBlock(Addr Block);
  /// Sweeps every directory entry and every resident private line.
  void checkAll(const char *When);

  const AuditReport &report() const { return Report; }
  bool clean() const { return Report.clean(); }

  // --- Explorer support ---------------------------------------------------
  /// The write version a load by \p Core of \p Block's byte at \p Offset
  /// would observe right now: the resident private copy when one exists,
  /// otherwise the committed LLC/DRAM image a miss would fill from.
  /// 0 means "the initial value". The model-checking explorer reads this
  /// after every load step to map observations to store identities.
  ShadowVersion observedVersion(CoreId Core, Addr Block,
                                unsigned Offset) const;
  /// The version of the write the protocol licenses as globally last for
  /// \p Block's byte at \p Offset (0 = never written or still deferred).
  ShadowVersion expectedVersion(Addr Block, unsigned Offset) const {
    return Latest.byteVersion(Block, Offset);
  }
  /// Stores recorded so far; versions 1..storeCount() were assigned in
  /// execution order, one per onStore, which lets a replaying caller map
  /// versions back to the stores that produced them.
  ShadowVersion storeCount() const { return NextVersion; }
  /// Order-insensitive fingerprint of the entire shadow-value state
  /// (committed image, licensed-latest image, every private copy, pending
  /// ward writes). Each version is renamed through \p Rename (indexed by
  /// version; Rename[0] must be 0) so callers can substitute
  /// path-independent store identities for the path-dependent version
  /// counter — two executions reaching the same logical state then
  /// fingerprint identically. Versions beyond Rename hash as themselves.
  std::uint64_t shadowFingerprint(const std::vector<std::uint64_t> &Rename) const;

private:
  const DirEntry *entryOf(Addr Block) const;
  void violation(std::string Message);
  /// Directory-less counterpart of checkBlock (empty directory,
  /// S-clean-or-W lines), shared by the SISD and racoh disciplines.
  void checkBlockSisd(Addr Block);
  /// Message prefix naming the active self-invalidation discipline.
  const char *discipline() const { return Racoh ? "racoh" : "sisd"; }

  const CoherenceController &Controller;
  AuditOptions Options;
  AuditReport Report;
  /// True when the audited controller runs a self-invalidation backend
  /// (SISD or racoh); selects the directory-less invariant discipline
  /// throughout. Latched at construction so the MESI/WARDen paths are
  /// bit-for-bit those of the pre-SISD auditor.
  bool SelfInv = false;
  /// True for the racoh backend specifically: its acquires keep read
  /// copies the drained logs did not name, so the SISD no-residue check is
  /// replaced by the survivor value-agreement check.
  bool Racoh = false;

  // --- Shadow value state --------------------------------------------------
  ShadowVersion NextVersion = 0;
  /// Committed image: what the LLC/DRAM currently holds.
  ShadowMemory Mem;
  /// Expected image: the version each byte's licensed last write carries.
  ShadowMemory Latest;
  /// Per-core images of resident private copies.
  std::vector<ShadowMemory> PrivCopy;

  /// Per-block record of bytes written under the W state, pending
  /// reconciliation.
  struct WardWriteRecord {
    SectorMask Written;
    /// Core id + 1 of the byte's last ward writer; 0 = never ward-written.
    /// Distinct writers to one byte are a true-WAW overlap (licensed by the
    /// WARD property, but counted for the report).
    std::array<std::uint8_t, SectorMask::MaxBytes> LastWriter{};
  };
  std::unordered_map<Addr, WardWriteRecord> WardWritten;

  std::uint64_t OpCount = 0;
};

} // namespace warden

#endif // WARDEN_VERIFY_PROTOCOLAUDITOR_H
