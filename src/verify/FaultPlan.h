//===- verify/FaultPlan.h - Deterministic fault injection -----*- C++ -*-===//
//
// Part of the WARDen reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A deterministic fault-injection plan for the coherence controller. All
/// randomness is drawn from the controller's own SplitMix64 stream seeded
/// from the plan, so any failure an injected fault provokes replays exactly
/// from (plan, trace, scheduler seed).
///
/// Three fault families, mirroring the failure modes a production
/// deployment must survive:
///  * Resource exhaustion: force a tiny region-table CAM so real workloads
///    exercise the MESI-fallback path continuously.
///  * Capacity pressure: randomly evict private-cache lines after demand
///    accesses, driving the eager-reconciliation and refill paths at
///    adversarial points.
///  * Adversarial reconciliation: force W blocks to reconcile mid-region,
///    which the WARD property licenses at any time.
///
/// A fourth knob — ProtocolMutation — deliberately *breaks* the protocol
/// (e.g. skipping invalidations on GetM). It exists so tests can prove the
/// ProtocolAuditor actually detects incoherence; it is never enabled in a
/// correct run.
///
//===----------------------------------------------------------------------===//

#ifndef WARDEN_VERIFY_FAULTPLAN_H
#define WARDEN_VERIFY_FAULTPLAN_H

#include "src/support/Types.h"

#include <cstddef>
#include <cstdint>

namespace warden {

/// Deliberate protocol bugs for auditor regression tests.
enum class ProtocolMutation : std::uint8_t {
  None,
  /// GetM on a Shared block skips invalidating the other sharers: stale
  /// read copies survive next to a writer (breaks SWMR and data values).
  SkipInvalidationOnGetM,
  /// Fwd-GetS leaves the owner's copy in M/E while the directory moves to
  /// Shared (breaks directory-cache agreement).
  SkipDowngradeOnFwdGetS,
  /// A SISD synchronization acquire skips the self-invalidation pass:
  /// possibly-stale read copies survive into the acquired epoch (breaks
  /// the release-acquire contract; the classic bug class of lazy
  /// self-invalidation protocols).
  SkipAcquireInvalidation,
  /// A racoh release self-downgrades (data reaches the LLC) but silently
  /// discards its pending log instead of publishing it: no remote core
  /// ever learns the lines changed, so their stale copies survive every
  /// later acquire (the lost-publish bug class of log-based lazy
  /// protocols).
  DropLogPublish,
};

/// Returns a printable name for \p Mutation.
inline const char *mutationName(ProtocolMutation Mutation) {
  switch (Mutation) {
  case ProtocolMutation::None:
    return "none";
  case ProtocolMutation::SkipInvalidationOnGetM:
    return "skip-invalidation-on-getm";
  case ProtocolMutation::SkipDowngradeOnFwdGetS:
    return "skip-downgrade-on-fwd-gets";
  case ProtocolMutation::SkipAcquireInvalidation:
    return "skip-acquire-invalidation";
  case ProtocolMutation::DropLogPublish:
    return "drop-log-publish";
  }
  return "?";
}

/// Every deliberate mutation, in declaration order — what --mutate=
/// parsers and --list iterate so new mutations appear automatically.
inline const ProtocolMutation *allProtocolMutations(std::size_t &Count) {
  static const ProtocolMutation Mutations[] = {
      ProtocolMutation::SkipInvalidationOnGetM,
      ProtocolMutation::SkipDowngradeOnFwdGetS,
      ProtocolMutation::SkipAcquireInvalidation,
      ProtocolMutation::DropLogPublish,
  };
  Count = sizeof(Mutations) / sizeof(Mutations[0]);
  return Mutations;
}

/// Deterministic fault-injection configuration.
struct FaultPlan {
  /// Seed of the private SplitMix64 stream driving all injected faults.
  std::uint64_t Seed = 0xfa017ULL;

  /// Probability (per demand access) of evicting one random valid line
  /// from the accessing core's private cache through the normal eviction
  /// path. 0 disables.
  double EvictionRate = 0.0;

  /// Probability (per demand access to a W block) of force-reconciling
  /// that block immediately, mid-region. 0 disables.
  double ReconcileRate = 0.0;

  /// When >= 0, overrides MachineConfig::Features.RegionTableCapacity so
  /// tests can exhaust the CAM on demand (e.g. 0 forces every region onto
  /// the MESI-fallback path). -1 keeps the configured capacity.
  int RegionTableCapacity = -1;

  /// Deliberate protocol bug to inject (auditor regression tests only).
  ProtocolMutation Mutation = ProtocolMutation::None;

  /// True if any fault or mutation is configured.
  bool active() const {
    return EvictionRate > 0.0 || ReconcileRate > 0.0 ||
           RegionTableCapacity >= 0 || Mutation != ProtocolMutation::None;
  }
};

} // namespace warden

#endif // WARDEN_VERIFY_FAULTPLAN_H
