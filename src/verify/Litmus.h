//===- verify/Litmus.h - Litmus-test harness for consistency ---*- C++ -*-===//
//
// Part of the WARDen reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Classic memory-model litmus patterns encoded as explorer programs, and
/// a harness that asserts each protocol backend's behaviour against its
/// *declared* consistency contract (CoherenceProtocol::consistencyModel):
///
///  * SC-for-DRF backends (MESI, WARDen) execute sequentially consistently
///    at operation granularity — the explorer's outcome set must be a
///    subset of the SC reference's on *every* pattern, racy or not, and a
///    pattern's forbidden outcome must never appear.
///
///  * Release-acquire backends (SISD, racoh) may exhibit weak outcomes on racy
///    patterns (stale reads between synchronizations are the design), but
///    the release->acquire edges still order: forbidden outcomes of fenced
///    patterns must not appear, data-race-free patterns must stay SC, and
///    each *relaxed* pattern's documented weak outcome must actually be
///    observable — a relaxation the model checker cannot demonstrate is a
///    sign the backend is silently stronger (and slower) than designed.
///
/// The suite covers the standard shapes: message passing (MP) with and
/// without the acquire edge, store buffering (SB) fenced and plain, load
/// buffering (LB), coherence read-read (CoRR) and write-write (CoWW)
/// ordering, and a data-race-free control. See README.md for the table.
///
//===----------------------------------------------------------------------===//

#ifndef WARDEN_VERIFY_LITMUS_H
#define WARDEN_VERIFY_LITMUS_H

#include "src/verify/Explorer.h"

#include <string>
#include <vector>

namespace warden {

/// One litmus pattern: a program plus the contract it probes.
struct LitmusPattern {
  VerifyProgram Program;
  /// The pattern is data-race-free: weak outcomes are forbidden under
  /// every consistency model, not just SC-for-DRF.
  bool Drf = false;
  /// Outcome tuple that must never appear when the pattern's ordering
  /// guarantee holds (empty = none). See ForbiddenUnderRa for scope.
  std::string Forbidden;
  /// The forbidden outcome is ruled out by release-acquire ordering too
  /// (fenced patterns); when false it only binds SC-for-DRF backends.
  bool ForbiddenUnderRa = false;
  /// Weak outcome a release-acquire backend must be able to exhibit
  /// (empty = none). Asserted existentially for RA backends only; for
  /// SC-for-DRF backends the same outcome must of course stay absent.
  std::string RequiredWeakUnderRa;
  /// One-line description for reports.
  std::string Note;
};

/// The full built-in suite, in a fixed documented order.
std::vector<LitmusPattern> litmusSuite();

/// Verdict of one pattern under one backend.
struct LitmusResult {
  std::string Pattern;
  ProtocolKind Protocol = ProtocolKind::Mesi;
  ConsistencyModel Model = ConsistencyModel::ScForDrf;
  ExplorerResult Exploration;
  bool Passed = false;
  /// Human-readable reasons when !Passed (invariant violation, forbidden
  /// outcome observed, weak outcome under an SC contract, undemonstrated
  /// relaxation).
  std::vector<std::string> Failures;
};

/// Runs one pattern under \p Protocol and judges it against the backend's
/// declared consistency model. \p Pool optionally parallelizes the
/// exploration (results are identical either way).
LitmusResult runLitmus(const LitmusPattern &Pattern, ProtocolKind Protocol,
                       JobPool *Pool = nullptr);

/// Runs the whole suite under \p Protocol, in suite order.
std::vector<LitmusResult> runLitmusSuite(ProtocolKind Protocol,
                                         JobPool *Pool = nullptr);

/// The consistency model the registered backend for \p Kind declares
/// (instantiates the backend against a throwaway machine to ask it).
ConsistencyModel declaredModel(ProtocolKind Kind);

} // namespace warden

#endif // WARDEN_VERIFY_LITMUS_H
