//===- verify/ProtocolAuditor.cpp - Coherence invariant checking ----------===//
//
// Part of the WARDen reproduction project.
//
//===----------------------------------------------------------------------===//

#include "src/verify/ProtocolAuditor.h"

#include "src/coherence/CoherenceController.h"
#include "src/coherence/Protocol.h"
#include "src/support/Strings.h"

#include <algorithm>
#include <vector>

using namespace warden;

ProtocolAuditor::ProtocolAuditor(const CoherenceController &Controller,
                                 AuditOptions Options)
    : Controller(Controller), Options(Options),
      SelfInv(Controller.config().Protocol == ProtocolKind::Sisd ||
              Controller.config().Protocol == ProtocolKind::Racoh),
      Racoh(Controller.config().Protocol == ProtocolKind::Racoh),
      PrivCopy(Controller.config().totalCores()) {
  Report.Enabled = true;
}

const DirEntry *ProtocolAuditor::entryOf(Addr Block) const {
  return Controller.directoryEntry(Block);
}

void ProtocolAuditor::violation(std::string Message) {
  ++Report.Violations;
  if (Report.Messages.size() < Options.MaxMessages)
    Report.Messages.push_back(std::move(Message));
}

//===----------------------------------------------------------------------===//
// Shadow value tracking
//===----------------------------------------------------------------------===//
//
// The shadow model mirrors where each write's value currently lives without
// carrying real data through the timing model:
//
//  * Mem       — the committed LLC/DRAM image. Updated by onWriteback, which
//                the controller invokes for every write-back, reconcile merge,
//                and (as writeback-then-fill) cache-to-cache supply, always
//                *before* the dependent fill.
//  * PrivCopy  — one image per core of its resident copies. A fill snapshots
//                Mem; a store stamps a fresh version; an invalidation erases.
//  * Latest    — the version each byte's licensed last write carries. MESI
//                stores update it immediately (they are globally ordered);
//                ward stores defer to onReconcileComplete, because until
//                reconciliation the W state licenses stale copies.

void ProtocolAuditor::onFill(CoreId Core, Addr Block) {
  if (!Options.CheckValues)
    return;
  ShadowBlock &Copy = PrivCopy[Core].get(Block);
  if (const ShadowBlock *M = Mem.find(Block))
    Copy = *M;
  else
    Copy = ShadowBlock();
}

void ProtocolAuditor::onInvalidate(CoreId Core, Addr Block) {
  PrivCopy[Core].erase(Block);
}

void ProtocolAuditor::onWriteback(CoreId Core, Addr Block,
                                  const SectorMask &Mask) {
  if (!Options.CheckValues || !Mask.any())
    return;
  const ShadowBlock *Copy = PrivCopy[Core].find(Block);
  if (!Copy)
    return; // Copy predates the auditor's attachment; nothing to merge.
  Mem.get(Block).mergeMasked(*Copy, Mask);
}

void ProtocolAuditor::onStore(CoreId Core, Addr Block, unsigned Offset,
                              unsigned Size) {
  if (!Options.CheckValues)
    return;
  ShadowVersion Version = ++NextVersion;
  PrivCopy[Core].get(Block).write(Offset, Size, Version);

  // Under the self-invalidation backends (SISD/racoh) every store is
  // deferred exactly like a ward store: nothing orders it globally until a
  // release publishes it, so Latest must not advance. The same
  // WardWriteRecord gives the WAW overlap count.
  const DirEntry *Entry = SelfInv ? nullptr : entryOf(Block);
  if (SelfInv || (Entry && Entry->State == DirState::Ward)) {
    WardWriteRecord &Record = WardWritten[Block];
    bool Overlap = false;
    std::uint8_t Writer = static_cast<std::uint8_t>(Core + 1);
    for (unsigned I = 0; I < Size; ++I) {
      std::uint8_t &Last = Record.LastWriter[Offset + I];
      if (Last != 0 && Last != Writer)
        Overlap = true;
      Last = Writer;
    }
    Record.Written.markWritten(Offset, Size);
    if (Overlap)
      ++Report.WawOverlaps;
  } else {
    Latest.get(Block).write(Offset, Size, Version);
  }
}

void ProtocolAuditor::onLoad(CoreId Core, Addr Block, unsigned Offset,
                             unsigned Size) {
  if (!Options.CheckValues)
    return;
  if (SelfInv) {
    // Loads of ever-written blocks are licensed to observe stale values
    // between synchronizations (the protocol's whole point); never-written
    // blocks still verify below, keeping the invariant armed.
    if (WardWritten.count(Block))
      return;
  } else {
    const DirEntry *Entry = entryOf(Block);
    if (Entry && Entry->State == DirState::Ward)
      return; // Staleness is exactly what the W state licenses.
  }
  ++Report.LoadsVerified;
  const ShadowBlock *Copy = PrivCopy[Core].find(Block);
  const ShadowBlock *Want = Latest.find(Block);
  for (unsigned I = 0; I < Size; ++I) {
    ShadowVersion Observed = Copy ? Copy->Bytes[Offset + I] : 0;
    ShadowVersion Expected = Want ? Want->Bytes[Offset + I] : 0;
    if (Observed != Expected) {
      violation(strformat("data-value: core %u load of block 0x%llx byte %u "
                          "observed write #%llu, expected write #%llu",
                          Core, static_cast<unsigned long long>(Block),
                          Offset + I,
                          static_cast<unsigned long long>(Observed),
                          static_cast<unsigned long long>(Expected)));
      return; // One message per load suffices.
    }
  }
}

ShadowVersion ProtocolAuditor::observedVersion(CoreId Core, Addr Block,
                                               unsigned Offset) const {
  // Mirrors onLoad's observation rule, extended to the not-yet-resident
  // case: a miss fills from the committed image, so that is what the next
  // load would see.
  if (const ShadowBlock *Copy = PrivCopy[Core].find(Block))
    return Copy->Bytes[Offset];
  return Mem.byteVersion(Block, Offset);
}

std::uint64_t ProtocolAuditor::shadowFingerprint(
    const std::vector<std::uint64_t> &Rename) const {
  // FNV-1a over every image in canonical order. The explorer's state
  // memoisation keys on this, so the walk must be independent of
  // unordered_map layout: blocks are visited in sorted address order.
  std::uint64_t Hash = 0xcbf29ce484222325ULL;
  auto Mix = [&Hash](std::uint64_t Value) {
    for (unsigned I = 0; I < 8; ++I) {
      Hash ^= (Value >> (8 * I)) & 0xff;
      Hash *= 0x100000001b3ULL;
    }
  };
  auto Renamed = [&Rename](ShadowVersion Version) {
    return Version < Rename.size() ? Rename[Version] : Version;
  };
  auto MixMemory = [&](const ShadowMemory &Memory, std::uint64_t Tag) {
    std::vector<Addr> Blocks;
    Blocks.reserve(Memory.size());
    Memory.forEach([&](Addr Block, const ShadowBlock &) {
      Blocks.push_back(Block);
    });
    std::sort(Blocks.begin(), Blocks.end());
    for (Addr Block : Blocks) {
      const ShadowBlock *Image = Memory.find(Block);
      Mix(Tag);
      Mix(Block);
      for (ShadowVersion Version : Image->Bytes)
        Mix(Renamed(Version));
    }
  };
  MixMemory(Mem, 1);
  MixMemory(Latest, 2);
  for (std::size_t Core = 0; Core < PrivCopy.size(); ++Core)
    MixMemory(PrivCopy[Core], 0x100 + Core);
  std::vector<Addr> Pending;
  Pending.reserve(WardWritten.size());
  for (const auto &[Block, Record] : WardWritten) {
    (void)Record;
    Pending.push_back(Block);
  }
  std::sort(Pending.begin(), Pending.end());
  for (Addr Block : Pending) {
    const WardWriteRecord &Record = WardWritten.at(Block);
    Mix(3);
    Mix(Block);
    Mix(Record.Written.raw());
    for (std::uint8_t Writer : Record.LastWriter)
      Mix(Writer);
  }
  return Hash;
}

void ProtocolAuditor::onReconcileComplete(Addr Block) {
  auto It = WardWritten.find(Block);
  if (It == WardWritten.end())
    return;
  if (Options.CheckValues && It->second.Written.any()) {
    // Resolve Latest for the ward-written bytes. When a copy survives the
    // reconcile (the single-holder conversions keep it, as E/M owner or as
    // the lone Shared member), that copy is what subsequent reads of the
    // block observe — including reads of bytes another, already-evicted
    // writer reconciled to the LLC first. The WARD property licenses either
    // outcome; the shadow canonicalises on the surviving copy (re-aligning
    // Mem with it) so one licensed execution is checked consistently. With
    // no survivor, the LLC merge — applied in directory arrival order by
    // the onWriteback calls — is authoritative.
    const DirEntry *Entry = entryOf(Block);
    CoreId Survivor = InvalidCore;
    if (Entry) {
      if (Entry->State == DirState::Exclusive ||
          Entry->State == DirState::Modified)
        Survivor = Entry->Owner;
      else if (Entry->State == DirState::Shared && !Entry->Sharers.empty())
        Survivor = Entry->Sharers.first();
    }
    const ShadowBlock *Canon = nullptr;
    if (Survivor != InvalidCore)
      Canon = PrivCopy[Survivor].find(Block);
    if (!Canon)
      Canon = Mem.find(Block);
    if (Canon) {
      ShadowBlock Snapshot = *Canon; // Source may alias Mem's entry.
      Mem.get(Block).mergeMasked(Snapshot, It->second.Written);
      Latest.get(Block).mergeMasked(Snapshot, It->second.Written);
    }
  }
  WardWritten.erase(It);
}

void ProtocolAuditor::onOperationComplete(Addr Block) {
  ++OpCount;
  if (Options.CheckEveryAccess)
    checkBlock(Block);
  if (Options.SweepInterval != 0 && OpCount % Options.SweepInterval == 0)
    checkAll("periodic sweep");
}

void ProtocolAuditor::onRegionRemoved(RegionId Id, Addr Start, Addr End) {
  unsigned BlockSize = Controller.config().BlockSize;
  for (Addr Block = Start; Block < End; Block += BlockSize) {
    const DirEntry *Entry = entryOf(Block);
    if (Entry && Entry->State == DirState::Ward)
      violation(strformat(
          "ward-soundness: block 0x%llx still W after removal of region %u",
          static_cast<unsigned long long>(Block), Id));
    if (WardWritten.count(Block))
      violation(strformat("ward-soundness: unreconciled ward writes to block "
                          "0x%llx survived removal of region %u",
                          static_cast<unsigned long long>(Block), Id));
    if (Entry)
      checkBlock(Block);
  }
}

void ProtocolAuditor::onSyncAcquire(CoreId Core) {
  if (!Racoh) {
    std::size_t Resident = Controller.privateCache(Core).residentBlocks();
    if (Resident != 0)
      violation(strformat("sisd: core %u finished an acquire with %llu lines "
                          "still resident",
                          Core, static_cast<unsigned long long>(Resident)));
    return;
  }
  // Racoh acquires keep read copies the drained logs did not name. A
  // survivor is licensed only while it cannot have missed a published
  // write: it must be a clean read copy agreeing byte-for-byte with the
  // committed image, unless some core still holds an unpublished write to
  // the block (that write's staleness is licensed until its release
  // publishes the record this core will then consume). A release that
  // drops its log strands exactly this check: the stale copy survives with
  // neither agreement nor an unpublished-write license.
  Controller.privateCache(Core).forEachValidLine([&](const CacheLine &Line) {
    auto B = static_cast<unsigned long long>(Line.Block);
    if (Line.State == LineState::Ward)
      return; // The core's own unreleased writes survive by design.
    if (Line.State != LineState::Shared || Line.Dirty.any()) {
      violation(strformat("racoh: core %u finished an acquire but 0x%llx is "
                          "%s with %u dirty bytes",
                          Core, B, lineStateName(Line.State),
                          Line.Dirty.count()));
      return;
    }
    if (!Options.CheckValues)
      return;
    if (Controller.protocol().blockHasUnpublishedWrite(Line.Block))
      return;
    const ShadowBlock *Copy = PrivCopy[Core].find(Line.Block);
    if (!Copy)
      return; // Copy predates the auditor's attachment.
    for (unsigned I = 0; I < SectorMask::MaxBytes; ++I) {
      ShadowVersion Observed = Copy->Bytes[I];
      ShadowVersion Committed = Mem.byteVersion(Line.Block, I);
      if (Observed != Committed) {
        violation(strformat(
            "racoh: core %u finished an acquire but its surviving copy of "
            "0x%llx byte %u holds write #%llu, committed image has #%llu "
            "and no unpublished write licenses the staleness",
            Core, B, I, static_cast<unsigned long long>(Observed),
            static_cast<unsigned long long>(Committed)));
        return; // One message per survivor suffices.
      }
    }
  });
}

void ProtocolAuditor::onSyncRelease(CoreId Core) {
  Controller.privateCache(Core).forEachValidLine([&](const CacheLine &Line) {
    if (Line.State != LineState::Shared || Line.Dirty.any())
      violation(strformat("%s: core %u finished a release but 0x%llx is "
                          "%s with %u dirty bytes",
                          discipline(), Core,
                          static_cast<unsigned long long>(Line.Block),
                          lineStateName(Line.State), Line.Dirty.count()));
  });
}

//===----------------------------------------------------------------------===//
// State invariants
//===----------------------------------------------------------------------===//

void ProtocolAuditor::checkBlock(Addr Block) {
  if (SelfInv) {
    checkBlockSisd(Block);
    return;
  }
  ++Report.BlocksChecked;
  const MachineConfig &Config = Controller.config();
  const DirEntry *Entry = entryOf(Block);
  DirState State = Entry ? Entry->State : DirState::Invalid;
  auto B = static_cast<unsigned long long>(Block);

  unsigned Writers = 0;
  unsigned Readers = 0;
  for (CoreId Core = 0; Core < Config.totalCores(); ++Core) {
    const CacheLine *Line = Controller.privateLine(Core, Block);
    bool IsOwner = (State == DirState::Exclusive ||
                    State == DirState::Modified) &&
                   Entry->Owner == Core;
    bool IsMember =
        (State == DirState::Shared || State == DirState::Ward) &&
        Entry->Sharers.test(Core);
    if (!Line) {
      if (IsOwner)
        violation(strformat(
            "agreement: directory owner core %u holds no copy of 0x%llx",
            Core, B));
      else if (IsMember)
        violation(strformat("agreement: directory lists core %u for 0x%llx "
                            "(%s) but it holds no copy",
                            Core, B, dirStateName(State)));
      continue;
    }
    switch (Line->State) {
    case LineState::Shared:
      ++Readers;
      if (State != DirState::Shared && State != DirState::Ward)
        violation(strformat(
            "agreement: core %u holds an S copy of 0x%llx but the directory "
            "entry is %s",
            Core, B, dirStateName(State)));
      else if (!IsMember)
        violation(strformat("agreement: core %u holds an S copy of 0x%llx "
                            "but is not in the %s entry's member set",
                            Core, B, dirStateName(State)));
      if (Line->Dirty.any())
        violation(strformat("ward-soundness: S copy of 0x%llx at core %u "
                            "carries %u unreconciled dirty bytes",
                            B, Core, Line->Dirty.count()));
      break;
    case LineState::Exclusive:
      ++Writers;
      if (State != DirState::Exclusive || Entry->Owner != Core)
        violation(strformat(
            "agreement: core %u holds an E copy of 0x%llx but the directory "
            "entry is %s",
            Core, B, dirStateName(State)));
      if (Line->Dirty.any())
        violation(strformat("agreement: E copy of 0x%llx at core %u carries "
                            "dirty bytes without the silent M upgrade",
                            B, Core));
      break;
    case LineState::Modified:
      ++Writers;
      // The directory may still say Exclusive: the E->M upgrade is silent.
      if ((State != DirState::Modified && State != DirState::Exclusive) ||
          Entry->Owner != Core)
        violation(strformat(
            "agreement: core %u holds an M copy of 0x%llx but the directory "
            "entry is %s",
            Core, B, dirStateName(State)));
      break;
    case LineState::Ward:
      if (State != DirState::Ward)
        violation(strformat(
            "ward-soundness: core %u holds a W copy of 0x%llx but the "
            "directory entry is %s",
            Core, B, dirStateName(State)));
      else if (!IsMember)
        violation(strformat("agreement: core %u holds a W copy of 0x%llx "
                            "but is not in the W entry's member set",
                            Core, B));
      break;
    case LineState::Invalid:
      violation(strformat(
          "agreement: probe returned an invalid line for 0x%llx at core %u",
          B, Core));
      break;
    }
  }

  switch (State) {
  case DirState::Invalid:
    break;
  case DirState::Shared:
    if (Entry->Sharers.empty())
      violation(strformat(
          "agreement: S entry for 0x%llx with an empty sharer set", B));
    break;
  case DirState::Exclusive:
  case DirState::Modified:
    if (Entry->Owner == InvalidCore ||
        Entry->Owner >= Config.totalCores())
      violation(strformat("agreement: %s entry for 0x%llx without a valid "
                          "owner core",
                          dirStateName(State), B));
    if (!Entry->Sharers.empty())
      violation(strformat(
          "agreement: %s entry for 0x%llx carries a sharer set",
          dirStateName(State), B));
    break;
  case DirState::Ward: {
    RegionId Active = Controller.regionTable().lookup(Block);
    if (Active == InvalidRegion)
      violation(strformat(
          "ward-soundness: W entry for 0x%llx outside any active region", B));
    else if (Entry->Region != Active)
      violation(strformat("ward-soundness: W entry for 0x%llx names region "
                          "%u but the active region is %u",
                          B, Entry->Region, Active));
    break;
  }
  }

  if (State != DirState::Ward) {
    if (Writers > 1)
      violation(strformat(
          "swmr: %u simultaneous E/M copies of 0x%llx", Writers, B));
    else if (Writers == 1 && Readers > 0)
      violation(strformat(
          "swmr: an E/M copy of 0x%llx coexists with %u read copies", B,
          Readers));
  }
}

void ProtocolAuditor::checkBlockSisd(Addr Block) {
  ++Report.BlocksChecked;
  const MachineConfig &Config = Controller.config();
  auto B = static_cast<unsigned long long>(Block);

  // A directory-less protocol must leave the directory storage untouched:
  // an entry means some path still consulted the sharing vector.
  if (entryOf(Block))
    violation(strformat(
        "%s: directory entry materialized for 0x%llx", discipline(), B));

  for (CoreId Core = 0; Core < Config.totalCores(); ++Core) {
    const CacheLine *Line = Controller.privateLine(Core, Block);
    if (!Line)
      continue;
    switch (Line->State) {
    case LineState::Shared:
      if (Line->Dirty.any())
        violation(strformat("%s: read copy of 0x%llx at core %u carries "
                            "%u unpublished dirty bytes",
                            discipline(), B, Core, Line->Dirty.count()));
      break;
    case LineState::Ward:
      break; // Write-marked copy awaiting its release.
    case LineState::Exclusive:
    case LineState::Modified:
      violation(strformat(
          "%s: core %u holds a directory-granted %s copy of 0x%llx",
          discipline(), Core, lineStateName(Line->State), B));
      break;
    case LineState::Invalid:
      violation(strformat(
          "%s: probe returned an invalid line for 0x%llx at core %u",
          discipline(), B, Core));
      break;
    }
  }
}

void ProtocolAuditor::checkAll(const char *When) {
  if (SelfInv) {
    ++Report.ChecksRun;
    // Sweep every block any structure knows about, in address order (the
    // bounded message list must not depend on hash layout): directory
    // entries (each one is itself a violation) plus all resident lines.
    std::vector<Addr> Blocks;
    Blocks.reserve(Controller.directory().size());
    for (const auto &[Block, Entry] : Controller.directory()) {
      (void)Entry;
      Blocks.push_back(Block);
    }
    const MachineConfig &Config = Controller.config();
    for (CoreId Core = 0; Core < Config.totalCores(); ++Core)
      Controller.privateCache(Core).forEachValidLine(
          [&](const CacheLine &Line) { Blocks.push_back(Line.Block); });
    std::sort(Blocks.begin(), Blocks.end());
    Blocks.erase(std::unique(Blocks.begin(), Blocks.end()), Blocks.end());
    for (Addr Block : Blocks)
      checkBlockSisd(Block);
    (void)When;
    return;
  }
  ++Report.ChecksRun;
  // Sweep in address order, not table order: the first violations win the
  // bounded message list, so the report must not depend on hash layout.
  std::vector<Addr> Blocks;
  Blocks.reserve(Controller.directory().size());
  for (const auto &[Block, Entry] : Controller.directory()) {
    (void)Entry;
    Blocks.push_back(Block);
  }
  std::sort(Blocks.begin(), Blocks.end());
  for (Addr Block : Blocks)
    checkBlock(Block);
  // Every resident private line must be a block the directory tracks; the
  // loop above only visits directory entries.
  const MachineConfig &Config = Controller.config();
  for (CoreId Core = 0; Core < Config.totalCores(); ++Core)
    Controller.privateCache(Core).forEachValidLine([&](const CacheLine &Line) {
      if (!entryOf(Line.Block))
        violation(strformat("agreement: core %u holds 0x%llx (%s) at '%s' "
                            "but the directory never saw the block",
                            Core,
                            static_cast<unsigned long long>(Line.Block),
                            lineStateName(Line.State), When));
    });
}
