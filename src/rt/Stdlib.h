//===- rt/Stdlib.h - Parallel sequence primitives --------------*- C++ -*-===//
//
// Part of the WARDen reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The runtime's standard library of parallel sequence primitives —
/// tabulate, map, reduce, scan, filter — mirroring the MPL standard library
/// the paper relies on (Section 4.2: "MPL offers a standard library ... The
/// library code is implemented under-the-hood via efficient data structures
/// and algorithms, utilizing in-place updates where crucial"). The
/// write-destination discipline (WriteOnlyScope) lives *here*, inside the
/// library, so application code gets WARD coverage with zero annotations.
///
//===----------------------------------------------------------------------===//

#ifndef WARDEN_RT_STDLIB_H
#define WARDEN_RT_STDLIB_H

#include "src/rt/SimArray.h"

#include <cstdint>
#include <functional>

namespace warden {
namespace stdlib {

/// Default leaf granularity for the primitives below.
inline constexpr std::int64_t DefaultGrain = 64;

/// Builds a fresh array with Out[I] = Fn(I) in parallel. The destination is
/// freshly allocated and write-only during the fill, so its span stays
/// WARD-marked through the parallel section.
template <typename T, typename FnT>
SimArray<T> tabulate(Runtime &Rt, std::size_t Count, FnT Fn,
                     std::int64_t Grain = DefaultGrain) {
  SimArray<T> Out = Rt.allocArray<T>(Count);
  Runtime::WriteOnlyScope Scope(Rt, Out.addr(), Out.bytes());
  Rt.parallelFor(0, static_cast<std::int64_t>(Count), Grain,
                 [&](std::int64_t I) {
                   Out.set(static_cast<std::size_t>(I),
                           Fn(static_cast<std::size_t>(I)));
                 });
  return Out;
}

/// Builds Out[I] = Fn(In.get(I)) in parallel.
template <typename U, typename T, typename FnT>
SimArray<U> mapArray(Runtime &Rt, const SimArray<T> &In, FnT Fn,
                     std::int64_t Grain = DefaultGrain) {
  return tabulate<U>(
      Rt, In.size(), [&](std::size_t I) { return Fn(In.get(I)); }, Grain);
}

/// Divide-and-conquer reduction of Fn(Lo..Hi): LeafFn computes a leaf's
/// partial result; Combine merges two partials. Partials travel through the
/// fork frames the runtime already injects.
template <typename T, typename LeafFnT, typename CombineT>
T reduceRange(Runtime &Rt, std::int64_t Lo, std::int64_t Hi, LeafFnT LeafFn,
              CombineT Combine, std::int64_t Grain = DefaultGrain) {
  if (Hi - Lo <= Grain)
    return LeafFn(Lo, Hi);
  std::int64_t Mid = Lo + (Hi - Lo) / 2;
  T Left{};
  T Right{};
  Rt.fork2(
      [&] { Left = reduceRange<T>(Rt, Lo, Mid, LeafFn, Combine, Grain); },
      [&] { Right = reduceRange<T>(Rt, Mid, Hi, LeafFn, Combine, Grain); });
  return Combine(Left, Right);
}

/// Sum of In.get(I) over the array.
template <typename T>
T sum(Runtime &Rt, const SimArray<T> &In, std::int64_t Grain = DefaultGrain) {
  return reduceRange<T>(
      Rt, 0, static_cast<std::int64_t>(In.size()),
      [&](std::int64_t Lo, std::int64_t Hi) {
        T Acc{};
        for (std::int64_t I = Lo; I < Hi; ++I)
          Acc = Acc + In.get(static_cast<std::size_t>(I));
        return Acc;
      },
      [](T A, T B) { return A + B; }, Grain);
}

/// Exclusive prefix sum: returns an array Out with Out[I] = sum of
/// In[0..I), plus the total via \p Total. Two-level chunked algorithm:
/// per-chunk sums in parallel, sequential scan of the (short) sums array,
/// parallel fill of the outputs.
template <typename T>
SimArray<T> scanExclusive(Runtime &Rt, const SimArray<T> &In, T &Total,
                          std::int64_t Grain = DefaultGrain) {
  std::size_t Count = In.size();
  std::size_t ChunkSize = static_cast<std::size_t>(Grain);
  std::size_t Chunks = (Count + ChunkSize - 1) / ChunkSize;

  SimArray<T> Sums = tabulate<T>(
      Rt, Chunks,
      [&](std::size_t C) {
        std::size_t Lo = C * ChunkSize;
        std::size_t Hi = std::min(Count, Lo + ChunkSize);
        T Acc{};
        for (std::size_t I = Lo; I < Hi; ++I)
          Acc = Acc + In.get(I);
        return Acc;
      },
      /*Grain=*/1);

  // Sequential scan of the chunk sums (performed by the current leaf).
  T Acc{};
  for (std::size_t C = 0; C < Chunks; ++C) {
    T Value = Sums.get(C);
    Sums.set(C, Acc);
    Acc = Acc + Value;
  }
  Total = Acc;

  SimArray<T> Out = Rt.allocArray<T>(Count);
  Runtime::WriteOnlyScope Scope(Rt, Out.addr(), Out.bytes());
  Rt.parallelFor(0, static_cast<std::int64_t>(Chunks), 1,
                 [&](std::int64_t C) {
                   std::size_t Lo = static_cast<std::size_t>(C) * ChunkSize;
                   std::size_t Hi = std::min(Count, Lo + ChunkSize);
                   T Running = Sums.get(static_cast<std::size_t>(C));
                   for (std::size_t I = Lo; I < Hi; ++I) {
                     Out.set(I, Running);
                     Running = Running + In.get(I);
                   }
                 });
  return Out;
}

/// Keeps In elements satisfying \p Pred, preserving order. Classic
/// flags/scan/scatter pipeline. \p KeptCount receives the output size; the
/// returned array is allocated at the exact kept size (or size 1 if none
/// kept, with KeptCount = 0).
template <typename T, typename PredT>
SimArray<T> filter(Runtime &Rt, const SimArray<T> &In, PredT Pred,
                   std::size_t &KeptCount,
                   std::int64_t Grain = DefaultGrain) {
  SimArray<std::uint32_t> Flags = tabulate<std::uint32_t>(
      Rt, In.size(),
      [&](std::size_t I) {
        return Pred(In.get(I)) ? std::uint32_t(1) : std::uint32_t(0);
      },
      Grain);
  std::uint32_t Total = 0;
  SimArray<std::uint32_t> Offsets = scanExclusive(Rt, Flags, Total, Grain);
  KeptCount = Total;

  SimArray<T> Out = Rt.allocArray<T>(std::max<std::size_t>(Total, 1));
  Runtime::WriteOnlyScope Scope(Rt, Out.addr(), Out.bytes());
  Rt.parallelFor(0, static_cast<std::int64_t>(In.size()), Grain,
                 [&](std::int64_t I) {
                   std::size_t Index = static_cast<std::size_t>(I);
                   if (Flags.get(Index))
                     Out.set(Offsets.get(Index), In.get(Index));
                 });
  return Out;
}

} // namespace stdlib
} // namespace warden

#endif // WARDEN_RT_STDLIB_H
