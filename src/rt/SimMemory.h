//===- rt/SimMemory.h - Simulated address space + shadow store -*- C++ -*-===//
//
// Part of the WARDen reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The simulated physical address space and its host "shadow" backing
/// store. Simulated addresses are what flow through traces and the cache
/// simulator; the shadow store holds the actual program values so phase-1
/// execution computes real (verifiable) results. Every allocation is one
/// contiguous span backed by one contiguous zero-initialised host slab, so
/// typed wrappers can cache a single host pointer.
///
//===----------------------------------------------------------------------===//

#ifndef WARDEN_RT_SIMMEMORY_H
#define WARDEN_RT_SIMMEMORY_H

#include "src/support/Types.h"

#include <cstddef>
#include <map>
#include <memory>

namespace warden {

/// Owner of the simulated address space.
class SimMemory {
public:
  SimMemory() = default;
  SimMemory(const SimMemory &) = delete;
  SimMemory &operator=(const SimMemory &) = delete;

  /// Allocates a span of \p Size bytes aligned to \p Align (a power of
  /// two). The backing storage is zero-initialised.
  Addr allocateSpan(std::uint64_t Size, std::uint64_t Align);

  /// Translates a simulated address to its host backing storage. The
  /// address must lie inside an allocated span.
  std::byte *host(Addr Address);
  const std::byte *host(Addr Address) const;

  /// Total bytes allocated, for footprint diagnostics.
  std::uint64_t bytesAllocated() const { return TotalBytes; }

private:
  struct Slab {
    std::uint64_t Size = 0;
    std::unique_ptr<std::byte[]> Storage;
  };

  /// The address space starts away from zero so a zero Addr is never valid.
  Addr Next = 0x100000;
  std::uint64_t TotalBytes = 0;
  std::map<Addr, Slab> Slabs; ///< Start address -> slab.
};

} // namespace warden

#endif // WARDEN_RT_SIMMEMORY_H
