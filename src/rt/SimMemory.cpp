//===- rt/SimMemory.cpp - Simulated address space + shadow store ----------===//
//
// Part of the WARDen reproduction project.
//
//===----------------------------------------------------------------------===//

#include "src/rt/SimMemory.h"

#include <cassert>
#include <cstring>

using namespace warden;

Addr SimMemory::allocateSpan(std::uint64_t Size, std::uint64_t Align) {
  assert(Size > 0 && "empty span");
  assert(isPowerOf2(Align) && "alignment must be a power of two");
  Addr Start = alignTo(Next, Align);
  Next = Start + Size;
  Slab S;
  S.Size = Size;
  S.Storage = std::make_unique<std::byte[]>(Size);
  std::memset(S.Storage.get(), 0, Size);
  Slabs.emplace(Start, std::move(S));
  TotalBytes += Size;
  return Start;
}

std::byte *SimMemory::host(Addr Address) {
  auto It = Slabs.upper_bound(Address);
  assert(It != Slabs.begin() && "address below all spans");
  --It;
  assert(Address < It->first + It->second.Size && "address beyond its span");
  return It->second.Storage.get() + (Address - It->first);
}

const std::byte *SimMemory::host(Addr Address) const {
  return const_cast<SimMemory *>(this)->host(Address);
}
