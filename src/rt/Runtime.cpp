//===- rt/Runtime.cpp - MPL-analogue fork-join runtime --------------------===//
//
// Part of the WARDen reproduction project.
//
//===----------------------------------------------------------------------===//

#include "src/rt/Runtime.h"

#include <cassert>

using namespace warden;

Runtime::Runtime(RtOptions Options) : Options(Options) {
  StrandId Root = Graph.addStrand();
  Graph.setRoot(Root);
  CurStrand = Root;
  auto RootCtx = std::make_unique<TaskCtx>();
  RootCtx->CheckerTask = Checker.start();
  TaskStack.push_back(std::move(RootCtx));
}

Runtime::~Runtime() = default;

Strand &Runtime::currentStrand() {
  assert(CurStrand != InvalidStrand && "no current strand");
  return Graph.strand(CurStrand);
}

void Runtime::work(std::uint64_t Cycles) {
  if (Cycles == 0)
    return;
  Strand &S = currentStrand();
  if (!S.Events.empty() && S.Events.back().Op == TraceOp::Work) {
    S.Events.back().Extra += Cycles;
    return;
  }
  S.Events.push_back(TraceEvent::work(Cycles));
}

void Runtime::recordLoad(Addr Address, unsigned Size) {
  assert(!Finished && "recording after finish()");
  currentStrand().Events.push_back(TraceEvent::load(Address, Size));
  if (Options.RaceCheck && !KeptIntervals.empty()) {
    auto It = KeptIntervals.upper_bound(Address);
    if (It != KeptIntervals.begin()) {
      --It;
      if (Address < It->second)
        Checker.onLoad(currentTask().CheckerTask, Address, Size);
    }
  }
}

void Runtime::recordStore(Addr Address, unsigned Size) {
  assert(!Finished && "recording after finish()");
  currentStrand().Events.push_back(TraceEvent::store(Address, Size));
  if (Options.RaceCheck && !KeptIntervals.empty()) {
    auto It = KeptIntervals.upper_bound(Address);
    if (It != KeptIntervals.begin()) {
      --It;
      if (Address < It->second)
        Checker.onStore(currentTask().CheckerTask, Address, Size);
    }
  }
}

void Runtime::markSpan(Span &S) {
  if (!Options.EmitWardRegions)
    return;
  assert(S.Region == InvalidRegion && "span already marked");
  S.Region = NextRegion++;
  currentStrand().Events.push_back(
      TraceEvent::mark(S.Region, S.Start, S.End));
  currentTask().TaskHeap.MarkedStarts.push_back(S.Start);
}

void Runtime::unmarkSpan(Span &S) {
  assert(S.Region != InvalidRegion && "span not marked");
  currentStrand().Events.push_back(TraceEvent::unmark(S.Region));
  S.Region = InvalidRegion;
  S.Keep = false;
}

void Runtime::unmarkHeapAtFork(Heap &H) {
  // Retain only spans that stay marked (the kept write-destination ones);
  // everything else reconciles now — the paper's "unmark WARD pages of the
  // current heap before each fork".
  std::vector<Addr> StillMarked;
  for (Addr Start : H.MarkedStarts) {
    Span &S = Spans[Start];
    if (S.Region == InvalidRegion)
      continue; // Already unmarked (e.g. by endWriteOnly).
    if (S.Keep) {
      StillMarked.push_back(Start);
      continue;
    }
    unmarkSpan(S);
  }
  H.MarkedStarts = std::move(StillMarked);
}

void Runtime::mergeChildHeap(Heap &Child, Heap &Parent) {
  for (Addr Start : Child.MarkedStarts) {
    Span &S = Spans[Start];
    if (S.Region == InvalidRegion)
      continue;
    assert(!S.Keep && "kept span escaping its task");
    unmarkSpan(S);
  }
  Parent.SpanStarts.insert(Parent.SpanStarts.end(), Child.SpanStarts.begin(),
                           Child.SpanStarts.end());
}

std::uint32_t Runtime::resolveSite(const char *Site) {
  if (Site)
    return Graph.memoryMap().internSite(Site);
  if (!SiteStack.empty())
    return Graph.memoryMap().internSite(SiteStack.back());
  return Graph.memoryMap().internSite("heap");
}

Addr Runtime::allocate(std::uint64_t Size, std::uint64_t Align,
                       const char *Site) {
  assert(!Finished && "allocating after finish()");
  assert(Size > 0 && "empty allocation");
  if (Align < 8)
    Align = 8;
  assert(Align <= Options.PageSize && "alignment beyond page size");
  Heap &H = currentTask().TaskHeap;

  if (Size >= Options.LargeAllocThreshold) {
    // Dedicated span: cache-block aligned and padded so the span can serve
    // as a standalone WARD region.
    std::uint64_t SpanSize = alignTo(Size, 64);
    Addr Start = Memory.allocateSpan(SpanSize, std::max<std::uint64_t>(Align, 64));
    Span S{Start, Start + SpanSize, InvalidRegion, false};
    auto [It, Inserted] = Spans.emplace(Start, S);
    assert(Inserted && "span already registered");
    H.SpanStarts.push_back(Start);
    markSpan(It->second);
    Graph.memoryMap().addSpan(Start, Start + SpanSize, resolveSite(Site));
    return Start;
  }

  Addr Ptr = alignTo(H.BumpPtr, Align);
  if (Ptr + Size > H.BumpEnd) {
    // Extend the heap with a fresh page; the MPL rule marks it as a WARD
    // region because it is being allocated by a leaf.
    Addr Start = Memory.allocateSpan(Options.PageSize, Options.PageSize);
    Span S{Start, Start + Options.PageSize, InvalidRegion, false};
    auto [It, Inserted] = Spans.emplace(Start, S);
    assert(Inserted && "span already registered");
    H.SpanStarts.push_back(Start);
    markSpan(It->second);
    H.BumpPtr = Start;
    H.BumpEnd = Start + Options.PageSize;
    Ptr = Start;
  }
  H.BumpPtr = Ptr + Size;
  // Attribution covers the exact allocation, not the whole page, so
  // co-resident small objects (fork frames vs. user data) stay distinct.
  Graph.memoryMap().addSpan(Ptr, Ptr + Size, resolveSite(Site));
  return Ptr;
}

Addr Runtime::allocateSyncCounter() {
  // Join counters are synchronisation: they must stay fully coherent, so
  // they live outside every heap and are never marked.
  Addr Counter = Memory.allocateSpan(64, 64);
  Graph.memoryMap().addSpan(Counter, Counter + 64,
                            Graph.memoryMap().internSite("rt: join counter"));
  return Counter;
}

void Runtime::fork2(std::function<void()> A, std::function<void()> B) {
  assert(!Finished && "forking after finish()");
  const bool Inject = Options.InjectSchedulerTraffic;

  // The fork frame: result slots written by the children and read by the
  // join continuation. It lives in the parent heap like any other
  // allocation — the fork's conservative unmark covers it, so the
  // children's false-sharing writes to it behave identically under MESI
  // and WARDen (synchronisation-adjacent data stays fully coherent).
  Addr Frame = 0;
  Addr Desc = 0;
  if (Inject) {
    Frame = allocate(64, 64, "rt: fork frame");
    Desc = allocate(64, 64, "rt: fork descriptor");
    // The parent writes the task descriptor (function pointer, argument
    // closure, sizes) that both children will read (Section 5.3).
    for (unsigned K = 0; K < 4; ++K)
      recordStore(Desc + K * 16, 16);
  }

  unmarkHeapAtFork(currentTask().TaskHeap);

  StrandId ForkStrand = CurStrand;
  StrandId Continuation = Graph.addStrand();
  StrandId ChildA = Graph.addStrand();
  StrandId ChildB = Graph.addStrand();
  {
    Strand &Cont = Graph.strand(Continuation);
    Cont.PendingJoin = 2;
    Cont.JoinCounterAddr = allocateSyncCounter();
  }
  Graph.strand(ForkStrand).Children = {ChildA, ChildB};

  runChild(ChildA, Continuation, Desc, Frame + 0, A);
  runChild(ChildB, Continuation, Desc, Frame + 32, B);

  Checker.sync(currentTask().CheckerTask);

  CurStrand = Continuation;
  if (Inject) {
    // The continuation reads both children's results.
    recordLoad(Frame + 0, 16);
    recordLoad(Frame + 32, 16);
  }
}

void Runtime::runChild(StrandId ChildStrand, StrandId Continuation,
                       Addr Descriptor, Addr ResultSlot,
                       const std::function<void()> &Body) {
  const bool Inject = Options.InjectSchedulerTraffic;
  TaskCtx &Parent = currentTask();
  TaskId ChildChecker = Checker.spawn(Parent.CheckerTask);

  auto Child = std::make_unique<TaskCtx>();
  Child->CheckerTask = ChildChecker;
  TaskStack.push_back(std::move(Child));
  CurStrand = ChildStrand;

  if (Inject)
    for (unsigned K = 0; K < 4; ++K)
      recordLoad(Descriptor + K * 16, 16);

  Body();

  // The child is done: merge its heap into the parent (reconciling its
  // remaining WARD spans), publish its result, and hit the join counter.
  TaskCtx &Finished = currentTask();
  mergeChildHeap(Finished.TaskHeap, Parent.TaskHeap);
  if (Inject) {
    recordStore(ResultSlot, 16);
    currentStrand().Events.push_back(
        TraceEvent::rmw(Graph.strand(Continuation).JoinCounterAddr, 8));
  }
  Graph.strand(CurStrand).JoinTarget = Continuation;

  Checker.childReturned(Parent.CheckerTask, ChildChecker);
  TaskStack.pop_back();
}

void Runtime::parallelFor(std::int64_t Lo, std::int64_t Hi,
                          std::int64_t Grain,
                          const std::function<void(std::int64_t)> &Body) {
  if (Lo >= Hi)
    return;
  if (Grain < 1)
    Grain = 1;
  parallelForRec(Lo, Hi, Grain, Body);
}

void Runtime::parallelForRec(std::int64_t Lo, std::int64_t Hi,
                             std::int64_t Grain,
                             const std::function<void(std::int64_t)> &Body) {
  if (Hi - Lo <= Grain) {
    for (std::int64_t I = Lo; I < Hi; ++I)
      Body(I);
    return;
  }
  std::int64_t Mid = Lo + (Hi - Lo) / 2;
  fork2([&] { parallelForRec(Lo, Mid, Grain, Body); },
        [&] { parallelForRec(Mid, Hi, Grain, Body); });
}

bool Runtime::beginWriteOnly(Addr Start, std::uint64_t Bytes) {
  if (!Options.KeepWriteDestinations || !Options.EmitWardRegions)
    return false;
  auto It = Spans.find(Start);
  if (It == Spans.end())
    return false; // Not a dedicated span (small bump allocation).
  Span &S = It->second;
  // The span must be exactly this allocation: keeping a whole shared page
  // marked would keep unrelated co-resident data (e.g. fork descriptors)
  // under the region, which the discipline does not license.
  if (S.End != Start + alignTo(Bytes, 64))
    return false;
  // A span whose original region already ended (e.g. it was reconciled at
  // an earlier fork) starts a fresh WARD window for the new write phase;
  // the hardware sees an ordinary "Add Region" instruction.
  if (S.Region == InvalidRegion)
    markSpan(S);
  S.Keep = true;
  KeptIntervals[S.Start] = S.End;
  return true;
}

void Runtime::endWriteOnly(Addr Start) {
  auto It = Spans.find(Start);
  assert(It != Spans.end() && "endWriteOnly on unknown span");
  Span &S = It->second;
  S.Keep = false;
  if (S.Region != InvalidRegion)
    unmarkSpan(S);
  KeptIntervals.erase(S.Start);
  if (Options.RaceCheck)
    Checker.clearRange(S.Start, S.End - S.Start);
}

TaskGraph Runtime::finish() {
  assert(!Finished && "finish() called twice");
  assert(TaskStack.size() == 1 && "finish() inside a child task");
  assert(KeptIntervals.empty() && "write-only scope still open");
  Finished = true;
  return std::move(Graph);
}
