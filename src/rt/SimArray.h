//===- rt/SimArray.h - Typed views over simulated memory ------*- C++ -*-===//
//
// Part of the WARDen reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Typed array and scalar views over simulated memory. get()/set() perform
/// real data movement in the shadow store *and* record the access into the
/// current strand's trace; peek()/poke() touch only the shadow store and
/// are meant for untimed input generation and output verification, exactly
/// like the untimed setup phases of the PBBS harness.
///
//===----------------------------------------------------------------------===//

#ifndef WARDEN_RT_SIMARRAY_H
#define WARDEN_RT_SIMARRAY_H

#include "src/rt/Runtime.h"

#include <cassert>
#include <type_traits>

namespace warden {

/// A typed array living in simulated memory.
template <typename T> class SimArray {
  static_assert(std::is_trivially_copyable_v<T>,
                "simulated memory holds trivially copyable values only");

public:
  SimArray() = default;

  SimArray(Runtime *Rt, Addr Base, T *Host, std::size_t Count)
      : Rt(Rt), Base(Base), Host(Host), Count(Count) {}

  std::size_t size() const { return Count; }
  bool empty() const { return Count == 0; }
  Addr addr() const { return Base; }
  Addr addrOf(std::size_t Index) const { return Base + Index * sizeof(T); }
  std::uint64_t bytes() const { return Count * sizeof(T); }

  /// Timed, traced read.
  T get(std::size_t Index) const {
    assert(Index < Count && "index out of range");
    Rt->recordLoad(addrOf(Index), sizeof(T));
    return Host[Index];
  }

  /// Timed, traced write.
  void set(std::size_t Index, const T &Value) const {
    assert(Index < Count && "index out of range");
    Rt->recordStore(addrOf(Index), sizeof(T));
    Host[Index] = Value;
  }

  /// Untimed read (setup/verification only).
  T peek(std::size_t Index) const {
    assert(Index < Count && "index out of range");
    return Host[Index];
  }

  /// Untimed write (setup only).
  void poke(std::size_t Index, const T &Value) const {
    assert(Index < Count && "index out of range");
    Host[Index] = Value;
  }

private:
  Runtime *Rt = nullptr;
  Addr Base = 0;
  T *Host = nullptr;
  std::size_t Count = 0;
};

/// A single value in simulated memory.
template <typename T> class SimVar {
public:
  SimVar() = default;
  explicit SimVar(SimArray<T> Cell) : Cell(Cell) {}

  T get() const { return Cell.get(0); }
  void set(const T &Value) const { Cell.set(0, Value); }
  T peek() const { return Cell.peek(0); }
  void poke(const T &Value) const { Cell.poke(0, Value); }
  Addr addr() const { return Cell.addr(); }

private:
  SimArray<T> Cell;
};

template <typename T>
SimArray<T> Runtime::allocArray(std::size_t Count, const char *Site) {
  static_assert(std::is_trivially_copyable_v<T>,
                "simulated memory holds trivially copyable values only");
  assert(Count > 0 && "empty array");
  Addr Base = allocate(Count * sizeof(T),
                       std::max<std::uint64_t>(alignof(T), 8), Site);
  return SimArray<T>(this, Base, reinterpret_cast<T *>(hostPtr(Base)), Count);
}

/// Allocates a single simulated variable.
template <typename T> SimVar<T> allocVar(Runtime &Rt) {
  return SimVar<T>(Rt.allocArray<T>(1));
}

} // namespace warden

#endif // WARDEN_RT_SIMARRAY_H
