//===- rt/Runtime.h - MPL-analogue fork-join runtime ----------*- C++ -*-===//
//
// Part of the WARDen reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The high-level-parallel-language runtime: the analogue of MPL's memory
/// manager and scheduler hooks (Section 4.2). Programs written against this
/// API execute once, sequentially and depth-first ("phase 1"), producing a
/// TaskGraph of strands with full memory traces. During that execution the
/// runtime maintains the heap hierarchy and emits the WARD region
/// instructions exactly where the paper's MPL patch does:
///
///  * a fresh span allocated by a leaf heap is marked as a WARD region;
///  * at every fork, the marked spans of the forking task's heap are
///    unmarked (reconciled) — except spans under the runtime-internal
///    write-destination discipline, which stay marked through the parallel
///    section and unmark at its join (verified by the SP-bags checker);
///  * at every join, the child heap merges into the parent and its
///    remaining marked spans are unmarked.
///
/// The runtime also injects the scheduler's own memory traffic — fork
/// descriptors written by the parent and read by the child, result slots
/// written by children and read by the join continuation, and join-counter
/// atomics — because that runtime/application interaction is where the
/// paper observes significant benign WAW and false sharing (Section 4.1).
///
//===----------------------------------------------------------------------===//

#ifndef WARDEN_RT_RUNTIME_H
#define WARDEN_RT_RUNTIME_H

#include "src/race/SpBags.h"
#include "src/rt/SimMemory.h"
#include "src/trace/TaskGraph.h"

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

namespace warden {

/// Runtime configuration.
struct RtOptions {
  /// Heap page size: the granularity of MPL-style WARD marking.
  std::uint64_t PageSize = 4096;
  /// Allocations at least this large get a dedicated span (and region).
  std::uint64_t LargeAllocThreshold = 1024;
  /// Honor the write-destination discipline (WriteOnlyScope). Disabling it
  /// reproduces the strictly page-conservative MPL mechanism.
  bool KeepWriteDestinations = true;
  /// Verify kept regions with the SP-bags checker during phase 1.
  bool RaceCheck = true;
  /// Inject the runtime's own fork-frame traffic into traces.
  bool InjectSchedulerTraffic = true;
  /// Emit WARD region instructions at all. With this off the recorded
  /// program is a "legacy" binary: WARDen must behave exactly like MESI on
  /// it (Figure 1's unaffected-legacy-applications claim).
  bool EmitWardRegions = true;
};

template <typename T> class SimArray;

/// The phase-1 recording runtime. Typical use:
/// \code
///   Runtime Rt;
///   auto Data = Rt.allocArray<int>(N);
///   Rt.parallelFor(0, N, 64, [&](std::int64_t I) { Data.set(I, ...); });
///   TaskGraph Graph = Rt.finish();
/// \endcode
class Runtime {
public:
  explicit Runtime(RtOptions Options = RtOptions());
  ~Runtime();
  Runtime(const Runtime &) = delete;
  Runtime &operator=(const Runtime &) = delete;

  // --- Allocation ---------------------------------------------------------

  /// Allocates an array of \p Count elements in the current task's heap.
  /// \p Site optionally names the allocation for profiler attribution
  /// (default: the innermost AllocSiteScope, else "heap").
  template <typename T>
  SimArray<T> allocArray(std::size_t Count, const char *Site = nullptr);

  /// Raw allocation in the current task's heap; returns its simulated
  /// address. Fresh spans are WARD-marked per the leaf-heap rule. Every
  /// allocation is registered in the TaskGraph's MemoryMap under \p Site
  /// (or the ambient AllocSiteScope) so phase-2 profilers can attribute
  /// coherence traffic back to the allocating code.
  Addr allocate(std::uint64_t Size, std::uint64_t Align,
                const char *Site = nullptr);

  /// RAII allocation-site label: allocations inside the scope that do not
  /// pass an explicit site inherit this name (innermost scope wins). Purely
  /// descriptive — scopes never change the trace or its timing.
  class AllocSiteScope {
  public:
    AllocSiteScope(Runtime &Rt, std::string Name) : Rt(Rt) {
      Rt.SiteStack.push_back(std::move(Name));
    }
    ~AllocSiteScope() { Rt.SiteStack.pop_back(); }
    AllocSiteScope(const AllocSiteScope &) = delete;
    AllocSiteScope &operator=(const AllocSiteScope &) = delete;

  private:
    Runtime &Rt;
  };

  /// Host pointer for a simulated address.
  std::byte *hostPtr(Addr Address) { return Memory.host(Address); }

  // --- Parallelism --------------------------------------------------------

  /// Binary fork-join: runs \p A and \p B as parallel child tasks with
  /// fresh heaps, then continues.
  void fork2(std::function<void()> A, std::function<void()> B);

  /// Parallel loop over [Lo, Hi) with leaf granularity \p Grain, calling
  /// \p Body(I) for each index.
  void parallelFor(std::int64_t Lo, std::int64_t Hi, std::int64_t Grain,
                   const std::function<void(std::int64_t)> &Body);

  /// Charges \p Cycles of pure compute to the current strand.
  void work(std::uint64_t Cycles);

  // --- Recording hooks (used by SimArray and friends) ----------------------

  void recordLoad(Addr Address, unsigned Size);
  void recordStore(Addr Address, unsigned Size);

  // --- Write-destination discipline ----------------------------------------

  /// Keeps the dedicated span(s) of [Start, Start+Bytes) WARD-marked across
  /// forks until endWriteOnly(). A runtime/standard-library-internal
  /// mechanism (used by rt::tabulate and friends), not a user annotation;
  /// kept regions are verified by the SP-bags checker. Returns true if the
  /// range had a dedicated marked span (otherwise this is a safe no-op and
  /// the conservative per-page behaviour applies).
  bool beginWriteOnly(Addr Start, std::uint64_t Bytes);

  /// Ends the write-only window: unmarks (reconciles) the kept spans.
  void endWriteOnly(Addr Start);

  /// RAII helper for begin/endWriteOnly.
  class WriteOnlyScope {
  public:
    WriteOnlyScope(Runtime &Rt, Addr Start, std::uint64_t Bytes)
        : Rt(Rt), Start(Start) {
      Active = Rt.beginWriteOnly(Start, Bytes);
    }
    ~WriteOnlyScope() {
      if (Active)
        Rt.endWriteOnly(Start);
    }
    WriteOnlyScope(const WriteOnlyScope &) = delete;
    WriteOnlyScope &operator=(const WriteOnlyScope &) = delete;
    bool active() const { return Active; }

  private:
    Runtime &Rt;
    Addr Start;
    bool Active = false;
  };

  // --- Completion -----------------------------------------------------------

  /// Ends recording and returns the task graph. The runtime must not be
  /// used afterwards.
  TaskGraph finish();

  /// Violations found by the SP-bags checker (should be empty for
  /// disciplined programs).
  const std::vector<std::string> &raceViolations() const {
    return Checker.violations();
  }

  const RtOptions &options() const { return Options; }
  SimMemory &memory() { return Memory; }

private:
  /// A marked or unmarked span of simulated memory owned by some heap.
  struct Span {
    Addr Start = 0;
    Addr End = 0;
    RegionId Region = InvalidRegion; ///< InvalidRegion once unmarked.
    bool Keep = false; ///< Survives fork-time unmarking (write-destination).
  };

  /// A task's heap: its spans plus the bump frontier of the current page.
  struct Heap {
    std::vector<Addr> SpanStarts;   ///< Keys into Runtime::Spans.
    std::vector<Addr> MarkedStarts; ///< Spans still WARD-marked.
    Addr BumpPtr = 0;
    Addr BumpEnd = 0;
  };

  struct TaskCtx {
    Heap TaskHeap;
    TaskId CheckerTask = InvalidTask;
  };

  TaskCtx &currentTask() { return *TaskStack.back(); }
  Strand &currentStrand();

  /// Emits a Mark event and registers the span.
  void markSpan(Span &S);
  /// Emits an Unmark event for a marked span and forgets its region.
  void unmarkSpan(Span &S);
  /// Fork-time conservative unmarking of the current heap.
  void unmarkHeapAtFork(Heap &H);
  /// Join-time merge of a child heap into the parent heap.
  void mergeChildHeap(Heap &Child, Heap &Parent);

  Addr allocateSyncCounter();

  /// Site id for an allocation: explicit \p Site, else the innermost
  /// AllocSiteScope, else "heap".
  std::uint32_t resolveSite(const char *Site);

  void runChild(StrandId ChildStrand, StrandId Continuation, Addr Descriptor,
                Addr ResultSlot, const std::function<void()> &Body);

  void parallelForRec(std::int64_t Lo, std::int64_t Hi, std::int64_t Grain,
                      const std::function<void(std::int64_t)> &Body);

  RtOptions Options;
  SimMemory Memory;
  TaskGraph Graph;
  SpBags Checker;

  StrandId CurStrand = InvalidStrand;
  std::vector<std::unique_ptr<TaskCtx>> TaskStack;
  std::map<Addr, Span> Spans; ///< All spans by start address.
  /// Active kept (write-destination) intervals: start -> end. Accesses in
  /// these intervals are race-checked.
  std::map<Addr, Addr> KeptIntervals;
  RegionId NextRegion = 0;
  std::vector<std::string> SiteStack; ///< Active AllocSiteScope labels.
  bool Finished = false;
};

} // namespace warden

#endif // WARDEN_RT_RUNTIME_H
