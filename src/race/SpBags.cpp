//===- race/SpBags.cpp - SP-bags parallel-RAW verification ----------------===//
//
// Part of the WARDen reproduction project.
//
//===----------------------------------------------------------------------===//

#include "src/race/SpBags.h"

#include <cassert>
#include <cstdio>

using namespace warden;

SpBags::SpBags() = default;

TaskId SpBags::newTask() {
  TaskId Task = static_cast<TaskId>(SBag.size());
  // S-bag initially {Task}; P-bag initially empty (it becomes a live set on
  // the first childReturned()).
  std::uint32_t S = static_cast<std::uint32_t>(SetParent.size());
  SetParent.push_back(S);
  SetIsPBag.push_back(false);
  std::uint32_t P = static_cast<std::uint32_t>(SetParent.size());
  SetParent.push_back(P);
  SetIsPBag.push_back(true);
  SBag.push_back(S);
  PBag.push_back(P);
  return Task;
}

TaskId SpBags::start() {
  assert(SBag.empty() && "start() called twice");
  return newTask();
}

TaskId SpBags::spawn(TaskId Parent) {
  (void)Parent;
  return newTask();
}

std::uint32_t SpBags::find(std::uint32_t Set) {
  while (SetParent[Set] != Set) {
    SetParent[Set] = SetParent[SetParent[Set]]; // Path halving.
    Set = SetParent[Set];
  }
  return Set;
}

void SpBags::unite(std::uint32_t Into, std::uint32_t From) {
  std::uint32_t IntoRoot = find(Into);
  std::uint32_t FromRoot = find(From);
  if (IntoRoot == FromRoot)
    return;
  SetParent[FromRoot] = IntoRoot;
}

void SpBags::childReturned(TaskId Parent, TaskId Child) {
  // P(Parent) gains S(Child) and P(Child): everything the child did is
  // logically parallel with the parent's code until the next sync.
  unite(PBag[Parent], SBag[Child]);
  unite(PBag[Parent], PBag[Child]);
  // The merged set is a P-bag of the parent.
  SetIsPBag[find(PBag[Parent])] = true;
  PBag[Parent] = find(PBag[Parent]);
}

void SpBags::sync(TaskId Task) {
  // S(Task) absorbs P(Task): the joined children are now serial history.
  unite(SBag[Task], PBag[Task]);
  std::uint32_t Root = find(SBag[Task]);
  SetIsPBag[Root] = false;
  SBag[Task] = Root;
  // Fresh empty P-bag.
  std::uint32_t P = static_cast<std::uint32_t>(SetParent.size());
  SetParent.push_back(P);
  SetIsPBag.push_back(true);
  PBag[Task] = P;
}

bool SpBags::isParallel(TaskId Other) {
  if (Other == InvalidTask)
    return false;
  return SetIsPBag[find(SBag[Other])];
}

void SpBags::report(const char *Kind, TaskId A, TaskId B, Addr Word) {
  char Buffer[128];
  std::snprintf(Buffer, sizeof(Buffer),
                "%s violation at 0x%llx between tasks %u and %u", Kind,
                static_cast<unsigned long long>(Word << WordShift), A, B);
  Violations.emplace_back(Buffer);
}

void SpBags::onLoad(TaskId Task, Addr Address, unsigned Size) {
  Addr First = Address >> WordShift;
  Addr Last = (Address + Size - 1) >> WordShift;
  for (Addr Word = First; Word <= Last; ++Word) {
    WordHistory &H = History[Word];
    if (H.Writer != InvalidTask && H.Writer != Task && isParallel(H.Writer))
      report("RAW", H.Writer, Task, Word);
    if (H.Reader0 == InvalidTask || H.Reader0 == Task)
      H.Reader0 = Task;
    else if (H.Reader1 != Task)
      H.Reader1 = Task;
  }
}

void SpBags::onStore(TaskId Task, Addr Address, unsigned Size) {
  Addr First = Address >> WordShift;
  Addr Last = (Address + Size - 1) >> WordShift;
  for (Addr Word = First; Word <= Last; ++Word) {
    WordHistory &H = History[Word];
    if (H.Reader0 != InvalidTask && H.Reader0 != Task &&
        isParallel(H.Reader0))
      report("RAW", H.Reader0, Task, Word);
    if (H.Reader1 != InvalidTask && H.Reader1 != Task &&
        isParallel(H.Reader1))
      report("RAW", H.Reader1, Task, Word);
    // A parallel prior writer is a WAW: permitted by the WARD property.
    H.Writer = Task;
  }
}

void SpBags::clearRange(Addr Address, std::uint64_t Bytes) {
  if (Bytes == 0)
    return;
  Addr First = Address >> WordShift;
  Addr Last = (Address + Bytes - 1) >> WordShift;
  for (Addr Word = First; Word <= Last; ++Word)
    History.erase(Word);
}
