//===- race/SpBags.h - SP-bags parallel-RAW verification ------*- C++ -*-===//
//
// Part of the WARDen reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// An SP-bags style determinacy checker (Feng & Leiserson, cited by the
/// paper as [31]) used to *verify* the WARD property for regions the
/// runtime keeps marked across forks (DESIGN.md's write-destination
/// discipline). The WARD definition (Section 3.1) allows arbitrary-order
/// WAW resolution but forbids any execution order containing a cross-thread
/// RAW; for a fork-join program that is exactly: no logically-parallel
/// strand pair may access the same location with one load and one store.
/// WAW pairs are deliberately *not* reported.
///
/// The checker runs during the sequential depth-first phase-1 execution,
/// which is the execution order SP-bags requires. Like the classic
/// algorithm it keeps O(1) access history per location (one writer, two
/// readers), so it reports at least one violation when the discipline is
/// broken rather than enumerating every racing pair.
///
//===----------------------------------------------------------------------===//

#ifndef WARDEN_RACE_SPBAGS_H
#define WARDEN_RACE_SPBAGS_H

#include "src/support/Types.h"

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

namespace warden {

/// Identifier of a task (procedure) in the checker.
using TaskId = std::uint32_t;

inline constexpr TaskId InvalidTask = static_cast<TaskId>(-1);

/// SP-bags determinacy checker specialised for WARD verification.
class SpBags {
public:
  SpBags();

  /// Creates the root task; call once before execution.
  TaskId start();

  /// Called when the current task spawns a child; returns the child's id.
  TaskId spawn(TaskId Parent);

  /// Called when child \p Child returns to \p Parent: the child's bags move
  /// into the parent's P-bag.
  void childReturned(TaskId Parent, TaskId Child);

  /// Called at a join point in \p Task: its P-bag merges into its S-bag.
  void sync(TaskId Task);

  /// Records a load of [Address, Address+Size) by \p Task and reports a
  /// violation if a logically-parallel store to the same word exists.
  void onLoad(TaskId Task, Addr Address, unsigned Size);

  /// Records a store; reports a violation if a logically-parallel load to
  /// the same word exists (parallel stores are permitted WAWs).
  void onStore(TaskId Task, Addr Address, unsigned Size);

  /// Forgets all access history for [Address, Address+Bytes). Called when a
  /// verified region is unmarked: later accesses are serialised through the
  /// reconciliation and start a fresh window.
  void clearRange(Addr Address, std::uint64_t Bytes);

  /// Human-readable reports of detected violations (empty means the WARD
  /// discipline held).
  const std::vector<std::string> &violations() const { return Violations; }

private:
  /// Word granularity of the access history (matches the runtime's minimum
  /// allocation alignment).
  static constexpr unsigned WordShift = 3;

  struct WordHistory {
    TaskId Writer = InvalidTask;
    TaskId Reader0 = InvalidTask;
    TaskId Reader1 = InvalidTask;
  };

  /// Returns true if \p Other runs logically in parallel with the current
  /// step of execution (i.e. its bag is a P-bag).
  bool isParallel(TaskId Other);

  TaskId newTask();
  std::uint32_t find(std::uint32_t Set);
  void unite(std::uint32_t Into, std::uint32_t From);
  void report(const char *Kind, TaskId A, TaskId B, Addr Word);

  // Union-find over bag sets. Each task owns two sets (its S- and P-bag).
  std::vector<std::uint32_t> SetParent;
  std::vector<bool> SetIsPBag;
  std::vector<std::uint32_t> SBag; ///< Task -> S-bag set.
  std::vector<std::uint32_t> PBag; ///< Task -> P-bag set.

  std::unordered_map<Addr, WordHistory> History;
  std::vector<std::string> Violations;
};

} // namespace warden

#endif // WARDEN_RACE_SPBAGS_H
