//===- sched/Replay.cpp - Work-stealing timing replay ---------------------===//
//
// Part of the WARDen reproduction project.
//
//===----------------------------------------------------------------------===//

#include "src/sched/Replay.h"

#include "src/obs/ChromeTraceExporter.h"
#include "src/obs/CpiStack.h"
#include "src/obs/EventLog.h"
#include "src/obs/MetricRegistry.h"
#include "src/obs/Observability.h"
#include "src/obs/TimelineSampler.h"

#include <algorithm>
#include <cassert>

using namespace warden;

Replayer::Replayer(const TaskGraph &Graph, CoherenceController &Controller,
                   std::uint64_t Seed)
    : Graph(Graph), Controller(Controller), Config(Controller.config()),
      Random(Seed), Cores(Config.totalCores()),
      JoinPending(Graph.size(), 0) {
  for (StrandId Id = 0; Id < Graph.size(); ++Id)
    JoinPending[Id] = Graph.strand(Id).PendingJoin;
  Remaining = Graph.size();
}

void Replayer::attachObs(Observability *NewObs) {
  Obs = NewObs;
  StealWaitHist =
      Obs && Obs->Metrics
          ? &Obs->Metrics->histogram("sched.steal_wait_cycles")
          : nullptr;
  Cpi = Obs ? Obs->Cpi : nullptr;
  Evl = Obs ? Obs->Log : nullptr;
  if (Obs && Obs->Sampler)
    Obs->Sampler->attachTrace(Obs->Trace);
  if (Obs) {
    IdleSince.assign(Cores.size(), NeverIdle);
    SpanStart.assign(Cores.size(), 0);
    BusyCycles.assign(Cores.size(), 0);
    if (Obs->Trace)
      Obs->Trace->setCoreCount(static_cast<unsigned>(Cores.size()));
  }
}

void Replayer::sampleInputs(TimelineInputs &In) const {
  In.Instructions = Stats.Instructions;
  In.Invalidations = Controller.stats().Invalidations;
  In.Downgrades = Controller.stats().Downgrades;
  In.RegionOccupancy = Controller.regionTable().size();
  In.BusyCycles = &BusyCycles;
  if (Config.Protocol == ProtocolKind::Racoh) {
    const CoherenceStats &CS = Controller.stats();
    In.LogCoherence = true;
    In.LogPublishes = CS.LogPublishes;
    In.LogRecordsPublished = CS.LogRecordsPublished;
    In.LogRecordsConsumed = CS.LogRecordsConsumed;
    In.LogBackpressureStalls = CS.LogBackpressureStalls;
    In.LogInvalidations = CS.LogInvalidations;
    In.PreInvalidateAvoided = CS.PreInvalidateAvoided;
    In.CrossNodeHops = CS.CrossNodeHops;
    In.LogQueuePeakOccupancy = CS.LogQueuePeakOccupancy;
  }
}

void Replayer::drainStoreBuffer(Core &C) {
  while (!C.StoreBuffer.empty() && C.StoreBuffer.front() <= C.Now)
    C.StoreBuffer.pop_front();
}

bool Replayer::step(CoreId Id, Core &C) {
  const Strand &S = Graph.strand(C.Current);
  if (C.NextEvent >= S.Events.size())
    return true;
  const TraceEvent &E = S.Events[C.NextEvent++];

  switch (E.Op) {
  case TraceOp::Work:
    C.Now += E.Extra;
    Stats.Instructions += E.Extra;
    if (Cpi)
      Cpi->add(Id, CpiCat::Compute, E.Extra);
    break;
  case TraceOp::Load: {
    Cycles Lat = Controller.access(Id, E.Address, E.Size, AccessType::Load);
    Cycles Spent = std::max<Cycles>(Lat, 1);
    C.Now += Spent;
    Stats.Instructions += 1;
    if (Cpi) {
      // The access latency was charged category-by-category inside the
      // controller; the min-1-cycle issue padding is compute.
      Cpi->commitCritical(Id);
      Cpi->add(Id, CpiCat::Compute, Spent - Lat);
    }
    break;
  }
  case TraceOp::Rmw: {
    Cycles Lat = Controller.access(Id, E.Address, E.Size, AccessType::Rmw);
    Cycles Spent = std::max<Cycles>(Lat, 1);
    C.Now += Spent;
    Stats.Instructions += 1;
    if (Cpi) {
      Cpi->commitCritical(Id);
      Cpi->add(Id, CpiCat::Compute, Spent - Lat);
    }
    break;
  }
  case TraceOp::Store: {
    drainStoreBuffer(C);
    if (C.StoreBuffer.size() >= Config.StoreBufferEntries) {
      // Stall until the oldest store retires.
      Cycles Free = C.StoreBuffer.front();
      assert(Free > C.Now && "expired entry survived drain");
      Stats.StoreStallCycles += Free - C.Now;
      if (Cpi)
        Cpi->add(Id, CpiCat::StoreBufferStall, Free - C.Now);
      C.Now = Free;
      drainStoreBuffer(C);
    }
    Cycles Lat = Controller.access(Id, E.Address, E.Size, AccessType::Store);
    C.StoreBuffer.push_back(C.Now + 1 + Lat +
                            Config.StoreRetireCycles *
                                static_cast<Cycles>(C.StoreBuffer.size()));
    C.Now += 1; // Issue into the store buffer.
    Stats.Instructions += 1;
    if (Cpi) {
      // The store's miss latency is off the critical path (it retires
      // through the buffer); keep it visible but out of accounted time.
      Cpi->commitBuffered(Id);
      Cpi->add(Id, CpiCat::Compute, 1);
    }
    break;
  }
  case TraceOp::MarkRegion: {
    Cycles Cost = Controller.addRegion(E.Region, E.Address, E.Extra);
    C.Now += Cost;
    Stats.RegionInstrCycles += Cost;
    if (Config.Protocol == ProtocolKind::Warden)
      Stats.Instructions += 1;
    if (Cpi)
      Cpi->add(Id, CpiCat::Reconcile, Cost);
    break;
  }
  case TraceOp::UnmarkRegion: {
    Cycles Cost = Controller.removeRegion(E.Region, Id);
    C.Now += Cost;
    Stats.RegionInstrCycles += Cost;
    if (Config.Protocol == ProtocolKind::Warden)
      Stats.Instructions += 1;
    if (Cpi)
      Cpi->add(Id, CpiCat::Reconcile, Cost);
    break;
  }
  }
  return C.NextEvent >= S.Events.size();
}

void Replayer::completeStrand(CoreId Id, Core &C) {
  if (Obs && Obs->Trace)
    Obs->Trace->taskSpan(Id, C.Current, SpanStart[Id], C.Now);
  const Strand &S = Graph.strand(C.Current);
  assert(Remaining > 0 && "completing with nothing outstanding");
  --Remaining;
  ++Stats.StrandsExecuted;

  StrandId Next = InvalidStrand;
  if (S.isForkPoint()) {
    C.Now += Config.ForkOverhead;
    if (Cpi)
      Cpi->add(Id, CpiCat::Compute, Config.ForkOverhead);
    // Continue with the first child; expose the rest for stealing. The
    // deque bottom pointer is published through ordinary coherent memory.
    Controller.access(Id, dequeLine(Id), 8, AccessType::Store);
    C.Now += 1;
    Stats.Instructions += 1;
    if (Cpi) {
      Cpi->commitBuffered(Id);
      Cpi->add(Id, CpiCat::Compute, 1);
    }
    Next = S.Children.front();
    for (std::size_t I = 1; I < S.Children.size(); ++I)
      C.Deque.push_back({S.Children[I], C.Now});
  } else if (S.JoinTarget != InvalidStrand) {
    C.Now += Config.JoinOverhead;
    if (Cpi)
      Cpi->add(Id, CpiCat::Compute, Config.JoinOverhead);
    assert(JoinPending[S.JoinTarget] > 0 && "join counter underflow");
    if (--JoinPending[S.JoinTarget] == 0) {
      Next = S.JoinTarget; // The last finisher runs the continuation.
      // The continuation consumes every joined strand's data: an acquire.
      // Eager protocols return 0 having done nothing, so the guarded body
      // is never entered and the replay is cycle-identical to one without
      // the hook.
      if (Cycles Cost = Controller.syncAcquire(Id)) {
        C.Now += Cost;
        Stats.SyncCycles += Cost;
        if (Cpi)
          Cpi->add(Id, CpiCat::Reconcile, Cost);
        if (Evl)
          Evl->emit(C.Now, EvKind::SyncAcquire,
                    static_cast<std::uint16_t>(Id), 0,
                    static_cast<std::uint32_t>(Cost));
      }
    }
  }

  if (Next == InvalidStrand && !C.Deque.empty()) {
    Next = C.Deque.back().Strand; // LIFO on the owner's side.
    C.Deque.pop_back();
    // Popping updates the deque bottom pointer.
    Controller.access(Id, dequeLine(Id), 8, AccessType::Store);
    C.Now += 1;
    Stats.Instructions += 1;
    if (Cpi) {
      Cpi->commitBuffered(Id);
      Cpi->add(Id, CpiCat::Compute, 1);
    }
  }

  // Completing a strand publishes its writes: a release. Lazy protocols
  // push their dirty lines here; eager ones return 0 without touching
  // state (same cycle-identity argument as the acquire above).
  if (Cycles Cost = Controller.syncRelease(Id)) {
    C.Now += Cost;
    Stats.SyncCycles += Cost;
    if (Cpi)
      Cpi->add(Id, CpiCat::Reconcile, Cost);
    if (Evl)
      Evl->emit(C.Now, EvKind::SyncRelease, static_cast<std::uint16_t>(Id), 0,
                static_cast<std::uint32_t>(Cost));
  }

  LastCompletion = std::max(LastCompletion, C.Now);
  C.Current = Next;
  C.NextEvent = 0;
  if (Obs && Next != InvalidStrand)
    SpanStart[Id] = C.Now;
}

void Replayer::tryObtainWork(CoreId Id, Core &C) {
  if (!C.Deque.empty()) {
    C.Current = C.Deque.back().Strand;
    C.Now = std::max(C.Now, C.Deque.back().Ready);
    C.Deque.pop_back();
    C.NextEvent = 0;
    return;
  }
  // Random-victim steal, FIFO end (the classic work-stealing discipline).
  CoreId Victim = static_cast<CoreId>(Random.nextBelow(Cores.size()));
  if (Victim == Id) {
    C.Now += Config.StealOverhead;
    ++Stats.FailedSteals;
    return;
  }
  // A thief is about to consume another core's data: an acquire. Under
  // SISD this is where the stale copies die; eager protocols return 0.
  if (Cycles Cost = Controller.syncAcquire(Id)) {
    C.Now += Cost;
    Stats.SyncCycles += Cost;
    if (Evl)
      Evl->emit(C.Now, EvKind::SyncAcquire, static_cast<std::uint16_t>(Id), 0,
                static_cast<std::uint32_t>(Cost));
  }
  // Probe the victim's deque line: a real coherent load that ping-pongs
  // against the victim's pushes and pops. Idle cores generate this
  // busy-wait traffic for as long as they stay idle, so it shrinks with
  // execution time — the effect behind the paper's ray analysis.
  Cycles ProbeLat =
      Controller.access(Id, dequeLine(Victim), 8, AccessType::Load);
  if (Cpi)
    Cpi->discard(); // Probe time is covered by the StealWait window.
  C.Now += std::max<Cycles>(ProbeLat, 1);
  Stats.Instructions += 1;
  ++Stats.StealProbes;
  if (!Cores[Victim].Deque.empty()) {
    const auto &Stolen = Cores[Victim].Deque.front();
    // Taking the item is an atomic exchange on the victim's deque line.
    Cycles TakeLat =
        Controller.access(Id, dequeLine(Victim), 8, AccessType::Rmw);
    if (Cpi)
      Cpi->discard();
    C.Current = Stolen.Strand;
    // A strand cannot start before the fork that created it completed.
    C.Now = std::max(C.Now + TakeLat + Config.StealOverhead,
                     Stolen.Ready + Config.StealOverhead);
    Stats.Instructions += 1;
    Cores[Victim].Deque.pop_front();
    C.NextEvent = 0;
    ++Stats.Steals;
    if (Evl)
      Evl->emit(C.Now, EvKind::Steal, static_cast<std::uint16_t>(Id),
                dequeLine(Victim), Victim);
    return;
  }
  C.Now += Config.StealOverhead;
  ++Stats.FailedSteals;
}

ReplayResult Replayer::run() {
  assert(Graph.root() != InvalidStrand && "graph has no root");
  // Each worker initialises its own deque at startup, which also gives the
  // deque line a sensible first-touch home on the worker's own socket.
  for (CoreId Id = 0; Id < Cores.size(); ++Id) {
    Controller.access(Id, dequeLine(Id), 8, AccessType::Store);
    if (Cpi)
      Cpi->commitBuffered(Id);
  }
  Cores[0].Current = Graph.root();

  while (Remaining > 0) {
    // Advance the core with the smallest local time (ties: lowest id).
    // Idle cores keep probing for work — that busy waiting is part of the
    // modelled behaviour — but they stop once nothing is outstanding.
    CoreId Chosen = InvalidCore;
    for (CoreId Id = 0; Id < Cores.size(); ++Id) {
      Core &C = Cores[Id];
      if (Chosen == InvalidCore || C.Now < Cores[Chosen].Now)
        Chosen = Id;
    }
    assert(Chosen != InvalidCore && "deadlock: no runnable core");
    Core &C = Cores[Chosen];

    if (Obs) {
      // Publish the acting core's clock (the global minimum, so it only
      // moves forward) for controller-side event timestamps, and let the
      // sampler observe the time crossing its next cadence boundary.
      Obs->Now = C.Now;
      if (Obs->Sampler) {
        TimelineInputs In;
        sampleInputs(In);
        Obs->Sampler->tick(C.Now, In);
      }
    }

    if (C.Current == InvalidStrand) {
      if (Obs && IdleSince[Chosen] == NeverIdle)
        IdleSince[Chosen] = C.Now;
      tryObtainWork(Chosen, C);
      if (Obs && C.Current != InvalidStrand) {
        if (StealWaitHist)
          StealWaitHist->record(C.Now - IdleSince[Chosen]);
        if (Cpi)
          Cpi->add(Chosen, CpiCat::StealWait, C.Now - IdleSince[Chosen]);
        IdleSince[Chosen] = NeverIdle;
        SpanStart[Chosen] = C.Now;
      }
      continue;
    }
    Cycles Before = C.Now;
    if (step(Chosen, C))
      completeStrand(Chosen, C);
    if (Obs)
      BusyCycles[Chosen] += C.Now - Before;
  }

  ReplayResult Result;
  Result.Makespan = LastCompletion;
  Result.Sched = Stats;
  if (Obs) {
    Obs->Now = LastCompletion;
    if (Obs->Sampler) {
      TimelineInputs In;
      sampleInputs(In);
      Obs->Sampler->finalize(LastCompletion, In);
    }
    if (Cpi)
      for (CoreId Id = 0; Id < Cores.size(); ++Id)
        Cpi->setCoreTime(Id, Cores[Id].Now);
  }
  return Result;
}
