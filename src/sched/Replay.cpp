//===- sched/Replay.cpp - Work-stealing timing replay ---------------------===//
//
// Part of the WARDen reproduction project.
//
//===----------------------------------------------------------------------===//

#include "src/sched/Replay.h"

#include "src/obs/ChromeTraceExporter.h"
#include "src/obs/CpiStack.h"
#include "src/obs/EventLog.h"
#include "src/obs/MetricRegistry.h"
#include "src/obs/Observability.h"
#include "src/obs/TimelineSampler.h"
#include "src/support/JobPool.h"

#include <algorithm>
#include <cassert>

using namespace warden;

Replayer::Replayer(const TaskGraph &Graph, CoherenceController &Controller,
                   std::uint64_t Seed)
    : Graph(Graph), Controller(Controller), Config(Controller.config()),
      Random(Seed), Cores(Config.totalCores()),
      JoinPending(Graph.size(), 0) {
  for (StrandId Id = 0; Id < Graph.size(); ++Id)
    JoinPending[Id] = Graph.strand(Id).PendingJoin;
  Remaining = Graph.size();
  for (Core &C : Cores)
    C.StoreBuffer.init(Config.StoreBufferEntries);
}

Replayer::~Replayer() = default;

void Replayer::attachObs(Observability *NewObs) {
  Obs = NewObs;
  StealWaitHist =
      Obs && Obs->Metrics
          ? &Obs->Metrics->histogram("sched.steal_wait_cycles")
          : nullptr;
  Cpi = Obs ? Obs->Cpi : nullptr;
  Evl = Obs ? Obs->Log : nullptr;
  if (Obs && Obs->Sampler)
    Obs->Sampler->attachTrace(Obs->Trace);
  if (Obs) {
    IdleSince.assign(Cores.size(), NeverIdle);
    SpanStart.assign(Cores.size(), 0);
    BusyCycles.assign(Cores.size(), 0);
    if (Obs->Trace)
      Obs->Trace->setCoreCount(static_cast<unsigned>(Cores.size()));
  }
}

void Replayer::sampleInputs(TimelineInputs &In) const {
  In.Instructions = Stats.Instructions;
  In.Invalidations = Controller.stats().Invalidations;
  In.Downgrades = Controller.stats().Downgrades;
  In.RegionOccupancy = Controller.regionTable().size();
  In.BusyCycles = &BusyCycles;
  if (Config.Protocol == ProtocolKind::Racoh) {
    const CoherenceStats &CS = Controller.stats();
    In.LogCoherence = true;
    In.LogPublishes = CS.LogPublishes;
    In.LogRecordsPublished = CS.LogRecordsPublished;
    In.LogRecordsConsumed = CS.LogRecordsConsumed;
    In.LogBackpressureStalls = CS.LogBackpressureStalls;
    In.LogInvalidations = CS.LogInvalidations;
    In.PreInvalidateAvoided = CS.PreInvalidateAvoided;
    In.CrossNodeHops = CS.CrossNodeHops;
    In.LogQueuePeakOccupancy = CS.LogQueuePeakOccupancy;
  }
}

void Replayer::drainStoreBuffer(Core &C) {
  while (!C.StoreBuffer.empty() && C.StoreBuffer.front() <= C.Now)
    C.StoreBuffer.pop_front();
}

bool Replayer::step(CoreId Id, Core &C) {
  const Strand &S = Graph.strand(C.Current);
  if (C.NextEvent >= S.Events.size())
    return true;
  const TraceEvent &E = S.Events[C.NextEvent++];

  switch (E.Op) {
  case TraceOp::Work:
    C.Now += E.Extra;
    Stats.Instructions += E.Extra;
    if (Cpi)
      Cpi->add(Id, CpiCat::Compute, E.Extra);
    break;
  case TraceOp::Load: {
    Cycles Lat = Controller.access(Id, E.Address, E.Size, AccessType::Load);
    Cycles Spent = std::max<Cycles>(Lat, 1);
    C.Now += Spent;
    Stats.Instructions += 1;
    if (Cpi) {
      // The access latency was charged category-by-category inside the
      // controller; the min-1-cycle issue padding is compute.
      Cpi->commitCritical(Id);
      Cpi->add(Id, CpiCat::Compute, Spent - Lat);
    }
    break;
  }
  case TraceOp::Rmw: {
    Cycles Lat = Controller.access(Id, E.Address, E.Size, AccessType::Rmw);
    Cycles Spent = std::max<Cycles>(Lat, 1);
    C.Now += Spent;
    Stats.Instructions += 1;
    if (Cpi) {
      Cpi->commitCritical(Id);
      Cpi->add(Id, CpiCat::Compute, Spent - Lat);
    }
    break;
  }
  case TraceOp::Store: {
    drainStoreBuffer(C);
    if (C.StoreBuffer.size() >= Config.StoreBufferEntries) {
      // Stall until the oldest store retires.
      Cycles Free = C.StoreBuffer.front();
      assert(Free > C.Now && "expired entry survived drain");
      Stats.StoreStallCycles += Free - C.Now;
      if (Cpi)
        Cpi->add(Id, CpiCat::StoreBufferStall, Free - C.Now);
      C.Now = Free;
      drainStoreBuffer(C);
    }
    Cycles Lat = Controller.access(Id, E.Address, E.Size, AccessType::Store);
    C.StoreBuffer.push_back(C.Now + 1 + Lat +
                            Config.StoreRetireCycles *
                                static_cast<Cycles>(C.StoreBuffer.size()));
    C.Now += 1; // Issue into the store buffer.
    Stats.Instructions += 1;
    if (Cpi) {
      // The store's miss latency is off the critical path (it retires
      // through the buffer); keep it visible but out of accounted time.
      Cpi->commitBuffered(Id);
      Cpi->add(Id, CpiCat::Compute, 1);
    }
    break;
  }
  case TraceOp::MarkRegion: {
    Cycles Cost = Controller.addRegion(E.Region, E.Address, E.Extra);
    C.Now += Cost;
    Stats.RegionInstrCycles += Cost;
    if (Config.Protocol == ProtocolKind::Warden)
      Stats.Instructions += 1;
    if (Cpi)
      Cpi->add(Id, CpiCat::Reconcile, Cost);
    break;
  }
  case TraceOp::UnmarkRegion: {
    Cycles Cost = Controller.removeRegion(E.Region, Id);
    C.Now += Cost;
    Stats.RegionInstrCycles += Cost;
    if (Config.Protocol == ProtocolKind::Warden)
      Stats.Instructions += 1;
    if (Cpi)
      Cpi->add(Id, CpiCat::Reconcile, Cost);
    break;
  }
  }
  return C.NextEvent >= S.Events.size();
}

void Replayer::completeStrand(CoreId Id, Core &C) {
  if (Obs && Obs->Trace)
    Obs->Trace->taskSpan(Id, C.Current, SpanStart[Id], C.Now);
  const Strand &S = Graph.strand(C.Current);
  assert(Remaining > 0 && "completing with nothing outstanding");
  --Remaining;
  ++Stats.StrandsExecuted;

  StrandId Next = InvalidStrand;
  if (S.isForkPoint()) {
    C.Now += Config.ForkOverhead;
    if (Cpi)
      Cpi->add(Id, CpiCat::Compute, Config.ForkOverhead);
    // Continue with the first child; expose the rest for stealing. The
    // deque bottom pointer is published through ordinary coherent memory.
    Controller.access(Id, dequeLine(Id), 8, AccessType::Store);
    C.Now += 1;
    Stats.Instructions += 1;
    if (Cpi) {
      Cpi->commitBuffered(Id);
      Cpi->add(Id, CpiCat::Compute, 1);
    }
    Next = S.Children.front();
    for (std::size_t I = 1; I < S.Children.size(); ++I)
      C.Deque.push_back({S.Children[I], C.Now});
  } else if (S.JoinTarget != InvalidStrand) {
    C.Now += Config.JoinOverhead;
    if (Cpi)
      Cpi->add(Id, CpiCat::Compute, Config.JoinOverhead);
    assert(JoinPending[S.JoinTarget] > 0 && "join counter underflow");
    if (--JoinPending[S.JoinTarget] == 0) {
      Next = S.JoinTarget; // The last finisher runs the continuation.
      // The continuation consumes every joined strand's data: an acquire.
      // Eager protocols return 0 having done nothing, so the guarded body
      // is never entered and the replay is cycle-identical to one without
      // the hook.
      if (Cycles Cost = Controller.syncAcquire(Id)) {
        C.Now += Cost;
        Stats.SyncCycles += Cost;
        if (Cpi)
          Cpi->add(Id, CpiCat::Reconcile, Cost);
        if (Evl)
          Evl->emit(C.Now, EvKind::SyncAcquire,
                    static_cast<std::uint16_t>(Id), 0,
                    static_cast<std::uint32_t>(Cost));
      }
    }
  }

  if (Next == InvalidStrand && !C.Deque.empty()) {
    Next = C.Deque.back().Strand; // LIFO on the owner's side.
    C.Deque.pop_back();
    // Popping updates the deque bottom pointer.
    Controller.access(Id, dequeLine(Id), 8, AccessType::Store);
    C.Now += 1;
    Stats.Instructions += 1;
    if (Cpi) {
      Cpi->commitBuffered(Id);
      Cpi->add(Id, CpiCat::Compute, 1);
    }
  }

  // Completing a strand publishes its writes: a release. Lazy protocols
  // push their dirty lines here; eager ones return 0 without touching
  // state (same cycle-identity argument as the acquire above).
  if (Cycles Cost = Controller.syncRelease(Id)) {
    C.Now += Cost;
    Stats.SyncCycles += Cost;
    if (Cpi)
      Cpi->add(Id, CpiCat::Reconcile, Cost);
    if (Evl)
      Evl->emit(C.Now, EvKind::SyncRelease, static_cast<std::uint16_t>(Id), 0,
                static_cast<std::uint32_t>(Cost));
  }

  LastCompletion = std::max(LastCompletion, C.Now);
  C.Current = Next;
  C.NextEvent = 0;
  if (Obs && Next != InvalidStrand)
    SpanStart[Id] = C.Now;
}

void Replayer::tryObtainWork(CoreId Id, Core &C) {
  if (!C.Deque.empty()) {
    C.Current = C.Deque.back().Strand;
    C.Now = std::max(C.Now, C.Deque.back().Ready);
    C.Deque.pop_back();
    C.NextEvent = 0;
    return;
  }
  // Random-victim steal, FIFO end (the classic work-stealing discipline).
  CoreId Victim = static_cast<CoreId>(Random.nextBelow(Cores.size()));
  if (Victim == Id) {
    C.Now += Config.StealOverhead;
    ++Stats.FailedSteals;
    return;
  }
  // A thief is about to consume another core's data: an acquire. Under
  // SISD this is where the stale copies die; eager protocols return 0.
  if (Cycles Cost = Controller.syncAcquire(Id)) {
    C.Now += Cost;
    Stats.SyncCycles += Cost;
    if (Evl)
      Evl->emit(C.Now, EvKind::SyncAcquire, static_cast<std::uint16_t>(Id), 0,
                static_cast<std::uint32_t>(Cost));
  }
  // Probe the victim's deque line: a real coherent load that ping-pongs
  // against the victim's pushes and pops. Idle cores generate this
  // busy-wait traffic for as long as they stay idle, so it shrinks with
  // execution time — the effect behind the paper's ray analysis.
  Cycles ProbeLat =
      Controller.access(Id, dequeLine(Victim), 8, AccessType::Load);
  if (Cpi)
    Cpi->discard(); // Probe time is covered by the StealWait window.
  C.Now += std::max<Cycles>(ProbeLat, 1);
  Stats.Instructions += 1;
  ++Stats.StealProbes;
  if (!Cores[Victim].Deque.empty()) {
    const auto &Stolen = Cores[Victim].Deque.front();
    // Taking the item is an atomic exchange on the victim's deque line.
    Cycles TakeLat =
        Controller.access(Id, dequeLine(Victim), 8, AccessType::Rmw);
    if (Cpi)
      Cpi->discard();
    C.Current = Stolen.Strand;
    // A strand cannot start before the fork that created it completed.
    C.Now = std::max(C.Now + TakeLat + Config.StealOverhead,
                     Stolen.Ready + Config.StealOverhead);
    Stats.Instructions += 1;
    Cores[Victim].Deque.pop_front();
    C.NextEvent = 0;
    ++Stats.Steals;
    if (Evl)
      Evl->emit(C.Now, EvKind::Steal, static_cast<std::uint16_t>(Id),
                dequeLine(Victim), Victim);
    return;
  }
  C.Now += Config.StealOverhead;
  ++Stats.FailedSteals;
}

ReplayResult Replayer::run() {
  // Observability sinks (sampler ticks, CPI commits, controller event
  // timestamps) need the one-event-at-a-time global interleaving; anything
  // else takes the batched engine. Both produce byte-identical results.
  if (Obs)
    return runObserved();
  return runEngine();
}

ReplayResult Replayer::runObserved() {
  assert(Graph.root() != InvalidStrand && "graph has no root");
  // Each worker initialises its own deque at startup, which also gives the
  // deque line a sensible first-touch home on the worker's own socket.
  for (CoreId Id = 0; Id < Cores.size(); ++Id) {
    Controller.access(Id, dequeLine(Id), 8, AccessType::Store);
    if (Cpi)
      Cpi->commitBuffered(Id);
  }
  Cores[0].Current = Graph.root();

  while (Remaining > 0) {
    // Advance the core with the smallest local time (ties: lowest id).
    // Idle cores keep probing for work — that busy waiting is part of the
    // modelled behaviour — but they stop once nothing is outstanding.
    CoreId Chosen = InvalidCore;
    for (CoreId Id = 0; Id < Cores.size(); ++Id) {
      Core &C = Cores[Id];
      if (Chosen == InvalidCore || C.Now < Cores[Chosen].Now)
        Chosen = Id;
    }
    assert(Chosen != InvalidCore && "deadlock: no runnable core");
    Core &C = Cores[Chosen];

    if (Obs) {
      // Publish the acting core's clock (the global minimum, so it only
      // moves forward) for controller-side event timestamps, and let the
      // sampler observe the time crossing its next cadence boundary.
      Obs->Now = C.Now;
      if (Obs->Sampler) {
        TimelineInputs In;
        sampleInputs(In);
        Obs->Sampler->tick(C.Now, In);
      }
    }

    if (C.Current == InvalidStrand) {
      if (Obs && IdleSince[Chosen] == NeverIdle)
        IdleSince[Chosen] = C.Now;
      tryObtainWork(Chosen, C);
      if (Obs && C.Current != InvalidStrand) {
        if (StealWaitHist)
          StealWaitHist->record(C.Now - IdleSince[Chosen]);
        if (Cpi)
          Cpi->add(Chosen, CpiCat::StealWait, C.Now - IdleSince[Chosen]);
        IdleSince[Chosen] = NeverIdle;
        SpanStart[Chosen] = C.Now;
      }
      continue;
    }
    Cycles Before = C.Now;
    if (step(Chosen, C))
      completeStrand(Chosen, C);
    if (Obs)
      BusyCycles[Chosen] += C.Now - Before;
  }

  ReplayResult Result;
  Result.Makespan = LastCompletion;
  Result.Sched = Stats;
  if (Obs) {
    Obs->Now = LastCompletion;
    if (Obs->Sampler) {
      TimelineInputs In;
      sampleInputs(In);
      Obs->Sampler->finalize(LastCompletion, In);
    }
    if (Cpi)
      for (CoreId Id = 0; Id < Cores.size(); ++Id)
        Cpi->setCoreTime(Id, Cores[Id].Now);
  }
  return Result;
}

ReplayResult Replayer::runEngine() {
  assert(Graph.root() != InvalidStrand && "graph has no root");
  const CoreId NumCores = static_cast<CoreId>(Cores.size());
  for (CoreId Id = 0; Id < NumCores; ++Id)
    Controller.access(Id, dequeLine(Id), 8, AccessType::Store);
  Cores[0].Current = Graph.root();

  ClockOf.assign(NumCores, 0);
  const Addr BlockMask = ~(Addr(Config.BlockSize) - 1);
  Limits.BlockSize = Config.BlockSize;
  Limits.DequeLo = dequeLine(0) & BlockMask;
  Limits.DequeHi =
      (dequeLine(NumCores - 1) + 64 + Config.BlockSize - 1) & BlockMask;

  // Epochs need intra-run workers to overlap (at IntraJobs == 1 the
  // staging/footprint bookkeeping is pure overhead on top of the fused
  // serial loop), more than one simulated core, and a controller state in
  // which private hits are provably core-local (protocol opt-in, no
  // per-access observers, no fault injection). Harvesting is
  // semantics-preserving, so enabling it changes host time only.
  const bool EpochsEnabled =
      NumCores > 1 && IntraJobs > 1 && Controller.epochLocalHitsAllowed();
  if (EpochsEnabled) {
    Batches.resize(NumCores);
    Deltas.resize(NumCores);
    EpochWorkers.reserve(NumCores);
    if (IntraJobs > 1 && !IntraPool)
      IntraPool = std::make_unique<JobPool>(
          std::min<unsigned>(IntraJobs, NumCores));
  }

  // Epoch attempts are paced adaptively: staging is wasted work while one
  // core holds all the strands (startup, final join chains), so thin
  // harvests back the cadence off exponentially and a good harvest snaps
  // it back.
  const std::uint64_t MinCadence = NumCores;
  const std::uint64_t MaxCadence = std::uint64_t(64) * NumCores;
  const std::size_t GoodHarvest = std::size_t(8) * NumCores;
  std::uint64_t Cadence = MinCadence;
  std::uint64_t Countdown = Cadence;

  // Pick queue: (clock, id) pairs kept lex-ascending, so the front is
  // always the serial scheduling rule's pick (smallest Now, ties to the
  // lowest id) and the second entry bounds how long the pick may keep
  // running without another ordering decision. Between picks only the
  // picked core's clock changes, so one shift-insertion keeps the queue
  // sorted; epoch merges move many clocks at once and rebuild it.
  std::vector<std::pair<Cycles, CoreId>> Order(NumCores);
  auto RebuildOrder = [&] {
    for (CoreId Id = 0; Id < NumCores; ++Id)
      Order[Id] = {ClockOf[Id], Id};
    std::sort(Order.begin(), Order.end());
  };
  RebuildOrder();

  while (Remaining > 0) {
    if (EpochsEnabled && --Countdown == 0) {
      std::size_t Harvested = attemptEpoch();
      Cadence = Harvested >= GoodHarvest ? MinCadence
                                         : std::min(Cadence * 2, MaxCadence);
      Countdown = Cadence;
      if (Harvested)
        RebuildOrder();
    }

    const CoreId Chosen = Order[0].second;
    Core &C = Cores[Chosen];
    const Cycles RunnerNow = NumCores > 1 ? Order[1].first : NeverIdle;
    const CoreId RunnerId = NumCores > 1 ? Order[1].second : Chosen;
    // The pick stays valid while it remains the strict lex-min — a
    // re-pick would choose it again, so skipping the re-pick is exact.
    auto StillMin = [&] {
      return C.Now < RunnerNow || (C.Now == RunnerNow && Chosen < RunnerId);
    };

    if (C.Current == InvalidStrand) {
      tryObtainWork(Chosen, C);
    } else {
      // Inner run: execute the pick's strand straight off the event array
      // until the runner-up bound is crossed or the strand completes. This
      // is step() specialised for the engine (no observability sinks) with
      // the strand fetch hoisted out of the per-event path.
      while (true) {
        const Strand &S = Graph.strand(C.Current);
        const TraceEvent *Ev = S.Events.data();
        const std::size_t NumEv = S.Events.size();
        bool Bounded = false;
        while (C.NextEvent < NumEv) {
          const TraceEvent &E = Ev[C.NextEvent];
          ++C.NextEvent;
          switch (E.Op) {
          case TraceOp::Work:
            C.Now += E.Extra;
            Stats.Instructions += E.Extra;
            break;
          case TraceOp::Load:
          case TraceOp::Rmw: {
            Cycles Lat = Controller.access(Chosen, E.Address, E.Size,
                                           E.Op == TraceOp::Load
                                               ? AccessType::Load
                                               : AccessType::Rmw);
            C.Now += std::max<Cycles>(Lat, 1);
            Stats.Instructions += 1;
            break;
          }
          case TraceOp::Store: {
            drainStoreBuffer(C);
            if (C.StoreBuffer.size() >= Config.StoreBufferEntries) {
              Cycles Free = C.StoreBuffer.front();
              assert(Free > C.Now && "expired entry survived drain");
              Stats.StoreStallCycles += Free - C.Now;
              C.Now = Free;
              drainStoreBuffer(C);
            }
            Cycles Lat =
                Controller.access(Chosen, E.Address, E.Size, AccessType::Store);
            C.StoreBuffer.push_back(C.Now + 1 + Lat +
                                    Config.StoreRetireCycles *
                                        static_cast<Cycles>(
                                            C.StoreBuffer.size()));
            C.Now += 1; // Issue into the store buffer.
            Stats.Instructions += 1;
            break;
          }
          case TraceOp::MarkRegion: {
            Cycles Cost = Controller.addRegion(E.Region, E.Address, E.Extra);
            C.Now += Cost;
            Stats.RegionInstrCycles += Cost;
            if (Config.Protocol == ProtocolKind::Warden)
              Stats.Instructions += 1;
            break;
          }
          case TraceOp::UnmarkRegion: {
            Cycles Cost = Controller.removeRegion(E.Region, Chosen);
            C.Now += Cost;
            Stats.RegionInstrCycles += Cost;
            if (Config.Protocol == ProtocolKind::Warden)
              Stats.Instructions += 1;
            break;
          }
          }
          if (!StillMin()) {
            Bounded = C.NextEvent < NumEv;
            break;
          }
        }
        if (Bounded)
          break; // Bound crossed mid-strand: someone else's turn.
        // Strand exhausted: completing it belongs to the pick that ran its
        // final event, regardless of the bound (one atomic scheduler step).
        completeStrand(Chosen, C);
        if (C.Current == InvalidStrand || Remaining == 0 || !StillMin())
          break;
      }
    }
    ClockOf[Chosen] = C.Now;
    // Re-insert the pick at its new clock, shifting smaller entries left.
    const std::pair<Cycles, CoreId> Key{C.Now, Chosen};
    CoreId Pos = 0;
    while (Pos + 1 < NumCores && Order[Pos + 1] < Key) {
      Order[Pos] = Order[Pos + 1];
      ++Pos;
    }
    Order[Pos] = Key;
  }

  ReplayResult Result;
  Result.Makespan = LastCompletion;
  Result.Sched = Stats;
  return Result;
}

std::size_t Replayer::attemptEpoch() {
  const CoreId NumCores = static_cast<CoreId>(Cores.size());
  // Idle cores interact immediately (their next pick is a steal attempt),
  // so they bound the horizon before any staging happens. The common
  // starved case — an idle core at or below every busy clock — admits no
  // epoch at all; detect it before paying for any staging.
  Cycles IdleMin = NeverIdle;
  Cycles BusyMin = NeverIdle;
  for (CoreId Id = 0; Id < NumCores; ++Id) {
    const Core &C = Cores[Id];
    if (C.Current == InvalidStrand)
      IdleMin = std::min(IdleMin, C.Now);
    else
      BusyMin = std::min(BusyMin, C.Now);
  }
  if (BusyMin == NeverIdle || IdleMin <= BusyMin)
    return 0;

  // Stage busy cores in ascending clock order under a running horizon
  // bound: each core stops staging once its earliest exit reaches the
  // bound the earlier (lex-smaller) cores established, so the staging work
  // per attempt tracks the epoch's actual width instead of the cap.
  StageOrder.clear();
  for (CoreId Id = 0; Id < NumCores; ++Id)
    if (Cores[Id].Current != InvalidStrand && Cores[Id].Now < IdleMin)
      StageOrder.emplace_back(Cores[Id].Now, Id);
  std::sort(StageOrder.begin(), StageOrder.end());

  Limits.MaxEvents = StageCap;
  Cycles Horizon = IdleMin;
  EpochWorkers.clear();
  std::size_t Staged = 0;
  for (const auto &[Clock, Id] : StageOrder) {
    Core &C = Cores[Id];
    if (C.Now >= Horizon)
      continue; // Unstaged cores act at >= Now >= Horizon: residue order.
    stageEpochPrefix(Graph.strand(C.Current), C.NextEvent, C.Now, Horizon,
                     Limits, Batches[Id]);
    Staged += Batches[Id].size();
    EpochWorkers.push_back(Id);
    Horizon = std::min(Horizon, Batches[Id].MinExit);
  }
  // Staging may have lowered the horizon below an earlier candidate's
  // clock; drop those — their staged events belong to the serial residue.
  std::size_t Kept = 0;
  for (CoreId Id : EpochWorkers)
    if (Cores[Id].Now < Horizon)
      EpochWorkers[Kept++] = Id;
  EpochWorkers.resize(Kept);
  if (EpochWorkers.empty())
    return 0;

  Conflicts.beginEpoch();
  if (EpochWorkers.size() > 1) {
    const Addr BlockMask = ~(Addr(Limits.BlockSize) - 1);
    for (CoreId Id : EpochWorkers)
      Conflicts.addFootprint(Batches[Id], BlockMask);
  }
  for (CoreId Id : EpochWorkers)
    Deltas[Id].clear();

  const Cycles Bound = Horizon;
  if (IntraPool && EpochWorkers.size() > 1)
    IntraPool->parallelFor(EpochWorkers.size(), [this, Bound](std::size_t I) {
      runEpochBatch(EpochWorkers[I], Bound);
    });
  else
    for (CoreId Id : EpochWorkers)
      runEpochBatch(Id, Bound);

  // Merge in fixed core order. Every delta field is a pure sum, so the
  // merged totals are independent of worker interleaving — and identical
  // to what the serial loop would have accumulated event by event.
  std::size_t Harvested = 0;
  for (CoreId Id : EpochWorkers) {
    const EpochDelta &D = Deltas[Id];
    Harvested += D.Executed;
    Stats.Instructions += D.Instructions;
    Stats.StoreStallCycles += D.StoreStallCycles;
    Controller.mergeLocalHits(D.Hits);
    ClockOf[Id] = Cores[Id].Now;
  }
  // Adapt the staging cap to the harvest: consuming most of what was
  // staged earns a deeper stage next time, a wasteful attempt halves it.
  if (Harvested * 2 >= Staged)
    StageCap = std::min<std::size_t>(StageCap * 2, MaxStageCap);
  else if (Harvested * 8 < Staged)
    StageCap = std::max<std::size_t>(StageCap / 2, MinStageCap);
  return Harvested;
}

void Replayer::runEpochBatch(CoreId Id, Cycles Horizon) {
  Core &C = Cores[Id];
  const EpochBatch &B = Batches[Id];
  EpochDelta &D = Deltas[Id];
  // Worker-local region span cache: never the table's shared MRU, which
  // other workers would race on.
  RegionTable::RegionSpan Span;
  const bool CheckConflicts = Conflicts.hasContention();
  const Addr BlockMask = ~(Addr(Limits.BlockSize) - 1);
  const TraceEvent *Ev = B.Ev;
  const std::size_t Count = B.Count;
  std::size_t I = 0;
  for (; I < Count; ++I) {
    const TraceEvent &E = Ev[I];
    if (E.Op == TraceOp::Work) {
      // Pure compute commutes with everything (its only shared effect is
      // the instruction sum), so it may even cross the horizon — the
      // access bound below then ends the batch.
      C.Now += E.Extra;
      D.Instructions += E.Extra;
      continue;
    }
    // Start bound: the serial engine picks an event when its core's clock
    // is the lex-min, then executes it atomically — its ordering relative
    // to every residue action depends only on its START time. So an event
    // starting inside the window is harvestable even when its latency or
    // store-buffer stall carries the clock past the horizon.
    if (C.Now >= Horizon)
      break;
    const Addr Block = E.Address & BlockMask;
    if (CheckConflicts && Conflicts.contended(Block))
      break; // Contended blocks are arbitrated by the serial residue.
    const unsigned Offset = static_cast<unsigned>(E.Address - Block);
    Cycles Lat = 0;
    if (E.Op == TraceOp::Store) {
      drainStoreBuffer(C);
      // Reject (miss or upgrade: an interaction point) before mutating
      // anything; the drain above is idempotent under serial replay.
      if (!Controller.tryLocalHit(Id, Block, Offset, E.Size,
                                  AccessType::Store, D.Hits, Span, Lat))
        break;
      if (C.StoreBuffer.size() >= Config.StoreBufferEntries) {
        // A full buffer stalls the issue until the oldest store retires.
        Cycles Free = C.StoreBuffer.front();
        D.StoreStallCycles += Free - C.Now;
        C.Now = Free;
        drainStoreBuffer(C);
      }
      C.StoreBuffer.push_back(C.Now + 1 + Lat +
                              Config.StoreRetireCycles *
                                  static_cast<Cycles>(C.StoreBuffer.size()));
      C.Now += 1; // Issue into the store buffer.
      D.Instructions += 1;
    } else { // Load or RMW: blocking.
      AccessType Type =
          E.Op == TraceOp::Load ? AccessType::Load : AccessType::Rmw;
      if (!Controller.tryLocalHit(Id, Block, Offset, E.Size, Type, D.Hits,
                                  Span, Lat))
        break;
      C.Now += std::max<Cycles>(Lat, 1);
      D.Instructions += 1;
    }
  }
  C.NextEvent += I;
  D.Executed = I;
}
