//===- sched/Epoch.cpp - Epoch-barriered parallel replay support ----------===//
//
// Part of the WARDen reproduction project.
//
//===----------------------------------------------------------------------===//

#include "src/sched/Epoch.h"

using namespace warden;

void warden::stageEpochPrefix(const Strand &S, std::size_t From, Cycles Now,
                              Cycles Bound, const EpochLimits &Limits,
                              EpochBatch &Out) {
  Cycles MinExit = Now;
  const Addr BlockMask = ~(Addr(Limits.BlockSize) - 1);
  const std::size_t End =
      std::min(S.Events.size(), From + Limits.MaxEvents);
  std::size_t I = From;
  for (; I < End && MinExit < Bound; ++I) {
    const TraceEvent &E = S.Events[I];
    if (E.Op == TraceOp::Work) {
      MinExit += E.Extra;
      continue;
    }
    if (E.Op == TraceOp::MarkRegion || E.Op == TraceOp::UnmarkRegion)
      break; // Region instructions mutate the shared region table.
    const Addr Block = E.Address & BlockMask;
    const Addr Offset = E.Address - Block;
    if (E.Size == 0 ||                        // Rejected-access path.
        Offset + E.Size > Limits.BlockSize || // Block-crossing split.
        (Block >= Limits.DequeLo && Block < Limits.DequeHi))
      break;
    MinExit += 1; // Every access advances the core by at least one cycle.
  }
  Out.Ev = S.Events.data() + From;
  Out.Count = I - From;
  Out.MinExit = MinExit;
}

void EpochConflicts::addFootprint(const EpochBatch &Batch, Addr BlockMask) {
  const std::uint64_t Tag = Gen << TokenBits;
  const std::uint64_t Mine = Tag | NextToken++;
  Addr Last = ~Addr(0);
  for (std::size_t I = 0; I < Batch.Count; ++I) {
    const TraceEvent &E = Batch.Ev[I];
    if (E.Op == TraceOp::Work)
      continue;
    const Addr Block = E.Address & BlockMask;
    if (Block == Last)
      continue; // Consecutive same-block run: already registered.
    Last = Block;
    auto [It, Inserted] = Owners.try_emplace(Block, Mine);
    if (Inserted)
      continue;
    const std::uint64_t V = It.value();
    if ((V >> TokenBits) != Gen)
      It.value() = Mine; // Stale entry from an earlier epoch.
    else if (V != Mine) {
      It.value() = Tag | Multi;
      Contention = true;
    }
  }
}
