//===- sched/Replay.h - Work-stealing timing replay ------------*- C++ -*-===//
//
// Part of the WARDen reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Phase-2 timing simulation: a deterministic work-stealing scheduler
/// replays a recorded TaskGraph on the simulated machine. A global loop
/// always advances the core with the smallest local time (ties broken by
/// core id), so every coherence interaction is processed in timestamp
/// order. Loads and atomics block; stores retire through a finite store
/// buffer and stall the core only when it is full — the behaviour Section
/// 7.2 leans on to explain why downgrades (loads) dominate invalidations
/// (stores) for application performance.
///
//===----------------------------------------------------------------------===//

#ifndef WARDEN_SCHED_REPLAY_H
#define WARDEN_SCHED_REPLAY_H

#include "src/coherence/CoherenceController.h"
#include "src/sched/Epoch.h"
#include "src/support/Rng.h"
#include "src/trace/TaskGraph.h"

#include <deque>
#include <memory>
#include <vector>

namespace warden {

class CpiStack;
class EventLog;
class Histogram;
class JobPool;
struct Observability;
struct TimelineInputs;

/// Scheduler-level statistics for one replay.
struct SchedulerStats {
  std::uint64_t StrandsExecuted = 0;
  std::uint64_t Steals = 0;
  std::uint64_t FailedSteals = 0;
  std::uint64_t Instructions = 0;
  std::uint64_t StealProbes = 0; ///< Deque probe loads issued by thieves.
  Cycles StoreStallCycles = 0;
  Cycles RegionInstrCycles = 0; ///< Cycles spent in add/remove-region work.
  /// Cycles spent in protocol synchronization hooks (SISD's self-
  /// invalidation/self-downgrade work; always 0 for eager protocols).
  Cycles SyncCycles = 0;
};

/// Outcome of one replay.
struct ReplayResult {
  Cycles Makespan = 0;
  SchedulerStats Sched;
};

/// Replays a TaskGraph against a coherence controller.
class Replayer {
public:
  Replayer(const TaskGraph &Graph, CoherenceController &Controller,
           std::uint64_t Seed = 0x5eed);
  ~Replayer(); // Out of line: IntraPool's JobPool is incomplete here.

  /// Attaches (or with nullptr detaches) observability sinks: steal-wait
  /// histograms, the timeline sampler, and per-strand task spans for the
  /// trace exporter. Recording only; an attached replay is cycle-identical
  /// to a detached one. Also keeps Observability::Now at the acting core's
  /// clock so the controller can timestamp its own events.
  void attachObs(Observability *NewObs);

  /// Sets the intra-run worker count for the epoch-barriered parallel
  /// engine (1 = serial epochs, still harvested; the default). Harvesting
  /// is semantics-preserving, so any value produces byte-identical
  /// results; only host time changes. Call before run().
  void setIntraJobs(unsigned Jobs) { IntraJobs = Jobs == 0 ? 1 : Jobs; }

  /// Runs the whole graph to completion and returns timing results.
  ReplayResult run();

private:
  /// Fixed-capacity FIFO of store completion times. The simulated buffer
  /// never exceeds Config.StoreBufferEntries entries (a full buffer
  /// stalls the issuing core before the next push), so a power-of-two
  /// ring with free-running indices replaces std::deque on the hot path.
  class StoreRing {
  public:
    void init(std::size_t Entries) {
      std::size_t Cap = 1;
      while (Cap < Entries)
        Cap *= 2;
      Buf.assign(Cap, 0);
      Mask = static_cast<std::uint32_t>(Cap - 1);
      Head = Tail = 0;
    }
    bool empty() const { return Head == Tail; }
    std::uint32_t size() const { return Tail - Head; }
    Cycles front() const { return Buf[Head & Mask]; }
    void push_back(Cycles T) { Buf[Tail++ & Mask] = T; }
    void pop_front() { ++Head; }

  private:
    std::vector<Cycles> Buf;
    std::uint32_t Mask = 0;
    std::uint32_t Head = 0;
    std::uint32_t Tail = 0;
  };

  struct Core {
    Cycles Now = 0;
    StrandId Current = InvalidStrand;
    std::size_t NextEvent = 0;
    /// A deque entry: the strand plus the time it became stealable.
    struct Item {
      StrandId Strand;
      Cycles Ready;
    };
    std::deque<Item> Deque; ///< Back = newest (own pops), front = steals.
    StoreRing StoreBuffer; ///< Completion times, FIFO.
  };

  /// Executes one trace event on \p C (core \p Id); returns true if the
  /// strand completed.
  bool step(CoreId Id, Core &C);
  void completeStrand(CoreId Id, Core &C);
  void tryObtainWork(CoreId Id, Core &C);
  void drainStoreBuffer(Core &C);

  /// The engine without observability sinks: a batched scheduler loop
  /// (SoA clock scan, runner-up-horizon inner runs) plus, when the
  /// controller allows it, epoch-barriered parallel harvesting of
  /// private-hit runs. Produces results byte-identical to runObserved()
  /// minus the recording.
  ReplayResult runEngine();
  /// The reference serial loop, used whenever observability sinks are
  /// attached: per-pick sampler ticks and controller event timestamps
  /// need the one-event-at-a-time global interleaving.
  ReplayResult runObserved();

  // --- Epoch engine (see sched/Epoch.h) -----------------------------------
  /// Stages every runnable core's prefix, computes the horizon and the
  /// contended-block set, runs one worker per staged core (on IntraPool
  /// when IntraJobs > 1, inline otherwise), and merges the deltas in fixed
  /// core order. Returns the number of events harvested.
  std::size_t attemptEpoch();
  /// Worker body: executes core \p Id's staged batch until the first
  /// miss/upgrade, contended block, or the horizon \p Horizon. Touches
  /// only core-local state and the core's own delta slot.
  void runEpochBatch(CoreId Id, Cycles Horizon);

  /// Simulated address of core I's deque bottom/top word. Work-stealing
  /// deques live in ordinary coherent memory (they are synchronisation, so
  /// never WARD): owners update them at forks and pops, thieves read them
  /// when probing for work. This busy-wait-style traffic is what the paper
  /// credits for ray's instruction-count reduction (Section 7.2).
  Addr dequeLine(CoreId Core) const { return 0x8000 + Addr(Core) * 64; }

  const TaskGraph &Graph;
  CoherenceController &Controller;
  const MachineConfig &Config;
  Rng Random;
  std::vector<Core> Cores;
  std::vector<std::uint32_t> JoinPending; ///< Mutable per-strand join counts.
  std::uint64_t Remaining = 0;
  Cycles LastCompletion = 0;
  SchedulerStats Stats;

  // --- Epoch-engine state (all reused across epochs; no hot-loop
  // --- allocation) --------------------------------------------------------
  unsigned IntraJobs = 1;
  /// Private pool for intra-run workers, created lazily on the first
  /// eligible run. Deliberately not the suite-level pool: its help-first
  /// waiting could adopt another simulation's long task inside an epoch
  /// barrier and stall this run.
  std::unique_ptr<JobPool> IntraPool;
  std::vector<Cycles> ClockOf;   ///< SoA mirror of Cores[i].Now.
  std::vector<EpochBatch> Batches;
  std::vector<EpochDelta> Deltas;
  std::vector<CoreId> EpochWorkers;
  /// Staging order scratch: busy cores ascending by (clock, id), so each
  /// later core's staging stops at the horizon the earlier ones set.
  std::vector<std::pair<Cycles, CoreId>> StageOrder;
  EpochConflicts Conflicts;
  EpochLimits Limits;
  /// Adaptive per-core staging cap: grown when epochs consume what was
  /// staged, shrunk when staging outruns the harvest — bounding the
  /// staging work wasted on conflict- or miss-heavy phases.
  static constexpr std::size_t MinStageCap = 64;
  static constexpr std::size_t MaxStageCap = 2048;
  std::size_t StageCap = MinStageCap;

  // --- Observability (optional; inert when detached) ------------------------
  /// Builds the sampler's view of the cumulative machine counters.
  void sampleInputs(TimelineInputs &In) const;
  Observability *Obs = nullptr; ///< Not owned.
  Histogram *StealWaitHist = nullptr;
  /// Per-core cycle accounting, cached from the bundle at attach time. The
  /// replayer owns the commit discipline: after every Controller.access()
  /// the controller-side scratch charges are committed (critical for
  /// loads/RMWs, buffered for stores) or discarded (steal probes, whose
  /// time is covered by the StealWait window).
  CpiStack *Cpi = nullptr;
  /// Streaming event log, cached from the bundle at attach time. The
  /// replayer emits the scheduler-side events (sync points with nonzero
  /// cost, successful steals); the controller emits the coherence side.
  EventLog *Evl = nullptr;
  static constexpr Cycles NeverIdle = static_cast<Cycles>(-1);
  std::vector<Cycles> IdleSince;  ///< Per core; NeverIdle when running.
  std::vector<Cycles> SpanStart;  ///< Start time of the current strand.
  std::vector<Cycles> BusyCycles; ///< Cumulative strand-executing cycles.
};

} // namespace warden

#endif // WARDEN_SCHED_REPLAY_H
