//===- sched/Epoch.h - Epoch-barriered parallel replay support -*- C++ -*-===//
//
// Part of the WARDen reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Building blocks of the replayer's epoch-barriered intra-run parallel
/// mode (DESIGN.md "Execution engine"). An *epoch* is a conservative window
/// in which cores advance independently: each core's stageable strand
/// prefix is snapshotted into a struct-of-arrays batch, the batches'
/// block footprints are intersected to find contended blocks, and a global
/// horizon T* = min over cores of the earliest time a core can perform its
/// first unstaged action bounds how far any worker may run. Every event a
/// worker executes completes at sim time <= T*, and every action outside
/// the staged prefixes (strand completions, steals, sync hooks, region
/// instructions, misses) starts at sim time >= T*, so the harvested events
/// commute with the serial residue and the merged run is byte-identical to
/// a fully serial one at any worker count.
///
//===----------------------------------------------------------------------===//

#ifndef WARDEN_SCHED_EPOCH_H
#define WARDEN_SCHED_EPOCH_H

#include "src/coherence/CoherenceStats.h"
#include "src/support/FlatMap.h"
#include "src/support/Types.h"
#include "src/trace/TaskGraph.h"

#include <cstdint>
#include <vector>

namespace warden {

/// Bounds on what stageEpochPrefix() may stage.
struct EpochLimits {
  unsigned BlockSize = 64;
  /// Deque-line address range [DequeLo, DequeHi): scheduler
  /// synchronization traffic, never staged. Recorded application traces
  /// cannot touch it (the heap starts far above), but hand-built test
  /// graphs can.
  Addr DequeLo = 0;
  Addr DequeHi = 0;
  /// Staged-prefix cap per core per epoch, bounding staging cost when the
  /// harvest aborts early.
  std::size_t MaxEvents = 2048;
};

/// The stageable prefix of one core's current strand: a zero-copy view
/// into the strand's own event array. Staging guarantees every event in
/// [Ev, Ev + Count) is a Work burst or a plain single-block, non-deque
/// access, so workers execute straight off the recorded trace.
struct EpochBatch {
  const TraceEvent *Ev = nullptr;
  std::size_t Count = 0;
  /// Earliest sim time the owning core can perform its first unstaged
  /// action: the core's clock plus the summed minimum advance of every
  /// staged event (Work advances exactly its cycle count; every access
  /// advances at least one cycle). The epoch horizon is the minimum of
  /// this over all cores (idle cores contribute their raw clock — a steal
  /// is an immediate interaction).
  Cycles MinExit = 0;

  std::size_t size() const { return Count; }
};

/// Delimits the stageable prefix of \p S.Events[From..] for a core whose
/// clock is \p Now into \p Out. Staging stops at the first region
/// instruction, zero-size access, block-crossing access, deque-line
/// access, after Limits.MaxEvents events, or once the core's earliest-exit
/// time reaches \p Bound — an upper estimate of the epoch horizon: events
/// past it cannot start this epoch, so staging them is pure waste.
/// Truncation is always safe (MinExit stays the first *unstaged* action's
/// earliest time, so the horizon only gets more conservative). Pure
/// function of its inputs.
void stageEpochPrefix(const Strand &S, std::size_t From, Cycles Now,
                      Cycles Bound, const EpochLimits &Limits,
                      EpochBatch &Out);

/// Cross-core staged-footprint intersection: block -> staging core token,
/// or the Multi sentinel once a second core stages the same block. Workers
/// stop before touching any contended block; the contended subset is
/// arbitrated by the serial residue.
///
/// Entries are generation-stamped rather than erased: beginEpoch() bumps
/// the generation, making every surviving entry stale in O(1) instead of
/// paying a full table clear per epoch attempt. The table grows to the
/// run's staged-block universe and stays there.
class EpochConflicts {
public:
  void beginEpoch() {
    ++Gen;
    NextToken = 0;
    Contention = false;
  }

  /// Registers one staged batch's blocks under a fresh owner token.
  void addFootprint(const EpochBatch &Batch, Addr BlockMask);

  /// True when any block is staged by two or more cores. When false,
  /// workers skip the per-access contended() lookup entirely.
  bool hasContention() const { return Contention; }

  /// True when two or more staged cores touch \p Block.
  bool contended(Addr Block) const {
    auto It = Owners.find(Block);
    return It != Owners.end() && It.value() == (Gen << TokenBits | Multi);
  }

private:
  static constexpr std::uint64_t TokenBits = 10; ///< Cores per epoch < 1023.
  static constexpr std::uint64_t Multi = (std::uint64_t(1) << TokenBits) - 1;
  std::uint64_t Gen = 0;
  std::uint64_t NextToken = 0;
  bool Contention = false;
  /// Value: current generation << TokenBits | owner token (Multi once a
  /// second core stages the block). Entries from older generations are
  /// treated as absent and overwritten in place.
  FlatMap<Addr, std::uint64_t> Owners;
};

/// Per-core accumulator an epoch worker fills: the scheduler- and
/// coherence-side counter deltas of its harvested events, merged at the
/// barrier in fixed core order (every field is a pure sum, so merged
/// totals are independent of worker interleaving).
struct EpochDelta {
  LocalHitCounters Hits;
  std::uint64_t Instructions = 0;
  Cycles StoreStallCycles = 0;
  std::size_t Executed = 0; ///< Events consumed from the staged batch.

  void clear() {
    Hits.clear();
    Instructions = 0;
    StoreStallCycles = 0;
    Executed = 0;
  }
};

} // namespace warden

#endif // WARDEN_SCHED_EPOCH_H
