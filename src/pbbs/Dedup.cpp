//===- pbbs/Dedup.cpp - dedup benchmark --------------------------------------===//
//
// Part of the WARDen reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// dedup: count the distinct values of an array with heavy duplication.
/// Sort, then flag group boundaries and sum them — the PBBS
/// "removeDuplicates" structure expressed with the suite's own sort.
///
//===----------------------------------------------------------------------===//

#include "src/pbbs/Pbbs.h"

#include "src/pbbs/Inputs.h"
#include "src/pbbs/Sort.h"
#include "src/rt/Stdlib.h"

#include <unordered_set>

using namespace warden;
using namespace warden::pbbs;

Recorded pbbs::recordDedup(std::size_t Scale, const RtOptions &Options) {
  Runtime Rt(Options);
  // Allocation-site labels scope every array (including the sort's
  // scratch) so the sharing profiler can attribute coherence traffic to
  // the benchmark's data structures by name.
  // A value range of half the element count gives roughly 43% duplication.
  SimArray<std::uint32_t> In = [&] {
    Runtime::AllocSiteScope Site(Rt, "dedup: input");
    return randomArray<std::uint32_t>(Rt, Scale, /*Range=*/Scale / 2,
                                      /*Seed=*/0xded);
  }();

  SimArray<std::uint32_t> Sorted = [&] {
    Runtime::AllocSiteScope Site(Rt, "dedup: sorted");
    return mergeSort(Rt, In,
                     [](std::uint32_t A, std::uint32_t B) { return A < B; },
                     /*Grain=*/128);
  }();

  SimArray<std::uint32_t> Boundary = [&] {
    Runtime::AllocSiteScope Site(Rt, "dedup: boundary flags");
    return stdlib::tabulate<std::uint32_t>(
        Rt, Sorted.size(),
        [&](std::size_t I) {
          if (I == 0)
            return std::uint32_t(1);
          return Sorted.get(I) != Sorted.get(I - 1) ? std::uint32_t(1)
                                                    : std::uint32_t(0);
        },
        256);
  }();
  std::uint32_t Distinct = stdlib::sum(Rt, Boundary, 256);

  std::unordered_set<std::uint32_t> Reference;
  for (std::size_t I = 0; I < In.size(); ++I)
    Reference.insert(In.peek(I));

  Recorded R;
  R.Checksum = Distinct;
  R.Verified =
      (Reference.size() == Distinct) && Rt.raceViolations().empty();
  R.Graph = Rt.finish();
  return R;
}
