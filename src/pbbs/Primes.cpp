//===- pbbs/Primes.cpp - primes benchmark -----------------------------------===//
//
// Part of the WARDen reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The recursive parallel prime sieve of the paper's Figure 4. The flags
/// array is the canonical WARD region: the only races on it are benign
/// write-write races (multiple threads storing the same `false` at indices
/// with several prime factors), so it stays WARD-marked through the whole
/// marking phase and reconciles once at the end.
///
//===----------------------------------------------------------------------===//

#include "src/pbbs/Pbbs.h"

#include "src/rt/Stdlib.h"

#include <cmath>
#include <vector>

using namespace warden;
using namespace warden::pbbs;

namespace {

/// Figure 4's prime_sieve_upto, against the runtime API.
SimArray<std::uint8_t> sieveUpto(Runtime &Rt, std::int64_t N) {
  SimArray<std::uint8_t> Flags = stdlib::tabulate<std::uint8_t>(
      Rt, static_cast<std::size_t>(N + 1),
      [](std::size_t I) { return static_cast<std::uint8_t>(I >= 2); }, 1024);
  if (N >= 4) {
    auto Sqrt = static_cast<std::int64_t>(
        std::floor(std::sqrt(static_cast<double>(N))));
    SimArray<std::uint8_t> SqrtFlags = sieveUpto(Rt, Sqrt);
    // flags is a WARD region throughout the marking phase (Figure 4).
    Runtime::WriteOnlyScope Scope(Rt, Flags.addr(), Flags.bytes());
    Rt.parallelFor(2, Sqrt + 1, 1, [&](std::int64_t P) {
      if (!SqrtFlags.get(static_cast<std::size_t>(P)))
        return;
      // P is prime: mark its multiples composite.
      Rt.parallelFor(2, N / P + 1, 2048, [&](std::int64_t M) {
        Flags.set(static_cast<std::size_t>(P * M), 0);
        Rt.work(1);
      });
    });
  }
  return Flags;
}

std::vector<bool> sieveReference(std::int64_t N) {
  std::vector<bool> Flags(static_cast<std::size_t>(N + 1), true);
  Flags[0] = false;
  if (N >= 1)
    Flags[1] = false;
  for (std::int64_t P = 2; P * P <= N; ++P)
    if (Flags[static_cast<std::size_t>(P)])
      for (std::int64_t M = P * P; M <= N; M += P)
        Flags[static_cast<std::size_t>(M)] = false;
  return Flags;
}

} // namespace

Recorded pbbs::recordPrimes(std::size_t Scale, const RtOptions &Options) {
  auto N = static_cast<std::int64_t>(Scale);
  Runtime Rt(Options);
  SimArray<std::uint8_t> Flags = sieveUpto(Rt, N);

  std::vector<bool> Reference = sieveReference(N);
  bool Ok = true;
  std::uint64_t Count = 0;
  for (std::int64_t I = 0; I <= N; ++I) {
    bool Mine = Flags.peek(static_cast<std::size_t>(I)) != 0;
    Ok &= (Mine == Reference[static_cast<std::size_t>(I)]);
    Count += Mine ? 1 : 0;
  }

  Recorded R;
  R.Checksum = Count;
  R.Verified = Ok && Rt.raceViolations().empty();
  R.Graph = Rt.finish();
  return R;
}
