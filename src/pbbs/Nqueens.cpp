//===- pbbs/Nqueens.cpp - nqueens benchmark -----------------------------------===//
//
// Part of the WARDen reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// nqueens: count the placements of N queens. The top board row is explored
/// in parallel; each branch backtracks sequentially over a board array
/// allocated in its own (WARD) heap, and the counts reduce up through the
/// fork frames.
///
//===----------------------------------------------------------------------===//

#include "src/pbbs/Pbbs.h"

#include "src/rt/Stdlib.h"

#include <cstdlib>
#include <vector>

using namespace warden;
using namespace warden::pbbs;

namespace {

/// Recorded sequential backtracking below the parallel prefix. The board
/// lives in simulated memory so conflict checks generate real loads.
std::uint64_t solveFrom(Runtime &Rt, const SimArray<std::int8_t> &Board,
                        unsigned Row, unsigned N) {
  if (Row == N)
    return 1;
  std::uint64_t Count = 0;
  for (unsigned Col = 0; Col < N; ++Col) {
    bool Valid = true;
    for (unsigned Prev = 0; Prev < Row && Valid; ++Prev) {
      std::int8_t C = Board.get(Prev);
      Rt.work(2);
      if (C == static_cast<std::int8_t>(Col) ||
          static_cast<unsigned>(std::abs(int(C) - int(Col))) == Row - Prev)
        Valid = false;
    }
    if (!Valid)
      continue;
    Board.set(Row, static_cast<std::int8_t>(Col));
    Count += solveFrom(Rt, Board, Row + 1, N);
  }
  return Count;
}

std::uint64_t solveSeq(std::vector<int> &Board, unsigned Row, unsigned N) {
  if (Row == N)
    return 1;
  std::uint64_t Count = 0;
  for (unsigned Col = 0; Col < N; ++Col) {
    bool Valid = true;
    for (unsigned Prev = 0; Prev < Row && Valid; ++Prev)
      if (Board[Prev] == static_cast<int>(Col) ||
          static_cast<unsigned>(std::abs(Board[Prev] - int(Col))) ==
              Row - Prev)
        Valid = false;
    if (!Valid)
      continue;
    Board[Row] = static_cast<int>(Col);
    Count += solveSeq(Board, Row + 1, N);
  }
  return Count;
}

} // namespace

Recorded pbbs::recordNqueens(std::size_t Scale, const RtOptions &Options) {
  unsigned N = static_cast<unsigned>(Scale);
  Runtime Rt(Options);

  // Parallel over (col0, col1) prefixes; each leaf owns a fresh board.
  std::uint64_t Total = stdlib::reduceRange<std::uint64_t>(
      Rt, 0, static_cast<std::int64_t>(N) * N,
      [&](std::int64_t Lo, std::int64_t Hi) {
        std::uint64_t Count = 0;
        for (std::int64_t Pair = Lo; Pair < Hi; ++Pair) {
          unsigned Col0 = static_cast<unsigned>(Pair) / N;
          unsigned Col1 = static_cast<unsigned>(Pair) % N;
          if (Col0 == Col1 ||
              (Col1 > Col0 ? Col1 - Col0 : Col0 - Col1) == 1)
            continue;
          SimArray<std::int8_t> Board = Rt.allocArray<std::int8_t>(N);
          Board.set(0, static_cast<std::int8_t>(Col0));
          Board.set(1, static_cast<std::int8_t>(Col1));
          Count += solveFrom(Rt, Board, 2, N);
        }
        return Count;
      },
      [](std::uint64_t A, std::uint64_t B) { return A + B; },
      /*Grain=*/1);

  std::vector<int> Board(N, 0);
  std::uint64_t Expected = solveSeq(Board, 0, N);

  Recorded R;
  R.Checksum = Total;
  R.Verified = (Total == Expected) && Rt.raceViolations().empty();
  R.Graph = Rt.finish();
  return R;
}
