//===- pbbs/Ray.cpp - ray benchmark --------------------------------------------===//
//
// Part of the WARDen reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// ray: orthographic ray casting of a triangle soup onto a framebuffer.
/// Every pixel tests every triangle (shared read-only geometry) and writes
/// the nearest hit's id into a fresh framebuffer.
///
//===----------------------------------------------------------------------===//

#include "src/pbbs/Pbbs.h"

#include "src/pbbs/Inputs.h"
#include "src/rt/Stdlib.h"

using namespace warden;
using namespace warden::pbbs;

namespace {

/// Screen-space triangle with a depth.
struct Triangle {
  std::int32_t X0, Y0, X1, Y1, X2, Y2;
  std::int32_t Z;
};

std::int64_t edge(std::int64_t AX, std::int64_t AY, std::int64_t BX,
                  std::int64_t BY, std::int64_t PX, std::int64_t PY) {
  return (BX - AX) * (PY - AY) - (BY - AY) * (PX - AX);
}

bool hits(const Triangle &T, std::int32_t PX, std::int32_t PY) {
  std::int64_t E0 = edge(T.X0, T.Y0, T.X1, T.Y1, PX, PY);
  std::int64_t E1 = edge(T.X1, T.Y1, T.X2, T.Y2, PX, PY);
  std::int64_t E2 = edge(T.X2, T.Y2, T.X0, T.Y0, PX, PY);
  return (E0 >= 0 && E1 >= 0 && E2 >= 0) || (E0 <= 0 && E1 <= 0 && E2 <= 0);
}

} // namespace

Recorded pbbs::recordRay(std::size_t Scale, const RtOptions &Options) {
  std::size_t Width = Scale;
  std::size_t Height = Scale;
  std::size_t NumTriangles = 32;

  Runtime Rt(Options);
  SimArray<Triangle> Tris = Rt.allocArray<Triangle>(NumTriangles);
  Rng Random(0x7a71);
  auto Span = static_cast<std::int64_t>(Width);
  for (std::size_t I = 0; I < NumTriangles; ++I) {
    Triangle T;
    T.X0 = static_cast<std::int32_t>(Random.nextBelow(Width));
    T.Y0 = static_cast<std::int32_t>(Random.nextBelow(Height));
    T.X1 = static_cast<std::int32_t>(T.X0 + Random.nextInRange(-Span / 2, Span / 2));
    T.Y1 = static_cast<std::int32_t>(T.Y0 + Random.nextInRange(-Span / 2, Span / 2));
    T.X2 = static_cast<std::int32_t>(T.X0 + Random.nextInRange(-Span / 2, Span / 2));
    T.Y2 = static_cast<std::int32_t>(T.Y0 + Random.nextInRange(-Span / 2, Span / 2));
    T.Z = static_cast<std::int32_t>(1 + Random.nextBelow(1000));
    Tris.poke(I, T);
  }

  SimArray<std::int32_t> Frame = stdlib::tabulate<std::int32_t>(
      Rt, Width * Height,
      [&](std::size_t Pixel) {
        auto PX = static_cast<std::int32_t>(Pixel % Width);
        auto PY = static_cast<std::int32_t>(Pixel / Width);
        std::int32_t BestZ = 0;
        std::int32_t BestId = -1;
        for (std::size_t T = 0; T < NumTriangles; ++T) {
          Triangle Tri = Tris.get(T);
          Rt.work(8);
          if (hits(Tri, PX, PY) && (BestId < 0 || Tri.Z < BestZ)) {
            BestZ = Tri.Z;
            BestId = static_cast<std::int32_t>(T);
          }
        }
        return BestId;
      },
      /*Grain=*/12);

  // Sequential reference on the host copies.
  bool Ok = true;
  std::uint64_t Hits = 0;
  for (std::size_t Pixel = 0; Pixel < Width * Height; ++Pixel) {
    auto PX = static_cast<std::int32_t>(Pixel % Width);
    auto PY = static_cast<std::int32_t>(Pixel / Width);
    std::int32_t BestZ = 0;
    std::int32_t BestId = -1;
    for (std::size_t T = 0; T < NumTriangles; ++T) {
      Triangle Tri = Tris.peek(T);
      if (hits(Tri, PX, PY) && (BestId < 0 || Tri.Z < BestZ)) {
        BestZ = Tri.Z;
        BestId = static_cast<std::int32_t>(T);
      }
    }
    Ok &= (Frame.peek(Pixel) == BestId);
    Hits += BestId >= 0 ? 1 : 0;
  }

  Recorded R;
  R.Checksum = Hits;
  R.Verified = Ok && Rt.raceViolations().empty();
  R.Graph = Rt.finish();
  return R;
}
