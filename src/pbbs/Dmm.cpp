//===- pbbs/Dmm.cpp - dmm benchmark ------------------------------------------===//
//
// Part of the WARDen reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// dmm: dense matrix multiply C = A x B. The inputs are shared read-only;
/// B is first transposed (a parallel tabulate) for unit-stride access; the
/// result C is a fresh write-only destination filled row-parallel.
///
//===----------------------------------------------------------------------===//

#include "src/pbbs/Pbbs.h"

#include "src/pbbs/Inputs.h"
#include "src/rt/Stdlib.h"

#include <vector>

using namespace warden;
using namespace warden::pbbs;

Recorded pbbs::recordDmm(std::size_t Scale, const RtOptions &Options) {
  std::size_t N = Scale;
  Runtime Rt(Options);
  SimArray<std::int32_t> A = randomArray<std::int32_t>(
      Rt, N * N, /*Range=*/100, /*Seed=*/0xa11a, static_cast<std::int64_t>(N));
  SimArray<std::int32_t> B = randomArray<std::int32_t>(
      Rt, N * N, /*Range=*/100, /*Seed=*/0xb22b, static_cast<std::int64_t>(N));

  SimArray<std::int32_t> Bt = stdlib::tabulate<std::int32_t>(
      Rt, N * N,
      [&](std::size_t I) {
        std::size_t Row = I / N;
        std::size_t Col = I % N;
        return B.get(Col * N + Row);
      },
      static_cast<std::int64_t>(N) / 2);

  SimArray<std::int64_t> C = stdlib::tabulate<std::int64_t>(
      Rt, N * N,
      [&](std::size_t I) {
        std::size_t Row = I / N;
        std::size_t Col = I % N;
        std::int64_t Acc = 0;
        for (std::size_t K = 0; K < N; ++K) {
          Acc += static_cast<std::int64_t>(A.get(Row * N + K)) *
                 static_cast<std::int64_t>(Bt.get(Col * N + K));
          Rt.work(1);
        }
        return Acc;
      },
      static_cast<std::int64_t>(N) / 4);

  // Sequential reference.
  bool Ok = true;
  std::uint64_t Sum = 0;
  std::vector<std::int64_t> Ref(N * N, 0);
  for (std::size_t Row = 0; Row < N; ++Row)
    for (std::size_t K = 0; K < N; ++K) {
      std::int64_t AV = A.peek(Row * N + K);
      for (std::size_t Col = 0; Col < N; ++Col)
        Ref[Row * N + Col] += AV * B.peek(K * N + Col);
    }
  for (std::size_t I = 0; I < N * N; ++I) {
    Ok &= (C.peek(I) == Ref[I]);
    Sum += static_cast<std::uint64_t>(C.peek(I));
  }

  Recorded R;
  R.Checksum = Sum;
  R.Verified = Ok && Rt.raceViolations().empty();
  R.Graph = Rt.finish();
  return R;
}
