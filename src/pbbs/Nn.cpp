//===- pbbs/Nn.cpp - nn benchmark --------------------------------------------===//
//
// Part of the WARDen reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// nn: for each query point, the index of its nearest reference point.
/// Reference points are shared read-only across every core; the result
/// array is a fresh write-only destination.
///
//===----------------------------------------------------------------------===//

#include "src/pbbs/Pbbs.h"

#include "src/pbbs/Inputs.h"
#include "src/rt/Stdlib.h"

#include <cstdlib>

using namespace warden;
using namespace warden::pbbs;

namespace {

std::int64_t dist2(const Point2 &A, const Point2 &B) {
  std::int64_t DX = A.X - B.X;
  std::int64_t DY = A.Y - B.Y;
  return DX * DX + DY * DY;
}

} // namespace

Recorded pbbs::recordNn(std::size_t Scale, const RtOptions &Options) {
  std::size_t Queries = Scale;
  std::size_t Refs = 2 * Scale;
  Runtime Rt(Options);
  SimArray<Point2> Q = randomPoints(Rt, Queries, /*Range=*/1 << 16,
                                    /*Seed=*/0x4411);
  SimArray<Point2> Ref = randomPoints(Rt, Refs, /*Range=*/1 << 16,
                                      /*Seed=*/0x4422);

  SimArray<std::uint32_t> Nearest = stdlib::tabulate<std::uint32_t>(
      Rt, Queries,
      [&](std::size_t I) {
        Point2 Query = Q.get(I);
        std::int64_t Best = -1;
        std::uint32_t BestIdx = 0;
        for (std::size_t J = 0; J < Refs; ++J) {
          std::int64_t D = dist2(Query, Ref.get(J));
          Rt.work(3);
          if (Best < 0 || D < Best) {
            Best = D;
            BestIdx = static_cast<std::uint32_t>(J);
          }
        }
        return BestIdx;
      },
      /*Grain=*/4);

  bool Ok = true;
  std::uint64_t Sum = 0;
  for (std::size_t I = 0; I < Queries; ++I) {
    Point2 Query = Q.peek(I);
    std::int64_t Best = -1;
    std::uint32_t BestIdx = 0;
    for (std::size_t J = 0; J < Refs; ++J) {
      std::int64_t D = dist2(Query, Ref.peek(J));
      if (Best < 0 || D < Best) {
        Best = D;
        BestIdx = static_cast<std::uint32_t>(J);
      }
    }
    Ok &= (Nearest.peek(I) == BestIdx);
    Sum += BestIdx;
  }

  Recorded R;
  R.Checksum = Sum;
  R.Verified = Ok && Rt.raceViolations().empty();
  R.Graph = Rt.finish();
  return R;
}
