//===- pbbs/Quickhull.cpp - quickhull benchmark --------------------------------===//
//
// Part of the WARDen reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// quickhull: convex hull of a point set. Farthest-point reductions plus
/// filter-based partitions that allocate fresh (WARD) candidate arrays at
/// every recursion level — the allocation-heavy divide-and-conquer shape
/// typical of functional PBBS codes.
///
//===----------------------------------------------------------------------===//

#include "src/pbbs/Pbbs.h"

#include "src/pbbs/Inputs.h"
#include "src/rt/Stdlib.h"

#include <vector>

using namespace warden;
using namespace warden::pbbs;

namespace {

/// Twice the signed area of triangle (A, B, C); positive when C is left of
/// the directed line A->B.
std::int64_t cross(const Point2 &A, const Point2 &B, const Point2 &C) {
  return static_cast<std::int64_t>(B.X - A.X) * (C.Y - A.Y) -
         static_cast<std::int64_t>(B.Y - A.Y) * (C.X - A.X);
}

/// Counts hull vertices strictly left of A->B among Candidates (recursive
/// half of quickhull). Counts the farthest point itself plus the two
/// sub-problems.
std::uint64_t hullSide(Runtime &Rt, const SimArray<Point2> &Candidates,
                       std::size_t Count, Point2 A, Point2 B) {
  if (Count == 0)
    return 0;

  // Farthest candidate from the line A->B.
  struct Far {
    std::int64_t Dist = -1;
    Point2 P;
  };
  Far Farthest = stdlib::reduceRange<Far>(
      Rt, 0, static_cast<std::int64_t>(Count),
      [&](std::int64_t Lo, std::int64_t Hi) {
        Far Best;
        for (std::int64_t I = Lo; I < Hi; ++I) {
          Point2 P = Candidates.get(static_cast<std::size_t>(I));
          std::int64_t D = cross(A, B, P);
          Rt.work(3);
          if (D > Best.Dist) {
            Best.Dist = D;
            Best.P = P;
          }
        }
        return Best;
      },
      [](Far X, Far Y) { return X.Dist >= Y.Dist ? X : Y; }, /*Grain=*/128);

  Point2 P = Farthest.P;
  std::size_t LeftCount = 0;
  SimArray<Point2> Left = stdlib::filter<Point2>(
      Rt, Candidates,
      [&](Point2 Q) {
        Rt.work(2);
        return cross(A, P, Q) > 0;
      },
      LeftCount, /*Grain=*/128);
  std::size_t RightCount = 0;
  SimArray<Point2> Right = stdlib::filter<Point2>(
      Rt, Candidates,
      [&](Point2 Q) {
        Rt.work(2);
        return cross(P, B, Q) > 0;
      },
      RightCount, /*Grain=*/128);

  std::uint64_t LeftHull = 0;
  std::uint64_t RightHull = 0;
  Rt.fork2([&] { LeftHull = hullSide(Rt, Left, LeftCount, A, P); },
           [&] { RightHull = hullSide(Rt, Right, RightCount, P, B); });
  return 1 + LeftHull + RightHull;
}

// --- Sequential reference (same arithmetic on host copies) ----------------

std::uint64_t hullSideSeq(const std::vector<Point2> &Candidates, Point2 A,
                          Point2 B) {
  if (Candidates.empty())
    return 0;
  std::int64_t BestDist = -1;
  Point2 P{};
  for (const Point2 &Q : Candidates) {
    std::int64_t D = cross(A, B, Q);
    if (D > BestDist) {
      BestDist = D;
      P = Q;
    }
  }
  std::vector<Point2> Left;
  std::vector<Point2> Right;
  for (const Point2 &Q : Candidates) {
    if (cross(A, P, Q) > 0)
      Left.push_back(Q);
    if (cross(P, B, Q) > 0)
      Right.push_back(Q);
  }
  return 1 + hullSideSeq(Left, A, P) + hullSideSeq(Right, P, B);
}

} // namespace

Recorded pbbs::recordQuickhull(std::size_t Scale, const RtOptions &Options) {
  Runtime Rt(Options);
  SimArray<Point2> Points =
      randomPoints(Rt, Scale, /*Range=*/1 << 18, /*Seed=*/0x9411);

  // Extreme points in x (ties broken by y) seed the two hull halves.
  auto MinMax = [](Point2 A, Point2 B, bool WantMin) {
    bool ALess = A.X < B.X || (A.X == B.X && A.Y < B.Y);
    return (ALess == WantMin) ? A : B;
  };
  Point2 MinPt = stdlib::reduceRange<Point2>(
      Rt, 0, static_cast<std::int64_t>(Scale),
      [&](std::int64_t Lo, std::int64_t Hi) {
        Point2 Best = Points.get(static_cast<std::size_t>(Lo));
        for (std::int64_t I = Lo + 1; I < Hi; ++I)
          Best = MinMax(Best, Points.get(static_cast<std::size_t>(I)), true);
        return Best;
      },
      [&](Point2 A, Point2 B) { return MinMax(A, B, true); }, 256);
  Point2 MaxPt = stdlib::reduceRange<Point2>(
      Rt, 0, static_cast<std::int64_t>(Scale),
      [&](std::int64_t Lo, std::int64_t Hi) {
        Point2 Best = Points.get(static_cast<std::size_t>(Lo));
        for (std::int64_t I = Lo + 1; I < Hi; ++I)
          Best = MinMax(Best, Points.get(static_cast<std::size_t>(I)), false);
        return Best;
      },
      [&](Point2 A, Point2 B) { return MinMax(A, B, false); }, 256);

  std::size_t UpperCount = 0;
  SimArray<Point2> Upper = stdlib::filter<Point2>(
      Rt, Points, [&](Point2 Q) { return cross(MinPt, MaxPt, Q) > 0; },
      UpperCount, 128);
  std::size_t LowerCount = 0;
  SimArray<Point2> Lower = stdlib::filter<Point2>(
      Rt, Points, [&](Point2 Q) { return cross(MaxPt, MinPt, Q) > 0; },
      LowerCount, 128);

  std::uint64_t UpperHull = 0;
  std::uint64_t LowerHull = 0;
  Rt.fork2([&] { UpperHull = hullSide(Rt, Upper, UpperCount, MinPt, MaxPt); },
           [&] { LowerHull = hullSide(Rt, Lower, LowerCount, MaxPt, MinPt); });
  std::uint64_t HullSize = 2 + UpperHull + LowerHull;

  // Reference.
  std::vector<Point2> Host(Scale);
  for (std::size_t I = 0; I < Scale; ++I)
    Host[I] = Points.peek(I);
  Point2 RefMin = Host[0];
  Point2 RefMax = Host[0];
  for (const Point2 &Q : Host) {
    RefMin = MinMax(RefMin, Q, true);
    RefMax = MinMax(RefMax, Q, false);
  }
  std::vector<Point2> UpperRef;
  std::vector<Point2> LowerRef;
  for (const Point2 &Q : Host) {
    if (cross(RefMin, RefMax, Q) > 0)
      UpperRef.push_back(Q);
    if (cross(RefMax, RefMin, Q) > 0)
      LowerRef.push_back(Q);
  }
  std::uint64_t Expected = 2 + hullSideSeq(UpperRef, RefMin, RefMax) +
                           hullSideSeq(LowerRef, RefMax, RefMin);

  Recorded R;
  R.Checksum = HullSize;
  R.Verified = (HullSize == Expected) && Rt.raceViolations().empty();
  R.Graph = Rt.finish();
  return R;
}
