//===- pbbs/SuffixArray.cpp - suffix_array benchmark ----------------------===//
//
// Part of the WARDen reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// suffix_array: Manber-Myers prefix doubling. Each round packs (rank,
/// next-rank, index) into 64-bit keys, sorts them with the suite's parallel
/// merge sort, and scatters fresh ranks — a long pipeline of
/// produce-then-consume arrays crossing cores.
///
//===----------------------------------------------------------------------===//

#include "src/pbbs/Pbbs.h"

#include "src/pbbs/Inputs.h"
#include "src/pbbs/Sort.h"
#include "src/rt/Stdlib.h"

#include <algorithm>
#include <numeric>
#include <string>
#include <vector>

using namespace warden;
using namespace warden::pbbs;

namespace {

// Key layout: [rank+1 : 21 bits][next-rank+1 : 21 bits][index : 21 bits].
constexpr unsigned FieldBits = 21;
constexpr std::uint64_t FieldMask = (1ULL << FieldBits) - 1;

std::uint64_t packKey(std::uint64_t Rank, std::uint64_t Next,
                      std::uint64_t Index) {
  return (Rank << (2 * FieldBits)) | (Next << FieldBits) | Index;
}

} // namespace

Recorded pbbs::recordSuffixArray(std::size_t Scale, const RtOptions &Options) {
  std::string Text = makeText(Scale, /*Seed=*/0x5a5a);
  std::size_t N = Text.size();

  Runtime Rt(Options);
  SimArray<char> SimText = importText(Rt, Text);

  SimArray<std::uint32_t> Ranks = stdlib::tabulate<std::uint32_t>(
      Rt, N,
      [&](std::size_t I) {
        return static_cast<std::uint32_t>(
            static_cast<unsigned char>(SimText.get(I)));
      },
      256);

  SimArray<std::uint64_t> SortedKeys;
  for (std::size_t K = 1; K < N; K *= 2) {
    SimArray<std::uint64_t> Keys = stdlib::tabulate<std::uint64_t>(
        Rt, N,
        [&](std::size_t I) {
          std::uint64_t Rank = Ranks.get(I) + 1;
          std::uint64_t Next = I + K < N ? Ranks.get(I + K) + 1 : 0;
          return packKey(Rank, Next, I);
        },
        64);
    SortedKeys = mergeSort(
        Rt, Keys,
        [](std::uint64_t A, std::uint64_t B) { return A < B; }, 64);

    // New rank of the I-th suffix in sorted order: number of strictly
    // smaller (rank, next) pairs before it.
    SimArray<std::uint32_t> NewRankBySortPos = stdlib::tabulate<std::uint32_t>(
        Rt, N,
        [&](std::size_t I) {
          if (I == 0)
            return std::uint32_t(0);
          std::uint64_t Here = SortedKeys.get(I) >> FieldBits;
          std::uint64_t Prev = SortedKeys.get(I - 1) >> FieldBits;
          return Here != Prev ? std::uint32_t(1) : std::uint32_t(0);
        },
        64);
    std::uint32_t MaxRank = 0;
    SimArray<std::uint32_t> RankPrefix =
        stdlib::scanExclusive(Rt, NewRankBySortPos, MaxRank, 64);

    SimArray<std::uint32_t> NewRanks = Rt.allocArray<std::uint32_t>(N);
    {
      Runtime::WriteOnlyScope Scope(Rt, NewRanks.addr(), NewRanks.bytes());
      Rt.parallelFor(0, static_cast<std::int64_t>(N), 64,
                     [&](std::int64_t I) {
                       auto Pos = static_cast<std::size_t>(I);
                       auto Index = static_cast<std::size_t>(
                           SortedKeys.get(Pos) & FieldMask);
                       std::uint32_t Rank = RankPrefix.get(Pos) +
                                            NewRankBySortPos.get(Pos);
                       NewRanks.set(Index, Rank);
                     });
    }
    Ranks = NewRanks;
    if (static_cast<std::size_t>(MaxRank) + 1 == N)
      break; // All ranks distinct: the order is final.
  }

  // Extract the suffix array from the final sorted keys.
  std::vector<std::uint32_t> Result(N);
  for (std::size_t I = 0; I < N; ++I)
    Result[I] =
        static_cast<std::uint32_t>(SortedKeys.peek(I) & FieldMask);

  // Naive reference.
  std::vector<std::uint32_t> Expected(N);
  std::iota(Expected.begin(), Expected.end(), 0u);
  std::sort(Expected.begin(), Expected.end(),
            [&](std::uint32_t A, std::uint32_t B) {
              return Text.compare(A, std::string::npos, Text, B,
                                  std::string::npos) < 0;
            });

  bool Ok = (Result == Expected);
  std::uint64_t Sum = 0;
  for (std::size_t I = 0; I < N; ++I)
    Sum += static_cast<std::uint64_t>(Result[I]) * (I + 1);

  Recorded R;
  R.Checksum = Sum;
  R.Verified = Ok && Rt.raceViolations().empty();
  R.Graph = Rt.finish();
  return R;
}
