//===- pbbs/Grep.cpp - grep benchmark ----------------------------------------===//
//
// Part of the WARDen reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// grep: find every position of a pattern in a text. Flags/scan/scatter
/// pipeline: heavy read sharing of the text plus fresh output arrays per
/// phase.
///
//===----------------------------------------------------------------------===//

#include "src/pbbs/Pbbs.h"

#include "src/pbbs/Inputs.h"
#include "src/rt/Stdlib.h"

#include <string>

using namespace warden;
using namespace warden::pbbs;

Recorded pbbs::recordGrep(std::size_t Scale, const RtOptions &Options) {
  std::string Text = makeText(Scale, /*Seed=*/0x63e5);
  // The pattern is a trigram drawn from the middle of the text so there are
  // guaranteed matches.
  std::string Pattern = Text.substr(Text.size() / 2, 3);

  Runtime Rt(Options);
  SimArray<char> SimText = importText(Rt, Text);
  std::size_t Positions = Text.size() - Pattern.size() + 1;

  SimArray<std::uint32_t> Flags = stdlib::tabulate<std::uint32_t>(
      Rt, Positions,
      [&](std::size_t I) {
        for (std::size_t K = 0; K < Pattern.size(); ++K)
          if (SimText.get(I + K) != Pattern[K])
            return std::uint32_t(0);
        return std::uint32_t(1);
      },
      512);

  std::uint32_t Total = 0;
  SimArray<std::uint32_t> Offsets = stdlib::scanExclusive(Rt, Flags, Total, 512);

  SimArray<std::uint32_t> Matches =
      Rt.allocArray<std::uint32_t>(std::max<std::uint32_t>(Total, 1));
  {
    Runtime::WriteOnlyScope Scope(Rt, Matches.addr(), Matches.bytes());
    Rt.parallelFor(0, static_cast<std::int64_t>(Positions), 512,
                   [&](std::int64_t I) {
                     auto Index = static_cast<std::size_t>(I);
                     if (Flags.get(Index))
                       Matches.set(Offsets.get(Index),
                                   static_cast<std::uint32_t>(Index));
                   });
  }

  // Sequential reference.
  std::uint64_t Expected = 0;
  for (std::size_t I = 0; I < Positions; ++I)
    if (Text.compare(I, Pattern.size(), Pattern) == 0)
      ++Expected;

  bool Ok = (Expected == Total);
  for (std::uint32_t I = 0; Ok && I < Total; ++I) {
    std::uint32_t Pos = Matches.peek(I);
    Ok &= Text.compare(Pos, Pattern.size(), Pattern) == 0;
  }

  Recorded R;
  R.Checksum = Total;
  R.Verified = Ok && Rt.raceViolations().empty();
  R.Graph = Rt.finish();
  return R;
}
