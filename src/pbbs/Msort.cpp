//===- pbbs/Msort.cpp - msort benchmark --------------------------------------===//
//
// Part of the WARDen reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// msort: parallel merge sort. Each recursion level writes fresh arrays on
/// one set of cores and reads them on another during the merges — the
/// producer/consumer pattern whose downgrades WARDen's join-time
/// reconciliation removes.
///
//===----------------------------------------------------------------------===//

#include "src/pbbs/Pbbs.h"

#include "src/pbbs/Inputs.h"
#include "src/pbbs/Sort.h"

using namespace warden;
using namespace warden::pbbs;

Recorded pbbs::recordMsort(std::size_t Scale, const RtOptions &Options) {
  Runtime Rt(Options);
  SimArray<std::uint32_t> In =
      randomArray<std::uint32_t>(Rt, Scale, /*Range=*/1u << 30,
                                 /*Seed=*/0x50f7);

  SimArray<std::uint32_t> Sorted =
      mergeSort(Rt, In, [](std::uint32_t A, std::uint32_t B) { return A < B; },
                /*Grain=*/128);

  bool Ok = Sorted.size() == In.size();
  std::uint64_t SumIn = 0;
  std::uint64_t SumOut = 0;
  for (std::size_t I = 0; I < In.size(); ++I) {
    SumIn += In.peek(I);
    SumOut += Sorted.peek(I);
    if (I > 0)
      Ok &= Sorted.peek(I - 1) <= Sorted.peek(I);
  }
  Ok &= (SumIn == SumOut);

  Recorded R;
  R.Checksum = SumOut;
  R.Verified = Ok && Rt.raceViolations().empty();
  R.Graph = Rt.finish();
  return R;
}
