//===- pbbs/Pbbs.cpp - PBBS-style benchmark registry -----------------------===//
//
// Part of the WARDen reproduction project.
//
//===----------------------------------------------------------------------===//

#include "src/pbbs/Pbbs.h"

using namespace warden;
using namespace warden::pbbs;

const std::vector<Benchmark> &pbbs::allBenchmarks() {
  // Paper plotting order (Figures 7-11). Scales are tuned so each
  // benchmark records a few hundred thousand trace events — enough to
  // exercise the cache hierarchy, small enough that the whole suite
  // simulates in minutes (the original runs took ~4 days in Sniper).
  static const std::vector<Benchmark> Benchmarks = {
      {"dedup", &recordDedup, /*DefaultScale=*/8192, /*TestScale=*/1024},
      {"dmm", &recordDmm, /*DefaultScale=*/64, /*TestScale=*/12},
      {"fib", &recordFib, /*DefaultScale=*/25, /*TestScale=*/16},
      {"grep", &recordGrep, /*DefaultScale=*/65536, /*TestScale=*/4096},
      {"make_array", &recordMakeArray, /*DefaultScale=*/65536,
       /*TestScale=*/4096},
      {"msort", &recordMsort, /*DefaultScale=*/12288, /*TestScale=*/1024},
      {"nn", &recordNn, /*DefaultScale=*/192, /*TestScale=*/48},
      {"nqueens", &recordNqueens, /*DefaultScale=*/9, /*TestScale=*/6},
      {"palindrome", &recordPalindrome, /*DefaultScale=*/32768,
       /*TestScale=*/4096},
      {"primes", &recordPrimes, /*DefaultScale=*/100000, /*TestScale=*/4000},
      {"quickhull", &recordQuickhull, /*DefaultScale=*/8192,
       /*TestScale=*/512},
      {"ray", &recordRay, /*DefaultScale=*/64, /*TestScale=*/16},
      {"suffix_array", &recordSuffixArray, /*DefaultScale=*/1024,
       /*TestScale=*/256},
      {"tokens", &recordTokens, /*DefaultScale=*/65536, /*TestScale=*/4096},
  };
  return Benchmarks;
}

const Benchmark *pbbs::find(std::string_view Name) {
  for (const Benchmark &B : allBenchmarks())
    if (Name == B.Name)
      return &B;
  return nullptr;
}
