//===- pbbs/Tokens.cpp - tokens benchmark --------------------------------------===//
//
// Part of the WARDen reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// tokens: split a text into words. Boundary flags, a prefix scan, and a
/// scatter of token start offsets — the text-processing pipeline the paper
/// singles out as the one benchmark where WARD coverage is lower.
///
//===----------------------------------------------------------------------===//

#include "src/pbbs/Pbbs.h"

#include "src/pbbs/Inputs.h"
#include "src/rt/Stdlib.h"

#include <cctype>
#include <string>

using namespace warden;
using namespace warden::pbbs;

namespace {

bool isWordChar(char C) { return C >= 'a' && C <= 'z'; }

} // namespace

Recorded pbbs::recordTokens(std::size_t Scale, const RtOptions &Options) {
  std::string Text = makeText(Scale, /*Seed=*/0x70c3);
  Runtime Rt(Options);
  SimArray<char> SimText = importText(Rt, Text);
  std::size_t N = Text.size();

  SimArray<std::uint32_t> Starts = stdlib::tabulate<std::uint32_t>(
      Rt, N,
      [&](std::size_t I) {
        bool Here = isWordChar(SimText.get(I));
        bool Before = I > 0 && isWordChar(SimText.get(I - 1));
        return (Here && !Before) ? std::uint32_t(1) : std::uint32_t(0);
      },
      512);

  std::uint32_t Total = 0;
  SimArray<std::uint32_t> Offsets =
      stdlib::scanExclusive(Rt, Starts, Total, 512);

  SimArray<std::uint32_t> TokenStarts =
      Rt.allocArray<std::uint32_t>(std::max<std::uint32_t>(Total, 1));
  {
    Runtime::WriteOnlyScope Scope(Rt, TokenStarts.addr(), TokenStarts.bytes());
    Rt.parallelFor(0, static_cast<std::int64_t>(N), 512, [&](std::int64_t I) {
      auto Index = static_cast<std::size_t>(I);
      if (Starts.get(Index))
        TokenStarts.set(Offsets.get(Index), static_cast<std::uint32_t>(Index));
    });
  }

  // Sequential reference.
  std::uint64_t Expected = 0;
  std::uint64_t ExpectedSum = 0;
  for (std::size_t I = 0; I < N; ++I) {
    bool Here = isWordChar(Text[I]);
    bool Before = I > 0 && isWordChar(Text[I - 1]);
    if (Here && !Before) {
      ++Expected;
      ExpectedSum += I;
    }
  }
  std::uint64_t Sum = 0;
  for (std::uint32_t I = 0; I < Total; ++I)
    Sum += TokenStarts.peek(I);

  Recorded R;
  R.Checksum = Sum;
  R.Verified = (Expected == Total) && (Sum == ExpectedSum) &&
               Rt.raceViolations().empty();
  R.Graph = Rt.finish();
  return R;
}
