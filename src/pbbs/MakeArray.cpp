//===- pbbs/MakeArray.cpp - make_array benchmark ----------------------------===//
//
// Part of the WARDen reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// make_array: a single parallel tabulate of a large array. Streaming
/// writes to fresh memory with almost no sharing — the paper's example of a
/// benchmark where WARDen's tracking overhead shows and the benefit is
/// minimal.
///
//===----------------------------------------------------------------------===//

#include "src/pbbs/Pbbs.h"

#include "src/rt/Stdlib.h"

using namespace warden;
using namespace warden::pbbs;

namespace {

std::uint64_t mix(std::uint64_t X) {
  X ^= X >> 33;
  X *= 0xff51afd7ed558ccdULL;
  X ^= X >> 33;
  return X;
}

} // namespace

Recorded pbbs::recordMakeArray(std::size_t Scale, const RtOptions &Options) {
  Runtime Rt(Options);
  SimArray<std::uint64_t> Out = stdlib::tabulate<std::uint64_t>(
      Rt, Scale, [](std::size_t I) { return mix(I); }, 256);

  Recorded R;
  bool Ok = true;
  std::uint64_t Sum = 0;
  for (std::size_t I = 0; I < Out.size(); ++I) {
    Ok &= (Out.peek(I) == mix(I));
    Sum += Out.peek(I);
  }
  R.Checksum = Sum;
  R.Verified = Ok && Rt.raceViolations().empty();
  R.Graph = Rt.finish();
  return R;
}
