//===- pbbs/Palindrome.cpp - palindrome benchmark ------------------------------===//
//
// Part of the WARDen reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// palindrome: for every center of a string, the radius of the longest odd
/// palindrome around it; the result is the maximum radius. Dense shared
/// reads of the text plus a fresh radii array, with planted palindromes so
/// some centers do real expansion work.
///
//===----------------------------------------------------------------------===//

#include "src/pbbs/Pbbs.h"

#include "src/pbbs/Inputs.h"
#include "src/rt/Stdlib.h"

#include <string>

using namespace warden;
using namespace warden::pbbs;

namespace {

/// Random text with mirrored segments planted every ~1000 characters.
std::string makePalindromeText(std::size_t Length, std::uint64_t Seed) {
  std::string Text = makeText(Length, Seed);
  for (std::size_t Center = 500; Center + 120 < Length; Center += 1000)
    for (std::size_t R = 1; R < 100; ++R)
      Text[Center + R] = Text[Center - R];
  return Text;
}

} // namespace

Recorded pbbs::recordPalindrome(std::size_t Scale, const RtOptions &Options) {
  std::string Text = makePalindromeText(Scale, /*Seed=*/0x9a11);
  Runtime Rt(Options);
  SimArray<char> SimText = importText(Rt, Text);
  std::size_t N = Text.size();

  SimArray<std::uint32_t> Radii = stdlib::tabulate<std::uint32_t>(
      Rt, N,
      [&](std::size_t Center) {
        std::uint32_t R = 0;
        while (Center >= R + 1 && Center + R + 1 < N &&
               SimText.get(Center - R - 1) == SimText.get(Center + R + 1)) {
          ++R;
          Rt.work(2);
        }
        return R;
      },
      256);

  std::uint32_t MaxRadius = stdlib::reduceRange<std::uint32_t>(
      Rt, 0, static_cast<std::int64_t>(N),
      [&](std::int64_t Lo, std::int64_t Hi) {
        std::uint32_t Best = 0;
        for (std::int64_t I = Lo; I < Hi; ++I)
          Best = std::max(Best, Radii.get(static_cast<std::size_t>(I)));
        return Best;
      },
      [](std::uint32_t A, std::uint32_t B) { return std::max(A, B); }, 256);

  // Sequential reference.
  std::uint32_t Expected = 0;
  for (std::size_t Center = 0; Center < N; ++Center) {
    std::uint32_t R = 0;
    while (Center >= R + 1 && Center + R + 1 < N &&
           Text[Center - R - 1] == Text[Center + R + 1])
      ++R;
    Expected = std::max(Expected, R);
  }

  Recorded R;
  R.Checksum = MaxRadius;
  R.Verified = (MaxRadius == Expected) && Rt.raceViolations().empty();
  R.Graph = Rt.finish();
  return R;
}
