//===- pbbs/Inputs.h - Deterministic synthetic inputs ----------*- C++ -*-===//
//
// Part of the WARDen reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Deterministic synthetic input generators standing in for the PBBS data
/// sets (which ship inside the original artifact VM). Two styles:
///
///  * untimed pokes (fillRandom / uploadText) for data that would exist
///    before the timed region;
///  * timed generators (randomArray / randomPoints / importText) that
///    materialise inputs through parallel tabulates, the way PBBS-ML
///    benchmarks build their inputs functionally inside the program — the
///    produced arrays are fresh heap data and therefore WARD regions while
///    being written.
///
//===----------------------------------------------------------------------===//

#ifndef WARDEN_PBBS_INPUTS_H
#define WARDEN_PBBS_INPUTS_H

#include "src/rt/SimArray.h"
#include "src/rt/Stdlib.h"
#include "src/support/Rng.h"

#include <cstdint>
#include <string>

namespace warden {
namespace pbbs {

/// A 2-D point with integer coordinates.
struct Point2 {
  std::int32_t X = 0;
  std::int32_t Y = 0;
};

/// Stateless mix function used by the timed generators.
inline std::uint64_t hashMix(std::uint64_t X) {
  X += 0x9e3779b97f4a7c15ULL;
  X = (X ^ (X >> 30)) * 0xbf58476d1ce4e5b9ULL;
  X = (X ^ (X >> 27)) * 0x94d049bb133111ebULL;
  return X ^ (X >> 31);
}

/// Untimed fill of \p Out with pseudo-random values in [0, Range).
template <typename T>
void fillRandom(const SimArray<T> &Out, std::uint64_t Range,
                std::uint64_t Seed) {
  Rng Random(Seed);
  for (std::size_t I = 0; I < Out.size(); ++I)
    Out.poke(I, static_cast<T>(Random.nextBelow(Range)));
}

/// Untimed fill of \p Out with pseudo-random points in [0, Range)^2.
void fillRandomPoints(const SimArray<Point2> &Out, std::int32_t Range,
                      std::uint64_t Seed);

/// Generates English-like text: lowercase words of 1-10 letters separated
/// by spaces, with a newline roughly every 60 characters. Returns exactly
/// \p Length characters.
std::string makeText(std::size_t Length, std::uint64_t Seed);

/// Untimed copy of a host string into simulated memory.
SimArray<char> uploadText(Runtime &Rt, const std::string &Text);

/// Timed copy of a host string into heap memory via a parallel tabulate.
SimArray<char> importText(Runtime &Rt, const std::string &Text);

/// Timed parallel generation of pseudo-random values in [0, Range).
template <typename T>
SimArray<T> randomArray(Runtime &Rt, std::size_t Count, std::uint64_t Range,
                        std::uint64_t Seed, std::int64_t Grain = 256) {
  return stdlib::tabulate<T>(
      Rt, Count,
      [=](std::size_t I) {
        return static_cast<T>(hashMix(Seed + I) % Range);
      },
      Grain);
}

/// Timed parallel generation of pseudo-random points in [0, Range)^2.
SimArray<Point2> randomPoints(Runtime &Rt, std::size_t Count,
                              std::int32_t Range, std::uint64_t Seed);

} // namespace pbbs
} // namespace warden

#endif // WARDEN_PBBS_INPUTS_H
