//===- pbbs/Pbbs.h - PBBS-style benchmark registry -------------*- C++ -*-===//
//
// Part of the WARDen reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The benchmark suite used by the paper's evaluation (Section 7.1): the
/// fourteen PBBS programs ported to the HLPL runtime, with the same names
/// and parallel structure, plus deterministic synthetic inputs. Each
/// benchmark records a TaskGraph (phase 1), self-verifies its computed
/// output against a sequential reference, and is looked up by name from the
/// figure harnesses.
///
//===----------------------------------------------------------------------===//

#ifndef WARDEN_PBBS_PBBS_H
#define WARDEN_PBBS_PBBS_H

#include "src/rt/Runtime.h"
#include "src/trace/TaskGraph.h"

#include <cstdint>
#include <string_view>
#include <vector>

namespace warden {
namespace pbbs {

/// Outcome of recording one benchmark run.
struct Recorded {
  TaskGraph Graph;
  /// True if the computed output matched the sequential reference.
  bool Verified = false;
  /// Benchmark-specific output digest (stable across runs).
  std::uint64_t Checksum = 0;
};

/// Signature of a benchmark recorder. \p Scale is the problem size knob
/// (elements, string length, matrix dimension, ... — see each kernel).
using RecorderFn = Recorded (*)(std::size_t Scale, const RtOptions &Options);

/// Registry entry for one benchmark.
struct Benchmark {
  const char *Name;
  RecorderFn Record;
  std::size_t DefaultScale; ///< Used by the figure harnesses.
  std::size_t TestScale;    ///< Smaller size used by unit tests.
};

/// All fourteen benchmarks in the paper's plotting order.
const std::vector<Benchmark> &allBenchmarks();

/// Finds a benchmark by name, or nullptr.
const Benchmark *find(std::string_view Name);

// Individual recorders (one translation unit each).
Recorded recordDedup(std::size_t Scale, const RtOptions &Options);
Recorded recordDmm(std::size_t Scale, const RtOptions &Options);
Recorded recordFib(std::size_t Scale, const RtOptions &Options);
Recorded recordGrep(std::size_t Scale, const RtOptions &Options);
Recorded recordMakeArray(std::size_t Scale, const RtOptions &Options);
Recorded recordMsort(std::size_t Scale, const RtOptions &Options);
Recorded recordNn(std::size_t Scale, const RtOptions &Options);
Recorded recordNqueens(std::size_t Scale, const RtOptions &Options);
Recorded recordPalindrome(std::size_t Scale, const RtOptions &Options);
Recorded recordPrimes(std::size_t Scale, const RtOptions &Options);
Recorded recordQuickhull(std::size_t Scale, const RtOptions &Options);
Recorded recordRay(std::size_t Scale, const RtOptions &Options);
Recorded recordSuffixArray(std::size_t Scale, const RtOptions &Options);
Recorded recordTokens(std::size_t Scale, const RtOptions &Options);

} // namespace pbbs
} // namespace warden

#endif // WARDEN_PBBS_PBBS_H
