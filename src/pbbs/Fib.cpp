//===- pbbs/Fib.cpp - fib benchmark ----------------------------------------===//
//
// Part of the WARDen reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Naive parallel Fibonacci: the canonical fork-join stress test. Almost no
/// application memory traffic — its coherence behaviour is dominated by the
/// scheduler's own fork frames — so, as in the paper, it sees event
/// reductions but little speedup (Section 7.2's fib discussion).
///
//===----------------------------------------------------------------------===//

#include "src/pbbs/Pbbs.h"

#include "src/rt/SimArray.h"

using namespace warden;
using namespace warden::pbbs;

namespace {

std::uint64_t fibSeq(unsigned N) {
  return N < 2 ? N : fibSeq(N - 1) + fibSeq(N - 2);
}

/// Number of calls the sequential recursion performs (for work accounting).
std::uint64_t fibCalls(unsigned N) {
  return N < 2 ? 1 : 1 + fibCalls(N - 1) + fibCalls(N - 2);
}

std::uint64_t fibPar(Runtime &Rt, unsigned N, unsigned Cutoff) {
  if (N < Cutoff) {
    // The sequential base case: ~3 cycles per recursive call.
    Rt.work(3 * fibCalls(N));
    return fibSeq(N);
  }
  std::uint64_t A = 0;
  std::uint64_t B = 0;
  Rt.fork2([&] { A = fibPar(Rt, N - 1, Cutoff); },
           [&] { B = fibPar(Rt, N - 2, Cutoff); });
  Rt.work(4);
  return A + B;
}

} // namespace

Recorded pbbs::recordFib(std::size_t Scale, const RtOptions &Options) {
  unsigned N = static_cast<unsigned>(Scale);
  unsigned Cutoff = N > 12 ? N - 10 : 2;

  Runtime Rt(Options);
  std::uint64_t Value = fibPar(Rt, N, Cutoff);

  Recorded R;
  R.Checksum = Value;
  R.Verified = (Value == fibSeq(N)) && Rt.raceViolations().empty();
  R.Graph = Rt.finish();
  return R;
}
