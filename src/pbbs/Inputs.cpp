//===- pbbs/Inputs.cpp - Deterministic synthetic inputs -------------------===//
//
// Part of the WARDen reproduction project.
//
//===----------------------------------------------------------------------===//

#include "src/pbbs/Inputs.h"

using namespace warden;
using namespace warden::pbbs;

void pbbs::fillRandomPoints(const SimArray<Point2> &Out, std::int32_t Range,
                            std::uint64_t Seed) {
  Rng Random(Seed);
  for (std::size_t I = 0; I < Out.size(); ++I) {
    Point2 P;
    P.X = static_cast<std::int32_t>(
        Random.nextBelow(static_cast<std::uint64_t>(Range)));
    P.Y = static_cast<std::int32_t>(
        Random.nextBelow(static_cast<std::uint64_t>(Range)));
    Out.poke(I, P);
  }
}

std::string pbbs::makeText(std::size_t Length, std::uint64_t Seed) {
  Rng Random(Seed);
  std::string Text;
  Text.reserve(Length + 16);
  std::size_t SinceNewline = 0;
  while (Text.size() < Length) {
    std::size_t WordLength = 1 + Random.nextBelow(10);
    for (std::size_t I = 0; I < WordLength; ++I)
      Text.push_back(static_cast<char>('a' + Random.nextBelow(26)));
    if (SinceNewline > 60) {
      Text.push_back('\n');
      SinceNewline = 0;
    } else {
      Text.push_back(' ');
      SinceNewline += WordLength + 1;
    }
  }
  Text.resize(Length);
  return Text;
}

SimArray<char> pbbs::uploadText(Runtime &Rt, const std::string &Text) {
  SimArray<char> Out = Rt.allocArray<char>(Text.size());
  for (std::size_t I = 0; I < Text.size(); ++I)
    Out.poke(I, Text[I]);
  return Out;
}

SimArray<char> pbbs::importText(Runtime &Rt, const std::string &Text) {
  return stdlib::tabulate<char>(
      Rt, Text.size(), [&](std::size_t I) { return Text[I]; }, 512);
}

SimArray<Point2> pbbs::randomPoints(Runtime &Rt, std::size_t Count,
                                    std::int32_t Range, std::uint64_t Seed) {
  return stdlib::tabulate<Point2>(
      Rt, Count,
      [=](std::size_t I) {
        Point2 P;
        P.X = static_cast<std::int32_t>(
            hashMix(Seed + 2 * I) % static_cast<std::uint64_t>(Range));
        P.Y = static_cast<std::int32_t>(
            hashMix(Seed + 2 * I + 1) % static_cast<std::uint64_t>(Range));
        return P;
      },
      256);
}
