//===- pbbs/Sort.h - Parallel merge sort over simulated memory -*- C++ -*-===//
//
// Part of the WARDen reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A parallel merge sort written against the runtime API, shared by the
/// msort, dedup, and suffix_array benchmarks. The recursive sorts allocate
/// their results in child heaps (fresh WARD regions); the parallel merge
/// writes a freshly allocated destination under the write-destination
/// discipline. This is the memory behaviour the paper's discussion of msort
/// revolves around: phase k's output is written hot into private caches and
/// read by phase k+1 from other cores.
///
//===----------------------------------------------------------------------===//

#ifndef WARDEN_PBBS_SORT_H
#define WARDEN_PBBS_SORT_H

#include "src/rt/SimArray.h"

#include <algorithm>
#include <cmath>
#include <vector>

namespace warden {
namespace pbbs {

/// Sequential recorded merge of In[ALo,AHi) and In2[BLo,BHi) into
/// Out[OLo...).
template <typename T, typename LessT>
void seqMerge(const SimArray<T> &A, std::size_t ALo, std::size_t AHi,
              const SimArray<T> &B, std::size_t BLo, std::size_t BHi,
              const SimArray<T> &Out, std::size_t OLo, LessT Less) {
  while (ALo < AHi && BLo < BHi) {
    T VA = A.get(ALo);
    T VB = B.get(BLo);
    if (Less(VB, VA)) {
      Out.set(OLo++, VB);
      ++BLo;
    } else {
      Out.set(OLo++, VA);
      ++ALo;
    }
  }
  for (; ALo < AHi; ++ALo)
    Out.set(OLo++, A.get(ALo));
  for (; BLo < BHi; ++BLo)
    Out.set(OLo++, B.get(BLo));
}

/// Recorded binary search: first index in [Lo, Hi) whose element is not
/// less than \p Key.
template <typename T, typename LessT>
std::size_t lowerBoundRec(const SimArray<T> &In, std::size_t Lo,
                          std::size_t Hi, const T &Key, LessT Less) {
  while (Lo < Hi) {
    std::size_t Mid = Lo + (Hi - Lo) / 2;
    if (Less(In.get(Mid), Key))
      Lo = Mid + 1;
    else
      Hi = Mid;
  }
  return Lo;
}

/// Parallel merge: splits on the larger input's median and binary-searches
/// the other side, forking the two halves.
template <typename T, typename LessT>
void parMerge(Runtime &Rt, const SimArray<T> &A, std::size_t ALo,
              std::size_t AHi, const SimArray<T> &B, std::size_t BLo,
              std::size_t BHi, const SimArray<T> &Out, std::size_t OLo,
              LessT Less, std::size_t Grain) {
  std::size_t NA = AHi - ALo;
  std::size_t NB = BHi - BLo;
  if (NA + NB <= 2 * Grain) {
    seqMerge(A, ALo, AHi, B, BLo, BHi, Out, OLo, Less);
    return;
  }
  if (NA < NB) {
    parMerge(Rt, B, BLo, BHi, A, ALo, AHi, Out, OLo, Less, Grain);
    return;
  }
  std::size_t AMid = ALo + NA / 2;
  T Pivot = A.get(AMid);
  std::size_t BMid = lowerBoundRec(B, BLo, BHi, Pivot, Less);
  std::size_t OMid = OLo + (AMid - ALo) + (BMid - BLo);
  Rt.fork2(
      [&] { parMerge(Rt, A, ALo, AMid, B, BLo, BMid, Out, OLo, Less, Grain); },
      [&] {
        parMerge(Rt, A, AMid, AHi, B, BMid, BHi, Out, OMid, Less, Grain);
      });
}

/// Parallel merge sort of In[Lo, Hi); returns a fresh sorted array.
template <typename T, typename LessT>
SimArray<T> sortRange(Runtime &Rt, const SimArray<T> &In, std::size_t Lo,
                      std::size_t Hi, LessT Less, std::size_t Grain) {
  std::size_t N = Hi - Lo;
  SimArray<T> Out = Rt.allocArray<T>(std::max<std::size_t>(N, 1));
  if (N <= Grain) {
    std::vector<T> Buffer(N);
    for (std::size_t I = 0; I < N; ++I)
      Buffer[I] = In.get(Lo + I);
    std::sort(Buffer.begin(), Buffer.end(), Less);
    // Comparison/compute cost of the leaf sort.
    Rt.work(static_cast<std::uint64_t>(
        4.0 * static_cast<double>(N) *
        std::log2(static_cast<double>(std::max<std::size_t>(N, 2)))));
    for (std::size_t I = 0; I < N; ++I)
      Out.set(I, Buffer[I]);
    return Out;
  }
  std::size_t Mid = Lo + N / 2;
  SimArray<T> Left;
  SimArray<T> Right;
  Rt.fork2([&] { Left = sortRange(Rt, In, Lo, Mid, Less, Grain); },
           [&] { Right = sortRange(Rt, In, Mid, Hi, Less, Grain); });
  Runtime::WriteOnlyScope Scope(Rt, Out.addr(), Out.bytes());
  parMerge(Rt, Left, 0, Left.size(), Right, 0, Right.size(), Out, 0, Less,
           Grain);
  return Out;
}

/// Parallel merge sort of the whole array.
template <typename T, typename LessT>
SimArray<T> mergeSort(Runtime &Rt, const SimArray<T> &In, LessT Less,
                      std::size_t Grain = 128) {
  return sortRange(Rt, In, 0, In.size(), Less, Grain);
}

} // namespace pbbs
} // namespace warden

#endif // WARDEN_PBBS_SORT_H
