//===- core/WardenSystem.h - End-to-end simulation facade -----*- C++ -*-===//
//
// Part of the WARDen reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The top-level public API: record a program once (phase 1), simulate the
/// recorded TaskGraph under a machine configuration and protocol (phase 2),
/// and compare any set of registered protocols on identical traces — the
/// paper's experimental method (same binary, N protocols) generalized from
/// the original MESI-vs-WARDen pair to every backend in the protocol
/// registry (see coherence/Protocol.h).
///
//===----------------------------------------------------------------------===//

#ifndef WARDEN_CORE_WARDENSYSTEM_H
#define WARDEN_CORE_WARDENSYSTEM_H

#include "src/coherence/CoherenceStats.h"
#include "src/machine/EnergyModel.h"
#include "src/machine/MachineConfig.h"
#include "src/obs/CpiStack.h"
#include "src/obs/MetricRegistry.h"
#include "src/obs/SharingProfiler.h"
#include "src/rt/Runtime.h"
#include "src/sched/Replay.h"
#include "src/trace/TaskGraph.h"
#include "src/verify/FaultPlan.h"
#include "src/verify/ProtocolAuditor.h"

#include <functional>

namespace warden {

struct Observability;
class JobPool;

/// Knobs of one timed simulation beyond the machine itself: the scheduler
/// seed, the repeat count for median runs, the protocol auditor, and the
/// fault-injection plan. The defaults reproduce the plain two-argument
/// simulate() exactly.
struct RunOptions {
  /// Base scheduler seed (repeat i runs with Seed + 0x1111 * i).
  std::uint64_t Seed = 0x5eed;
  /// Runs per simulateMedian()/compare() invocation.
  unsigned Repeats = 3;
  /// Attach a ProtocolAuditor for the whole run (invariants + shadow
  /// values); results land in RunResult::Audit. Off by default: an
  /// unaudited run is cycle-identical either way, this only buys speed.
  bool Audit = false;
  AuditOptions AuditConfig;
  /// Deterministic fault injection; the default plan injects nothing.
  FaultPlan Faults;
  /// Optional observability sinks (metric registry, timeline sampler,
  /// Chrome-trace exporter), attached to both the controller and the
  /// replayer for the duration of the run. Recording only: an attached run
  /// is cycle-identical to a detached one. simulateMedian() attaches the
  /// bundle to the *first* repeat only, so the sampler and trace describe a
  /// single deterministic run rather than an interleaving of seeds; the
  /// registry report from that repeat is copied into the median result.
  Observability *Obs = nullptr;
  /// Optional host thread pool. When set, simulateMedian() fans the
  /// repeats out as independent jobs and compare() runs the two protocols
  /// concurrently (unless Obs is set, whose single bundle the protocol
  /// runs must then share serially). Each job owns its whole simulated
  /// machine, so a pooled run is byte-identical to a serial one — this
  /// changes host wall time only, never simulated results.
  JobPool *Pool = nullptr;
  /// Intra-run worker count for the replayer's epoch-barriered parallel
  /// engine (1 = serial; the default). Harvesting is semantics-preserving,
  /// so any value produces byte-identical results — this changes host wall
  /// time only, never simulated output.
  unsigned IntraJobs = 1;
  /// Replacement-policy override: when non-empty, replaces
  /// MachineConfig::Replacement for this run (the harness matrix loop sets
  /// it per row without copying machine presets around). Must name a
  /// registered policy; validated with the rest of the configuration.
  std::string Replacement;
};

/// Complete outcome of one timed simulation.
struct RunResult {
  ProtocolKind Protocol = ProtocolKind::Mesi;
  Cycles Makespan = 0;
  std::uint64_t Instructions = 0;
  CoherenceStats Coherence;
  SchedulerStats Sched;
  EnergyBreakdown Energy;
  unsigned PeakRegions = 0;
  /// Auditor outcome when RunOptions::Audit was set (Enabled == false
  /// otherwise). For median runs, violation counts and messages are merged
  /// across every repeat so no detection is lost to median selection.
  AuditReport Audit;
  /// Snapshot of the metric registry at end of run when RunOptions::Obs
  /// carried one (Enabled == false otherwise). For median runs this is the
  /// first repeat's snapshot — the run the sampler and trace observed.
  MetricsReport Metrics;
  /// Per-line sharing/contention profile when RunOptions::Obs carried a
  /// SharingProfiler (Enabled == false otherwise). Same first-repeat rule
  /// as Metrics for median runs.
  ProfileReport Profile;
  /// Per-core cycle accounting when RunOptions::Obs carried a CpiStack
  /// (Enabled == false otherwise). Same first-repeat rule as Metrics.
  CpiReport Cpi;

  /// Aggregate instructions-per-cycle over the whole machine run.
  double ipc() const {
    return Makespan == 0
               ? 0.0
               : static_cast<double>(Instructions) /
                     static_cast<double>(Makespan);
  }

  /// Fraction of demand accesses that fell inside an active WARD region
  /// (the Section 7.2 coverage statistic).
  double wardCoverage() const {
    std::uint64_t All = Coherence.accesses();
    return All == 0 ? 0.0
                    : static_cast<double>(Coherence.WardRegionAccesses) /
                          static_cast<double>(All);
  }
};

/// N-protocol comparison on identical recorded traces. Runs are kept in
/// request order; every relative metric divides by the named baseline
/// (MESI whenever it was requested, otherwise the first requested
/// protocol), so "speedup of WARDen" reads exactly as in the paper's
/// figures and extends unchanged to SISD or any registered backend.
struct ComparisonResult {
  /// The protocol all relative metrics are computed against.
  ProtocolKind Baseline = ProtocolKind::Mesi;
  /// One median result per requested protocol, in request order.
  std::vector<RunResult> Runs;

  /// The run for \p Kind, or nullptr if it was not part of the comparison.
  const RunResult *find(ProtocolKind Kind) const {
    for (const RunResult &R : Runs)
      if (R.Protocol == Kind)
        return &R;
    return nullptr;
  }
  bool has(ProtocolKind Kind) const { return find(Kind) != nullptr; }
  /// The run for \p Kind; throws std::out_of_range if absent.
  const RunResult &run(ProtocolKind Kind) const;
  const RunResult &baseline() const { return run(Baseline); }

  /// Baseline makespan over \p Kind's makespan (>1 = \p Kind faster).
  double speedup(ProtocolKind Kind) const {
    const RunResult &R = run(Kind);
    return R.Makespan == 0 ? 0.0
                           : static_cast<double>(baseline().Makespan) /
                                 static_cast<double>(R.Makespan);
  }

  /// \p Kind's total processor energy over the baseline's (<1 = cheaper).
  double energyRatio(ProtocolKind Kind) const {
    double Base = baseline().Energy.totalProcessorNJ();
    return Base == 0 ? 0.0 : run(Kind).Energy.totalProcessorNJ() / Base;
  }

  /// Fractional savings (positive = \p Kind cheaper than the baseline).
  double totalEnergySavings(ProtocolKind Kind) const {
    double Base = baseline().Energy.totalProcessorNJ();
    return Base == 0 ? 0.0
                     : 1.0 - run(Kind).Energy.totalProcessorNJ() / Base;
  }

  double interconnectEnergySavings(ProtocolKind Kind) const {
    double Base = baseline().Energy.interconnectNJ();
    return Base == 0 ? 0.0
                     : 1.0 - run(Kind).Energy.interconnectNJ() / Base;
  }

  /// Figure 9's metric: invalidations + downgrades avoided per thousand
  /// executed (baseline) instructions.
  double invDownReducedPerKiloInstr(ProtocolKind Kind) const {
    const RunResult &Base = baseline();
    double Reduced = static_cast<double>(Base.Coherence.invPlusDown()) -
                     static_cast<double>(run(Kind).Coherence.invPlusDown());
    std::uint64_t Instr = Base.Instructions;
    return Instr == 0 ? 0.0 : 1000.0 * Reduced / static_cast<double>(Instr);
  }

  /// Figure 10's split: share of the reduction owed to downgrades.
  double downgradeShareOfReduction(ProtocolKind Kind) const {
    const RunResult &Base = baseline();
    const RunResult &R = run(Kind);
    double Down = static_cast<double>(Base.Coherence.Downgrades) -
                  static_cast<double>(R.Coherence.Downgrades);
    double Inv = static_cast<double>(Base.Coherence.Invalidations) -
                 static_cast<double>(R.Coherence.Invalidations);
    double Sum = Down + Inv;
    return Sum == 0 ? 0.0 : Down / Sum;
  }

  /// Figure 11's metric: percent IPC improvement over the baseline.
  double ipcImprovementPct(ProtocolKind Kind) const {
    double Base = baseline().ipc();
    return Base == 0 ? 0.0 : 100.0 * (run(Kind).ipc() / Base - 1.0);
  }
};

/// Top-level driver.
class WardenSystem {
public:
  /// Phase 1: records \p Program into a TaskGraph using runtime options
  /// \p Options. Asserts the WARD discipline held (no checker violations).
  static TaskGraph record(const std::function<void(Runtime &)> &Program,
                          RtOptions Options = RtOptions());

  /// Phase 2: simulates \p Graph on \p Config and returns results. The
  /// configuration is validated first; a broken one raises
  /// std::invalid_argument listing every problem instead of tripping
  /// asserts deep in the cache model.
  static RunResult simulate(const TaskGraph &Graph,
                            const MachineConfig &Config,
                            std::uint64_t Seed = 0x5eed);

  /// As above with full control over auditing and fault injection.
  static RunResult simulate(const TaskGraph &Graph,
                            const MachineConfig &Config,
                            const RunOptions &Options);

  /// Simulates under \p Repeats different scheduler seeds and returns the
  /// run with the median makespan; damps work-stealing schedule noise the
  /// same way the paper averages repeated runs.
  static RunResult simulateMedian(const TaskGraph &Graph,
                                  const MachineConfig &Config,
                                  unsigned Repeats = 3);

  /// Median run under \p Options (seed, repeat count, auditing, faults).
  static RunResult simulateMedian(const TaskGraph &Graph,
                                  const MachineConfig &Config,
                                  const RunOptions &Options);

  /// Runs every protocol in \p Protocols (request order preserved) on the
  /// same graph and machine — the median of Options.Repeats seeds each —
  /// and returns the protocol-keyed comparison. The baseline is MESI when
  /// requested, otherwise the first protocol. Duplicate kinds are
  /// collapsed to the first occurrence; an empty list raises
  /// std::invalid_argument. With RunOptions::Pool set (and no shared
  /// observability bundle) the per-protocol medians fan out concurrently;
  /// results are byte-identical to the serial order either way.
  static ComparisonResult
  compareProtocols(const TaskGraph &Graph, MachineConfig Config,
                   const std::vector<ProtocolKind> &Protocols,
                   const RunOptions &Options = RunOptions());
};

} // namespace warden

#endif // WARDEN_CORE_WARDENSYSTEM_H
