//===- core/WardenSystem.cpp - End-to-end simulation facade ---------------===//
//
// Part of the WARDen reproduction project.
//
//===----------------------------------------------------------------------===//

#include "src/core/WardenSystem.h"

#include "src/coherence/CoherenceController.h"
#include "src/obs/EventLog.h"
#include "src/obs/Observability.h"
#include "src/support/JobPool.h"

#include <algorithm>
#include <functional>
#include <cassert>
#include <memory>
#include <stdexcept>
#include <vector>

using namespace warden;

TaskGraph WardenSystem::record(const std::function<void(Runtime &)> &Program,
                               RtOptions Options) {
  Runtime Rt(Options);
  Program(Rt);
  assert(Rt.raceViolations().empty() &&
         "program violates the WARD discipline; see Runtime::raceViolations");
  return Rt.finish();
}

RunResult WardenSystem::simulate(const TaskGraph &Graph,
                                 const MachineConfig &Config,
                                 std::uint64_t Seed) {
  RunOptions Options;
  Options.Seed = Seed;
  return simulate(Graph, Config, Options);
}

RunResult WardenSystem::simulate(const TaskGraph &Graph,
                                 const MachineConfig &BaseConfig,
                                 const RunOptions &Options) {
  // The replacement override rides on RunOptions so harness matrix loops
  // can vary the policy per row without copying machine presets around.
  MachineConfig Config = BaseConfig;
  if (!Options.Replacement.empty())
    Config.Replacement = Options.Replacement;
  std::vector<std::string> Errors = Config.validate();
  if (!Errors.empty()) {
    std::string Joined = "invalid machine configuration:";
    for (const std::string &Error : Errors) {
      Joined += "\n  ";
      Joined += Error;
    }
    throw std::invalid_argument(Joined);
  }

  CoherenceController Controller(Config, Options.Faults);
  // Pre-size the hot-path tables for the recorded footprint (the memory
  // map's spans cover every allocation the trace touches), so the replay
  // loop never pays a mid-run rehash. Host-side only: cycle-identical.
  std::uint64_t Footprint = 0;
  for (const auto &[Start, EndSite] : Graph.memoryMap().spans())
    Footprint += EndSite.first - Start;
  Controller.reserveFootprint(Footprint);
  std::unique_ptr<ProtocolAuditor> Auditor;
  if (Options.Audit) {
    Auditor = std::make_unique<ProtocolAuditor>(Controller,
                                                Options.AuditConfig);
    Controller.attachAuditor(Auditor.get());
  }
  if (Options.Obs) {
    // Reset per-run profiler/CPI state before attaching, so a bundle
    // reused across runs (e.g. per-benchmark MESI then WARDen) starts each
    // run from a clean table and the right allocation-site map.
    if (Options.Obs->Profiler)
      Options.Obs->Profiler->beginRun(&Graph.memoryMap(), Options.Obs);
    if (Options.Obs->Cpi)
      Options.Obs->Cpi->beginRun(Config.totalCores());
    if (Options.Obs->Log)
      Options.Obs->Log->beginRun(Config, &Graph.memoryMap());
    Controller.attachObs(Options.Obs);
  }
  Replayer Replay(Graph, Controller, Options.Seed);
  if (Options.Obs)
    Replay.attachObs(Options.Obs);
  Replay.setIntraJobs(Options.IntraJobs);
  ReplayResult Timing = Replay.run();

  RunResult Result;
  if (Auditor) {
    // Sweep before the drain: drainDirtyData downgrades private lines
    // without informing the directory, which is fine for the statistics it
    // serves but would read as disagreement to the auditor.
    Auditor->checkAll("end of run");
    Result.Audit = Auditor->report();
  }
  if (Options.Obs && Options.Obs->Metrics)
    Result.Metrics = Options.Obs->Metrics->report();
  if (Options.Obs && Options.Obs->Profiler) {
    // Snapshot before the drain: drainDirtyData is bookkeeping traffic
    // that a longer execution would have amortised, not sharing behaviour.
    Options.Obs->Profiler->finishCounters();
    Result.Profile = Options.Obs->Profiler->report();
  }
  if (Options.Obs && Options.Obs->Cpi)
    Result.Cpi = Options.Obs->Cpi->report();
  // Seal the event log with the other snapshots, before the drain: the
  // end-of-run writeback sweep is bookkeeping, not program behaviour.
  if (Options.Obs && Options.Obs->Log)
    Options.Obs->Log->finish();
  Controller.drainDirtyData();
  Result.Protocol = Config.Protocol;
  Result.Makespan = Timing.Makespan;
  Result.Sched = Timing.Sched;
  Result.Instructions = Timing.Sched.Instructions;
  Result.Coherence = Controller.stats();
  Result.PeakRegions = Controller.regionTable().peakOccupancy();

  EnergyEvents Events;
  Events.Instructions = Result.Instructions;
  Events.L1Accesses = Result.Coherence.L1Accesses;
  Events.L2Accesses = Result.Coherence.L2Accesses;
  Events.L3Accesses = Result.Coherence.L3Accesses;
  Events.DramAccesses =
      Result.Coherence.DramAccesses + Result.Coherence.DramWritebacks;
  Events.MsgsIntraSocket = Result.Coherence.MsgsIntraSocket;
  Events.MsgsInterSocket = Result.Coherence.MsgsInterSocket;
  Events.MsgsRemote = Result.Coherence.MsgsRemote;
  Events.DataIntraSocket = Result.Coherence.DataIntraSocket;
  Events.DataInterSocket = Result.Coherence.DataInterSocket;
  Events.DataRemote = Result.Coherence.DataRemote;
  Events.MsgsInterNode = Result.Coherence.MsgsInterNode;
  Events.DataInterNode = Result.Coherence.DataInterNode;

  EnergyModel Model(Config);
  Result.Energy = Model.compute(Events, Result.Makespan);
  return Result;
}

RunResult WardenSystem::simulateMedian(const TaskGraph &Graph,
                                       const MachineConfig &Config,
                                       unsigned Repeats) {
  RunOptions Options;
  Options.Repeats = Repeats;
  return simulateMedian(Graph, Config, Options);
}

RunResult WardenSystem::simulateMedian(const TaskGraph &Graph,
                                       const MachineConfig &Config,
                                       const RunOptions &Options) {
  assert(Options.Repeats > 0 && "need at least one run");
  std::vector<RunResult> Runs(Options.Repeats);
  auto RunRepeat = [&Graph, &Config, &Options, &Runs](unsigned I) {
    RunOptions OneRun = Options;
    OneRun.Seed = Options.Seed + 0x1111ULL * I;
    // Observability follows the first repeat only: the sampler and trace
    // then describe one deterministic run instead of mixing seeds.
    if (I != 0)
      OneRun.Obs = nullptr;
    Runs[I] = simulate(Graph, Config, OneRun);
  };
  if (Options.Pool && Options.Repeats > 1) {
    // Each repeat owns its controller, auditor, and result slot; only
    // repeat 0 touches the (optional) shared observability bundle. The
    // median selection below reads Runs by index, so scheduling order
    // cannot leak into the result.
    std::vector<std::function<void()>> Tasks;
    Tasks.reserve(Options.Repeats);
    for (unsigned I = 0; I < Options.Repeats; ++I)
      Tasks.push_back([&RunRepeat, I] { RunRepeat(I); });
    Options.Pool->runAll(std::move(Tasks));
  } else {
    for (unsigned I = 0; I < Options.Repeats; ++I)
      RunRepeat(I);
  }
  std::vector<std::size_t> Order(Runs.size());
  for (std::size_t I = 0; I < Order.size(); ++I)
    Order[I] = I;
  std::sort(Order.begin(), Order.end(), [&](std::size_t A, std::size_t B) {
    return Runs[A].Makespan < Runs[B].Makespan;
  });
  RunResult Median = Runs[Order[Order.size() / 2]];
  // A violation in any repeat must not vanish because another repeat's
  // makespan was the median: merge the audit verdicts.
  for (std::size_t I = 0; I < Runs.size(); ++I) {
    if (I == Order[Order.size() / 2])
      continue;
    const AuditReport &Other = Runs[I].Audit;
    Median.Audit.Violations += Other.Violations;
    Median.Audit.WawOverlaps += Other.WawOverlaps;
    for (const std::string &Message : Other.Messages) {
      if (Median.Audit.Messages.size() >= Options.AuditConfig.MaxMessages)
        break;
      Median.Audit.Messages.push_back(Message);
    }
  }
  if (Options.Obs) {
    Median.Metrics = Runs[0].Metrics;
    Median.Profile = Runs[0].Profile;
    Median.Cpi = Runs[0].Cpi;
  }
  return Median;
}

const RunResult &ComparisonResult::run(ProtocolKind Kind) const {
  if (const RunResult *R = find(Kind))
    return *R;
  throw std::out_of_range(std::string("comparison has no run for protocol ") +
                          protocolId(Kind));
}

ComparisonResult
WardenSystem::compareProtocols(const TaskGraph &Graph, MachineConfig Config,
                               const std::vector<ProtocolKind> &Protocols,
                               const RunOptions &Options) {
  // Collapse duplicates but keep the caller's order: a repeated
  // --protocol=mesi,mesi would otherwise run twice and confuse run().
  std::vector<ProtocolKind> Kinds;
  for (ProtocolKind Kind : Protocols)
    if (std::find(Kinds.begin(), Kinds.end(), Kind) == Kinds.end())
      Kinds.push_back(Kind);
  if (Kinds.empty())
    throw std::invalid_argument("compareProtocols: no protocols requested");

  ComparisonResult Comparison;
  Comparison.Baseline =
      std::find(Kinds.begin(), Kinds.end(), ProtocolKind::Mesi) != Kinds.end()
          ? ProtocolKind::Mesi
          : Kinds.front();
  Comparison.Runs.resize(Kinds.size());

  // Each protocol run owns its config copy and result slot, indexed by
  // position, so pooled and serial execution fill Runs identically.
  std::vector<MachineConfig> Configs(Kinds.size(), Config);
  for (std::size_t I = 0; I < Kinds.size(); ++I)
    Configs[I].Protocol = Kinds[I];
  auto RunOne = [&Graph, &Options, &Configs, &Comparison](std::size_t I) {
    Comparison.Runs[I] = simulateMedian(Graph, Configs[I], Options);
  };
  if (Options.Pool && !Options.Obs && Kinds.size() > 1) {
    // The protocol runs share nothing but the immutable graph, so fan them
    // out. With an observability bundle attached they must stay serial
    // (and ordered) instead: every median's first repeat would otherwise
    // race on the one bundle.
    std::vector<std::function<void()>> Tasks;
    Tasks.reserve(Kinds.size());
    for (std::size_t I = 0; I < Kinds.size(); ++I)
      Tasks.push_back([&RunOne, I] { RunOne(I); });
    Options.Pool->runAll(std::move(Tasks));
  } else {
    for (std::size_t I = 0; I < Kinds.size(); ++I)
      RunOne(I);
  }
  return Comparison;
}
