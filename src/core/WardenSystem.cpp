//===- core/WardenSystem.cpp - End-to-end simulation facade ---------------===//
//
// Part of the WARDen reproduction project.
//
//===----------------------------------------------------------------------===//

#include "src/core/WardenSystem.h"

#include "src/coherence/CoherenceController.h"

#include <algorithm>
#include <cassert>
#include <vector>

using namespace warden;

TaskGraph WardenSystem::record(const std::function<void(Runtime &)> &Program,
                               RtOptions Options) {
  Runtime Rt(Options);
  Program(Rt);
  assert(Rt.raceViolations().empty() &&
         "program violates the WARD discipline; see Runtime::raceViolations");
  return Rt.finish();
}

RunResult WardenSystem::simulate(const TaskGraph &Graph,
                                 const MachineConfig &Config,
                                 std::uint64_t Seed) {
  CoherenceController Controller(Config);
  Replayer Replay(Graph, Controller, Seed);
  ReplayResult Timing = Replay.run();
  Controller.drainDirtyData();

  RunResult Result;
  Result.Protocol = Config.Protocol;
  Result.Makespan = Timing.Makespan;
  Result.Sched = Timing.Sched;
  Result.Instructions = Timing.Sched.Instructions;
  Result.Coherence = Controller.stats();
  Result.PeakRegions = Controller.regionTable().peakOccupancy();

  EnergyEvents Events;
  Events.Instructions = Result.Instructions;
  Events.L1Accesses = Result.Coherence.L1Accesses;
  Events.L2Accesses = Result.Coherence.L2Accesses;
  Events.L3Accesses = Result.Coherence.L3Accesses;
  Events.DramAccesses =
      Result.Coherence.DramAccesses + Result.Coherence.DramWritebacks;
  Events.MsgsIntraSocket = Result.Coherence.MsgsIntraSocket;
  Events.MsgsInterSocket = Result.Coherence.MsgsInterSocket;
  Events.MsgsRemote = Result.Coherence.MsgsRemote;
  Events.DataIntraSocket = Result.Coherence.DataIntraSocket;
  Events.DataInterSocket = Result.Coherence.DataInterSocket;
  Events.DataRemote = Result.Coherence.DataRemote;

  EnergyModel Model(Config);
  Result.Energy = Model.compute(Events, Result.Makespan);
  return Result;
}

RunResult WardenSystem::simulateMedian(const TaskGraph &Graph,
                                       const MachineConfig &Config,
                                       unsigned Repeats) {
  assert(Repeats > 0 && "need at least one run");
  std::vector<RunResult> Runs;
  Runs.reserve(Repeats);
  for (unsigned I = 0; I < Repeats; ++I)
    Runs.push_back(simulate(Graph, Config, 0x5eed + 0x1111ULL * I));
  std::sort(Runs.begin(), Runs.end(),
            [](const RunResult &A, const RunResult &B) {
              return A.Makespan < B.Makespan;
            });
  return Runs[Runs.size() / 2];
}

ProtocolComparison WardenSystem::compare(const TaskGraph &Graph,
                                         MachineConfig Config,
                                         unsigned Repeats) {
  ProtocolComparison Comparison;
  Config.Protocol = ProtocolKind::Mesi;
  Comparison.Mesi = simulateMedian(Graph, Config, Repeats);
  Config.Protocol = ProtocolKind::Warden;
  Comparison.Warden = simulateMedian(Graph, Config, Repeats);
  return Comparison;
}
